package obs

import (
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	const workers, each = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*each {
		t.Fatalf("counter = %d, want %d", got, workers*each)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

// The histogram is the hottest shared structure (every evaluation and
// merge observes into it); concurrent writers must neither race nor lose
// counts.
func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const workers, each = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				h.Observe(int64(w*each + i + 1)) // values 1..workers*each
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*each {
		t.Fatalf("count = %d, want %d", s.Count, workers*each)
	}
	if s.Min != 1 {
		t.Fatalf("min = %d, want 1", s.Min)
	}
	if s.Max != workers*each {
		t.Fatalf("max = %d, want %d", s.Max, workers*each)
	}
	wantSum := int64(workers*each) * int64(workers*each+1) / 2
	if s.Sum != wantSum {
		t.Fatalf("sum = %d, want %d", s.Sum, wantSum)
	}
	if s.P50 <= 0 || s.P50 > s.P90 || s.P90 > s.P99 {
		t.Fatalf("quantiles not monotone: p50=%d p90=%d p99=%d", s.P50, s.P90, s.P99)
	}
	if got := s.Mean(); got != wantSum/int64(workers*each) {
		t.Fatalf("mean = %d", got)
	}
}

func TestHistogramQuantileBounds(t *testing.T) {
	var h Histogram
	// 100 observations of 5 (bucket 3: 4 <= v < 8): every quantile is the
	// bucket's upper bound 8.
	for i := 0; i < 100; i++ {
		h.Observe(5)
	}
	s := h.Snapshot()
	if s.P50 != 8 || s.P99 != 8 {
		t.Fatalf("p50=%d p99=%d, want 8 (bucket upper bound)", s.P50, s.P99)
	}
	if s.Min != 5 || s.Max != 5 {
		t.Fatalf("min=%d max=%d, want 5", s.Min, s.Max)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b, merged Histogram
	for i := int64(1); i <= 100; i++ {
		a.Observe(i)
		merged.Observe(i)
	}
	for i := int64(1000); i <= 1100; i++ {
		b.Observe(i)
		merged.Observe(i)
	}
	var via Histogram
	via.Merge(a.Snapshot())
	via.Merge(b.Snapshot())
	got, want := via.Snapshot(), merged.Snapshot()
	if got.Count != want.Count || got.Sum != want.Sum ||
		got.Min != want.Min || got.Max != want.Max ||
		got.P50 != want.P50 || got.P99 != want.P99 {
		t.Fatalf("merged snapshot %+v, want %+v", got, want)
	}
}

// Nil receivers must no-op: instrumented code calls metrics
// unconditionally and relies on this instead of branching.
func TestNilSafety(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter value")
	}
	var g *Gauge
	g.Set(1)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge value")
	}
	var h *Histogram
	h.Observe(1)
	if s := h.Snapshot(); s.Count != 0 {
		t.Fatal("nil histogram snapshot")
	}
	h.Merge(HistSnapshot{Count: 1})

	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("x").Set(1)
	r.Histogram("x").Observe(1)
	if len(r.Snapshot()) != 0 {
		t.Fatal("nil registry snapshot")
	}

	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer enabled")
	}
	tr.Emit(Span{Kind: "call"})
	tr.SetSample(2)
	if tr.Now() != 0 || tr.Err() != nil || tr.Dropped() != 0 {
		t.Fatal("nil tracer accessors")
	}
}
