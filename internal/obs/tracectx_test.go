package obs

import (
	"context"
	"testing"
)

func TestNewTraceShape(t *testing.T) {
	sc := NewTrace()
	if !sc.Valid() {
		t.Fatalf("NewTrace() = %+v, not valid", sc)
	}
	if len(sc.Trace) != 32 || !isLowerHex(sc.Trace) {
		t.Errorf("trace id %q: want 32 lowercase hex chars", sc.Trace)
	}
	if len(sc.Span) != 16 || !isLowerHex(sc.Span) {
		t.Errorf("span id %q: want 16 lowercase hex chars", sc.Span)
	}
	if other := NewTrace(); other.Trace == sc.Trace {
		t.Error("two NewTrace calls produced the same trace id")
	}
}

func TestNewChildKeepsTrace(t *testing.T) {
	root := NewTrace()
	child := root.NewChild()
	if child.Trace != root.Trace {
		t.Errorf("child trace %q, want parent's %q", child.Trace, root.Trace)
	}
	if child.Span == root.Span {
		t.Error("child reused the parent's span id")
	}
	// A child of the zero context roots a fresh trace so instrumentation
	// can derive unconditionally.
	orphan := SpanContext{}.NewChild()
	if !orphan.Valid() {
		t.Errorf("child of zero context = %+v, want a fresh valid root", orphan)
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	sc := NewTrace()
	h := sc.Traceparent()
	got, ok := ParseTraceparent(h)
	if !ok {
		t.Fatalf("ParseTraceparent(%q) rejected own rendering", h)
	}
	if got != sc {
		t.Errorf("round trip = %+v, want %+v", got, sc)
	}
	if (SpanContext{}).Traceparent() != "" {
		t.Error("zero context rendered a non-empty traceparent")
	}
}

func TestParseTraceparentRejectsMalformed(t *testing.T) {
	for _, h := range []string{
		"",
		"not-a-header",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7",    // missing flags
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01", // zero trace
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", // zero span
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // forbidden version
		"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01", // uppercase hex
		"00-4bf92f3577b34da6-00f067aa0ba902b7-01",                 // short trace
	} {
		if _, ok := ParseTraceparent(h); ok {
			t.Errorf("ParseTraceparent(%q) = ok, want rejection", h)
		}
	}
	// Future versions with extra fields still parse (spec forward compat).
	if sc, ok := ParseTraceparent("01-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra"); !ok || sc.Trace != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("future-version header rejected: %+v ok=%v", sc, ok)
	}
}

func TestSpanContextThroughContext(t *testing.T) {
	if sc := SpanFromContext(context.Background()); sc.Valid() {
		t.Errorf("empty context carried %+v", sc)
	}
	root := NewTrace()
	ctx := ContextWithSpan(context.Background(), root)
	if got := SpanFromContext(ctx); got != root {
		t.Errorf("SpanFromContext = %+v, want %+v", got, root)
	}
	// Attaching an invalid context is a no-op, not an overwrite.
	if got := SpanFromContext(ContextWithSpan(ctx, SpanContext{})); got != root {
		t.Errorf("invalid attach overwrote: %+v", got)
	}
	if sc := SpanFromContext(nil); sc.Valid() { //nolint:staticcheck // nil-safety contract
		t.Errorf("nil context carried %+v", sc)
	}
}

func TestSpanWithContext(t *testing.T) {
	parent := NewTrace()
	child := parent.NewChild()
	s := Span{Kind: "call", Name: "Q"}.WithContext(child, parent)
	if s.Trace != child.Trace || s.Span != child.Span || s.Parent != parent.Span {
		t.Errorf("WithContext = %+v", s)
	}
	// Root spans have no parent field.
	r := Span{Kind: "sweep"}.WithContext(parent, SpanContext{})
	if r.Parent != "" {
		t.Errorf("root span got parent %q", r.Parent)
	}
}
