package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
)

func TestTracerEmitsJSONL(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.Emit(Span{Kind: "sweep", Sweep: 1, TSUs: tr.Now(), DurUs: 10,
		Attrs: map[string]int64{"fired": 2}})
	tr.Emit(Span{Kind: "call", Name: "GetRating", DurUs: 5, Err: "boom"})
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
	var spans []Span
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var s Span
		if err := json.Unmarshal(sc.Bytes(), &s); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		spans = append(spans, s)
	}
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].Kind != "sweep" || spans[0].Attrs["fired"] != 2 {
		t.Fatalf("sweep span: %+v", spans[0])
	}
	if spans[1].Name != "GetRating" || spans[1].Err != "boom" {
		t.Fatalf("call span: %+v", spans[1])
	}
}

func TestTracerSamplesOnlyCallSpans(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.SetSample(4)
	for i := 0; i < 16; i++ {
		tr.Emit(Span{Kind: "call", Name: "f"})
	}
	tr.Emit(Span{Kind: "sweep"})
	tr.Emit(Span{Kind: "merge"})
	lines := strings.Count(buf.String(), "\n")
	if lines != 4+2 { // every 4th call + both unsampled kinds
		t.Fatalf("got %d lines, want 6:\n%s", lines, buf.String())
	}
	if tr.Dropped() != 12 {
		t.Fatalf("dropped = %d, want 12", tr.Dropped())
	}
}

type failWriter struct{ after int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.after <= 0 {
		return 0, errors.New("disk gone")
	}
	f.after--
	return len(p), nil
}

func TestTracerWriteErrorIsSticky(t *testing.T) {
	tr := NewTracer(&failWriter{after: 1})
	tr.Emit(Span{Kind: "sweep"})
	if err := tr.Err(); err != nil {
		t.Fatalf("first emit failed: %v", err)
	}
	tr.Emit(Span{Kind: "sweep"})
	if tr.Err() == nil {
		t.Fatal("write error not recorded")
	}
	if tr.Enabled() {
		t.Fatal("failed tracer still enabled")
	}
	tr.Emit(Span{Kind: "sweep"}) // must not panic or clear the error
	if tr.Err() == nil {
		t.Fatal("sticky error cleared")
	}
}

func TestTracerConcurrentEmit(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				tr.Emit(Span{Kind: "call", Name: "f", TSUs: tr.Now()})
			}
		}()
	}
	wg.Wait()
	sc := bufio.NewScanner(&buf)
	n := 0
	for sc.Scan() {
		var s Span
		if err := json.Unmarshal(sc.Bytes(), &s); err != nil {
			t.Fatalf("interleaved write produced bad JSON: %v", err)
		}
		n++
	}
	if n != 400 {
		t.Fatalf("got %d spans, want 400", n)
	}
}
