package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"
	"time"
)

// Registry is a process- or subsystem-scoped set of named metrics.
// Metrics are created on first use (Counter/Gauge/Histogram are
// get-or-create) and live for the registry's lifetime. A nil *Registry
// returns nil metrics from every getter, which in turn no-op — so
// instrumented code never branches on "is observability on".
//
// Metric names are dot-separated paths, lowercase, with the subsystem
// first: engine.calls.fired, mw.retry.attempts.GetRating,
// peer.http.requests.invoke, journal.fsync_ns. The _ns suffix marks
// nanosecond histograms.
type Registry struct {
	mu     sync.RWMutex
	counts map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
	funcs  map[string]func() int64
	start  time.Time
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counts: make(map[string]*Counter),
		gauges: make(map[string]*Gauge),
		hists:  make(map[string]*Histogram),
		funcs:  make(map[string]func() int64),
		start:  time.Now(),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counts[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counts[name]; c == nil {
		c = &Counter{}
		r.counts[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// GaugeFunc registers a gauge whose value is computed at snapshot time
// by fn — for state that already lives elsewhere (tracer drop counts,
// convergence watermarks) and should not be mirrored into a *Gauge on
// every change. Re-registering a name replaces the previous function.
// fn must be safe for concurrent calls and must not call back into this
// registry's Snapshot/String. Nil-safe: a nil registry or fn no-ops.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	r.funcs[name] = fn
	r.mu.Unlock()
}

// Snapshot returns every metric's current value: int64 for counters,
// gauges and gauge functions, HistSnapshot for histograms. Keys are the
// metric names.
func (r *Registry) Snapshot() map[string]any {
	out := make(map[string]any)
	if r == nil {
		return out
	}
	r.mu.RLock()
	fns := make(map[string]func() int64, len(r.funcs))
	for name, c := range r.counts {
		out[name] = c.Value()
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	for name, h := range r.hists {
		out[name] = h.Snapshot()
	}
	for name, fn := range r.funcs {
		fns[name] = fn
	}
	r.mu.RUnlock()
	// Evaluate outside the lock: a gauge function may take its own locks
	// (peer state, runtime stats) and must not nest under the registry's.
	for name, fn := range fns {
		out[name] = fn()
	}
	return out
}

// String renders the snapshot as JSON with sorted keys — the expvar.Var
// contract, so a Registry can be expvar.Publish'ed directly.
func (r *Registry) String() string {
	snap := r.Snapshot()
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	buf := []byte("{")
	for i, name := range names {
		if i > 0 {
			buf = append(buf, ',')
		}
		k, _ := json.Marshal(name)
		v, err := json.Marshal(snap[name])
		if err != nil {
			v = []byte(`"unmarshalable"`)
		}
		buf = append(buf, k...)
		buf = append(buf, ':')
		buf = append(buf, v...)
	}
	buf = append(buf, '}')
	return string(buf)
}

var _ expvar.Var = (*Registry)(nil)

// varsHandler serves the registry in expvar's /debug/vars wire format:
// one top-level JSON object whose members are the process-wide expvar
// defaults (cmdline, memstats, anything else Publish'ed) plus this
// registry under the "axml" key. Using expvar.Do for the ambient vars
// keeps the output byte-compatible with expvar.Handler consumers.
func (r *Registry) varsHandler(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	fmt.Fprintf(w, "{\n")
	first := true
	expvar.Do(func(kv expvar.KeyValue) {
		if !first {
			fmt.Fprintf(w, ",\n")
		}
		first = false
		fmt.Fprintf(w, "%q: %s", kv.Key, kv.Value)
	})
	if !first {
		fmt.Fprintf(w, ",\n")
	}
	fmt.Fprintf(w, "%q: %s", "axml", r.String())
	fmt.Fprintf(w, "\n}\n")
}

// DebugMux builds the opt-in debug server: expvar-compatible JSON at
// /debug/vars (ambient expvars plus this registry under "axml"), the
// live pprof profiles under /debug/pprof/, and the health surface —
// /healthz (process liveness, always 200 once the listener is up) and
// /readyz (200 only while every readiness check passes; 503 with one
// line per failing check otherwise). Mount it on its own listener
// (-debug-addr); the profiles expose internals that do not belong on
// the peer's public port.
func DebugMux(r *Registry, checks ...Check) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/vars", r.varsHandler)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/healthz", HealthHandler())
	mux.Handle("/readyz", ReadyHandler(checks...))
	return mux
}
