package obs

import (
	"runtime"
	"time"
)

// Runtime collector: publishes process health the engine metrics can't
// see — heap pressure, GC pauses, goroutine population — into the same
// registry, so one /debug/vars scrape correlates workload counters with
// the runtime they ran on.
//
// Gauges (point-in-time):
//
//	runtime.goroutines       runtime.NumGoroutine()
//	runtime.heap_alloc_bytes live heap bytes (MemStats.HeapAlloc)
//	runtime.heap_sys_bytes   heap bytes held from the OS (MemStats.HeapSys)
//	runtime.gc.num           completed GC cycles since process start
//
// Histogram:
//
//	runtime.gc.pause_ns      one observation per completed GC cycle's
//	                         stop-the-world pause, drained from the
//	                         MemStats.PauseNs ring each interval
//
// ReadMemStats stops the world briefly, so the collector samples on an
// interval (default 10s) rather than per scrape.

// StartRuntimeStats begins periodic collection into r and returns a stop
// function (idempotent, waits for the collector goroutine to exit). An
// every <= 0 uses the 10s default. One immediate collection runs before
// returning so the gauges exist as soon as the registry is served.
// Nil-safe: a nil registry returns a no-op stop.
func StartRuntimeStats(r *Registry, every time.Duration) (stop func()) {
	if r == nil {
		return func() {}
	}
	if every <= 0 {
		every = 10 * time.Second
	}
	c := &runtimeCollector{r: r}
	c.collect()
	done := make(chan struct{})
	quit := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-quit:
				return
			case <-t.C:
				c.collect()
			}
		}
	}()
	var stopped bool
	return func() {
		if stopped {
			return
		}
		stopped = true
		close(quit)
		<-done
	}
}

type runtimeCollector struct {
	r      *Registry
	lastGC uint32 // NumGC at the previous collect, for pause-ring draining
}

func (c *runtimeCollector) collect() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	c.r.Gauge("runtime.goroutines").Set(int64(runtime.NumGoroutine()))
	c.r.Gauge("runtime.heap_alloc_bytes").Set(int64(ms.HeapAlloc))
	c.r.Gauge("runtime.heap_sys_bytes").Set(int64(ms.HeapSys))
	c.r.Gauge("runtime.gc.num").Set(int64(ms.NumGC))
	// PauseNs is a ring of the last 256 pauses indexed by cycle number;
	// observe only cycles completed since the previous collect, capped at
	// the ring size when the interval saw more than 256 GCs.
	newGCs := ms.NumGC - c.lastGC
	if newGCs > uint32(len(ms.PauseNs)) {
		newGCs = uint32(len(ms.PauseNs))
	}
	h := c.r.Histogram("runtime.gc.pause_ns")
	for i := uint32(0); i < newGCs; i++ {
		cycle := ms.NumGC - i
		h.Observe(int64(ms.PauseNs[(cycle+255)%256]))
	}
	c.lastGC = ms.NumGC
}
