package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one traced interval or point event. Timestamps are
// microseconds relative to the tracer's start, so traces are compact,
// diffable and free of wall-clock skew between events.
//
// Kinds emitted by the instrumented layers:
//
//	sweep   one engine sweep          (attrs: pending, fired, sterile, steps, failures)
//	drain   one event-driven worklist drain, sweep-equivalent for the
//	        incremental engine  (attrs: enqueues, coalesced, fired,
//	        sterile, steps, parked)
//	call    one service evaluation    (name = service; attrs: wait_us = pool-slot wait)
//	merge   one result merge          (attrs: wait_us = funnel wait; step)
//	sync    one mirror sync           (name = local doc; attrs: changed)
//	push    one push-mode delivery    (name = subscription id; attrs: trees)
//	fsync   one journal fsync batch   (attrs: records)
//	snapshot one snapshot compaction  (attrs: bytes)
//	http    one served peer endpoint request (name = endpoint; attrs: status)
//
// Schema v2 adds the causal identity triplet: Trace groups every span a
// single logical write produced anywhere in the fleet (W3C trace ID, 32
// hex chars), Span names this span (16 hex chars) and Parent names the
// span that caused it — empty for a trace root. Spans emitted by
// uninstrumented paths simply omit all three; v1 consumers that ignore
// unknown fields keep working.
type Span struct {
	Kind   string           `json:"kind"`
	Name   string           `json:"name,omitempty"`
	Trace  string           `json:"trace,omitempty"`
	Span   string           `json:"span,omitempty"`
	Parent string           `json:"parent,omitempty"`
	Sweep  int              `json:"sweep,omitempty"`
	TSUs   int64            `json:"ts_us"`
	DurUs  int64            `json:"dur_us"`
	Err    string           `json:"err,omitempty"`
	Attrs  map[string]int64 `json:"attrs,omitempty"`
}

// WithContext stamps the span's causal identity from a child context and
// its parent: s.Trace/s.Span come from sc, s.Parent from parent.Span when
// the parent is valid. Returns s for call-site chaining.
func (s Span) WithContext(sc, parent SpanContext) Span {
	if sc.Valid() {
		s.Trace, s.Span = sc.Trace, sc.Span
	}
	if parent.Valid() {
		s.Parent = parent.Span
	}
	return s
}

// Tracer serializes spans to a writer, one JSON object per line —
// loadable by scripts/trace-summarize.sh or any JSONL tool. A nil
// Tracer no-ops every method, so instrumented code emits
// unconditionally. Safe for concurrent use; emission order is the
// serialization order, which under parallel firing is not necessarily
// span start order (sort by ts_us offline).
type Tracer struct {
	mu    sync.Mutex
	w     io.Writer
	enc   *json.Encoder
	start time.Time
	err   error

	// sample admits every n-th call span (1 = all). Sweep, merge and the
	// coarser layer spans are never sampled away: there are few of them
	// and they carry the aggregate attributes.
	sample  int64
	dropped atomic.Int64
	seen    atomic.Int64
}

// NewTracer wraps w. The caller owns w's lifetime (close files after
// the traced work completes).
func NewTracer(w io.Writer) *Tracer {
	return &Tracer{w: w, enc: json.NewEncoder(w), start: time.Now(), sample: 1}
}

// SetSample keeps one call span in every n (n < 1 is treated as 1).
func (t *Tracer) SetSample(n int) {
	if t == nil {
		return
	}
	if n < 1 {
		n = 1
	}
	t.mu.Lock()
	t.sample = int64(n)
	t.mu.Unlock()
}

// Enabled reports whether spans will actually be written — false for a
// nil tracer or one whose writer already failed. Use it to skip
// expensive attribute assembly.
func (t *Tracer) Enabled() bool {
	if t == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err == nil
}

// Now returns the tracer-relative timestamp (µs) for a span being
// assembled; 0 for a nil tracer.
func (t *Tracer) Now() int64 {
	if t == nil {
		return 0
	}
	return int64(time.Since(t.start) / time.Microsecond)
}

// Emit writes one span. Write errors are sticky: the first one disables
// the tracer (observability must not take down the engine) and is
// reported by Err.
func (t *Tracer) Emit(s Span) {
	if t == nil {
		return
	}
	if s.Kind == "call" {
		n := t.seen.Add(1)
		t.mu.Lock()
		sample := t.sample
		t.mu.Unlock()
		if sample > 1 && n%sample != 0 {
			t.dropped.Add(1)
			return
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	t.err = t.enc.Encode(s)
}

// Err returns the sticky write error, if any.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Dropped returns how many call spans sampling discarded.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}
