package obs

import (
	"context"
	"encoding/binary"
	"encoding/hex"
	"math/rand/v2"
	"strings"
)

// Causal trace identity. A SpanContext names one span inside one trace
// using the W3C Trace Context shapes (16-byte trace ID, 8-byte span ID,
// lowercase hex), so the same identity travels in-process via
// context.Context and across peers via the `traceparent` HTTP header.
// The zero SpanContext means "not traced" and every operation on it is
// a no-op, mirroring the package's nil-safe metric contract.

// TraceparentHeader is the W3C Trace Context propagation header carried
// on every outbound peer.Client request and parsed by every handler.
const TraceparentHeader = "traceparent"

// SpanContext identifies one span within one trace. Trace is 32 hex
// chars (16 bytes), Span is 16 hex chars (8 bytes), both lowercase.
type SpanContext struct {
	Trace string
	Span  string
}

// Valid reports whether the context carries usable (non-zero) IDs.
func (sc SpanContext) Valid() bool {
	return len(sc.Trace) == 32 && len(sc.Span) == 16 &&
		sc.Trace != "00000000000000000000000000000000" &&
		sc.Span != "0000000000000000"
}

// randUint64 draws from math/rand/v2's process-wide generator: lock-free
// per-goroutine chacha streams seeded from the OS, cheap enough to mint
// an ID per request on the load-generator hot path.
func randUint64() uint64 {
	for {
		if v := rand.Uint64(); v != 0 {
			return v
		}
	}
}

func hex64(v uint64) string {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	return hex.EncodeToString(b[:])
}

// NewTrace mints a root span in a fresh trace.
func NewTrace() SpanContext {
	return SpanContext{Trace: hex64(randUint64()) + hex64(randUint64()), Span: hex64(randUint64())}
}

// NewChild mints a span in the same trace with a fresh span ID. The
// caller records sc.Span as the child's parent when emitting. A child
// of an invalid context is a fresh root trace, so instrumentation can
// derive unconditionally.
func (sc SpanContext) NewChild() SpanContext {
	if !sc.Valid() {
		return NewTrace()
	}
	return SpanContext{Trace: sc.Trace, Span: hex64(randUint64())}
}

// Traceparent renders the context in W3C form
// (00-<trace-id>-<span-id>-01, always sampled); empty for an invalid
// context so callers can set the header unconditionally.
func (sc SpanContext) Traceparent() string {
	if !sc.Valid() {
		return ""
	}
	return "00-" + sc.Trace + "-" + sc.Span + "-01"
}

// ParseTraceparent decodes a W3C traceparent header value. Unknown
// versions are accepted as long as the version-0 prefix fields parse
// (per the spec's forward-compatibility rule); malformed or all-zero
// IDs report ok=false.
func ParseTraceparent(h string) (SpanContext, bool) {
	h = strings.TrimSpace(h)
	parts := strings.Split(h, "-")
	if len(parts) < 4 || len(parts[0]) != 2 || len(parts[1]) != 32 || len(parts[2]) != 16 {
		return SpanContext{}, false
	}
	if parts[0] == "ff" || !isLowerHex(parts[0]) || !isLowerHex(parts[1]) || !isLowerHex(parts[2]) {
		return SpanContext{}, false
	}
	sc := SpanContext{Trace: parts[1], Span: parts[2]}
	if !sc.Valid() {
		return SpanContext{}, false
	}
	return sc, true
}

func isLowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

type spanCtxKey struct{}

// ContextWithSpan returns ctx carrying sc; an invalid sc returns ctx
// unchanged.
func ContextWithSpan(ctx context.Context, sc SpanContext) context.Context {
	if !sc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, sc)
}

// SpanFromContext returns the span context carried by ctx, or the zero
// SpanContext when none is attached.
func SpanFromContext(ctx context.Context) SpanContext {
	if ctx == nil {
		return SpanContext{}
	}
	sc, _ := ctx.Value(spanCtxKey{}).(SpanContext)
	return sc
}

// LogArgs returns slog key/value pairs for the trace identity —
// appendable to any log call so log lines and spans join on trace ID.
// Empty for an invalid context.
func (sc SpanContext) LogArgs() []any {
	if !sc.Valid() {
		return nil
	}
	return []any{"trace", sc.Trace, "span", sc.Span}
}
