package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// Structured logging. The cmds (and any embedder) build their logger
// here so the level flag parses uniformly and tests can swap the writer;
// library layers take a *slog.Logger and fall back to Discard, keeping
// internal packages free of bare log.Printf/fmt.Println (enforced by
// make vet-obs).

// ParseLevel maps a -log-level flag value to a slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return slog.LevelInfo, fmt.Errorf("obs: unknown log level %q (want debug|info|warn|error)", s)
}

// NewLogger builds a text-handler logger writing to w at the given
// level.
func NewLogger(w io.Writer, level slog.Level) *slog.Logger {
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: level}))
}

// Discard is a logger that drops everything — the default for library
// layers whose caller did not install one, so instrumented code logs
// unconditionally.
var Discard = slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.Level(127)}))

// LoggerOr returns l, or Discard when l is nil.
func LoggerOr(l *slog.Logger) *slog.Logger {
	if l == nil {
		return Discard
	}
	return l
}
