package obs

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestHealthz(t *testing.T) {
	mux := DebugMux(NewRegistry())
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /healthz = %d, want 200", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "ok") {
		t.Errorf("body %q, want ok", rec.Body.String())
	}
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/healthz", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /healthz = %d, want 405", rec.Code)
	}
}

func TestReadyzChecks(t *testing.T) {
	journalErr := error(nil)
	mux := DebugMux(NewRegistry(),
		Check{Name: "journal", Probe: func() error { return journalErr }},
		Check{Name: "ring", Probe: func() error { return nil }},
		Check{Name: "unwired"}, // nil probe passes
	)
	get := func() *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
		return rec
	}
	if rec := get(); rec.Code != http.StatusOK {
		t.Fatalf("all passing: /readyz = %d, body %q", rec.Code, rec.Body.String())
	}
	journalErr = errors.New("disk full")
	rec := get()
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("failing check: /readyz = %d, want 503", rec.Code)
	}
	body := rec.Body.String()
	if !strings.Contains(body, "fail journal: disk full") {
		t.Errorf("body %q missing failing check line", body)
	}
	if !strings.Contains(body, "ok ring") {
		t.Errorf("body %q missing passing check line", body)
	}
	journalErr = nil
	if rec := get(); rec.Code != http.StatusOK {
		t.Errorf("recovered check: /readyz = %d, want 200", rec.Code)
	}
}

func TestReadyzNoChecks(t *testing.T) {
	rec := httptest.NewRecorder()
	DebugMux(nil).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/readyz", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("/readyz with no checks = %d, want 200", rec.Code)
	}
}

func TestRegistryGaugeFunc(t *testing.T) {
	r := NewRegistry()
	v := int64(7)
	r.GaugeFunc("obs.trace.dropped", func() int64 { return v })
	if got := r.Snapshot()["obs.trace.dropped"]; got != int64(7) {
		t.Fatalf("snapshot gauge func = %v, want 7", got)
	}
	v = 9
	if got := r.Snapshot()["obs.trace.dropped"]; got != int64(9) {
		t.Errorf("snapshot gauge func = %v, want live value 9", got)
	}
	// Re-registration replaces; nil registry and nil fn no-op.
	r.GaugeFunc("obs.trace.dropped", func() int64 { return 1 })
	if got := r.Snapshot()["obs.trace.dropped"]; got != int64(1) {
		t.Errorf("re-registered gauge func = %v, want 1", got)
	}
	r.GaugeFunc("nil.fn", nil)
	if _, ok := r.Snapshot()["nil.fn"]; ok {
		t.Error("nil fn registered")
	}
	var nilReg *Registry
	nilReg.GaugeFunc("x", func() int64 { return 1 })
}

func TestStartRuntimeStats(t *testing.T) {
	r := NewRegistry()
	stop := StartRuntimeStats(r, time.Hour) // immediate collect, then idle
	defer stop()
	snap := r.Snapshot()
	if g, ok := snap["runtime.goroutines"].(int64); !ok || g < 1 {
		t.Errorf("runtime.goroutines = %v, want >= 1", snap["runtime.goroutines"])
	}
	if h, ok := snap["runtime.heap_alloc_bytes"].(int64); !ok || h <= 0 {
		t.Errorf("runtime.heap_alloc_bytes = %v, want > 0", snap["runtime.heap_alloc_bytes"])
	}
	stop()
	stop() // idempotent
	if s := StartRuntimeStats(nil, 0); s == nil {
		t.Error("nil registry: want no-op stop func")
	}
}
