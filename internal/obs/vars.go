package obs

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Snapshot diffing: the load generator (and any capacity harness)
// scrapes a peer's metrics before and after a run and wants the
// server-side activity attributable to that window — requests served,
// bytes moved, calls fired. Counters diff by subtraction; point-in-time
// members (gauges are not distinguishable on the wire, histogram
// min/max/quantiles are not additive) keep their "after" value. The
// helpers work on a flattened name -> number view shared by both
// sources: a scraped /debug/vars body (ParseVars) and an in-process
// *Registry (FlattenSnapshot), so correlation code does not care which
// side of the HTTP boundary the registry lived on.

// pointInTimeSuffixes marks flattened members that are not monotone
// accumulations; DiffVars reports their after-value unchanged.
var pointInTimeSuffixes = []string{".min", ".max", ".p50", ".p90", ".p99", ".mean"}

func isPointInTime(name string) bool {
	for _, s := range pointInTimeSuffixes {
		if strings.HasSuffix(name, s) {
			return true
		}
	}
	return false
}

// ParseVars extracts a flattened metric map from a JSON metrics dump:
// either a full /debug/vars response (the registry is then taken from
// its "axml" member; ambient expvars like cmdline and memstats are
// ignored) or a bare Registry JSON rendering. Counters and gauges map
// name -> value; each histogram contributes name.count, name.sum,
// name.min, name.max, name.p50, name.p90 and name.p99.
func ParseVars(data []byte) (map[string]float64, error) {
	var top map[string]json.RawMessage
	if err := json.Unmarshal(data, &top); err != nil {
		return nil, fmt.Errorf("obs: parse vars: %w", err)
	}
	if raw, ok := top["axml"]; ok {
		// A /debug/vars body: the registry lives under "axml".
		top = nil
		if err := json.Unmarshal(raw, &top); err != nil {
			return nil, fmt.Errorf("obs: parse vars: axml member: %w", err)
		}
	}
	out := make(map[string]float64, len(top))
	for name, raw := range top {
		var num float64
		if err := json.Unmarshal(raw, &num); err == nil {
			out[name] = num
			continue
		}
		var hist map[string]float64
		if err := json.Unmarshal(raw, &hist); err == nil {
			for k, v := range hist {
				out[name+"."+k] = v
			}
		}
		// Anything else (strings, arrays, deeper nesting) is not one of
		// this registry's metric shapes — skip it.
	}
	return out, nil
}

// FlattenSnapshot renders a registry's current state in the same
// flattened shape ParseVars produces, for diffing in-process registries
// without a round trip through JSON. Nil-safe like the rest of the
// package.
func FlattenSnapshot(r *Registry) map[string]float64 {
	out := make(map[string]float64)
	for name, v := range r.Snapshot() {
		switch v := v.(type) {
		case int64:
			out[name] = float64(v)
		case HistSnapshot:
			out[name+".count"] = float64(v.Count)
			out[name+".sum"] = float64(v.Sum)
			out[name+".min"] = float64(v.Min)
			out[name+".max"] = float64(v.Max)
			out[name+".p50"] = float64(v.P50)
			out[name+".p90"] = float64(v.P90)
			out[name+".p99"] = float64(v.P99)
		}
	}
	return out
}

// DiffVars subtracts a before-snapshot from an after-snapshot: monotone
// members (counters, histogram counts and sums) become the delta over
// the window, point-in-time members (min/max/quantiles) keep the after
// value, and members absent from before diff against zero. Keys only in
// before are dropped — a metric that stopped being exported has no
// meaningful window value.
//
// A monotone member that went backwards means the server restarted
// inside the window (its counters restarted from zero); the after-value
// is then the activity since restart and is reported as the delta —
// an undercount of the window, never a negative.
func DiffVars(before, after map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(after))
	for name, a := range after {
		if isPointInTime(name) {
			out[name] = a
			continue
		}
		d := a - before[name]
		if d < 0 {
			d = a
		}
		out[name] = d
	}
	return out
}
