package obs

import (
	"net/http/httptest"
	"testing"
)

// The flattened view of a scraped /debug/vars body and of the live
// registry must agree: correlation code diffs across the HTTP boundary.
func TestParseVarsMatchesFlattenSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("peer.http.requests.doc").Add(7)
	r.Gauge("engine.pool").Set(3)
	for _, v := range []int64{100, 200, 400, 800} {
		r.Histogram("peer.http.latency_ns.doc").Observe(v)
	}

	srv := httptest.NewServer(DebugMux(r))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body := make([]byte, 1<<20)
	n, _ := resp.Body.Read(body)
	for {
		m, err := resp.Body.Read(body[n:])
		n += m
		if err != nil {
			break
		}
	}

	scraped, err := ParseVars(body[:n])
	if err != nil {
		t.Fatalf("ParseVars: %v", err)
	}
	local := FlattenSnapshot(r)
	for name, want := range local {
		if got, ok := scraped[name]; !ok || got != want {
			t.Errorf("scraped[%s] = %v (present %v), want %v", name, got, ok, want)
		}
	}
	if scraped["peer.http.requests.doc"] != 7 {
		t.Errorf("counter = %v, want 7", scraped["peer.http.requests.doc"])
	}
	if scraped["peer.http.latency_ns.doc.count"] != 4 {
		t.Errorf("hist count = %v, want 4", scraped["peer.http.latency_ns.doc.count"])
	}
	// Ambient expvars (cmdline, memstats) must not leak into the map.
	for name := range scraped {
		if name == "cmdline" || name == "memstats" {
			t.Errorf("ambient expvar %q leaked into parsed vars", name)
		}
	}
}

// ParseVars also accepts a bare Registry JSON rendering (no "axml"
// wrapper) — what an embedder publishing the registry directly serves.
func TestParseVarsBareRegistry(t *testing.T) {
	r := NewRegistry()
	r.Counter("peer.served").Add(42)
	m, err := ParseVars([]byte(r.String()))
	if err != nil {
		t.Fatal(err)
	}
	if m["peer.served"] != 42 {
		t.Fatalf("peer.served = %v, want 42", m["peer.served"])
	}
}

func TestDiffVars(t *testing.T) {
	before := map[string]float64{
		"peer.served":  10,
		"lat_ns.count": 5,
		"lat_ns.sum":   500,
		"lat_ns.p99":   64,
		"gone.metric":  3,
		"lat_ns.max":   90,
	}
	after := map[string]float64{
		"peer.served":  25,
		"lat_ns.count": 9,
		"lat_ns.sum":   1700,
		"lat_ns.p99":   128,
		"lat_ns.max":   130,
		"fresh.metric": 6,
	}
	d := DiffVars(before, after)
	for name, want := range map[string]float64{
		"peer.served":  15,   // counter: delta
		"lat_ns.count": 4,    // histogram count: delta
		"lat_ns.sum":   1200, // histogram sum: delta
		"lat_ns.p99":   128,  // quantile: after value
		"lat_ns.max":   130,  // max: after value
		"fresh.metric": 6,    // absent before: diff against zero
	} {
		if d[name] != want {
			t.Errorf("diff[%s] = %v, want %v", name, d[name], want)
		}
	}
	if _, ok := d["gone.metric"]; ok {
		t.Error("metric only in before survived the diff")
	}
}

// A server restart mid-window resets its counters to zero; the diff must
// report the post-restart activity, never a negative delta (which would
// corrupt loadgen correlation reports).
func TestDiffVarsCounterReset(t *testing.T) {
	before := map[string]float64{
		"peer.served":         1000,
		"peer.http.bytes_out": 50000,
		"lat_ns.count":        400,
		"lat_ns.max":          90, // point-in-time: after value even when lower
		"steady.counter":      7,
	}
	after := map[string]float64{
		"peer.served":         42, // restarted: 42 requests since restart
		"peer.http.bytes_out": 0,  // restarted, nothing served yet
		"lat_ns.count":        13,
		"lat_ns.max":          50,
		"steady.counter":      9,
	}
	d := DiffVars(before, after)
	for name, want := range map[string]float64{
		"peer.served":         42,
		"peer.http.bytes_out": 0,
		"lat_ns.count":        13,
		"lat_ns.max":          50,
		"steady.counter":      2,
	} {
		if d[name] != want {
			t.Errorf("diff[%s] = %v, want %v", name, d[name], want)
		}
	}
	for name, v := range d {
		if v < 0 {
			t.Errorf("diff[%s] = %v: negative delta across a counter reset", name, v)
		}
	}
}

func TestHistSnapshotQuantile(t *testing.T) {
	var h Histogram
	for i := 0; i < 1000; i++ {
		h.Observe(100) // bucket upper bound 128
	}
	h.Observe(100000) // the single tail outlier, bucket upper bound 131072
	s := h.Snapshot()
	if got := s.Quantile(0.50); got != 128 {
		t.Errorf("Quantile(0.50) = %d, want 128", got)
	}
	if got := s.Quantile(0.999); got != 128 {
		t.Errorf("Quantile(0.999) = %d, want 128", got)
	}
	if got := s.Quantile(1.0); got != 131072 {
		t.Errorf("Quantile(1.0) = %d, want 131072", got)
	}
	if s.Quantile(0.999) != s.quantile(0.999) {
		t.Error("exported Quantile disagrees with internal quantile")
	}
}
