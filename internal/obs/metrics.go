// Package obs is the observability substrate for the AXML engine and its
// distribution layers: counters, gauges and histograms cheap enough for
// the hot paths (sweep firing, merge funnel, journal appends, HTTP
// serving), a span tracer that writes one JSON event per line for
// offline schedule inspection, and HTTP exposure of both through
// expvar-compatible /debug/vars plus net/http/pprof.
//
// Everything is stdlib-only and nil-safe: a nil *Counter, *Gauge,
// *Histogram, *Tracer or *Registry no-ops every method, so call sites
// instrument unconditionally and pay a single predictable branch when
// observability is off. The paper's engine semantics never depend on any
// of this — metrics observe runs, they do not steer them.
package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// counterShards spreads hot counters across cache lines so concurrent
// workers do not serialize on one contended word. 8 covers the engine's
// default pools; beyond that the loss is slight imprecision of spread,
// not correctness.
const counterShards = 8

// padded is a cache-line-padded atomic cell (64-byte lines assumed; the
// padding is harmless where lines are shorter).
type padded struct {
	n atomic.Int64
	_ [56]byte
}

// Counter is a monotone sharded counter. The zero value is ready to use;
// a nil Counter no-ops.
type Counter struct {
	shards [counterShards]padded
	next   atomic.Uint32 // round-robin shard assignment seed
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative n is permitted but turns the counter into a
// sum; the engine only ever adds forward).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	// Cheap spread: successive Add calls from different goroutines tend
	// to land on different shards; exactness is not required, only
	// contention relief.
	i := c.next.Add(1) % counterShards
	c.shards[i].n.Add(n)
}

// Value sums the shards.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	var v int64
	for i := range c.shards {
		v += c.shards[i].n.Load()
	}
	return v
}

// Gauge is a last-value metric (breaker state, pool size, queue depth).
// The zero value is ready; a nil Gauge no-ops.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value loads the gauge.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the number of power-of-two histogram buckets: bucket i
// counts observations v with 2^(i-1) <= v < 2^i (bucket 0 counts v <= 0
// and v == 1 lands in bucket 1). 64 buckets cover the full int64 range,
// so nanosecond durations from single digits to decades all land.
const histBuckets = 64

// Histogram is a lock-free power-of-two-bucket histogram, intended for
// nanosecond durations but agnostic to unit. The zero value is ready; a
// nil Histogram no-ops. Concurrent Observe calls never block each other.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64 // valid when count > 0; CAS-maintained
	max     atomic.Int64
}

// bucketOf maps an observation to its bucket index.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.buckets[bucketOf(v)].Add(1)
	h.sum.Add(v)
	if h.count.Add(1) == 1 {
		// First observation seeds min/max; racing observers fix them up
		// through the CAS loops below, so the seed only has to be
		// plausible, not exclusive.
		h.min.Store(v)
		h.max.Store(v)
	}
	for {
		cur := h.min.Load()
		if v >= cur {
			break
		}
		if h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur {
			break
		}
		if h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// ObserveSince records the elapsed nanoseconds since start.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(int64(time.Since(start)))
}

// HistSnapshot is a point-in-time summary of a histogram. Quantiles are
// upper bounds of the containing power-of-two bucket — coarse (within
// 2x) but monotone and cheap, which is what schedule inspection needs.
type HistSnapshot struct {
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	Min   int64 `json:"min"`
	Max   int64 `json:"max"`
	P50   int64 `json:"p50"`
	P90   int64 `json:"p90"`
	P99   int64 `json:"p99"`

	// buckets carries the raw counts so snapshots can be merged into
	// another histogram (see Histogram.Merge); not serialized.
	buckets [histBuckets]int64
}

// Mean returns Sum/Count, or 0 for an empty snapshot.
func (s HistSnapshot) Mean() int64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / s.Count
}

// Snapshot captures the histogram. Under concurrent writers the counts
// are each atomically read but not mutually consistent; the drift is at
// most the handful of observations in flight during the scan.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	for i := range h.buckets {
		s.buckets[i] = h.buckets[i].Load()
		s.Count += s.buckets[i]
	}
	s.Sum = h.sum.Load()
	if s.Count == 0 {
		return s
	}
	s.Min = h.min.Load()
	s.Max = h.max.Load()
	s.P50 = s.quantile(0.50)
	s.P90 = s.quantile(0.90)
	s.P99 = s.quantile(0.99)
	return s
}

// Quantile returns the upper bound of the power-of-two bucket containing
// the q-th observation (0 < q <= 1) — coarse (within 2x) but monotone,
// like the P50/P90/P99 fields. The load generator uses it for the tail
// quantiles the fixed fields do not carry (p99.9 against SLOs).
func (s HistSnapshot) Quantile(q float64) int64 { return s.quantile(q) }

// quantile returns the upper bound of the bucket containing the q-th
// observation (0 < q <= 1).
func (s *HistSnapshot) quantile(q float64) int64 {
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, n := range s.buckets {
		seen += n
		if seen >= rank {
			if i == 0 {
				return 0
			}
			if i >= 63 {
				return math.MaxInt64
			}
			return 1 << uint(i)
		}
	}
	return s.Max
}

// Merge folds a snapshot into the histogram — how an engine-local
// histogram (scoped to one run, reported in RunResult.Stats) also feeds
// a process-wide registry histogram without double-observing each event.
func (h *Histogram) Merge(s HistSnapshot) {
	if h == nil || s.Count == 0 {
		return
	}
	for i, n := range s.buckets {
		if n > 0 {
			h.buckets[i].Add(n)
		}
	}
	h.sum.Add(s.Sum)
	if h.count.Add(s.Count) == s.Count {
		h.min.Store(s.Min)
		h.max.Store(s.Max)
	} else {
		for {
			cur := h.min.Load()
			if s.Min >= cur {
				break
			}
			if h.min.CompareAndSwap(cur, s.Min) {
				break
			}
		}
		for {
			cur := h.max.Load()
			if s.Max <= cur {
				break
			}
			if h.max.CompareAndSwap(cur, s.Max) {
				break
			}
		}
	}
}
