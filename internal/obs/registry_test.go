package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("counter not memoized")
	}
	if r.Histogram("h") != r.Histogram("h") {
		t.Fatal("histogram not memoized")
	}
	// Concurrent first-use of the same names must converge on one metric.
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Counter("shared").Inc()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 800 {
		t.Fatalf("shared counter = %d, want 800", got)
	}
}

func TestRegistryStringIsSortedJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.count").Add(2)
	r.Gauge("a.gauge").Set(-1)
	r.Histogram("c.hist_ns").Observe(5)
	var m map[string]any
	if err := json.Unmarshal([]byte(r.String()), &m); err != nil {
		t.Fatalf("String() is not JSON: %v", err)
	}
	if m["b.count"].(float64) != 2 || m["a.gauge"].(float64) != -1 {
		t.Fatalf("values: %v", m)
	}
	hist := m["c.hist_ns"].(map[string]any)
	if hist["count"].(float64) != 1 || hist["p50"].(float64) != 8 {
		t.Fatalf("histogram serialization: %v", hist)
	}
}

// The debug endpoints are the operator's window (satellite: /debug/vars
// and pprof must be live and well-formed through httptest).
func TestDebugMuxVars(t *testing.T) {
	r := NewRegistry()
	r.Counter("engine.sweeps").Add(3)
	r.Histogram("engine.eval_ns").Observe(1024)
	srv := httptest.NewServer(DebugMux(r))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("/debug/vars is not a JSON object: %v\n%s", err, body)
	}
	// expvar's ambient defaults must coexist with the registry.
	if _, ok := vars["cmdline"]; !ok {
		t.Fatal("missing ambient expvar cmdline")
	}
	var ax map[string]any
	if err := json.Unmarshal(vars["axml"], &ax); err != nil {
		t.Fatalf("axml member: %v", err)
	}
	if ax["engine.sweeps"].(float64) != 3 {
		t.Fatalf("engine.sweeps = %v", ax["engine.sweeps"])
	}
}

func TestDebugMuxPprof(t *testing.T) {
	srv := httptest.NewServer(DebugMux(NewRegistry()))
	defer srv.Close()
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/goroutine?debug=1", "/debug/pprof/cmdline"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
	}
}
