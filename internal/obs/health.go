package obs

import (
	"fmt"
	"net/http"
	"sort"
)

// Health surface. Liveness (/healthz) answers "is the process serving"
// and is unconditionally healthy once the listener accepts — a deadlocked
// handler simply never answers, which is the signal orchestrators act
// on. Readiness (/readyz) answers "should traffic be routed here" and is
// the conjunction of caller-supplied checks: a durable peer is not ready
// while its journal is failing writes, a sharded peer is not ready while
// ring members don't resolve to URLs.

// Check is one named readiness probe. Probe returns nil when the
// condition holds; the error message is surfaced verbatim on /readyz.
// Probes run on every /readyz request, so they must be cheap and safe
// for concurrent use.
type Check struct {
	Name  string
	Probe func() error
}

// HealthHandler serves liveness: 200 "ok" for GET/HEAD.
func HealthHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
}

// ReadyHandler serves readiness: 200 with one "ok <name>" line per check
// when all probes pass, 503 listing every failing probe otherwise.
// Checks with a nil Probe always pass (registration can precede wiring).
func ReadyHandler(checks ...Check) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.Header().Set("Allow", "GET, HEAD")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		type result struct {
			name string
			err  error
		}
		results := make([]result, 0, len(checks))
		failed := 0
		for _, c := range checks {
			var err error
			if c.Probe != nil {
				err = c.Probe()
			}
			if err != nil {
				failed++
			}
			results = append(results, result{c.Name, err})
		}
		sort.Slice(results, func(i, j int) bool { return results[i].name < results[j].name })
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if failed > 0 {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		for _, res := range results {
			if res.err != nil {
				fmt.Fprintf(w, "fail %s: %v\n", res.name, res.err)
			} else {
				fmt.Fprintf(w, "ok %s\n", res.name)
			}
		}
		if len(results) == 0 {
			fmt.Fprintln(w, "ok")
		}
	})
}
