// Package query implements the positive query language of Section 3.1: a
// monotone conjunctive fragment of XQuery. A positive query is a rule
//
//	r :- d1/p1, ..., dn/pn, e1, ..., em
//
// where r and the pi are positive AXML tree patterns over document names
// di, and the ej are inequalities x != y between label, function or value
// variables (never tree variables) or constants.
//
// Definition 3.1 imposes: (2) every head variable occurs in the body;
// (3) no tree variable occurs twice in the body and inequalities never
// involve tree variables. Validate enforces all of it. These restrictions
// are what make the snapshot semantics monotone (Proposition 3.1).
package query

import (
	"fmt"
	"strings"

	"axml/internal/pattern"
	"axml/internal/subsume"
	"axml/internal/tree"
)

// Atom is one body conjunct d/p: pattern p must embed into the document
// named Doc.
type Atom struct {
	Doc     string
	Pattern *pattern.Node
}

// String renders the atom as "doc/pattern".
func (a Atom) String() string { return a.Doc + "/" + a.Pattern.String() }

// Term is one side of an inequality: either a variable (label, value or
// function variable) or a string constant.
type Term struct {
	// Var is the variable name; empty for constants.
	Var string
	// Const is the constant; used when Var is empty.
	Const string
}

// Variable returns a variable term.
func Variable(name string) Term { return Term{Var: name} }

// Constant returns a constant term.
func Constant(v string) Term { return Term{Const: v} }

// String renders the term; variables keep a leading "?" only when printed
// inside inequalities, so we emit the bare name for variables and quote
// constants.
func (t Term) String() string {
	if t.Var != "" {
		return t.Var
	}
	return fmt.Sprintf("%q", t.Const)
}

// Ineq is an inequality constraint x != y.
type Ineq struct {
	Left, Right Term
}

// String renders the inequality.
func (e Ineq) String() string { return e.Left.String() + " != " + e.Right.String() }

// Query is a positive query: Head :- Body, Ineqs.
type Query struct {
	// Name optionally names the query (the function name of the service
	// it defines, or a label for diagnostics).
	Name  string
	Head  *pattern.Node
	Body  []Atom
	Ineqs []Ineq
}

// String renders the query as "head :- atom, ..., x != y, ..." in the
// concrete syntax ParseQuery accepts (inequality variables carry the
// sigil of their kind, resolved from the body).
func (q *Query) String() string {
	kinds := map[string]pattern.Kind{}
	for _, a := range q.Body {
		_ = a.Pattern.Vars(kinds) // best effort; String never fails
	}
	var b strings.Builder
	b.WriteString(q.Head.String())
	b.WriteString(" :- ")
	parts := make([]string, 0, len(q.Body)+len(q.Ineqs))
	for _, a := range q.Body {
		parts = append(parts, a.String())
	}
	renderTerm := func(t Term) string {
		if t.Var == "" {
			return fmt.Sprintf("%q", t.Const)
		}
		if k, ok := kinds[t.Var]; ok && k.Sigil() != 0 {
			return string(k.Sigil()) + t.Var
		}
		return "$" + t.Var
	}
	for _, e := range q.Ineqs {
		parts = append(parts, renderTerm(e.Left)+" != "+renderTerm(e.Right))
	}
	b.WriteString(strings.Join(parts, ", "))
	return b.String()
}

// IsSimple reports whether the query uses no tree variables anywhere
// (Definition 3.1: a simple query).
func (q *Query) IsSimple() bool {
	if !q.Head.IsSimple() {
		return false
	}
	for _, a := range q.Body {
		if !a.Pattern.IsSimple() {
			return false
		}
	}
	return true
}

// DocNames returns the distinct document names used in the body, in first-
// occurrence order.
func (q *Query) DocNames() []string {
	seen := map[string]bool{}
	var out []string
	for _, a := range q.Body {
		if !seen[a.Doc] {
			seen[a.Doc] = true
			out = append(out, a.Doc)
		}
	}
	return out
}

// UsesInput and UsesContext report whether the body reads the reserved
// documents.
func (q *Query) UsesInput() bool { return q.usesDoc(tree.Input) }

// UsesContext reports whether the body reads the context document.
func (q *Query) UsesContext() bool { return q.usesDoc(tree.Context) }

func (q *Query) usesDoc(name string) bool {
	for _, a := range q.Body {
		if a.Doc == name {
			return true
		}
	}
	return false
}

// Validate enforces Definition 3.1. It returns a descriptive error for the
// first violation found.
func (q *Query) Validate() error {
	if q.Head == nil {
		return fmt.Errorf("query %s: nil head", q.Name)
	}
	if err := q.Head.Validate(); err != nil {
		return fmt.Errorf("query %s: head: %w", q.Name, err)
	}
	bodyVars := map[string]pattern.Kind{}
	treeVarCount := map[string]int{}
	for _, a := range q.Body {
		if a.Pattern == nil {
			return fmt.Errorf("query %s: nil pattern for document %q", q.Name, a.Doc)
		}
		if err := a.Pattern.Validate(); err != nil {
			return fmt.Errorf("query %s: body %s: %w", q.Name, a.Doc, err)
		}
		if err := a.Pattern.Vars(bodyVars); err != nil {
			return fmt.Errorf("query %s: body: %w", q.Name, err)
		}
		countTreeVarOccurrences(a.Pattern, treeVarCount)
	}
	for v, n := range treeVarCount {
		if n > 1 {
			return fmt.Errorf("query %s: tree variable #%s occurs %d times in the body; at most once is allowed", q.Name, v, n)
		}
	}
	headVars := map[string]pattern.Kind{}
	if err := q.Head.Vars(headVars); err != nil {
		return fmt.Errorf("query %s: head: %w", q.Name, err)
	}
	for v, k := range headVars {
		bk, ok := bodyVars[v]
		if !ok {
			return fmt.Errorf("query %s: head variable %c%s does not occur in the body (unsafe)", q.Name, k.Sigil(), v)
		}
		if bk != k {
			return fmt.Errorf("query %s: variable %s is %s in the head but %s in the body", q.Name, v, k, bk)
		}
	}
	for _, e := range q.Ineqs {
		for _, t := range []Term{e.Left, e.Right} {
			if t.Var == "" {
				continue
			}
			k, ok := bodyVars[t.Var]
			if !ok {
				return fmt.Errorf("query %s: inequality uses variable %s not bound in the body", q.Name, t.Var)
			}
			if k == pattern.VarTree {
				return fmt.Errorf("query %s: inequality on tree variable #%s is not allowed", q.Name, t.Var)
			}
		}
	}
	return nil
}

func countTreeVarOccurrences(p *pattern.Node, dst map[string]int) {
	if p == nil {
		return
	}
	if p.Kind == pattern.VarTree {
		dst[p.Name]++
	}
	for _, c := range p.Children {
		countTreeVarOccurrences(c, dst)
	}
}

// Docs gives a meaning θ to document names: it maps each name to a tree.
// Missing names simply yield no matches for their atoms.
type Docs map[string]*tree.Node

// Indexes optionally maps document names to inverted indexes accelerating
// their atoms (see pattern.Index). The reserved "context" name may map to
// the index of the document that owns the bound subtree: the index
// accelerates the match exactly when the context is the whole document
// (a root-level call) and degrades to the walk otherwise. A nil map, a
// missing entry or a nil index all degrade to the naive walk.
type Indexes map[string]*pattern.Index

// Snapshot evaluates the query on the given document binding without
// invoking any service call: the snapshot result q(I) of Section 3.1. The
// returned forest consists of freshly allocated, reduced trees with no
// tree subsumed by another.
func Snapshot(q *Query, docs Docs) (tree.Forest, error) {
	return SnapshotIndexed(q, docs, nil)
}

// SnapshotIndexed is Snapshot accelerated by per-document inverted
// indexes. Results are identical to Snapshot.
func SnapshotIndexed(q *Query, docs Docs, ixs Indexes) (tree.Forest, error) {
	asns, err := BodyAssignmentsIndexed(q, docs, ixs)
	if err != nil {
		return nil, err
	}
	var out tree.Forest
	for _, asn := range asns {
		t, err := pattern.Instantiate(q.Head, asn)
		if err != nil {
			return nil, fmt.Errorf("query %s: %w", q.Name, err)
		}
		out = append(out, t)
	}
	return subsume.ReduceForest(out), nil
}

// SnapshotSince is Snapshot restricted to the delta: it instantiates only
// the body assignments with at least one witnessing embedding that
// touches a node stamped after the per-document baseline in since (keyed
// by atom document name, including the reserved "input"/"context"). A
// document name missing from since is treated as all-new (full
// re-evaluation for its atoms). A nil since is exactly Snapshot. By
// monotonicity (Proposition 3.1), assignments whose every witness is old
// were already produced at the baseline, so skipping them loses nothing.
func SnapshotSince(q *Query, docs Docs, since map[string]uint64) (tree.Forest, error) {
	return SnapshotSinceIndexed(q, docs, since, nil)
}

// SnapshotSinceIndexed is SnapshotSince accelerated by per-document
// inverted indexes. Results are identical to SnapshotSince.
func SnapshotSinceIndexed(q *Query, docs Docs, since map[string]uint64, ixs Indexes) (tree.Forest, error) {
	if since == nil {
		return SnapshotIndexed(q, docs, ixs)
	}
	sts, err := bodyAssignmentsSince(q, docs, since, ixs)
	if err != nil {
		return nil, err
	}
	var out tree.Forest
	for _, st := range sts {
		if !st.New {
			continue
		}
		t, err := pattern.Instantiate(q.Head, st.Asn)
		if err != nil {
			return nil, fmt.Errorf("query %s: %w", q.Name, err)
		}
		out = append(out, t)
	}
	return subsume.ReduceForest(out), nil
}

// bodyAssignmentsSince is BodyAssignments with per-assignment freshness:
// the New flag of each result reports whether some witnessing embedding
// maps a pattern node onto a document node appended after the baseline
// version of that atom's document.
func bodyAssignmentsSince(q *Query, docs Docs, since map[string]uint64, ixs Indexes) ([]pattern.Stamped, error) {
	sts := []pattern.Stamped{{Asn: pattern.Assignment{}}}
	for _, a := range orderAtoms(q, ixs) {
		doc := docs[a.Doc]
		if doc == nil {
			return nil, nil
		}
		base, known := since[a.Doc]
		ix := ixs[a.Doc]
		var next []pattern.Stamped
		for _, st := range sts {
			for _, m := range ix.MatchUnderSince(a.Pattern, doc, st.Asn, base) {
				// An unknown baseline makes every match of this atom new
				// (conservative full re-evaluation for this conjunct).
				next = append(next, pattern.Stamped{Asn: m.Asn, New: st.New || m.New || !known})
			}
		}
		if len(next) == 0 {
			return nil, nil
		}
		sts = dedupStamped(next)
	}
	out := sts[:0]
	for _, st := range sts {
		ok, err := satisfiesIneqs(q, st.Asn)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, st)
		}
	}
	return out, nil
}

func dedupStamped(as []pattern.Stamped) []pattern.Stamped {
	idx := make(map[string]int, len(as))
	out := as[:0]
	for _, a := range as {
		k := a.Asn.Key()
		if i, ok := idx[k]; ok {
			if a.New {
				out[i].New = true
			}
			continue
		}
		idx[k] = len(out)
		out = append(out, a)
	}
	return out
}

// BodyAssignments computes every assignment satisfying the body and the
// inequalities, restricted to the variables, deduplicated.
func BodyAssignments(q *Query, docs Docs) ([]pattern.Assignment, error) {
	return BodyAssignmentsIndexed(q, docs, nil)
}

// BodyAssignmentsIndexed is BodyAssignments accelerated by per-document
// inverted indexes: atoms are joined in greedy selectivity order (see
// orderAtoms) and each atom matches through its document's index when one
// is provided. The assignment set is identical to BodyAssignments.
func BodyAssignmentsIndexed(q *Query, docs Docs, ixs Indexes) ([]pattern.Assignment, error) {
	asns := []pattern.Assignment{{}}
	for _, a := range orderAtoms(q, ixs) {
		doc := docs[a.Doc]
		if doc == nil {
			return nil, nil
		}
		ix := ixs[a.Doc]
		var next []pattern.Assignment
		for _, asn := range asns {
			next = append(next, ix.MatchUnder(a.Pattern, doc, asn)...)
		}
		if len(next) == 0 {
			return nil, nil
		}
		asns = dedupAssignments(next)
	}
	var out []pattern.Assignment
	for _, asn := range asns {
		ok, err := satisfiesIneqs(q, asn)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, asn)
		}
	}
	return out, nil
}

// orderAtoms returns the body atoms in greedy join order: repeatedly pick
// the not-yet-joined atom binding the most variables already bound by the
// chosen prefix, breaking ties by index selectivity (the length of the
// rarest constant's candidate list) and then by original position. Bound
// variables act as constants inside MatchUnder, so joining them early
// shrinks the intermediate assignment sets; conjunction is commutative
// and results are deduplicated, so any order yields the same set. Greedy
// one-step lookahead is the janus-datalog observation: with exact
// candidate counts for free, the greedy order is within noise of optimal
// and costs nothing to compute.
func orderAtoms(q *Query, ixs Indexes) []Atom {
	n := len(q.Body)
	if n <= 1 {
		return q.Body
	}
	vars := make([]map[string]pattern.Kind, n)
	sel := make([]int, n)
	for i, a := range q.Body {
		vars[i] = map[string]pattern.Kind{}
		_ = a.Pattern.Vars(vars[i]) // best effort; invalid patterns fail later
		sel[i] = ixs[a.Doc].Selectivity(a.Pattern)
	}
	bound := map[string]bool{}
	used := make([]bool, n)
	out := make([]Atom, 0, n)
	for len(out) < n {
		best, bestBound := -1, -1
		for i := range q.Body {
			if used[i] {
				continue
			}
			nb := 0
			for v := range vars[i] {
				if bound[v] {
					nb++
				}
			}
			if best < 0 || nb > bestBound || (nb == bestBound && sel[i] < sel[best]) {
				best, bestBound = i, nb
			}
		}
		used[best] = true
		out = append(out, q.Body[best])
		for v := range vars[best] {
			bound[v] = true
		}
	}
	return out
}

func dedupAssignments(as []pattern.Assignment) []pattern.Assignment {
	seen := make(map[string]bool, len(as))
	out := as[:0]
	for _, a := range as {
		k := a.Key()
		if !seen[k] {
			seen[k] = true
			out = append(out, a)
		}
	}
	return out
}

func satisfiesIneqs(q *Query, asn pattern.Assignment) (bool, error) {
	for _, e := range q.Ineqs {
		l, err := termValue(q, e.Left, asn)
		if err != nil {
			return false, err
		}
		r, err := termValue(q, e.Right, asn)
		if err != nil {
			return false, err
		}
		if l == r {
			return false, nil
		}
	}
	return true, nil
}

func termValue(q *Query, t Term, asn pattern.Assignment) (string, error) {
	if t.Var == "" {
		return t.Const, nil
	}
	b, ok := asn[t.Var]
	if !ok {
		return "", fmt.Errorf("query %s: inequality variable %s unbound", q.Name, t.Var)
	}
	if b.Tree != nil {
		return "", fmt.Errorf("query %s: inequality variable %s bound to a tree", q.Name, t.Var)
	}
	return b.Atom, nil
}
