package query_test

import (
	"testing"

	"axml/internal/pattern"
	"axml/internal/query"
	"axml/internal/subsume"
	"axml/internal/syntax"
	"axml/internal/tree"
)

func docs(t *testing.T, pairs ...string) query.Docs {
	t.Helper()
	if len(pairs)%2 != 0 {
		t.Fatal("docs needs name/tree pairs")
	}
	d := query.Docs{}
	for i := 0; i < len(pairs); i += 2 {
		n, err := syntax.ParseDocument(pairs[i+1])
		if err != nil {
			t.Fatalf("doc %s: %v", pairs[i], err)
		}
		d[pairs[i]] = n
	}
	return d
}

func q(t *testing.T, src string) *query.Query {
	t.Helper()
	qq, err := syntax.ParseQuery(src)
	if err != nil {
		t.Fatalf("query %q: %v", src, err)
	}
	return qq
}

func forestEq(t *testing.T, got tree.Forest, want ...string) {
	t.Helper()
	var wf tree.Forest
	for _, w := range want {
		n, err := syntax.ParseDocument(w)
		if err != nil {
			t.Fatalf("want %q: %v", w, err)
		}
		wf = append(wf, n)
	}
	if got.CanonicalString() != subsume.ReduceForest(wf).CanonicalString() {
		t.Fatalf("forest = %s, want %s", got.CanonicalString(), wf.CanonicalString())
	}
}

func TestSnapshotPaperExample31(t *testing.T) {
	d := docs(t,
		"d", `r{t{a{1},b{c{2},d{3}}},t{a{1},b{c{3},e{3}}},t{a{2},b{c{2},k{6}}}}`,
		"dp", `a{1}`,
	)
	labelQ := q(t, `%z :- dp/a{$x}, d/r{t{a{$x},b{%z}}}`)
	got, err := query.Snapshot(labelQ, d)
	if err != nil {
		t.Fatal(err)
	}
	forestEq(t, got, `c`, `d`, `e`)

	treeQ := q(t, `#Z :- dp/a{$x}, d/r{t{a{$x},b{#Z}}}`)
	got, err = query.Snapshot(treeQ, d)
	if err != nil {
		t.Fatal(err)
	}
	forestEq(t, got, `c{"2"}`, `d{"3"}`, `c{"3"}`, `e{"3"}`)
}

func TestSnapshotCrossAtomJoin(t *testing.T) {
	d := docs(t, "d", `r{t{a{1},b{2}},t{a{2},b{3}},t{a{7},b{8}}}`)
	tc := q(t, `t{a{$x},b{$y}} :- d/r{t{a{$x},b{$z}}}, d/r{t{a{$z},b{$y}}}`)
	got, err := query.Snapshot(tc, d)
	if err != nil {
		t.Fatal(err)
	}
	forestEq(t, got, `t{a{"1"},b{"3"}}`)
}

func TestSnapshotInequalities(t *testing.T) {
	d := docs(t, "d", `r{a{1},a{2},a{3}}`)
	qq := q(t, `p{$x,$y} :- d/r{a{$x},a{$y}}, $x != $y, $x != "3", $y != "3"`)
	got, err := query.Snapshot(qq, d)
	if err != nil {
		t.Fatal(err)
	}
	forestEq(t, got, `p{"1","2"}`, `p{"2","1"}`)
}

func TestSnapshotConstantIneq(t *testing.T) {
	d := docs(t, "d", `r{a{1}}`)
	sat := q(t, `ok :- d/r{a{$x}}, "1" != "2"`)
	got, err := query.Snapshot(sat, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("constant-true inequality dropped results: %v", got)
	}
	unsat := q(t, `ok :- d/r{a{$x}}, "1" != "1"`)
	got, err = query.Snapshot(unsat, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("constant-false inequality kept results: %v", got)
	}
}

func TestSnapshotEmptyBodyYieldsHead(t *testing.T) {
	qq := q(t, `a{!f} :- `)
	got, err := query.Snapshot(qq, query.Docs{})
	if err != nil {
		t.Fatal(err)
	}
	forestEq(t, got, `a{!f}`)
}

func TestSnapshotMissingDocumentYieldsNothing(t *testing.T) {
	qq := q(t, `a :- nowhere/x`)
	got, err := query.Snapshot(qq, query.Docs{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("missing doc produced results: %v", got)
	}
}

func TestSnapshotResultIsReducedForest(t *testing.T) {
	d := docs(t, "d", `r{a{1},a{1},a{2}}`)
	qq := q(t, `out{$x} :- d/r{a{$x}}`)
	got, err := query.Snapshot(qq, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("results = %v", got)
	}
	for _, n := range got {
		if !subsume.IsReduced(n) {
			t.Fatalf("unreduced result %s", n)
		}
	}
}

// Proposition 3.1(1): snapshot semantics is monotone.
func TestProposition31Monotone(t *testing.T) {
	small := docs(t, "d", `r{t{a{1},b{2}}}`)
	big := docs(t, "d", `r{t{a{1},b{2}},t{a{2},b{3}},extra{t{a{9},b{9}}}}`)
	queries := []string{
		`out{$x} :- d/r{t{a{$x}}}`,
		`out{$x,$y} :- d/r{t{a{$x},b{$y}}}, $x != $y`,
		`out{#T} :- d/r{#T}`,
		`out{%l} :- d/r{%l}`,
	}
	for _, src := range queries {
		qq := q(t, src)
		sg, err := query.Snapshot(qq, small)
		if err != nil {
			t.Fatal(err)
		}
		bg, err := query.Snapshot(qq, big)
		if err != nil {
			t.Fatal(err)
		}
		if !subsume.ForestSubsumed(sg, bg) {
			t.Errorf("query %q not monotone: %s vs %s", src, sg.CanonicalString(), bg.CanonicalString())
		}
	}
}

// Proposition 3.1(2): with tree (in)equality the language would be
// non-monotone; our validator rejects tree-variable inequalities outright.
func TestTreeInequalityRejected(t *testing.T) {
	if _, err := syntax.ParseQuery(`a :- d/r{#T}, #T != #T`); err == nil {
		t.Fatal("tree inequality accepted")
	}
}

func TestQueryAccessors(t *testing.T) {
	qq := q(t, `out{$x} :- input/r{a{$x}}, context/s, d/r{a{$x}}`)
	if !qq.UsesInput() || !qq.UsesContext() {
		t.Fatal("input/context detection broken")
	}
	names := qq.DocNames()
	if len(names) != 3 {
		t.Fatalf("DocNames = %v", names)
	}
	if qq.IsSimple() != true {
		t.Fatal("no tree vars but not simple")
	}
	if q(t, `out{#T} :- d/r{#T}`).IsSimple() {
		t.Fatal("tree-var query reported simple")
	}
}

func TestValidateDirectErrors(t *testing.T) {
	// Build invalid queries programmatically (the parser rejects most of
	// these shapes before validation, so exercise Validate directly).
	bad := []*query.Query{
		{Name: "nilhead"},
		{Name: "nilpat", Head: mustPat(t, `a`), Body: []query.Atom{{Doc: "d"}}},
	}
	for _, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("Validate accepted %+v", b)
		}
	}
}

func mustPat(t *testing.T, s string) *pattern.Node {
	t.Helper()
	p, err := syntax.ParsePattern(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}
