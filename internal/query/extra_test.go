package query_test

import (
	"strings"
	"testing"

	"axml/internal/pattern"
	"axml/internal/query"
	"axml/internal/syntax"
)

func TestQueryStringRendering(t *testing.T) {
	qq := q(t, `out{$x} :- d/r{a{$x},b{%l}}, $x != "5", %l != $x`)
	s := qq.String()
	// Must be re-parseable with correct sigils on inequality variables.
	back, err := syntax.ParseQuery(s)
	if err != nil {
		t.Fatalf("String output %q not parseable: %v", s, err)
	}
	if back.String() != s {
		t.Fatalf("unstable String: %q vs %q", back.String(), s)
	}
	if !strings.Contains(s, `$x != "5"`) || !strings.Contains(s, `%l != $x`) {
		t.Fatalf("sigils lost: %q", s)
	}
}

func TestAtomTermIneqString(t *testing.T) {
	a := query.Atom{Doc: "d", Pattern: mustPat(t, `r{$x}`)}
	if a.String() != "d/r{$x}" {
		t.Fatalf("Atom.String = %q", a.String())
	}
	if query.Variable("x").String() != "x" {
		t.Fatal("variable term string")
	}
	if query.Constant("v").String() != `"v"` {
		t.Fatal("constant term string")
	}
	e := query.Ineq{Left: query.Variable("x"), Right: query.Constant("v")}
	if e.String() != `x != "v"` {
		t.Fatalf("Ineq.String = %q", e.String())
	}
}

func TestBodyAssignmentsDirect(t *testing.T) {
	d := docs(t, "d", `r{a{1},a{2}}`)
	qq := q(t, `out{$x} :- d/r{a{$x}}`)
	asns, err := query.BodyAssignments(qq, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(asns) != 2 {
		t.Fatalf("assignments = %d", len(asns))
	}
	for _, a := range asns {
		if a["x"].Tree != nil || a["x"].Atom == "" {
			t.Fatalf("binding = %+v", a["x"])
		}
	}
}

func TestValidateMoreBranches(t *testing.T) {
	// Inequality with unbound variable, built programmatically.
	bad := &query.Query{
		Name: "b1",
		Head: mustPat(t, `a`),
		Body: []query.Atom{{Doc: "d", Pattern: mustPat(t, `r{$x}`)}},
		Ineqs: []query.Ineq{{
			Left:  query.Variable("nope"),
			Right: query.Constant("1"),
		}},
	}
	if err := bad.Validate(); err == nil {
		t.Fatal("unbound inequality variable accepted")
	}
	// Tree variable in inequality.
	bad2 := &query.Query{
		Name:  "b2",
		Head:  mustPat(t, `a`),
		Body:  []query.Atom{{Doc: "d", Pattern: mustPat(t, `r{#T}`)}},
		Ineqs: []query.Ineq{{Left: query.Variable("T"), Right: query.Constant("1")}},
	}
	if err := bad2.Validate(); err == nil {
		t.Fatal("tree inequality accepted")
	}
	// Head/body kind mismatch built directly.
	bad3 := &query.Query{
		Name: "b3",
		Head: &pattern.Node{Kind: pattern.VarLabel, Name: "x"},
		Body: []query.Atom{{Doc: "d", Pattern: mustPat(t, `r{$x}`)}},
	}
	if err := bad3.Validate(); err == nil {
		t.Fatal("kind mismatch accepted")
	}
	// Value-var head with children (invalid pattern shape).
	bad4 := &query.Query{
		Name: "b4",
		Head: &pattern.Node{Kind: pattern.VarValue, Name: "x",
			Children: []*pattern.Node{mustPat(t, `a`)}},
		Body: []query.Atom{{Doc: "d", Pattern: mustPat(t, `r{$x}`)}},
	}
	if err := bad4.Validate(); err == nil {
		t.Fatal("value-var head with children accepted")
	}
}

func TestSnapshotIneqErrors(t *testing.T) {
	// An inequality referencing a tree-bound variable fails at eval time
	// when validation is bypassed.
	d := docs(t, "d", `r{a{1}}`)
	qq := &query.Query{
		Name:  "raw",
		Head:  mustPat(t, `out`),
		Body:  []query.Atom{{Doc: "d", Pattern: mustPat(t, `r{#T}`)}},
		Ineqs: []query.Ineq{{Left: query.Variable("T"), Right: query.Constant("x")}},
	}
	if _, err := query.Snapshot(qq, d); err == nil {
		t.Fatal("tree-bound inequality evaluated")
	}
	// Unbound inequality variable at eval time.
	qq2 := &query.Query{
		Name:  "raw2",
		Head:  mustPat(t, `out`),
		Body:  []query.Atom{{Doc: "d", Pattern: mustPat(t, `r{a{$x}}`)}},
		Ineqs: []query.Ineq{{Left: query.Variable("zz"), Right: query.Constant("x")}},
	}
	if _, err := query.Snapshot(qq2, d); err == nil {
		t.Fatal("unbound inequality variable evaluated")
	}
}

func TestSnapshotHeadInstantiationError(t *testing.T) {
	// Head uses a variable the body binds as a tree: Instantiate must
	// fail for scalar head kinds (validation bypassed on purpose).
	d := docs(t, "d", `r{a{b}}`)
	qq := &query.Query{
		Name: "raw3",
		Head: &pattern.Node{Kind: pattern.VarValue, Name: "T"},
		Body: []query.Atom{{Doc: "d", Pattern: mustPat(t, `r{#T}`)}},
	}
	if _, err := query.Snapshot(qq, d); err == nil {
		t.Fatal("tree-to-scalar head instantiation succeeded")
	}
}
