package peer

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"time"

	"axml/internal/core"
	"axml/internal/journal"
	"axml/internal/obs"
	"axml/internal/tree"
)

// Durability: a durable peer journals every mutation of its documents —
// sweep appends, mirror syncs, push deliveries — as full reduced document
// states in an append-only write-ahead log (internal/journal), and
// periodically compacts the log into an atomically-written snapshot.
// Recovery replays snapshot then log, merging each state by least upper
// bound; the paper's monotonicity (Theorem 2.1) is what makes this simple
// scheme correct, because replay can only re-add information. The suffix
// lost to a torn tail or an unsynced batch is re-derived by re-sweeping:
// a peer killed at ANY point restarts into a state from which the fleet
// still converges to the same canonical fixpoint.

// Names of the durability files inside the data directory.
const (
	JournalFile  = "journal.wal"
	SnapshotFile = "snapshot.axs"
)

// recDocState is the journal record type for an ax:doc document-state
// payload (the only record type so far; the tag leaves room for more).
const recDocState byte = 1

// Durability configures a durable peer.
type Durability struct {
	// Dir is the data directory (created if missing). Empty disables
	// durability — Open then builds a plain in-memory peer.
	Dir string
	// SnapshotEvery compacts the journal into a snapshot after that many
	// appended records; 0 means DefaultSnapshotEvery, negative disables
	// automatic snapshots.
	SnapshotEvery int
	// SyncEvery fsyncs the journal every n records (1 = every record);
	// 0 means 1. See journal.Options.SyncEvery.
	SyncEvery int
	// WrapWriter is the fault-injection hook threaded to the journal
	// (internal/faults.CrashWriter delivers torn writes through it).
	WrapWriter func(io.Writer) io.Writer
}

// DefaultSnapshotEvery compacts the journal after this many records when
// Durability.SnapshotEvery is zero.
const DefaultSnapshotEvery = 64

// RecoveryInfo reports what Open (with WithDurability) found on disk.
type RecoveryInfo struct {
	// SnapshotSeq is the journal sequence the loaded snapshot covered
	// (0: no snapshot).
	SnapshotSeq uint64
	// Replayed counts the journal records merged into the system
	// (records at or below SnapshotSeq are skipped — the snapshot
	// already reflects them).
	Replayed int
	// Torn reports that the journal had a torn or corrupt tail, now
	// truncated — the expected residue of a crash mid-append.
	Torn bool
	// Recovered reports that any state (snapshot or records) was loaded.
	Recovered bool
}

// store is a peer's attached durability state, guarded by the peer mutex.
type store struct {
	dir           string
	j             *journal.Journal
	snapshotEvery int
	sinceSnapshot int
	err           error // first journaling failure; journaling stops after
}

// openStore recovers the snapshot and journal found in d.Dir into the
// freshly-built system (the persisted document states LUB-merge over the
// seed) and reopens the journal for appending. It runs before the peer
// exists: recovery's Restore merges must not observe a mutation hook
// that would journal them back. The registry and tracer (either may be
// nil) are handed to the journal for its journal.* metrics and fsync
// spans.
func openStore(name string, s *core.System, d Durability, m *obs.Registry, tr *obs.Tracer) (*store, RecoveryInfo, error) {
	var info RecoveryInfo
	if err := os.MkdirAll(d.Dir, 0o755); err != nil {
		return nil, info, err
	}

	// 1. Snapshot: the compacted history up to SnapshotSeq.
	snapPath := filepath.Join(d.Dir, SnapshotFile)
	snapSeq, payload, err := journal.ReadSnapshot(snapPath)
	switch {
	case err == nil:
		docs, err := UnmarshalSnapshot(payload)
		if err != nil {
			return nil, info, fmt.Errorf("peer %s: decode snapshot: %w", name, err)
		}
		for _, doc := range docs {
			if _, err := s.Restore(doc.Name, doc.Root); err != nil {
				return nil, info, fmt.Errorf("peer %s: restore snapshot: %w", name, err)
			}
		}
		info.SnapshotSeq = snapSeq
		info.Recovered = true
	case os.IsNotExist(err):
		// Cold start or journal-only state.
	default:
		return nil, info, fmt.Errorf("peer %s: read snapshot: %w", name, err)
	}

	// 2. Journal: every mutation after the snapshot. Records the
	// snapshot already covers are skipped (merging them anyway would be
	// harmless — the merge is idempotent — but pointless); a snapshot
	// newer than the log tail therefore recovers from the snapshot
	// alone.
	logPath := filepath.Join(d.Dir, JournalFile)
	replayInfo, err := journal.Replay(logPath, func(rec journal.Record) error {
		if rec.Seq <= snapSeq || rec.Type != recDocState {
			return nil
		}
		docName, root, err := UnmarshalDocRecord(rec.Payload)
		if err != nil {
			return fmt.Errorf("record %d: %w", rec.Seq, err)
		}
		if _, err := s.Restore(docName, root); err != nil {
			return fmt.Errorf("record %d: %w", rec.Seq, err)
		}
		info.Replayed++
		info.Recovered = true
		return nil
	})
	if err != nil {
		return nil, info, fmt.Errorf("peer %s: replay journal: %w", name, err)
	}
	info.Torn = replayInfo.Torn

	// 3. Reopen the log for appending (truncating any torn tail).
	syncEvery := d.SyncEvery
	if syncEvery == 0 {
		syncEvery = 1
	}
	j, err := journal.Open(logPath, replayInfo, journal.Options{
		SyncEvery:  syncEvery,
		WrapWriter: d.WrapWriter,
		Metrics:    m,
		Tracer:     tr,
	})
	if err != nil {
		return nil, info, fmt.Errorf("peer %s: open journal: %w", name, err)
	}

	snapshotEvery := d.SnapshotEvery
	if snapshotEvery == 0 {
		snapshotEvery = DefaultSnapshotEvery
	}
	return &store{dir: d.Dir, j: j, snapshotEvery: snapshotEvery}, info, nil
}

// Durable reports whether the peer journals its mutations.
func (p *Peer) Durable() bool { return p.store != nil }

// StoreErr returns the first journaling failure, if any. After a failure
// the peer keeps serving from memory but stops journaling — the condition
// an operator must notice, so Sweep also surfaces it once via logs at the
// call sites that care.
func (p *Peer) StoreErr() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.store == nil {
		return nil
	}
	return p.store.err
}

// Close flushes and closes the journal (a no-op for in-memory peers).
func (p *Peer) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.store == nil {
		return nil
	}
	return p.store.j.Close()
}

// Snapshot forces a snapshot-and-compact cycle now (normally triggered
// automatically every Durability.SnapshotEvery records).
func (p *Peer) Snapshot() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.store == nil {
		return fmt.Errorf("peer %s: not durable", p.Name)
	}
	return p.snapshotLocked()
}

// flushJournalLocked appends one doc-state record per document mutated
// since the last flush, then compacts if the snapshot threshold is
// reached. Called (with p.mu held) at the end of every mutating
// operation: Sweep, and System — which mirror syncs and push deliveries
// run under. A journaling failure is recorded once and disables further
// journaling; the in-memory peer keeps working (durability degrades, the
// fleet's convergence does not).
func (p *Peer) flushJournalLocked() {
	st := p.store
	if st == nil || st.err != nil || len(p.dirty) == 0 {
		return
	}
	names := make([]string, 0, len(p.dirty))
	for name := range p.dirty {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		doc := p.system.Document(name)
		if doc == nil {
			delete(p.dirty, name)
			continue
		}
		payload, err := MarshalDocRecord(name, doc.Root)
		if err != nil {
			st.err = fmt.Errorf("peer %s: encode journal record for %q: %w", p.Name, name, err)
			p.logger.Error("journaling disabled", "peer", p.Name, "err", st.err)
			return
		}
		if _, err := st.j.Append(recDocState, payload); err != nil {
			st.err = fmt.Errorf("peer %s: journal append for %q: %w", p.Name, name, err)
			p.logger.Error("journaling disabled", "peer", p.Name, "err", st.err)
			return
		}
		delete(p.dirty, name)
		st.sinceSnapshot++
	}
	if st.snapshotEvery > 0 && st.sinceSnapshot >= st.snapshotEvery {
		if err := p.snapshotLocked(); err != nil {
			st.err = err
			p.logger.Error("journaling disabled", "peer", p.Name, "err", st.err)
		}
	}
}

// snapshotLocked writes the full reduced document set as a snapshot
// stamped with the journal's current sequence, then truncates the log.
// The order matters: the snapshot reaches stable storage (temp file +
// fsync + rename) before any log byte disappears, so a crash between the
// two steps merely leaves a log whose records the snapshot already covers
// — which recovery skips by sequence number.
func (p *Peer) snapshotLocked() error {
	st := p.store
	start := time.Now()
	payload, err := MarshalSnapshot(p.system.Snapshot())
	if err != nil {
		return fmt.Errorf("peer %s: encode snapshot: %w", p.Name, err)
	}
	if err := st.j.Sync(); err != nil {
		return fmt.Errorf("peer %s: sync before snapshot: %w", p.Name, err)
	}
	snapPath := filepath.Join(st.dir, SnapshotFile)
	if err := journal.WriteSnapshot(snapPath, st.j.LastSeq(), payload); err != nil {
		return fmt.Errorf("peer %s: write snapshot: %w", p.Name, err)
	}
	if err := st.j.Reset(); err != nil {
		return fmt.Errorf("peer %s: compact journal: %w", p.Name, err)
	}
	st.sinceSnapshot = 0
	if m := p.metrics; m != nil {
		m.Counter("journal.snapshots").Inc()
		m.Counter("journal.snapshot_bytes").Add(int64(len(payload)))
		m.Histogram("journal.snapshot_ns").ObserveSince(start)
	}
	if tr := p.tracer; tr.Enabled() {
		tr.Emit(obs.Span{Kind: "snapshot", Name: p.Name, TSUs: tr.Now(),
			DurUs: time.Since(start).Microseconds(),
			Attrs: map[string]int64{"bytes": int64(len(payload))}})
	}
	return nil
}

// AddMirror registers a replica for anti-entropy re-synchronization.
// Mirror syncs run through the peer (m.Sync(p)) as before; registration
// only tells AntiEntropy which replicas to check.
func (p *Peer) AddMirror(m *Mirror) {
	p.mirrorMu.Lock()
	defer p.mirrorMu.Unlock()
	p.mirrors = append(p.mirrors, m)
}

// AntiEntropy compares each registered mirror's last-pulled remote digest
// against the remote peer's advertised document hash and repairs the
// replicas that moved — the catch-up pass a recovered peer runs after
// restart, when remote documents may have grown while it was down (and
// its in-memory digests were lost). The repair is a delta sync: the
// remote prunes everything below digest-matched subtrees, so only
// divergent fringes travel; a replica that diverged beyond what the
// remote can anchor (e.g. right after a restart) degrades to a full
// pull. Returns the number of mirrors re-synced. The first error is
// returned after all mirrors were tried; unreachable remotes do not stop
// the others from catching up.
func (p *Peer) AntiEntropy(ctx context.Context) (resynced int, err error) {
	p.mirrorMu.Lock()
	mirrors := append([]*Mirror(nil), p.mirrors...)
	p.mirrorMu.Unlock()
	p.metrics.Counter("peer.antientropy.runs").Inc()
	// One trace per pass: the hash probes and repair syncs of all mirrors
	// stitch together (unless the caller already carries a span).
	if !obs.SpanFromContext(ctx).Valid() && p.tracer.Enabled() {
		ctx = obs.ContextWithSpan(ctx, obs.NewTrace())
	}
	for _, m := range mirrors {
		if cerr := ctx.Err(); cerr != nil {
			if err == nil {
				err = cerr
			}
			break
		}
		client := m.Client
		if client == nil {
			client = p.client // the peer's outbound client (WithClient)
		}
		hashes, herr := (&Client{BaseURL: m.Remote, HTTP: client, MaxWire: p.maxWire}).Hashes(ctx)
		if herr != nil {
			p.metrics.Counter("peer.antientropy.errors").Inc()
			if err == nil {
				err = herr
			}
			continue
		}
		remote, ok := hashes[m.RemoteDoc]
		if ok {
			// The probe just observed the origin digest: record it so the
			// lag clock starts at detection, not at the repair sync below.
			var localDigest string
			p.System(func(s *core.System) {
				if doc := s.Document(m.LocalDoc); doc != nil {
					localDigest = docDigest(doc.Root)
				}
			})
			p.converge.observe(p.metrics, m.LocalDoc, remote, localDigest, false)
		}
		if ok && m.lastRemote != "" && remote == m.lastRemote {
			continue // replica provably current
		}
		if _, serr := m.Sync(ctx, p); serr != nil {
			p.metrics.Counter("peer.antientropy.errors").Inc()
			if err == nil {
				err = serr
			}
			continue
		}
		resynced++
	}
	p.metrics.Counter("peer.antientropy.resynced").Add(int64(resynced))
	if resynced > 0 {
		p.logger.Info("anti-entropy resynced mirrors",
			append([]any{"peer", p.Name, "resynced", resynced},
				obs.SpanFromContext(ctx).LogArgs()...)...)
	}
	return resynced, err
}

// docDigest is the digest format PathHash advertises per document.
func docDigest(n *tree.Node) string {
	h := n.CanonicalHash()
	return fmt.Sprintf("%x", h[:8])
}
