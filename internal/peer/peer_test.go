package peer

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"axml/internal/core"
	"axml/internal/syntax"
	"axml/internal/tree"
)

func TestWireTreeRoundTrip(t *testing.T) {
	cases := []string{
		`a`,
		`"v"`,
		`a{b{"1"},!GetRating{"Body and Soul"},c}`,
		`directory{cd{title{"L'amour"},rating{"***"}},!FreeMusicDB{type{"Jazz"}}}`,
		`a{"x<y&z",b}`,
	}
	for _, src := range cases {
		n := syntax.MustParseDocument(src)
		data, err := MarshalTree(n)
		if err != nil {
			t.Fatalf("marshal %q: %v", src, err)
		}
		back, err := UnmarshalTree(data)
		if err != nil {
			t.Fatalf("unmarshal %q (%s): %v", src, data, err)
		}
		if !tree.Isomorphic(n, back) {
			t.Fatalf("round trip %q -> %s -> %s", src, data, back)
		}
	}
}

func TestWireForestAndEnvelopeRoundTrip(t *testing.T) {
	f := tree.Forest{
		syntax.MustParseDocument(`a{b}`),
		syntax.MustParseDocument(`!call{"p"}`),
	}
	data, err := MarshalForest(f)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalForest(data)
	if err != nil {
		t.Fatal(err)
	}
	if f.CanonicalString() != back.CanonicalString() {
		t.Fatalf("forest round trip: %s vs %s", f.CanonicalString(), back.CanonicalString())
	}

	env := Envelope{
		Service: "GetRating",
		Input:   syntax.MustParseDocument(`input{"Body and Soul"}`),
		Context: syntax.MustParseDocument(`cd{title{"Body and Soul"}}`),
	}
	ed, err := MarshalEnvelope(env)
	if err != nil {
		t.Fatal(err)
	}
	envBack, err := UnmarshalEnvelope(ed)
	if err != nil {
		t.Fatal(err)
	}
	if envBack.Service != "GetRating" ||
		!tree.Isomorphic(envBack.Input, env.Input) ||
		!tree.Isomorphic(envBack.Context, env.Context) {
		t.Fatalf("envelope round trip: %+v", envBack)
	}
}

func TestWireErrors(t *testing.T) {
	if _, err := UnmarshalTree([]byte(``)); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := UnmarshalTree([]byte(`<ax:call>x</ax:call>`)); err == nil {
		t.Error("call without service accepted")
	}
	if _, err := UnmarshalForest([]byte(`<wrong></wrong>`)); err == nil {
		t.Error("non-forest accepted")
	}
	if _, err := UnmarshalEnvelope([]byte(`<ax:envelope></ax:envelope>`)); err == nil {
		t.Error("envelope without invoke accepted")
	}
}

// newRatingsPeer builds the server side of the jazz example: a peer whose
// GetRating service answers from its own ratings document.
func newRatingsPeer(t *testing.T) *Peer {
	t.Helper()
	s := core.MustParseSystem(`
doc ratings = db{entry{title{"Body and Soul"},stars{"4"}},entry{title{"Naima"},stars{"5"}}}
func GetRating = rating{$s} :- input/input{title{$t}}, ratings/db{entry{title{$t},stars{$s}}}
`)
	return New("ratings", s)
}

func TestRemoteServicePullMode(t *testing.T) {
	server := httptest.NewServer(newRatingsPeer(t).Handler())
	defer server.Close()

	// Client peer: its portal document calls the remote GetRating.
	clientSys := core.NewSystem()
	portal := syntax.MustParseDocument(
		`directory{cd{title{"Body and Soul"},!GetRating{title{"Body and Soul"}}},cd{title{"Naima"},!GetRating{title{"Naima"}}}}`)
	if err := clientSys.AddDocument(tree.NewDocument("portal", portal)); err != nil {
		t.Fatal(err)
	}
	if err := clientSys.AddService(&RemoteService{Name: "GetRating", URL: server.URL}); err != nil {
		t.Fatal(err)
	}
	res := clientSys.Run(core.RunOptions{})
	if !res.Terminated {
		t.Fatalf("pull run: %+v", res)
	}
	want := syntax.MustParseDocument(
		`directory{cd{title{"Body and Soul"},!GetRating{title{"Body and Soul"}},rating{"4"}},cd{title{"Naima"},!GetRating{title{"Naima"}},rating{"5"}}}`)
	got := clientSys.Document("portal").Root
	if !tree.Isomorphic(got, want) {
		t.Fatalf("portal after pull:\n%s\nwant\n%s", got.CanonicalString(), want.CanonicalString())
	}
}

func TestIntensionalAnswersTravel(t *testing.T) {
	// A service returning a call: intensional data crosses the wire.
	s := core.MustParseSystem(`
doc menu = m{item{"jazz"}}
func List = found{$x,!Detail{$x}} :- menu/m{item{$x}}
func Detail = detail{"42"} :-
`)
	server := httptest.NewServer(New("src", s).Handler())
	defer server.Close()

	clientSys := core.NewSystem()
	if err := clientSys.AddDocument(tree.NewDocument("d", syntax.MustParseDocument(`root{!List}`))); err != nil {
		t.Fatal(err)
	}
	if err := clientSys.AddService(&RemoteService{Name: "List", URL: server.URL}); err != nil {
		t.Fatal(err)
	}
	if err := clientSys.AddService(&RemoteService{Name: "Detail", URL: server.URL}); err != nil {
		t.Fatal(err)
	}
	res := clientSys.Run(core.RunOptions{})
	if !res.Terminated {
		t.Fatalf("run: %+v", res)
	}
	want := syntax.MustParseDocument(`root{!List,found{"jazz",!Detail{"jazz"},detail{"42"}}}`)
	if !tree.Isomorphic(clientSys.Document("d").Root, want) {
		t.Fatalf("got %s", clientSys.Document("d").Root.CanonicalString())
	}
}

func TestFetchDoc(t *testing.T) {
	p := newRatingsPeer(t)
	server := httptest.NewServer(p.Handler())
	defer server.Close()
	n, err := FetchDoc(context.Background(), nil, server.URL, "ratings")
	if err != nil {
		t.Fatal(err)
	}
	if n.Name != "db" || len(n.Children) != 2 {
		t.Fatalf("fetched %s", n)
	}
	if _, err := FetchDoc(context.Background(), nil, server.URL, "nope"); err == nil {
		t.Fatal("missing document fetched")
	}
}

func TestServeErrors(t *testing.T) {
	p := newRatingsPeer(t)
	if _, err := p.Serve(context.Background(), Envelope{Service: "nope"}); err == nil {
		t.Fatal("unknown service served")
	}
	server := httptest.NewServer(p.Handler())
	defer server.Close()
	resp, err := http.Get(server.URL + PathInvoke)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET invoke: %d", resp.StatusCode)
	}
	resp, err = http.Post(server.URL+PathInvoke, "application/xml", strings.NewReader("junk"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("junk invoke: %d", resp.StatusCode)
	}
}

// Distributed fixpoint: two peers deriving a chain across each other must
// reach the same result as a single-site system, and the coordinator must
// detect termination.
func TestCoordinatorDistributedFixpoint(t *testing.T) {
	// Peer A holds edges {1->2}, peer B holds {2->3}; each peer's "hop"
	// service extends paths using its local edges and the caller's
	// frontier passed via input.
	sysA := core.MustParseSystem(`
doc edges = r{t{a{1},b{2}}}
func HopA = t{a{$x},b{$y}} :- input/input{t{a{$x},b{$z}}}, edges/r{t{a{$z},b{$y}}}
`)
	sysB := core.MustParseSystem(`
doc edges = r{t{a{2},b{3}}}
func HopB = t{a{$x},b{$y}} :- input/input{t{a{$x},b{$z}}}, edges/r{t{a{$z},b{$y}}}
`)
	peerA, peerB := New("A", sysA), New("B", sysB)
	srvA := httptest.NewServer(peerA.Handler())
	defer srvA.Close()
	srvB := httptest.NewServer(peerB.Handler())
	defer srvB.Close()

	// A third peer assembles the closure: its document seeds the paths
	// and calls both hop services with the full current path set.
	sysC := core.MustParseSystem(`doc paths = r{t{a{0},b{1}}}`)
	// Local recursive service: feed current paths to the remote hops.
	root := sysC.Document("paths").Root
	root.Children = append(root.Children,
		tree.NewFunc("StepA"), tree.NewFunc("StepB"))
	if err := sysC.AddService(&contextForwardingService{name: "StepA", inner: &RemoteService{Name: "HopA", URL: srvA.URL}}); err != nil {
		t.Fatal(err)
	}
	if err := sysC.AddService(&contextForwardingService{name: "StepB", inner: &RemoteService{Name: "HopB", URL: srvB.URL}}); err != nil {
		t.Fatal(err)
	}
	peerC := New("C", sysC)
	srvC := httptest.NewServer(peerC.Handler())
	defer srvC.Close()

	coord := &Coordinator{URLs: []string{srvA.URL, srvB.URL, srvC.URL}}
	res, err := coord.RunToFixpoint(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Terminated {
		t.Fatalf("coordinator did not detect termination: %+v", res)
	}
	got := peerC.hashableDoc(t)
	want := syntax.MustParseDocument(
		`r{t{a{0},b{1}},t{a{0},b{2}},t{a{0},b{3}},!StepA,!StepB}`)
	if !tree.Isomorphic(got, want) {
		t.Fatalf("distributed closure:\n%s\nwant\n%s", got.CanonicalString(), want.CanonicalString())
	}
	if peerA.Stats().Served == 0 || peerB.Stats().Served == 0 {
		t.Fatal("remote peers were never called")
	}
}

// contextForwardingService adapts a remote service: it forwards the
// caller's context (the document holding the paths) as the remote input.
type contextForwardingService struct {
	name  string
	inner core.Service
}

func (s *contextForwardingService) ServiceName() string { return s.name }

func (s *contextForwardingService) Invoke(ctx context.Context, b core.Binding) (tree.Forest, error) {
	input := tree.NewLabel(tree.Input)
	if b.Context != nil {
		for _, c := range b.Context.Children {
			if c.Kind != tree.Func {
				input.Children = append(input.Children, c.Copy())
			}
		}
	}
	return s.inner.Invoke(ctx, core.Binding{Input: input, Context: b.Context, Docs: b.Docs})
}

func (p *Peer) hashableDoc(t *testing.T) *tree.Node {
	t.Helper()
	var out *tree.Node
	p.System(func(s *core.System) {
		out = s.Document("paths").Root.Copy()
	})
	return out
}

func TestPushModeMatchesPull(t *testing.T) {
	// Publisher peer with a growing... here static ratings; subscriber
	// receives pushed ratings at the cd node.
	pub := NewPublisher(newRatingsPeer(t))
	pubSrv := httptest.NewServer(newRatingsPeer(t).Handler())
	defer pubSrv.Close()

	subSys := core.NewSystem()
	portal := syntax.MustParseDocument(`directory{cd{title{"Naima"}}}`)
	if err := subSys.AddDocument(tree.NewDocument("portal", portal)); err != nil {
		t.Fatal(err)
	}
	subPeer := New("client", subSys)
	sub := NewSubscriber(subPeer)
	subSrv := httptest.NewServer(sub.Handler())
	defer subSrv.Close()

	// Attach the subscription at the cd node.
	var cd *tree.Node
	subPeer.System(func(s *core.System) {
		cd = s.Document("portal").Root.Children[0]
	})
	sub.Register("sub1", "portal", cd)
	pub.Subscribe("sub1", Envelope{
		Service: "GetRating",
		Input:   syntax.MustParseDocument(`input{title{"Naima"}}`),
	}, subSrv.URL)

	pushed, err := pub.Flush(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if pushed != 1 {
		t.Fatalf("pushed = %d", pushed)
	}
	// Flushing again pushes nothing new.
	pushed, err = pub.Flush(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if pushed != 0 {
		t.Fatalf("re-push = %d", pushed)
	}
	want := syntax.MustParseDocument(`directory{cd{title{"Naima"},rating{"5"}}}`)
	got := func() *tree.Node {
		var out *tree.Node
		subPeer.System(func(s *core.System) { out = s.Document("portal").Root.Copy() })
		return out
	}()
	if !tree.Isomorphic(got, want) {
		t.Fatalf("push result %s, want %s", got.CanonicalString(), want.CanonicalString())
	}
}

func TestSubscriberUnknownID(t *testing.T) {
	subSys := core.MustParseSystem(`doc d = a`)
	sub := NewSubscriber(New("c", subSys))
	srv := httptest.NewServer(sub.Handler())
	defer srv.Close()
	resp, err := http.Post(srv.URL+PathPush+"nope", "application/xml", strings.NewReader("<ax:forest></ax:forest>"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id: %d", resp.StatusCode)
	}
}
