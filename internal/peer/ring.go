package peer

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
)

// Sharding: the coordinator drives N peers that each hold every
// document — N copies, not N× the capacity. The Ring partitions the
// document space instead: peer names are placed on a consistent-hash
// circle (with virtual nodes for balance) and each document is owned by
// the first ReplicationFactor distinct peers clockwise from its hash.
// Adding or removing a peer moves only the documents in its arc — the
// property that makes resharding a fleet of growing documents cheap.
// The Router in front of each peer serves owned documents locally and
// forwards requests for everything else to an owner, so any peer is a
// valid entry point for the whole fleet.

// DefaultVirtualNodes is the per-peer virtual node count when NewRing
// gets 0: high enough that a 10-peer ring balances within a few percent,
// low enough that building the ring stays trivial.
const DefaultVirtualNodes = 64

// Ring is an immutable consistent-hash ring over peer names. Build a new
// one to change membership (cheap; peers hold it by pointer).
type Ring struct {
	points []ringPoint // sorted by hash
	names  []string    // distinct members, sorted
}

type ringPoint struct {
	hash uint64
	name string
}

// NewRing places each named peer at vnodes positions on the circle
// (0 means DefaultVirtualNodes). Duplicate names collapse.
func NewRing(names []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	seen := make(map[string]bool, len(names))
	r := &Ring{}
	for _, name := range names {
		if seen[name] {
			continue
		}
		seen[name] = true
		r.names = append(r.names, name)
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{
				hash: ringHash(fmt.Sprintf("%s#%d", name, i)),
				name: name,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		return a.name < b.name // deterministic on (vanishingly rare) collisions
	})
	sort.Strings(r.names)
	return r
}

func ringHash(s string) uint64 {
	h := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(h[:8])
}

// Peers returns the ring members, sorted.
func (r *Ring) Peers() []string { return append([]string(nil), r.names...) }

// Owners returns the rf distinct peers owning a document: the first
// distinct names clockwise from the document's hash. The first entry is
// the primary. rf < 1 is treated as 1; rf beyond the member count
// returns every member.
func (r *Ring) Owners(doc string, rf int) []string {
	if len(r.points) == 0 {
		return nil
	}
	if rf < 1 {
		rf = 1
	}
	if rf > len(r.names) {
		rf = len(r.names)
	}
	h := ringHash(doc)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	owners := make([]string, 0, rf)
	seen := make(map[string]bool, rf)
	for n := 0; n < len(r.points) && len(owners) < rf; n++ {
		pt := r.points[(i+n)%len(r.points)]
		if seen[pt.name] {
			continue
		}
		seen[pt.name] = true
		owners = append(owners, pt.name)
	}
	return owners
}

// Primary returns the first owner of a document.
func (r *Ring) Primary(doc string) string {
	o := r.Owners(doc, 1)
	if len(o) == 0 {
		return ""
	}
	return o[0]
}

// headerForwarded marks a routed request so a stale ring on the next hop
// cannot bounce it around the fleet: a forwarded request is always
// served locally.
const headerForwarded = "X-Axml-Forwarded"

// Router fronts one peer of a sharded fleet: document-keyed requests
// (PathDoc, PathDelta) for documents this peer owns are served locally,
// everything else is forwarded to the document's owners in ring order —
// so clients may ask any peer for any document. Non-document endpoints
// (invoke, sweep, hash, push) pass straight through to the local peer.
type Router struct {
	// Self is this peer's name on the ring.
	Self string
	// Ring is the fleet membership. Swap by building a new Ring.
	Ring *Ring
	// Resolve maps a peer name to its current base URL. Indirection
	// matters: a crash-restarted peer usually comes back at a new
	// address, and routing must follow it without rebuilding the ring.
	// Returning "" marks the peer unreachable (the router tries the next
	// owner).
	Resolve func(name string) string
	// ReplicationFactor is the owner-set size per document; 0 means 1.
	ReplicationFactor int
	// Client is the HTTP client for forwarded requests; nil means the
	// shared DefaultClient.
	Client *http.Client

	peer  *Peer
	local http.Handler
}

// NewRouter wraps a peer's handler for fleet routing.
func NewRouter(p *Peer, self string, ring *Ring, resolve func(string) string, rf int) *Router {
	return &Router{
		Self: self, Ring: ring, Resolve: resolve, ReplicationFactor: rf,
		peer: p, local: p.Handler(),
	}
}

// Owns reports whether this peer is in a document's owner set.
func (rt *Router) Owns(doc string) bool {
	for _, o := range rt.Ring.Owners(doc, rt.rf()) {
		if o == rt.Self {
			return true
		}
	}
	return false
}

func (rt *Router) rf() int {
	if rt.ReplicationFactor < 1 {
		return 1
	}
	return rt.ReplicationFactor
}

// ServeHTTP implements http.Handler.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	doc := ""
	switch {
	case strings.HasPrefix(r.URL.Path, PathDoc):
		doc = r.URL.Path[len(PathDoc):]
	case strings.HasPrefix(r.URL.Path, PathDelta):
		doc = r.URL.Path[len(PathDelta):]
	}
	if doc == "" || rt.Owns(doc) || r.Header.Get(headerForwarded) != "" {
		rt.local.ServeHTTP(w, r)
		return
	}
	rt.forward(w, r, doc)
}

// forward relays the request to the document's owners in ring order,
// answering with the first owner that responds at all (any status — a
// 404 from an owner is an authoritative answer, not a routing failure).
func (rt *Router) forward(w http.ResponseWriter, r *http.Request, doc string) {
	client := rt.Client
	if client == nil {
		client = DefaultClient
	}
	var lastErr error
	for _, owner := range rt.Ring.Owners(doc, rt.rf()) {
		base := rt.Resolve(owner)
		if base == "" {
			continue
		}
		u := base + r.URL.Path
		if r.URL.RawQuery != "" {
			u += "?" + r.URL.RawQuery
		}
		req, err := http.NewRequestWithContext(r.Context(), r.Method, u, r.Body)
		if err != nil {
			lastErr = err
			continue
		}
		req.Header = r.Header.Clone()
		req.Header.Set(headerForwarded, rt.Self)
		resp, err := client.Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		rt.peer.metrics.Counter("peer.route.forwarded").Inc()
		if ct := resp.Header.Get("Content-Type"); ct != "" {
			w.Header().Set("Content-Type", ct)
		}
		w.WriteHeader(resp.StatusCode)
		io.Copy(w, io.LimitReader(resp.Body, rt.peer.wireLimit()+1))
		resp.Body.Close()
		return
	}
	rt.peer.metrics.Counter("peer.route.unroutable").Inc()
	msg := fmt.Sprintf("no reachable owner for document %q", doc)
	if lastErr != nil {
		msg += ": " + lastErr.Error()
	}
	http.Error(w, msg, http.StatusBadGateway)
}
