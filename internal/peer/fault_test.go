package peer

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"axml/internal/core"
	"axml/internal/faults"
	"axml/internal/syntax"
	"axml/internal/tree"
)

// sweepWithin runs one sweep with a deadlock watchdog: a sweep that blocks
// on its own peer's lock would otherwise hang the whole test binary.
func sweepWithin(t *testing.T, p *Peer, d time.Duration) bool {
	t.Helper()
	type outcome struct {
		changed bool
		err     error
	}
	done := make(chan outcome, 1)
	go func() {
		changed, err := p.Sweep()
		done <- outcome{changed, err}
	}()
	select {
	case o := <-done:
		if o.err != nil {
			t.Fatalf("sweep: %v", o.err)
		}
		return o.changed
	case <-time.After(d):
		t.Fatalf("sweep did not finish within %v (deadlock)", d)
		return false
	}
}

// Regression: a peer whose document (via HTTP) calls one of its own
// services used to deadlock — Sweep held the peer lock across the remote
// round trip, and the incoming self-invocation blocked on that same lock.
func TestSelfCallSweepNoDeadlock(t *testing.T) {
	sys := core.NewSystem()
	if err := sys.AddService(core.ConstService("echo",
		tree.Forest{tree.NewLabel("pong")})); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddDocument(tree.NewDocument("d",
		syntax.MustParseDocument(`a{!SelfEcho}`))); err != nil {
		t.Fatal(err)
	}
	p := New("loop", sys)
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()
	// The remote binding can only be added once the server URL exists;
	// re-gate afterwards.
	p.System(func(s *core.System) {
		if err := s.AddService(&RemoteService{Name: "SelfEcho", Service: "echo", URL: srv.URL}); err != nil {
			t.Fatal(err)
		}
	})
	p.AttachGates()

	if !sweepWithin(t, p, 15*time.Second) {
		t.Fatal("self-call sweep changed nothing")
	}
	want := syntax.MustParseDocument(`a{!SelfEcho,pong}`)
	p.System(func(s *core.System) {
		if !tree.Isomorphic(s.Document("d").Root, want) {
			t.Fatalf("doc = %s", s.Document("d").Root.CanonicalString())
		}
	})
	if p.Stats().Served != 1 {
		t.Fatalf("served = %d", p.Stats().Served)
	}
}

// Regression: a cycle of peers (A sweeps a call served by B, whose
// implementation calls back into A) must make progress: each peer releases
// its lock while its own remote call is on the wire.
func TestPeerCycleSweepNoDeadlock(t *testing.T) {
	sysA := core.NewSystem()
	if err := sysA.AddService(core.ConstService("answer",
		tree.Forest{syntax.MustParseDocument(`deep{"42"}`)})); err != nil {
		t.Fatal(err)
	}
	if err := sysA.AddDocument(tree.NewDocument("d",
		syntax.MustParseDocument(`a{!AskB}`))); err != nil {
		t.Fatal(err)
	}
	pA := New("A", sysA)
	srvA := httptest.NewServer(pA.Handler())
	defer srvA.Close()

	pB := New("B", core.NewSystem())
	srvB := httptest.NewServer(pB.Handler())
	defer srvB.Close()

	// B's relay proxies to A's local answer; A's AskB goes to B's relay.
	pB.System(func(s *core.System) {
		if err := s.AddService(&RemoteService{Name: "relay", Service: "answer", URL: srvA.URL}); err != nil {
			t.Fatal(err)
		}
	})
	pB.AttachGates()
	pA.System(func(s *core.System) {
		if err := s.AddService(&RemoteService{Name: "AskB", Service: "relay", URL: srvB.URL}); err != nil {
			t.Fatal(err)
		}
	})
	pA.AttachGates()

	if !sweepWithin(t, pA, 15*time.Second) {
		t.Fatal("cycle sweep changed nothing")
	}
	want := syntax.MustParseDocument(`a{!AskB,deep{"42"}}`)
	pA.System(func(s *core.System) {
		if !tree.Isomorphic(s.Document("d").Root, want) {
			t.Fatalf("doc = %s", s.Document("d").Root.CanonicalString())
		}
	})
	if pB.Stats().Served != 1 || pA.Stats().Served != 1 {
		t.Fatalf("served: A=%d B=%d", pA.Stats().Served, pB.Stats().Served)
	}
}

// portalSystem builds the jazz-portal client over the given service.
func portalSystem(t *testing.T, svc core.Service) *core.System {
	t.Helper()
	sys := core.NewSystem()
	portal := syntax.MustParseDocument(
		`directory{cd{title{"Body and Soul"},!GetRating{title{"Body and Soul"}}},cd{title{"Naima"},!GetRating{title{"Naima"}}}}`)
	if err := sys.AddDocument(tree.NewDocument("portal", portal)); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddService(svc); err != nil {
		t.Fatal(err)
	}
	return sys
}

// Acceptance: a run over an httptest peer fleet with injected
// error-every-3 failures completes to the same canonical fixpoint as a
// failure-free run, with RunResult reporting the degraded invocations and
// zero aborts.
func TestFleetDegradedRunMatchesCleanFixpoint(t *testing.T) {
	cleanSrv := httptest.NewServer(newRatingsPeer(t).Handler())
	defer cleanSrv.Close()
	clean := portalSystem(t, &RemoteService{Name: "GetRating", URL: cleanSrv.URL})
	if res := clean.Run(core.RunOptions{}); !res.Terminated || res.Err != nil {
		t.Fatalf("clean run: %+v", res)
	}

	flakySrv := httptest.NewServer(faults.FlakyHandler(newRatingsPeer(t).Handler(), 3))
	defer flakySrv.Close()
	degraded := portalSystem(t, &RemoteService{Name: "GetRating", URL: flakySrv.URL})
	res := degraded.Run(core.RunOptions{ErrorPolicy: core.Degrade})
	if !res.Terminated {
		t.Fatalf("degraded run aborted: %+v", res)
	}
	if res.Failures == 0 || res.Errors["GetRating"] == 0 {
		t.Fatalf("injected failures not reported: %+v", res)
	}
	if degraded.CanonicalString() != clean.CanonicalString() {
		t.Fatalf("fixpoints differ:\n%s\nvs\n%s",
			degraded.CanonicalString(), clean.CanonicalString())
	}
}

// With a Retry layer the same flaky fleet converges with zero surfaced
// failures — the transient 502s are absorbed below the engine.
func TestFleetRetryAbsorbsInjectedFaults(t *testing.T) {
	cleanSrv := httptest.NewServer(newRatingsPeer(t).Handler())
	defer cleanSrv.Close()
	clean := portalSystem(t, &RemoteService{Name: "GetRating", URL: cleanSrv.URL})
	clean.Run(core.RunOptions{})

	flakySrv := httptest.NewServer(faults.FlakyHandler(newRatingsPeer(t).Handler(), 3))
	defer flakySrv.Close()
	retry := &core.Retry{
		Service:  &RemoteService{Name: "GetRating", URL: flakySrv.URL},
		Attempts: 3,
		Sleep:    func(time.Duration) {},
	}
	sys := portalSystem(t, retry)
	res := sys.Run(core.RunOptions{ErrorPolicy: core.Degrade})
	if !res.Terminated || res.Failures != 0 || res.Err != nil {
		t.Fatalf("retried run surfaced failures: %+v", res)
	}
	if retry.Retries() == 0 {
		t.Fatal("no retries recorded despite injected faults")
	}
	if sys.CanonicalString() != clean.CanonicalString() {
		t.Fatalf("fixpoints differ:\n%s\nvs\n%s",
			sys.CanonicalString(), clean.CanonicalString())
	}
}

// Hardened sweeps on a peer: the degrade policy plus failure stats.
func TestPeerSweepDegradeCountsFailures(t *testing.T) {
	flakySrv := httptest.NewServer(faults.FlakyHandler(newRatingsPeer(t).Handler(), 1)) // everything fails
	defer flakySrv.Close()
	sys := portalSystem(t, &RemoteService{Name: "GetRating", URL: flakySrv.URL})
	p := New("client", sys)
	p.ErrorPolicy = core.Degrade
	if _, err := p.Sweep(); err == nil {
		t.Fatal("all-failing sweep reported no error")
	}
	if p.Stats().Failures == 0 {
		t.Fatalf("stats = %+v", p.Stats())
	}
}

func TestDocAndHashRejectNonGET(t *testing.T) {
	srv := httptest.NewServer(newRatingsPeer(t).Handler())
	defer srv.Close()
	for _, path := range []string{PathDoc + "ratings", PathHash} {
		resp, err := http.Post(srv.URL+path, "text/plain", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("POST %s: %d, want 405", path, resp.StatusCode)
		}
		resp, err = http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d", path, resp.StatusCode)
		}
	}
}
