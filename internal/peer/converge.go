package peer

import (
	"sync"
	"time"

	"axml/internal/obs"
)

// Convergence telemetry: how far behind its origin is each replicated
// document, and how long does an origin write take to land here?
//
// Every replication path reports what it learned to the peer's
// convergence tracker:
//
//   - Mirror.Sync and AntiEntropy learn the origin's digest from the
//     delta negotiation (Delta.To) and the local digest after merging;
//   - push delivery learns the local digest after appending a batch
//     (the publisher's chain anchor is its origin digest).
//
// The tracker derives, per document: the last origin digest observed,
// the local digest last reached, whether they agree (converged), when
// the local digest last advanced, and the replication lag — measured
// entirely on the local clock as the interval from first observing a
// divergent origin digest to the local digest catching up to the
// origin, so cross-host clock skew never pollutes the histogram.
//
// Metrics (registered by Open when the peer has a registry):
//
//	peer.converge.docs     gauge fn  documents with a watermark
//	peer.converge.behind   gauge fn  documents whose local digest trails the origin
//	peer.converge.advances counter   local digest advances via replication
//	peer.converge.lag_ns   histogram one observation per divergence → convergence interval

// watermark is one document's convergence state as seen by this peer.
type watermark struct {
	origin      string    // last origin digest observed ("" = never learned)
	local       string    // last local digest recorded
	lastAdvance time.Time // when the local digest last moved
	originMoved time.Time // when a divergent origin digest was first observed (zero = in sync)
	lastLag     time.Duration
}

// convergence tracks watermarks for every replicated document on one
// peer. Guarded by its own mutex so the registry's gauge functions can
// read it without touching the peer lock.
type convergence struct {
	mu   sync.Mutex
	docs map[string]*watermark
	now  func() time.Time // test seam
}

func newConvergence() *convergence {
	return &convergence{docs: map[string]*watermark{}, now: time.Now}
}

func (cv *convergence) get(doc string) *watermark {
	w := cv.docs[doc]
	if w == nil {
		w = &watermark{}
		cv.docs[doc] = w
	}
	return w
}

// observe records the outcome of one replication exchange for doc:
// origin is the origin digest learned (empty when the exchange did not
// reveal one, e.g. a push delivery), local the local digest afterwards,
// advanced whether the exchange changed the local document. Convergence
// — the local digest reaching the last known origin digest — closes any
// open divergence interval and reports its duration to the lag
// histogram.
func (cv *convergence) observe(m *obs.Registry, doc, origin, local string, advanced bool) {
	if cv == nil {
		return
	}
	now := cv.now()
	cv.mu.Lock()
	defer cv.mu.Unlock()
	w := cv.get(doc)
	if origin != "" && origin != w.origin {
		w.origin = origin
		if origin != local && w.originMoved.IsZero() {
			// The origin is ahead of us as of now: the lag clock starts.
			w.originMoved = now
		}
	}
	w.local = local
	if advanced {
		w.lastAdvance = now
		m.Counter("peer.converge.advances").Inc()
	}
	if w.origin != "" && w.local == w.origin {
		if !w.originMoved.IsZero() {
			w.lastLag = now.Sub(w.originMoved)
			w.originMoved = time.Time{}
			m.Histogram("peer.converge.lag_ns").Observe(int64(w.lastLag))
		}
	}
}

// docsTracked is the peer.converge.docs gauge function.
func (cv *convergence) docsTracked() int64 {
	cv.mu.Lock()
	defer cv.mu.Unlock()
	return int64(len(cv.docs))
}

// docsBehind is the peer.converge.behind gauge function: documents whose
// last observed origin digest differs from the local one.
func (cv *convergence) docsBehind() int64 {
	cv.mu.Lock()
	defer cv.mu.Unlock()
	var n int64
	for _, w := range cv.docs {
		if w.origin != "" && w.local != w.origin {
			n++
		}
	}
	return n
}

// snapshot copies every watermark for the status surface.
func (cv *convergence) snapshot() map[string]watermark {
	cv.mu.Lock()
	defer cv.mu.Unlock()
	out := make(map[string]watermark, len(cv.docs))
	for doc, w := range cv.docs {
		out[doc] = *w
	}
	return out
}
