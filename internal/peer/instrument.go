package peer

import (
	"net/http"
	"time"

	"axml/internal/obs"
)

// countingWriter records the status code and body bytes a handler writes,
// for the per-endpoint metrics below. WriteHeader is tracked explicitly
// because handlers that never call it implicitly answer 200.
type countingWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (cw *countingWriter) WriteHeader(code int) {
	cw.status = code
	cw.ResponseWriter.WriteHeader(code)
}

func (cw *countingWriter) Write(b []byte) (int, error) {
	n, err := cw.ResponseWriter.Write(b)
	cw.bytes += int64(n)
	return n, err
}

// instrument wraps an endpoint handler with per-endpoint metrics:
//
//	peer.http.requests.<endpoint>    counter, every request
//	peer.http.errors.<endpoint>      counter, responses with status >= 400
//	peer.http.latency_ns.<endpoint>  histogram, handler wall time
//	peer.http.bytes_in.<endpoint>    counter, declared request body bytes
//	peer.http.bytes_out.<endpoint>   counter, response body bytes written
//
// With no registry attached the original handler runs untouched — the
// wrapper costs one nil check, so Handler can install it unconditionally.
//
// instrument is also the server half of trace propagation: an incoming
// W3C traceparent header joins the caller's trace, a missing one starts
// a fresh trace when this peer traces locally. The server span context
// rides the request context — handlers pass r.Context() down (into the
// engine, into outbound Client calls) and the whole cross-peer cascade
// shares one trace ID. When the peer has a tracer, each request also
// emits an "http" span (name = endpoint, attrs: status) as the child of
// the caller's span.
func (p *Peer) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		m, tr := p.metrics, p.tracer
		parent, _ := obs.ParseTraceparent(r.Header.Get(obs.TraceparentHeader))
		var sc obs.SpanContext
		if parent.Valid() || tr.Enabled() {
			sc = parent.NewChild()
			r = r.WithContext(obs.ContextWithSpan(r.Context(), sc))
		}
		if m == nil && !tr.Enabled() {
			h(w, r)
			return
		}
		ts := tr.Now()
		start := time.Now()
		cw := &countingWriter{ResponseWriter: w, status: http.StatusOK}
		h(cw, r)
		if tr.Enabled() {
			tr.Emit(obs.Span{
				Kind:  "http",
				Name:  endpoint,
				TSUs:  ts,
				DurUs: int64(time.Since(start) / time.Microsecond),
				Attrs: map[string]int64{"status": int64(cw.status)},
			}.WithContext(sc, parent))
		}
		if m == nil {
			return
		}
		m.Counter("peer.http.requests." + endpoint).Inc()
		m.Histogram("peer.http.latency_ns." + endpoint).ObserveSince(start)
		if r.ContentLength > 0 {
			m.Counter("peer.http.bytes_in." + endpoint).Add(r.ContentLength)
		}
		if cw.bytes > 0 {
			m.Counter("peer.http.bytes_out." + endpoint).Add(cw.bytes)
		}
		if cw.status >= 400 {
			m.Counter("peer.http.errors." + endpoint).Inc()
		}
	}
}

// methodNotAllowed answers 405 and names the methods the endpoint does
// accept — RFC 9110 requires the Allow header on 405 responses.
func methodNotAllowed(w http.ResponseWriter, allow string) {
	w.Header().Set("Allow", allow)
	http.Error(w, allow+" required", http.StatusMethodNotAllowed)
}
