package peer

import (
	"net/http"
	"time"
)

// countingWriter records the status code and body bytes a handler writes,
// for the per-endpoint metrics below. WriteHeader is tracked explicitly
// because handlers that never call it implicitly answer 200.
type countingWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (cw *countingWriter) WriteHeader(code int) {
	cw.status = code
	cw.ResponseWriter.WriteHeader(code)
}

func (cw *countingWriter) Write(b []byte) (int, error) {
	n, err := cw.ResponseWriter.Write(b)
	cw.bytes += int64(n)
	return n, err
}

// instrument wraps an endpoint handler with per-endpoint metrics:
//
//	peer.http.requests.<endpoint>    counter, every request
//	peer.http.errors.<endpoint>      counter, responses with status >= 400
//	peer.http.latency_ns.<endpoint>  histogram, handler wall time
//	peer.http.bytes_in.<endpoint>    counter, declared request body bytes
//	peer.http.bytes_out.<endpoint>   counter, response body bytes written
//
// With no registry attached the original handler runs untouched — the
// wrapper costs one nil check, so Handler can install it unconditionally.
func (p *Peer) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		m := p.metrics
		if m == nil {
			h(w, r)
			return
		}
		start := time.Now()
		cw := &countingWriter{ResponseWriter: w, status: http.StatusOK}
		h(cw, r)
		m.Counter("peer.http.requests." + endpoint).Inc()
		m.Histogram("peer.http.latency_ns." + endpoint).ObserveSince(start)
		if r.ContentLength > 0 {
			m.Counter("peer.http.bytes_in." + endpoint).Add(r.ContentLength)
		}
		if cw.bytes > 0 {
			m.Counter("peer.http.bytes_out." + endpoint).Add(cw.bytes)
		}
		if cw.status >= 400 {
			m.Counter("peer.http.errors." + endpoint).Inc()
		}
	}
}

// methodNotAllowed answers 405 and names the methods the endpoint does
// accept — RFC 9110 requires the Allow header on 405 responses.
func methodNotAllowed(w http.ResponseWriter, allow string) {
	w.Header().Set("Allow", allow)
	http.Error(w, allow+" required", http.StatusMethodNotAllowed)
}
