package peer

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"strings"
	"time"

	"axml/internal/obs"
)

// The fleet health surface: GET /axml/status answers one JSON
// StatusReport — the peer's identity, readiness, runtime footprint and
// per-document convergence watermarks — cheap enough for a dashboard or
// cmd/axml-status to poll every few seconds. FormatFleetStatus renders
// a set of reports as the operator table.

// DocStatus is one document's convergence state in a StatusReport.
type DocStatus struct {
	Doc         string `json:"doc"`
	LocalDigest string `json:"local_digest"`
	// OriginDigest is the last origin digest a replication path observed;
	// empty for documents this peer originates (or has never synced).
	OriginDigest string `json:"origin_digest,omitempty"`
	// Converged reports local == origin; vacuously true with no origin.
	Converged bool `json:"converged"`
	// LastAdvanceMs is how many ms ago replication last advanced the
	// local digest; -1 when it never has.
	LastAdvanceMs int64 `json:"last_advance_ms"`
	// LagNs is the last measured divergence→convergence interval
	// (0 = never measured).
	LagNs int64 `json:"lag_ns,omitempty"`
}

// StatusReport is the /axml/status body.
type StatusReport struct {
	Peer     string `json:"peer"`
	Ready    bool   `json:"ready"`
	ReadyErr string `json:"ready_err,omitempty"`
	Durable  bool   `json:"durable"`
	UptimeMs int64  `json:"uptime_ms"`

	Goroutines int    `json:"goroutines"`
	HeapBytes  uint64 `json:"heap_bytes"`

	Sweeps   int `json:"sweeps"`
	Steps    int `json:"steps"`
	Served   int `json:"served"`
	Failures int `json:"failures"`

	Docs []DocStatus `json:"docs"`
}

// ReadyChecks returns the peer's readiness probes for obs.ReadyHandler:
// currently "journal" (the durability layer has not hit a sticky write
// error; trivially ready for in-memory peers). Compose with
// router/ring checks at the embedding site.
func (p *Peer) ReadyChecks() []obs.Check {
	return []obs.Check{{
		Name: "journal",
		Probe: func() error {
			if err := p.StoreErr(); err != nil {
				return fmt.Errorf("journal failing: %w", err)
			}
			return nil
		},
	}}
}

// Status assembles the peer's current status report.
func (p *Peer) Status() StatusReport {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	rep := StatusReport{
		Peer:       p.Name,
		Ready:      true,
		Durable:    p.Durable(),
		UptimeMs:   int64(time.Since(p.started) / time.Millisecond),
		Goroutines: runtime.NumGoroutine(),
		HeapBytes:  ms.HeapAlloc,
	}
	for _, c := range p.ReadyChecks() {
		if err := c.Probe(); err != nil {
			rep.Ready = false
			rep.ReadyErr = c.Name + ": " + err.Error()
			break
		}
	}
	marks := p.converge.snapshot()
	now := p.converge.now()
	p.mu.Lock()
	rep.Sweeps = p.stats.Sweeps
	rep.Steps = p.stats.Steps
	rep.Served = p.stats.Served
	rep.Failures = p.stats.Failures
	for _, name := range p.system.DocNames() {
		ds := DocStatus{
			Doc:           name,
			LocalDigest:   docDigest(p.system.Document(name).Root),
			LastAdvanceMs: -1,
		}
		if w, ok := marks[name]; ok {
			ds.OriginDigest = w.origin
			ds.LagNs = int64(w.lastLag)
			if !w.lastAdvance.IsZero() {
				ds.LastAdvanceMs = int64(now.Sub(w.lastAdvance) / time.Millisecond)
			}
		}
		// Converged compares against the live local digest, not the one
		// recorded at the last exchange: a local write after convergence
		// legitimately moves this peer ahead of its recorded origin.
		ds.Converged = ds.OriginDigest == "" || ds.OriginDigest == ds.LocalDigest
		rep.Docs = append(rep.Docs, ds)
	}
	p.mu.Unlock()
	sort.Slice(rep.Docs, func(i, j int) bool { return rep.Docs[i].Doc < rep.Docs[j].Doc })
	return rep
}

func (p *Peer) handleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w, http.MethodGet)
		return
	}
	data, err := json.MarshalIndent(p.Status(), "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.Write(data)
	w.Write([]byte("\n"))
}

// Status fetches a peer's /axml/status report.
func (c *Client) Status(ctx context.Context) (StatusReport, error) {
	req, err := newRequest(ctx, http.MethodGet, c.BaseURL+PathStatus, nil)
	if err != nil {
		return StatusReport{}, err
	}
	resp, err := c.do(req)
	if err != nil {
		return StatusReport{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return StatusReport{}, fmt.Errorf("peer: status %s: %s", c.BaseURL, resp.Status)
	}
	body, err := readAllLimited(resp.Body, c.MaxWire)
	if err != nil {
		return StatusReport{}, fmt.Errorf("peer: status %s: %w", c.BaseURL, err)
	}
	var rep StatusReport
	if err := json.Unmarshal(body, &rep); err != nil {
		return StatusReport{}, fmt.Errorf("peer: status %s: %w", c.BaseURL, err)
	}
	return rep, nil
}

// FormatFleetStatus renders one convergence/lag/health table row per
// document per peer, plus a summary line per unreachable peer (errs maps
// peer label -> fetch error; may be nil). The output is stable: peers
// sort by name, documents by name within a peer.
func FormatFleetStatus(reports []StatusReport, errs map[string]error) string {
	sorted := make([]StatusReport, len(reports))
	copy(sorted, reports)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Peer < sorted[j].Peer })

	var b strings.Builder
	w := func(cols ...string) {
		widths := []int{10, 14, 16, 16, 9, 12, 10, 8}
		for i, c := range cols {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(cols)-1 && len(c) < widths[i] {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteByte('\n')
	}
	w("PEER", "DOC", "LOCAL", "ORIGIN", "CONVERGED", "ADVANCED", "LAG", "HEALTH")
	for _, rep := range sorted {
		health := "ready"
		if !rep.Ready {
			health = "NOT READY"
		}
		if len(rep.Docs) == 0 {
			w(rep.Peer, "-", "-", "-", "-", "-", "-", health)
			continue
		}
		for _, d := range rep.Docs {
			conv := "yes"
			if !d.Converged {
				conv = "NO"
			}
			origin := d.OriginDigest
			if origin == "" {
				origin = "(origin)"
			}
			adv := "-"
			if d.LastAdvanceMs >= 0 {
				adv = fmt.Sprintf("%dms ago", d.LastAdvanceMs)
			}
			lag := "-"
			if d.LagNs > 0 {
				lag = time.Duration(d.LagNs).Round(time.Microsecond).String()
			}
			w(rep.Peer, d.Doc, d.LocalDigest, origin, conv, adv, lag, health)
		}
	}
	names := make([]string, 0, len(errs))
	for name := range errs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&b, "%s: unreachable: %v\n", name, errs[name])
	}
	return b.String()
}
