package peer

import (
	"context"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"axml/internal/core"
	"axml/internal/faults"
	"axml/internal/syntax"
	"axml/internal/tree"
)

// TestConcurrentRunsStress races several parallel RunContexts over ONE
// shared system whose services mix every concurrency hazard the engine
// claims to handle: a remote service reached over real HTTP (hardened
// with retries), a local service with injected transient failures and
// latency, and a plain local query service — all under the Degrade
// policy. Theorem 2.1 says the interleaving cannot matter; the test
// checks exactly that, against a sequential reference fixpoint, and the
// race detector checks the engine's locking while it happens.
func TestConcurrentRunsStress(t *testing.T) {
	// Backend peer answering the remote service.
	backendSys := core.NewSystem()
	if err := backendSys.AddService(core.ConstService("Remote",
		tree.Forest{syntax.MustParseDocument(`remote{score{"9"}}`)})); err != nil {
		t.Fatal(err)
	}
	backend := New("backend", backendSys)
	srv := httptest.NewServer(backend.Handler())
	defer srv.Close()

	const items = 12
	var b strings.Builder
	b.WriteString("jobs{")
	for i := 0; i < items; i++ {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, `item{name{"i%d"},!Remote,!Flaky,!Tag}`, i)
	}
	b.WriteString("}")

	build := func(remote core.Service, flaky core.Service) *core.System {
		s := core.NewSystem()
		if err := s.AddDocument(tree.NewDocument("d", syntax.MustParseDocument(b.String()))); err != nil {
			t.Fatal(err)
		}
		for _, svc := range []core.Service{
			remote,
			flaky,
			core.ConstService("Tag", tree.Forest{syntax.MustParseDocument(`tag{"ok"}`)}),
		} {
			if err := s.AddService(svc); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
		return s
	}

	flakyForest := tree.Forest{syntax.MustParseDocument(`flaky{"done"}`)}
	shared := build(
		core.Harden(&RemoteService{Name: "Remote", URL: srv.URL},
			core.HardenOptions{Attempts: 4, BaseDelay: time.Millisecond}),
		&faults.FaultService{
			Service:    core.ConstService("Flaky", flakyForest),
			ErrorEvery: 3,
			Latency:    200 * time.Microsecond,
		},
	)

	// The reference fixpoint: same services without faults or network,
	// computed sequentially on a private copy.
	ref := build(
		core.ConstService("Remote", tree.Forest{syntax.MustParseDocument(`remote{score{"9"}}`)}),
		core.ConstService("Flaky", flakyForest),
	)
	if res := ref.Run(core.RunOptions{Parallelism: 1}); !res.Terminated {
		t.Fatalf("reference run did not terminate: %+v", res)
	}
	want := ref.CanonicalString()

	// Four engines race on the shared system at different parallelism.
	var wg sync.WaitGroup
	results := make([]core.RunResult, 4)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = shared.RunContext(context.Background(), core.RunOptions{
				Parallelism:    1 + i,
				ErrorPolicy:    core.Degrade,
				MaxErrorSweeps: 20,
			})
		}(i)
	}
	wg.Wait()

	terminated := false
	for i, res := range results {
		if res.Err != nil && !res.Terminated {
			t.Logf("run %d rode through failures: %v", i, res.Err)
		}
		terminated = terminated || res.Terminated
	}
	if !terminated {
		t.Fatalf("no run reached the fixpoint: %+v", results)
	}
	if got := shared.CanonicalString(); got != want {
		t.Fatalf("concurrent fixpoint diverged from sequential reference:\n%s\nwant:\n%s", got, want)
	}
}

// TestIncrementalPeerWorkloadDigests pins the incremental engine to the
// sequential fixpoint on the peer workload: remote services over real
// HTTP (hardened black boxes, which the event-driven scheduler must
// conservatively re-wake) mixed with local declarative and constant
// services, at every parallelism level.
func TestIncrementalPeerWorkloadDigests(t *testing.T) {
	backendSys := core.NewSystem()
	if err := backendSys.AddService(core.ConstService("Remote",
		tree.Forest{syntax.MustParseDocument(`remote{score{"9"}}`)})); err != nil {
		t.Fatal(err)
	}
	backend := New("backend", backendSys)
	srv := httptest.NewServer(backend.Handler())
	defer srv.Close()

	const items = 8
	var b strings.Builder
	b.WriteString("jobs{")
	for i := 0; i < items; i++ {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, `item{name{"i%d"},!Remote,!Tag}`, i)
	}
	b.WriteString("}")
	build := func(remote core.Service) *core.System {
		s := core.NewSystem()
		if err := s.AddDocument(tree.NewDocument("d", syntax.MustParseDocument(b.String()))); err != nil {
			t.Fatal(err)
		}
		if err := s.AddService(remote); err != nil {
			t.Fatal(err)
		}
		if err := s.AddService(core.ConstService("Tag",
			tree.Forest{syntax.MustParseDocument(`tag{"ok"}`)})); err != nil {
			t.Fatal(err)
		}
		q := syntax.MustParseQuery(`seen{$n} :- d/jobs{item{name{$n},tag{"ok"}}}`)
		q.Name = "Audit"
		if err := s.AddQuery(q); err != nil {
			t.Fatal(err)
		}
		if err := s.AddDocument(tree.NewDocument("audit",
			syntax.MustParseDocument(`a{!Audit}`))); err != nil {
			t.Fatal(err)
		}
		return s
	}

	ref := build(core.ConstService("Remote",
		tree.Forest{syntax.MustParseDocument(`remote{score{"9"}}`)}))
	if res := ref.Run(core.RunOptions{Parallelism: 1}); !res.Terminated {
		t.Fatalf("reference run: %+v", res)
	}
	want := ref.CanonicalString()

	for _, par := range []int{1, 2, 4, 8} {
		s := build(core.Harden(&RemoteService{Name: "Remote", URL: srv.URL},
			core.HardenOptions{Attempts: 4, BaseDelay: time.Millisecond}))
		res := s.Run(core.RunOptions{Parallelism: par, Incremental: true})
		if res.Err != nil || !res.Terminated {
			t.Fatalf("incremental parallelism %d: %+v", par, res)
		}
		if got := s.CanonicalString(); got != want {
			t.Fatalf("parallelism %d diverged:\n%s\nwant:\n%s", par, got, want)
		}
	}
}
