package peer

import (
	"log/slog"
	"net/http"

	"axml/internal/core"
	"axml/internal/obs"
)

// Option configures a peer at construction. Options keep Open's signature
// stable as the peer grows knobs — adding one never breaks existing
// callers, unlike positional parameters.
type Option func(*config)

// config collects the option-set state applied by Open.
type config struct {
	durability   Durability
	client       *http.Client
	maxWire      int64
	errorPolicy  core.ErrorPolicy
	metrics      *obs.Registry
	tracer       *obs.Tracer
	logger       *slog.Logger
	deltaAnchors int
}

// WithDurability backs the peer with a write-ahead journal and snapshots
// in d.Dir (see Durability). A zero-valued Durability (empty Dir) leaves
// the peer in-memory.
func WithDurability(d Durability) Option {
	return func(c *config) { c.durability = d }
}

// WithClient sets the HTTP client for the peer's own outbound requests
// (anti-entropy hash probes, mirror re-syncs whose Mirror has no client
// of its own). Nil means the shared DefaultClient.
func WithClient(client *http.Client) Option {
	return func(c *config) { c.client = client }
}

// WithLimits caps the request and response bodies this peer reads (its
// incoming invocation envelopes in particular); 0 keeps the package-wide
// MaxWireBytes.
func WithLimits(maxWireBytes int64) Option {
	return func(c *config) { c.maxWire = maxWireBytes }
}

// WithErrorPolicy selects how the peer's sweeps react to service errors;
// the zero value is core.FailFast.
func WithErrorPolicy(pol core.ErrorPolicy) Option {
	return func(c *config) { c.errorPolicy = pol }
}

// WithObservability attaches a metrics registry: the peer's HTTP
// endpoints (peer.http.*), sweeps (engine.* via the embedded engine),
// mirror/anti-entropy/push activity (peer.*) and — for durable peers —
// the journal (journal.*) all record into it. Serve it with
// obs.DebugMux. Nil disables metric collection (the default).
func WithObservability(reg *obs.Registry) Option {
	return func(c *config) { c.metrics = reg }
}

// WithTracer attaches a span tracer: sweeps, calls and merges from the
// peer's local runs, plus mirror syncs and push deliveries, emit
// obs.Span lines to it. Nil disables tracing (the default).
func WithTracer(tr *obs.Tracer) Option {
	return func(c *config) { c.tracer = tr }
}

// WithLogger routes the peer's structured logs (recovery summaries at
// Info, sweep outcomes at Debug, journaling failures at Error) to l.
// Nil discards them — the library never writes to a global logger on
// its own.
func WithLogger(l *slog.Logger) Option {
	return func(c *config) { c.logger = l }
}

// WithDeltaAnchors sets how many recent states of each document the peer
// remembers for delta replication (PathDelta). A receiver whose anchor
// rotated out of the cache simply gets the full tree, so the bound
// trades memory for wire bytes. 0 keeps the default (4); negative
// disables delta serving entirely (every request answers full).
func WithDeltaAnchors(n int) Option {
	return func(c *config) { c.deltaAnchors = n }
}
