package peer

import (
	"net/http"

	"axml/internal/core"
)

// Option configures a peer at construction. Options keep Open's signature
// stable as the peer grows knobs — adding one never breaks existing
// callers, unlike positional parameters.
type Option func(*config)

// config collects the option-set state applied by Open.
type config struct {
	durability  Durability
	client      *http.Client
	maxWire     int64
	errorPolicy core.ErrorPolicy
}

// WithDurability backs the peer with a write-ahead journal and snapshots
// in d.Dir (see Durability). A zero-valued Durability (empty Dir) leaves
// the peer in-memory.
func WithDurability(d Durability) Option {
	return func(c *config) { c.durability = d }
}

// WithClient sets the HTTP client for the peer's own outbound requests
// (anti-entropy hash probes, mirror re-syncs whose Mirror has no client
// of its own). Nil means the shared DefaultClient.
func WithClient(client *http.Client) Option {
	return func(c *config) { c.client = client }
}

// WithLimits caps the request and response bodies this peer reads (its
// incoming invocation envelopes in particular); 0 keeps the package-wide
// MaxWireBytes.
func WithLimits(maxWireBytes int64) Option {
	return func(c *config) { c.maxWire = maxWireBytes }
}

// WithErrorPolicy selects how the peer's sweeps react to service errors;
// the zero value is core.FailFast.
func WithErrorPolicy(pol core.ErrorPolicy) Option {
	return func(c *config) { c.errorPolicy = pol }
}
