package peer

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"axml/internal/core"
)

func fleetNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("peer%02d", i)
	}
	return names
}

func TestRingOwners(t *testing.T) {
	r := NewRing(fleetNames(10), 0)
	for i := 0; i < 200; i++ {
		doc := fmt.Sprintf("doc%d", i)
		owners := r.Owners(doc, 3)
		if len(owners) != 3 {
			t.Fatalf("%s: %d owners", doc, len(owners))
		}
		seen := map[string]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("%s: duplicate owner %s", doc, o)
			}
			seen[o] = true
		}
		// Determinism: a rebuilt ring places the same owners.
		again := NewRing(fleetNames(10), 0).Owners(doc, 3)
		for j := range owners {
			if owners[j] != again[j] {
				t.Fatalf("%s: owners not deterministic: %v vs %v", doc, owners, again)
			}
		}
		if r.Primary(doc) != owners[0] {
			t.Fatalf("%s: primary %s not first owner %v", doc, r.Primary(doc), owners)
		}
	}
	// rf clamps to the member count; rf < 1 means 1.
	if got := r.Owners("x", 99); len(got) != 10 {
		t.Fatalf("rf over members: %d owners", len(got))
	}
	if got := r.Owners("x", 0); len(got) != 1 {
		t.Fatalf("rf 0: %d owners", len(got))
	}
	if got := NewRing(nil, 0).Owners("x", 2); got != nil {
		t.Fatalf("empty ring owners: %v", got)
	}
}

func TestRingBalance(t *testing.T) {
	r := NewRing(fleetNames(10), 0)
	counts := map[string]int{}
	const docs = 2000
	for i := 0; i < docs; i++ {
		counts[r.Primary(fmt.Sprintf("doc%d", i))]++
	}
	for _, name := range fleetNames(10) {
		if counts[name] == 0 {
			t.Fatalf("peer %s owns nothing: %v", name, counts)
		}
		// With 64 virtual nodes the load should stay within a loose 3× of
		// the fair share — this guards against a broken hash, not for a
		// tight balance bound.
		if fair := docs / 10; counts[name] > 3*fair {
			t.Fatalf("peer %s owns %d of %d docs", name, counts[name], docs)
		}
	}
}

// TestRingMinimalMovement: removing a member must not move documents
// between surviving peers — the consistent-hashing property that makes
// resharding cheap.
func TestRingMinimalMovement(t *testing.T) {
	before := NewRing(fleetNames(10), 0)
	after := NewRing(fleetNames(10)[:9], 0) // peer09 left
	moved := 0
	for i := 0; i < 500; i++ {
		doc := fmt.Sprintf("doc%d", i)
		was, is := before.Primary(doc), after.Primary(doc)
		if was == "peer09" {
			moved++
			continue // its documents must land somewhere else
		}
		if was != is {
			t.Fatalf("%s moved %s -> %s though its owner survived", doc, was, is)
		}
	}
	if moved == 0 {
		t.Fatal("suspicious: departed peer owned nothing")
	}
}

// newShardedFleet builds n peers fronted by routers sharing one ring and
// a name→URL resolver. Documents live only on their owners; every peer
// answers for every document by forwarding.
func newShardedFleet(t *testing.T, n, rf int, docs []string) (ring *Ring, urls map[string]string, peers map[string]*Peer) {
	t.Helper()
	names := fleetNames(n)
	ring = NewRing(names, 0)
	urls = make(map[string]string, n)
	peers = make(map[string]*Peer, n)
	resolve := func(name string) string { return urls[name] }
	for _, name := range names {
		sys := core.NewSystem()
		p := New(name, sys)
		peers[name] = p
		rt := NewRouter(p, name, ring, resolve, rf)
		srv := httptest.NewServer(rt)
		t.Cleanup(srv.Close)
		urls[name] = srv.URL
	}
	for _, doc := range docs {
		for _, owner := range ring.Owners(doc, rf) {
			peers[owner].System(func(s *core.System) {
				if err := s.AddDocument(NewReplicaDoc(doc, "d")); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
	return ring, urls, peers
}

func TestRouterForwardsUnownedDocs(t *testing.T) {
	docs := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	ring, urls, peers := newShardedFleet(t, 4, 2, docs)

	for _, doc := range docs {
		owners := ring.Owners(doc, 2)
		peers[owners[0]].System(func(s *core.System) {
			root := s.Document(doc).Root
			root.Children = append(root.Children, core.MustParseSystem(
				`doc x = d{data{"`+doc+`"}}`).Document("x").Root.Children...)
			s.Touch(doc)
		})
		// Every peer — owner or not — serves the document.
		for name, base := range urls {
			resp, err := http.Get(base + PathDoc + doc)
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("peer %s doc %s: %d", name, doc, resp.StatusCode)
			}
			n, err := UnmarshalTree(body)
			if err != nil {
				t.Fatalf("peer %s doc %s: %v", name, doc, err)
			}
			// Only the primary was written; replicas answer their own
			// (possibly empty) copy — both are authoritative owners. A
			// non-owner must have forwarded to the primary in ring order.
			isOwner := false
			for _, o := range ring.Owners(doc, 2) {
				if o == name {
					isOwner = true
				}
			}
			if !isOwner && len(n.Children) == 0 {
				t.Fatalf("peer %s forwarded doc %s but got empty tree", name, doc)
			}
		}
	}
}

func TestRouterDeltaForwarding(t *testing.T) {
	docs := []string{"alpha", "beta", "gamma"}
	ring, urls, peers := newShardedFleet(t, 4, 1, docs)
	// With rf=1 exactly one peer holds each doc; ask some other peer for
	// a delta and it must forward.
	doc := docs[0]
	owner := ring.Primary(doc)
	growDoc(peers[owner], doc, `item{"x"}`)
	var outsider string
	for name := range urls {
		if name != owner {
			outsider = name
			break
		}
	}
	d, err := FetchDelta(t.Context(), nil, urls[outsider], doc, "")
	if err != nil {
		t.Fatal(err)
	}
	if d.Mode != DeltaFull || d.Full == nil || len(d.Full.Children) == 0 {
		t.Fatalf("forwarded delta: %+v", d)
	}
	// Anchored follow-up across the same forwarding path.
	growDoc(peers[owner], doc, `item{"y"}`)
	d2, err := FetchDelta(t.Context(), nil, urls[outsider], doc, d.To)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Mode != DeltaPatch {
		t.Fatalf("anchored forwarded delta answered %q", d2.Mode)
	}
}

func TestRouterOwnerFailover(t *testing.T) {
	docs := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta"}
	ring, urls, _ := newShardedFleet(t, 4, 2, docs)
	// Find a doc whose primary is not its only owner, kill the primary's
	// URL, and ask a non-owner: the router must fail over to the replica.
	for _, doc := range docs {
		owners := ring.Owners(doc, 2)
		var outsider string
		for name := range urls {
			if name != owners[0] && name != owners[1] {
				outsider = name
				break
			}
		}
		saved := urls[owners[0]]
		urls[owners[0]] = "" // resolver now reports the primary unreachable
		resp, err := http.Get(urls[outsider] + PathDoc + doc)
		urls[owners[0]] = saved
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("doc %s with dead primary: %d", doc, resp.StatusCode)
		}
	}
}

func TestRouterNoOwnerReachable(t *testing.T) {
	docs := []string{"alpha"}
	ring, urls, _ := newShardedFleet(t, 3, 1, docs)
	owner := ring.Primary("alpha")
	var outsider string
	for name := range urls {
		if name != owner {
			outsider = name
			break
		}
	}
	saved := urls[owner]
	urls[owner] = ""
	resp, err := http.Get(urls[outsider] + PathDoc + "alpha")
	urls[owner] = saved
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("unroutable doc answered %d", resp.StatusCode)
	}
}

// TestRouterForwardLoopProtection: a forwarded request is served locally
// even by a peer that does not own the document (e.g. its ring is ahead
// of the sender's), never bounced onward.
func TestRouterForwardLoopProtection(t *testing.T) {
	_, urls, _ := newShardedFleet(t, 3, 1, []string{"alpha"})
	// Hand-forward to a peer that (almost certainly) does not own alpha,
	// marked as already forwarded: it must answer itself — 404 if it does
	// not hold the doc — rather than re-forward.
	for name, base := range urls {
		req, err := http.NewRequest(http.MethodGet, base+PathDoc+"alpha", nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(headerForwarded, "test")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNotFound {
			t.Fatalf("peer %s forwarded request: %d", name, resp.StatusCode)
		}
	}
}
