package peer

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Coordinator drives a set of peers to a global fixpoint and detects
// distributed termination. As the paper's conclusion observes, "each peer
// may know that it reached a fixpoint, but a distributed mechanism is
// needed to detect termination for the global, distributed system": a
// peer that is locally quiet can be re-awakened by data a later peer
// derives, so quiescence must be confirmed by a full silent round with
// stable state digests.
type Coordinator struct {
	// URLs are the peers' base URLs.
	URLs []string
	// Client is the HTTP client; nil means a 30s-timeout default.
	Client *http.Client
	// MaxRounds bounds the fixpoint loop; 0 means DefaultMaxRounds.
	MaxRounds int
}

// DefaultMaxRounds bounds coordinator loops by default.
const DefaultMaxRounds = 1000

// FixpointResult reports a distributed run.
type FixpointResult struct {
	// Rounds counts the sweep rounds performed.
	Rounds int
	// Terminated is true when a whole round was silent on every peer and
	// the global state digest did not change across it.
	Terminated bool
}

// RunToFixpoint repeatedly asks every peer for one local sweep, until a
// full round reports no change anywhere (confirmed by state digests), the
// round budget runs out, or ctx is cancelled (the error is then the
// context's).
func (c *Coordinator) RunToFixpoint(ctx context.Context) (FixpointResult, error) {
	client := c.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	maxRounds := c.MaxRounds
	if maxRounds == 0 {
		maxRounds = DefaultMaxRounds
	}
	var res FixpointResult
	prevDigest := ""
	for res.Rounds < maxRounds {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		res.Rounds++
		anyChanged := false
		for _, u := range c.URLs {
			changed, err := sweepOnce(ctx, client, u)
			if err != nil {
				return res, err
			}
			anyChanged = anyChanged || changed
		}
		digest, err := c.globalDigest(ctx, client)
		if err != nil {
			return res, err
		}
		if !anyChanged && digest == prevDigest {
			res.Terminated = true
			return res, nil
		}
		prevDigest = digest
	}
	return res, nil
}

func sweepOnce(ctx context.Context, client *http.Client, baseURL string) (bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+PathSweep,
		strings.NewReader(""))
	if err != nil {
		return false, err
	}
	req.Header.Set("Content-Type", "text/plain")
	resp, err := client.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if err != nil {
		return false, err
	}
	if resp.StatusCode != http.StatusOK {
		return false, fmt.Errorf("peer: sweep %s: %s: %s", baseURL, resp.Status, string(body))
	}
	return strings.TrimSpace(string(body)) == "changed", nil
}

func (c *Coordinator) globalDigest(ctx context.Context, client *http.Client) (string, error) {
	var b strings.Builder
	for _, u := range c.URLs {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, u+PathHash, nil)
		if err != nil {
			return "", err
		}
		resp, err := client.Do(req)
		if err != nil {
			return "", err
		}
		body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
		if err != nil {
			return "", err
		}
		b.WriteString(u)
		b.WriteByte('@')
		b.Write(body)
		b.WriteByte('\n')
	}
	return b.String(), nil
}
