package peer

import (
	"context"
	"net/http"
	"sort"
	"strings"
	"time"
)

// Coordinator drives a set of peers to a global fixpoint and detects
// distributed termination. As the paper's conclusion observes, "each peer
// may know that it reached a fixpoint, but a distributed mechanism is
// needed to detect termination for the global, distributed system": a
// peer that is locally quiet can be re-awakened by data a later peer
// derives, so quiescence must be confirmed by a full silent round with
// stable state digests.
type Coordinator struct {
	// URLs are the peers' base URLs.
	URLs []string
	// Client is the HTTP client; nil means a 30s-timeout default.
	Client *http.Client
	// MaxRounds bounds the fixpoint loop; 0 means DefaultMaxRounds.
	MaxRounds int
}

// DefaultMaxRounds bounds coordinator loops by default.
const DefaultMaxRounds = 1000

// FixpointResult reports a distributed run.
type FixpointResult struct {
	// Rounds counts the sweep rounds performed.
	Rounds int
	// Terminated is true when a whole round was silent on every peer and
	// the global state digest did not change across it.
	Terminated bool
}

// clients builds one typed Client per peer URL, sharing the
// coordinator's transport.
func (c *Coordinator) clients() []*Client {
	httpc := c.Client
	if httpc == nil {
		httpc = &http.Client{Timeout: 30 * time.Second}
	}
	out := make([]*Client, len(c.URLs))
	for i, u := range c.URLs {
		out[i] = NewClient(u, httpc)
	}
	return out
}

// RunToFixpoint repeatedly asks every peer for one local sweep, until a
// full round reports no change anywhere (confirmed by state digests), the
// round budget runs out, or ctx is cancelled (the error is then the
// context's).
func (c *Coordinator) RunToFixpoint(ctx context.Context) (FixpointResult, error) {
	clients := c.clients()
	maxRounds := c.MaxRounds
	if maxRounds == 0 {
		maxRounds = DefaultMaxRounds
	}
	var res FixpointResult
	prevDigest := ""
	for res.Rounds < maxRounds {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		res.Rounds++
		anyChanged := false
		for _, cl := range clients {
			changed, err := cl.Sweep(ctx)
			if err != nil {
				return res, err
			}
			anyChanged = anyChanged || changed
		}
		digest, err := globalDigest(ctx, clients)
		if err != nil {
			return res, err
		}
		if !anyChanged && digest == prevDigest {
			res.Terminated = true
			return res, nil
		}
		prevDigest = digest
	}
	return res, nil
}

// globalDigest concatenates every peer's per-document digests in a
// canonical order — equal strings across rounds mean no state moved
// anywhere.
func globalDigest(ctx context.Context, clients []*Client) (string, error) {
	var b strings.Builder
	for _, cl := range clients {
		hashes, err := cl.Hashes(ctx)
		if err != nil {
			return "", err
		}
		names := make([]string, 0, len(hashes))
		for name := range hashes {
			names = append(names, name)
		}
		sort.Strings(names)
		b.WriteString(cl.BaseURL)
		b.WriteByte('@')
		for _, name := range names {
			b.WriteString(name)
			b.WriteByte('=')
			b.WriteString(hashes[name])
			b.WriteByte(';')
		}
		b.WriteByte('\n')
	}
	return b.String(), nil
}
