package peer

import (
	"bytes"
	"encoding/xml"
	"fmt"

	"axml/internal/subsume"
	"axml/internal/tree"
)

// Delta replication. Prop 3.1 monotonicity means a peer's documents only
// grow by least-upper-bound merge, so replication never needs to ship a
// whole tree: a subtree delta since the last acknowledged digest is a
// sound CRDT-style update. The server keeps a bounded cache of recent
// document states keyed by their digest (the anchors). A receiver asks
// "give me what changed since digest D"; when the anchor is cached the
// server answers with a patch — a recursive digest-diff of the current
// tree against the anchor, carrying only the spine down to divergent
// subtrees plus the new subtrees themselves — and when it is not (cache
// rotated out, receiver never synced, digests disagree) it falls back to
// the full tree. Applying a patch is a digest-targeted in-place merge
// that reproduces Union(local, fullRemote) exactly, or reports that it
// cannot (the receiver's tree diverged at a spine position), in which
// case the receiver falls back to a full pull. Every fallback is safe:
// the delta path is an optimization over the same LUB merge, never a
// different semantics.

// Delta wire element names and attributes (reserved: AXML labels cannot
// contain ':').
const (
	elemDelta = "ax:delta"
	elemPatch = "ax:patch"
	attrMode  = "mode"
	attrFrom  = "from"
	attrTo    = "to"
	attrKind  = "kind"
	attrBase  = "base"
)

// Delta response modes.
const (
	// DeltaSame: the receiver's anchor is the current state; no payload.
	DeltaSame = "same"
	// DeltaPatch: the payload is a patch against the anchor state.
	DeltaPatch = "delta"
	// DeltaFull: the payload is the full tree (anchor unknown or unusable).
	DeltaFull = "full"
)

// Delta is one delta-replication wire record: the answer to "what
// changed in document Doc since state From".
type Delta struct {
	// Doc is the document name.
	Doc string
	// Mode is DeltaSame, DeltaPatch or DeltaFull.
	Mode string
	// From is the anchor digest the patch is computed against (DeltaPatch
	// only; empty otherwise).
	From string
	// To is the digest of the document state this record brings the
	// receiver up to — the receiver's next anchor.
	To string
	// Full carries the whole tree in DeltaFull mode.
	Full *tree.Node
	// Patch carries the digest-diff in DeltaPatch mode.
	Patch *Patch
}

// Patch is one node of a recursive digest-diff: the spine from the
// document root down to the subtrees that changed since the anchor
// state. Adds are whole new subtrees to merge in at this position;
// Spines descend into children that exist in the anchor but grew below.
// Base identifies (by subtree digest in the anchor state) which child of
// the receiver's tree a spine patch targets — the receiver refuses to
// guess: if no child carries that digest the whole apply fails and the
// caller falls back to a full pull.
type Patch struct {
	// Kind is the patched node's kind (Label or Func — Value nodes are
	// leaves and never carry a patch).
	Kind tree.Kind
	// Name is the patched node's marking.
	Name string
	// Base is the digest of this node's subtree in the anchor state (for
	// the root patch it equals the record's From).
	Base string
	// Spines are patches into children shared with the anchor.
	Spines []*Patch
	// Adds are new subtrees appended under this node since the anchor.
	Adds tree.Forest
}

// digestHex renders the memoized structural digest in the same truncated
// format PathHash advertises (docDigest): 8 bytes, 16 hex characters.
// Digest and CanonicalHash agree on the same tree by contract.
func digestHex(n *tree.Node) string {
	h := n.Digest()
	return fmt.Sprintf("%x", h[:8])
}

// ---------------------------------------------------------------------
// Diff (server side): prune the current tree against a cached anchor.

// PruneSince computes the patch that carries cur's growth since anchor:
// Union(anchor, patch-materialized) is equivalent to cur, provided
// anchor ⊑ cur (monotone growth — the caller checks) and both trees are
// reduced (the system invariant). Children of cur whose digest also
// appears among the anchor node's children are dropped — the receiver
// provably has them; a child that shares its marking uniquely with one
// remaining anchor child is diffed recursively (the remaining anchor
// child is necessarily subsumed by it: anchor siblings are mutually
// incomparable, so it cannot hide under a dropped child); everything
// else ships whole. Returns nil when cur and anchor are identical.
func PruneSince(cur, anchor *tree.Node) *Patch {
	if cur == nil || anchor == nil || !cur.SameMarking(anchor) {
		return nil
	}
	if cur.Digest() == anchor.Digest() {
		return nil
	}
	return pruneNode(cur, anchor)
}

func pruneNode(cur, anchor *tree.Node) *Patch {
	p := &Patch{Kind: cur.Kind, Name: cur.Name, Base: digestHex(anchor)}

	// 1. Digest-matched children are already at the receiver: drop them.
	// Multiset matching — each anchor child covers at most one cur child.
	avail := make(map[tree.Hash][]*tree.Node, len(anchor.Children))
	for _, a := range anchor.Children {
		d := a.Digest()
		avail[d] = append(avail[d], a)
	}
	var restCur []*tree.Node
	for _, c := range cur.Children {
		d := c.Digest()
		if as := avail[d]; len(as) > 0 {
			avail[d] = as[:len(as)-1]
			continue
		}
		restCur = append(restCur, c)
	}
	var restAnchor []*tree.Node
	for _, as := range avail {
		restAnchor = append(restAnchor, as...)
	}

	// 2. A remaining pair sharing a marking uniquely on both sides is a
	// grown subtree: diff it recursively instead of shipping it whole.
	curBySym := make(map[tree.Sym][]*tree.Node)
	for _, c := range restCur {
		curBySym[c.Sym()] = append(curBySym[c.Sym()], c)
	}
	anchorBySym := make(map[tree.Sym][]*tree.Node)
	for _, a := range restAnchor {
		anchorBySym[a.Sym()] = append(anchorBySym[a.Sym()], a)
	}
	for _, c := range restCur {
		sym := c.Sym()
		if c.Kind != tree.Value && len(curBySym[sym]) == 1 && len(anchorBySym[sym]) == 1 {
			p.Spines = append(p.Spines, pruneNode(c, anchorBySym[sym][0]))
			continue
		}
		// 3. Ambiguous or brand-new: ship the whole subtree.
		p.Adds = append(p.Adds, c.Copy())
	}
	return p
}

// ---------------------------------------------------------------------
// Apply (receiver side): digest-targeted in-place merge.

// errPatchMismatch reports a spine whose base digest has no counterpart
// in the receiver's tree — the signal to fall back to a full pull.
var errPatchMismatch = fmt.Errorf("peer: patch base not present (tree diverged)")

// ApplyPatch merges a patch into the local tree in place, reproducing
// exactly what Union(local, fullRemote) would have produced, and reports
// whether anything changed. When any spine's base digest finds no
// matching child in the local tree (the local replica diverged from the
// sender's anchor at that position — local-only growth, a missed
// delivery, a crash that lost the anchor), it returns errPatchMismatch
// WITHOUT mutating anything, and the caller performs a full pull
// instead. The local tree must be reduced on entry; it is reduced again
// (along the changed spine only, via the known-reduced flags) before
// returning.
func ApplyPatch(local *tree.Node, p *Patch) (changed bool, err error) {
	if local == nil || p == nil {
		return false, nil
	}
	if local.Kind != p.Kind || local.Name != p.Name {
		return false, fmt.Errorf("peer: patch root %s does not match document root %s",
			p.Name, local.Name)
	}
	// Dry run first: a mismatch deep in the patch must not leave a
	// half-applied tree behind.
	if !patchApplies(local, p) {
		return false, errPatchMismatch
	}
	before := local.Digest()
	applyPatchNode(local, p)
	subsume.ReduceInPlace(local)
	return local.Digest() != before, nil
}

// patchApplies checks every spine of the patch finds its base digest.
func patchApplies(local *tree.Node, p *Patch) bool {
	for _, sp := range p.Spines {
		target := childByDigest(local, sp.Base)
		if target == nil || !patchApplies(target, sp) {
			return false
		}
	}
	return true
}

// childByDigest finds the child whose subtree digest renders as hex.
// Reduced trees never hold two digest-equal siblings (they would subsume
// each other), so the match is unique when present.
func childByDigest(n *tree.Node, hex string) *tree.Node {
	for _, c := range n.Children {
		if digestHex(c) == hex {
			return c
		}
	}
	return nil
}

// applyPatchNode splices the patch in: adds are appended (copied — the
// patch may be re-applied or retained by the caller), spines recurse
// into their digest-matched children. The touched nodes' digests and
// reduced flags are invalidated so the closing reduction and later
// digest reads see the mutation.
func applyPatchNode(local *tree.Node, p *Patch) {
	// Resolve spine targets before appending adds: an added subtree could
	// coincidentally carry a spine's base digest.
	targets := make([]*tree.Node, len(p.Spines))
	for i, sp := range p.Spines {
		targets[i] = childByDigest(local, sp.Base)
	}
	if len(p.Adds) > 0 {
		for _, a := range p.Adds {
			local.Children = append(local.Children, a.Copy())
		}
	}
	for i, sp := range p.Spines {
		applyPatchNode(targets[i], sp)
	}
	local.InvalidateDigest()
}

// Materialize renders the patch as a plain tree (spine markings plus
// added subtrees, bases dropped). Union(anchorState, Materialize(p)) is
// equivalent to the state the patch was computed from — the property the
// differential tests pin.
func (p *Patch) Materialize() *tree.Node {
	if p == nil {
		return nil
	}
	n := &tree.Node{Kind: p.Kind, Name: p.Name}
	for _, sp := range p.Spines {
		n.Children = append(n.Children, sp.Materialize())
	}
	for _, a := range p.Adds {
		n.Children = append(n.Children, a.Copy())
	}
	return n
}

// size returns the number of patch nodes plus added-tree nodes — the
// payload size a delta ships, for metrics.
func (p *Patch) size() int {
	if p == nil {
		return 0
	}
	n := 1
	for _, sp := range p.Spines {
		n += sp.size()
	}
	for _, a := range p.Adds {
		n += a.Size()
	}
	return n
}

// ---------------------------------------------------------------------
// Anchor cache (server side).

// deltaAnchors remembers recent states of each document, keyed by the
// digest a receiver would hold as its anchor. Bounded per document:
// serving a state whose digest is not cached falls back to a full tree,
// so the cache is purely an optimization and its size a memory/wire
// trade-off. Guarded by the peer mutex.
type deltaAnchors struct {
	max  int
	docs map[string][]anchorState // newest last
}

type anchorState struct {
	digest string
	root   *tree.Node // deep copy, never mutated after insertion
}

// defaultDeltaAnchors is the per-document anchor bound when
// WithDeltaAnchors is not given.
const defaultDeltaAnchors = 4

func newDeltaAnchors(max int) *deltaAnchors {
	return &deltaAnchors{max: max, docs: make(map[string][]anchorState)}
}

// lookup returns the cached state with the given digest, or nil. Safe on
// a nil cache (delta serving disabled).
func (da *deltaAnchors) lookup(doc, digest string) *tree.Node {
	if da == nil {
		return nil
	}
	for _, st := range da.docs[doc] {
		if st.digest == digest {
			return st.root
		}
	}
	return nil
}

// remember caches the current state of a document under its digest
// (copying the tree), evicting the oldest entry beyond the bound. A
// digest already cached is refreshed in place (no copy). Safe on a nil
// cache (no-op).
func (da *deltaAnchors) remember(doc, digest string, root *tree.Node) {
	if da == nil {
		return
	}
	states := da.docs[doc]
	for i := range states {
		if states[i].digest == digest {
			// Move to the back: most recently served, last to evict.
			st := states[i]
			copy(states[i:], states[i+1:])
			states[len(states)-1] = st
			da.docs[doc] = states
			return
		}
	}
	states = append(states, anchorState{digest: digest, root: root.Copy()})
	if len(states) > da.max {
		states = states[len(states)-da.max:]
	}
	da.docs[doc] = states
}

// ---------------------------------------------------------------------
// Wire codec.

// MarshalDelta renders a delta record:
//
//	<ax:delta name="doc" mode="same|full|delta" [from="hex"] to="hex">
//	  full mode:  one tree
//	  delta mode: one ax:patch element
//	</ax:delta>
//
// and a patch node as
//
//	<ax:patch kind="label|func" name="n" base="hex">
//	  nested ax:patch spines, then added trees
//	</ax:patch>
func MarshalDelta(d Delta) ([]byte, error) {
	var buf bytes.Buffer
	enc := xml.NewEncoder(&buf)
	attrs := []xml.Attr{
		{Name: xml.Name{Local: attrName}, Value: d.Doc},
		{Name: xml.Name{Local: attrMode}, Value: d.Mode},
	}
	if d.From != "" {
		attrs = append(attrs, xml.Attr{Name: xml.Name{Local: attrFrom}, Value: d.From})
	}
	attrs = append(attrs, xml.Attr{Name: xml.Name{Local: attrTo}, Value: d.To})
	start := xml.StartElement{Name: xml.Name{Local: elemDelta}, Attr: attrs}
	if err := enc.EncodeToken(start); err != nil {
		return nil, err
	}
	switch d.Mode {
	case DeltaSame:
	case DeltaFull:
		if d.Full == nil {
			return nil, fmt.Errorf("peer: full delta without tree")
		}
		if err := encodeNode(enc, d.Full); err != nil {
			return nil, err
		}
	case DeltaPatch:
		if d.Patch == nil {
			return nil, fmt.Errorf("peer: patch delta without patch")
		}
		if err := encodePatch(enc, d.Patch); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("peer: unknown delta mode %q", d.Mode)
	}
	if err := enc.EncodeToken(start.End()); err != nil {
		return nil, err
	}
	if err := enc.Flush(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func encodePatch(enc *xml.Encoder, p *Patch) error {
	kind := "label"
	if p.Kind == tree.Func {
		kind = "func"
	}
	start := xml.StartElement{Name: xml.Name{Local: elemPatch}, Attr: []xml.Attr{
		{Name: xml.Name{Local: attrKind}, Value: kind},
		{Name: xml.Name{Local: attrName}, Value: p.Name},
		{Name: xml.Name{Local: attrBase}, Value: p.Base},
	}}
	if err := enc.EncodeToken(start); err != nil {
		return err
	}
	for _, sp := range p.Spines {
		if err := encodePatch(enc, sp); err != nil {
			return err
		}
	}
	for _, a := range p.Adds {
		if err := encodeNode(enc, a); err != nil {
			return err
		}
	}
	return enc.EncodeToken(start.End())
}

// UnmarshalDelta parses a delta record.
func UnmarshalDelta(data []byte) (Delta, error) {
	var d Delta
	dec := xml.NewDecoder(bytes.NewReader(data))
	start, err := firstStart(dec)
	if err != nil || wireName(start.Name) != elemDelta {
		return d, fmt.Errorf("peer: bad delta: %v", err)
	}
	for _, a := range start.Attr {
		switch a.Name.Local {
		case attrName:
			d.Doc = a.Value
		case attrMode:
			d.Mode = a.Value
		case attrFrom:
			d.From = a.Value
		case attrTo:
			d.To = a.Value
		}
	}
	if d.Doc == "" {
		return d, fmt.Errorf("peer: delta without document name")
	}
	switch d.Mode {
	case DeltaSame:
		return d, nil
	case DeltaFull:
		n, err := decodeNext(dec)
		if err != nil {
			return d, err
		}
		if n == nil {
			return d, fmt.Errorf("peer: full delta without tree")
		}
		d.Full = n
		return d, nil
	case DeltaPatch:
		p, err := decodeNextPatch(dec)
		if err != nil {
			return d, err
		}
		if p == nil {
			return d, fmt.Errorf("peer: patch delta without patch")
		}
		d.Patch = p
		return d, nil
	default:
		return d, fmt.Errorf("peer: unknown delta mode %q", d.Mode)
	}
}

// decodeNextPatch reads the next ax:patch element, skipping whitespace;
// returns nil at end of the enclosing element.
func decodeNextPatch(dec *xml.Decoder) (*Patch, error) {
	for {
		tok, err := dec.Token()
		if err != nil {
			return nil, err
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if wireName(t.Name) != elemPatch {
				return nil, fmt.Errorf("peer: expected %s, found %s", elemPatch, wireName(t.Name))
			}
			return decodePatchElement(dec, t)
		case xml.EndElement:
			return nil, nil
		case xml.CharData:
			if len(bytes.TrimSpace(t)) != 0 {
				return nil, fmt.Errorf("peer: unexpected character data %q in patch", string(t))
			}
		}
	}
}

func decodePatchElement(dec *xml.Decoder, start xml.StartElement) (*Patch, error) {
	p := &Patch{}
	kind := ""
	for _, a := range start.Attr {
		switch a.Name.Local {
		case attrKind:
			kind = a.Value
		case attrName:
			p.Name = a.Value
		case attrBase:
			p.Base = a.Value
		}
	}
	switch kind {
	case "label":
		p.Kind = tree.Label
		if !validWireLabel(p.Name) {
			return nil, fmt.Errorf("peer: patch label %q does not round-trip", p.Name)
		}
	case "func":
		p.Kind = tree.Func
		if p.Name == "" {
			return nil, fmt.Errorf("peer: func patch without service name")
		}
	default:
		return nil, fmt.Errorf("peer: patch kind %q (want label or func)", kind)
	}
	// Children: spines (ax:patch) come first, then added trees — but
	// accept any interleaving on decode (the split is by element name).
	for {
		tok, err := dec.Token()
		if err != nil {
			return nil, err
		}
		switch t := tok.(type) {
		case xml.StartElement:
			if wireName(t.Name) == elemPatch {
				sp, err := decodePatchElement(dec, t)
				if err != nil {
					return nil, err
				}
				p.Spines = append(p.Spines, sp)
				continue
			}
			n, err := decodeElement(dec, t)
			if err != nil {
				return nil, err
			}
			p.Adds = append(p.Adds, n)
		case xml.EndElement:
			return p, nil
		case xml.CharData:
			if len(bytes.TrimSpace(t)) != 0 {
				return nil, fmt.Errorf("peer: unexpected character data %q in patch", string(t))
			}
		}
	}
}
