package peer

import (
	"context"
	"errors"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"axml/internal/core"
	"axml/internal/faults"
	"axml/internal/journal"
	"axml/internal/syntax"
	"axml/internal/tree"
)

// durableSeed is the system definition a durable peer restarts from: the
// seed is rebuilt from source on every start, recovery merges persisted
// state over it.
const durableSeed = `
doc notes = log{entry{"boot"}}
func Annotate = mark{$x} :- input/input{$x}
`

func newDurablePeer(t *testing.T, dir string, d Durability) (*Peer, RecoveryInfo) {
	t.Helper()
	d.Dir = dir
	p, info, err := Open("durable", core.MustParseSystem(durableSeed), WithDurability(d))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p, info
}

// growNotes appends a fresh entry to the notes document through the
// peer's locked access, the way mirror syncs and push deliveries mutate.
func growNotes(t *testing.T, p *Peer, text string) {
	t.Helper()
	p.System(func(s *core.System) {
		doc := s.Document("notes")
		doc.Root.Children = append(doc.Root.Children,
			&tree.Node{Kind: tree.Label, Name: "entry", Children: []*tree.Node{tree.NewValue(text)}})
		s.Touch("notes")
	})
}

func peerCanonical(p *Peer) string {
	var out string
	p.System(func(s *core.System) { out = s.CanonicalString() })
	return out
}

func TestDurableEmptyDataDir(t *testing.T) {
	dir := t.TempDir()
	p, info := newDurablePeer(t, dir, Durability{})
	if info.Recovered || info.Torn || info.Replayed != 0 || info.SnapshotSeq != 0 {
		t.Fatalf("cold start reported recovery: %+v", info)
	}
	if !p.Durable() {
		t.Fatal("peer not durable")
	}
	growNotes(t, p, "first")
	if err := p.StoreErr(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, JournalFile)); err != nil {
		t.Fatalf("journal not created: %v", err)
	}
}

func TestDurableRestartRecoversJournal(t *testing.T) {
	dir := t.TempDir()
	p1, _ := newDurablePeer(t, dir, Durability{})
	growNotes(t, p1, "alpha")
	growNotes(t, p1, "beta")
	want := peerCanonical(p1)
	p1.Close()

	p2, info := newDurablePeer(t, dir, Durability{})
	if !info.Recovered || info.Replayed != 2 || info.Torn {
		t.Fatalf("recovery info: %+v", info)
	}
	if got := peerCanonical(p2); got != want {
		t.Fatalf("recovered state:\n%s\nwant:\n%s", got, want)
	}
}

func TestDurableSnapshotOnlyRecovery(t *testing.T) {
	dir := t.TempDir()
	// SnapshotEvery=1: every flush compacts, leaving an empty journal.
	p1, _ := newDurablePeer(t, dir, Durability{SnapshotEvery: 1})
	growNotes(t, p1, "alpha")
	want := peerCanonical(p1)
	p1.Close()

	if fi, err := os.Stat(filepath.Join(dir, JournalFile)); err != nil || fi.Size() != 0 {
		t.Fatalf("journal not compacted: %v, size %d", err, fi.Size())
	}
	p2, info := newDurablePeer(t, dir, Durability{SnapshotEvery: 1})
	if !info.Recovered || info.SnapshotSeq == 0 || info.Replayed != 0 {
		t.Fatalf("recovery info: %+v", info)
	}
	if got := peerCanonical(p2); got != want {
		t.Fatalf("recovered state:\n%s\nwant:\n%s", got, want)
	}
}

func TestDurableTornFinalRecordRecovery(t *testing.T) {
	dir := t.TempDir()
	p1, _ := newDurablePeer(t, dir, Durability{})
	growNotes(t, p1, "alpha")
	wantPrefix := peerCanonical(p1) // state covered by intact records
	growNotes(t, p1, "beta")
	p1.Close()

	// Tear the final record: chop bytes off the journal tail.
	logPath := filepath.Join(dir, JournalFile)
	data, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(logPath, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	p2, info := newDurablePeer(t, dir, Durability{})
	if !info.Torn || info.Replayed != 1 {
		t.Fatalf("recovery info: %+v", info)
	}
	if got := peerCanonical(p2); got != wantPrefix {
		t.Fatalf("recovered state:\n%s\nwant intact prefix:\n%s", got, wantPrefix)
	}
	// The truncated journal accepts new appends cleanly.
	growNotes(t, p2, "gamma")
	if err := p2.StoreErr(); err != nil {
		t.Fatal(err)
	}
}

func TestDurableSnapshotNewerThanLogTail(t *testing.T) {
	dir := t.TempDir()
	p1, _ := newDurablePeer(t, dir, Durability{})
	growNotes(t, p1, "alpha")
	growNotes(t, p1, "beta")
	want := peerCanonical(p1)
	// Force a snapshot covering every record, then undo the compaction by
	// restoring the old journal bytes: the snapshot (seq 2) is now newer
	// than the whole log tail, the state after a crash between
	// WriteSnapshot and Reset.
	logPath := filepath.Join(dir, JournalFile)
	oldLog, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := p1.Snapshot(); err != nil {
		t.Fatal(err)
	}
	p1.Close()
	if err := os.WriteFile(logPath, oldLog, 0o644); err != nil {
		t.Fatal(err)
	}

	p2, info := newDurablePeer(t, dir, Durability{})
	if !info.Recovered || info.SnapshotSeq != 2 || info.Replayed != 0 {
		t.Fatalf("recovery info: %+v (stale log records must be skipped)", info)
	}
	if got := peerCanonical(p2); got != want {
		t.Fatalf("recovered state:\n%s\nwant:\n%s", got, want)
	}
}

// Double replay: merging the same journal into an already-recovered
// system a second time changes nothing — record merges are least upper
// bounds, so replay is idempotent (the subsumption argument from the
// paper's Section 2.1).
func TestDurableDoubleReplayIdempotent(t *testing.T) {
	dir := t.TempDir()
	p1, _ := newDurablePeer(t, dir, Durability{})
	growNotes(t, p1, "alpha")
	growNotes(t, p1, "beta")
	p1.Close()

	sys := core.MustParseSystem(durableSeed)
	logPath := filepath.Join(dir, JournalFile)
	replayOnce := func() {
		_, err := journal.Replay(logPath, func(rec journal.Record) error {
			name, root, err := UnmarshalDocRecord(rec.Payload)
			if err != nil {
				return err
			}
			_, err = sys.Restore(name, root)
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	replayOnce()
	once := sys.CanonicalString()
	replayOnce()
	if twice := sys.CanonicalString(); twice != once {
		t.Fatalf("double replay diverged:\n%s\nvs\n%s", twice, once)
	}
}

func TestDurableCorruptSnapshotRefusesStart(t *testing.T) {
	dir := t.TempDir()
	p1, _ := newDurablePeer(t, dir, Durability{SnapshotEvery: 1})
	growNotes(t, p1, "alpha")
	p1.Close()
	snapPath := filepath.Join(dir, SnapshotFile)
	data, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x40
	if err := os.WriteFile(snapPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = Open("durable", core.MustParseSystem(durableSeed), WithDurability(Durability{Dir: dir}))
	if !errors.Is(err, journal.ErrCorruptSnapshot) {
		t.Fatalf("corrupt snapshot: %v", err)
	}
}

// Acceptance (tentpole): a durable peer in a two-peer fleet is killed at
// an arbitrary journal record mid-run, restarted from its data dir,
// catches up via anti-entropy, and the fleet converges to exactly the
// digest of a crash-free run — for every crash point.
func TestChaosKillRestartConvergesToCleanFixpoint(t *testing.T) {
	// The remote peer owns a ratings database that grows while the
	// durable peer is down; extraEntry is that late growth.
	const remoteSeed = `
doc ratings = db{entry{title{"Body and Soul"},stars{"4"}},entry{title{"Naima"},stars{"5"}}}
func GetRating = rating{$s} :- input/input{title{$t}}, ratings/db{entry{title{$t},stars{$s}}}
`
	extraEntry := func(p *Peer) {
		p.System(func(s *core.System) {
			doc := s.Document("ratings")
			doc.Root.Children = append(doc.Root.Children,
				syntax.MustParseDocument(`entry{title{"Giant Steps"},stars{"5"}}`))
			s.Touch("ratings")
		})
	}
	// The durable peer: a portal whose document calls the remote service,
	// plus a mirror of the remote ratings database.
	const portalSeedDocs = `
doc portal = directory{cd{title{"Body and Soul"},!GetRating{title{"Body and Soul"}}},cd{title{"Naima"},!GetRating{title{"Naima"}}}}
doc replica = db
`
	buildPortal := func(remoteURL string) *core.System {
		parsed, err := syntax.ParseSystem(portalSeedDocs)
		if err != nil {
			t.Fatal(err)
		}
		sys := core.NewSystem()
		if err := sys.AddService(&RemoteService{Name: "GetRating", URL: remoteURL}); err != nil {
			t.Fatal(err)
		}
		for _, d := range parsed.Docs {
			if err := sys.AddDocument(d); err != nil {
				t.Fatal(err)
			}
		}
		return sys
	}
	runToFixpoint := func(p *Peer, m *Mirror) {
		for i := 0; i < 50; i++ {
			synced, err := m.Sync(context.Background(), p)
			if err != nil {
				t.Fatal(err)
			}
			swept, err := p.Sweep()
			if err != nil {
				t.Fatal(err)
			}
			if !synced && !swept {
				return
			}
		}
		t.Fatal("no fixpoint within budget")
	}

	// Baseline: a never-crashed run against a remote that already has the
	// extra entry (the final remote state both runs end against).
	cleanRemote := New("ratings", core.MustParseSystem(remoteSeed))
	extraEntry(cleanRemote)
	cleanSrv := httptest.NewServer(cleanRemote.Handler())
	defer cleanSrv.Close()
	clean := New("portal", buildPortal(cleanSrv.URL))
	cleanMirror := &Mirror{Remote: cleanSrv.URL, RemoteDoc: "ratings", LocalDoc: "replica"}
	runToFixpoint(clean, cleanMirror)
	wantHash := clean.Hash()

	for crashAt := 1; crashAt <= 4; crashAt++ {
		// Fleet under test: remote starts without the extra entry.
		remote := New("ratings", core.MustParseSystem(remoteSeed))
		srv := httptest.NewServer(remote.Handler())

		dir := t.TempDir()
		crash := &faults.CrashWriter{CrashAt: crashAt, Partial: 11}
		p1, _, err := Open("portal", buildPortal(srv.URL), WithDurability(Durability{
			Dir:        dir,
			WrapWriter: func(w io.Writer) io.Writer { crash.W = w; return crash },
		}))
		if err != nil {
			t.Fatal(err)
		}
		m1 := &Mirror{Remote: srv.URL, RemoteDoc: "ratings", LocalDoc: "replica"}
		p1.AddMirror(m1)

		// Drive the fleet until the injected crash point kills the
		// journal mid-write (or the run finishes first, for large
		// crashAt — then the restart exercises clean-log recovery).
		for i := 0; i < 50 && !crash.Crashed(); i++ {
			if _, err := m1.Sync(context.Background(), p1); err != nil {
				t.Fatalf("crashAt=%d: %v", crashAt, err)
			}
			if crash.Crashed() {
				break
			}
			if _, err := p1.Sweep(); err != nil {
				t.Fatalf("crashAt=%d: %v", crashAt, err)
			}
		}
		// Kill: the process is gone; only the data dir survives. (Close
		// is not called — a real kill -9 would not flush anything.)
		if crash.Crashed() && p1.StoreErr() == nil {
			t.Fatalf("crashAt=%d: crash not surfaced via StoreErr", crashAt)
		}

		// While the peer is down the remote database grows.
		extraEntry(remote)

		// Restart from disk: recover, re-register the mirror, run
		// anti-entropy to re-pull the moved replica, sweep to fixpoint.
		p2, info, err := Open("portal", buildPortal(srv.URL), WithDurability(Durability{Dir: dir}))
		if err != nil {
			t.Fatalf("crashAt=%d: restart: %v", crashAt, err)
		}
		if crash.Crashed() && crash.Partial > 0 && !info.Torn {
			t.Fatalf("crashAt=%d: torn tail not detected: %+v", crashAt, info)
		}
		m2 := &Mirror{Remote: srv.URL, RemoteDoc: "ratings", LocalDoc: "replica"}
		p2.AddMirror(m2)
		if _, err := p2.AntiEntropy(context.Background()); err != nil {
			t.Fatalf("crashAt=%d: anti-entropy: %v", crashAt, err)
		}
		runToFixpoint(p2, m2)

		if got := p2.Hash(); got != wantHash {
			t.Fatalf("crashAt=%d: fleet diverged after crash+restart:\n got %s\nwant %s",
				crashAt, got, wantHash)
		}
		p2.Close()
		srv.Close()
	}
}

// AntiEntropy skips replicas whose remote digest matches the last pull
// and re-pulls the ones that moved.
func TestAntiEntropySkipsCurrentReplicas(t *testing.T) {
	remote := newRatingsPeer(t)
	srv := httptest.NewServer(remote.Handler())
	defer srv.Close()

	sys := core.NewSystem()
	if err := sys.AddDocument(NewReplicaDoc("replica", "db")); err != nil {
		t.Fatal(err)
	}
	p := New("local", sys)
	m := &Mirror{Remote: srv.URL, RemoteDoc: "ratings", LocalDoc: "replica"}
	p.AddMirror(m)

	// First pass pulls (no digest on record yet).
	n, err := p.AntiEntropy(context.Background())
	if err != nil || n != 1 {
		t.Fatalf("first pass: n=%d err=%v", n, err)
	}
	// Second pass: nothing moved, nothing pulled.
	syncsBefore := m.Syncs
	n, err = p.AntiEntropy(context.Background())
	if err != nil || n != 0 || m.Syncs != syncsBefore {
		t.Fatalf("steady pass: n=%d syncs=%d err=%v", n, m.Syncs, err)
	}
	// Remote moves; the pass pulls again.
	remote.System(func(s *core.System) {
		doc := s.Document("ratings")
		doc.Root.Children = append(doc.Root.Children,
			syntax.MustParseDocument(`entry{title{"Blue in Green"},stars{"5"}}`))
		s.Touch("ratings")
	})
	n, err = p.AntiEntropy(context.Background())
	if err != nil || n != 1 {
		t.Fatalf("after move: n=%d err=%v", n, err)
	}
}

// A journaling failure must not take down in-memory serving: the peer
// degrades to volatile and keeps converging.
func TestJournalFailureDegradesToVolatile(t *testing.T) {
	crash := &faults.CrashWriter{CrashAt: 1, Partial: 0}
	p, _, err := Open("fragile", core.MustParseSystem(durableSeed), WithDurability(Durability{
		Dir:        t.TempDir(),
		WrapWriter: func(w io.Writer) io.Writer { crash.W = w; return crash },
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	growNotes(t, p, "doomed")
	if p.StoreErr() == nil {
		t.Fatal("journal failure not recorded")
	}
	if !errors.Is(p.StoreErr(), faults.ErrCrash) {
		t.Fatalf("unexpected store error: %v", p.StoreErr())
	}
	// Serving continues from memory.
	growNotes(t, p, "still alive")
	var size int
	p.System(func(s *core.System) { size = s.Size() })
	if size == 0 {
		t.Fatal("in-memory state lost")
	}
}
