package peer

import (
	"testing"

	"axml/internal/tree"
)

// The journal replays through UnmarshalTree/UnmarshalDocRecord and peers
// exchange envelopes through UnmarshalEnvelope, so these parsers must
// never panic on arbitrary bytes, and what MarshalTree/MarshalEnvelope
// emit must parse back to an isomorphic value — otherwise a peer could
// persist (or send) bytes it cannot read back.

// fuzzMaxInput bounds per-exec cost: larger inputs only repeat structure
// the coverage-guided corpus already has.
const fuzzMaxInput = 1 << 16

// isoHash is tree.Isomorphic via Merkle hashes: O(n) where canonical
// strings are O(n²) on the deep chains fuzzing gravitates to.
func isoHash(a, b *tree.Node) bool {
	if a == nil || b == nil {
		return a == b
	}
	return a.CanonicalHash() == b.CanonicalHash()
}

func FuzzUnmarshalTree(f *testing.F) {
	seeds := []string{
		``,
		`<a/>`,
		`<a><b>x</b></a>`,
		`<ax:value>4</ax:value>`,
		`<ax:call service="GetRating"><title>Naima</title></ax:call>`,
		`<directory><cd><title>L'amour</title><ax:call service="FreeMusicDB"><ax:value>Jazz</ax:value></ax:call></cd></directory>`,
		`<a>stray text</a>`,
		`<ax:call>missing service</ax:call>`,
		`<a><unclosed></a>`,
		`<a attr="dropped"/>`,
		"<a>x\r\ny</a>",
		`<ax:doc name="notes"><log/></ax:doc>`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > fuzzMaxInput {
			return
		}
		n, err := UnmarshalTree(data)
		if err != nil {
			return // malformed input rejected: fine, as long as no panic
		}
		out, err := MarshalTree(n)
		if err != nil {
			t.Fatalf("parsed tree does not re-marshal: %v (input %q)", err, data)
		}
		back, err := UnmarshalTree(out)
		if err != nil {
			t.Fatalf("marshaled bytes do not re-parse: %v (wire %q)", err, out)
		}
		if !isoHash(n, back) {
			t.Fatalf("round trip not a fixpoint:\nfirst  %s\nsecond %s\nwire %q", n, back, out)
		}
	})
}

// FuzzUnmarshalDelta: replicas feed whatever a remote peer sends
// straight into UnmarshalDelta and then mutate local state from it, so
// the parser must reject garbage without panicking, and every accepted
// record must re-marshal to a stable wire form (the encoder orders
// spines before adds, so one decode/encode round canonicalizes and the
// second must be a fixpoint).
func FuzzUnmarshalDelta(f *testing.F) {
	seeds := []string{
		``,
		`<ax:delta name="d" mode="same" to="00112233aabbccdd"></ax:delta>`,
		`<ax:delta name="d" mode="full" to="00112233aabbccdd"><d><x>1</x></d></ax:delta>`,
		`<ax:delta name="d" mode="delta" from="deadbeefdeadbeef" to="00112233aabbccdd">` +
			`<ax:patch kind="label" name="d" base=""><ax:patch kind="label" name="sec" base="0102030405060708"><y/></ax:patch><z/></ax:patch></ax:delta>`,
		`<ax:delta name="d" mode="delta" to="x"><ax:patch kind="func" name="f" base="b"/></ax:delta>`,
		`<ax:delta name="d" mode="nonsense" to="x"></ax:delta>`,
		`<ax:delta mode="full"><unclosed></ax:delta>`,
		`<ax:patch kind="label" name="orphan" base=""/>`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > fuzzMaxInput {
			return
		}
		d, err := UnmarshalDelta(data)
		if err != nil {
			return // malformed input rejected: fine, as long as no panic
		}
		out, err := MarshalDelta(d)
		if err != nil {
			t.Fatalf("parsed delta does not re-marshal: %v (input %q)", err, data)
		}
		back, err := UnmarshalDelta(out)
		if err != nil {
			t.Fatalf("marshaled delta does not re-parse: %v (wire %q)", err, out)
		}
		again, err := MarshalDelta(back)
		if err != nil {
			t.Fatalf("re-parsed delta does not re-marshal: %v (wire %q)", err, out)
		}
		if string(out) != string(again) {
			t.Fatalf("delta wire form not a fixpoint:\nfirst  %q\nsecond %q", out, again)
		}
	})
}

func FuzzUnmarshalEnvelope(f *testing.F) {
	seeds := []string{
		``,
		`<ax:envelope><ax:invoke service="f"><ax:input/><ax:context/></ax:invoke></ax:envelope>`,
		`<ax:envelope><ax:invoke service="GetRating"><ax:input><input><title>Naima</title></input></ax:input><ax:context><cd><title>Naima</title></cd></ax:context></ax:invoke></ax:envelope>`,
		`<ax:envelope></ax:envelope>`,
		`<ax:envelope><ax:invoke><ax:input/></ax:invoke></ax:envelope>`,
		`<ax:invoke service="f"/>`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > fuzzMaxInput {
			return
		}
		env, err := UnmarshalEnvelope(data)
		if err != nil {
			return
		}
		out, err := MarshalEnvelope(env)
		if err != nil {
			t.Fatalf("parsed envelope does not re-marshal: %v (input %q)", err, data)
		}
		back, err := UnmarshalEnvelope(out)
		if err != nil {
			t.Fatalf("marshaled envelope does not re-parse: %v (wire %q)", err, out)
		}
		if back.Service != env.Service ||
			!isoHash(back.Input, env.Input) ||
			!isoHash(back.Context, env.Context) {
			t.Fatalf("envelope round trip not a fixpoint:\nfirst  %+v\nsecond %+v\nwire %q", env, back, out)
		}
	})
}
