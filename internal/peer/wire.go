// Package peer implements the distributed substrate of the paper's
// setting: AXML documents and services live on peers that exchange
// intensional documents over HTTP, the stand-in for the SOAP/WSDL Web
// service stack of 2004 (see DESIGN.md for the substitution argument).
//
// The wire format is XML (encoding/xml): data nodes are elements, atomic
// values are ax:value elements, and service calls are ax:call elements
// carrying the service name — so intensional data travels between peers
// exactly as the paper requires ("Web services in this context can
// exchange intensional information").
//
// Peers evaluate their services against their own documents; remote calls
// embed in local documents through RemoteService, and a synchronous
// distributed fixpoint (Coordinator) detects global termination, the
// distributed concern raised in the paper's conclusion.
package peer

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"io"
	"strings"
	"unicode"

	"axml/internal/tree"
)

// Reserved wire element names. AXML labels cannot contain ':', so these
// never collide with data.
const (
	elemValue    = "ax:value"
	elemCall     = "ax:call"
	elemEnvelope = "ax:envelope"
	elemInvoke   = "ax:invoke"
	elemInput    = "ax:input"
	elemContext  = "ax:context"
	elemResponse = "ax:response"
	elemForest   = "ax:forest"
	elemFault    = "ax:fault"
	elemDoc      = "ax:doc"
	elemSnapshot = "ax:snapshot"
	attrService  = "service"
	attrName     = "name"
)

// wireName reconstitutes the prefixed wire name: Go's decoder splits
// "ax:value" into Space "ax" and Local "value" (the prefix is undeclared,
// so it survives as the Space).
func wireName(n xml.Name) string {
	if n.Space == "ax" {
		return "ax:" + n.Local
	}
	return n.Local
}

// validWireLabel reports whether a decoded element name re-emits as a
// well-formed XML element. Go's decoder is lenient about names in
// prefixed positions (it accepts <A:0/>), but the encoder writes names
// verbatim, so a label that is not a valid prefixed name would marshal
// into bytes no parser accepts; reject those on decode instead.
func validWireLabel(s string) bool {
	prefix, local, cut := strings.Cut(s, ":")
	if cut && !validNCName(local) {
		return false
	}
	return validNCName(prefix)
}

func validNCName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		if r == '_' || unicode.IsLetter(r) {
			continue
		}
		if i > 0 && (r == '-' || r == '.' || unicode.IsDigit(r)) {
			continue
		}
		return false
	}
	return true
}

// MarshalTree renders a tree in the XML wire format.
func MarshalTree(n *tree.Node) ([]byte, error) {
	var buf bytes.Buffer
	enc := xml.NewEncoder(&buf)
	if err := encodeNode(enc, n); err != nil {
		return nil, err
	}
	if err := enc.Flush(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func encodeNode(enc *xml.Encoder, n *tree.Node) error {
	if n == nil {
		return fmt.Errorf("peer: nil node")
	}
	var start xml.StartElement
	switch n.Kind {
	case tree.Label:
		start = xml.StartElement{Name: xml.Name{Local: n.Name}}
	case tree.Value:
		start = xml.StartElement{Name: xml.Name{Local: elemValue}}
	case tree.Func:
		start = xml.StartElement{
			Name: xml.Name{Local: elemCall},
			Attr: []xml.Attr{{Name: xml.Name{Local: attrService}, Value: n.Name}},
		}
	}
	if err := enc.EncodeToken(start); err != nil {
		return err
	}
	if n.Kind == tree.Value {
		if err := enc.EncodeToken(xml.CharData(n.Name)); err != nil {
			return err
		}
	}
	for _, c := range n.Children {
		if err := encodeNode(enc, c); err != nil {
			return err
		}
	}
	return enc.EncodeToken(start.End())
}

// UnmarshalTree parses one tree from the XML wire format.
func UnmarshalTree(data []byte) (*tree.Node, error) {
	dec := xml.NewDecoder(bytes.NewReader(data))
	n, err := decodeNext(dec)
	if err != nil {
		return nil, err
	}
	if n == nil {
		return nil, fmt.Errorf("peer: empty document")
	}
	return n, nil
}

// decodeNext reads the next element as a tree, skipping whitespace;
// returns nil at end of enclosing element or input.
func decodeNext(dec *xml.Decoder) (*tree.Node, error) {
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			return nil, nil
		}
		if err != nil {
			return nil, err
		}
		switch t := tok.(type) {
		case xml.StartElement:
			return decodeElement(dec, t)
		case xml.EndElement:
			return nil, nil
		case xml.CharData:
			// Whitespace between elements; anything else is malformed.
			if len(bytes.TrimSpace(t)) != 0 {
				return nil, fmt.Errorf("peer: unexpected character data %q", string(t))
			}
		}
	}
}

func decodeElement(dec *xml.Decoder, start xml.StartElement) (*tree.Node, error) {
	switch wireName(start.Name) {
	case elemValue:
		var text bytes.Buffer
		for {
			tok, err := dec.Token()
			if err != nil {
				return nil, err
			}
			switch t := tok.(type) {
			case xml.CharData:
				text.Write(t)
			case xml.EndElement:
				return tree.NewValue(text.String()), nil
			default:
				return nil, fmt.Errorf("peer: unexpected token inside %s", elemValue)
			}
		}
	case elemCall:
		svc := ""
		for _, a := range start.Attr {
			if a.Name.Local == attrService {
				svc = a.Value
			}
		}
		if svc == "" {
			return nil, fmt.Errorf("peer: %s without service attribute", elemCall)
		}
		n := tree.NewFunc(svc)
		return decodeChildren(dec, n)
	default:
		name := wireName(start.Name)
		if !validWireLabel(name) {
			return nil, fmt.Errorf("peer: element name %q does not round-trip", name)
		}
		return decodeChildren(dec, tree.NewLabel(name))
	}
}

func decodeChildren(dec *xml.Decoder, n *tree.Node) (*tree.Node, error) {
	for {
		c, err := decodeNext(dec)
		if err != nil {
			return nil, err
		}
		if c == nil {
			return n, nil
		}
		n.Children = append(n.Children, c)
	}
}

// MarshalForest renders a forest inside an ax:forest element.
func MarshalForest(f tree.Forest) ([]byte, error) {
	var buf bytes.Buffer
	enc := xml.NewEncoder(&buf)
	start := xml.StartElement{Name: xml.Name{Local: elemForest}}
	if err := enc.EncodeToken(start); err != nil {
		return nil, err
	}
	for _, t := range f {
		if err := encodeNode(enc, t); err != nil {
			return nil, err
		}
	}
	if err := enc.EncodeToken(start.End()); err != nil {
		return nil, err
	}
	if err := enc.Flush(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// UnmarshalForest parses an ax:forest element.
func UnmarshalForest(data []byte) (tree.Forest, error) {
	dec := xml.NewDecoder(bytes.NewReader(data))
	tok, err := firstStart(dec)
	if err != nil {
		return nil, err
	}
	if wireName(tok.Name) != elemForest {
		return nil, fmt.Errorf("peer: expected %s, found %s", elemForest, wireName(tok.Name))
	}
	var out tree.Forest
	for {
		n, err := decodeNext(dec)
		if err != nil {
			return nil, err
		}
		if n == nil {
			return out, nil
		}
		out = append(out, n)
	}
}

func firstStart(dec *xml.Decoder) (xml.StartElement, error) {
	for {
		tok, err := dec.Token()
		if err != nil {
			return xml.StartElement{}, err
		}
		if s, ok := tok.(xml.StartElement); ok {
			return s, nil
		}
	}
}

// MarshalDocRecord renders a named document state as an ax:doc element —
// the payload of a journal record: the full reduced tree of one document
// after a mutation (sweep append, mirror sync, push delivery). Full
// states rather than deltas keep replay trivially idempotent: recovery
// merges each record into the document by least upper bound, so records
// may be replayed twice or arrive already subsumed without harm.
func MarshalDocRecord(name string, root *tree.Node) ([]byte, error) {
	var buf bytes.Buffer
	enc := xml.NewEncoder(&buf)
	start := xml.StartElement{
		Name: xml.Name{Local: elemDoc},
		Attr: []xml.Attr{{Name: xml.Name{Local: attrName}, Value: name}},
	}
	if err := enc.EncodeToken(start); err != nil {
		return nil, err
	}
	if err := encodeNode(enc, root); err != nil {
		return nil, err
	}
	if err := enc.EncodeToken(start.End()); err != nil {
		return nil, err
	}
	if err := enc.Flush(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// UnmarshalDocRecord parses an ax:doc journal record.
func UnmarshalDocRecord(data []byte) (name string, root *tree.Node, err error) {
	dec := xml.NewDecoder(bytes.NewReader(data))
	start, err := firstStart(dec)
	if err != nil {
		return "", nil, fmt.Errorf("peer: bad doc record: %v", err)
	}
	return decodeDocElement(dec, start)
}

func decodeDocElement(dec *xml.Decoder, start xml.StartElement) (string, *tree.Node, error) {
	if wireName(start.Name) != elemDoc {
		return "", nil, fmt.Errorf("peer: expected %s, found %s", elemDoc, wireName(start.Name))
	}
	name := ""
	for _, a := range start.Attr {
		if a.Name.Local == attrName {
			name = a.Value
		}
	}
	if name == "" {
		return "", nil, fmt.Errorf("peer: %s without %s attribute", elemDoc, attrName)
	}
	root, err := decodeNext(dec)
	if err != nil {
		return "", nil, err
	}
	if root == nil {
		return "", nil, fmt.Errorf("peer: %s %q without a tree", elemDoc, name)
	}
	// Consume the closing tag (decodeNext returns nil on it), so a caller
	// iterating over sibling ax:doc elements lands on the next one.
	extra, err := decodeNext(dec)
	if err != nil {
		return "", nil, err
	}
	if extra != nil {
		return "", nil, fmt.Errorf("peer: %s %q with more than one tree", elemDoc, name)
	}
	return name, root, nil
}

// MarshalSnapshot renders a document set as an ax:snapshot element of
// ax:doc entries — the payload of a snapshot file.
func MarshalSnapshot(docs []*tree.Document) ([]byte, error) {
	var buf bytes.Buffer
	enc := xml.NewEncoder(&buf)
	snap := xml.StartElement{Name: xml.Name{Local: elemSnapshot}}
	if err := enc.EncodeToken(snap); err != nil {
		return nil, err
	}
	for _, d := range docs {
		start := xml.StartElement{
			Name: xml.Name{Local: elemDoc},
			Attr: []xml.Attr{{Name: xml.Name{Local: attrName}, Value: d.Name}},
		}
		if err := enc.EncodeToken(start); err != nil {
			return nil, err
		}
		if err := encodeNode(enc, d.Root); err != nil {
			return nil, err
		}
		if err := enc.EncodeToken(start.End()); err != nil {
			return nil, err
		}
	}
	if err := enc.EncodeToken(snap.End()); err != nil {
		return nil, err
	}
	if err := enc.Flush(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// UnmarshalSnapshot parses an ax:snapshot element back into documents.
func UnmarshalSnapshot(data []byte) ([]*tree.Document, error) {
	dec := xml.NewDecoder(bytes.NewReader(data))
	snap, err := firstStart(dec)
	if err != nil {
		return nil, fmt.Errorf("peer: bad snapshot: %v", err)
	}
	if wireName(snap.Name) != elemSnapshot {
		return nil, fmt.Errorf("peer: expected %s, found %s", elemSnapshot, wireName(snap.Name))
	}
	var docs []*tree.Document
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			return docs, nil
		}
		if err != nil {
			return nil, err
		}
		switch t := tok.(type) {
		case xml.StartElement:
			name, root, err := decodeDocElement(dec, t)
			if err != nil {
				return nil, err
			}
			docs = append(docs, tree.NewDocument(name, root))
		case xml.EndElement:
			return docs, nil
		}
	}
}

// Envelope is an invocation request: service name, input and context.
type Envelope struct {
	Service string
	Input   *tree.Node
	Context *tree.Node
}

// MarshalEnvelope renders the invocation envelope.
func MarshalEnvelope(e Envelope) ([]byte, error) {
	var buf bytes.Buffer
	enc := xml.NewEncoder(&buf)
	env := xml.StartElement{Name: xml.Name{Local: elemEnvelope}}
	inv := xml.StartElement{
		Name: xml.Name{Local: elemInvoke},
		Attr: []xml.Attr{{Name: xml.Name{Local: attrService}, Value: e.Service}},
	}
	if err := enc.EncodeToken(env); err != nil {
		return nil, err
	}
	if err := enc.EncodeToken(inv); err != nil {
		return nil, err
	}
	for _, part := range []struct {
		name string
		node *tree.Node
	}{{elemInput, e.Input}, {elemContext, e.Context}} {
		start := xml.StartElement{Name: xml.Name{Local: part.name}}
		if err := enc.EncodeToken(start); err != nil {
			return nil, err
		}
		if part.node != nil {
			if err := encodeNode(enc, part.node); err != nil {
				return nil, err
			}
		}
		if err := enc.EncodeToken(start.End()); err != nil {
			return nil, err
		}
	}
	if err := enc.EncodeToken(inv.End()); err != nil {
		return nil, err
	}
	if err := enc.EncodeToken(env.End()); err != nil {
		return nil, err
	}
	if err := enc.Flush(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// UnmarshalEnvelope parses an invocation envelope.
func UnmarshalEnvelope(data []byte) (Envelope, error) {
	var e Envelope
	dec := xml.NewDecoder(bytes.NewReader(data))
	env, err := firstStart(dec)
	if err != nil || wireName(env.Name) != elemEnvelope {
		return e, fmt.Errorf("peer: bad envelope: %v", err)
	}
	inv, err := firstStart(dec)
	if err != nil || wireName(inv.Name) != elemInvoke {
		return e, fmt.Errorf("peer: bad invoke element: %v", err)
	}
	for _, a := range inv.Attr {
		if a.Name.Local == attrService {
			e.Service = a.Value
		}
	}
	if e.Service == "" {
		return e, fmt.Errorf("peer: envelope without service")
	}
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			return e, nil
		}
		if err != nil {
			return e, err
		}
		s, ok := tok.(xml.StartElement)
		if !ok {
			continue
		}
		switch wireName(s.Name) {
		case elemInput:
			n, err := decodeNext(dec)
			if err != nil {
				return e, err
			}
			e.Input = n
		case elemContext:
			n, err := decodeNext(dec)
			if err != nil {
				return e, err
			}
			e.Context = n
		}
	}
}
