package peer

import (
	"context"
	"net/http/httptest"
	"testing"

	"axml/internal/core"
	"axml/internal/syntax"
	"axml/internal/tree"
)

func TestMirrorSyncMergesMonotonically(t *testing.T) {
	remoteSys := core.MustParseSystem(`doc catalog = cat{item{"a"},item{"b"}}`)
	remotePeer := New("remote", remoteSys)
	srv := httptest.NewServer(remotePeer.Handler())
	defer srv.Close()

	localSys := core.MustParseSystem(`doc replica = cat{item{"local-only"}}`)
	local := New("local", localSys)
	m := &Mirror{Remote: srv.URL, RemoteDoc: "catalog", LocalDoc: "replica"}

	changed, err := m.Sync(context.Background(), local)
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("first sync brought nothing")
	}
	// Merge keeps local-only data (union semantics).
	want := syntax.MustParseDocument(`cat{item{"local-only"},item{"a"},item{"b"}}`)
	local.System(func(s *core.System) {
		if !tree.Isomorphic(s.Document("replica").Root, want) {
			t.Fatalf("replica = %s", s.Document("replica").Root.CanonicalString())
		}
	})
	// Idempotent: second sync changes nothing.
	changed, err = m.Sync(context.Background(), local)
	if err != nil {
		t.Fatal(err)
	}
	if changed {
		t.Fatal("idempotent re-sync reported change")
	}
	if m.Syncs != 2 || m.LastChanged {
		t.Fatalf("stats: %+v", m)
	}
}

func TestMirrorSyncUntilStableWithEvolvingRemote(t *testing.T) {
	// The remote document grows via its own service between syncs.
	remoteSys := core.MustParseSystem(`
doc catalog = cat{item{"a"},!grow}
func grow = item{"b"} :-
`)
	remotePeer := New("remote", remoteSys)
	srv := httptest.NewServer(remotePeer.Handler())
	defer srv.Close()

	localSys := core.NewSystem()
	if err := localSys.AddDocument(NewReplicaDoc("replica", "cat")); err != nil {
		t.Fatal(err)
	}
	local := New("local", localSys)
	m := &Mirror{Remote: srv.URL, RemoteDoc: "catalog", LocalDoc: "replica"}

	// First round of syncs before the remote evolves.
	if _, err := m.Sync(context.Background(), local); err != nil {
		t.Fatal(err)
	}
	// Remote evolves; replica catches up and stabilizes.
	remotePeer.Sweep()
	rounds, stable, err := m.SyncUntilStable(context.Background(), local, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !stable {
		t.Fatalf("not stable after %d rounds", rounds)
	}
	local.System(func(s *core.System) {
		got := s.Document("replica").Root
		found := map[string]bool{}
		got.Walk(func(n, _ *tree.Node) bool {
			if n.Kind == tree.Value {
				found[n.Name] = true
			}
			return true
		})
		if !found["a"] || !found["b"] {
			t.Fatalf("replica missed data: %s", got.CanonicalString())
		}
	})
}

func TestMirrorErrors(t *testing.T) {
	remoteSys := core.MustParseSystem(`doc catalog = cat{item{"a"}}`)
	srv := httptest.NewServer(New("remote", remoteSys).Handler())
	defer srv.Close()

	local := New("local", core.MustParseSystem(`doc other = zzz{x{"1"}}
doc seed = guess`))
	m := &Mirror{Remote: srv.URL, RemoteDoc: "catalog", LocalDoc: "missing"}
	if _, err := m.Sync(context.Background(), local); err == nil {
		t.Fatal("missing local doc accepted")
	}
	m = &Mirror{Remote: srv.URL, RemoteDoc: "catalog", LocalDoc: "other"}
	if _, err := m.Sync(context.Background(), local); err == nil {
		t.Fatal("incomparable roots accepted")
	}
	m = &Mirror{Remote: srv.URL, RemoteDoc: "nope", LocalDoc: "other"}
	if _, err := m.Sync(context.Background(), local); err == nil {
		t.Fatal("missing remote doc accepted")
	}
	// A childless label seed carries no information: the first sync
	// adopts the remote root marking instead of refusing forever (the
	// axml-peer CLI seeds undeclared mirror targets this way).
	m = &Mirror{Remote: srv.URL, RemoteDoc: "catalog", LocalDoc: "seed"}
	if changed, err := m.Sync(context.Background(), local); err != nil || !changed {
		t.Fatalf("virgin seed sync: changed=%v err=%v", changed, err)
	}
	local.System(func(s *core.System) {
		root := s.Document("seed").Root
		if root.Name != "cat" || len(root.Children) == 0 {
			t.Fatalf("seed did not adopt remote root: %s", root.CanonicalString())
		}
	})
}
