package peer

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"axml/internal/core"
	"axml/internal/faults"
	"axml/internal/obs"
	"axml/internal/subsume"
	"axml/internal/syntax"
	"axml/internal/tree"
)

// The fleet acceptance test: ten durable peers partitioned by a
// consistent-hash ring (rf=2), every document's owners cross-mirroring
// each other through digest-anchored deltas, while the chaos loop
// injects message loss (flaky HTTP handlers), crash-restarts
// (journal-backed recovery behind a stable URL), stale delta anchors,
// duplicated deliveries and concurrent divergent writes. Afterwards,
// bounded anti-entropy rounds must drive every owner of every document
// to the digest a single unfailing peer applying the same growths would
// have reached — monotone LUB merges make every one of those faults
// survivable (Theorem 2.1: replay only re-adds information, and the
// join of all growths is order-independent).

const fleetFlakyEvery = 5 // every 5th HTTP request answers 502

// fleetSlot is one stable network identity: the URL outlives its peer,
// whose incarnations come and go behind the swappable handler.
type fleetSlot struct {
	name    string
	dir     string
	handler atomic.Value // http.Handler
	url     string
	peer    *Peer // nil while crashed
	mirrors []*Mirror
}

func (s *fleetSlot) down() bool { return s.peer == nil }

type fleet struct {
	t     *testing.T
	reg   *obs.Registry
	ring  *Ring
	rf    int
	docs  []string
	slots map[string]*fleetSlot
	urls  map[string]string
}

// newFleet starts n slots and boots a durable peer into each.
func newFleet(t *testing.T, n, rf int, docs []string) *fleet {
	t.Helper()
	f := &fleet{
		t:     t,
		reg:   obs.NewRegistry(),
		ring:  NewRing(fleetNames(n), 0),
		rf:    rf,
		docs:  docs,
		slots: make(map[string]*fleetSlot, n),
		urls:  make(map[string]string, n),
	}
	base := t.TempDir()
	for _, name := range fleetNames(n) {
		slot := &fleetSlot{name: name, dir: filepath.Join(base, name)}
		slot.handler.Store(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			http.Error(w, "booting", http.StatusServiceUnavailable)
		}))
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			slot.handler.Load().(http.Handler).ServeHTTP(w, r)
		}))
		t.Cleanup(srv.Close)
		slot.url = srv.URL
		f.slots[name] = slot
		f.urls[name] = slot.url
	}
	// Boot in name order: the flaky handlers fail every k-th request, so
	// keeping every request sequence deterministic keeps the whole test
	// reproducible under one rng seed.
	for _, name := range fleetNames(n) {
		f.boot(f.slots[name])
	}
	return f
}

// boot builds a fresh incarnation of the slot's peer — first boot and
// crash-restart are the same code path; recovery comes from the journal
// in the slot's directory. Ownership and mirrors are re-derived from the
// ring; mirror anchors start empty, so a recovered replica's first sync
// is a full pull (exactly the degradation the protocol promises).
func (f *fleet) boot(slot *fleetSlot) {
	f.t.Helper()
	sys := core.NewSystem()
	for _, doc := range f.docs {
		if f.owns(slot.name, doc) {
			if err := sys.AddDocument(NewReplicaDoc(doc, "d")); err != nil {
				f.t.Fatal(err)
			}
		}
	}
	p, _, err := Open(slot.name, sys,
		WithDurability(Durability{Dir: slot.dir}),
		WithObservability(f.reg))
	if err != nil {
		f.t.Fatal(err)
	}
	slot.peer = p
	slot.mirrors = nil
	for _, doc := range f.docs {
		if !f.owns(slot.name, doc) {
			continue
		}
		for _, other := range f.ring.Owners(doc, f.rf) {
			if other == slot.name {
				continue
			}
			// Owners cross-mirror: growth lands at any owner and the LUB
			// merge spreads it to the rest.
			m := &Mirror{Remote: f.urls[other], RemoteDoc: doc, LocalDoc: doc}
			p.AddMirror(m)
			slot.mirrors = append(slot.mirrors, m)
		}
	}
	rt := NewRouter(p, slot.name, f.ring, func(name string) string {
		if f.slots[name].down() {
			return ""
		}
		return f.urls[name]
	}, f.rf)
	slot.handler.Store(faults.FlakyHandler(rt, fleetFlakyEvery))
}

// crash closes the slot's peer (journal flushed — the suffix a real
// crash would tear off is covered by the journal fault tests) and leaves
// the URL answering 503 until restart.
func (f *fleet) crash(slot *fleetSlot) {
	f.t.Helper()
	slot.handler.Store(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "crashed", http.StatusServiceUnavailable)
	}))
	if err := slot.peer.Close(); err != nil {
		f.t.Fatal(err)
	}
	slot.peer = nil
	slot.mirrors = nil
}

func (f *fleet) owns(name, doc string) bool {
	for _, o := range f.ring.Owners(doc, f.rf) {
		if o == name {
			return true
		}
	}
	return false
}

// hasSecChild reports whether the owner's copy of doc already carries
// the shared sec subtree (the in-place growth target).
func hasSecChild(p *Peer, doc string) bool {
	var ok bool
	p.System(func(s *core.System) {
		for _, c := range s.Document(doc).Root.Children {
			if c.Kind == tree.Label && c.Name == "sec" {
				ok = true
			}
		}
	})
	return ok
}

// TestFleetChaosConvergence is the PR's acceptance gate.
func TestFleetChaosConvergence(t *testing.T) {
	docs := make([]string, 6)
	for i := range docs {
		docs[i] = fmt.Sprintf("doc%d", i)
	}
	f := newFleet(t, 10, 2, docs)
	rng := rand.New(rand.NewSource(0xf1ee7))
	ctx := context.Background()

	// reference[doc] is the state a single unfailing peer applying every
	// growth would hold, built with the same append-and-reduce primitive
	// the peers use. The join of all growths is order-independent, so
	// applying them here in schedule order is the distributed fixpoint.
	reference := make(map[string]*tree.Node, len(docs))
	for _, doc := range docs {
		reference[doc] = reduced(t, `d`)
	}
	applied := 0
	refGrow := func(doc, src string) {
		root := reference[doc]
		root.Children = append(root.Children, syntax.MustParseDocument(src))
		tree.InvalidateDigestAll(root)
		subsume.ReduceInPlace(root)
	}
	refGrowIn := func(doc, src string) {
		root := reference[doc]
		for _, c := range root.Children {
			if c.Kind == tree.Label && c.Name == "sec" {
				c.Children = append(c.Children, syntax.MustParseDocument(src))
				break
			}
		}
		tree.InvalidateDigestAll(root)
		subsume.ReduceInPlace(root)
	}

	const chaosRounds = 60
	for round := 0; round < chaosRounds; round++ {
		// Growth: a random owner of a random document learns something
		// new — sometimes deep inside the shared sec subtree, so that
		// concurrently diverged owners exchange spine patches whose bases
		// miss and force the full-pull fallback.
		doc := docs[rng.Intn(len(docs))]
		owners := f.ring.Owners(doc, f.rf)
		if slot := f.slots[owners[rng.Intn(len(owners))]]; !slot.down() {
			switch {
			case !hasSecChild(slot.peer, doc):
				growDoc(slot.peer, doc, `sec`)
				refGrow(doc, `sec`)
			case rng.Intn(3) == 0:
				src := fmt.Sprintf(`n{"v%d"}`, applied)
				growIn(slot.peer, doc, "sec", src)
				refGrowIn(doc, src)
			default:
				src := fmt.Sprintf(`e{t{"v%d"},s{"%d"}}`, applied, round)
				growDoc(slot.peer, doc, src)
				refGrow(doc, src)
			}
			applied++
		}

		// Fault of the round.
		names := fleetNames(10)
		victim := f.slots[names[rng.Intn(len(names))]]
		switch rng.Intn(6) {
		case 0: // crash (journal recovery owes us the state back)
			if !victim.down() {
				f.crash(victim)
			}
		case 1, 2: // restart
			if victim.down() {
				f.boot(victim)
			}
		case 3: // stale anchor: a replica claims a digest the remote never served
			if !victim.down() && len(victim.mirrors) > 0 {
				victim.mirrors[rng.Intn(len(victim.mirrors))].lastRemote = "feedfacefeedface"
			}
		case 4: // duplicated delivery: sync the same mirror twice back to back
			if !victim.down() && len(victim.mirrors) > 0 {
				m := victim.mirrors[rng.Intn(len(victim.mirrors))]
				m.Sync(ctx, victim.peer) // errors are the point of the chaos
				m.Sync(ctx, victim.peer)
			}
		}

		// A partial anti-entropy pass: some peers catch up, through the
		// flaky handlers, tolerating every error.
		for _, name := range names {
			if slot := f.slots[name]; !slot.down() && rng.Intn(2) == 0 {
				slot.peer.AntiEntropy(ctx)
			}
		}
	}
	if applied == 0 {
		t.Fatal("chaos schedule never grew anything")
	}

	// Recovery: restart whatever is still down, then bounded anti-entropy
	// rounds (still through the flaky handlers) until every owner of
	// every document matches the single-peer reference digest.
	for _, name := range fleetNames(10) {
		if slot := f.slots[name]; slot.down() {
			f.boot(slot)
		}
	}
	refDigest := make(map[string]string, len(docs))
	for _, doc := range docs {
		refDigest[doc] = docDigest(reference[doc])
	}
	converged := false
	const repairRounds = 80
	for round := 0; round < repairRounds && !converged; round++ {
		converged = true
		for _, doc := range docs {
			for _, owner := range f.ring.Owners(doc, f.rf) {
				if docHash(f.slots[owner].peer, doc) != refDigest[doc] {
					converged = false
				}
			}
		}
		if converged {
			break
		}
		// Shuffle the repair order each round: the injected faults fail
		// every k-th request deterministically, and a fixed order could
		// phase-lock one mirror's requests onto the failing slots forever.
		order := fleetNames(10)
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, name := range order {
			f.slots[name].peer.AntiEntropy(ctx)
		}
	}
	if !converged {
		for _, doc := range docs {
			for _, owner := range f.ring.Owners(doc, f.rf) {
				slot := f.slots[owner]
				var local *tree.Node
				slot.peer.System(func(s *core.System) { local = s.Document(doc).Root.Copy() })
				t.Logf("%s@%s: %s (want %s) local⊇ref=%v ref⊇local=%v mirrors=%d",
					doc, owner, docDigest(local), refDigest[doc],
					subsume.Subsumed(reference[doc], local),
					subsume.Subsumed(local, reference[doc]), len(slot.mirrors))
				if docDigest(local) != refDigest[doc] {
					t.Logf("  local: %s", local.CanonicalString())
					t.Logf("  ref:   %s", reference[doc].CanonicalString())
					for _, m := range slot.mirrors {
						if m.RemoteDoc == doc {
							t.Logf("  mirror anchor=%q remote=%s", m.lastRemote, m.Remote)
						}
					}
				}
			}
		}
		t.Fatalf("fleet did not reach the single-peer fixpoint digest after %d repair rounds", repairRounds)
	}

	// The chaos actually exercised the delta path, its fallbacks and the
	// fault injection — a silent all-full-pull run would also converge,
	// but would not be testing this PR.
	if f.reg.Counter("peer.mirror.deltas").Value() == 0 {
		t.Fatal("no delta sync ever succeeded")
	}
	if f.reg.Counter("peer.mirror.delta_fallbacks").Value() == 0 {
		t.Fatal("no diverged patch ever forced a full-pull fallback")
	}
	if f.reg.Counter("peer.antientropy.errors").Value() == 0 {
		t.Fatal("fault injection never bit an anti-entropy pass")
	}

	// Convergence telemetry saw the chaos: replication advanced local
	// digests, and at least one divergence→convergence interval closed
	// into the lag histogram (the anti-entropy probes open the lag clock
	// when they observe a moved origin digest, the catching-up sync
	// closes it).
	if f.reg.Counter("peer.converge.advances").Value() == 0 {
		t.Fatal("no replication advance was ever recorded")
	}
	if f.reg.Histogram("peer.converge.lag_ns").Snapshot().Count == 0 {
		t.Fatal("no replication lag interval was ever measured")
	}

	// The operator surface renders: every peer's status report lands in
	// one fleet table with the converged documents on it.
	var reports []StatusReport
	for _, name := range fleetNames(10) {
		reports = append(reports, f.slots[name].peer.Status())
	}
	table := FormatFleetStatus(reports, nil)
	if !strings.Contains(table, "PEER") || !strings.Contains(table, docs[0]) {
		t.Fatalf("fleet status table did not render:\n%s", table)
	}

	// Every converged doc serves through any fleet member (forwarding),
	// modulo flaky 502s — retry a few times.
	for _, doc := range docs {
		asker := f.slots[fleetNames(10)[0]]
		var resp *http.Response
		var err error
		for attempt := 0; attempt < 3; attempt++ {
			resp, err = http.Get(asker.url + PathDoc + doc)
			if err == nil && resp.StatusCode == http.StatusOK {
				break
			}
			if err == nil {
				resp.Body.Close()
			}
		}
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("doc %s unreachable through the fleet: %d", doc, resp.StatusCode)
		}
	}
}

// growDocBatch appends many subtrees in one locked pass (one reduce, one
// journal flush) — test setup for large documents.
func growDocBatch(p *Peer, doc string, srcs []string) {
	p.System(func(s *core.System) {
		root := s.Document(doc).Root
		for _, src := range srcs {
			root.Children = append(root.Children, syntax.MustParseDocument(src))
		}
		tree.InvalidateDigestAll(root)
		subsume.ReduceInPlace(root)
		s.Touch(doc)
	})
}

// TestDeltaWireBytesSublinear pins the protocol's point: once a replica
// is anchored, the bytes for one more increment do not grow with the
// document. A full pull is linear in the doc; the measured delta must
// stay a small fraction of it at two doc sizes an order of magnitude
// apart.
func TestDeltaWireBytesSublinear(t *testing.T) {
	reg := obs.NewRegistry()
	remote, _, err := Open("store", core.MustParseSystem(`doc log = log`),
		WithObservability(reg))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(remote.Handler())
	defer srv.Close()

	local := New("replica", core.NewSystem())
	local.System(func(s *core.System) {
		if err := s.AddDocument(NewReplicaDoc("log", "log")); err != nil {
			t.Fatal(err)
		}
	})
	m := &Mirror{Remote: srv.URL, RemoteDoc: "log", LocalDoc: "log"}
	ctx := context.Background()

	deltaOut := reg.Counter("peer.http.bytes_out.delta")
	docOut := reg.Counter("peer.http.bytes_out.doc")

	grown := 0
	entry := func(i int) string {
		return fmt.Sprintf(`entry{id{"%06d"},body{"payload-%06d"}}`, i, i)
	}
	measure := func(size int) (deltaBytes, fullBytes int64) {
		var batch []string
		for ; grown < size; grown++ {
			batch = append(batch, entry(grown))
		}
		growDocBatch(remote, "log", batch)
		if _, err := m.Sync(ctx, local); err != nil { // catch up (full or big patch)
			t.Fatal(err)
		}
		// The measured step: one small growth against an anchored replica.
		growDoc(remote, "log", entry(grown))
		grown++
		before := deltaOut.Value()
		if _, err := m.Sync(ctx, local); err != nil {
			t.Fatal(err)
		}
		deltaBytes = deltaOut.Value() - before
		before = docOut.Value()
		if _, err := FetchDoc(ctx, nil, srv.URL, "log"); err != nil {
			t.Fatal(err)
		}
		fullBytes = docOut.Value() - before
		if docHash(local, "log") != docHash(remote, "log") {
			t.Fatal("replica diverged from remote")
		}
		return deltaBytes, fullBytes
	}

	dSmall, fSmall := measure(50)
	dBig, fBig := measure(500)
	t.Logf("50 entries: delta %dB vs full %dB; 500 entries: delta %dB vs full %dB",
		dSmall, fSmall, dBig, fBig)
	if dSmall == 0 || dBig == 0 {
		t.Fatal("measured sync did not go through the delta endpoint")
	}
	if dSmall*5 > fSmall {
		t.Fatalf("delta %dB not sublinear vs %dB full at 50 entries", dSmall, fSmall)
	}
	if dBig*20 > fBig {
		t.Fatalf("delta %dB not sublinear vs %dB full at 500 entries", dBig, fBig)
	}
	// The increment cost must not scale with the document: 10× the doc,
	// same-ballpark delta.
	if dBig > 3*dSmall {
		t.Fatalf("delta grew with doc size: %dB at 50 entries, %dB at 500", dSmall, dBig)
	}
	if fBig < 5*fSmall {
		t.Fatalf("suspicious: full pull did not grow with the doc (%dB vs %dB)", fSmall, fBig)
	}
}
