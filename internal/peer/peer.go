package peer

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"axml/internal/core"
	"axml/internal/obs"
	"axml/internal/subsume"
	"axml/internal/tree"
)

// HTTP endpoints exposed by a Peer.
const (
	PathInvoke = "/axml/invoke"
	PathDoc    = "/axml/doc/"
	PathSweep  = "/axml/sweep"
	PathHash   = "/axml/hash"
	PathDelta  = "/axml/delta/"
	PathStatus = "/axml/status"
)

// DefaultClient is the HTTP client used whenever a Client field is nil.
// It is shared package-wide so repeated calls to the same peer reuse
// pooled keep-alive TCP connections instead of re-dialing per invocation.
var DefaultClient = &http.Client{Timeout: 10 * time.Second}

// MaxWireBytes caps every wire-format body read — remote invocation
// responses, fetched documents, and the server side of incoming requests.
// A peer that answers with more than this is reported as
// ErrResponseTooLarge instead of being buffered without bound (or
// silently truncated into a parse error). Adjustable at startup; not
// synchronized for concurrent modification.
var MaxWireBytes int64 = 8 << 20

// ErrResponseTooLarge is wrapped by reads that exceed their byte cap.
var ErrResponseTooLarge = errors.New("peer: response too large")

// readAllLimited reads r to EOF, failing with ErrResponseTooLarge once
// more than limit bytes appear (limit <= 0 means MaxWireBytes).
func readAllLimited(r io.Reader, limit int64) ([]byte, error) {
	if limit <= 0 {
		limit = MaxWireBytes
	}
	data, err := io.ReadAll(io.LimitReader(r, limit+1))
	if err != nil {
		return nil, err
	}
	if int64(len(data)) > limit {
		return nil, fmt.Errorf("%w (cap %d bytes)", ErrResponseTooLarge, limit)
	}
	return data, nil
}

// Peer hosts an AXML system and serves its services over HTTP. All
// exported methods are safe for concurrent use; the system is guarded by
// one mutex (requests serialize, which matches the formal model's
// one-invocation-at-a-time rewriting). During a sweep the mutex is
// released while a RemoteService waits on the network (see AttachGates),
// so a document that — directly or through a cycle of peers — calls one
// of this peer's own services makes progress instead of deadlocking.
type Peer struct {
	// Name identifies the peer in logs and stats.
	Name string

	// ErrorPolicy selects how Sweep reacts to service errors; the zero
	// value is core.FailFast (abort the sweep on the first error).
	ErrorPolicy core.ErrorPolicy

	// sweepMu serializes sweeps: mu alone cannot, because sweeps release
	// it around remote invocations.
	sweepMu sync.Mutex

	mu     sync.Mutex
	system *core.System
	stats  Stats

	// store is the durability layer (nil for an in-memory peer); dirty
	// accumulates the names of documents mutated since the last journal
	// flush. Both are guarded by mu: every mutating path holds it, so the
	// core mutation hook appending to dirty always runs under it.
	store *store
	dirty map[string]bool

	// mirrorMu guards mirrors, the replicas registered for anti-entropy.
	mirrorMu sync.Mutex
	mirrors  []*Mirror

	// client is the peer's outbound HTTP client (WithClient); nil means
	// the shared DefaultClient. maxWire caps bodies this peer reads
	// (WithLimits); 0 means the package-wide MaxWireBytes.
	client  *http.Client
	maxWire int64

	// metrics and tracer are the observability sinks (WithObservability,
	// WithTracer); either may be nil. logger is never nil — Open defaults
	// it to a discarding logger so call sites need no guard.
	metrics *obs.Registry
	tracer  *obs.Tracer
	logger  *slog.Logger

	// anchors caches recent document states by digest so PathDelta can
	// answer with a patch instead of the full tree. Guarded by mu.
	anchors *deltaAnchors

	// converge tracks per-document replication watermarks (origin digest
	// seen vs local digest reached) for the /axml/status surface and the
	// peer.converge.* metrics. It has its own lock — never nested inside
	// mu — so registry gauge functions can read it from any goroutine.
	converge *convergence

	// started anchors the uptime reported by /axml/status.
	started time.Time
}

// Stats counts a peer's activity.
type Stats struct {
	// Served counts incoming service invocations.
	Served int
	// Sweeps counts local sweeps triggered via PathSweep or Sweep.
	Sweeps int
	// Steps counts strictly-growing local invocations.
	Steps int
	// Failures counts failed invocations observed by local sweeps.
	Failures int
}

// New wraps a system as an in-memory peer and gates its remote services
// on the peer's lock (see AttachGates). After New, access the system only
// through the peer's methods. Equivalent to Open with no options; kept
// for the common case and for compatibility.
func New(name string, s *core.System) *Peer {
	p, _, _ := Open(name, s) // cannot fail without durability
	return p
}

// Open is the canonical constructor: it wraps a system as a peer, applies
// the options, gates remote services on the peer's lock (AttachGates)
// and — when WithDurability names a data directory — recovers any state a
// previous incarnation persisted there before attaching the journal. The
// system should be freshly built from its definition; after Open, access
// it only through the peer's methods. Durable peers should run
// AntiEntropy once live peers are reachable, to pull mirrored documents
// that moved while this peer was down.
func Open(name string, s *core.System, opts ...Option) (*Peer, RecoveryInfo, error) {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	var info RecoveryInfo
	var st *store
	if cfg.durability.Dir != "" {
		var err error
		st, info, err = openStore(name, s, cfg.durability, cfg.metrics, cfg.tracer)
		if err != nil {
			return nil, info, err
		}
	}
	p := &Peer{
		Name:        name,
		system:      s,
		ErrorPolicy: cfg.errorPolicy,
		client:      cfg.client,
		maxWire:     cfg.maxWire,
		metrics:     cfg.metrics,
		tracer:      cfg.tracer,
		logger:      obs.LoggerOr(cfg.logger),
		converge:    newConvergence(),
		started:     time.Now(),
	}
	if cfg.metrics != nil {
		// Live watermark gauges, evaluated at snapshot time.
		cfg.metrics.GaugeFunc("peer.converge.docs", p.converge.docsTracked)
		cfg.metrics.GaugeFunc("peer.converge.behind", p.converge.docsBehind)
		if cfg.tracer != nil {
			// A silently failing or sampling tracer is itself an
			// observability incident; surface both in the registry.
			tr := cfg.tracer
			cfg.metrics.GaugeFunc("obs.trace.dropped", tr.Dropped)
			cfg.metrics.GaugeFunc("obs.trace.err", func() int64 {
				if tr.Err() != nil {
					return 1
				}
				return 0
			})
		}
	}
	switch {
	case cfg.deltaAnchors < 0: // delta serving disabled
	case cfg.deltaAnchors == 0:
		p.anchors = newDeltaAnchors(defaultDeltaAnchors)
	default:
		p.anchors = newDeltaAnchors(cfg.deltaAnchors)
	}
	if info.Recovered {
		p.logger.Info("peer recovered",
			"peer", name, "snapshot_seq", info.SnapshotSeq,
			"replayed", info.Replayed, "torn", info.Torn)
	}
	p.AttachGates()
	if st != nil {
		p.store = st
		p.dirty = make(map[string]bool)
		// The hook fires inside every mutating operation, which all hold
		// p.mu, so dirty needs no lock of its own. It is installed after
		// recovery on purpose: recovery's own Restore merges must not
		// journal themselves back.
		s.SetMutationHook(func(docName string) { p.dirty[docName] = true })
	}
	return p, info, nil
}

// wireLimit is the byte cap for bodies this peer reads.
func (p *Peer) wireLimit() int64 {
	if p.maxWire > 0 {
		return p.maxWire
	}
	return MaxWireBytes
}

// AttachGates installs the peer's state lock as the network gate of every
// RemoteService registered in the system (reaching through middleware
// stacks via core.Wrapper), so sweeps release the peer while waiting on
// remote answers — required for self-calls and peer cycles to make
// progress. New calls it; call it again after registering more remote
// services post-construction.
//
// A stack containing a core.Timeout is left ungated: Timeout abandons an
// expired invocation, whose deferred gate re-acquisition would then hold
// the peer lock forever. Bound a gated remote service's attempts with the
// HTTP client's Timeout instead (all clients share the default transport,
// so connection pooling is unaffected).
func (p *Peer) AttachGates() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, name := range p.system.FuncNames() {
		svc := p.system.Service(name)
		gateable := true
		for svc != nil {
			if _, ok := svc.(*core.Timeout); ok {
				gateable = false
			}
			if rs, ok := svc.(*RemoteService); ok {
				if gateable && rs.Gate == nil {
					rs.Gate = &p.mu
				}
				break
			}
			w, ok := svc.(core.Wrapper)
			if !ok {
				break
			}
			svc = w.Unwrap()
		}
	}
}

// System gives locked access to the underlying system. Mutations made
// inside fn are journaled before the lock is released (when the peer is
// durable).
func (p *Peer) System(fn func(s *core.System)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	fn(p.system)
	p.flushJournalLocked()
}

// Stats returns a snapshot of the counters.
func (p *Peer) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Handler returns the HTTP handler exposing the peer. When a registry is
// attached (WithObservability) every endpoint reports request, error,
// latency and byte metrics under peer.http.*.<endpoint>.
func (p *Peer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(PathInvoke, p.instrument("invoke", p.handleInvoke))
	mux.HandleFunc(PathDoc, p.instrument("doc", p.handleDoc))
	mux.HandleFunc(PathSweep, p.instrument("sweep", p.handleSweep))
	mux.HandleFunc(PathHash, p.instrument("hash", p.handleHash))
	mux.HandleFunc(PathDelta, p.instrument("delta", p.handleDelta))
	mux.HandleFunc(PathStatus, p.instrument("status", p.handleStatus))
	return mux
}

func (p *Peer) handleInvoke(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		methodNotAllowed(w, http.MethodPost)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, p.wireLimit()))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			http.Error(w, fmt.Sprintf("request body over %d bytes", tooLarge.Limit),
				http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// A body that does not parse as an envelope is the caller's bug (or a
	// journal-replay bug surfacing as a malformed record) — answer 400
	// with the parse error so it is distinguishable from server faults.
	env, err := UnmarshalEnvelope(body)
	if err != nil {
		http.Error(w, fmt.Sprintf("bad envelope: %v", err), http.StatusBadRequest)
		return
	}
	forest, err := p.Serve(r.Context(), env)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	data, err := MarshalForest(forest)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/xml")
	w.Write(data)
}

// Serve evaluates a local service for an incoming envelope: the service
// runs against this peer's documents, with the caller's input and context
// (the AXML Web service semantics — results may themselves contain calls,
// i.e. intensional answers). The context is the caller's — over HTTP it
// is the request context, so a disconnected client cancels the
// evaluation it asked for.
func (p *Peer) Serve(ctx context.Context, env Envelope) (tree.Forest, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	svc := p.system.Service(env.Service)
	if svc == nil {
		return nil, fmt.Errorf("peer %s: unknown service %q", p.Name, env.Service)
	}
	input := env.Input
	if input == nil {
		input = tree.NewLabel(tree.Input)
	}
	p.stats.Served++
	p.metrics.Counter("peer.served").Inc()
	return svc.Invoke(ctx, core.Binding{
		Input:   input,
		Context: env.Context,
		Docs:    p.system.Docs(),
	})
}

func (p *Peer) handleDoc(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w, http.MethodGet)
		return
	}
	name := r.URL.Path[len(PathDoc):]
	p.mu.Lock()
	doc := p.system.Document(name)
	var data []byte
	var err error
	if doc != nil {
		data, err = MarshalTree(doc.Root)
		if err == nil {
			// The receiver now holds this exact state: cache it as a delta
			// anchor so its next PathDelta request gets a patch.
			p.anchors.remember(name, docDigest(doc.Root), doc.Root)
		}
	}
	p.mu.Unlock()
	if doc == nil {
		http.NotFound(w, r)
		return
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/xml")
	w.Write(data)
}

// Sweep performs one fair local sweep (each current call attempted once)
// and reports whether anything changed. Remote calls embedded in local
// documents go over HTTP during the sweep; while one is in flight the
// peer's lock is released (via the gates AttachGates installed), so
// incoming invocations — including the peer's own services called back
// through the wire — are served instead of deadlocking. Sweeps themselves
// stay serialized. Under core.Degrade a failing call is quarantined and
// the sweep continues; the error is still reported.
func (p *Peer) Sweep() (bool, error) {
	return p.SweepContext(context.Background())
}

// SweepContext is Sweep with a caller context: cancellation aborts the
// in-flight evaluations, and a span context riding ctx (a coordinator's
// root, an incoming request's server span) parents the sweep's trace so
// cross-peer cascades stitch into one trace.
func (p *Peer) SweepContext(ctx context.Context) (bool, error) {
	p.sweepMu.Lock()
	defer p.sweepMu.Unlock()
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats.Sweeps++
	// Parallelism stays 1: a gated RemoteService releases p.mu for its
	// network round trip, a contract built on exactly one invocation being
	// in flight at a time. Parallel firing within a peer sweep would have
	// concurrent invocations unlocking/relocking the same gate.
	res := p.system.RunContext(ctx, core.RunOptions{
		MaxSweeps: 1, ErrorPolicy: p.ErrorPolicy, Parallelism: 1,
		Metrics: p.metrics, Tracer: p.tracer,
	})
	p.stats.Steps += res.Steps
	p.stats.Failures += res.Failures
	p.logger.Debug("sweep", append([]any{"peer", p.Name,
		"steps", res.Steps, "attempts", res.Attempts, "failures", res.Failures},
		obs.SpanFromContext(ctx).LogArgs()...)...)
	p.flushJournalLocked()
	if res.Err != nil && (p.ErrorPolicy == core.FailFast || res.Steps == 0) {
		return res.Steps > 0, res.Err
	}
	return res.Steps > 0, nil
}

func (p *Peer) handleSweep(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		methodNotAllowed(w, http.MethodPost)
		return
	}
	changed, err := p.SweepContext(r.Context())
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	if changed {
		io.WriteString(w, "changed")
	} else {
		io.WriteString(w, "quiet")
	}
}

// Hash returns a digest of the peer's current documents (for distributed
// termination detection).
func (p *Peer) Hash() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	var h string
	for _, name := range p.system.DocNames() {
		h += name + "=" + docDigest(p.system.Document(name).Root) + ";"
	}
	return h
}

func (p *Peer) handleHash(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w, http.MethodGet)
		return
	}
	io.WriteString(w, p.Hash())
}

// handleDelta answers GET /axml/delta/<name>?from=<digest> with the
// document's growth since the state the caller last acknowledged. Three
// modes: "same" (the caller is current — no payload), "delta" (a patch
// against the anchor — requires the anchor state cached AND provably
// subsumed by the current state, the prune precondition) and "full"
// (anything else: no anchor given, cache miss, or a non-monotone edit
// broke the anchor invariant). The served state is cached as the
// caller's next anchor.
func (p *Peer) handleDelta(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodNotAllowed(w, http.MethodGet)
		return
	}
	name := r.URL.Path[len(PathDelta):]
	from := r.URL.Query().Get("from")
	p.mu.Lock()
	doc := p.system.Document(name)
	if doc == nil {
		p.mu.Unlock()
		http.NotFound(w, r)
		return
	}
	cur := doc.Root
	d := Delta{Doc: name, To: docDigest(cur)}
	switch {
	case from == d.To:
		d.Mode = DeltaSame
	case from != "":
		if anchor := p.anchors.lookup(name, from); anchor != nil && subsume.Subsumed(anchor, cur) {
			if patch := PruneSince(cur, anchor); patch != nil {
				d.Mode = DeltaPatch
				d.From = from
				d.Patch = patch
			}
		}
	}
	if d.Mode == "" {
		d.Mode = DeltaFull
		d.Full = cur
	}
	p.anchors.remember(name, d.To, cur)
	data, err := MarshalDelta(d)
	p.mu.Unlock()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	p.metrics.Counter("peer.delta.served." + d.Mode).Inc()
	w.Header().Set("Content-Type", "application/xml")
	w.Write(data)
}

// RemoteService is a core.Service whose implementation lives on another
// peer: Invoke marshals input and context into an envelope, POSTs it and
// decodes the returned forest. The remote peer evaluates against its own
// documents — only the reserved input/context travel, exactly as in the
// formal model where each function name denotes a service at some URL.
type RemoteService struct {
	// Name is the local function name.
	Name string
	// Service is the remote service name (often equal to Name).
	Service string
	// URL is the remote peer's base URL.
	URL string
	// Client is the HTTP client; nil means the shared DefaultClient
	// (10s timeout, pooled keep-alive connections).
	Client *http.Client
	// Gate, when set, is released for the duration of the network round
	// trip and re-acquired before returning. The envelope is marshaled
	// from the live trees before release and the attach-and-reduce in
	// the engine happens after re-acquisition, so the system is never
	// read or mutated while unlocked. Peers install their state lock
	// here (AttachGates); leave nil when invocations don't run under a
	// lock that incoming requests also need.
	Gate sync.Locker
	// MaxBytes caps the response body; 0 means the package-wide
	// MaxWireBytes. Responses over the cap fail with ErrResponseTooLarge.
	MaxBytes int64
}

// ServiceName implements core.Service.
func (r *RemoteService) ServiceName() string { return r.Name }

// Invoke implements core.Service over HTTP. The request carries the
// caller's context, so cancelling it (engine shutdown, a Timeout
// middleware's deadline, a dropped upstream client) tears down the
// connection to a hung peer instead of waiting out the client timeout.
func (r *RemoteService) Invoke(ctx context.Context, b core.Binding) (tree.Forest, error) {
	c := &Client{BaseURL: r.URL, HTTP: r.Client, MaxWire: r.MaxBytes}
	svc := r.Service
	if svc == "" {
		svc = r.Name
	}
	// Marshal while still holding any gate: the binding aliases live trees.
	data, err := MarshalEnvelope(Envelope{Service: svc, Input: b.Input, Context: b.Context})
	if err != nil {
		return nil, err
	}
	if r.Gate != nil {
		r.Gate.Unlock()
		defer r.Gate.Lock() // re-acquire before the engine resumes
	}
	return c.invoke(ctx, svc, data)
}
