package peer

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"axml/internal/core"
	"axml/internal/obs"
	"axml/internal/syntax"
	"axml/internal/tree"
)

// Satellite regression: every method-gated endpoint must answer a wrong
// method with 405 AND an Allow header naming the method it wants
// (RFC 9110 §15.5.6 makes Allow mandatory on 405).
func TestMethodNotAllowedSetsAllow(t *testing.T) {
	srv := httptest.NewServer(New("p", core.MustParseSystem(`doc d = a`)).Handler())
	defer srv.Close()
	sub := NewSubscriber(New("c", core.MustParseSystem(`doc d = a`)))
	subSrv := httptest.NewServer(sub.Handler())
	defer subSrv.Close()

	cases := []struct {
		name, method, url, allow string
	}{
		{"invoke", http.MethodGet, srv.URL + PathInvoke, http.MethodPost},
		{"doc", http.MethodPost, srv.URL + PathDoc + "d", http.MethodGet},
		{"sweep", http.MethodGet, srv.URL + PathSweep, http.MethodPost},
		{"hash", http.MethodPost, srv.URL + PathHash, http.MethodGet},
		{"push", http.MethodGet, subSrv.URL + PathPush + "x", http.MethodPost},
	}
	for _, tc := range cases {
		req, err := http.NewRequest(tc.method, tc.url, strings.NewReader(""))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s: %s -> %d, want 405", tc.name, tc.method, resp.StatusCode)
		}
		if got := resp.Header.Get("Allow"); got != tc.allow {
			t.Errorf("%s: Allow = %q, want %q", tc.name, got, tc.allow)
		}
	}
}

// The instrumented handler chain must account every request — successes
// and errors — per endpoint, with latency and byte counts.
func TestPeerHTTPMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	sys := core.MustParseSystem(`
doc ratings = db{entry{title{"Naima"},stars{"5"}}}
func GetRating = rating{$s} :- input/input{title{$t}}, ratings/db{entry{title{$t},stars{$s}}}
`)
	p, _, err := Open("ratings", sys, WithObservability(reg))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	// One good doc fetch, one 404 doc fetch, one 405 sweep.
	for _, u := range []string{PathDoc + "ratings", PathDoc + "nope"} {
		resp, err := http.Get(srv.URL + u)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	resp, err := http.Get(srv.URL + PathSweep)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	if got := reg.Counter("peer.http.requests.doc").Value(); got != 2 {
		t.Fatalf("doc requests = %d, want 2", got)
	}
	if got := reg.Counter("peer.http.errors.doc").Value(); got != 1 {
		t.Fatalf("doc errors = %d, want 1 (the 404)", got)
	}
	if got := reg.Counter("peer.http.errors.sweep").Value(); got != 1 {
		t.Fatalf("sweep errors = %d, want 1 (the 405)", got)
	}
	if got := reg.Histogram("peer.http.latency_ns.doc").Snapshot().Count; got != 2 {
		t.Fatalf("doc latency observations = %d, want 2", got)
	}
	if got := reg.Counter("peer.http.bytes_out.doc").Value(); got <= 0 {
		t.Fatalf("doc bytes_out = %d, want > 0", got)
	}
}

// A remote invocation through an observed peer shows up end to end:
// HTTP accounting on the serving side, engine counters from its sweep.
func TestPeerInvokeMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	sys := core.MustParseSystem(`
doc ratings = db{entry{title{"Naima"},stars{"5"}}}
func GetRating = rating{$s} :- input/input{title{$t}}, ratings/db{entry{title{$t},stars{$s}}}
`)
	p, _, err := Open("ratings", sys, WithObservability(reg))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(p.Handler())
	defer srv.Close()

	client := core.NewSystem()
	if err := client.AddService(&RemoteService{Name: "GetRating", URL: srv.URL}); err != nil {
		t.Fatal(err)
	}
	portal := syntax.MustParseDocument(`q{!GetRating{title{"Naima"}}}`)
	if err := client.AddDocument(tree.NewDocument("portal", portal)); err != nil {
		t.Fatal(err)
	}
	if res := client.Run(core.RunOptions{}); !res.Terminated {
		t.Fatalf("pull run: %+v", res)
	}
	// The fixpoint re-fires the call after the first merge bumps the
	// document version, so expect at least one invoke, and exactly one
	// latency observation per request.
	requests := reg.Counter("peer.http.requests.invoke").Value()
	if requests < 1 {
		t.Fatalf("invoke requests = %d, want >= 1", requests)
	}
	if got := reg.Histogram("peer.http.latency_ns.invoke").Snapshot().Count; got != requests {
		t.Fatalf("invoke latency observations = %d, want %d", got, requests)
	}
	if got := reg.Counter("peer.http.bytes_in.invoke").Value(); got <= 0 {
		t.Fatalf("invoke bytes_in = %d, want > 0", got)
	}
	if got := reg.Counter("peer.http.errors.invoke").Value(); got != 0 {
		t.Fatalf("invoke errors = %d, want 0", got)
	}
}
