package peer

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"time"

	"axml/internal/core"
	"axml/internal/obs"
	"axml/internal/subsume"
	"axml/internal/tree"
)

// Mirror maintains a local replica of a remote peer's document — the
// replication flavor of AXML distribution (the paper's follow-up work on
// dynamic XML documents with distribution and replication, cited in
// Section 1, made concrete on this substrate). Each Sync asks the remote
// for the growth since the last acknowledged digest (PathDelta) and
// merges it into the local copy with the least upper bound ∪ of Section
// 2.1, so syncs are monotone and idempotent: replaying, duplicating or
// interleaving them can only add information, never lose it. When the
// remote cannot serve a delta (anchor evicted, first sync) or the local
// replica diverged from the anchor (a patch base misses), Sync falls
// back to merging the full tree — the delta path is an optimization over
// the same merge, never a different semantics.
type Mirror struct {
	// Remote is the remote peer's base URL.
	Remote string
	// RemoteDoc is the document name on the remote peer.
	RemoteDoc string
	// LocalDoc is the local document name the replica lives under.
	LocalDoc string
	// Client is the HTTP client; nil means a 10s-timeout default.
	Client *http.Client

	// Syncs counts the completed synchronizations.
	Syncs int
	// LastChanged records whether the last sync brought new data.
	LastChanged bool

	// lastRemote is the digest of the remote tree as of the last sync —
	// the delta anchor sent with the next PathDelta request, and what the
	// anti-entropy pass compares against the remote's advertised hash to
	// skip documents that have not moved. Empty until the first sync (and
	// after a restart: the field is not persisted, so a recovered peer's
	// first sync is a full pull).
	lastRemote string
}

// client is the typed view of the mirror's remote endpoint.
func (m *Mirror) client() *Client {
	return &Client{BaseURL: m.Remote, HTTP: m.Client}
}

// Sync synchronizes the replica once and reports whether it grew. It
// requests a delta since the last acknowledged remote digest; the answer
// is either nothing (already current), a digest-anchored patch applied
// in place, or the full tree merged by Union. Syncs record into the
// peer's registry (peer.mirror.syncs/changed/errors/deltas/fallbacks,
// sync_ns) and emit a "sync" span when the peer carries a tracer.
func (m *Mirror) Sync(ctx context.Context, p *Peer) (changed bool, err error) {
	// The sync span parents the delta exchange: its context rides ctx so
	// the remote's "http" span joins the same trace.
	parent := obs.SpanFromContext(ctx)
	var syncSC obs.SpanContext
	if parent.Valid() || p.tracer.Enabled() {
		syncSC = parent.NewChild()
		ctx = obs.ContextWithSpan(ctx, syncSC)
	}
	start := time.Now()
	startTS := p.tracer.Now()
	d, err := m.client().Delta(ctx, m.RemoteDoc, m.lastRemote)
	if err != nil {
		p.metrics.Counter("peer.mirror.errors").Inc()
		return false, err
	}

	switch d.Mode {
	case DeltaSame:
		// Already current: nothing to merge.
	case DeltaPatch:
		applied := true
		p.System(func(s *core.System) {
			local := s.Document(m.LocalDoc)
			if local == nil {
				err = fmt.Errorf("peer: mirror target document %q missing", m.LocalDoc)
				return
			}
			ch, aerr := ApplyPatch(local.Root, d.Patch)
			if errors.Is(aerr, errPatchMismatch) {
				// The replica diverged from the anchor the patch targets
				// (local-only growth, a missed delivery, a restart): repair
				// with a full pull below.
				applied = false
				return
			}
			if aerr != nil {
				err = aerr
				return
			}
			changed = ch
			if ch {
				// Out-of-band growth: bump the version so the sterile-call
				// gate re-examines services reading the replica.
				s.Touch(m.LocalDoc)
			}
		})
		if err == nil && !applied {
			p.metrics.Counter("peer.mirror.delta_fallbacks").Inc()
			d, err = m.client().Delta(ctx, m.RemoteDoc, "")
			if err == nil {
				if d.Full == nil {
					err = fmt.Errorf("peer: mirror %s: anchorless delta answered mode %q",
						m.LocalDoc, d.Mode)
				} else {
					changed, err = m.mergeFull(p, d.Full)
				}
			}
		} else if err == nil {
			p.metrics.Counter("peer.mirror.deltas").Inc()
		}
	case DeltaFull:
		changed, err = m.mergeFull(p, d.Full)
	default:
		err = fmt.Errorf("peer: mirror %s: unknown delta mode %q", m.LocalDoc, d.Mode)
	}
	if err != nil {
		p.metrics.Counter("peer.mirror.errors").Inc()
		return false, err
	}

	m.Syncs++
	m.LastChanged = changed
	m.lastRemote = d.To
	p.metrics.Counter("peer.mirror.syncs").Inc()
	p.metrics.Histogram("peer.mirror.sync_ns").ObserveSince(start)
	if changed {
		p.metrics.Counter("peer.mirror.changed").Inc()
	}
	// Convergence watermark: the negotiated Delta.To is the origin digest
	// this sync observed; compare it with the local digest it left behind.
	var localDigest string
	p.System(func(s *core.System) {
		if doc := s.Document(m.LocalDoc); doc != nil {
			localDigest = docDigest(doc.Root)
		}
	})
	p.converge.observe(p.metrics, m.LocalDoc, d.To, localDigest, changed)
	if tr := p.tracer; tr.Enabled() {
		var grew int64
		if changed {
			grew = 1
		}
		tr.Emit(obs.Span{Kind: "sync", Name: m.LocalDoc, TSUs: startTS,
			DurUs: time.Since(start).Microseconds(),
			Attrs: map[string]int64{"changed": grew}}.WithContext(syncSC, parent))
	}
	return changed, nil
}

// mergeFull merges a fully-shipped remote tree into the local replica by
// least upper bound — the pre-delta sync semantics, and the fallback
// every delta failure reduces to.
func (m *Mirror) mergeFull(p *Peer, remote *tree.Node) (changed bool, err error) {
	p.System(func(s *core.System) {
		local := s.Document(m.LocalDoc)
		if local == nil {
			err = fmt.Errorf("peer: mirror target document %q missing", m.LocalDoc)
			return
		}
		before := local.Root.CanonicalHash()
		if local.Root.Kind != remote.Kind || local.Root.Name != remote.Name {
			if local.Root.Kind != tree.Label || remote.Kind != tree.Label ||
				len(local.Root.Children) != 0 {
				err = fmt.Errorf("peer: mirror roots incomparable: local %s vs remote %s",
					local.Root.Name, remote.Name)
				return
			}
			// A childless label root is a replica seed built before the
			// remote root marking was known (NewReplicaDoc with a guessed
			// label); adopt the remote marking on first contact instead
			// of refusing to sync forever.
			local.Root = tree.NewLabel(remote.Name)
		}
		merged := subsume.Union(local.Root, remote)
		if merged == nil {
			err = fmt.Errorf("peer: union failed")
			return
		}
		local.Root.Children = merged.Children
		changed = local.Root.CanonicalHash() != before
		if changed {
			s.Touch(m.LocalDoc)
		}
	})
	return changed, err
}

// SyncUntilStable repeatedly syncs (with the remote possibly evolving
// between rounds via its own services) until a sync brings nothing new or
// the round budget is exhausted. It returns the number of rounds and
// whether stability was reached.
func (m *Mirror) SyncUntilStable(ctx context.Context, p *Peer, maxRounds int) (rounds int, stable bool, err error) {
	if maxRounds <= 0 {
		maxRounds = 100
	}
	for rounds < maxRounds {
		rounds++
		changed, err := m.Sync(ctx, p)
		if err != nil {
			return rounds, false, err
		}
		if !changed {
			return rounds, true, nil
		}
	}
	return rounds, false, nil
}

// NewReplicaDoc builds an empty local replica root matching a remote
// document's root marking, ready to be added to a system and mirrored.
func NewReplicaDoc(name string, rootLabel string) *tree.Document {
	return tree.NewDocument(name, tree.NewLabel(rootLabel))
}
