package peer

import (
	"fmt"
	"net/http"
	"time"

	"axml/internal/core"
	"axml/internal/obs"
	"axml/internal/subsume"
	"axml/internal/tree"
)

// Mirror maintains a local replica of a remote peer's document — the
// replication flavor of AXML distribution (the paper's follow-up work on
// dynamic XML documents with distribution and replication, cited in
// Section 1, made concrete on this substrate). Each Sync pulls the remote
// document and merges it into the local copy with the least upper bound
// ∪ of Section 2.1, so syncs are monotone and idempotent: replaying or
// interleaving them can only add information, never lose it.
type Mirror struct {
	// Remote is the remote peer's base URL.
	Remote string
	// RemoteDoc is the document name on the remote peer.
	RemoteDoc string
	// LocalDoc is the local document name the replica lives under.
	LocalDoc string
	// Client is the HTTP client; nil means a 10s-timeout default.
	Client *http.Client

	// Syncs counts the completed synchronizations.
	Syncs int
	// LastChanged records whether the last sync brought new data.
	LastChanged bool

	// lastRemote is the digest of the remote tree as of the last pull —
	// the anti-entropy pass compares it against the remote's advertised
	// hash to skip pulls of documents that have not moved. Empty until
	// the first sync (and after a restart: the field is not persisted, so
	// a recovered peer's first anti-entropy pass always re-pulls).
	lastRemote string
}

// Sync pulls the remote document once and merges it into the local
// system, reporting whether the replica grew. Syncs record into the
// peer's registry (peer.mirror.syncs/changed/errors, sync_ns) and emit a
// "sync" span when the peer carries a tracer.
func (m *Mirror) Sync(p *Peer) (changed bool, err error) {
	start := time.Now()
	remote, err := FetchDoc(m.Client, m.Remote, m.RemoteDoc)
	if err != nil {
		p.metrics.Counter("peer.mirror.errors").Inc()
		return false, err
	}
	p.System(func(s *core.System) {
		local := s.Document(m.LocalDoc)
		if local == nil {
			err = fmt.Errorf("peer: mirror target document %q missing", m.LocalDoc)
			return
		}
		if local.Root.Kind != remote.Kind || local.Root.Name != remote.Name {
			err = fmt.Errorf("peer: mirror roots incomparable: local %s vs remote %s",
				local.Root.Name, remote.Name)
			return
		}
		before := local.Root.CanonicalHash()
		merged := subsume.Union(local.Root, remote)
		if merged == nil {
			err = fmt.Errorf("peer: union failed")
			return
		}
		local.Root.Children = merged.Children
		changed = local.Root.CanonicalHash() != before
		if changed {
			// Out-of-band growth: bump the version so the sterile-call
			// gate re-examines services reading the replica.
			s.Touch(m.LocalDoc)
		}
	})
	if err != nil {
		p.metrics.Counter("peer.mirror.errors").Inc()
		return false, err
	}
	m.Syncs++
	m.LastChanged = changed
	m.lastRemote = docDigest(remote)
	p.metrics.Counter("peer.mirror.syncs").Inc()
	p.metrics.Histogram("peer.mirror.sync_ns").ObserveSince(start)
	if changed {
		p.metrics.Counter("peer.mirror.changed").Inc()
	}
	if tr := p.tracer; tr.Enabled() {
		var grew int64
		if changed {
			grew = 1
		}
		tr.Emit(obs.Span{Kind: "sync", Name: m.LocalDoc, TSUs: tr.Now(),
			DurUs: time.Since(start).Microseconds(),
			Attrs: map[string]int64{"changed": grew}})
	}
	return changed, nil
}

// SyncUntilStable repeatedly syncs (with the remote possibly evolving
// between rounds via its own services) until a sync brings nothing new or
// the round budget is exhausted. It returns the number of rounds and
// whether stability was reached.
func (m *Mirror) SyncUntilStable(p *Peer, maxRounds int) (rounds int, stable bool, err error) {
	if maxRounds <= 0 {
		maxRounds = 100
	}
	for rounds < maxRounds {
		rounds++
		changed, err := m.Sync(p)
		if err != nil {
			return rounds, false, err
		}
		if !changed {
			return rounds, true, nil
		}
	}
	return rounds, false, nil
}

// NewReplicaDoc builds an empty local replica root matching a remote
// document's root marking, ready to be added to a system and mirrored.
func NewReplicaDoc(name string, rootLabel string) *tree.Document {
	return tree.NewDocument(name, tree.NewLabel(rootLabel))
}
