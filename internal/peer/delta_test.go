package peer

import (
	"context"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"testing"

	"axml/internal/core"
	"axml/internal/obs"
	"axml/internal/subsume"
	"axml/internal/syntax"
	"axml/internal/tree"
)

// reduced parses and reduces a document literal.
func reduced(t *testing.T, src string) *tree.Node {
	t.Helper()
	return subsume.ReduceInPlace(syntax.MustParseDocument(src))
}

// TestPruneApplyRoundTrip pins the delta protocol's core invariant:
// applying PruneSince(cur, anchor) to a copy of the anchor reproduces
// cur exactly (byte-identical canonical hash), for anchors that are
// genuinely subsumed by the current state.
func TestPruneApplyRoundTrip(t *testing.T) {
	cases := []struct{ anchor, growth string }{
		// Deep growth below an existing child.
		{`log{sec{x}}`, `log{sec{y}}`},
		// The incomparable-sibling trap: sec{x} and sec{y} must deep-merge
		// into sec{x,y}, not sit side by side.
		{`log{sec{x{"1"}}}`, `log{sec{y{"2"}}}`},
		// Brand-new sibling subtree.
		{`log{a{b}}`, `log{c{d{"v"}}}`},
		// Function nodes on the spine.
		{`log{part{!Get{q}}}`, `log{part{r{"ans"}}}`},
		// Growth at two positions at once.
		{`log{a{x},b{y}}`, `log{a{z},b{w{"2"}}}`},
		// Nothing shared beyond the root.
		{`log`, `log{a{b{c}},d}`},
		// Values and repeated labels.
		{`cat{item{"bop"}}`, `cat{item{"cool-jazz"},item{"bop",note{"re"}}}`},
	}
	for _, tc := range cases {
		anchor := reduced(t, tc.anchor)
		cur := subsume.Union(anchor, reduced(t, tc.growth))
		if cur == nil {
			t.Fatalf("bad case %q + %q: union failed", tc.anchor, tc.growth)
		}
		p := PruneSince(cur, anchor)
		if p == nil {
			if cur.CanonicalHash() != anchor.CanonicalHash() {
				t.Fatalf("%q + %q: nil patch for differing trees", tc.anchor, tc.growth)
			}
			continue
		}
		local := anchor.Copy()
		changed, err := ApplyPatch(local, p)
		if err != nil {
			t.Fatalf("%q + %q: apply: %v", tc.anchor, tc.growth, err)
		}
		if !changed {
			t.Fatalf("%q + %q: apply reported no change", tc.anchor, tc.growth)
		}
		if local.CanonicalHash() != cur.CanonicalHash() {
			t.Fatalf("%q + %q: apply diverged:\n got %s\nwant %s",
				tc.anchor, tc.growth, local.CanonicalString(), cur.CanonicalString())
		}
		// Idempotence: re-applying the same patch changes nothing (the
		// delivery may be duplicated on a flaky wire).
		changed, err = ApplyPatch(local, p)
		if err == nil && changed {
			t.Fatalf("%q + %q: re-apply changed state", tc.anchor, tc.growth)
		}
	}
}

// TestApplyPatchMismatch pins the refusal path: a patch whose spine
// targets a subtree the local replica no longer holds must fail without
// mutating anything, so the caller can fall back to a full pull.
func TestApplyPatchMismatch(t *testing.T) {
	// cur is the anchor grown in place below sec — the shape that yields
	// a spine patch (a union of separate sec{...} trees would instead
	// keep incomparable siblings side by side and ship an Add).
	anchor := reduced(t, `log{sec{x}}`)
	cur := reduced(t, `log{sec{x,y}}`)
	p := PruneSince(cur, anchor)
	if p == nil || len(p.Spines) != 1 {
		t.Fatalf("expected one spine patch, got %+v", p)
	}
	// The local replica diverged: its sec subtree grew past the anchor,
	// so the spine's base digest no longer matches.
	local := reduced(t, `log{sec{x,z}}`)
	before := local.CanonicalHash()
	if _, err := ApplyPatch(local, p); err == nil {
		t.Fatal("patch against diverged replica applied")
	}
	if local.CanonicalHash() != before {
		t.Fatal("failed apply mutated the replica")
	}
	// Root marking mismatch is an error too, not a silent no-op.
	if _, err := ApplyPatch(reduced(t, `other`), p); err == nil {
		t.Fatal("patch applied across root markings")
	}
}

func TestDeltaCodecRoundTrip(t *testing.T) {
	anchor := reduced(t, `log{sec{x{"1"}},other{q}}`)
	cur := subsume.Union(anchor, reduced(t, `log{sec{y{"2 < 3 & z"}},new{!Get{a}}}`))
	patch := PruneSince(cur, anchor)
	cases := []Delta{
		{Doc: "log", Mode: DeltaSame, To: digestHex(cur)},
		{Doc: "log", Mode: DeltaFull, To: digestHex(cur), Full: cur},
		{Doc: "log", Mode: DeltaPatch, From: digestHex(anchor), To: digestHex(cur), Patch: patch},
	}
	for _, d := range cases {
		data, err := MarshalDelta(d)
		if err != nil {
			t.Fatalf("marshal %s: %v", d.Mode, err)
		}
		back, err := UnmarshalDelta(data)
		if err != nil {
			t.Fatalf("unmarshal %s (%s): %v", d.Mode, data, err)
		}
		if back.Doc != d.Doc || back.Mode != d.Mode || back.From != d.From || back.To != d.To {
			t.Fatalf("header round trip: %+v vs %+v", back, d)
		}
		switch d.Mode {
		case DeltaFull:
			if !tree.Isomorphic(back.Full, d.Full) {
				t.Fatalf("full round trip: %s", data)
			}
		case DeltaPatch:
			// The patch round-trips if applying both to the anchor agrees.
			a1, a2 := anchor.Copy(), anchor.Copy()
			if _, err := ApplyPatch(a1, d.Patch); err != nil {
				t.Fatal(err)
			}
			if _, err := ApplyPatch(a2, back.Patch); err != nil {
				t.Fatalf("decoded patch: %v", err)
			}
			if a1.CanonicalHash() != a2.CanonicalHash() {
				t.Fatalf("patch round trip diverged: %s", data)
			}
		}
	}
}

func TestDeltaCodecErrors(t *testing.T) {
	bad := [][]byte{
		[]byte(``),
		[]byte(`<wrong/>`),
		[]byte(`<ax:delta mode="full" to="x"></ax:delta>`),           // no name
		[]byte(`<ax:delta name="d" mode="weird" to="x"></ax:delta>`), // bad mode
		[]byte(`<ax:delta name="d" mode="full" to="x"></ax:delta>`),  // full without tree
		[]byte(`<ax:delta name="d" mode="delta" to="x"></ax:delta>`), // patch missing
		// label patch without a name
		[]byte(`<ax:delta name="d" mode="delta" to="x"><ax:patch kind="label" base="b"></ax:patch></ax:delta>`),
	}
	for _, data := range bad {
		if _, err := UnmarshalDelta(data); err == nil {
			t.Errorf("accepted %s", data)
		}
	}
}

// growDoc appends a parsed subtree under the named document's root the
// way out-of-band growth happens everywhere else in the package: raw
// append, digest invalidation, reduce, version bump.
func growDoc(p *Peer, doc, src string) {
	add := syntax.MustParseDocument(src)
	p.System(func(s *core.System) {
		root := s.Document(doc).Root
		root.Children = append(root.Children, add)
		tree.InvalidateDigestAll(root)
		subsume.ReduceInPlace(root)
		s.Touch(doc)
	})
}

func docHash(p *Peer, doc string) string {
	var h string
	p.System(func(s *core.System) { h = docDigest(s.Document(doc).Root) })
	return h
}

// TestDeltaEndpointModes drives PathDelta through its three answers.
func TestDeltaEndpointModes(t *testing.T) {
	remote := New("store", core.MustParseSystem(`doc log = log{sec{x}}`))
	srv := httptest.NewServer(remote.Handler())
	defer srv.Close()
	ctx := context.Background()

	// No anchor: full.
	d, err := FetchDelta(ctx, nil, srv.URL, "log", "")
	if err != nil {
		t.Fatal(err)
	}
	if d.Mode != DeltaFull || d.Full == nil {
		t.Fatalf("anchorless fetch: %+v", d)
	}
	anchor := d.To

	// Same anchor, unchanged document: same.
	d, err = FetchDelta(ctx, nil, srv.URL, "log", anchor)
	if err != nil {
		t.Fatal(err)
	}
	if d.Mode != DeltaSame {
		t.Fatalf("current fetch answered %q", d.Mode)
	}

	// Document grew: delta, carrying only the growth.
	growDoc(remote, "log", `sec{y}`)
	d, err = FetchDelta(ctx, nil, srv.URL, "log", anchor)
	if err != nil {
		t.Fatal(err)
	}
	if d.Mode != DeltaPatch || d.Patch == nil {
		t.Fatalf("anchored fetch after growth: %+v", d)
	}
	if d.From != anchor {
		t.Fatalf("patch anchored at %q, asked %q", d.From, anchor)
	}

	// Unknown anchor: full fallback.
	d, err = FetchDelta(ctx, nil, srv.URL, "log", "feedfeedfeedfeed")
	if err != nil {
		t.Fatal(err)
	}
	if d.Mode != DeltaFull {
		t.Fatalf("unknown anchor answered %q", d.Mode)
	}

	// Unknown document: 404.
	if _, err := FetchDelta(ctx, nil, srv.URL, "nope", ""); err == nil {
		t.Fatal("missing document served")
	}
}

// TestDeltaAnchorEviction: a bounded anchor cache rotates old states
// out; a receiver with an evicted anchor degrades to a full answer,
// never an error.
func TestDeltaAnchorEviction(t *testing.T) {
	sys := core.MustParseSystem(`doc log = log{s0}`)
	remote, _, err := Open("store", sys, WithDeltaAnchors(1))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(remote.Handler())
	defer srv.Close()
	ctx := context.Background()

	d, err := FetchDelta(ctx, nil, srv.URL, "log", "")
	if err != nil {
		t.Fatal(err)
	}
	oldAnchor := d.To
	// Two growth steps, each observed at the server, rotate the single
	// cache slot past oldAnchor.
	growDoc(remote, "log", `s1`)
	if _, err := FetchDelta(ctx, nil, srv.URL, "log", ""); err != nil {
		t.Fatal(err)
	}
	growDoc(remote, "log", `s2`)
	d, err = FetchDelta(ctx, nil, srv.URL, "log", oldAnchor)
	if err != nil {
		t.Fatal(err)
	}
	if d.Mode != DeltaFull {
		t.Fatalf("evicted anchor answered %q", d.Mode)
	}
}

// TestMirrorDeltaFallback: a replica that diverged below a patched spine
// (here: local-only growth inside the same subtree the remote grew)
// must detect the base mismatch and repair via full pull — converging
// to Union(local, remote) either way.
func TestMirrorDeltaFallback(t *testing.T) {
	remote := New("store", core.MustParseSystem(`doc log = log{sec{x}}`))
	srv := httptest.NewServer(remote.Handler())
	defer srv.Close()

	reg := obs.NewRegistry()
	localSys := core.MustParseSystem(`doc replica = log`)
	local, _, err := Open("cache", localSys, WithObservability(reg))
	if err != nil {
		t.Fatal(err)
	}
	m := &Mirror{Remote: srv.URL, RemoteDoc: "log", LocalDoc: "replica"}
	ctx := context.Background()
	if _, err := m.Sync(ctx, local); err != nil {
		t.Fatal(err)
	}

	// Both sides grow in place inside their sec subtree: the remote's
	// next patch is a spine targeting the old sec{x} digest, which the
	// local replica (now holding sec{x,mine}) no longer has.
	growIn(local, "replica", "sec", `mine`)
	growIn(remote, "log", "sec", `theirs`)
	changed, err := m.Sync(ctx, local)
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("sync brought nothing")
	}
	if got := reg.Counter("peer.mirror.delta_fallbacks").Value(); got == 0 {
		t.Fatal("expected a delta fallback")
	}
	want := subsume.Union(reduced(t, `log{sec{x,mine}}`), reduced(t, `log{sec{x,theirs}}`))
	local.System(func(s *core.System) {
		if got := s.Document("replica").Root; !tree.Isomorphic(got, want) {
			t.Fatalf("replica %s, want %s", got.CanonicalString(), want.CanonicalString())
		}
	})
}

// growIn appends a parsed subtree in place under the named root child —
// the growth shape that produces spine patches (unlike growDoc's
// root-level append, which produces adds).
func growIn(p *Peer, doc, child, src string) {
	add := syntax.MustParseDocument(src)
	p.System(func(s *core.System) {
		root := s.Document(doc).Root
		for _, c := range root.Children {
			if c.Kind == tree.Label && c.Name == child {
				c.Children = append(c.Children, add)
				break
			}
		}
		tree.InvalidateDigestAll(root)
		subsume.ReduceInPlace(root)
		s.Touch(doc)
	})
}

// randomTree builds a small random subtree over a fixed alphabet.
func randomTree(rng *rand.Rand, depth int) *tree.Node {
	labels := []string{"a", "b", "c", "sec", "item"}
	if depth <= 0 || rng.Intn(4) == 0 {
		return tree.NewValue(fmt.Sprintf("v%d", rng.Intn(6)))
	}
	n := tree.NewLabel(labels[rng.Intn(len(labels))])
	for i := rng.Intn(3); i > 0; i-- {
		n.Children = append(n.Children, randomTree(rng, depth-1))
	}
	return n
}

// TestDeltaStreamMatchesFullPull is the differential property test: a
// replica maintained through the delta stream and one maintained by
// full re-pulls must reach byte-identical document digests, whatever
// the interleaving of remote growth, skipped syncs, anchor resets and
// shared local edits.
func TestDeltaStreamMatchesFullPull(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			remote, _, err := Open("store", core.MustParseSystem(`doc log = log`),
				WithDeltaAnchors(2)) // tight cache: force occasional full fallbacks
			if err != nil {
				t.Fatal(err)
			}
			srv := httptest.NewServer(remote.Handler())
			defer srv.Close()

			reg := obs.NewRegistry()
			viaDelta, _, err := Open("delta", core.MustParseSystem(`doc log = log`),
				WithObservability(reg))
			if err != nil {
				t.Fatal(err)
			}
			viaFull := New("full", core.MustParseSystem(`doc log = log`))
			m := &Mirror{Remote: srv.URL, RemoteDoc: "log", LocalDoc: "log"}
			ctx := context.Background()

			// fullPull re-pulls the whole document and merges by Union —
			// the pre-delta semantics the delta stream must match.
			fullPull := func() {
				n, err := FetchDoc(ctx, nil, srv.URL, "log")
				if err != nil {
					t.Fatal(err)
				}
				viaFull.System(func(s *core.System) {
					root := s.Document("log").Root
					merged := subsume.Union(root, n)
					root.Children = merged.Children
					s.Touch("log")
				})
			}

			for round := 0; round < 30; round++ {
				for i := rng.Intn(3); i >= 0; i-- {
					remote.System(func(s *core.System) {
						root := s.Document("log").Root
						// Half the growth lands at the root (patch adds), half
						// in place under an existing child (patch spines).
						target := root
						if len(root.Children) > 0 && rng.Intn(2) == 0 {
							if c := root.Children[rng.Intn(len(root.Children))]; c.Kind != tree.Value {
								target = c
							}
						}
						target.Children = append(target.Children, randomTree(rng, 3))
						tree.InvalidateDigestAll(root)
						subsume.ReduceInPlace(root)
						s.Touch("log")
					})
				}
				switch rng.Intn(4) {
				case 0: // skip this round: the mirror falls behind
				case 1: // anchor reset: simulates a restarted mirror
					m = &Mirror{Remote: srv.URL, RemoteDoc: "log", LocalDoc: "log"}
					fallthrough
				default:
					if _, err := m.Sync(ctx, viaDelta); err != nil {
						t.Fatal(err)
					}
				}
				if rng.Intn(3) == 0 {
					// A shared out-of-band edit on both replicas: local data
					// the delta path must preserve through patches and
					// fallbacks alike.
					edit := randomTree(rng, 2).CanonicalString()
					growDoc(viaDelta, "log", edit)
					growDoc(viaFull, "log", edit)
				}
			}
			if _, err := m.Sync(ctx, viaDelta); err != nil {
				t.Fatal(err)
			}
			fullPull()
			if got, want := docHash(viaDelta, "log"), docHash(viaFull, "log"); got != want {
				t.Fatalf("delta stream diverged from full pull: %s vs %s", got, want)
			}
			if reg.Counter("peer.mirror.deltas").Value() == 0 {
				t.Fatal("delta path never exercised")
			}
		})
	}
}

// TestRemoteDeltaEndpointToleratesDuplicates: re-requesting the same
// delta and re-applying its patch is harmless (at-least-once delivery).
func TestRemoteDeltaEndpointToleratesDuplicates(t *testing.T) {
	remote := New("store", core.MustParseSystem(`doc log = log{sec{x}}`))
	srv := httptest.NewServer(remote.Handler())
	defer srv.Close()
	ctx := context.Background()

	d0, err := FetchDelta(ctx, nil, srv.URL, "log", "")
	if err != nil {
		t.Fatal(err)
	}
	growDoc(remote, "log", `sec{y}`)
	d1, err := FetchDelta(ctx, nil, srv.URL, "log", d0.To)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := FetchDelta(ctx, nil, srv.URL, "log", d0.To) // duplicated request
	if err != nil {
		t.Fatal(err)
	}
	if d1.Mode != DeltaPatch || d2.Mode != DeltaPatch {
		t.Fatalf("modes %q/%q", d1.Mode, d2.Mode)
	}
	local := d0.Full.Copy()
	if _, err := ApplyPatch(local, d1.Patch); err != nil {
		t.Fatal(err)
	}
	if changed, err := ApplyPatch(local, d2.Patch); err != nil || changed {
		t.Fatalf("duplicate apply: changed=%v err=%v", changed, err)
	}
	if docDigest(local) != d1.To {
		t.Fatalf("digest %s after patches, want %s", docDigest(local), d1.To)
	}
}
