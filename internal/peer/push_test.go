package peer

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"axml/internal/core"
	"axml/internal/obs"
	"axml/internal/syntax"
	"axml/internal/tree"
)

// newListPublisher builds a publisher whose List service enumerates a
// growable database, so successive flushes can have fresh trees to push.
func newListPublisher(t *testing.T, reg *obs.Registry) (*Publisher, *Peer) {
	t.Helper()
	sys := core.MustParseSystem(`
doc db = db{e{t{"a"},s{"1"}}}
func List = got{$t,$s} :- db/db{e{t{$t},s{$s}}}
`)
	var opts []Option
	if reg != nil {
		opts = append(opts, WithObservability(reg))
	}
	p, _, err := Open("pub", sys, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return NewPublisher(p), p
}

// newPortalSubscriber builds a subscriber with an empty portal document
// and registers the given subscription id at its root.
func newPortalSubscriber(t *testing.T, id string) (*Subscriber, *Peer) {
	t.Helper()
	subSys := core.MustParseSystem(`doc portal = portal`)
	subPeer := New("sub", subSys)
	sb := NewSubscriber(subPeer)
	var root *tree.Node
	subPeer.System(func(s *core.System) { root = s.Document("portal").Root })
	sb.Register(id, "portal", root)
	return sb, subPeer
}

func portalTree(p *Peer) *tree.Node {
	var out *tree.Node
	p.System(func(s *core.System) { out = s.Document("portal").Root.Copy() })
	return out
}

// TestPushRetriesTransientFailures: a delivery that fails with 502 a few
// times must be retried with backoff and succeed, without surfacing an
// error to the caller.
func TestPushRetriesTransientFailures(t *testing.T) {
	reg := obs.NewRegistry()
	pub, _ := newListPublisher(t, reg)
	sb, subPeer := newPortalSubscriber(t, "s1")

	var failures atomic.Int32
	failures.Store(2)
	inner := sb.Handler()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if failures.Add(-1) >= 0 {
			http.Error(w, "injected", http.StatusBadGateway)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	pub.Subscribe("s1", Envelope{Service: "List"}, srv.URL)
	pub.Retries = 3
	pub.RetryBase = time.Millisecond
	var slept int
	pub.Sleep = func(time.Duration) { slept++ }

	pushed, err := pub.Flush(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if pushed != 1 {
		t.Fatalf("pushed = %d", pushed)
	}
	if slept != 2 {
		t.Fatalf("slept %d times, want 2", slept)
	}
	if len(pub.Failures()) != 0 {
		t.Fatalf("failures recorded for recovered delivery: %v", pub.Failures())
	}
	want := syntax.MustParseDocument(`portal{got{"a","1"}}`)
	if got := portalTree(subPeer); !tree.Isomorphic(got, want) {
		t.Fatalf("portal %s, want %s", got.CanonicalString(), want.CanonicalString())
	}
}

// TestPushDeadSubscriberDoesNotStarveOthers: one unreachable callback
// exhausts its retries, is recorded, and the remaining subscriptions
// still deliver in the same flush.
func TestPushDeadSubscriberDoesNotStarveOthers(t *testing.T) {
	reg := obs.NewRegistry()
	pub, _ := newListPublisher(t, reg)
	sb, subPeer := newPortalSubscriber(t, "alive")
	srv := httptest.NewServer(sb.Handler())
	defer srv.Close()
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close() // immediately: connections will be refused

	pub.Subscribe("dead", Envelope{Service: "List"}, dead.URL)
	pub.Subscribe("alive", Envelope{Service: "List"}, srv.URL)
	pub.Retries = 1
	pub.RetryBase = time.Millisecond
	pub.Sleep = func(time.Duration) {}

	pushed, err := pub.Flush(context.Background(), nil)
	if err == nil {
		t.Fatal("dead subscriber did not surface an error")
	}
	if pushed != 1 {
		t.Fatalf("pushed = %d, want the live subscriber's tree", pushed)
	}
	if pub.Failures()["dead"] != 1 {
		t.Fatalf("failures: %v", pub.Failures())
	}
	if reg.Counter("peer.push.fail.dead").Value() != 1 {
		t.Fatal("per-subscriber failure counter not recorded")
	}
	if got := portalTree(subPeer); len(got.Children) != 1 {
		t.Fatalf("live subscriber missed its delivery: %s", got.CanonicalString())
	}
}

// TestPushRenegotiatesAfterSubscriberRestart: a subscriber that lost its
// state answers 409 to the next digest-anchored delta, and the publisher
// re-pushes the full accumulated forest — converging the fresh replica
// to everything ever published.
func TestPushRenegotiatesAfterSubscriberRestart(t *testing.T) {
	reg := obs.NewRegistry()
	pub, pubPeer := newListPublisher(t, reg)

	// The subscriber sits behind a stable URL whose handler can be
	// swapped — the crash-restart leaves the address unchanged.
	var cur atomic.Value // http.Handler
	sb1, _ := newPortalSubscriber(t, "s1")
	cur.Store(sb1.Handler())
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		cur.Load().(http.Handler).ServeHTTP(w, r)
	}))
	defer srv.Close()

	pub.Subscribe("s1", Envelope{Service: "List"}, srv.URL)
	pub.Sleep = func(time.Duration) {}
	if _, err := pub.Flush(context.Background(), nil); err != nil {
		t.Fatal(err)
	}

	// Crash: a fresh subscriber (empty portal, empty delivery chain)
	// takes over the same URL. The publisher does not know.
	sb2, subPeer2 := newPortalSubscriber(t, "s1")
	cur.Store(sb2.Handler())

	// New data appears; the anchored delta must be rejected and the full
	// forest re-pushed.
	growDoc(pubPeer, "db", `e{t{"b"},s{"2"}}`)
	pushed, err := pub.Flush(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if pushed == 0 {
		t.Fatal("nothing pushed after growth")
	}
	if reg.Counter("peer.push.conflicts").Value() == 0 {
		t.Fatal("restart did not surface as a push conflict")
	}
	want := syntax.MustParseDocument(`portal{got{"a","1"},got{"b","2"}}`)
	if got := portalTree(subPeer2); !tree.Isomorphic(got, want) {
		t.Fatalf("restarted portal %s, want %s", got.CanonicalString(), want.CanonicalString())
	}

	// Steady state resumes: the next delta delivers without conflict.
	growDoc(pubPeer, "db", `e{t{"c"},s{"3"}}`)
	conflictsBefore := reg.Counter("peer.push.conflicts").Value()
	if _, err := pub.Flush(context.Background(), nil); err != nil {
		t.Fatal(err)
	}
	if reg.Counter("peer.push.conflicts").Value() != conflictsBefore {
		t.Fatal("steady-state delta conflicted")
	}
	want = syntax.MustParseDocument(`portal{got{"a","1"},got{"b","2"},got{"c","3"}}`)
	if got := portalTree(subPeer2); !tree.Isomorphic(got, want) {
		t.Fatalf("portal %s, want %s", got.CanonicalString(), want.CanonicalString())
	}
}

// TestPushDuplicateDeliveryRejected: replaying an already-accepted
// delivery (same bytes, same anchor) is refused by the chain check and
// repaired by a full re-push — the at-least-once wire contract.
func TestPushDuplicateDelivery(t *testing.T) {
	pub, _ := newListPublisher(t, nil)
	sb, subPeer := newPortalSubscriber(t, "s1")
	srv := httptest.NewServer(sb.Handler())
	defer srv.Close()
	pub.Subscribe("s1", Envelope{Service: "List"}, srv.URL)
	if _, err := pub.Flush(context.Background(), nil); err != nil {
		t.Fatal(err)
	}

	// Replay the same delivery out of band: anchor "" no longer matches
	// the subscriber's advanced chain → 409, no double-append.
	data, err := MarshalForest(tree.Forest{syntax.MustParseDocument(`got{"a","1"}`)})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, srv.URL+PathPush+"s1", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(headerPushMode, "delta")
	req.Header.Set(headerPushAnchor, "")
	req.Header.Set(headerPushAck, chainDigest("", data))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("replayed delivery answered %d", resp.StatusCode)
	}
	want := syntax.MustParseDocument(`portal{got{"a","1"}}`)
	if got := portalTree(subPeer); !tree.Isomorphic(got, want) {
		t.Fatalf("portal %s, want %s", got.CanonicalString(), want.CanonicalString())
	}
}
