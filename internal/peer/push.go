package peer

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"axml/internal/core"
	"axml/internal/obs"
	"axml/internal/subsume"
	"axml/internal/tree"
)

// Push mode (pub/sub): the paper notes that repeated call activation
// captures both a pull mode, where clients keep asking, and a push mode,
// where servers keep sending new data (Section 2.2 and the conclusion).
// Publisher implements the server side: subscribers register a service
// invocation plus a callback URL, and Flush re-evaluates each
// subscription, POSTing only the new trees to the callback. Subscriber
// implements the client side, appending pushed forests under the
// subscribed call's parent — exactly where a pull-mode invocation would
// have appended them, so both modes converge to the same documents.

// PathPush is the subscriber's callback endpoint.
const PathPush = "/axml/push/"

// Publisher manages subscriptions on top of a Peer.
type Publisher struct {
	peer *Peer

	mu   sync.Mutex
	subs []*subscription
}

type subscription struct {
	id       string
	env      Envelope
	callback string
	sent     tree.Forest
}

// NewPublisher wraps a peer.
func NewPublisher(p *Peer) *Publisher { return &Publisher{peer: p} }

// Subscribe registers a subscription: the envelope will be re-evaluated
// on every Flush, and new results POSTed to callbackURL+PathPush+id.
func (pb *Publisher) Subscribe(id string, env Envelope, callbackURL string) {
	pb.mu.Lock()
	defer pb.mu.Unlock()
	pb.subs = append(pb.subs, &subscription{id: id, env: env, callback: callbackURL})
}

// Flush re-evaluates every subscription and pushes the trees not yet
// sent. It returns the number of trees pushed. Deliveries record into
// the publishing peer's registry (peer.push.flushes/pushed/errors) and
// emit one "push" span per delivering subscription.
func (pb *Publisher) Flush(client *http.Client) (int, error) {
	if client == nil {
		client = DefaultClient
	}
	pb.mu.Lock()
	subs := append([]*subscription(nil), pb.subs...)
	pb.mu.Unlock()
	pb.peer.metrics.Counter("peer.push.flushes").Inc()
	pushed := 0
	for _, sub := range subs {
		forest, err := pb.peer.Serve(context.Background(), sub.env)
		if err != nil {
			pb.peer.metrics.Counter("peer.push.errors").Inc()
			return pushed, err
		}
		var fresh tree.Forest
		for _, t := range forest {
			seen := false
			for _, old := range sub.sent {
				if subsume.Subsumed(t, old) {
					seen = true
					break
				}
			}
			if !seen {
				fresh = append(fresh, t)
			}
		}
		if len(fresh) == 0 {
			continue
		}
		data, err := MarshalForest(fresh)
		if err != nil {
			pb.peer.metrics.Counter("peer.push.errors").Inc()
			return pushed, err
		}
		start := time.Now()
		resp, err := client.Post(sub.callback+PathPush+sub.id, "application/xml", bytes.NewReader(data))
		if err != nil {
			pb.peer.metrics.Counter("peer.push.errors").Inc()
			return pushed, err
		}
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			pb.peer.metrics.Counter("peer.push.errors").Inc()
			return pushed, fmt.Errorf("peer: push to %s: %s: %s", sub.callback, resp.Status, string(body))
		}
		sub.sent = append(sub.sent, fresh...)
		pushed += len(fresh)
		pb.peer.metrics.Counter("peer.push.pushed").Add(int64(len(fresh)))
		if tr := pb.peer.tracer; tr.Enabled() {
			tr.Emit(obs.Span{Kind: "push", Name: sub.id, TSUs: tr.Now(),
				DurUs: time.Since(start).Microseconds(),
				Attrs: map[string]int64{"trees": int64(len(fresh))}})
		}
	}
	return pushed, nil
}

// Subscriber receives pushed forests and appends them into a document of
// its local system, at a registered attachment point.
type Subscriber struct {
	peer *Peer

	mu      sync.Mutex
	targets map[string]pushTarget
}

type pushTarget struct {
	doc  string
	node *tree.Node // attachment parent inside the document
}

// NewSubscriber wraps a peer.
func NewSubscriber(p *Peer) *Subscriber {
	return &Subscriber{peer: p, targets: map[string]pushTarget{}}
}

// Register binds a subscription id to an attachment parent inside a
// document: pushed trees become children of that node, then the document
// is reduced — the same effect as a pull-mode invocation at a call under
// that parent.
func (sb *Subscriber) Register(id, doc string, parent *tree.Node) {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	sb.targets[id] = pushTarget{doc: doc, node: parent}
}

// Handler returns the subscriber's HTTP handler (mount alongside or
// instead of the peer handler). Like the peer endpoints, it reports
// peer.http.*.push metrics when the peer carries a registry.
func (sb *Subscriber) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(PathPush, sb.peer.instrument("push", sb.handlePush))
	return mux
}

func (sb *Subscriber) handlePush(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		methodNotAllowed(w, http.MethodPost)
		return
	}
	id := r.URL.Path[len(PathPush):]
	sb.mu.Lock()
	target, ok := sb.targets[id]
	sb.mu.Unlock()
	if !ok {
		http.Error(w, "unknown subscription", http.StatusNotFound)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, MaxWireBytes))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	forest, err := UnmarshalForest(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	sb.peer.System(func(s *core.System) {
		doc := s.Document(target.doc)
		if doc == nil {
			return
		}
		target.node.Children = append(target.node.Children, forest...)
		// The raw append above bypasses the digest invalidation contract:
		// clear the memoized digests and reduced flags before reducing, or
		// ReduceInPlace would trust stale memos (and could skip, or wrongly
		// group, the subtree that just grew).
		tree.InvalidateDigestAll(doc.Root)
		subsume.ReduceInPlace(doc.Root)
		// Out-of-band growth: make the version gate see the pushed data.
		s.Touch(target.doc)
	})
	sb.peer.metrics.Counter("peer.push.delivered").Add(int64(len(forest)))
	io.WriteString(w, "ok")
}
