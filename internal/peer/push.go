package peer

import (
	"bytes"
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"axml/internal/core"
	"axml/internal/obs"
	"axml/internal/subsume"
	"axml/internal/tree"
)

// Push mode (pub/sub): the paper notes that repeated call activation
// captures both a pull mode, where clients keep asking, and a push mode,
// where servers keep sending new data (Section 2.2 and the conclusion).
// Publisher implements the server side: subscribers register a service
// invocation plus a callback URL, and Flush re-evaluates each
// subscription, POSTing only the new trees to the callback. Subscriber
// implements the client side, appending pushed forests under the
// subscribed call's parent — exactly where a pull-mode invocation would
// have appended them, so both modes converge to the same documents.
//
// Deliveries are digest-anchored: each POST names the hash chain of
// everything the publisher believes the subscriber accepted so far. A
// subscriber whose state disagrees (it crashed and lost deliveries, or a
// delivery was duplicated out of band) answers 409 Conflict, and the
// publisher falls back to re-pushing the full accumulated forest —
// monotone merge makes over-delivery safe, so the fallback can only
// repair, never corrupt.

// PathPush is the subscriber's callback endpoint.
const PathPush = "/axml/push/"

// Push negotiation headers. Anchor is the hash chain the subscriber must
// currently hold for a delta delivery to apply ("" for the first or a
// full delivery); Ack is the chain value after accepting this delivery;
// Mode is "delta" or "full". Requests without a Mode header (legacy
// senders) are accepted without negotiation.
const (
	headerPushMode   = "X-Axml-Push-Mode"
	headerPushAnchor = "X-Axml-Push-Anchor"
	headerPushAck    = "X-Axml-Push-Ack"
)

// DefaultPushRetries is how many times a failed delivery is retried
// (beyond the first attempt) when Publisher.Retries is zero.
const DefaultPushRetries = 2

// DefaultPushRetryBase is the first retry backoff when
// Publisher.RetryBase is zero; it doubles per attempt, capped at 32×.
const DefaultPushRetryBase = 50 * time.Millisecond

// Publisher manages subscriptions on top of a Peer.
type Publisher struct {
	peer *Peer

	// Retries is the number of re-attempts per failed delivery (after
	// the first try). Zero means DefaultPushRetries; negative disables
	// retrying.
	Retries int
	// RetryBase is the first backoff delay; it doubles per attempt and is
	// capped at 32× RetryBase. Zero means DefaultPushRetryBase.
	RetryBase time.Duration
	// Sleep is the backoff clock, for tests; nil means time.Sleep (a
	// cancelled ctx cuts the wait short either way).
	Sleep func(time.Duration)

	mu       sync.Mutex
	subs     []*subscription
	failures map[string]int
}

type subscription struct {
	id       string
	env      Envelope
	callback string
	sent     tree.Forest
	// chain is the delivery hash chain the publisher believes the
	// subscriber holds — the anchor of the next delta delivery.
	chain string
}

// NewPublisher wraps a peer.
func NewPublisher(p *Peer) *Publisher { return &Publisher{peer: p} }

// Subscribe registers a subscription: the envelope will be re-evaluated
// on every Flush, and new results POSTed to callbackURL+PathPush+id.
func (pb *Publisher) Subscribe(id string, env Envelope, callbackURL string) {
	pb.mu.Lock()
	defer pb.mu.Unlock()
	pb.subs = append(pb.subs, &subscription{id: id, env: env, callback: callbackURL})
}

// Failures returns a snapshot of the per-subscription count of failed
// delivery attempts (each exhausted retry sequence counts once per
// attempt). The same counts land in the peer's registry as
// peer.push.fail.<id>.
func (pb *Publisher) Failures() map[string]int {
	pb.mu.Lock()
	defer pb.mu.Unlock()
	out := make(map[string]int, len(pb.failures))
	for id, n := range pb.failures {
		out[id] = n
	}
	return out
}

func (pb *Publisher) recordFailure(id string) {
	pb.mu.Lock()
	if pb.failures == nil {
		pb.failures = make(map[string]int)
	}
	pb.failures[id]++
	pb.mu.Unlock()
	pb.peer.metrics.Counter("peer.push.fail." + id).Inc()
}

// chainDigest advances the delivery hash chain over one payload.
func chainDigest(prev string, payload []byte) string {
	h := sha256.New()
	io.WriteString(h, prev)
	h.Write([]byte{0})
	h.Write(payload)
	return fmt.Sprintf("%x", h.Sum(nil)[:8])
}

// Flush re-evaluates every subscription and pushes the trees not yet
// sent. It returns the number of trees pushed. A failed delivery is
// retried with capped exponential backoff (Retries/RetryBase); a
// subscription whose retries are exhausted is skipped — its error is
// joined into the returned error and its failure count recorded
// (Failures, peer.push.fail.<id>) — so one dead subscriber does not
// starve the rest. A 409 from the subscriber (its state diverged from
// the publisher's anchor) triggers a full re-push of the accumulated
// forest. Deliveries record into the publishing peer's registry
// (peer.push.flushes/pushed/errors/conflicts) and emit one "push" span
// per delivering subscription.
func (pb *Publisher) Flush(ctx context.Context, client *http.Client) (int, error) {
	if client == nil {
		client = DefaultClient
	}
	pb.mu.Lock()
	subs := append([]*subscription(nil), pb.subs...)
	pb.mu.Unlock()
	pb.peer.metrics.Counter("peer.push.flushes").Inc()
	pushed := 0
	var errs []error
	for _, sub := range subs {
		if err := ctx.Err(); err != nil {
			errs = append(errs, err)
			break
		}
		n, err := pb.flushOne(ctx, client, sub)
		pushed += n
		if err != nil {
			pb.peer.metrics.Counter("peer.push.errors").Inc()
			pb.recordFailure(sub.id)
			errs = append(errs, fmt.Errorf("push %s: %w", sub.id, err))
		}
	}
	return pushed, errors.Join(errs...)
}

func (pb *Publisher) flushOne(ctx context.Context, client *http.Client, sub *subscription) (int, error) {
	forest, err := pb.peer.Serve(ctx, sub.env)
	if err != nil {
		return 0, err
	}
	var fresh tree.Forest
	for _, t := range forest {
		seen := false
		for _, old := range sub.sent {
			if subsume.Subsumed(t, old) {
				seen = true
				break
			}
		}
		if !seen {
			fresh = append(fresh, t)
		}
	}
	if len(fresh) == 0 {
		return 0, nil
	}
	data, err := MarshalForest(fresh)
	if err != nil {
		return 0, err
	}
	// The push span parents the delivery: its context rides ctx into
	// deliver, so the subscriber's "http" span joins the same trace.
	parent := obs.SpanFromContext(ctx)
	var pushSC obs.SpanContext
	if parent.Valid() || pb.peer.tracer.Enabled() {
		pushSC = parent.NewChild()
		ctx = obs.ContextWithSpan(ctx, pushSC)
	}
	mode, anchor := "delta", sub.chain
	start := time.Now()
	startTS := pb.peer.tracer.Now()
	retries := pb.Retries
	if retries == 0 {
		retries = DefaultPushRetries
	}
	base := pb.RetryBase
	if base == 0 {
		base = DefaultPushRetryBase
	}
	var lastErr error
	for attempt := 0; attempt <= retries; attempt++ {
		if attempt > 0 {
			delay := base << (attempt - 1)
			if max := base << 5; delay > max {
				delay = max
			}
			if pb.Sleep != nil {
				pb.Sleep(delay)
			} else {
				select {
				case <-time.After(delay):
				case <-ctx.Done():
					return 0, ctx.Err()
				}
			}
			pb.peer.metrics.Counter("peer.push.retries").Inc()
		}
		ack := chainDigest(anchor, data)
		status, body, err := pb.deliver(ctx, client, sub, mode, anchor, ack, data)
		if err != nil {
			lastErr = err
			continue
		}
		switch {
		case status == http.StatusOK:
			sub.sent = append(sub.sent, fresh...)
			sub.chain = ack
			pb.peer.metrics.Counter("peer.push.pushed").Add(int64(len(fresh)))
			if tr := pb.peer.tracer; tr.Enabled() {
				tr.Emit(obs.Span{Kind: "push", Name: sub.id, TSUs: startTS,
					DurUs: time.Since(start).Microseconds(),
					Attrs: map[string]int64{"trees": int64(len(fresh))}}.WithContext(pushSC, parent))
			}
			return len(fresh), nil
		case status == http.StatusConflict && mode == "delta":
			// The subscriber's state diverged from our anchor (it restarted,
			// or a delivery was lost/duplicated): re-push everything we ever
			// sent plus the fresh trees, anchorless. The subscriber resets
			// its chain; the monotone merge dedups anything it still had.
			pb.peer.metrics.Counter("peer.push.conflicts").Inc()
			full := append(append(tree.Forest(nil), sub.sent...), fresh...)
			if data, err = MarshalForest(full); err != nil {
				return 0, err
			}
			mode, anchor = "full", ""
			// The conflict answer consumed an attempt; the full re-push
			// starts immediately on the next loop iteration.
			lastErr = fmt.Errorf("peer: push to %s: subscriber state diverged", sub.callback)
		default:
			lastErr = fmt.Errorf("peer: push to %s: %d: %s", sub.callback, status, body)
		}
	}
	return 0, lastErr
}

// deliver POSTs one payload to the subscription callback.
func (pb *Publisher) deliver(ctx context.Context, client *http.Client, sub *subscription,
	mode, anchor, ack string, data []byte) (status int, body string, err error) {
	req, err := newRequest(ctx, http.MethodPost,
		sub.callback+PathPush+sub.id, bytes.NewReader(data))
	if err != nil {
		return 0, "", err
	}
	req.Header.Set("Content-Type", "application/xml")
	req.Header.Set(headerPushMode, mode)
	req.Header.Set(headerPushAnchor, anchor)
	req.Header.Set(headerPushAck, ack)
	resp, err := client.Do(req)
	if err != nil {
		return 0, "", err
	}
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	resp.Body.Close()
	return resp.StatusCode, string(msg), nil
}

// Subscriber receives pushed forests and appends them into a document of
// its local system, at a registered attachment point.
type Subscriber struct {
	peer *Peer

	mu      sync.Mutex
	targets map[string]pushTarget
	chains  map[string]string
}

type pushTarget struct {
	doc  string
	node *tree.Node // attachment parent inside the document
}

// NewSubscriber wraps a peer.
func NewSubscriber(p *Peer) *Subscriber {
	return &Subscriber{peer: p, targets: map[string]pushTarget{}, chains: map[string]string{}}
}

// Register binds a subscription id to an attachment parent inside a
// document: pushed trees become children of that node, then the document
// is reduced — the same effect as a pull-mode invocation at a call under
// that parent.
func (sb *Subscriber) Register(id, doc string, parent *tree.Node) {
	sb.mu.Lock()
	defer sb.mu.Unlock()
	sb.targets[id] = pushTarget{doc: doc, node: parent}
}

// Handler returns the subscriber's HTTP handler (mount alongside or
// instead of the peer handler). Like the peer endpoints, it reports
// peer.http.*.push metrics when the peer carries a registry.
func (sb *Subscriber) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(PathPush, sb.peer.instrument("push", sb.handlePush))
	return mux
}

func (sb *Subscriber) handlePush(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		methodNotAllowed(w, http.MethodPost)
		return
	}
	id := r.URL.Path[len(PathPush):]
	sb.mu.Lock()
	target, ok := sb.targets[id]
	chain := sb.chains[id]
	sb.mu.Unlock()
	if !ok {
		http.Error(w, "unknown subscription", http.StatusNotFound)
		return
	}
	// Digest-anchored negotiation: a delta delivery applies only on top of
	// the exact chain of deliveries the publisher believes we accepted. A
	// mismatch — we restarted, or deliveries were dropped/duplicated — is
	// answered 409 so the publisher re-pushes the full forest instead.
	mode := r.Header.Get(headerPushMode)
	if mode == "delta" && r.Header.Get(headerPushAnchor) != chain {
		sb.peer.metrics.Counter("peer.push.rejected").Inc()
		http.Error(w, "push anchor mismatch", http.StatusConflict)
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, MaxWireBytes))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	forest, err := UnmarshalForest(body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var beforeDigest, afterDigest string
	sb.peer.System(func(s *core.System) {
		doc := s.Document(target.doc)
		if doc == nil {
			return
		}
		beforeDigest = docDigest(doc.Root)
		target.node.Children = append(target.node.Children, forest...)
		// The raw append above bypasses the digest invalidation contract:
		// clear the memoized digests and reduced flags before reducing, or
		// ReduceInPlace would trust stale memos (and could skip, or wrongly
		// group, the subtree that just grew).
		tree.InvalidateDigestAll(doc.Root)
		subsume.ReduceInPlace(doc.Root)
		// Out-of-band growth: make the version gate see the pushed data.
		s.Touch(target.doc)
		afterDigest = docDigest(doc.Root)
	})
	// Convergence watermark: a push reveals no origin digest (the chain
	// anchors payload history, not document state), but it does advance
	// the local replica — record the movement.
	if afterDigest != "" {
		sb.peer.converge.observe(sb.peer.metrics, target.doc, "", afterDigest,
			afterDigest != beforeDigest)
	}
	if mode != "" {
		sb.mu.Lock()
		sb.chains[id] = r.Header.Get(headerPushAck)
		sb.mu.Unlock()
	}
	sb.peer.metrics.Counter("peer.push.delivered").Add(int64(len(forest)))
	io.WriteString(w, "ok")
}
