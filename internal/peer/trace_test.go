package peer

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"

	"axml/internal/core"
	"axml/internal/obs"
	"axml/internal/syntax"
	"axml/internal/tree"
)

// parseSpans decodes a tracer buffer into spans indexed by span ID.
func parseSpans(t *testing.T, buf *bytes.Buffer) (spans []obs.Span, byID map[string]obs.Span) {
	t.Helper()
	byID = map[string]obs.Span{}
	dec := json.NewDecoder(bytes.NewReader(buf.Bytes()))
	for dec.More() {
		var s obs.Span
		if err := dec.Decode(&s); err != nil {
			t.Fatalf("decode span: %v", err)
		}
		spans = append(spans, s)
		if s.Span != "" {
			byID[s.Span] = s
		}
	}
	return spans, byID
}

// climb walks parent links from s up to the earliest ancestor the trace
// recorded, returning that ancestor's Parent (the first span ID outside
// the file) and the number of recorded hops climbed.
func climb(t *testing.T, byID map[string]obs.Span, s obs.Span) (terminal string, hops int) {
	t.Helper()
	for hops = 0; hops < 32; hops++ {
		if s.Parent == "" {
			t.Fatalf("span %s/%s (kind %s) has no parent: trace disconnected", s.Span, s.Name, s.Kind)
		}
		up, ok := byID[s.Parent]
		if !ok {
			return s.Parent, hops
		}
		s = up
	}
	t.Fatalf("parent chain from %s did not terminate in 32 hops", s.Span)
	return "", 0
}

// The tentpole acceptance: a three-peer workload — a portal peer whose
// sweep fires a remote invocation against a ratings peer, whose
// publisher then pushes the same service's results to a subscriber peer
// — must produce ONE connected trace. Every span shares the caller's
// trace ID, and every span's parent chain climbs to the caller's root
// span, across both HTTP hops.
func TestFleetCrossPeerTraceConnected(t *testing.T) {
	var buf bytes.Buffer
	tr := obs.NewTracer(&buf)

	// Peer B: ratings, serving GetRating over HTTP.
	ratings, _, err := Open("ratings", core.MustParseSystem(`
doc ratings = db{entry{title{"Body and Soul"},stars{"4"}},entry{title{"Naima"},stars{"5"}}}
func GetRating = rating{$s} :- input/input{title{$t}}, ratings/db{entry{title{$t},stars{$s}}}
`), WithTracer(tr))
	if err != nil {
		t.Fatal(err)
	}
	ratingsSrv := httptest.NewServer(ratings.Handler())
	defer ratingsSrv.Close()

	// Peer C: a subscriber whose inbox document receives pushes.
	inboxPeer, _, err := Open("inbox", core.MustParseSystem(`doc inbox = inbox`), WithTracer(tr))
	if err != nil {
		t.Fatal(err)
	}
	sub := NewSubscriber(inboxPeer)
	var inboxRoot *tree.Node
	inboxPeer.System(func(s *core.System) { inboxRoot = s.Document("inbox").Root })
	sub.Register("ingest", "inbox", inboxRoot)
	subSrv := httptest.NewServer(sub.Handler())
	defer subSrv.Close()

	// Peer A: a portal whose document calls the remote GetRating.
	sysA := core.NewSystem()
	if err := sysA.AddService(&RemoteService{Name: "GetRating", URL: ratingsSrv.URL}); err != nil {
		t.Fatal(err)
	}
	portal := syntax.MustParseDocument(`directory{cd{title{"Naima"},!GetRating{title{"Naima"}}}}`)
	if err := sysA.AddDocument(tree.NewDocument("portal", portal)); err != nil {
		t.Fatal(err)
	}
	if err := sysA.Validate(); err != nil {
		t.Fatal(err)
	}
	portalPeer, _, err := Open("portal", sysA, WithTracer(tr))
	if err != nil {
		t.Fatal(err)
	}

	// The caller owns the trace root (it is never emitted — external
	// callers keep their own spans); everything below must chain to it.
	root := obs.NewTrace()
	ctx := obs.ContextWithSpan(context.Background(), root)

	// Origin sweeps: fire the remote invocation to the ratings peer and
	// merge its answer, re-sweeping to sterility.
	for i := 0; i < 5; i++ {
		changed, err := portalPeer.SweepContext(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if !changed {
			break
		}
	}

	// Push delivery: the ratings peer's publisher evaluates the same
	// service and pushes the result forest to the subscriber peer.
	pub := NewPublisher(ratings)
	pub.Subscribe("ingest", Envelope{
		Service: "GetRating",
		Input:   syntax.MustParseDocument(`input{title{"Naima"}}`),
	}, subSrv.URL)
	if n, err := pub.Flush(ctx, nil); err != nil || n == 0 {
		t.Fatalf("flush pushed %d trees, err %v", n, err)
	}

	spans, byID := parseSpans(t, &buf)
	if len(spans) == 0 {
		t.Fatal("no spans emitted")
	}

	// One trace: every span carries the caller's trace ID, and every
	// parent chain terminates at the caller's root span.
	kinds := map[string]int{}
	for _, s := range spans {
		kinds[s.Kind]++
		if s.Trace != root.Trace {
			t.Fatalf("span %s/%s (kind %s): trace %s, want %s", s.Span, s.Name, s.Kind, s.Trace, root.Trace)
		}
		if terminal, _ := climb(t, byID, s); terminal != root.Span {
			t.Fatalf("span %s/%s (kind %s): chain terminates at %s, not the caller root %s",
				s.Span, s.Name, s.Kind, terminal, root.Span)
		}
	}
	for _, kind := range []string{"sweep", "call", "http", "push"} {
		if kinds[kind] == 0 {
			t.Fatalf("no %q span in the trace (got %v)", kind, kinds)
		}
	}

	// The invoke crossed peers: the ratings peer's server-side span must
	// chain through spans the portal peer emitted (the call and sweep),
	// i.e. climb at least two recorded hops before reaching the root.
	var sawInvoke, sawPushDelivery bool
	for _, s := range spans {
		if s.Kind == "http" && s.Name == "invoke" {
			sawInvoke = true
			if _, hops := climb(t, byID, s); hops < 2 {
				t.Fatalf("invoke http span chains to root in %d hops; want it nested under the origin call+sweep", hops)
			}
		}
		if s.Kind == "http" && s.Name == "push" {
			sawPushDelivery = true
			up, ok := byID[s.Parent]
			if !ok || up.Kind != "push" {
				t.Fatalf("push delivery span's parent should be the publisher's push span, got %+v", up)
			}
		}
	}
	if !sawInvoke {
		t.Fatal("no server-side invoke span")
	}
	if !sawPushDelivery {
		t.Fatal("no server-side push delivery span")
	}
}
