package peer

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"axml/internal/core"
	"axml/internal/syntax"
	"axml/internal/tree"
)

// setMaxWireBytes overrides the package cap for one test.
func setMaxWireBytes(t *testing.T, n int64) {
	t.Helper()
	old := MaxWireBytes
	MaxWireBytes = n
	t.Cleanup(func() { MaxWireBytes = old })
}

// hugeBodyServer answers every request with an endless XML-looking body.
func hugeBodyServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/xml")
		io.WriteString(w, "<ax:forest><a>")
		filler := strings.Repeat("<b></b>", 1024)
		for i := 0; i < 1024; i++ {
			if _, err := io.WriteString(w, filler); err != nil {
				return
			}
		}
		io.WriteString(w, "</a></ax:forest>")
	}))
	t.Cleanup(srv.Close)
	return srv
}

func TestRemoteInvokeRejectsOversizedResponse(t *testing.T) {
	setMaxWireBytes(t, 4096)
	srv := hugeBodyServer(t)
	rs := &RemoteService{Name: "f", URL: strings.TrimSuffix(srv.URL+PathInvoke, PathInvoke)}
	_, err := rs.Invoke(context.Background(), core.Binding{Input: tree.NewLabel(tree.Input)})
	if !errors.Is(err, ErrResponseTooLarge) {
		t.Fatalf("want ErrResponseTooLarge, got %v", err)
	}

	// A per-service cap overrides the package default.
	setMaxWireBytes(t, 1<<30)
	rs.MaxBytes = 2048
	_, err = rs.Invoke(context.Background(), core.Binding{Input: tree.NewLabel(tree.Input)})
	if !errors.Is(err, ErrResponseTooLarge) {
		t.Fatalf("per-service cap: want ErrResponseTooLarge, got %v", err)
	}
}

func TestFetchDocRejectsOversizedResponse(t *testing.T) {
	setMaxWireBytes(t, 4096)
	srv := hugeBodyServer(t)
	_, err := FetchDoc(context.Background(), nil, srv.URL, "anything")
	if !errors.Is(err, ErrResponseTooLarge) {
		t.Fatalf("want ErrResponseTooLarge, got %v", err)
	}
}

func TestHandleInvokeStatusCodes(t *testing.T) {
	srv := httptest.NewServer(newRatingsPeer(t).Handler())
	defer srv.Close()

	post := func(body string) *http.Response {
		t.Helper()
		resp, err := http.Post(srv.URL+PathInvoke, "application/xml", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// A body that fails UnmarshalEnvelope is the caller's bug: 400, with
	// the parse error echoed so client bugs and journal-replay bugs are
	// distinguishable from server faults.
	for _, bad := range []string{
		"not xml at all",
		"<ax:envelope></ax:envelope>",
		"<wrong/>",
		"",
	} {
		resp := post(bad)
		msg, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", bad, resp.StatusCode)
		}
		if !strings.Contains(string(msg), "bad") {
			t.Errorf("body %q: parse error not echoed: %q", bad, msg)
		}
	}

	// A valid envelope for a service the peer does not have stays a
	// server-side failure (502), not a client error.
	env, err := MarshalEnvelope(Envelope{Service: "NoSuchService"})
	if err != nil {
		t.Fatal(err)
	}
	resp := post(string(env))
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Errorf("unknown service: status %d, want 502", resp.StatusCode)
	}

	// An oversized request body is 413, cut off at the cap.
	setMaxWireBytes(t, 1024)
	resp = post("<ax:envelope>" + strings.Repeat("<x></x>", 1024))
	msg, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: status %d (%q), want 413", resp.StatusCode, msg)
	}
}

func TestWireDocRecordAndSnapshotRoundTrip(t *testing.T) {
	root := syntax.MustParseDocument(`log{entry{"a"},!Annotate{"b"}}`)
	data, err := MarshalDocRecord("notes", root)
	if err != nil {
		t.Fatal(err)
	}
	name, back, err := UnmarshalDocRecord(data)
	if err != nil {
		t.Fatal(err)
	}
	if name != "notes" || !tree.Isomorphic(root, back) {
		t.Fatalf("doc record round trip: %q %s", name, back)
	}

	docs := []*tree.Document{
		tree.NewDocument("a", syntax.MustParseDocument(`x{y}`)),
		tree.NewDocument("b", syntax.MustParseDocument(`z{"v"}`)),
	}
	snap, err := MarshalSnapshot(docs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name != "a" || got[1].Name != "b" ||
		!tree.Isomorphic(got[0].Root, docs[0].Root) || !tree.Isomorphic(got[1].Root, docs[1].Root) {
		t.Fatalf("snapshot round trip: %v", got)
	}

	for _, bad := range []string{
		`<ax:doc><x/></ax:doc>`,        // no name
		`<ax:doc name="d"></ax:doc>`,   // no tree
		`<other name="d"><x/></other>`, // wrong element
	} {
		if _, _, err := UnmarshalDocRecord([]byte(bad)); err == nil {
			t.Errorf("accepted bad doc record %q", bad)
		}
	}
	if _, err := UnmarshalSnapshot([]byte(`<wrong/>`)); err == nil {
		t.Error("accepted bad snapshot")
	}
}
