package peer

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"

	"axml/internal/obs"
	"axml/internal/tree"
)

// Client is the typed client-side surface of a peer's HTTP API: one value
// per target peer, carrying the base URL, the transport client and the
// wire-size cap that every request shares. Mirror syncs, coordinator
// rounds, anti-entropy probes, remote service invocations and the load
// generator all route through it — it is the single place outbound peer
// HTTP is shaped, bounded and decoded. The zero value is not useful;
// set BaseURL (or use NewClient). A Client is safe for concurrent use:
// it holds no mutable state beyond the pooled *http.Client.
type Client struct {
	// BaseURL is the peer's base URL, e.g. "http://host:8080" (no
	// trailing slash; the endpoint paths under /axml/ are appended).
	BaseURL string
	// HTTP is the transport client; nil means the shared DefaultClient
	// (10s timeout, pooled keep-alive connections).
	HTTP *http.Client
	// MaxWire caps every response body this client reads; 0 means the
	// package-wide MaxWireBytes. Bodies over the cap fail with
	// ErrResponseTooLarge.
	MaxWire int64
}

// NewClient wraps a peer base URL. A nil httpClient means the shared
// DefaultClient.
func NewClient(baseURL string, httpClient *http.Client) *Client {
	return &Client{BaseURL: strings.TrimSuffix(baseURL, "/"), HTTP: httpClient}
}

// httpc resolves the transport client.
func (c *Client) httpc() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return DefaultClient
}

// newRequest builds one outbound request, stamping the W3C traceparent
// header from the span context riding ctx (none attached → no header).
// Every Client method funnels through here — outbound trace propagation
// has exactly one choke point, which is why scripts/lint-obs.sh bans
// bare http.Get/http.Post in internal/ code.
func newRequest(ctx context.Context, method, url string, body io.Reader) (*http.Request, error) {
	req, err := http.NewRequestWithContext(ctx, method, url, body)
	if err != nil {
		return nil, err
	}
	if tp := obs.SpanFromContext(ctx).Traceparent(); tp != "" {
		req.Header.Set(obs.TraceparentHeader, tp)
	}
	return req, nil
}

// do issues req and returns the response, mapping transport errors that
// were really a context cancellation back to the context's error so
// callers can match it.
func (c *Client) do(req *http.Request) (*http.Response, error) {
	resp, err := c.httpc().Do(req)
	if err != nil {
		if cause := req.Context().Err(); cause != nil && !errors.Is(err, cause) {
			err = fmt.Errorf("%w (%v)", cause, err)
		}
		return nil, err
	}
	return resp, nil
}

// Doc pulls a document's current state. Bodies over the client's wire
// cap fail with ErrResponseTooLarge. Cancel via ctx.
func (c *Client) Doc(ctx context.Context, name string) (*tree.Node, error) {
	req, err := newRequest(ctx, http.MethodGet, c.BaseURL+PathDoc+name, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("peer: fetch %s: %s", name, resp.Status)
	}
	body, err := readAllLimited(resp.Body, c.MaxWire)
	if err != nil {
		return nil, fmt.Errorf("peer: fetch %s: %w", name, err)
	}
	return UnmarshalTree(body)
}

// Delta asks the peer what changed in a document since the anchor digest
// from (empty means no anchor — expect a full answer). The answer is
// DeltaSame, a digest-anchored patch, or the full tree (see Delta).
func (c *Client) Delta(ctx context.Context, name, from string) (Delta, error) {
	u := c.BaseURL + PathDelta + name
	if from != "" {
		u += "?from=" + url.QueryEscape(from)
	}
	req, err := newRequest(ctx, http.MethodGet, u, nil)
	if err != nil {
		return Delta{}, err
	}
	resp, err := c.do(req)
	if err != nil {
		return Delta{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Delta{}, fmt.Errorf("peer: delta %s: %s", name, resp.Status)
	}
	body, err := readAllLimited(resp.Body, c.MaxWire)
	if err != nil {
		return Delta{}, fmt.Errorf("peer: delta %s: %w", name, err)
	}
	return UnmarshalDelta(body)
}

// Hashes pulls the peer's per-document digests ("name=digest;..." from
// PathHash) as a map — the anti-entropy probe.
func (c *Client) Hashes(ctx context.Context) (map[string]string, error) {
	req, err := newRequest(ctx, http.MethodGet, c.BaseURL+PathHash, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("peer: hash %s: %s", c.BaseURL, resp.Status)
	}
	out := make(map[string]string)
	for _, entry := range strings.Split(string(body), ";") {
		if entry == "" {
			continue
		}
		name, digest, ok := strings.Cut(entry, "=")
		if !ok {
			return nil, fmt.Errorf("peer: hash %s: malformed entry %q", c.BaseURL, entry)
		}
		out[name] = digest
	}
	return out, nil
}

// Invoke evaluates a service on the peer: the envelope's input and
// context travel, the service runs against the peer's own documents, and
// the returned forest may itself contain calls (an intensional answer).
func (c *Client) Invoke(ctx context.Context, env Envelope) (tree.Forest, error) {
	data, err := MarshalEnvelope(env)
	if err != nil {
		return nil, err
	}
	return c.invoke(ctx, env.Service, data)
}

// invoke POSTs an already-marshaled envelope. RemoteService uses this
// split directly: the envelope aliases live trees, so it must marshal
// while still holding its gate and release the gate only around this
// network round trip.
func (c *Client) invoke(ctx context.Context, service string, data []byte) (tree.Forest, error) {
	req, err := newRequest(ctx, http.MethodPost, c.BaseURL+PathInvoke,
		bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("peer: remote %s: %w", service, err)
	}
	req.Header.Set("Content-Type", "application/xml")
	resp, err := c.do(req)
	if err != nil {
		return nil, fmt.Errorf("peer: remote %s: %w", service, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// Error bodies carry a short message; read a bounded prefix.
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		return nil, fmt.Errorf("peer: remote %s: %s: %s", service, resp.Status, string(msg))
	}
	body, err := readAllLimited(resp.Body, c.MaxWire)
	if err != nil {
		return nil, fmt.Errorf("peer: remote %s: %w", service, err)
	}
	return UnmarshalForest(body)
}

// Sweep asks the peer for one fair local sweep and reports whether it
// changed anything — the coordinator's per-round probe.
func (c *Client) Sweep(ctx context.Context) (changed bool, err error) {
	req, err := newRequest(ctx, http.MethodPost, c.BaseURL+PathSweep,
		strings.NewReader(""))
	if err != nil {
		return false, err
	}
	req.Header.Set("Content-Type", "text/plain")
	resp, err := c.do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if err != nil {
		return false, err
	}
	if resp.StatusCode != http.StatusOK {
		return false, fmt.Errorf("peer: sweep %s: %s: %s", c.BaseURL, resp.Status, string(body))
	}
	return strings.TrimSpace(string(body)) == "changed", nil
}

// Push delivers a forest to a subscriber's callback endpoint
// (PathPush+id) without delta negotiation — the "legacy sender" mode
// subscribers accept unconditionally. The load generator uses it to
// model push-ingest traffic; Publisher.Flush keeps its own negotiated
// delivery path on top of the same endpoint.
func (c *Client) Push(ctx context.Context, id string, f tree.Forest) error {
	data, err := MarshalForest(f)
	if err != nil {
		return err
	}
	req, err := newRequest(ctx, http.MethodPost, c.BaseURL+PathPush+id,
		bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/xml")
	resp, err := c.do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
		return fmt.Errorf("peer: push %s: %s: %s", id, resp.Status, string(msg))
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
	return nil
}

// FetchDoc pulls a document from a peer. A nil client means the shared
// DefaultClient. Bodies over MaxWireBytes fail with ErrResponseTooLarge.
// Cancel via ctx.
//
// Kept as a thin wrapper over Client.Doc for call sites that touch a
// peer once; persistent callers should hold a Client.
func FetchDoc(ctx context.Context, client *http.Client, baseURL, name string) (*tree.Node, error) {
	return (&Client{BaseURL: baseURL, HTTP: client}).Doc(ctx, name)
}

// FetchDelta asks a peer what changed in a document since the anchor
// digest from (empty means no anchor — expect a full answer). Thin
// wrapper over Client.Delta.
func FetchDelta(ctx context.Context, client *http.Client, baseURL, name, from string) (Delta, error) {
	return (&Client{BaseURL: baseURL, HTTP: client}).Delta(ctx, name, from)
}

// FetchHashes pulls a peer's document digests as a map. Thin wrapper
// over Client.Hashes.
func FetchHashes(ctx context.Context, client *http.Client, baseURL string) (map[string]string, error) {
	return (&Client{BaseURL: baseURL, HTTP: client}).Hashes(ctx)
}
