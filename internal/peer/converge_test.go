package peer

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"axml/internal/core"
	"axml/internal/obs"
)

// The lag clock runs entirely on the local clock: it starts when a
// divergent origin digest is first observed and closes when the local
// digest catches up, so cross-host clock skew never pollutes the
// histogram.
func TestConvergenceLagMeasurement(t *testing.T) {
	reg := obs.NewRegistry()
	cv := newConvergence()
	clock := time.Unix(1000, 0)
	cv.now = func() time.Time { return clock }

	// An anti-entropy probe learns the origin moved ahead; we are behind.
	cv.observe(reg, "d", "aaaa", "bbbb", false)
	if got := cv.docsTracked(); got != 1 {
		t.Fatalf("docsTracked = %d, want 1", got)
	}
	if got := cv.docsBehind(); got != 1 {
		t.Fatalf("docsBehind = %d, want 1", got)
	}
	if got := reg.Histogram("peer.converge.lag_ns").Snapshot().Count; got != 0 {
		t.Fatalf("lag samples before convergence = %d, want 0", got)
	}

	// 150ms later a sync catches the replica up: one lag sample of 150ms.
	clock = clock.Add(150 * time.Millisecond)
	cv.observe(reg, "d", "aaaa", "aaaa", true)
	if got := cv.docsBehind(); got != 0 {
		t.Fatalf("docsBehind after convergence = %d, want 0", got)
	}
	if got := reg.Counter("peer.converge.advances").Value(); got != 1 {
		t.Fatalf("advances = %d, want 1", got)
	}
	lag := reg.Histogram("peer.converge.lag_ns").Snapshot()
	if lag.Count != 1 {
		t.Fatalf("lag samples = %d, want 1", lag.Count)
	}
	if want := int64(150 * time.Millisecond); lag.Max < want || lag.Max > 2*want {
		t.Fatalf("lag sample = %v, want about %v", time.Duration(lag.Max), 150*time.Millisecond)
	}

	// Already-converged observations (steady-state syncs) add no samples.
	clock = clock.Add(time.Second)
	cv.observe(reg, "d", "aaaa", "aaaa", false)
	if got := reg.Histogram("peer.converge.lag_ns").Snapshot().Count; got != 1 {
		t.Fatalf("steady-state sync grew the lag histogram to %d samples", got)
	}

	w := cv.snapshot()["d"]
	if w.origin != "aaaa" || w.local != "aaaa" || w.lastLag != 150*time.Millisecond {
		t.Fatalf("watermark = %+v", w)
	}
}

// Mirror replication feeds the convergence watermarks end to end: after
// a sync the replica's watermark holds the origin digest, the registry
// gauges see the document, and /axml/status reports it converged.
func TestStatusEndpointAndConvergenceGauges(t *testing.T) {
	reg := obs.NewRegistry()
	origin, _, err := Open("origin", core.MustParseSystem(`doc d = a{b{"1"}}`), WithObservability(obs.NewRegistry()))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(origin.Handler())
	defer srv.Close()

	replica, _, err := Open("replica", core.MustParseSystem(`doc d = a`), WithObservability(reg))
	if err != nil {
		t.Fatal(err)
	}
	m := &Mirror{Remote: srv.URL, RemoteDoc: "d", LocalDoc: "d"}
	if _, err := m.Sync(context.Background(), replica); err != nil {
		t.Fatal(err)
	}

	vars := obs.FlattenSnapshot(reg)
	if got := vars["peer.converge.docs"]; got != 1 {
		t.Fatalf("peer.converge.docs = %v, want 1", got)
	}
	if got := vars["peer.converge.behind"]; got != 0 {
		t.Fatalf("peer.converge.behind = %v, want 0", got)
	}
	if got := vars["peer.converge.advances"]; got != 1 {
		t.Fatalf("peer.converge.advances = %v, want 1", got)
	}

	// The status endpoint round-trips through the typed client.
	repSrv := httptest.NewServer(replica.Handler())
	defer repSrv.Close()
	rep, err := NewClient(repSrv.URL, nil).Status(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Peer != "replica" || !rep.Ready {
		t.Fatalf("status = %+v, want ready peer 'replica'", rep)
	}
	if len(rep.Docs) != 1 || rep.Docs[0].Doc != "d" {
		t.Fatalf("status docs = %+v, want [d]", rep.Docs)
	}
	d := rep.Docs[0]
	if !d.Converged || d.OriginDigest == "" || d.OriginDigest != d.LocalDigest {
		t.Fatalf("doc status = %+v, want converged with matching digests", d)
	}
	if d.LastAdvanceMs < 0 {
		t.Fatalf("doc status never advanced: %+v", d)
	}

	// The fleet table renders both peers plus an unreachable line.
	originRep := origin.Status()
	table := FormatFleetStatus([]StatusReport{rep, originRep},
		map[string]error{"gone": context.DeadlineExceeded})
	for _, want := range []string{"PEER", "replica", "origin", "(origin)", "yes", "ready", "gone: unreachable"} {
		if !strings.Contains(table, want) {
			t.Fatalf("fleet table missing %q:\n%s", want, table)
		}
	}
}
