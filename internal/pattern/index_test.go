package pattern

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"axml/internal/tree"
)

// indexTestDoc builds a catalog-shaped document: root → n departments, each
// with m items carrying sku/qty values, plus one "needle" item with a
// unique sku. Shapes like this are where anchored matching pays: the
// needle's candidate list has length 1 while the tree has ~n*m*5 nodes.
func indexTestDoc(n, m int) *tree.Node {
	root := tree.NewLabel("catalog")
	for i := 0; i < n; i++ {
		dept := tree.NewLabel("dept")
		for j := 0; j < m; j++ {
			dept.Add(tree.NewLabel("item",
				tree.NewLabel("sku", tree.NewValue(fmt.Sprintf("sku-%d-%d", i, j))),
				tree.NewLabel("qty", tree.NewValue(fmt.Sprintf("%d", j%7))),
			))
		}
		root.Add(dept)
	}
	root.Children[0].Add(tree.NewLabel("item",
		tree.NewLabel("sku", tree.NewValue("needle")),
		tree.NewLabel("qty", tree.NewValue("1")),
	))
	return root
}

// sortedKeys canonicalizes a result set for order-insensitive comparison.
func sortedKeys(as []Assignment) []string {
	ks := make([]string, len(as))
	for i, a := range as {
		ks[i] = a.Key()
	}
	sort.Strings(ks)
	return ks
}

func sortedStampedKeys(sts []Stamped) []string {
	ks := make([]string, len(sts))
	for i, st := range sts {
		ks[i] = fmt.Sprintf("%s new=%v", st.Asn.Key(), st.New)
	}
	sort.Strings(ks)
	return ks
}

func assertSameAssignments(t *testing.T, naive, indexed []Assignment, what string) {
	t.Helper()
	nk, ik := sortedKeys(naive), sortedKeys(indexed)
	if len(nk) != len(ik) {
		t.Fatalf("%s: naive %d results, indexed %d", what, len(nk), len(ik))
	}
	for i := range nk {
		if nk[i] != ik[i] {
			t.Fatalf("%s: result %d differs:\nnaive   %s\nindexed %s", what, i, nk[i], ik[i])
		}
	}
}

// indexTestPatterns is a spread of shapes: selective anchors, common
// anchors, variable-only patterns (naive fallback), bound-variable anchors,
// tree variables, impossible markings (early reject).
func indexTestPatterns() map[string]*Node {
	return map[string]*Node{
		"needle":     Label("catalog", LVar("d", Label("item", Label("sku", Value("needle")), Label("qty", VVar("q"))))),
		"common":     Label("catalog", Label("dept", Label("item", Label("sku", VVar("s"))))),
		"vars-only":  LVar("r", LVar("c")),
		"tree-var":   Label("catalog", Label("dept", Label("item", TVar("T")))),
		"absent":     Label("catalog", Label("dept", Label("item", Label("sku", Value("no-such-sku"))))),
		"deep-pin":   Label("catalog", Label("dept", Label("item", Label("sku", VVar("s")), Label("qty", Value("1"))))),
		"root-const": Label("catalog", LVar("d")),
	}
}

func TestIndexedMatchEqualsNaive(t *testing.T) {
	doc := indexTestDoc(5, 8)
	ix := NewIndex(doc)
	for name, p := range indexTestPatterns() {
		assertSameAssignments(t, Match(p, doc), ix.Match(p, doc), name)
	}
}

func TestIndexedMatchBoundVarAnchor(t *testing.T) {
	doc := indexTestDoc(5, 8)
	ix := NewIndex(doc)
	// "s" pre-bound to an atom makes the variable node as selective as a
	// constant; the plan may anchor on it.
	p := Label("catalog", LVar("d", Label("item", Label("sku", VVar("s")))))
	base := Assignment{"s": {Atom: "needle"}}
	assertSameAssignments(t, MatchUnder(p, doc, base), ix.MatchUnder(p, doc, base), "bound-var")
}

func TestIndexedMatchSinceEqualsNaive(t *testing.T) {
	doc := indexTestDoc(4, 6)
	// Give distinct stamps to a slice of the document so freshness flags
	// actually vary.
	doc.StampAll(1)
	fresh := tree.NewLabel("item",
		tree.NewLabel("sku", tree.NewValue("sku-0-0")), // duplicate marking, fresh node
		tree.NewLabel("qty", tree.NewValue("1")),
	)
	fresh.StampAll(5)
	doc.Children[1].Add(fresh)
	ix := NewIndex(doc)
	for name, p := range indexTestPatterns() {
		for _, since := range []uint64{0, 1, 4, 10} {
			naive := MatchUnderSince(p, doc, nil, since)
			indexed := ix.MatchUnderSince(p, doc, nil, since)
			nk, ik := sortedStampedKeys(naive), sortedStampedKeys(indexed)
			if len(nk) != len(ik) {
				t.Fatalf("%s since=%d: naive %d results, indexed %d", name, since, len(nk), len(ik))
			}
			for i := range nk {
				if nk[i] != ik[i] {
					t.Fatalf("%s since=%d: result %d differs:\nnaive   %s\nindexed %s", name, since, i, nk[i], ik[i])
				}
			}
		}
	}
}

// TestIndexRootRestriction: matches rooted below the indexed root (deep
// contexts, synthetic input trees) must take the naive path and still be
// correct.
func TestIndexRootRestriction(t *testing.T) {
	doc := indexTestDoc(3, 4)
	ix := NewIndex(doc)
	sub := doc.Children[0] // a dept: not the indexed root
	p := Label("dept", Label("item", Label("sku", Value("needle"))))
	h0, m0 := ix.Stats()
	got := ix.MatchUnder(p, sub, nil)
	h1, m1 := ix.Stats()
	if h1 != h0 || m1 != m0+1 {
		t.Fatalf("non-root match should count one miss: hits %d→%d misses %d→%d", h0, h1, m0, m1)
	}
	assertSameAssignments(t, MatchUnder(p, sub, nil), got, "non-root")
}

func TestIndexHitMissCounters(t *testing.T) {
	doc := indexTestDoc(3, 4)
	ix := NewIndex(doc)

	h0, m0 := ix.Stats()
	ix.Match(Label("catalog", Label("dept", Label("item", Label("sku", Value("needle"))))), doc)
	if h, _ := ix.Stats(); h != h0+1 {
		t.Fatalf("anchored match should count a hit")
	}
	ix.Match(Label("catalog", Label("dept", Label("item", Label("sku", Value("absent-marking"))))), doc)
	if h, _ := ix.Stats(); h != h0+2 {
		t.Fatalf("early reject should count a hit")
	}
	ix.Match(LVar("r", LVar("c")), doc)
	if _, m := ix.Stats(); m != m0+1 {
		t.Fatalf("anchor-free pattern should count a miss")
	}

	var nilIx *Index
	if got := nilIx.Match(Label("catalog"), doc); len(got) != 1 {
		t.Fatalf("nil index should still match naively, got %d results", len(got))
	}
	if h, m := nilIx.Stats(); h != 0 || m != 0 {
		t.Fatalf("nil index stats should be zero")
	}
}

// TestIndexMaintenance drives Add/Remove/Compact the way core's merge does
// and checks the index answers stay equal to the naive walk throughout.
func TestIndexMaintenance(t *testing.T) {
	doc := indexTestDoc(2, 3)
	ix := NewIndex(doc)
	p := Label("catalog", Label("dept", Label("item", Label("sku", VVar("s")))))

	// Grow: append a subtree under dept 0, as a merge attaching fresh
	// results would.
	add := tree.NewLabel("item", tree.NewLabel("sku", tree.NewValue("added-1")))
	doc.Children[0].Add(add)
	ix.AddSubtree(doc.Children[0], add)
	assertSameAssignments(t, Match(p, doc), ix.Match(p, doc), "after add")

	// Prune: detach an item the way merge prunes a dominated sibling.
	dept := doc.Children[1]
	victim := dept.Children[0]
	dept.Children = append([]*tree.Node{}, dept.Children[1:]...)
	ix.RemoveSubtree(victim)
	ix.Compact()
	assertSameAssignments(t, Match(p, doc), ix.Match(p, doc), "after remove")
	// The pruned sku must no longer be reachable through the index.
	gone := Label("catalog", Label("dept", Label("item", Label("sku", Value("sku-1-0")))))
	if got := ix.Match(gone, doc); len(got) != 0 {
		t.Fatalf("pruned subtree still matched: %d results", len(got))
	}

	// A heavy round of removals must survive the forced rebuild path.
	for i := 0; i < 2000; i++ {
		n := tree.NewLabel("churn", tree.NewValue(fmt.Sprintf("%d", i)))
		doc.Children[0].Add(n)
		ix.AddSubtree(doc.Children[0], n)
	}
	kept := doc.Children[0].Children[:0]
	for _, c := range doc.Children[0].Children {
		if c.Name == "churn" {
			ix.RemoveSubtree(c)
			continue
		}
		kept = append(kept, c)
	}
	doc.Children[0].Children = kept
	ix.Compact()
	assertSameAssignments(t, Match(p, doc), ix.Match(p, doc), "after churn")
	if ix.Len() == 0 {
		t.Fatalf("index emptied by compact")
	}
}

func TestIndexSelectivity(t *testing.T) {
	doc := indexTestDoc(3, 4)
	ix := NewIndex(doc)
	needle := Label("item", Label("sku", Value("needle")))
	broad := Label("item", Label("sku", VVar("s")))
	if s := ix.Selectivity(needle); s != 1 {
		t.Fatalf("needle selectivity = %d, want 1", s)
	}
	if ns, bs := ix.Selectivity(needle), ix.Selectivity(broad); ns >= bs {
		t.Fatalf("needle (%d) should be more selective than broad (%d)", ns, bs)
	}
	if s := ix.Selectivity(LVar("x")); s != math.MaxInt {
		t.Fatalf("variable-only selectivity = %d, want MaxInt", s)
	}
	var nilIx *Index
	if s := nilIx.Selectivity(needle); s != math.MaxInt {
		t.Fatalf("nil index selectivity = %d, want MaxInt", s)
	}
}

// TestIndexedMatchRandomized cross-checks on random documents and random
// patterns drawn from the document's own markings.
func TestIndexedMatchRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	labels := []string{"a", "b", "c", "d"}
	values := []string{"u", "v", "w"}
	randTree := func(depth int) *tree.Node {
		var build func(d int) *tree.Node
		build = func(d int) *tree.Node {
			if d == 0 || rng.Intn(4) == 0 {
				return tree.NewValue(values[rng.Intn(len(values))])
			}
			n := tree.NewLabel(labels[rng.Intn(len(labels))])
			for i := 0; i < 1+rng.Intn(3); i++ {
				n.Add(build(d - 1))
			}
			return n
		}
		root := tree.NewLabel("root")
		for i := 0; i < 3+rng.Intn(3); i++ {
			root.Add(build(depth))
		}
		return root
	}
	randPattern := func(depth int) *Node {
		var build func(d int) *Node
		build = func(d int) *Node {
			switch {
			case d == 0 || rng.Intn(4) == 0:
				switch rng.Intn(3) {
				case 0:
					return Value(values[rng.Intn(len(values))])
				case 1:
					return VVar(fmt.Sprintf("v%d", rng.Intn(3)))
				default:
					return TVar(fmt.Sprintf("t%d", rng.Intn(2)))
				}
			case rng.Intn(3) == 0:
				n := LVar(fmt.Sprintf("l%d", rng.Intn(3)))
				for i := 0; i < 1+rng.Intn(2); i++ {
					n.Children = append(n.Children, build(d-1))
				}
				return n
			default:
				n := Label(labels[rng.Intn(len(labels))])
				for i := 0; i < 1+rng.Intn(2); i++ {
					n.Children = append(n.Children, build(d-1))
				}
				return n
			}
		}
		root := Label("root")
		for i := 0; i < 1+rng.Intn(2); i++ {
			root.Children = append(root.Children, build(depth))
		}
		return root
	}
	for trial := 0; trial < 60; trial++ {
		doc := randTree(4)
		ix := NewIndex(doc)
		for pi := 0; pi < 10; pi++ {
			p := randPattern(3)
			if err := p.Validate(); err != nil {
				continue
			}
			assertSameAssignments(t, Match(p, doc), ix.Match(p, doc),
				fmt.Sprintf("trial %d pattern %d: %s", trial, pi, p))
			since := uint64(rng.Intn(3))
			nk := sortedStampedKeys(MatchUnderSince(p, doc, nil, since))
			ik := sortedStampedKeys(ix.MatchUnderSince(p, doc, nil, since))
			if len(nk) != len(ik) {
				t.Fatalf("trial %d pattern %d since %d: naive %d, indexed %d (%s)",
					trial, pi, since, len(nk), len(ik), p)
			}
			for i := range nk {
				if nk[i] != ik[i] {
					t.Fatalf("trial %d pattern %d since %d: %s vs %s (%s)",
						trial, pi, since, nk[i], ik[i], p)
				}
			}
		}
	}
}
