package pattern

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"axml/internal/tree"
)

// legacyKey reimplements the pre-optimization Assignment.Key — sort.Strings
// over a fresh slice, string concatenation, and tree bindings serialized
// through CanonicalString — as the baseline BenchmarkAssignmentKey measures
// the current digest-based implementation against.
func legacyKey(a Assignment) string {
	names := make([]string, 0, len(a))
	for n := range a {
		names = append(names, n)
	}
	sort.Strings(names)
	parts := make([]string, 0, len(names))
	for _, n := range names {
		b := a[n]
		if b.Tree != nil {
			parts = append(parts, n+"=t:"+b.Tree.CanonicalString())
		} else {
			parts = append(parts, n+"=a:"+b.Atom)
		}
	}
	return strings.Join(parts, "|")
}

// benchAssignment mixes atom and tree bindings the way query dedup sees
// them: a few atoms plus a tree variable bound to a non-trivial subtree.
func benchAssignment(treeNodes int) Assignment {
	sub := tree.NewLabel("cd")
	for i := 0; i < treeNodes; i++ {
		sub.Add(tree.NewLabel("track",
			tree.NewValue(fmt.Sprintf("title-%d", i)),
			tree.NewValue(fmt.Sprintf("%d:%02d", i%9, i%60)),
		))
	}
	return Assignment{
		"title":  {Atom: "Naima"},
		"artist": {Atom: "John Coltrane"},
		"style":  {Atom: "Jazz"},
		"T":      {Tree: sub},
	}
}

func BenchmarkAssignmentKey(b *testing.B) {
	for _, nodes := range []int{4, 64} {
		a := benchAssignment(nodes)
		// Warm the digest memo: steady-state dedup rekeys assignments
		// whose subtrees were already hashed during matching.
		_ = a.Key()

		b.Run(fmt.Sprintf("digest/tree-%d", nodes), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = a.Key()
			}
		})
		b.Run(fmt.Sprintf("legacy/tree-%d", nodes), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = legacyKey(a)
			}
		})
	}
}

// TestLegacyKeyAgreement pins the two schemes to the same dedup behavior:
// keys are opaque, so they need not be equal strings, but they must
// distinguish exactly the same assignments.
func TestLegacyKeyAgreement(t *testing.T) {
	a1 := benchAssignment(4)
	a2 := benchAssignment(4)
	a3 := benchAssignment(5)
	if a1.Key() != a2.Key() || legacyKey(a1) != legacyKey(a2) {
		t.Fatal("isomorphic assignments should key equal under both schemes")
	}
	if a1.Key() == a3.Key() || legacyKey(a1) == legacyKey(a3) {
		t.Fatal("distinct assignments should key differently under both schemes")
	}
}
