// Package pattern implements positive AXML tree patterns (Section 3.1 of
// the paper): subtrees of AXML documents in which some labels, function
// names and atomic values are replaced by variables. Four variable kinds
// exist, one per node kind plus tree variables that range over whole
// subtrees:
//
//	%x  label variable      (matches a data node's label)
//	$x  value variable      (matches an atomic value leaf)
//	^f  function variable   (matches a function node's name)
//	#X  tree variable       (matches and captures an entire subtree)
//
// Matching computes all homomorphisms µ such that µ(p) ⊆ d with the
// pattern root mapped to the document root: markings must agree (or bind a
// variable consistently) and every pattern child must map into some
// document child. Different pattern children may map to the same document
// child, exactly as in tree subsumption.
package pattern

import (
	"fmt"
	"slices"
	"strings"

	"axml/internal/tree"
)

// Kind classifies pattern nodes: the three constant node kinds plus the
// four variable kinds.
type Kind uint8

const (
	// ConstLabel matches a data node with exactly this label.
	ConstLabel Kind = iota
	// ConstValue matches an atomic value leaf with exactly this value.
	ConstValue
	// ConstFunc matches a function node calling exactly this service.
	ConstFunc
	// VarLabel binds the label of a data node.
	VarLabel
	// VarValue binds the value of an atomic value leaf.
	VarValue
	// VarFunc binds the name of a function node.
	VarFunc
	// VarTree binds an entire subtree. Tree variables are leaves of the
	// pattern and may occur at most once in a query body (Def 3.1).
	VarTree
)

// IsVar reports whether the kind is one of the four variable kinds.
func (k Kind) IsVar() bool { return k >= VarLabel }

// String returns the human-readable kind name.
func (k Kind) String() string {
	switch k {
	case ConstLabel:
		return "label"
	case ConstValue:
		return "value"
	case ConstFunc:
		return "func"
	case VarLabel:
		return "label-var"
	case VarValue:
		return "value-var"
	case VarFunc:
		return "func-var"
	case VarTree:
		return "tree-var"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Sigil returns the variable sigil used by the concrete syntax for this
// kind, or 0 for constants.
func (k Kind) Sigil() byte {
	switch k {
	case VarLabel:
		return '%'
	case VarValue:
		return '$'
	case VarFunc:
		return '^'
	case VarTree:
		return '#'
	default:
		return 0
	}
}

// Node is a pattern node. For constant kinds Name is the marking; for
// variable kinds Name is the variable name.
type Node struct {
	Kind     Kind
	Name     string
	Children []*Node
}

// Label returns a constant label pattern node.
func Label(name string, children ...*Node) *Node {
	return &Node{Kind: ConstLabel, Name: name, Children: children}
}

// Value returns a constant atomic-value pattern leaf.
func Value(v string) *Node { return &Node{Kind: ConstValue, Name: v} }

// Func returns a constant function-call pattern node.
func Func(name string, children ...*Node) *Node {
	return &Node{Kind: ConstFunc, Name: name, Children: children}
}

// LVar, VVar, FVar and TVar return variable pattern nodes of the four
// kinds. Label and function variables may have children patterns; value
// and tree variables are leaves.
func LVar(name string, children ...*Node) *Node {
	return &Node{Kind: VarLabel, Name: name, Children: children}
}

// VVar returns a value-variable leaf.
func VVar(name string) *Node { return &Node{Kind: VarValue, Name: name} }

// FVar returns a function-variable node.
func FVar(name string, children ...*Node) *Node {
	return &Node{Kind: VarFunc, Name: name, Children: children}
}

// TVar returns a tree-variable leaf.
func TVar(name string) *Node { return &Node{Kind: VarTree, Name: name} }

// FromTree converts a constant AXML tree into the equivalent pattern.
func FromTree(t *tree.Node) *Node {
	if t == nil {
		return nil
	}
	var k Kind
	switch t.Kind {
	case tree.Label:
		k = ConstLabel
	case tree.Value:
		k = ConstValue
	case tree.Func:
		k = ConstFunc
	}
	n := &Node{Kind: k, Name: t.Name}
	for _, c := range t.Children {
		n.Children = append(n.Children, FromTree(c))
	}
	return n
}

// Copy deep-copies the pattern.
func (p *Node) Copy() *Node {
	if p == nil {
		return nil
	}
	c := &Node{Kind: p.Kind, Name: p.Name}
	for _, ch := range p.Children {
		c.Children = append(c.Children, ch.Copy())
	}
	return c
}

// Validate checks pattern well-formedness: value and tree variables and
// constant values must be leaves.
func (p *Node) Validate() error {
	if p == nil {
		return fmt.Errorf("pattern: nil node")
	}
	if (p.Kind == ConstValue || p.Kind == VarValue || p.Kind == VarTree) && len(p.Children) > 0 {
		return fmt.Errorf("pattern: %s node %q must be a leaf", p.Kind, p.Name)
	}
	for _, c := range p.Children {
		if err := c.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Vars collects the variables of the pattern into dst, recording each
// variable's kind. It returns an error if the same variable name is used
// with two different kinds.
func (p *Node) Vars(dst map[string]Kind) error {
	if p == nil {
		return nil
	}
	if p.Kind.IsVar() {
		if prev, ok := dst[p.Name]; ok && prev != p.Kind {
			return fmt.Errorf("pattern: variable %q used both as %s and %s", p.Name, prev, p.Kind)
		}
		dst[p.Name] = p.Kind
	}
	for _, c := range p.Children {
		if err := c.Vars(dst); err != nil {
			return err
		}
	}
	return nil
}

// CountTreeVars returns how many tree-variable occurrences the pattern has.
func (p *Node) CountTreeVars() int {
	if p == nil {
		return 0
	}
	n := 0
	if p.Kind == VarTree {
		n = 1
	}
	for _, c := range p.Children {
		n += c.CountTreeVars()
	}
	return n
}

// IsSimple reports whether the pattern uses no tree variables.
func (p *Node) IsSimple() bool { return p.CountTreeVars() == 0 }

// Size returns the number of pattern nodes.
func (p *Node) Size() int {
	if p == nil {
		return 0
	}
	s := 1
	for _, c := range p.Children {
		s += c.Size()
	}
	return s
}

// String renders the pattern in the concrete syntax.
func (p *Node) String() string {
	var b strings.Builder
	p.write(&b)
	return b.String()
}

func (p *Node) write(b *strings.Builder) {
	switch p.Kind {
	case ConstValue:
		fmt.Fprintf(b, "%q", p.Name)
	case ConstFunc:
		b.WriteByte('!')
		b.WriteString(p.Name)
	case ConstLabel:
		b.WriteString(p.Name)
	default:
		b.WriteByte(p.Kind.Sigil())
		b.WriteString(p.Name)
	}
	if len(p.Children) == 0 {
		return
	}
	b.WriteByte('{')
	for i, c := range p.Children {
		if i > 0 {
			b.WriteByte(',')
		}
		c.write(b)
	}
	b.WriteByte('}')
}

// Binding is the value assigned to one variable: either an atomic string
// (label, value or function name, according to the variable's kind) or a
// subtree for tree variables.
type Binding struct {
	// Tree is non-nil exactly for tree-variable bindings. It aliases a
	// subtree of the matched document; Instantiate copies it.
	Tree *tree.Node
	// Atom holds the bound label, atomic value or function name.
	Atom string
}

func (b Binding) key() string {
	var sb strings.Builder
	b.appendKey(&sb)
	return sb.String()
}

// appendKey writes the binding's identity into sb. Tree bindings are
// keyed by their memoized structural digest — 32 opaque bytes instead of
// a canonical string that re-serializes the subtree on every dedup probe.
// Equal digests mean isomorphic subtrees (see tree.Hash), which is
// exactly the equality Key deduplicates by.
func (b Binding) appendKey(sb *strings.Builder) {
	if b.Tree != nil {
		h := b.Tree.Digest()
		sb.WriteString("t:")
		sb.Write(h[:])
		return
	}
	sb.WriteString("a:")
	sb.WriteString(b.Atom)
}

// keyLen returns the exact length appendKey will write.
func (b Binding) keyLen() int {
	if b.Tree != nil {
		return 2 + len(tree.Hash{})
	}
	return 2 + len(b.Atom)
}

// Assignment maps variable names to bindings (the paper's µ, restricted to
// the variables).
type Assignment map[string]Binding

// Copy returns a shallow copy of the assignment.
func (a Assignment) Copy() Assignment {
	c := make(Assignment, len(a))
	for k, v := range a {
		c[k] = v
	}
	return c
}

// Key returns a canonical string identifying the assignment, used to
// deduplicate matches and to memoize instantiations. The key is opaque:
// tree bindings enter it as structural digests, not as canonical strings
// (see Binding.appendKey), and the buffer is sized exactly once — Key
// sits on the dedup hot path, where every match probes the seen-map.
func (a Assignment) Key() string {
	names := make([]string, 0, len(a))
	size := 0
	for n, b := range a {
		names = append(names, n)
		size += len(n) + b.keyLen() + 2
	}
	slices.Sort(names)
	var sb strings.Builder
	sb.Grow(size)
	for i, n := range names {
		if i > 0 {
			sb.WriteByte('|')
		}
		sb.WriteString(n)
		sb.WriteByte('=')
		a[n].appendKey(&sb)
	}
	return sb.String()
}

// Match returns every assignment µ (restricted to the pattern's variables)
// such that µ(p) ⊆ d with the pattern root mapped to the document root.
// Results are deduplicated.
func Match(p *Node, d *tree.Node) []Assignment {
	return MatchUnder(p, d, nil)
}

// MatchUnder is Match starting from a partial assignment that every
// returned assignment must extend consistently. The base assignment is not
// modified.
func MatchUnder(p *Node, d *tree.Node, base Assignment) []Assignment {
	if p == nil || d == nil {
		return nil
	}
	if base == nil {
		base = Assignment{}
	}
	results := matchNode(p, d, base)
	return dedup(results)
}

func dedup(as []Assignment) []Assignment {
	seen := make(map[string]bool, len(as))
	out := as[:0]
	for _, a := range as {
		k := a.Key()
		if !seen[k] {
			seen[k] = true
			out = append(out, a)
		}
	}
	return out
}

// matchNode returns all extensions of asn under which p maps onto d.
func matchNode(p *Node, d *tree.Node, asn Assignment) []Assignment {
	next, ok := bindMarking(p, d, asn)
	if !ok {
		return nil
	}
	if p.Kind == VarTree {
		return []Assignment{next}
	}
	return matchChildren(p.Children, d, []Assignment{next})
}

// matchChildren requires every pattern child to map into some child of d,
// threading assignments through.
func matchChildren(pcs []*Node, d *tree.Node, asns []Assignment) []Assignment {
	for _, pc := range pcs {
		var extended []Assignment
		for _, asn := range asns {
			for _, dc := range d.Children {
				extended = append(extended, matchNode(pc, dc, asn)...)
			}
		}
		if len(extended) == 0 {
			return nil
		}
		asns = dedup(extended)
	}
	return asns
}

// bindMarking checks marking compatibility of p against d under asn,
// returning the (possibly extended) assignment.
func bindMarking(p *Node, d *tree.Node, asn Assignment) (Assignment, bool) {
	switch p.Kind {
	case ConstLabel:
		return asn, d.Kind == tree.Label && d.Name == p.Name
	case ConstValue:
		return asn, d.Kind == tree.Value && d.Name == p.Name
	case ConstFunc:
		return asn, d.Kind == tree.Func && d.Name == p.Name
	case VarLabel:
		if d.Kind != tree.Label {
			return asn, false
		}
		return bindAtom(p.Name, d.Name, asn)
	case VarValue:
		if d.Kind != tree.Value {
			return asn, false
		}
		return bindAtom(p.Name, d.Name, asn)
	case VarFunc:
		if d.Kind != tree.Func {
			return asn, false
		}
		return bindAtom(p.Name, d.Name, asn)
	case VarTree:
		if prev, ok := asn[p.Name]; ok {
			if prev.Tree == nil || !tree.Isomorphic(prev.Tree, d) {
				return asn, false
			}
			return asn, true
		}
		next := asn.Copy()
		next[p.Name] = Binding{Tree: d}
		return next, true
	default:
		return asn, false
	}
}

func bindAtom(name, atom string, asn Assignment) (Assignment, bool) {
	if prev, ok := asn[name]; ok {
		return asn, prev.Tree == nil && prev.Atom == atom
	}
	next := asn.Copy()
	next[name] = Binding{Atom: atom}
	return next, true
}

// Stamped is an assignment annotated with whether any witnessing
// embedding touches a node stamped after the caller's baseline version.
// Semi-naive evaluation keeps only the New assignments: an assignment
// whose every witness lies entirely in the old part of the document was
// already derivable at the baseline (appends only add fresh-stamped
// nodes and reduction pruning is permanent).
type Stamped struct {
	Asn Assignment
	New bool
}

// MatchUnderSince is MatchUnder with freshness tracking: each returned
// assignment carries New=true iff some embedding witnessing it maps a
// pattern node onto a document node with Stamp > since (for tree
// variables, onto a subtree whose MaxStamp exceeds since). With since=0
// and an unstamped document, every assignment is old.
func MatchUnderSince(p *Node, d *tree.Node, base Assignment, since uint64) []Stamped {
	if p == nil || d == nil {
		return nil
	}
	if base == nil {
		base = Assignment{}
	}
	return dedupStamped(matchNodeSince(p, d, Stamped{Asn: base}, since))
}

// dedupStamped deduplicates by assignment key, OR-ing the New flags: an
// assignment is new iff at least one of its witnessing embeddings is.
func dedupStamped(as []Stamped) []Stamped {
	idx := make(map[string]int, len(as))
	out := as[:0]
	for _, a := range as {
		k := a.Asn.Key()
		if i, ok := idx[k]; ok {
			if a.New {
				out[i].New = true
			}
			continue
		}
		idx[k] = len(out)
		out = append(out, a)
	}
	return out
}

func matchNodeSince(p *Node, d *tree.Node, st Stamped, since uint64) []Stamped {
	next, ok := bindMarking(p, d, st.Asn)
	if !ok {
		return nil
	}
	fresh := st.New
	if p.Kind == VarTree {
		// The bound value is the whole subtree: it is fresh if any of
		// its nodes arrived after the baseline.
		if d.MaxStamp() > since {
			fresh = true
		}
		return []Stamped{{Asn: next, New: fresh}}
	}
	if d.Stamp > since {
		fresh = true
	}
	return matchChildrenSince(p.Children, d, []Stamped{{Asn: next, New: fresh}}, since)
}

func matchChildrenSince(pcs []*Node, d *tree.Node, sts []Stamped, since uint64) []Stamped {
	for _, pc := range pcs {
		var extended []Stamped
		for _, st := range sts {
			for _, dc := range d.Children {
				extended = append(extended, matchNodeSince(pc, dc, st, since)...)
			}
		}
		if len(extended) == 0 {
			return nil
		}
		sts = dedupStamped(extended)
	}
	return sts
}

// Instantiate applies the assignment to a head pattern, producing the tree
// µ(r). Every variable of the head must be bound; tree-variable bindings
// are deep-copied into the result.
func Instantiate(head *Node, asn Assignment) (*tree.Node, error) {
	if head == nil {
		return nil, fmt.Errorf("pattern: nil head")
	}
	switch head.Kind {
	case ConstLabel, ConstValue, ConstFunc:
		var k tree.Kind
		switch head.Kind {
		case ConstLabel:
			k = tree.Label
		case ConstValue:
			k = tree.Value
		case ConstFunc:
			k = tree.Func
		}
		n := &tree.Node{Kind: k, Name: head.Name}
		for _, c := range head.Children {
			cn, err := Instantiate(c, asn)
			if err != nil {
				return nil, err
			}
			n.Children = append(n.Children, cn)
		}
		return n, nil
	case VarTree:
		b, ok := asn[head.Name]
		if !ok || b.Tree == nil {
			return nil, fmt.Errorf("pattern: tree variable #%s unbound in head", head.Name)
		}
		return b.Tree.Copy(), nil
	case VarLabel, VarValue, VarFunc:
		b, ok := asn[head.Name]
		if !ok || b.Tree != nil {
			return nil, fmt.Errorf("pattern: variable %c%s unbound in head", head.Kind.Sigil(), head.Name)
		}
		var k tree.Kind
		switch head.Kind {
		case VarLabel:
			k = tree.Label
		case VarValue:
			k = tree.Value
		case VarFunc:
			k = tree.Func
		}
		n := &tree.Node{Kind: k, Name: b.Atom}
		for _, c := range head.Children {
			cn, err := Instantiate(c, asn)
			if err != nil {
				return nil, err
			}
			n.Children = append(n.Children, cn)
		}
		return n, nil
	default:
		return nil, fmt.Errorf("pattern: cannot instantiate node of kind %s", head.Kind)
	}
}
