// Index-accelerated pattern matching: a per-document inverted index from
// interned marking symbols to the document nodes carrying them, plus
// parent links, lets Match start from the rarest constant "anchor" of a
// pattern — the atom with the fewest candidate nodes — and verify the
// few candidate embeddings upward to the root, instead of walking the
// whole tree top-down. This is the anchor-driven, statistics-free
// ordering idea of the janus-datalog line of work applied to tree
// homomorphisms: candidate-list lengths are the only "statistics", and
// they are maintained exactly, for free, as the document grows.
package pattern

import (
	"math"
	"sync/atomic"

	"axml/internal/tree"
)

// Index is a per-document inverted index: every node of one document
// tree, keyed by its interned (Kind, Name) symbol, plus parent links.
// Documents only grow by least-upper-bound merge, so maintenance is
// append-only (AddSubtree) except for the local pruning a merge performs
// on newly-dominated siblings (RemoveSubtree); pruned nodes are deleted
// from the parent map immediately and swept from the candidate lists by
// an amortized rebuild.
//
// Concurrency: lookups and matches may run concurrently with each other
// (they only read, plus two atomic counters); AddSubtree/RemoveSubtree
// require exclusive access, which the engine provides by mutating only
// under the system's version-funnel write lock.
type Index struct {
	root  *tree.Node
	bySym map[tree.Sym][]*tree.Node
	// parent links every live indexed node to its parent (the root has no
	// entry). Detached nodes are removed, so "present in parent (or being
	// the root)" doubles as the liveness check candidate verification uses.
	parent map[*tree.Node]*tree.Node
	// live and dead count the indexed nodes and the detached entries not
	// yet swept from bySym lists; dead > live/2 triggers a rebuild.
	live, dead int

	// hits counts matches answered through the index (anchored matching or
	// an empty-candidate early reject); misses counts matches on this
	// index that fell back to the naive walk (no usable anchor, or an
	// anchor too common to beat the walk). Atomic; readable via Stats.
	hits, misses atomic.Uint64
}

// NewIndex builds the index of the tree rooted at root.
func NewIndex(root *tree.Node) *Index {
	ix := &Index{}
	ix.rebuild(root)
	return ix
}

func (ix *Index) rebuild(root *tree.Node) {
	ix.root = root
	ix.bySym = make(map[tree.Sym][]*tree.Node)
	ix.parent = make(map[*tree.Node]*tree.Node)
	ix.live, ix.dead = 0, 0
	root.Walk(func(n, parent *tree.Node) bool {
		s := n.Sym()
		ix.bySym[s] = append(ix.bySym[s], n)
		if parent != nil {
			ix.parent[n] = parent
		}
		ix.live++
		return true
	})
}

// Root returns the indexed document root.
func (ix *Index) Root() *tree.Node {
	if ix == nil {
		return nil
	}
	return ix.root
}

// Len returns the number of live indexed nodes.
func (ix *Index) Len() int {
	if ix == nil {
		return 0
	}
	return ix.live
}

// Stats returns the cumulative hit/miss counters: matches served through
// the index versus matches that fell back to the naive walk.
func (ix *Index) Stats() (hits, misses uint64) {
	if ix == nil {
		return 0, 0
	}
	return ix.hits.Load(), ix.misses.Load()
}

// AddSubtree indexes the subtree rooted at child, just appended under
// parent (which must already be indexed — the root or a live node).
func (ix *Index) AddSubtree(parent, child *tree.Node) {
	if ix == nil || child == nil {
		return
	}
	child.Walk(func(n, p *tree.Node) bool {
		s := n.Sym()
		ix.bySym[s] = append(ix.bySym[s], n)
		if p == nil {
			p = parent
		}
		ix.parent[n] = p
		ix.live++
		return true
	})
}

// RemoveSubtree unindexes the subtree rooted at child after a merge
// pruned it (a sibling newly subsumes it). Parent links are deleted
// eagerly — they are the liveness check — while the bySym lists keep the
// dead entries until Compact sweeps them. Safe to call while the
// document's child lists are mid-rewrite: only the detached subtree is
// walked.
func (ix *Index) RemoveSubtree(child *tree.Node) {
	if ix == nil || child == nil {
		return
	}
	child.Walk(func(n, _ *tree.Node) bool {
		if _, ok := ix.parent[n]; ok {
			delete(ix.parent, n)
			ix.live--
			ix.dead++
		}
		return true
	})
}

// Compact rebuilds the index when enough dead entries accumulated in the
// candidate lists to matter (they cost one failed liveness probe each at
// match time). Callers invoke it after a batch of removals, with the
// document in a consistent state — never mid-rewrite.
func (ix *Index) Compact() {
	if ix == nil {
		return
	}
	if ix.dead > 1024 && ix.dead > ix.live/2 {
		ix.rebuild(ix.root)
	}
}

// CandidateCount returns the number of indexed occurrences of the given
// marking (including not-yet-swept dead entries, so it is an upper
// bound — exactly what a selectivity estimate needs).
func (ix *Index) CandidateCount(kind tree.Kind, name string) int {
	if ix == nil {
		return 0
	}
	return len(ix.bySym[tree.Intern(kind, name)])
}

// Selectivity estimates how selective a pattern is on this index: the
// length of the shortest candidate list over the pattern's constant
// nodes (0 is maximally selective — the pattern cannot match). A pattern
// with no constant node, or a nil index, reports math.MaxInt (no
// information). Query planners use this to order conjunctive atoms.
func (ix *Index) Selectivity(p *Node) int {
	if ix == nil {
		return math.MaxInt
	}
	best := math.MaxInt
	var walk func(n *Node)
	walk = func(n *Node) {
		if s, ok := anchorSym(n, nil); ok {
			if c := len(ix.bySym[s]); c < best {
				best = c
			}
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	if p != nil {
		walk(p)
	}
	return best
}

// planKind classifies how a match against this index should run.
type planKind uint8

const (
	planNaive    planKind = iota // no usable anchor: walk the tree
	planAnchored                 // enumerate the anchor's candidate list
	planReject                   // an anchor has zero candidates: no match
)

// anchorPlan is a chosen anchor: the pattern spine from the root to the
// anchor node (len ≥ 2; the anchor sits at depth len-1) and the interned
// symbol its images must carry.
type anchorPlan struct {
	spine []*Node
	sym   tree.Sym
	count int
}

// plan picks the rarest usable anchor of p: a constant node — or a
// variable already bound to an atom in base, which is just as selective —
// at depth ≥ 1, with the shortest candidate list. Depth-0 nodes cannot
// anchor (their image is the match root, checked in O(1) by bindMarking
// anyway). Returns planReject when some required marking has no
// occurrence at all, planNaive when no anchor exists or the best one is
// too common to beat the walk.
func (ix *Index) plan(p *Node, base Assignment) (anchorPlan, planKind) {
	best := anchorPlan{count: -1}
	var path []*Node
	var walk func(n *Node)
	walk = func(n *Node) {
		path = append(path, n)
		if len(path) > 1 {
			if s, ok := anchorSym(n, base); ok {
				c := len(ix.bySym[s])
				if best.count < 0 || c < best.count {
					best = anchorPlan{spine: append([]*Node(nil), path...), sym: s, count: c}
				}
			}
		}
		for _, c := range n.Children {
			walk(c)
		}
		path = path[:len(path)-1]
	}
	walk(p)
	switch {
	case best.count < 0:
		return best, planNaive
	case best.count == 0:
		return best, planReject
	case best.count*4 >= ix.live+ix.dead:
		// The rarest anchor covers a quarter of the document: candidate
		// enumeration would approximate the naive walk with extra map
		// traffic. Let the walk run.
		return best, planNaive
	default:
		return best, planAnchored
	}
}

// anchorSym returns the document symbol images of n must carry, when n is
// selective: a constant, or an atom variable bound in base.
func anchorSym(n *Node, base Assignment) (tree.Sym, bool) {
	switch n.Kind {
	case ConstLabel:
		return tree.Intern(tree.Label, n.Name), true
	case ConstValue:
		return tree.Intern(tree.Value, n.Name), true
	case ConstFunc:
		return tree.Intern(tree.Func, n.Name), true
	case VarLabel, VarValue, VarFunc:
		b, ok := base[n.Name]
		if !ok || b.Tree != nil {
			return 0, false
		}
		var k tree.Kind
		switch n.Kind {
		case VarLabel:
			k = tree.Label
		case VarValue:
			k = tree.Value
		default:
			k = tree.Func
		}
		return tree.Intern(k, b.Atom), true
	default:
		return 0, false
	}
}

// spineTo resolves the document spine a candidate anchor image forces:
// the parent chain c, parent(c), ... up to the match root d (the indexed
// root). k is the anchor depth (≥ 1); the returned slice has length k+1
// with dspine[0] = d and dspine[k] = c. Resolution fails when the chain
// leaves the index (c was pruned by a merge), is too short, or does not
// end at d.
func (ix *Index) spineTo(c *tree.Node, k int, d *tree.Node) ([]*tree.Node, bool) {
	dspine := make([]*tree.Node, k+1)
	dspine[0] = d
	dspine[k] = c
	x := c
	for i := k - 1; i >= 1; i-- {
		p, ok := ix.parent[x]
		if !ok {
			return nil, false
		}
		dspine[i] = p
		x = p
	}
	if p, ok := ix.parent[x]; ok && p == d {
		return dspine, true
	}
	return nil, false
}

// MatchUnder is pattern.MatchUnder accelerated by the index: when the
// match root is the indexed document root and p has a selective anchor,
// only the anchor's candidate embeddings are verified; otherwise the
// naive walk runs. The root restriction is deliberate — a match rooted
// below the document root (a deep context, a synthetic input node) scans
// a subtree that may be far smaller than the anchor's document-wide
// candidate list, where the walk already wins. A nil *Index degrades to
// the naive walk, so callers thread optional indexes without branching.
// Results are identical to pattern.MatchUnder in all cases.
func (ix *Index) MatchUnder(p *Node, d *tree.Node, base Assignment) []Assignment {
	if p == nil || d == nil {
		return nil
	}
	if base == nil {
		base = Assignment{}
	}
	if ix != nil && d == ix.root {
		plan, kind := ix.plan(p, base)
		switch kind {
		case planReject:
			ix.hits.Add(1)
			return nil
		case planAnchored:
			ix.hits.Add(1)
			k := len(plan.spine) - 1
			var results []Assignment
			for _, c := range ix.bySym[plan.sym] {
				dspine, ok := ix.spineTo(c, k, d)
				if !ok {
					continue
				}
				results = append(results, matchSpine(plan.spine, dspine, 0, base)...)
			}
			return dedup(results)
		}
	}
	if ix != nil {
		ix.misses.Add(1)
	}
	return dedup(matchNode(p, d, base))
}

// Match is MatchUnder with an empty base.
func (ix *Index) Match(p *Node, d *tree.Node) []Assignment {
	return ix.MatchUnder(p, d, nil)
}

// MatchUnderSince is pattern.MatchUnderSince accelerated by the index;
// see MatchUnder for the anchoring strategy and Stamped for the
// freshness semantics. Results (including New flags) are identical to
// pattern.MatchUnderSince.
func (ix *Index) MatchUnderSince(p *Node, d *tree.Node, base Assignment, since uint64) []Stamped {
	if p == nil || d == nil {
		return nil
	}
	if base == nil {
		base = Assignment{}
	}
	if ix != nil && d == ix.root {
		plan, kind := ix.plan(p, base)
		switch kind {
		case planReject:
			ix.hits.Add(1)
			return nil
		case planAnchored:
			ix.hits.Add(1)
			k := len(plan.spine) - 1
			var results []Stamped
			for _, c := range ix.bySym[plan.sym] {
				dspine, ok := ix.spineTo(c, k, d)
				if !ok {
					continue
				}
				results = append(results, matchSpineSince(plan.spine, dspine, 0, Stamped{Asn: base}, since)...)
			}
			return dedupStamped(results)
		}
	}
	if ix != nil {
		ix.misses.Add(1)
	}
	return dedupStamped(matchNodeSince(p, d, Stamped{Asn: base}, since))
}

// matchSpine matches the pattern spine against the forced document spine:
// pspine[i] must map exactly onto dspine[i] (the anchor's image chain is
// unique because every pattern edge descends exactly one level), while
// every off-spine pattern child matches freely — possibly onto the spine
// child too, exactly as in tree subsumption.
func matchSpine(pspine []*Node, dspine []*tree.Node, i int, asn Assignment) []Assignment {
	p, d := pspine[i], dspine[i]
	next, ok := bindMarking(p, d, asn)
	if !ok {
		return nil
	}
	if i == len(pspine)-1 {
		// The anchor itself: its pattern children (if any) match freely
		// below its image.
		return matchChildren(p.Children, d, []Assignment{next})
	}
	// Forced spine child first — it is the selective one — then the
	// remaining children against all of d's children.
	asns := matchSpine(pspine, dspine, i+1, next)
	if len(asns) == 0 {
		return nil
	}
	if rest := offSpine(p, pspine[i+1]); len(rest) > 0 {
		asns = matchChildren(rest, d, asns)
	}
	return asns
}

// matchSpineSince is matchSpine with freshness tracking (see Stamped).
func matchSpineSince(pspine []*Node, dspine []*tree.Node, i int, st Stamped, since uint64) []Stamped {
	p, d := pspine[i], dspine[i]
	next, ok := bindMarking(p, d, st.Asn)
	if !ok {
		return nil
	}
	fresh := st.New
	if d.Stamp > since {
		fresh = true
	}
	if i == len(pspine)-1 {
		return matchChildrenSince(p.Children, d, []Stamped{{Asn: next, New: fresh}}, since)
	}
	sts := matchSpineSince(pspine, dspine, i+1, Stamped{Asn: next, New: fresh}, since)
	if len(sts) == 0 {
		return nil
	}
	if rest := offSpine(p, pspine[i+1]); len(rest) > 0 {
		sts = matchChildrenSince(rest, d, sts, since)
	}
	return sts
}

// offSpine returns p's children minus one occurrence (by identity) of the
// spine child.
func offSpine(p *Node, spineChild *Node) []*Node {
	for i, c := range p.Children {
		if c == spineChild {
			rest := make([]*Node, 0, len(p.Children)-1)
			rest = append(rest, p.Children[:i]...)
			return append(rest, p.Children[i+1:]...)
		}
	}
	return p.Children
}
