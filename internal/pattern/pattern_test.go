package pattern_test

import (
	"testing"

	"axml/internal/pattern"
	"axml/internal/syntax"
	"axml/internal/tree"
)

func doc(t *testing.T, s string) *tree.Node {
	t.Helper()
	n, err := syntax.ParseDocument(s)
	if err != nil {
		t.Fatalf("doc %q: %v", s, err)
	}
	return n
}

func pat(t *testing.T, s string) *pattern.Node {
	t.Helper()
	p, err := syntax.ParsePattern(s)
	if err != nil {
		t.Fatalf("pattern %q: %v", s, err)
	}
	return p
}

func TestMatchConstants(t *testing.T) {
	d := doc(t, `a{b{c},d}`)
	if got := pattern.Match(pat(t, `a{b}`), d); len(got) != 1 {
		t.Fatalf("constant match: %d assignments", len(got))
	}
	if got := pattern.Match(pat(t, `a{b{c},d}`), d); len(got) != 1 {
		t.Fatalf("full constant match: %d", len(got))
	}
	if got := pattern.Match(pat(t, `a{e}`), d); got != nil {
		t.Fatalf("should not match: %v", got)
	}
	// Root must map to root.
	if got := pattern.Match(pat(t, `b{c}`), d); got != nil {
		t.Fatalf("non-root match accepted: %v", got)
	}
}

func TestMatchHomomorphismMayMergeSiblings(t *testing.T) {
	// Two pattern children may map onto the same document child.
	d := doc(t, `a{b{c,d}}`)
	if got := pattern.Match(pat(t, `a{b{c},b{d}}`), d); len(got) != 1 {
		t.Fatalf("merging homomorphism rejected: %d", len(got))
	}
}

func TestMatchValueVariable(t *testing.T) {
	d := doc(t, `r{t{a{1},b{2}},t{a{2},b{3}}}`)
	got := pattern.Match(pat(t, `r{t{a{$x},b{$y}}}`), d)
	if len(got) != 2 {
		t.Fatalf("assignments = %d, want 2", len(got))
	}
	seen := map[string]bool{}
	for _, a := range got {
		seen[a["x"].Atom+"-"+a["y"].Atom] = true
	}
	if !seen["1-2"] || !seen["2-3"] {
		t.Fatalf("bindings = %v", seen)
	}
}

func TestMatchJoinVariable(t *testing.T) {
	d := doc(t, `r{t{a{1},b{2}},t{a{2},b{3}},t{a{5},b{6}}}`)
	// Join within one pattern: pairs t(x,z), t(z,y).
	got := pattern.Match(pat(t, `r{t{a{$x},b{$z}},t{a{$z},b{$y}}}`), d)
	if len(got) != 1 {
		t.Fatalf("join results = %d, want 1", len(got))
	}
	a := got[0]
	if a["x"].Atom != "1" || a["z"].Atom != "2" || a["y"].Atom != "3" {
		t.Fatalf("join binding = %v", a)
	}
}

func TestMatchLabelAndFuncVariables(t *testing.T) {
	d := doc(t, `r{t{a{1},b{2},k{6}},!GetRating{"x"}}`)
	labels := pattern.Match(pat(t, `r{t{%l}}`), d)
	if len(labels) != 3 {
		t.Fatalf("label var matches = %d, want 3", len(labels))
	}
	funcs := pattern.Match(pat(t, `r{^f}`), d)
	if len(funcs) != 1 || funcs[0]["f"].Atom != "GetRating" {
		t.Fatalf("func var matches = %v", funcs)
	}
	// Label variables must not match values or function nodes.
	if got := pattern.Match(pat(t, `r{t{a{%v}}}`), d); got != nil {
		t.Fatalf("label var matched a value: %v", got)
	}
}

func TestMatchTreeVariablePaperExample31(t *testing.T) {
	// Example 3.1: z :- d'/a{x}, d/r{t{a{x},b{z}}} with label variable z
	// gives {c,d,e}; with tree variable Z gives the subtree forest.
	d := doc(t, `r{t{a{1},b{c{2},d{3}}},t{a{1},b{c{3},e{3}}},t{a{2},b{c{2},k{6}}}}`)
	dp := doc(t, `a{1}`)

	// Simulate the two-atom body by matching d' first.
	asns := pattern.Match(pat(t, `a{$x}`), dp)
	if len(asns) != 1 {
		t.Fatalf("d' match = %d", len(asns))
	}
	labelRes := pattern.MatchUnder(pat(t, `r{t{a{$x},b{%z}}}`), d, asns[0])
	zs := map[string]bool{}
	for _, a := range labelRes {
		zs[a["z"].Atom] = true
	}
	if len(zs) != 3 || !zs["c"] || !zs["d"] || !zs["e"] {
		t.Fatalf("label-variable result = %v, want {c,d,e}", zs)
	}

	treeRes := pattern.MatchUnder(pat(t, `r{t{a{$x},b{#Z}}}`), d, asns[0])
	trees := map[string]bool{}
	for _, a := range treeRes {
		trees[a["Z"].Tree.CanonicalString()] = true
	}
	want := []string{`c{"2"}`, `d{"3"}`, `c{"3"}`, `e{"3"}`}
	if len(trees) != 4 {
		t.Fatalf("tree-variable results = %v", trees)
	}
	for _, w := range want {
		if !trees[w] {
			t.Fatalf("missing %s in %v", w, trees)
		}
	}
}

func TestMatchDeduplicates(t *testing.T) {
	d := doc(t, `a{b{c},b{c}}`)
	got := pattern.Match(pat(t, `a{b{%x}}`), d)
	if len(got) != 1 {
		t.Fatalf("duplicate assignments not deduplicated: %d", len(got))
	}
}

func TestMatchUnderConsistency(t *testing.T) {
	d := doc(t, `r{a{1},a{2}}`)
	base := pattern.Assignment{"x": pattern.Binding{Atom: "2"}}
	got := pattern.MatchUnder(pat(t, `r{a{$x}}`), d, base)
	if len(got) != 1 || got[0]["x"].Atom != "2" {
		t.Fatalf("MatchUnder ignored base binding: %v", got)
	}
	if base["x"].Atom != "2" || len(base) != 1 {
		t.Fatal("MatchUnder modified the base assignment")
	}
}

func TestInstantiate(t *testing.T) {
	asn := pattern.Assignment{
		"x": {Atom: "1"},
		"l": {Atom: "lab"},
		"f": {Atom: "Svc"},
		"T": {Tree: doc(t, `sub{"v"}`)},
	}
	head := pat(t, `out{$x,%l{c},^f,#T}`)
	got, err := pattern.Instantiate(head, asn)
	if err != nil {
		t.Fatal(err)
	}
	want := doc(t, `out{"1",lab{c},!Svc,sub{"v"}}`)
	if !tree.Isomorphic(got, want) {
		t.Fatalf("Instantiate = %s, want %s", got.CanonicalString(), want.CanonicalString())
	}
	// Tree binding must be copied, not aliased.
	got.Walk(func(n, _ *tree.Node) bool {
		if n.Name == "sub" {
			n.Name = "mutated"
		}
		return true
	})
	if asn["T"].Tree.Name == "mutated" {
		t.Fatal("Instantiate aliased the tree binding")
	}
}

func TestInstantiateUnbound(t *testing.T) {
	if _, err := pattern.Instantiate(pat(t, `a{$x}`), pattern.Assignment{}); err == nil {
		t.Fatal("unbound value variable accepted")
	}
	if _, err := pattern.Instantiate(pat(t, `a{#T}`), pattern.Assignment{}); err == nil {
		t.Fatal("unbound tree variable accepted")
	}
	if _, err := pattern.Instantiate(nil, pattern.Assignment{}); err == nil {
		t.Fatal("nil head accepted")
	}
}

func TestFromTree(t *testing.T) {
	d := doc(t, `a{"v",!f{x}}`)
	p := pattern.FromTree(d)
	got := pattern.Match(p, d)
	if len(got) != 1 {
		t.Fatalf("FromTree pattern should match its source: %v", got)
	}
	if p.CountTreeVars() != 0 || !p.IsSimple() {
		t.Fatal("FromTree produced variables")
	}
}

func TestVarsKindConflict(t *testing.T) {
	p := &pattern.Node{Kind: pattern.ConstLabel, Name: "a", Children: []*pattern.Node{
		pattern.VVar("x"), pattern.LVar("x"),
	}}
	if err := p.Vars(map[string]pattern.Kind{}); err == nil {
		t.Fatal("kind conflict not detected")
	}
}

func TestAssignmentKeyAndCopy(t *testing.T) {
	a := pattern.Assignment{"x": {Atom: "1"}, "y": {Tree: doc(t, `a{b}`)}}
	b := pattern.Assignment{"y": {Tree: doc(t, `a{b}`)}, "x": {Atom: "1"}}
	if a.Key() != b.Key() {
		t.Fatal("assignment key is order dependent")
	}
	c := a.Copy()
	c["x"] = pattern.Binding{Atom: "2"}
	if a["x"].Atom != "1" {
		t.Fatal("Copy shares storage")
	}
}

func TestPatternStringRoundTrip(t *testing.T) {
	src := `out{$x,%l{c},^f,#T,"lit",!G{$x}}`
	p := pat(t, src)
	back := pat(t, p.String())
	if back.String() != p.String() {
		t.Fatalf("round trip: %q -> %q", p.String(), back.String())
	}
}

func TestPatternCopyAndSize(t *testing.T) {
	p := pat(t, `a{b{$x},#T}`)
	c := p.Copy()
	c.Children[0].Name = "zzz"
	if p.Children[0].Name == "zzz" {
		t.Fatal("Copy shares nodes")
	}
	if p.Size() != 4 {
		t.Fatalf("Size = %d", p.Size())
	}
	if p.IsSimple() {
		t.Fatal("pattern with tree var reported simple")
	}
}
