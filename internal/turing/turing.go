// Package turing implements the Turing-machine embedding of Lemma 3.1:
// any (non-cycling) Turing machine can be simulated by a positive AXML
// system. Tapes are encoded as "line trees", configurations as trees
// holding the state and the two half-tapes, and each machine transition
// becomes a non-simple positive service (tree variables copy the untouched
// parts of the tape). All configurations the machine goes through
// accumulate monotonically in a single document; a final service emits the
// output tape of accepting configurations.
//
// The undecidability of termination for positive systems (Corollary 3.1)
// follows from this embedding; the package makes it concrete and testable.
package turing

import (
	"fmt"
	"strings"

	"axml/internal/core"
	"axml/internal/pattern"
	"axml/internal/query"
	"axml/internal/tree"
)

// Move is a head direction.
type Move int8

// Head directions.
const (
	Left  Move = -1
	Right Move = 1
)

// Rule is one transition: in state State reading Read, write Write, move
// the head, and enter Next.
type Rule struct {
	State string
	Read  string
	Write string
	Move  Move
	Next  string
}

// Machine is a deterministic single-tape Turing machine, semi-formally:
// determinism is not enforced, but simulation and interpretation both
// apply every applicable rule (the paper's setting is non-cycling
// machines, where this is harmless).
type Machine struct {
	// Name is used to derive document and service names.
	Name string
	// Start and Accept are the initial and accepting states.
	Start  string
	Accept string
	// Blank is the blank tape symbol.
	Blank string
	// Rules are the transitions. No rule may leave Accept.
	Rules []Rule
}

// Validate checks basic machine sanity.
func (m *Machine) Validate() error {
	if m.Start == "" || m.Accept == "" || m.Blank == "" {
		return fmt.Errorf("turing: machine needs start, accept and blank")
	}
	for _, r := range m.Rules {
		if r.State == m.Accept {
			return fmt.Errorf("turing: rule leaves the accepting state %q", m.Accept)
		}
		if r.Move != Left && r.Move != Right {
			return fmt.Errorf("turing: rule has invalid move %d", r.Move)
		}
	}
	return nil
}

// config is an interpreter configuration: left is reversed (nearest cell
// first); right begins with the cell under the head.
type config struct {
	state string
	left  []string
	right []string
}

// Run interprets the machine directly (the ground-truth baseline for the
// AXML simulation). It returns the content of the right half-tape at
// acceptance (head cell onward, trailing blanks trimmed) and whether the
// machine accepted within maxSteps.
func (m *Machine) Run(input []string, maxSteps int) ([]string, bool) {
	c := config{state: m.Start, right: append([]string(nil), input...)}
	for step := 0; step < maxSteps; step++ {
		if c.state == m.Accept {
			return trimBlanks(c.right, m.Blank), true
		}
		read := m.Blank
		if len(c.right) > 0 {
			read = c.right[0]
		}
		applied := false
		for _, r := range m.Rules {
			if r.State != c.state || r.Read != read {
				continue
			}
			applied = true
			rest := c.right
			if len(rest) > 0 {
				rest = rest[1:]
			}
			if r.Move == Right {
				c = config{
					state: r.Next,
					left:  append([]string{r.Write}, c.left...),
					right: rest,
				}
			} else {
				prev := m.Blank
				pl := c.left
				if len(pl) > 0 {
					prev, pl = pl[0], pl[1:]
				}
				c = config{
					state: r.Next,
					left:  pl,
					right: append([]string{prev, r.Write}, rest...),
				}
			}
			break
		}
		if !applied {
			return nil, false
		}
	}
	return nil, false
}

func trimBlanks(tape []string, blank string) []string {
	end := len(tape)
	for end > 0 && tape[end-1] == blank {
		end--
	}
	return append([]string(nil), tape[:end]...)
}

// EncodeTape builds the line tree of a half-tape: cells become
// c{sym{"x"}, rest{...}} nested, terminated by e.
func EncodeTape(cells []string) *tree.Node {
	n := tree.NewLabel("e")
	for i := len(cells) - 1; i >= 0; i-- {
		n = tree.NewLabel("c",
			tree.NewLabel("sym", tree.NewValue(cells[i])),
			tree.NewLabel("rest", n),
		)
	}
	return n
}

// DecodeTape reads a line tree back into cells. It fails on malformed
// trees.
func DecodeTape(n *tree.Node) ([]string, error) {
	var out []string
	for {
		if n == nil {
			return nil, fmt.Errorf("turing: nil line tree")
		}
		if n.Kind == tree.Label && n.Name == "e" {
			return out, nil
		}
		if n.Kind != tree.Label || n.Name != "c" {
			return nil, fmt.Errorf("turing: expected cell, found %s", n.Name)
		}
		var sym string
		var rest *tree.Node
		for _, ch := range n.Children {
			switch ch.Name {
			case "sym":
				if len(ch.Children) != 1 {
					return nil, fmt.Errorf("turing: malformed sym")
				}
				sym = ch.Children[0].Name
			case "rest":
				if len(ch.Children) != 1 {
					return nil, fmt.Errorf("turing: malformed rest")
				}
				rest = ch.Children[0]
			}
		}
		if rest == nil {
			return nil, fmt.Errorf("turing: cell without rest")
		}
		out = append(out, sym)
		n = rest
	}
}

// encodeConfig builds config{state{"q"}, left{L}, right{R}}.
func encodeConfig(state string, left, right []string) *tree.Node {
	return tree.NewLabel("config",
		tree.NewLabel("state", tree.NewValue(state)),
		tree.NewLabel("left", EncodeTape(left)),
		tree.NewLabel("right", EncodeTape(right)),
	)
}

// TapeDoc is the document name used by Compile.
const TapeDoc = "tape"

// Compile builds the positive AXML system simulating the machine on the
// given input. The system has one document, TapeDoc, holding the initial
// configuration and one call per transition service; fair rewriting makes
// the configurations accumulate. The services are non-simple (tree
// variables copy half-tapes), as in the paper's proof.
func Compile(m *Machine, input []string) (*core.System, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	s := core.NewSystem()
	var queries []*query.Query
	for i, r := range m.Rules {
		queries = append(queries, transitionQuery(fmt.Sprintf("step%d", i), r))
	}
	queries = append(queries, extendRightQuery(m.Blank), extendLeftQuery(m.Blank))

	root := tree.NewLabel("configs", encodeConfig(m.Start, nil, input))
	for _, q := range queries {
		root.Children = append(root.Children, tree.NewFunc(q.Name))
	}
	if err := s.AddDocument(tree.NewDocument(TapeDoc, tree.NewLabel("run", root))); err != nil {
		return nil, err
	}
	for _, q := range queries {
		if err := s.AddQuery(q); err != nil {
			return nil, err
		}
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// cellPat builds the pattern c{sym{"x"}, rest{R}}.
func cellPat(sym string, rest *pattern.Node) *pattern.Node {
	return pattern.Label("c",
		pattern.Label("sym", pattern.Value(sym)),
		pattern.Label("rest", rest),
	)
}

// cellPatVar is cellPat with a value variable for the symbol.
func cellPatVar(symVar string, rest *pattern.Node) *pattern.Node {
	return pattern.Label("c",
		pattern.Label("sym", pattern.VVar(symVar)),
		pattern.Label("rest", rest),
	)
}

func configPat(state *pattern.Node, left, right *pattern.Node) *pattern.Node {
	return pattern.Label("config",
		pattern.Label("state", state),
		pattern.Label("left", left),
		pattern.Label("right", right),
	)
}

// transitionQuery builds the service for one rule.
//
// Right move:  config{p, left{c{b,L}},  right{R}}        :- config{q, left{L}, right{c{a,R}}}
// Left move:   config{p, left{L},       right{c{x,c{b,R}}}} :- config{q, left{c{x,L}}, right{c{a,R}}}
func transitionQuery(name string, r Rule) *query.Query {
	bodyRight := cellPat(r.Read, pattern.TVar("R"))
	var head *pattern.Node
	var bodyLeft *pattern.Node
	if r.Move == Right {
		bodyLeft = pattern.TVar("L")
		head = configPat(
			pattern.Value(r.Next),
			cellPat(r.Write, pattern.TVar("L")),
			pattern.TVar("R"),
		)
	} else {
		bodyLeft = cellPatVar("x", pattern.TVar("L"))
		head = configPat(
			pattern.Value(r.Next),
			pattern.TVar("L"),
			cellPatVar("x", cellPat(r.Write, pattern.TVar("R"))),
		)
	}
	body := pattern.Label("run", pattern.Label("configs",
		configPat(pattern.Value(r.State), bodyLeft, bodyRight)))
	return &query.Query{
		Name: name,
		Head: head,
		Body: []query.Atom{{Doc: TapeDoc, Pattern: body}},
	}
}

// extendRightQuery materializes one blank cell when the head reaches the
// right end of the explicit tape.
func extendRightQuery(blank string) *query.Query {
	head := configPat(
		pattern.VVar("q"),
		pattern.TVar("L"),
		cellPat(blank, pattern.Label("e")),
	)
	body := pattern.Label("run", pattern.Label("configs",
		configPat(pattern.VVar("q"), pattern.TVar("L"), pattern.Label("e"))))
	return &query.Query{
		Name: "extendR",
		Head: head,
		Body: []query.Atom{{Doc: TapeDoc, Pattern: body}},
	}
}

// extendLeftQuery materializes one blank cell at the left end.
func extendLeftQuery(blank string) *query.Query {
	head := configPat(
		pattern.VVar("q"),
		cellPat(blank, pattern.Label("e")),
		pattern.TVar("R"),
	)
	body := pattern.Label("run", pattern.Label("configs",
		configPat(pattern.VVar("q"), pattern.Label("e"), pattern.TVar("R"))))
	return &query.Query{
		Name: "extendL",
		Head: head,
		Body: []query.Atom{{Doc: TapeDoc, Pattern: body}},
	}
}

// SimResult reports an AXML simulation.
type SimResult struct {
	// Accepted is true when an accepting configuration was derived.
	Accepted bool
	// Output is the accepted right half-tape (head onward, blanks
	// trimmed). When several accepting configurations exist (blank
	// extensions), the longest decoded tape is reported.
	Output []string
	// Configs counts the configuration trees accumulated.
	Configs int
	// Run is the underlying rewriting report.
	Run core.RunResult
}

// Simulate compiles and runs the machine on the input via the AXML
// engine, with a step budget (the machine may not halt: termination of
// positive systems is undecidable).
func Simulate(m *Machine, input []string, maxSteps int) (*SimResult, error) {
	s, err := Compile(m, input)
	if err != nil {
		return nil, err
	}
	run := s.Run(core.RunOptions{MaxSteps: maxSteps})
	if run.Err != nil {
		return nil, run.Err
	}
	res := &SimResult{Run: run}
	acceptQ := &query.Query{
		Name: "emit",
		Head: pattern.Label("out", pattern.TVar("R")),
		Body: []query.Atom{{Doc: TapeDoc, Pattern: pattern.Label("run", pattern.Label("configs",
			configPat(pattern.Value(m.Accept), pattern.TVar("L2"), pattern.TVar("R"))))}},
	}
	ans, err := s.SnapshotQuery(acceptQ)
	if err != nil {
		return nil, err
	}
	for _, t := range ans {
		if len(t.Children) != 1 {
			continue
		}
		tape, err := DecodeTape(t.Children[0])
		if err != nil {
			return nil, err
		}
		tape = trimBlanks(tape, m.Blank)
		res.Accepted = true
		if len(tape) > len(res.Output) {
			res.Output = tape
		}
	}
	// Count configurations.
	s.Document(TapeDoc).Root.Walk(func(n, _ *tree.Node) bool {
		if n.Kind == tree.Label && n.Name == "config" {
			res.Configs++
		}
		return true
	})
	return res, nil
}

// Sample machines.

// UnaryIncrement returns a machine over {1} that appends one more 1 to a
// unary number: it scans right past the 1s and writes a 1 on the first
// blank.
func UnaryIncrement() *Machine {
	return &Machine{
		Name:   "unary-increment",
		Start:  "scan",
		Accept: "acc",
		Blank:  "_",
		Rules: []Rule{
			{State: "scan", Read: "1", Write: "1", Move: Right, Next: "scan"},
			{State: "scan", Read: "_", Write: "1", Move: Right, Next: "back"},
			{State: "back", Read: "_", Write: "_", Move: Left, Next: "halt1"},
			{State: "halt1", Read: "1", Write: "1", Move: Left, Next: "rewind"},
			{State: "rewind", Read: "1", Write: "1", Move: Left, Next: "rewind"},
			{State: "rewind", Read: "_", Write: "_", Move: Right, Next: "acc"},
		},
	}
}

// BinarySuccessor returns a machine incrementing an LSB-first binary
// number: 1s become 0s while carrying right, the first 0 or blank becomes
// 1.
func BinarySuccessor() *Machine {
	return &Machine{
		Name:   "binary-successor",
		Start:  "carry",
		Accept: "acc",
		Blank:  "_",
		Rules: []Rule{
			{State: "carry", Read: "1", Write: "0", Move: Right, Next: "carry"},
			{State: "carry", Read: "0", Write: "1", Move: Left, Next: "rewind"},
			{State: "carry", Read: "_", Write: "1", Move: Left, Next: "rewind"},
			{State: "rewind", Read: "0", Write: "0", Move: Left, Next: "rewind"},
			{State: "rewind", Read: "1", Write: "1", Move: Left, Next: "rewind"},
			{State: "rewind", Read: "_", Write: "_", Move: Right, Next: "acc"},
		},
	}
}

// ParityMarker returns a machine that replaces its {1}-tape by "even" or
// "odd" (a single symbol) according to the parity of the number of 1s.
func ParityMarker() *Machine {
	return &Machine{
		Name:   "parity",
		Start:  "even",
		Accept: "acc",
		Blank:  "_",
		Rules: []Rule{
			{State: "even", Read: "1", Write: "_", Move: Right, Next: "odd"},
			{State: "odd", Read: "1", Write: "_", Move: Right, Next: "even"},
			{State: "even", Read: "_", Write: "E", Move: Right, Next: "acc"},
			{State: "odd", Read: "_", Write: "O", Move: Right, Next: "acc"},
		},
	}
}

// FormatTape renders a tape for messages.
func FormatTape(cells []string) string { return strings.Join(cells, "") }
