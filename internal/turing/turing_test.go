package turing

import (
	"strings"
	"testing"

	"axml/internal/core"
	"axml/internal/tree"
)

func split(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, "")
}

func TestInterpreterUnaryIncrement(t *testing.T) {
	m := UnaryIncrement()
	for n := 0; n <= 5; n++ {
		in := split(strings.Repeat("1", n))
		out, ok := m.Run(in, 1000)
		if !ok {
			t.Fatalf("n=%d: did not accept", n)
		}
		if len(out) != n+1 {
			t.Fatalf("n=%d: output %v", n, out)
		}
	}
}

func TestInterpreterBinarySuccessor(t *testing.T) {
	cases := map[string]string{
		"0":   "1",
		"1":   "01",
		"11":  "001",
		"011": "111",
		"101": "011",
		"111": "0001",
	}
	m := BinarySuccessor()
	for in, want := range cases {
		out, ok := m.Run(split(in), 1000)
		if !ok {
			t.Fatalf("%s: did not accept", in)
		}
		if strings.Join(out, "") != want {
			t.Fatalf("%s: got %v, want %s", in, out, want)
		}
	}
}

func TestTapeCodecRoundTrip(t *testing.T) {
	for _, cells := range [][]string{nil, {"1"}, {"0", "1", "0"}, {"a", "b", "c", "d"}} {
		enc := EncodeTape(cells)
		dec, err := DecodeTape(enc)
		if err != nil {
			t.Fatal(err)
		}
		if strings.Join(dec, ",") != strings.Join(cells, ",") {
			t.Fatalf("round trip %v -> %v", cells, dec)
		}
	}
	if _, err := DecodeTape(tree.NewLabel("junk")); err == nil {
		t.Fatal("junk tape decoded")
	}
}

// Lemma 3.1: the AXML simulation reproduces the machine's output.
func TestLemma31SimulationMatchesInterpreter(t *testing.T) {
	machines := []*Machine{UnaryIncrement(), BinarySuccessor(), ParityMarker()}
	inputs := map[string][][]string{
		"unary-increment":  {nil, split("1"), split("111")},
		"binary-successor": {split("1"), split("11"), split("011")},
		"parity":           {split("1"), split("11"), split("111")},
	}
	for _, m := range machines {
		for _, in := range inputs[m.Name] {
			wantOut, wantOK := m.Run(in, 10000)
			res, err := Simulate(m, in, 20000)
			if err != nil {
				t.Fatalf("%s(%v): %v", m.Name, in, err)
			}
			if res.Accepted != wantOK {
				t.Fatalf("%s(%v): accepted=%v, interpreter=%v", m.Name, in, res.Accepted, wantOK)
			}
			if strings.Join(res.Output, "") != strings.Join(wantOut, "") {
				t.Fatalf("%s(%v): output %v, interpreter %v", m.Name, in, res.Output, wantOut)
			}
			if res.Configs < 2 {
				t.Fatalf("%s(%v): configurations did not accumulate (%d)", m.Name, in, res.Configs)
			}
		}
	}
}

// The simulation system terminates for halting machines (no rule leaves
// the accept state, extensions are bounded).
func TestSimulationTerminates(t *testing.T) {
	s, err := Compile(BinarySuccessor(), split("11"))
	if err != nil {
		t.Fatal(err)
	}
	res := s.Run(core.RunOptions{MaxSteps: 20000})
	if !res.Terminated {
		t.Fatalf("simulation did not terminate: %+v", res)
	}
}

// A looping machine yields a non-terminating system: the concrete face of
// Corollary 3.1 (termination undecidability via this embedding).
func TestLoopingMachineDoesNotTerminate(t *testing.T) {
	loop := &Machine{
		Name:   "loop",
		Start:  "s",
		Accept: "acc",
		Blank:  "_",
		Rules: []Rule{
			{State: "s", Read: "_", Write: "1", Move: Right, Next: "s"},
			{State: "s", Read: "1", Write: "1", Move: Right, Next: "s"},
		},
	}
	res, err := Simulate(loop, nil, 60)
	if err != nil {
		t.Fatal(err)
	}
	if res.Run.Terminated {
		t.Fatal("looping machine terminated")
	}
	if res.Accepted {
		t.Fatal("looping machine accepted")
	}
}

func TestCompileValidation(t *testing.T) {
	bad := &Machine{Name: "bad", Start: "s", Accept: "a", Blank: "_",
		Rules: []Rule{{State: "a", Read: "_", Write: "_", Move: Right, Next: "s"}}}
	if _, err := Compile(bad, nil); err == nil {
		t.Fatal("rule leaving accept state not rejected")
	}
	badMove := &Machine{Name: "bad", Start: "s", Accept: "a", Blank: "_",
		Rules: []Rule{{State: "s", Read: "_", Write: "_", Move: 0, Next: "s"}}}
	if _, err := Compile(badMove, nil); err == nil {
		t.Fatal("invalid move not rejected")
	}
	if _, err := Compile(&Machine{Name: "x"}, nil); err == nil {
		t.Fatal("empty machine not rejected")
	}
}

// The compiled system is positive but not simple (tree variables).
func TestCompiledSystemShape(t *testing.T) {
	s, err := Compile(UnaryIncrement(), split("1"))
	if err != nil {
		t.Fatal(err)
	}
	if !s.IsPositive() {
		t.Fatal("compiled system not positive")
	}
	if s.IsSimple() {
		t.Fatal("compiled system should not be simple (tree variables copy tapes)")
	}
}
