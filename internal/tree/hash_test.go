package tree

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCanonicalHashMatchesCanonicalString(t *testing.T) {
	f := func(seedA, seedB int64) bool {
		a := randomTree(rand.New(rand.NewSource(seedA)), 4)
		b := randomTree(rand.New(rand.NewSource(seedB)), 4)
		sameString := a.CanonicalString() == b.CanonicalString()
		sameHash := a.CanonicalHash() == b.CanonicalHash()
		return sameString == sameHash
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestCanonicalHashShuffleInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := randomTree(rng, 4)
		return n.CanonicalHash() == shuffleTree(rng, n).CanonicalHash()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCanonicalHashDistinguishes(t *testing.T) {
	cases := [][2]string{
		{"a", "b"},
		{"a", "a-with-children"},
	}
	_ = cases
	a := NewLabel("a")
	b := NewLabel("b")
	if a.CanonicalHash() == b.CanonicalHash() {
		t.Fatal("labels a/b collide")
	}
	withChild := NewLabel("a", NewLabel("b"))
	if a.CanonicalHash() == withChild.CanonicalHash() {
		t.Fatal("leaf vs parent collide")
	}
	// Kinds matter.
	if NewLabel("x").CanonicalHash() == NewValue("x").CanonicalHash() {
		t.Fatal("label/value collide")
	}
	if NewFunc("x").CanonicalHash() == NewValue("x").CanonicalHash() {
		t.Fatal("func/value collide")
	}
	// Name-boundary trick: a{bc} vs ab{c} style ambiguity must not
	// collide thanks to explicit length framing.
	x := NewLabel("ab", NewLabel("c"))
	y := NewLabel("a", NewLabel("bc"))
	if x.CanonicalHash() == y.CanonicalHash() {
		t.Fatal("length framing failed")
	}
	var nilNode *Node
	if nilNode.CanonicalHash() != (Hash{}) {
		t.Fatal("nil hash should be zero")
	}
}

func TestCompareHashTotalOrder(t *testing.T) {
	a := NewLabel("a").CanonicalHash()
	b := NewLabel("b").CanonicalHash()
	if compareHash(a, a) != 0 {
		t.Fatal("compareHash(a,a) != 0")
	}
	if compareHash(a, b) == 0 {
		t.Fatal("distinct hashes compare equal")
	}
	if compareHash(a, b) != -compareHash(b, a) {
		t.Fatal("compareHash not antisymmetric")
	}
}
