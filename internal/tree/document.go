package tree

import (
	"fmt"
	"sort"
	"strings"
)

// Document is a named AXML document: a document name from the domain D
// bound to a tree.
type Document struct {
	Name string
	Root *Node
}

// NewDocument binds name to root.
func NewDocument(name string, root *Node) *Document {
	return &Document{Name: name, Root: root}
}

// Copy returns a deep copy of the document.
func (d *Document) Copy() *Document {
	if d == nil {
		return nil
	}
	return &Document{Name: d.Name, Root: d.Root.Copy()}
}

// String renders the document as "name/tree" in the compact syntax.
func (d *Document) String() string {
	if d.Root == nil {
		return d.Name + "/"
	}
	return d.Name + "/" + d.Root.String()
}

// Forest is an unordered set of trees, the result type of Web services in
// the paper ("a forest of AXML documents").
type Forest []*Node

// Copy deep-copies every tree of the forest.
func (f Forest) Copy() Forest {
	if f == nil {
		return nil
	}
	out := make(Forest, len(f))
	for i, t := range f {
		out[i] = t.Copy()
	}
	return out
}

// Size returns the total node count across the forest.
func (f Forest) Size() int {
	s := 0
	for _, t := range f {
		s += t.Size()
	}
	return s
}

// CanonicalString renders the forest as its trees' canonical strings,
// sorted and joined by ";". Two forests are equal as multisets of
// unordered trees iff their canonical strings are equal.
func (f Forest) CanonicalString() string {
	parts := make([]string, len(f))
	for i, t := range f {
		parts[i] = t.CanonicalString()
	}
	sort.Strings(parts)
	return strings.Join(parts, ";")
}

// String renders the forest in current order, joined by ";".
func (f Forest) String() string {
	parts := make([]string, len(f))
	for i, t := range f {
		parts[i] = t.String()
	}
	return strings.Join(parts, ";")
}

// Reserved document names: every service implicitly receives its call
// parameters as the document named Input and the subtree rooted at the
// call's parent as the document named Context (Section 2.2).
const (
	Input   = "input"
	Context = "context"
)

// ErrReservedName is returned when a system document uses a reserved name.
var ErrReservedName = fmt.Errorf("tree: %q and %q are reserved document names", Input, Context)
