package tree

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func sampleTree() *Node {
	return NewLabel("directory",
		NewLabel("cd",
			NewLabel("title", NewValue("L'amour")),
			NewLabel("singer", NewValue("Carla Bruni")),
			NewLabel("rating", NewValue("***")),
		),
		NewLabel("cd",
			NewLabel("title", NewValue("Body and Soul")),
			NewFunc("GetRating", NewValue("Body and Soul")),
		),
		NewFunc("FreeMusicDB", NewLabel("type", NewValue("Jazz"))),
	)
}

func TestConstructorsAndKinds(t *testing.T) {
	n := sampleTree()
	if n.Kind != Label || n.Name != "directory" {
		t.Fatalf("root = %v %q", n.Kind, n.Name)
	}
	if got := n.Size(); got != 16 {
		t.Fatalf("Size = %d, want 16", got)
	}
	if got := n.Depth(); got != 4 {
		t.Fatalf("Depth = %d, want 4", got)
	}
	if got := n.CountFunc(); got != 2 {
		t.Fatalf("CountFunc = %d, want 2", got)
	}
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{Label: "label", Value: "value", Func: "func", Kind(9): "kind(9)"}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestValidate(t *testing.T) {
	good := sampleTree()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid tree rejected: %v", err)
	}
	bad := NewLabel("a", &Node{Kind: Value, Name: "v", Children: []*Node{NewLabel("b")}})
	if err := bad.Validate(); err == nil {
		t.Fatal("value node with children accepted")
	}
	withNil := NewLabel("a")
	withNil.Children = append(withNil.Children, nil)
	if err := withNil.Validate(); err == nil {
		t.Fatal("nil child accepted")
	}
	var nilNode *Node
	if err := nilNode.Validate(); err == nil {
		t.Fatal("nil node accepted")
	}
}

func TestCopyIsDeep(t *testing.T) {
	orig := sampleTree()
	cp := orig.Copy()
	if !Isomorphic(orig, cp) {
		t.Fatal("copy not isomorphic to original")
	}
	cp.Children[0].Name = "mutated"
	if orig.Children[0].Name == "mutated" {
		t.Fatal("Copy shares nodes with the original")
	}
}

func TestCanonicalStringOrderIndependence(t *testing.T) {
	a := NewLabel("a", NewLabel("b", NewValue("1")), NewLabel("c"), NewFunc("f"))
	b := NewLabel("a", NewFunc("f"), NewLabel("c"), NewLabel("b", NewValue("1")))
	if a.CanonicalString() != b.CanonicalString() {
		t.Fatalf("canonical differs:\n%s\n%s", a.CanonicalString(), b.CanonicalString())
	}
	if a.String() == b.String() {
		t.Fatal("plain String should preserve child order (sanity)")
	}
}

func TestCanonicalDistinguishesKinds(t *testing.T) {
	label := NewLabel("x")
	value := NewValue("x")
	fn := NewFunc("x")
	if label.CanonicalString() == value.CanonicalString() {
		t.Fatal("label and value x not distinguished")
	}
	if label.CanonicalString() == fn.CanonicalString() {
		t.Fatal("label and function x not distinguished")
	}
	if value.CanonicalString() == fn.CanonicalString() {
		t.Fatal("value and function x not distinguished")
	}
}

func TestWalkPreorderAndStop(t *testing.T) {
	n := sampleTree()
	var seen []string
	n.Walk(func(node, parent *Node) bool {
		seen = append(seen, node.Name)
		return true
	})
	if len(seen) != n.Size() {
		t.Fatalf("walked %d nodes, want %d", len(seen), n.Size())
	}
	if seen[0] != "directory" {
		t.Fatalf("preorder starts at %q", seen[0])
	}
	count := 0
	n.Walk(func(node, parent *Node) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("walk did not stop: %d", count)
	}
}

func TestWalkReportsParents(t *testing.T) {
	n := sampleTree()
	n.Walk(func(node, parent *Node) bool {
		if node == n {
			if parent != nil {
				t.Error("root has a parent")
			}
			return true
		}
		found := false
		for _, c := range parent.Children {
			if c == node {
				found = true
			}
		}
		if !found {
			t.Errorf("node %q not a child of reported parent %q", node.Name, parent.Name)
		}
		return true
	})
}

func TestFuncNodes(t *testing.T) {
	n := sampleTree()
	occs := n.FuncNodes()
	if len(occs) != 2 {
		t.Fatalf("FuncNodes = %d, want 2", len(occs))
	}
	names := map[string]bool{}
	for _, o := range occs {
		names[o.Node.Name] = true
		if o.Parent == nil {
			t.Errorf("function %q has nil parent", o.Node.Name)
		}
	}
	if !names["GetRating"] || !names["FreeMusicDB"] {
		t.Fatalf("unexpected function names: %v", names)
	}
}

func TestIndent(t *testing.T) {
	out := NewLabel("a", NewValue("v"), NewFunc("f")).Indent()
	want := "a\n  \"v\"\n  !f\n"
	if out != want {
		t.Fatalf("Indent = %q, want %q", out, want)
	}
}

func TestDocumentAndForest(t *testing.T) {
	d := NewDocument("d", sampleTree())
	cp := d.Copy()
	if cp.Name != "d" || !Isomorphic(cp.Root, d.Root) {
		t.Fatal("document copy broken")
	}
	if !strings.HasPrefix(d.String(), "d/directory{") {
		t.Fatalf("Document.String = %q", d.String())
	}
	f := Forest{NewLabel("b"), NewLabel("a")}
	g := Forest{NewLabel("a"), NewLabel("b")}
	if f.CanonicalString() != g.CanonicalString() {
		t.Fatal("forest canonical string is order dependent")
	}
	if f.Size() != 2 {
		t.Fatalf("forest size = %d", f.Size())
	}
	fc := f.Copy()
	fc[0].Name = "z"
	if f[0].Name == "z" {
		t.Fatal("forest copy shares nodes")
	}
	var nilForest Forest
	if nilForest.Copy() != nil {
		t.Fatal("nil forest copy should be nil")
	}
}

// randomTree builds a random tree for property tests.
func randomTree(rng *rand.Rand, maxDepth int) *Node {
	kinds := []Kind{Label, Label, Label, Value, Func}
	k := kinds[rng.Intn(len(kinds))]
	name := string(rune('a' + rng.Intn(4)))
	if k == Value || maxDepth == 0 {
		if k == Func {
			return NewFunc(name)
		}
		if k == Value {
			return NewValue(name)
		}
		return NewLabel(name)
	}
	n := &Node{Kind: k, Name: name}
	for i := 0; i < rng.Intn(4); i++ {
		n.Children = append(n.Children, randomTree(rng, maxDepth-1))
	}
	return n
}

func shuffleTree(rng *rand.Rand, n *Node) *Node {
	c := &Node{Kind: n.Kind, Name: n.Name}
	perm := rng.Perm(len(n.Children))
	for _, i := range perm {
		c.Children = append(c.Children, shuffleTree(rng, n.Children[i]))
	}
	return c
}

func TestPropertyCanonicalInvariantUnderShuffle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := randomTree(rng, 4)
		s := shuffleTree(rng, n)
		return n.CanonicalString() == s.CanonicalString() && Isomorphic(n, s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyCopyPreservesCanonical(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := randomTree(rng, 4)
		return n.Copy().CanonicalString() == n.CanonicalString()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySizeDepthConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := randomTree(rng, 4)
		return n.Depth() <= n.Size() && n.Size() >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsOf(t *testing.T) {
	st := StatsOf(sampleTree())
	if st.Nodes != 16 || st.Depth != 4 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Calls != 2 || st.Values != 6 || st.Labels != 8 {
		t.Fatalf("kind counts = %+v", st)
	}
	if st.Labels+st.Values+st.Calls != st.Nodes {
		t.Fatalf("counts do not add up: %+v", st)
	}
}
