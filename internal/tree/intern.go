package tree

import (
	"sync"
	"sync/atomic"
)

// Sym is an interned symbol: a dense uint32 identifier for a (Kind, Name)
// marking pair. Two nodes carry the same marking iff their symbols are
// equal, so the hot comparisons of the engine — subsumption (Def. 2.3),
// reduction, LUB merge and pattern matching — compare one machine word
// instead of a kind byte plus a Go string. Symbols are never recycled:
// documents only grow and markings are drawn from small alphabets, so the
// table is append-only and stays tiny relative to the trees.
//
// Sym 0 is reserved as "not interned yet"; valid symbols start at 1.
type Sym uint32

// internTable is the process-wide symbol table. A single table (rather
// than one per document) makes symbols comparable across documents, which
// the cross-document joins of conjunctive queries rely on.
type internTable struct {
	mu   sync.RWMutex
	syms map[internKey]Sym
	// rev maps Sym-1 to its key, for SymMarking and diagnostics.
	rev []internKey
}

type internKey struct {
	kind Kind
	name string
}

var symbols = internTable{syms: make(map[internKey]Sym, 256)}

// Intern returns the symbol for the (kind, name) marking, allocating one
// on first use. Safe for concurrent use; the read path is a shared-lock
// map hit.
func Intern(kind Kind, name string) Sym {
	k := internKey{kind: kind, name: name}
	symbols.mu.RLock()
	s, ok := symbols.syms[k]
	symbols.mu.RUnlock()
	if ok {
		return s
	}
	symbols.mu.Lock()
	defer symbols.mu.Unlock()
	if s, ok = symbols.syms[k]; ok {
		return s
	}
	symbols.rev = append(symbols.rev, k)
	s = Sym(len(symbols.rev)) // Sym 0 reserved; first symbol is 1
	symbols.syms[k] = s
	return s
}

// SymMarking returns the (kind, name) pair a symbol was interned for.
// The zero Sym (and any symbol never issued) reports ok=false.
func SymMarking(s Sym) (kind Kind, name string, ok bool) {
	if s == 0 {
		return 0, "", false
	}
	symbols.mu.RLock()
	defer symbols.mu.RUnlock()
	if int(s) > len(symbols.rev) {
		return 0, "", false
	}
	k := symbols.rev[s-1]
	return k.kind, k.name, true
}

// InternedSymbols reports how many distinct markings have been interned
// process-wide.
func InternedSymbols() int {
	symbols.mu.RLock()
	defer symbols.mu.RUnlock()
	return len(symbols.rev)
}

// Sym returns the node's interned symbol, interning the marking on first
// use and caching it on the node. The cache is filled with an atomic
// store so concurrent readers (parallel evaluations walk shared live
// trees) race benignly: both compute the same symbol. A node whose
// Kind or Name is mutated in place must not have had Sym called before
// the mutation; the engine never mutates markings (documents grow by
// appending subtrees), so only hand-built test trees can violate this.
func (n *Node) Sym() Sym {
	if s := Sym(atomic.LoadUint32(&n.sym)); s != 0 {
		return s
	}
	s := Intern(n.Kind, n.Name)
	atomic.StoreUint32(&n.sym, uint32(s))
	return s
}

// SameMarking reports whether two nodes carry identical markings (equal
// Kind and Name), via their interned symbols.
func (n *Node) SameMarking(m *Node) bool { return n.Sym() == m.Sym() }
