// Package tree implements AXML documents: finite unordered labeled trees
// whose nodes are data nodes (labels or atomic values) or function nodes
// (embedded calls to Web services), following Definition 2.1 of
// "Positive Active XML" (Abiteboul, Benjelloun, Milo; PODS 2004).
//
// Trees are unordered: the order of a Children slice carries no meaning,
// and all comparison operations (see package subsume and CanonicalString
// here) treat sibling lists as multisets.
package tree

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// Kind classifies the marking of a node, mirroring the disjoint domains
// L (labels), V (atomic values) and F (function names) of the paper.
type Kind uint8

const (
	// Label marks an inner or leaf data node carrying an element label.
	Label Kind = iota
	// Value marks a leaf data node carrying an atomic value.
	Value
	// Func marks a function node: an embedded call to the service whose
	// name is stored in Name. Its children subtrees are the call
	// parameters.
	Func
)

// String returns the lowercase name of the kind.
func (k Kind) String() string {
	switch k {
	case Label:
		return "label"
	case Value:
		return "value"
	case Func:
		return "func"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Node is a node of an AXML document. The zero value is an empty label
// node; use the constructors for clarity. Nodes form trees: each node owns
// its Children and a node must not be shared between trees (use Copy).
type Node struct {
	// Kind says whether Name is a label, an atomic value or a function
	// name.
	Kind Kind
	// Name is the node's marking: λ(n) in the paper.
	Name string
	// Children are the children subtrees, an unordered multiset.
	Children []*Node
	// Stamp is the document version at which this node was appended (or
	// last restamped). Stamps order nodes by arrival so incremental
	// evaluation can restrict matching to the delta appended after a
	// baseline version; they carry no tree semantics and are ignored by
	// comparison operations. Zero means "present since the initial state".
	Stamp uint64

	// sym caches the interned symbol for (Kind, Name); 0 means not yet
	// interned. Filled lazily by Sym with atomic access — concurrent
	// readers race benignly (both store the same value). See intern.go.
	sym uint32
	// dig caches the subtree's structural digest (hash-cons digest); nil
	// means not computed since the last mutation. Filled lazily by Digest
	// with atomic access; mutators clear it via InvalidateDigest (see
	// hash.go for the invalidation contract).
	dig atomic.Pointer[Hash]
	// red, when 1, records that the subtree was verified reduced (no
	// subtree subsumed by a sibling) by package subsume. It rides the
	// digest invalidation contract: every path that clears dig clears red
	// too, so a set flag is trustworthy exactly when a memoized digest
	// would be. Makes re-reducing an untouched subtree O(1) — the steady
	// state of monotone merging, where most of a document never changes.
	red uint32
}

// NewLabel returns a data node labeled name with the given children.
func NewLabel(name string, children ...*Node) *Node {
	return &Node{Kind: Label, Name: name, Children: children}
}

// NewValue returns a leaf data node carrying the atomic value v.
func NewValue(v string) *Node {
	return &Node{Kind: Value, Name: v}
}

// NewFunc returns a function node calling service name with the given
// parameter subtrees.
func NewFunc(name string, params ...*Node) *Node {
	return &Node{Kind: Func, Name: name, Children: params}
}

// Add appends children to n and returns n for chaining. Only n's own
// digest memo is cleared: callers growing a node already attached below
// other nodes must invalidate the ancestor digests themselves (the
// engine's merge path does; see InvalidateDigest).
func (n *Node) Add(children ...*Node) *Node {
	n.Children = append(n.Children, children...)
	n.InvalidateDigest()
	return n
}

// IsLeaf reports whether n has no children.
func (n *Node) IsLeaf() bool { return len(n.Children) == 0 }

// Validate checks the well-formedness constraints of Definition 2.1:
// only leaves may carry atomic values.
func (n *Node) Validate() error {
	if n == nil {
		return fmt.Errorf("tree: nil node")
	}
	if n.Kind == Value && len(n.Children) > 0 {
		return fmt.Errorf("tree: value node %q has %d children; atomic values are leaves", n.Name, len(n.Children))
	}
	for _, c := range n.Children {
		if c == nil {
			return fmt.Errorf("tree: node %q has nil child", n.Name)
		}
		if err := c.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Copy returns a deep copy of the subtree rooted at n. The interned
// symbol, the memoized structural digest and the reduced flag carry
// over: the copy is structurally identical to the original, so all three
// caches stay valid.
func (n *Node) Copy() *Node {
	if n == nil {
		return nil
	}
	c := &Node{Kind: n.Kind, Name: n.Name, Stamp: n.Stamp}
	c.sym = atomic.LoadUint32(&n.sym)
	c.dig.Store(n.dig.Load())
	c.red = atomic.LoadUint32(&n.red)
	if len(n.Children) > 0 {
		c.Children = make([]*Node, len(n.Children))
		for i, ch := range n.Children {
			c.Children[i] = ch.Copy()
		}
	}
	return c
}

// StampAll sets the Stamp of every node in the subtree to v. Every
// whole-document restamp follows an out-of-band mutation (Touch, Restore,
// a replica sync), so StampAll doubles as the conservative digest
// invalidation for those paths: the memoized digest of every node in the
// subtree is cleared. (Stamps themselves do not enter the digest.)
func (n *Node) StampAll(v uint64) {
	if n == nil {
		return
	}
	n.Stamp = v
	n.InvalidateDigest()
	for _, c := range n.Children {
		c.StampAll(v)
	}
}

// MaxStamp returns the largest Stamp in the subtree rooted at n: the
// version at which the subtree's value (as an unordered tree) last
// changed by an append.
func (n *Node) MaxStamp() uint64 {
	if n == nil {
		return 0
	}
	m := n.Stamp
	for _, c := range n.Children {
		if cm := c.MaxStamp(); cm > m {
			m = cm
		}
	}
	return m
}

// Size returns the number of nodes in the subtree rooted at n.
func (n *Node) Size() int {
	if n == nil {
		return 0
	}
	s := 1
	for _, c := range n.Children {
		s += c.Size()
	}
	return s
}

// Depth returns the height of the subtree rooted at n; a leaf has depth 1.
func (n *Node) Depth() int {
	if n == nil {
		return 0
	}
	d := 0
	for _, c := range n.Children {
		if cd := c.Depth(); cd > d {
			d = cd
		}
	}
	return d + 1
}

// CountFunc returns the number of function nodes in the subtree.
func (n *Node) CountFunc() int {
	if n == nil {
		return 0
	}
	s := 0
	if n.Kind == Func {
		s = 1
	}
	for _, c := range n.Children {
		s += c.CountFunc()
	}
	return s
}

// Walk calls fn for every node of the subtree in preorder, passing the node
// and its parent (nil for the root). If fn returns false the walk stops.
func (n *Node) Walk(fn func(node, parent *Node) bool) {
	var rec func(node, parent *Node) bool
	rec = func(node, parent *Node) bool {
		if !fn(node, parent) {
			return false
		}
		for _, c := range node.Children {
			if !rec(c, node) {
				return false
			}
		}
		return true
	}
	if n != nil {
		rec(n, nil)
	}
}

// FuncNodes returns every function node in the subtree together with its
// parent (nil if the root itself is a function node), in preorder.
func (n *Node) FuncNodes() []FuncOccurrence {
	var out []FuncOccurrence
	n.Walk(func(node, parent *Node) bool {
		if node.Kind == Func {
			out = append(out, FuncOccurrence{Node: node, Parent: parent})
		}
		return true
	})
	return out
}

// FuncOccurrence locates a function node inside a document: the node itself
// and its parent (the attachment point for invocation results).
type FuncOccurrence struct {
	Node   *Node
	Parent *Node
}

// CanonicalString renders the subtree in the paper's compact syntax with
// children sorted by their own canonical strings. Two trees are isomorphic
// (equal as unordered trees) iff their canonical strings are equal. The
// rendering is also valid input for syntax.ParseDocument.
func (n *Node) CanonicalString() string {
	var b strings.Builder
	n.writeCanonical(&b)
	return b.String()
}

func (n *Node) writeCanonical(b *strings.Builder) {
	switch n.Kind {
	case Value:
		fmt.Fprintf(b, "%q", n.Name)
	case Func:
		b.WriteByte('!')
		b.WriteString(n.Name)
	default:
		b.WriteString(n.Name)
	}
	if len(n.Children) == 0 {
		return
	}
	parts := make([]string, len(n.Children))
	for i, c := range n.Children {
		parts[i] = c.CanonicalString()
	}
	sort.Strings(parts)
	b.WriteByte('{')
	for i, p := range parts {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p)
	}
	b.WriteByte('}')
}

// String renders the subtree in the compact syntax preserving the current
// (arbitrary) child order. Use CanonicalString for comparisons.
func (n *Node) String() string {
	var b strings.Builder
	n.writeString(&b)
	return b.String()
}

func (n *Node) writeString(b *strings.Builder) {
	switch n.Kind {
	case Value:
		fmt.Fprintf(b, "%q", n.Name)
	case Func:
		b.WriteByte('!')
		b.WriteString(n.Name)
	default:
		b.WriteString(n.Name)
	}
	if len(n.Children) == 0 {
		return
	}
	b.WriteByte('{')
	for i, c := range n.Children {
		if i > 0 {
			b.WriteByte(',')
		}
		c.writeString(b)
	}
	b.WriteByte('}')
}

// Isomorphic reports whether two trees are equal as unordered trees.
func Isomorphic(a, b *Node) bool {
	if a == nil || b == nil {
		return a == b
	}
	return a.CanonicalString() == b.CanonicalString()
}

// Indent renders the subtree one node per line, indented, for debugging
// and CLI pretty-printing.
func (n *Node) Indent() string {
	var b strings.Builder
	var rec func(n *Node, depth int)
	rec = func(n *Node, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		switch n.Kind {
		case Value:
			fmt.Fprintf(&b, "%q", n.Name)
		case Func:
			b.WriteString("!" + n.Name)
		default:
			b.WriteString(n.Name)
		}
		b.WriteByte('\n')
		for _, c := range n.Children {
			rec(c, depth+1)
		}
	}
	if n != nil {
		rec(n, 0)
	}
	return b.String()
}

// Stats summarizes a tree for reporting and debugging.
type Stats struct {
	Nodes  int
	Depth  int
	Labels int
	Values int
	Calls  int
}

// StatsOf computes Stats for the subtree rooted at n.
func StatsOf(n *Node) Stats {
	var st Stats
	n.Walk(func(nd, _ *Node) bool {
		st.Nodes++
		switch nd.Kind {
		case Label:
			st.Labels++
		case Value:
			st.Values++
		case Func:
			st.Calls++
		}
		return true
	})
	st.Depth = n.Depth()
	return st
}
