package tree

import (
	"testing"
)

// The intern table and the per-subtree digest memo are both caches over the
// same ground truth — (Kind, Name) markings and CanonicalHash — so any
// divergence between cached and recomputed values silently corrupts
// subsumption fast paths and index lookups. FuzzSymDigestStability builds
// arbitrary trees from fuzz bytes and checks the caches survive the
// lifecycle operations the engine applies: Digest, Copy (used by Copy and
// Restore snapshots), StampAll (Touch/Restore/replica sync), and Add.

// buildFuzzTree consumes bytes as instructions for a depth-first tree
// builder. Deterministic in the input, bounded in size.
func buildFuzzTree(data []byte) *Node {
	root := NewLabel("fuzz-root")
	stack := []*Node{root}
	nodes := 1
	for i := 0; i+1 < len(data) && nodes < 512; i += 2 {
		op, arg := data[i], data[i+1]
		cur := stack[len(stack)-1]
		switch op % 4 {
		case 0: // push a label child and descend
			n := NewLabel(fuzzName("l", arg))
			cur.Add(n)
			stack = append(stack, n)
			nodes++
		case 1: // leaf value child
			cur.Add(NewValue(fuzzName("v", arg)))
			nodes++
		case 2: // func child with one parameter, descend into it
			n := NewFunc(fuzzName("f", arg), NewValue(fuzzName("p", arg)))
			cur.Add(n)
			stack = append(stack, n)
			nodes += 2
		case 3: // pop back toward the root
			if len(stack) > 1 {
				stack = stack[:len(stack)-1]
			}
		}
	}
	return root
}

// fuzzName maps a fuzz byte to a small name alphabet so inputs collide on
// markings (exercising the intern table's sharing) rather than each byte
// minting a fresh symbol.
func fuzzName(prefix string, b byte) string {
	return prefix + string(rune('a'+b%17))
}

func FuzzSymDigestStability(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 1, 2, 3, 0, 2, 5})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 3, 0, 1, 9})
	f.Add([]byte{2, 7, 1, 7, 3, 0, 2, 7, 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<12 {
			return
		}
		n := buildFuzzTree(data)

		// Digest must agree with the uncached canonical hash.
		want := n.CanonicalHash()
		if n.Digest() != want {
			t.Fatalf("Digest != CanonicalHash on fresh tree")
		}

		// Symbols resolve back to the marking they were interned from.
		n.Walk(func(m *Node, _ *Node) bool {
			k, name, ok := SymMarking(m.Sym())
			if !ok || k != m.Kind || name != m.Name {
				t.Fatalf("Sym roundtrip: node (%v, %q) resolved to (%v, %q, %v)",
					m.Kind, m.Name, k, name, ok)
			}
			return true
		})

		// Copy preserves digests and symbols (the Restore path snapshots
		// via Copy, so this is also Restore's stability guarantee).
		c := n.Copy()
		if c.Digest() != want {
			t.Fatalf("Copy changed digest")
		}
		if c.Sym() != n.Sym() {
			t.Fatalf("Copy changed root symbol")
		}

		// StampAll (Touch/Restore) clears memos; recomputation must land
		// on the same value when the structure is unchanged.
		c.StampAll(42)
		if c.Digest() != want {
			t.Fatalf("digest drifted across StampAll")
		}

		// Mutation through Add invalidates, and the memo converges back to
		// the canonical hash.
		c.Add(NewValue("fuzz-extra"))
		if c.Digest() != c.CanonicalHash() {
			t.Fatalf("digest stale after Add")
		}
		// The original is structurally untouched by mutating the copy.
		if n.Digest() != want {
			t.Fatalf("mutating copy corrupted original digest")
		}
	})
}
