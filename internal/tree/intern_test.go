package tree

import (
	"fmt"
	"sync"
	"testing"
)

func TestInternRoundTrip(t *testing.T) {
	s := Intern(Label, "intern-roundtrip-a")
	if s == 0 {
		t.Fatal("Intern returned the reserved zero symbol")
	}
	if again := Intern(Label, "intern-roundtrip-a"); again != s {
		t.Fatalf("re-interning gave %d, want %d", again, s)
	}
	k, name, ok := SymMarking(s)
	if !ok || k != Label || name != "intern-roundtrip-a" {
		t.Fatalf("SymMarking(%d) = (%v, %q, %v)", s, k, name, ok)
	}
	if _, _, ok := SymMarking(0); ok {
		t.Fatal("SymMarking(0) reported ok")
	}
}

func TestInternDistinguishesKinds(t *testing.T) {
	// The same name under different kinds must intern to distinct symbols:
	// a label "x" and a value "x" are different markings.
	l := Intern(Label, "intern-kinds-x")
	v := Intern(Value, "intern-kinds-x")
	f := Intern(Func, "intern-kinds-x")
	if l == v || v == f || l == f {
		t.Fatalf("kinds collapsed: label=%d value=%d func=%d", l, v, f)
	}
}

// TestInternConcurrent hammers the table from many goroutines over an
// overlapping name set and checks every goroutine resolved every marking
// to the same symbol. Run under -race (make race does).
func TestInternConcurrent(t *testing.T) {
	const goroutines = 16
	const names = 64
	results := make([][]Sym, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			out := make([]Sym, names)
			for i := 0; i < names; i++ {
				// Every goroutine interns the same markings, in a
				// goroutine-dependent order.
				j := (i*7 + g) % names
				out[j] = Intern(Value, fmt.Sprintf("intern-conc-%d", j))
			}
			results[g] = out
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		for j := 0; j < names; j++ {
			if results[g][j] != results[0][j] {
				t.Fatalf("goroutine %d interned name %d to %d, goroutine 0 to %d",
					g, j, results[g][j], results[0][j])
			}
		}
	}
	for j := 0; j < names; j++ {
		k, name, ok := SymMarking(results[0][j])
		if !ok || k != Value || name != fmt.Sprintf("intern-conc-%d", j) {
			t.Fatalf("SymMarking roundtrip failed for name %d: (%v, %q, %v)", j, k, name, ok)
		}
	}
}

// TestNodeSymConcurrent fills the per-node symbol cache from concurrent
// readers — the benign race the engine's parallel evaluations exercise.
func TestNodeSymConcurrent(t *testing.T) {
	n := NewLabel("sym-conc-label")
	want := Intern(Label, "sym-conc-label")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if got := n.Sym(); got != want {
					panic(fmt.Sprintf("Sym = %d, want %d", got, want))
				}
			}
		}()
	}
	wg.Wait()
}

func TestDigestMatchesCanonicalHash(t *testing.T) {
	n := NewLabel("r",
		NewLabel("a", NewValue("1"), NewValue("2")),
		NewLabel("a", NewValue("2"), NewValue("1")), // sibling order irrelevant
		NewFunc("f", NewValue("p")),
	)
	if n.Digest() != n.CanonicalHash() {
		t.Fatal("Digest and CanonicalHash disagree")
	}
	// Memoized second call must return the same value.
	if n.Digest() != n.CanonicalHash() {
		t.Fatal("memoized Digest disagrees with CanonicalHash")
	}
}

func TestDigestInvalidation(t *testing.T) {
	n := NewLabel("r", NewLabel("a"))
	before := n.Digest()
	n.Add(NewLabel("b")) // Add clears n's own memo
	after := n.Digest()
	if before == after {
		t.Fatal("digest unchanged after Add")
	}
	if after != n.CanonicalHash() {
		t.Fatal("digest stale after Add")
	}

	// Deep mutation + StampAll (the Touch/Restore path) must refresh
	// every memo in the subtree.
	deep := NewLabel("r", NewLabel("mid", NewLabel("leaf")))
	_ = deep.Digest()
	deep.Children[0].Children[0].Children = []*Node{NewValue("x")}
	deep.StampAll(1)
	if deep.Digest() != deep.CanonicalHash() {
		t.Fatal("digest stale after deep mutation + StampAll")
	}
}

func TestCopyCarriesCaches(t *testing.T) {
	n := NewLabel("r", NewLabel("a", NewValue("1")))
	_ = n.Sym()
	d := n.Digest()
	c := n.Copy()
	if c.Digest() != d {
		t.Fatal("copy digest differs from original")
	}
	if c.Digest() != c.CanonicalHash() {
		t.Fatal("copied digest memo is stale")
	}
	if c.Sym() != n.Sym() {
		t.Fatal("copy sym differs from original")
	}
	// Mutating the copy must not corrupt the original's memo.
	c.Add(NewValue("2"))
	if n.Digest() != d {
		t.Fatal("original digest changed after mutating the copy")
	}
}
