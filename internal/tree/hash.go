package tree

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"sync/atomic"
)

// Hash is a structural digest of an unordered tree. Two isomorphic trees
// always have equal hashes; distinct trees collide only with cryptographic
// improbability (SHA-256 based), which the rewriting engine accepts in
// exchange for O(n) equivalence checks on reduced documents — the
// canonical-string comparison is O(n²) on deep trees.
type Hash [32]byte

// CanonicalHash computes the structural digest of the subtree rooted at n:
// a Merkle-style hash over (kind, name, sorted child hashes). It runs in
// O(n·b log b) time and O(depth) extra space and never consults or fills
// the per-node memo; use Digest for the memoized variant (the two always
// agree on the same tree).
func (n *Node) CanonicalHash() Hash {
	if n == nil {
		return Hash{}
	}
	var kids []Hash
	if len(n.Children) > 0 {
		kids = make([]Hash, len(n.Children))
		for i, c := range n.Children {
			kids[i] = c.CanonicalHash()
		}
		sortHashes(kids)
	}
	return hashNode(n, kids)
}

// Digest returns the subtree's structural digest, memoized per node: the
// same value as CanonicalHash, computed bottom-up through the children's
// memos so an unchanged subtree is never re-hashed. This is the
// hash-consing that lets subsumption, reduction and LUB merge treat
// "equal digest" as "isomorphic subtree" in O(1) after the first walk.
//
// Invalidation contract: any in-place mutation of a node's Children,
// Kind or Name must clear the memo of that node AND of every ancestor
// (a subtree digest covers everything below it). The maintained paths:
//
//   - the engine's merge (core) invalidates along the recorded ancestor
//     chain of the call it merged;
//   - whole-document restamps (Touch, Restore, replica syncs) go through
//     StampAll, which clears every memo in the subtree;
//   - reduction in place (subsume) clears the memo of every node whose
//     child list it rewrites;
//   - Add clears the node it grows.
//
// Construction-time mutation is safe by default: a node mutated before
// its first Digest call has no memo to go stale.
//
// Concurrency: the memo is read and filled with atomic pointer loads and
// stores, so any number of concurrent readers (parallel evaluations over
// shared live trees) may race benignly — they compute and store the same
// value. Mutators must be exclusive with readers, which the engine's
// version-funnel lock already guarantees.
func (n *Node) Digest() Hash {
	if n == nil {
		return Hash{}
	}
	if h := n.dig.Load(); h != nil {
		return *h
	}
	var kids []Hash
	if len(n.Children) > 0 {
		kids = make([]Hash, len(n.Children))
		for i, c := range n.Children {
			kids[i] = c.Digest()
		}
		sortHashes(kids)
	}
	h := hashNode(n, kids)
	n.dig.Store(&h)
	return h
}

// InvalidateDigest clears the node's memoized digest and reduced flag
// (not its children's: their subtrees did not change when only n's child
// list did). Callers mutating a node below a document root must also
// invalidate every ancestor, e.g. via InvalidateDigestPath.
func (n *Node) InvalidateDigest() {
	if n != nil {
		n.dig.Store(nil)
		atomic.StoreUint32(&n.red, 0)
	}
}

// InvalidateDigestAll clears the memoized digest and reduced flag of
// every node in the subtree, without touching stamps. Use it after
// mutating children through raw slice writes that bypass the maintained
// invalidation paths (Add, merge, StampAll), before any digest-consuming
// operation runs.
func InvalidateDigestAll(n *Node) {
	if n == nil {
		return
	}
	n.InvalidateDigest()
	for _, c := range n.Children {
		InvalidateDigestAll(c)
	}
}

// MarkReduced records that the subtree rooted at n was verified reduced.
// Only package subsume should set it; any mutation clears it through
// InvalidateDigest.
func (n *Node) MarkReduced() {
	atomic.StoreUint32(&n.red, 1)
}

// KnownReduced reports whether the subtree is recorded as reduced (and
// unchanged since that verification).
func (n *Node) KnownReduced() bool {
	return atomic.LoadUint32(&n.red) == 1
}

// InvalidateDigestPath clears the memoized digest of every node on an
// ancestor chain (root first or last — order is irrelevant). The engine's
// merge path calls this with root..attach after splicing new children in.
func InvalidateDigestPath(path []*Node) {
	for _, n := range path {
		n.InvalidateDigest()
	}
}

// hashNode hashes one node header plus its pre-sorted child digests.
func hashNode(n *Node, kids []Hash) Hash {
	h := sha256.New()
	var hdr [9]byte
	hdr[0] = byte(n.Kind)
	binary.LittleEndian.PutUint32(hdr[1:5], uint32(len(n.Name)))
	binary.LittleEndian.PutUint32(hdr[5:9], uint32(len(kids)))
	h.Write(hdr[:])
	h.Write([]byte(n.Name))
	for _, k := range kids {
		h.Write(k[:])
	}
	var out Hash
	h.Sum(out[:0])
	return out
}

// sortHashes sorts digests lexicographically (the canonical child order).
func sortHashes(kids []Hash) {
	sort.Slice(kids, func(i, j int) bool {
		return compareHash(kids[i], kids[j]) < 0
	})
}

func compareHash(a, b Hash) int {
	for i := range a {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	return 0
}
