package tree

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
)

// Hash is a structural digest of an unordered tree. Two isomorphic trees
// always have equal hashes; distinct trees collide only with cryptographic
// improbability (SHA-256 based), which the rewriting engine accepts in
// exchange for O(n) equivalence checks on reduced documents — the
// canonical-string comparison is O(n²) on deep trees.
type Hash [32]byte

// CanonicalHash computes the structural digest of the subtree rooted at n:
// a Merkle-style hash over (kind, name, sorted child hashes). It runs in
// O(n·b log b) time and O(depth) extra space.
func (n *Node) CanonicalHash() Hash {
	if n == nil {
		return Hash{}
	}
	var kids []Hash
	if len(n.Children) > 0 {
		kids = make([]Hash, len(n.Children))
		for i, c := range n.Children {
			kids[i] = c.CanonicalHash()
		}
		sort.Slice(kids, func(i, j int) bool {
			return compareHash(kids[i], kids[j]) < 0
		})
	}
	h := sha256.New()
	var hdr [9]byte
	hdr[0] = byte(n.Kind)
	binary.LittleEndian.PutUint32(hdr[1:5], uint32(len(n.Name)))
	binary.LittleEndian.PutUint32(hdr[5:9], uint32(len(kids)))
	h.Write(hdr[:])
	h.Write([]byte(n.Name))
	for _, k := range kids {
		h.Write(k[:])
	}
	var out Hash
	h.Sum(out[:0])
	return out
}

func compareHash(a, b Hash) int {
	for i := range a {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	return 0
}
