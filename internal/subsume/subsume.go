// Package subsume implements tree subsumption, equivalence, reduction and
// least upper bounds for AXML documents (Definition 2.2 and Proposition 2.1
// of the paper).
//
// A document d1 is subsumed by d2 (d1 ⊆ d2) when there is a mapping h from
// the nodes of d1 to those of d2 sending root to root, preserving
// parent/child edges and markings. On finite trees the existence of such a
// homomorphism is decided bottom-up in polynomial time: n1 maps into n2 iff
// their markings agree and every child of n1 maps into some child of n2.
//
// Reduction removes subtrees subsumed by a sibling; Proposition 2.1(2)
// guarantees a unique reduced version up to isomorphism, which this package
// computes in polynomial time.
package subsume

import (
	"axml/internal/tree"
)

// Subsumed reports whether a ⊆ b.
func Subsumed(a, b *tree.Node) bool {
	if a == nil || b == nil {
		return a == nil
	}
	c := newChecker()
	return c.sub(a, b)
}

// Equivalent reports whether a ⊆ b and b ⊆ a (the paper's d1 ≡ d2).
func Equivalent(a, b *tree.Node) bool {
	return Subsumed(a, b) && Subsumed(b, a)
}

// checker memoizes subsumption between node pairs within one top-level
// query. Trees are acyclic so the recursion is well-founded and each pair
// is decided once.
type checker struct {
	memo map[[2]*tree.Node]bool
}

func newChecker() *checker {
	return &checker{memo: make(map[[2]*tree.Node]bool)}
}

func (c *checker) sub(a, b *tree.Node) bool {
	key := [2]*tree.Node{a, b}
	if v, ok := c.memo[key]; ok {
		return v
	}
	ok := a.Kind == b.Kind && a.Name == b.Name
	if ok {
		for _, ca := range a.Children {
			found := false
			for _, cb := range b.Children {
				if c.sub(ca, cb) {
					found = true
					break
				}
			}
			if !found {
				ok = false
				break
			}
		}
	}
	c.memo[key] = ok
	return ok
}

// Reduce returns the reduced version of t: the unique (up to isomorphism)
// equivalent tree with no subtree subsumed by a sibling. The input is not
// modified.
func Reduce(t *tree.Node) *tree.Node {
	if t == nil {
		return nil
	}
	return reduceInPlace(t.Copy())
}

// ReduceInPlace reduces t destructively and returns it. Children slices
// are rewritten; subtrees that survive are themselves reduced.
func ReduceInPlace(t *tree.Node) *tree.Node { return reduceInPlace(t) }

func reduceInPlace(t *tree.Node) *tree.Node {
	if t == nil {
		return nil
	}
	for _, c := range t.Children {
		reduceInPlace(c)
	}
	t.Children = pruneSiblings(t.Children)
	return t
}

// pruneSiblings removes from the multiset every tree subsumed by another
// sibling, keeping one representative of each equivalence class. Children
// are assumed individually reduced.
func pruneSiblings(children []*tree.Node) []*tree.Node {
	if len(children) <= 1 {
		return children
	}
	c := newChecker()
	keep := make([]*tree.Node, 0, len(children))
	for i, ci := range children {
		dominated := false
		for j, cj := range children {
			if i == j {
				continue
			}
			if c.sub(ci, cj) {
				// ci ⊆ cj. Drop ci unless they are equivalent and
				// ci comes first (keep the first representative).
				if c.sub(cj, ci) {
					if j < i {
						dominated = true
						break
					}
				} else {
					dominated = true
					break
				}
			}
		}
		if !dominated {
			keep = append(keep, ci)
		}
	}
	return keep
}

// IsReduced reports whether t contains no subtree subsumed by a sibling.
func IsReduced(t *tree.Node) bool {
	if t == nil {
		return true
	}
	c := newChecker()
	var rec func(n *tree.Node) bool
	rec = func(n *tree.Node) bool {
		for i, ci := range n.Children {
			for j, cj := range n.Children {
				if i != j && c.sub(ci, cj) && !(c.sub(cj, ci) && j > i) {
					return false
				}
			}
		}
		for _, ci := range n.Children {
			if !rec(ci) {
				return false
			}
		}
		return true
	}
	return rec(t)
}

// Union returns the least upper bound d ∪ d' of two trees with the same
// root marking: a tree with that root and all children subtrees of both,
// reduced. It returns nil if the roots are incomparable (different
// markings). Inputs are not modified.
func Union(a, b *tree.Node) *tree.Node {
	if a == nil {
		return Reduce(b)
	}
	if b == nil {
		return Reduce(a)
	}
	if a.Kind != b.Kind || a.Name != b.Name {
		return nil
	}
	u := &tree.Node{Kind: a.Kind, Name: a.Name}
	for _, c := range a.Children {
		u.Children = append(u.Children, c.Copy())
	}
	for _, c := range b.Children {
		u.Children = append(u.Children, c.Copy())
	}
	return reduceInPlace(u)
}

// ForestSubsumed reports whether forest a is subsumed by forest b: every
// tree of a is subsumed by some tree of b.
func ForestSubsumed(a, b tree.Forest) bool {
	for _, ta := range a {
		found := false
		for _, tb := range b {
			if Subsumed(ta, tb) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// ForestEquivalent reports mutual forest subsumption.
func ForestEquivalent(a, b tree.Forest) bool {
	return ForestSubsumed(a, b) && ForestSubsumed(b, a)
}

// ReduceForest returns a reduced version of the forest: every tree reduced
// and no tree subsumed by another (one representative per equivalence
// class). Inputs are not modified.
func ReduceForest(f tree.Forest) tree.Forest {
	reduced := make(tree.Forest, len(f))
	for i, t := range f {
		reduced[i] = Reduce(t)
	}
	kept := pruneSiblings(reduced)
	out := make(tree.Forest, len(kept))
	copy(out, kept)
	return out
}
