// Package subsume implements tree subsumption, equivalence, reduction and
// least upper bounds for AXML documents (Definition 2.2 and Proposition 2.1
// of the paper).
//
// A document d1 is subsumed by d2 (d1 ⊆ d2) when there is a mapping h from
// the nodes of d1 to those of d2 sending root to root, preserving
// parent/child edges and markings. On finite trees the existence of such a
// homomorphism is decided bottom-up in polynomial time: n1 maps into n2 iff
// their markings agree and every child of n1 maps into some child of n2.
//
// Reduction removes subtrees subsumed by a sibling; Proposition 2.1(2)
// guarantees a unique reduced version up to isomorphism, which this package
// computes in polynomial time.
//
// Performance: markings are compared through interned symbols (tree.Sym,
// one word instead of a string) and every check short-circuits on equal
// memoized subtree digests (tree.Digest): equal digests mean isomorphic
// subtrees, which subsume each other by the identity homomorphism. The
// digest short-circuit is what lets reduction and LUB merge share
// structure across million-node documents instead of re-walking it.
package subsume

import (
	"axml/internal/tree"
)

// Naive, when true, disables the interned-symbol and digest fast paths:
// markings are compared as strings and no digest short-circuit or
// digest-grouped pruning runs. It exists for the differential tests and
// benchmarks that pin the fast paths to the definitional algorithm; do
// not flip it while evaluations are in flight.
var Naive bool

// maxMemoEntries bounds the per-query node-pair memo: beyond it, results
// are still computed (correctly) but no longer recorded, keeping the
// worst-case memory of one subsumption query bounded regardless of
// document size.
const maxMemoEntries = 1 << 20

// Subsumed reports whether a ⊆ b.
func Subsumed(a, b *tree.Node) bool {
	if a == nil || b == nil {
		return a == nil
	}
	c := newChecker()
	return c.sub(a, b)
}

// Equivalent reports whether a ⊆ b and b ⊆ a (the paper's d1 ≡ d2).
func Equivalent(a, b *tree.Node) bool {
	return Subsumed(a, b) && Subsumed(b, a)
}

// checker memoizes subsumption between node pairs within one top-level
// query. Trees are acyclic so the recursion is well-founded and each pair
// is decided once (up to the memo bound).
type checker struct {
	memo map[[2]*tree.Node]bool
}

func newChecker() *checker {
	return &checker{memo: make(map[[2]*tree.Node]bool)}
}

func (c *checker) sub(a, b *tree.Node) bool {
	if a == b {
		return true
	}
	if Naive {
		return c.subNaive(a, b)
	}
	if a.Sym() != b.Sym() {
		return false
	}
	if len(a.Children) == 0 {
		return true
	}
	key := [2]*tree.Node{a, b}
	if v, ok := c.memo[key]; ok {
		return v
	}
	// Equal digests mean isomorphic subtrees: subsumed via the identity.
	// The digests are memoized per node (tree.Digest), so across one
	// reduction or merge each subtree is hashed at most once.
	ok := a.Digest() == b.Digest()
	if !ok {
		ok = true
		for _, ca := range a.Children {
			found := false
			for _, cb := range b.Children {
				if c.sub(ca, cb) {
					found = true
					break
				}
			}
			if !found {
				ok = false
				break
			}
		}
	}
	if len(c.memo) < maxMemoEntries {
		c.memo[key] = ok
	}
	return ok
}

// subNaive is the definitional bottom-up check: string marking compare,
// no digest short-circuit. Kept as the oracle the differential tests and
// benchmarks pin the fast path against.
func (c *checker) subNaive(a, b *tree.Node) bool {
	key := [2]*tree.Node{a, b}
	if v, ok := c.memo[key]; ok {
		return v
	}
	ok := a.Kind == b.Kind && a.Name == b.Name
	if ok {
		for _, ca := range a.Children {
			found := false
			for _, cb := range b.Children {
				if c.subNaive(ca, cb) {
					found = true
					break
				}
			}
			if !found {
				ok = false
				break
			}
		}
	}
	if len(c.memo) < maxMemoEntries {
		c.memo[key] = ok
	}
	return ok
}

// Reduce returns the reduced version of t: the unique (up to isomorphism)
// equivalent tree with no subtree subsumed by a sibling. The input is not
// modified.
func Reduce(t *tree.Node) *tree.Node {
	if t == nil {
		return nil
	}
	return reduceInPlace(t.Copy())
}

// ReduceInPlace reduces t destructively and returns it. Children slices
// are rewritten; subtrees that survive are themselves reduced.
func ReduceInPlace(t *tree.Node) *tree.Node { return reduceInPlace(t) }

func reduceInPlace(t *tree.Node) *tree.Node {
	if t == nil {
		return nil
	}
	reduceChanged(t)
	return t
}

// reduceChanged reduces t bottom-up and reports whether anything in the
// subtree was pruned — in which case t's memoized digest (which covers
// the whole subtree) is stale and gets cleared. An untouched subtree
// keeps its memo.
//
// Fast path: a subtree carrying the reduced flag (tree.KnownReduced) was
// verified reduced and has not been mutated since — the flag rides the
// digest invalidation contract — so the whole recursion is skipped.
// Reduction is idempotent, which makes the steady-state re-reduce of a
// monotone system (most of the document untouched since the last merge)
// O(changed spine) instead of O(document).
func reduceChanged(t *tree.Node) bool {
	if !Naive && t.KnownReduced() {
		return false
	}
	changed := false
	for _, c := range t.Children {
		if reduceChanged(c) {
			changed = true
		}
	}
	before := len(t.Children)
	t.Children = pruneSiblings(t.Children)
	if len(t.Children) != before {
		changed = true
	}
	if changed {
		t.InvalidateDigest()
	}
	if !Naive {
		t.MarkReduced()
	}
	return changed
}

// pruneSiblings removes from the multiset every tree subsumed by another
// sibling, keeping one representative of each equivalence class. Children
// are assumed individually reduced.
//
// Fast path: siblings are first grouped by memoized digest — equal
// digests are isomorphic subtrees, so every group keeps exactly its first
// member and drops the rest in O(1) per duplicate. Only the distinct
// representatives then run the pairwise subsumption test. Merging a large
// result forest into a document that already contains most of it (the
// steady state of a monotone system) collapses to the digest grouping.
func pruneSiblings(children []*tree.Node) []*tree.Node {
	if len(children) <= 1 {
		return children
	}
	if Naive {
		return pruneSiblingsPairwise(children, newChecker())
	}
	// Group by digest, keeping first representatives in order. Small
	// sibling sets — the overwhelmingly common case — dedup by scanning
	// the representatives already kept: a handful of 32-byte compares
	// beats allocating a map at every node of a reduction.
	reps := children[:0]
	if len(children) <= 16 {
	dedup:
		for _, c := range children {
			d := c.Digest()
			for _, r := range reps {
				if r.Digest() == d {
					continue dedup
				}
			}
			reps = append(reps, c)
		}
	} else {
		seen := make(map[tree.Hash]bool, len(children))
		for _, c := range children {
			d := c.Digest()
			if seen[d] {
				continue
			}
			seen[d] = true
			reps = append(reps, c)
		}
	}
	if len(reps) <= 1 {
		return reps
	}
	return pruneSiblingsPairwise(reps, newChecker())
}

// pruneSiblingsPairwise is the definitional O(k²) sibling pruning over
// the given (deduplicated) children, in place.
func pruneSiblingsPairwise(children []*tree.Node, c *checker) []*tree.Node {
	if len(children) <= 1 {
		return children
	}
	keep := children[:0]
	for i, ci := range children {
		dominated := false
		for j, cj := range children {
			if i == j {
				continue
			}
			if c.sub(ci, cj) {
				// ci ⊆ cj. Drop ci unless they are equivalent and
				// ci comes first (keep the first representative).
				if c.sub(cj, ci) {
					if j < i {
						dominated = true
						break
					}
				} else {
					dominated = true
					break
				}
			}
		}
		if !dominated {
			keep = append(keep, ci)
		}
	}
	return keep
}

// IsReduced reports whether t contains no subtree subsumed by a sibling.
func IsReduced(t *tree.Node) bool {
	if t == nil {
		return true
	}
	c := newChecker()
	var rec func(n *tree.Node) bool
	rec = func(n *tree.Node) bool {
		for i, ci := range n.Children {
			for j, cj := range n.Children {
				if i != j && c.sub(ci, cj) && !(c.sub(cj, ci) && j > i) {
					return false
				}
			}
		}
		for _, ci := range n.Children {
			if !rec(ci) {
				return false
			}
		}
		return true
	}
	return rec(t)
}

// Union returns the least upper bound d ∪ d' of two trees with the same
// root marking: a tree with that root and all children subtrees of both,
// reduced. It returns nil if the roots are incomparable (different
// markings). Inputs are not modified.
func Union(a, b *tree.Node) *tree.Node {
	if a == nil {
		return Reduce(b)
	}
	if b == nil {
		return Reduce(a)
	}
	if sameMarking(a, b) {
		if !Naive {
			// LUB shortcut: when one side already subsumes the other, the
			// union is the larger side (up to equivalence) — skip the
			// concatenate-and-reduce entirely. With memoized digests the
			// checks are near-free for the common case of a snapshot
			// unioned with a grown version of itself (mirror syncs,
			// restores), collapsing the union to one copy.
			if Subsumed(b, a) {
				return Reduce(a)
			}
			if Subsumed(a, b) {
				return Reduce(b)
			}
		}
		u := &tree.Node{Kind: a.Kind, Name: a.Name}
		for _, c := range a.Children {
			u.Children = append(u.Children, c.Copy())
		}
		for _, c := range b.Children {
			u.Children = append(u.Children, c.Copy())
		}
		return reduceInPlace(u)
	}
	return nil
}

// sameMarking compares root markings, via symbols unless Naive.
func sameMarking(a, b *tree.Node) bool {
	if Naive {
		return a.Kind == b.Kind && a.Name == b.Name
	}
	return a.SameMarking(b)
}

// ForestSubsumed reports whether forest a is subsumed by forest b: every
// tree of a is subsumed by some tree of b.
func ForestSubsumed(a, b tree.Forest) bool {
	for _, ta := range a {
		found := false
		for _, tb := range b {
			if Subsumed(ta, tb) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// ForestEquivalent reports mutual forest subsumption.
func ForestEquivalent(a, b tree.Forest) bool {
	return ForestSubsumed(a, b) && ForestSubsumed(b, a)
}

// ReduceForest returns a reduced version of the forest: every tree reduced
// and no tree subsumed by another (one representative per equivalence
// class). Inputs are not modified.
func ReduceForest(f tree.Forest) tree.Forest {
	reduced := make(tree.Forest, len(f))
	for i, t := range f {
		reduced[i] = Reduce(t)
	}
	kept := pruneSiblings(reduced)
	out := make(tree.Forest, len(kept))
	copy(out, kept)
	return out
}
