package subsume_test

import (
	"math/rand"
	"testing"

	"axml/internal/subsume"
	"axml/internal/tree"
)

func buildWide(width int) *tree.Node {
	root := tree.NewLabel("r")
	for i := 0; i < width; i++ {
		root.Children = append(root.Children, tree.NewLabel("item",
			tree.NewValue(string(rune('a'+i%16)))))
	}
	return root
}

func buildDeep(depth int) *tree.Node {
	n := tree.NewLabel("leaf")
	for i := 0; i < depth; i++ {
		n = tree.NewLabel("a", n, tree.NewValue("x"))
	}
	return n
}

func BenchmarkSubsumedWide(b *testing.B) {
	x := buildWide(512)
	y := buildWide(512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !subsume.Subsumed(x, y) {
			b.Fatal("expected subsumption")
		}
	}
}

func BenchmarkSubsumedDeep(b *testing.B) {
	x := buildDeep(256)
	y := buildDeep(256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !subsume.Subsumed(x, y) {
			b.Fatal("expected subsumption")
		}
	}
}

func BenchmarkReduceRedundant(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	root := tree.NewLabel("r")
	for i := 0; i < 256; i++ {
		c := tree.NewLabel("item", tree.NewValue(string(rune('a'+rng.Intn(8)))))
		root.Children = append(root.Children, c, c.Copy())
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		subsume.Reduce(root)
	}
}

func BenchmarkUnion(b *testing.B) {
	x := buildWide(128)
	y := buildDeep(64)
	y.Name = "r"
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		subsume.Union(x, y)
	}
}
