package subsume_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"axml/internal/subsume"
	"axml/internal/syntax"
	"axml/internal/tree"
)

func parse(t *testing.T, s string) *tree.Node {
	t.Helper()
	n, err := syntax.ParseDocument(s)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return n
}

func TestSubsumedBasics(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{`a`, `a`, true},
		{`a`, `b`, false},
		{`a`, `a{b}`, true},            // smaller into larger
		{`a{b}`, `a`, false},           // child requires witness
		{`a{b,c}`, `a{b,c,d}`, true},   // subset of children
		{`a{b,b}`, `a{b}`, true},       // homomorphism may merge siblings
		{`a{b{c}}`, `a{b{c},b}`, true}, // witness with more info
		{`a{b{c}}`, `a{b,b{d}}`, false},
		{`"v"`, `"v"`, true},
		{`"v"`, `"w"`, false},
		{`!f{"5"}`, `!f{"5"}`, true},
		{`!f{"5"}`, `!g{"5"}`, false}, // function subsumption ignored (Sec 2.1 remark)
		{`a{!f{"5"}}`, `a{!g{"5"}}`, false},
		{`a{"x"}`, `a{x}`, false}, // value vs label
	}
	for _, c := range cases {
		got := subsume.Subsumed(parse(t, c.a), parse(t, c.b))
		if got != c.want {
			t.Errorf("subsume.Subsumed(%s, %s) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestSubsumedNil(t *testing.T) {
	n := parse(t, "a")
	if !subsume.Subsumed(nil, n) {
		t.Error("nil should be subsumed by anything")
	}
	if subsume.Subsumed(n, nil) {
		t.Error("non-nil subsumed by nil")
	}
}

func TestEquivalent(t *testing.T) {
	a := parse(t, `a{b{c,c},b{c}}`)
	b := parse(t, `a{b{c}}`)
	if !subsume.Equivalent(a, b) {
		t.Fatal("duplicate-collapsed trees should be equivalent")
	}
	if subsume.Equivalent(a, parse(t, `a{b{c,d}}`)) {
		t.Fatal("trees with different info reported equivalent")
	}
}

func TestReducePaperExample(t *testing.T) {
	// Section 2.1: a{b{c,c},b{c,d,d}} reduces to a{b{c,d}}.
	in := parse(t, `a{b{c,c},b{c,d,d}}`)
	want := parse(t, `a{b{c,d}}`)
	got := subsume.Reduce(in)
	if !tree.Isomorphic(got, want) {
		t.Fatalf("Reduce = %s, want %s", got.CanonicalString(), want.CanonicalString())
	}
	// The original must be untouched.
	if in.Size() != 8 {
		t.Fatalf("Reduce mutated its input: size %d", in.Size())
	}
}

func TestReduceKeepsIncomparableSiblings(t *testing.T) {
	in := parse(t, `a{b{c},b{d},e}`)
	got := subsume.Reduce(in)
	if got.Size() != in.Size() {
		t.Fatalf("Reduce dropped incomparable siblings: %s", got.CanonicalString())
	}
}

func TestReduceEquivalentDuplicatesKeepOne(t *testing.T) {
	in := parse(t, `a{b{c},b{c},b{c}}`)
	got := subsume.Reduce(in)
	if !tree.Isomorphic(got, parse(t, `a{b{c}}`)) {
		t.Fatalf("Reduce = %s", got.CanonicalString())
	}
}

func TestIsReduced(t *testing.T) {
	if !subsume.IsReduced(parse(t, `a{b{c},b{d}}`)) {
		t.Error("reduced tree reported unreduced")
	}
	if subsume.IsReduced(parse(t, `a{b,b{c}}`)) {
		t.Error("unreduced tree reported reduced")
	}
	if subsume.IsReduced(parse(t, `a{x{b,b{c}}}`)) {
		t.Error("deep redundancy missed")
	}
	if !subsume.IsReduced(nil) {
		t.Error("nil should be reduced")
	}
}

func TestReduceInPlace(t *testing.T) {
	n := parse(t, `a{b,b{c}}`)
	got := subsume.ReduceInPlace(n)
	if got != n {
		t.Fatal("ReduceInPlace should return its argument")
	}
	if !tree.Isomorphic(n, parse(t, `a{b{c}}`)) {
		t.Fatalf("ReduceInPlace = %s", n.CanonicalString())
	}
}

func TestUnion(t *testing.T) {
	a := parse(t, `a{b{c}}`)
	b := parse(t, `a{b{d},e}`)
	u := subsume.Union(a, b)
	want := parse(t, `a{b{c},b{d},e}`)
	if !tree.Isomorphic(u, want) {
		t.Fatalf("Union = %s, want %s", u.CanonicalString(), want.CanonicalString())
	}
	if subsume.Union(parse(t, `a`), parse(t, `b`)) != nil {
		t.Fatal("Union of incomparable roots should be nil")
	}
	if !tree.Isomorphic(subsume.Union(nil, a), subsume.Reduce(a)) {
		t.Fatal("subsume.Union(nil, a) should reduce a")
	}
	if !tree.Isomorphic(subsume.Union(a, nil), subsume.Reduce(a)) {
		t.Fatal("subsume.Union(a, nil) should reduce a")
	}
}

func TestUnionIsLeastUpperBound(t *testing.T) {
	a := parse(t, `a{b{c},d}`)
	b := parse(t, `a{b{e}}`)
	u := subsume.Union(a, b)
	if !subsume.Subsumed(a, u) || !subsume.Subsumed(b, u) {
		t.Fatal("Union is not an upper bound")
	}
	// Dropping anything from u loses one of them.
	if subsume.Subsumed(a, b) || subsume.Subsumed(b, a) {
		t.Fatal("test inputs should be incomparable")
	}
}

func TestForestOps(t *testing.T) {
	f := tree.Forest{parse(t, `a{b}`), parse(t, `c`)}
	g := tree.Forest{parse(t, `a{b,d}`), parse(t, `c{e}`), parse(t, `z`)}
	if !subsume.ForestSubsumed(f, g) {
		t.Fatal("forest subsumption failed")
	}
	if subsume.ForestSubsumed(g, f) {
		t.Fatal("reverse forest subsumption should fail")
	}
	if !subsume.ForestEquivalent(f, tree.Forest{parse(t, `c`), parse(t, `a{b}`)}) {
		t.Fatal("forest equivalence should ignore order")
	}
	r := subsume.ReduceForest(tree.Forest{parse(t, `a{b}`), parse(t, `a{b,c}`), parse(t, `a{b}`)})
	if len(r) != 1 || !tree.Isomorphic(r[0], parse(t, `a{b,c}`)) {
		t.Fatalf("ReduceForest = %v", r)
	}
}

func TestProposition21ReflexiveTransitive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomTree(rng, 3)
		b := randomTree(rng, 3)
		c := randomTree(rng, 3)
		if !subsume.Subsumed(a, a) {
			return false
		}
		if subsume.Subsumed(a, b) && subsume.Subsumed(b, c) && !subsume.Subsumed(a, c) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestProposition21UniqueReducedVersion(t *testing.T) {
	// Reducing any sibling permutation of the same tree yields the same
	// canonical form, and the reduced version is equivalent to the input.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := randomTree(rng, 4)
		p := shuffleTree(rng, n)
		rn, rp := subsume.Reduce(n), subsume.Reduce(p)
		if rn.CanonicalString() != rp.CanonicalString() {
			return false
		}
		return subsume.Equivalent(n, rn) && subsume.IsReduced(rn)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyUnionCommutativeIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomTree(rng, 3)
		b := randomTree(rng, 3)
		a.Kind, b.Kind = tree.Label, tree.Label
		a.Name, b.Name = "r", "r"
		ab, ba := subsume.Union(a, b), subsume.Union(b, a)
		if ab.CanonicalString() != ba.CanonicalString() {
			return false
		}
		aa := subsume.Union(a, a)
		return subsume.Equivalent(aa, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Local copies of the random generators (kept package-local to avoid
// export-for-test plumbing).
func randomTree(rng *rand.Rand, maxDepth int) *tree.Node {
	kinds := []tree.Kind{tree.Label, tree.Label, tree.Label, tree.Value, tree.Func}
	k := kinds[rng.Intn(len(kinds))]
	name := string(rune('a' + rng.Intn(4)))
	if k == tree.Value || maxDepth == 0 {
		switch k {
		case tree.Func:
			return tree.NewFunc(name)
		case tree.Value:
			return tree.NewValue(name)
		default:
			return tree.NewLabel(name)
		}
	}
	n := &tree.Node{Kind: k, Name: name}
	for i := 0; i < rng.Intn(4); i++ {
		n.Children = append(n.Children, randomTree(rng, maxDepth-1))
	}
	return n
}

func shuffleTree(rng *rand.Rand, n *tree.Node) *tree.Node {
	c := &tree.Node{Kind: n.Kind, Name: n.Name}
	for _, i := range rng.Perm(len(n.Children)) {
		c.Children = append(c.Children, shuffleTree(rng, n.Children[i]))
	}
	return c
}

// TestReducedFlagLifecycle pins the steady-state reduce skip: a reduced
// subtree is marked, an untouched re-reduce is a no-op that keeps the
// mark, and any mutation through the invalidation contract clears it so
// the next reduce really runs.
func TestReducedFlagLifecycle(t *testing.T) {
	n := tree.NewLabel("r",
		tree.NewLabel("a", tree.NewValue("1")),
		tree.NewLabel("a", tree.NewValue("1")), // duplicate: something to prune
	)
	subsume.ReduceInPlace(n)
	if len(n.Children) != 1 {
		t.Fatalf("duplicate not pruned: %s", n)
	}
	if !n.KnownReduced() {
		t.Fatal("reduced tree not marked")
	}
	// Idempotent re-reduce keeps the tree and the mark.
	subsume.ReduceInPlace(n)
	if !n.KnownReduced() || len(n.Children) != 1 {
		t.Fatalf("re-reduce changed the tree: %s", n)
	}

	// Growth through Add clears the mark; reduce then prunes the new
	// duplicate.
	n.Add(n.Children[0].Copy())
	if n.KnownReduced() {
		t.Fatal("mark survived Add")
	}
	subsume.ReduceInPlace(n)
	if len(n.Children) != 1 {
		t.Fatalf("new duplicate not pruned: %s", n)
	}

	// StampAll (Touch/Restore/replica sync) conservatively clears marks
	// everywhere.
	n.StampAll(3)
	if n.KnownReduced() {
		t.Fatal("mark survived StampAll")
	}
}

// TestReduceAfterRawAppend is the out-of-band growth scenario (peer push):
// children appended through a raw slice write leave stale digests and a
// stale reduced mark, which InvalidateDigestAll must clear for reduction
// to see the new data.
func TestReduceAfterRawAppend(t *testing.T) {
	n := tree.NewLabel("r", tree.NewLabel("a", tree.NewValue("1")))
	subsume.ReduceInPlace(n)
	_ = n.Digest()

	// Raw append, bypassing Add: a duplicate plus a genuinely new child.
	n.Children = append(n.Children,
		tree.NewLabel("a", tree.NewValue("1")),
		tree.NewLabel("b"))
	tree.InvalidateDigestAll(n)
	subsume.ReduceInPlace(n)
	if len(n.Children) != 2 {
		t.Fatalf("raw-appended duplicate not pruned: %s", n)
	}
	if n.Digest() != n.CanonicalHash() {
		t.Fatal("digest stale after raw append + invalidate + reduce")
	}
	if !subsume.IsReduced(n) {
		t.Fatalf("not reduced: %s", n)
	}
}

// TestNaiveIgnoresReducedMark: the oracle must not trust (or plant) marks.
func TestNaiveIgnoresReducedMark(t *testing.T) {
	defer func(old bool) { subsume.Naive = old }(subsume.Naive)
	n := tree.NewLabel("r",
		tree.NewLabel("a", tree.NewValue("1")),
		tree.NewLabel("a", tree.NewValue("1")),
	)
	// Plant a wrong mark the way no maintained path would; the naive
	// reducer must still prune.
	n.MarkReduced()
	subsume.Naive = true
	subsume.ReduceInPlace(n)
	if len(n.Children) != 1 {
		t.Fatalf("naive reduce trusted a planted mark: %s", n)
	}
}
