// Package journal implements the durability substrate for AXML peers: an
// append-only write-ahead log of CRC-framed records plus atomically
// written snapshots that allow log compaction.
//
// The package is payload-agnostic — records carry opaque bytes with a
// one-byte type tag; the peer layer encodes document states in the XML
// wire format. Durability leans on the paper's semantics rather than on
// heavyweight log machinery: services are monotone and fair rewritings
// confluent (Theorem 2.1), so records are full document states merged by
// least upper bound on replay. Replaying a record twice, replaying records
// already covered by a snapshot, or losing a torn suffix are all safe —
// merges are idempotent and a lost suffix is re-derived by re-sweeping.
//
// On-disk record frame (little-endian):
//
//	magic(4) type(1) seq(8) len(4) crc32(4) payload(len)
//
// The CRC covers type, seq, len and payload. Replay stops cleanly at the
// first frame that is short, mis-magicked or fails its CRC — the torn
// tail a crash mid-append leaves behind — and Open truncates the file back
// to the intact prefix so later appends never sit beyond garbage.
package journal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"axml/internal/obs"
)

// Frame constants.
const (
	recordMagic   = 0x4158574a // "AXWJ"
	snapshotMagic = 0x4158534e // "AXSN"
	headerSize    = 4 + 1 + 8 + 4 + 4
)

// MaxPayload bounds a single record (and snapshot) payload, so a corrupt
// length field cannot make replay attempt a multi-gigabyte allocation.
const MaxPayload = 1 << 28 // 256 MiB

// ErrClosed is returned by operations on a closed journal.
var ErrClosed = errors.New("journal: closed")

// ErrCorruptSnapshot is returned when a snapshot file exists but fails its
// frame or checksum validation. Unlike a torn log tail — which is expected
// after a crash and recovered from silently — a bad snapshot means the
// compacted history is gone, so the caller must decide (the peer refuses
// to start rather than silently serving a truncated past).
var ErrCorruptSnapshot = errors.New("journal: corrupt snapshot")

// Record is one journal entry.
type Record struct {
	// Seq is the record's strictly increasing sequence number (from 1).
	Seq uint64
	// Type tags the payload encoding; the journal does not interpret it.
	Type byte
	// Payload is the opaque record body.
	Payload []byte
}

// Info summarizes a replay: where the intact prefix of the log ends.
type Info struct {
	// LastSeq is the sequence number of the last intact record (0 when
	// the log is empty or missing).
	LastSeq uint64
	// GoodLen is the byte length of the intact prefix; Open truncates the
	// file to it.
	GoodLen int64
	// Records counts the intact records replayed.
	Records int
	// Torn reports that bytes beyond the intact prefix were present and
	// discarded — the signature of a crash mid-append.
	Torn bool
}

// Replay scans the log at path, calling fn (if non-nil) for each intact
// record in order. A missing file replays as empty. A torn or corrupt
// tail ends the scan without error (Info.Torn is set); an error from fn
// aborts the scan and is returned. The payload passed to fn is a private
// copy the callback may keep.
func Replay(path string, fn func(Record) error) (Info, error) {
	var info Info
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return info, nil
	}
	if err != nil {
		return info, err
	}
	defer f.Close()
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		return info, err
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return info, err
	}
	r := bufio.NewReaderSize(f, 1<<16)
	for {
		rec, frameLen, ok := readFrame(r, info.LastSeq)
		if !ok {
			info.Torn = info.GoodLen < size
			return info, nil
		}
		if fn != nil {
			if err := fn(rec); err != nil {
				return info, err
			}
		}
		info.LastSeq = rec.Seq
		info.GoodLen += frameLen
		info.Records++
	}
}

// readFrame decodes one record frame. ok=false means the remaining bytes
// do not form an intact next record (short read, bad magic, out-of-order
// sequence, oversized length or CRC mismatch) — replay treats all of these
// as the torn tail and stops.
func readFrame(r io.Reader, prevSeq uint64) (rec Record, frameLen int64, ok bool) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return rec, 0, false
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != recordMagic {
		return rec, 0, false
	}
	rec.Type = hdr[4]
	rec.Seq = binary.LittleEndian.Uint64(hdr[5:13])
	n := binary.LittleEndian.Uint32(hdr[13:17])
	want := binary.LittleEndian.Uint32(hdr[17:21])
	if rec.Seq <= prevSeq || n > MaxPayload {
		return rec, 0, false
	}
	rec.Payload = make([]byte, n)
	if _, err := io.ReadFull(r, rec.Payload); err != nil {
		return rec, 0, false
	}
	if frameCRC(rec.Type, rec.Seq, rec.Payload) != want {
		return rec, 0, false
	}
	return rec, int64(headerSize) + int64(n), true
}

func frameCRC(typ byte, seq uint64, payload []byte) uint32 {
	var hdr [9]byte
	hdr[0] = typ
	binary.LittleEndian.PutUint64(hdr[1:9], seq)
	c := crc32.ChecksumIEEE(hdr[:])
	return crc32.Update(c, crc32.IEEETable, payload)
}

// Options configures a journal.
type Options struct {
	// SyncEvery fsyncs the log after every n appended records: 1 syncs
	// each append (safest), larger values batch syncs (a crash can lose
	// at most n-1 synced-but-unflushed records, which re-sweeping
	// re-derives), 0 never syncs explicitly (the OS decides).
	SyncEvery int
	// WrapWriter, when non-nil, wraps the log file's writer — the fault
	// injection hook used to deliver torn or failed writes in tests (see
	// internal/faults). Appends go through the wrapper; fsync still goes
	// to the file.
	WrapWriter func(io.Writer) io.Writer
	// Metrics, when non-nil, receives the journal's counters and
	// latencies: journal.appends / journal.bytes (records and payload+
	// frame bytes appended), journal.fsync_ns (fsync latency histogram),
	// journal.fsyncs and journal.resets (compactions). Durable peers
	// thread their registry here so journal cost shows up at /debug/vars
	// next to the sweep latencies it taxes.
	Metrics *obs.Registry
	// Tracer, when non-nil, gets one "fsync" span per fsync batch
	// (attrs: records = appends the batch made durable).
	Tracer *obs.Tracer
}

// Journal is an open write-ahead log. Safe for concurrent use.
type Journal struct {
	mu     sync.Mutex
	f      *os.File
	w      io.Writer
	seq    uint64
	dirty  int // appended records not yet fsynced
	opts   Options
	closed bool
}

// Open opens (creating if necessary) the log at path for appending,
// truncating any torn tail beyond info.GoodLen first. info should come
// from a Replay of the same path; appended records continue from
// info.LastSeq+1.
func Open(path string, info Info, opts Options) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(info.GoodLen); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(info.GoodLen, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	j := &Journal{f: f, seq: info.LastSeq, opts: opts}
	j.w = io.Writer(f)
	if opts.WrapWriter != nil {
		j.w = opts.WrapWriter(f)
	}
	return j, nil
}

// LastSeq returns the sequence number of the last appended (or replayed)
// record.
func (j *Journal) LastSeq() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq
}

// Append writes one record and returns its sequence number. The frame is
// written in a single Write call; per Options.SyncEvery the file may be
// fsynced before returning. A failed or short write leaves a torn tail
// that the next Open truncates away.
func (j *Journal) Append(typ byte, payload []byte) (uint64, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return 0, ErrClosed
	}
	if len(payload) > MaxPayload {
		return 0, fmt.Errorf("journal: payload %d bytes exceeds cap %d", len(payload), MaxPayload)
	}
	seq := j.seq + 1
	frame := make([]byte, headerSize+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], recordMagic)
	frame[4] = typ
	binary.LittleEndian.PutUint64(frame[5:13], seq)
	binary.LittleEndian.PutUint32(frame[13:17], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[17:21], frameCRC(typ, seq, payload))
	copy(frame[headerSize:], payload)
	if _, err := j.w.Write(frame); err != nil {
		return 0, err
	}
	j.seq = seq
	j.dirty++
	if m := j.opts.Metrics; m != nil {
		m.Counter("journal.appends").Inc()
		m.Counter("journal.bytes").Add(int64(len(frame)))
	}
	if j.opts.SyncEvery > 0 && j.dirty >= j.opts.SyncEvery {
		if err := j.syncLocked(); err != nil {
			return seq, err
		}
	}
	return seq, nil
}

// Sync flushes outstanding appends to stable storage.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	return j.syncLocked()
}

func (j *Journal) syncLocked() error {
	if j.dirty == 0 {
		return nil
	}
	start := time.Now()
	if err := j.f.Sync(); err != nil {
		return err
	}
	if m := j.opts.Metrics; m != nil {
		m.Histogram("journal.fsync_ns").ObserveSince(start)
		m.Counter("journal.fsyncs").Inc()
	}
	if tr := j.opts.Tracer; tr.Enabled() {
		tr.Emit(obs.Span{Kind: "fsync", TSUs: tr.Now(),
			DurUs: time.Since(start).Microseconds(),
			Attrs: map[string]int64{"records": int64(j.dirty)}})
	}
	j.dirty = 0
	return nil
}

// Reset empties the log after a snapshot has made its records redundant
// (compaction). Sequence numbers keep increasing across a reset, so a
// snapshot's sequence number still orders it against later records.
func (j *Journal) Reset() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return ErrClosed
	}
	if err := j.f.Truncate(0); err != nil {
		return err
	}
	if _, err := j.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	j.dirty = 0
	if m := j.opts.Metrics; m != nil {
		m.Counter("journal.resets").Inc()
	}
	return j.f.Sync()
}

// Close syncs and closes the log.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	syncErr := j.f.Sync()
	closeErr := j.f.Close()
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}

// WriteSnapshot atomically replaces the snapshot at path with one carrying
// the given payload, stamped with the journal sequence number it covers
// (every record with Seq <= seq is reflected in the payload). The write
// goes to a temp file in the same directory, is fsynced, then renamed over
// path — a crash at any point leaves either the old snapshot or the new
// one, never a torn hybrid.
func WriteSnapshot(path string, seq uint64, payload []byte) error {
	if len(payload) > MaxPayload {
		return fmt.Errorf("journal: snapshot payload %d bytes exceeds cap %d", len(payload), MaxPayload)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	cleanup := func() {
		tmp.Close()
		os.Remove(tmpName)
	}
	frame := make([]byte, headerSize+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], snapshotMagic)
	frame[4] = 0
	binary.LittleEndian.PutUint64(frame[5:13], seq)
	binary.LittleEndian.PutUint32(frame[13:17], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[17:21], frameCRC(0, seq, payload))
	copy(frame[headerSize:], payload)
	if _, err := tmp.Write(frame); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	// Persist the rename itself (best-effort: some filesystems do not
	// support fsync on directories).
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// ReadSnapshot reads the snapshot at path, returning the journal sequence
// number it covers and its payload. A missing file returns os.ErrNotExist;
// a present-but-invalid file returns ErrCorruptSnapshot.
func ReadSnapshot(path string) (seq uint64, payload []byte, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, nil, err
	}
	if len(data) < headerSize {
		return 0, nil, fmt.Errorf("%w: %d bytes, want at least %d", ErrCorruptSnapshot, len(data), headerSize)
	}
	if binary.LittleEndian.Uint32(data[0:4]) != snapshotMagic {
		return 0, nil, fmt.Errorf("%w: bad magic", ErrCorruptSnapshot)
	}
	seq = binary.LittleEndian.Uint64(data[5:13])
	n := binary.LittleEndian.Uint32(data[13:17])
	want := binary.LittleEndian.Uint32(data[17:21])
	if n > MaxPayload || int(n) != len(data)-headerSize {
		return 0, nil, fmt.Errorf("%w: payload length %d vs %d bytes on disk", ErrCorruptSnapshot, n, len(data)-headerSize)
	}
	payload = data[headerSize:]
	if frameCRC(data[4], seq, payload) != want {
		return 0, nil, fmt.Errorf("%w: checksum mismatch", ErrCorruptSnapshot)
	}
	return seq, payload, nil
}
