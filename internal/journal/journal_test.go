package journal

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func appendRecords(t *testing.T, path string, opts Options, payloads ...string) {
	t.Helper()
	info, err := Replay(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	j, err := Open(path, info, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	for i, p := range payloads {
		if _, err := j.Append(byte(i%3), []byte(p)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
}

func replayAll(t *testing.T, path string) ([]Record, Info) {
	t.Helper()
	var recs []Record
	info, err := Replay(path, func(r Record) error {
		recs = append(recs, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return recs, info
}

func TestAppendReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	appendRecords(t, path, Options{SyncEvery: 1}, "one", "two", "three")

	recs, info := replayAll(t, path)
	if len(recs) != 3 || info.LastSeq != 3 || info.Torn {
		t.Fatalf("replay: %d records, info %+v", len(recs), info)
	}
	for i, want := range []string{"one", "two", "three"} {
		if string(recs[i].Payload) != want || recs[i].Seq != uint64(i+1) {
			t.Fatalf("record %d: %+v", i, recs[i])
		}
	}

	// Re-open and keep appending: sequence numbers continue.
	appendRecords(t, path, Options{}, "four")
	recs, info = replayAll(t, path)
	if len(recs) != 4 || recs[3].Seq != 4 || string(recs[3].Payload) != "four" {
		t.Fatalf("after reopen: %+v info %+v", recs, info)
	}
}

func TestReplayMissingFile(t *testing.T) {
	info, err := Replay(filepath.Join(t.TempDir(), "absent.wal"), nil)
	if err != nil || info.LastSeq != 0 || info.Torn || info.Records != 0 {
		t.Fatalf("missing file: %+v, %v", info, err)
	}
}

func TestReplayTornTailIsTolerated(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "j.wal")
	appendRecords(t, path, Options{SyncEvery: 1}, "alpha", "beta")
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Truncate mid-way through the second record: only the first survives.
	for cut := len(whole) - 1; cut > headerSize+5; cut-- {
		if err := os.WriteFile(path, whole[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		recs, info := replayAll(t, path)
		if len(recs) == 0 || string(recs[0].Payload) != "alpha" {
			t.Fatalf("cut %d: lost the intact prefix: %+v", cut, recs)
		}
		if len(recs) == 1 && !info.Torn {
			t.Fatalf("cut %d: torn tail not reported: %+v", cut, info)
		}
	}

	// Garbage appended after intact records is discarded the same way.
	if err := os.WriteFile(path, append(append([]byte{}, whole...), "garbage!"...), 0o644); err != nil {
		t.Fatal(err)
	}
	recs, info := replayAll(t, path)
	if len(recs) != 2 || !info.Torn {
		t.Fatalf("garbage tail: %d records, %+v", len(recs), info)
	}

	// Open truncates the garbage; a fresh append lands cleanly after it.
	j, err := Open(path, info, Options{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Append(9, []byte("gamma")); err != nil {
		t.Fatal(err)
	}
	j.Close()
	recs, info = replayAll(t, path)
	if len(recs) != 3 || info.Torn || string(recs[2].Payload) != "gamma" {
		t.Fatalf("after truncate+append: %d records %+v", len(recs), info)
	}
}

func TestReplayRejectsCorruptMiddle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	appendRecords(t, path, Options{SyncEvery: 1}, "alpha", "beta")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte of the first record: the CRC catches it and
	// replay keeps nothing (it cannot trust anything at or past the
	// corruption).
	data[headerSize] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	recs, info := replayAll(t, path)
	if len(recs) != 0 || !info.Torn {
		t.Fatalf("corrupt first record: %d records %+v", len(recs), info)
	}
}

func TestReplayCallbackErrorAborts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	appendRecords(t, path, Options{}, "a", "b")
	boom := errors.New("boom")
	_, err := Replay(path, func(Record) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("want callback error, got %v", err)
	}
}

func TestSyncBatching(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	info, err := Replay(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	j, err := Open(path, info, Options{SyncEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	for i := 0; i < 7; i++ {
		if _, err := j.Append(0, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := j.LastSeq(); got != 7 {
		t.Fatalf("LastSeq = %d", got)
	}
}

func TestResetCompactsButKeepsSequence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	info, err := Replay(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	j, err := Open(path, info, Options{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"a", "b"} {
		if _, err := j.Append(0, []byte(p)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Reset(); err != nil {
		t.Fatal(err)
	}
	seq, err := j.Append(0, []byte("c"))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 3 {
		t.Fatalf("sequence restarted after reset: %d", seq)
	}
	j.Close()
	recs, info := replayAll(t, path)
	if len(recs) != 1 || recs[0].Seq != 3 || info.Torn {
		t.Fatalf("after reset: %+v info %+v", recs, info)
	}
}

func TestSnapshotRoundTripAndAtomicity(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap")
	if err := WriteSnapshot(path, 42, []byte("state-v1")); err != nil {
		t.Fatal(err)
	}
	if err := WriteSnapshot(path, 99, []byte("state-v2")); err != nil {
		t.Fatal(err)
	}
	seq, payload, err := ReadSnapshot(path)
	if err != nil || seq != 99 || string(payload) != "state-v2" {
		t.Fatalf("read: seq=%d payload=%q err=%v", seq, payload, err)
	}
	// No temp files left behind.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("leftover files: %v", entries)
	}
}

func TestReadSnapshotErrors(t *testing.T) {
	dir := t.TempDir()
	if _, _, err := ReadSnapshot(filepath.Join(dir, "absent")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("missing snapshot: %v", err)
	}
	bad := filepath.Join(dir, "bad")
	if err := os.WriteFile(bad, []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadSnapshot(bad); !errors.Is(err, ErrCorruptSnapshot) {
		t.Fatalf("short file: %v", err)
	}
	if err := WriteSnapshot(bad, 7, []byte("ok")); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(bad)
	data[len(data)-1] ^= 0x01
	if err := os.WriteFile(bad, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadSnapshot(bad); !errors.Is(err, ErrCorruptSnapshot) {
		t.Fatalf("bit flip: %v", err)
	}
}

func TestClosedJournalRejectsUse(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	j, err := Open(path, Info{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil { // double close is fine
		t.Fatal(err)
	}
	if _, err := j.Append(0, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v", err)
	}
	if err := j.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("sync after close: %v", err)
	}
}

// failAfter injects a torn write: write k passes only partial bytes
// through, then fails; later writes fail outright. A stand-in for
// faults.CrashWriter without the import (journal must not depend on
// faults).
type failAfter struct {
	w       io.Writer
	k       int
	partial int
	n       int
}

func (f *failAfter) Write(p []byte) (int, error) {
	f.n++
	if f.n < f.k {
		return f.w.Write(p)
	}
	cut := f.partial
	if cut > len(p) {
		cut = len(p)
	}
	if cut > 0 {
		f.w.Write(p[:cut])
	}
	return cut, fmt.Errorf("torn write at %d", f.n)
}

func TestTornAppendRecoversToIntactPrefix(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	j, err := Open(path, Info{}, Options{
		SyncEvery:  1,
		WrapWriter: func(w io.Writer) io.Writer { return &failAfter{w: w, k: 3, partial: 7} },
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range []string{"aa", "bb"} {
		if _, err := j.Append(0, []byte(p)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if _, err := j.Append(0, []byte("cc")); err == nil {
		t.Fatal("torn append reported success")
	}
	j.Close()

	recs, info := replayAll(t, path)
	if len(recs) != 2 || !info.Torn {
		t.Fatalf("recovered %d records, info %+v", len(recs), info)
	}
	if !bytes.Equal(recs[0].Payload, []byte("aa")) || !bytes.Equal(recs[1].Payload, []byte("bb")) {
		t.Fatalf("recovered payloads: %q %q", recs[0].Payload, recs[1].Payload)
	}
}
