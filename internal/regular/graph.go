// Package regular computes a finite graph representation of the (possibly
// infinite) semantics of simple positive AXML systems, following Lemma 3.2
// of the paper, and uses it to decide termination (Theorem 3.3),
// q-finiteness (Proposition 3.2) and the lazy-evaluation properties of
// Section 4 for simple systems.
//
// The crux of Lemma 3.2: in a simple positive system, every subtree of the
// semantics is either an original subtree of I or the instantiation µ(r)
// of some service head under an assignment µ of label/value/function
// variables; identical instantiations have equivalent expansions wherever
// they occur, so the (finitely many) instantiations can be shared. The
// graph has one vertex per original document node plus one shared vertex
// per (service, assignment) instantiation node; invocation results attach
// as extra child edges of the call's parent vertex. Sharing introduces
// cycles exactly when the semantics is an infinite (regular) tree.
package regular

import (
	"fmt"
	"sort"
	"strings"

	"axml/internal/core"
	"axml/internal/pattern"
	"axml/internal/query"
	"axml/internal/subsume"
	"axml/internal/tree"
)

// Vertex is a node of the regular-tree graph. Children edges may form
// cycles; the represented (possibly infinite) tree is the unfolding.
type Vertex struct {
	// ID is a stable identifier, unique within one Graph.
	ID int
	// Kind and Name mirror tree.Node markings.
	Kind tree.Kind
	Name string
	// Children are the child edges, in attachment order.
	Children []*Vertex
	// Origin is the original document node this vertex was converted
	// from, or nil for instantiation vertices.
	Origin *tree.Node
}

// Graph is the finite representation of a simple positive system's
// semantics.
type Graph struct {
	// Roots maps document names to their root vertices.
	Roots map[string]*Vertex
	// DocNames preserves the system's document order.
	DocNames []string

	nextID int
	// inst memoizes the shared instantiation vertex per (service,
	// assignment) and head position.
	inst map[string]*Vertex
	// attached memoizes attachments per (parent ID, instantiation key).
	attached map[attachKey]bool
	// frozen holds original function nodes excluded from invocation
	// (the ↓N construction of Section 4).
	frozen map[*tree.Node]bool
	// Stats
	Invocations int
	Attachments int
}

type attachKey struct {
	parent int
	inst   string
}

// BuildOptions configures Build.
type BuildOptions struct {
	// Exclude lists original function nodes whose calls are never
	// invoked: Build then represents [I↓N] instead of [I].
	Exclude map[*tree.Node]bool
	// MaxInstantiations aborts the construction if more than this many
	// distinct instantiation vertices are created (the construction is
	// exponential in the worst case, Lemma 3.2). 0 means DefaultMaxInst.
	MaxInstantiations int
}

// DefaultMaxInst bounds graph constructions whose options leave
// MaxInstantiations at zero.
const DefaultMaxInst = 200000

// Build computes the graph representation of the semantics of a simple
// positive system. The system is not modified. It fails on systems that
// are not simple positive (Lemma 3.2 does not apply: Example 3.3 has a
// non-regular semantics).
func Build(s *core.System, opts BuildOptions) (*Graph, error) {
	if !s.IsPositive() {
		return nil, fmt.Errorf("regular: system has black-box services; graph representation needs declarative definitions")
	}
	if !s.IsSimple() {
		return nil, fmt.Errorf("regular: system is not simple (tree variables present); its semantics may be non-regular")
	}
	maxInst := opts.MaxInstantiations
	if maxInst == 0 {
		maxInst = DefaultMaxInst
	}
	g := &Graph{
		Roots:    map[string]*Vertex{},
		inst:     map[string]*Vertex{},
		attached: map[attachKey]bool{},
		frozen:   opts.Exclude,
	}
	for _, name := range s.DocNames() {
		g.DocNames = append(g.DocNames, name)
		g.Roots[name] = g.fromTree(s.Document(name).Root)
	}
	// Saturate: repeatedly evaluate every reachable call edge until no
	// new attachment happens. The loop terminates because vertices and
	// instantiation keys are finite (or the instantiation bound trips).
	for {
		changed, err := g.saturateOnce(s)
		if err != nil {
			return nil, err
		}
		if len(g.inst) > maxInst {
			return nil, fmt.Errorf("regular: more than %d instantiations; raise BuildOptions.MaxInstantiations", maxInst)
		}
		if !changed {
			return g, nil
		}
	}
}

func (g *Graph) newVertex(kind tree.Kind, name string, origin *tree.Node) *Vertex {
	v := &Vertex{ID: g.nextID, Kind: kind, Name: name, Origin: origin}
	g.nextID++
	return v
}

func (g *Graph) fromTree(n *tree.Node) *Vertex {
	v := g.newVertex(n.Kind, n.Name, n)
	for _, c := range n.Children {
		v.Children = append(v.Children, g.fromTree(c))
	}
	return v
}

// callEdge is one invocable occurrence: a function vertex under a parent.
type callEdge struct {
	parent *Vertex
	fn     *Vertex
}

func (g *Graph) reachableCallEdges() []callEdge {
	var edges []callEdge
	seen := map[int]bool{}
	var visit func(v *Vertex)
	visit = func(v *Vertex) {
		if seen[v.ID] {
			return
		}
		seen[v.ID] = true
		for _, c := range v.Children {
			if c.Kind == tree.Func && !(c.Origin != nil && g.frozen[c.Origin]) {
				edges = append(edges, callEdge{parent: v, fn: c})
			}
			visit(c)
		}
	}
	for _, name := range g.DocNames {
		visit(g.Roots[name])
	}
	return edges
}

// saturateOnce evaluates every reachable call edge once and attaches new
// instantiations, reporting whether anything changed.
func (g *Graph) saturateOnce(s *core.System) (bool, error) {
	changed := false
	for _, e := range g.reachableCallEdges() {
		svc, ok := s.Service(e.fn.Name).(*core.QueryService)
		if !ok {
			return false, fmt.Errorf("regular: call to unknown or non-positive service %q", e.fn.Name)
		}
		asns, err := g.evalBody(s, svc.Query, e)
		if err != nil {
			return false, err
		}
		for _, asn := range asns {
			did, err := g.attach(e, svc.Query, asn)
			if err != nil {
				return false, err
			}
			changed = changed || did
		}
		g.Invocations++
	}
	return changed, nil
}

// evalBody computes the satisfying assignments of the service query's body
// against the graph, with input and context bound per Section 2.2.
func (g *Graph) evalBody(s *core.System, q *query.Query, e callEdge) ([]pattern.Assignment, error) {
	input := g.newVertex(tree.Label, tree.Input, nil)
	input.Children = e.fn.Children
	binding := map[string]*Vertex{
		tree.Input:   input,
		tree.Context: e.parent,
	}
	for name, root := range g.Roots {
		binding[name] = root
	}
	asns := []pattern.Assignment{{}}
	for _, a := range q.Body {
		doc := binding[a.Doc]
		if doc == nil {
			return nil, nil
		}
		var next []pattern.Assignment
		for _, asn := range asns {
			next = append(next, g.match(a.Pattern, doc, asn)...)
		}
		if len(next) == 0 {
			return nil, nil
		}
		asns = dedupAssignments(next)
	}
	var out []pattern.Assignment
	for _, asn := range asns {
		ok, err := ineqsHold(q, asn)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, asn)
		}
	}
	return out, nil
}

// attach installs the shared instantiation of the query head under the
// call's parent, reporting whether it was new there.
func (g *Graph) attach(e callEdge, q *query.Query, asn pattern.Assignment) (bool, error) {
	key := q.Name + "(" + asn.Key() + ")"
	root, ok := g.inst[key]
	if !ok {
		var err error
		root, err = g.instantiate(q.Head, asn, key, "h")
		if err != nil {
			return false, err
		}
	}
	ak := attachKey{parent: e.parent.ID, inst: key}
	if g.attached[ak] {
		return false, nil
	}
	g.attached[ak] = true
	e.parent.Children = append(e.parent.Children, root)
	g.Attachments++
	return true, nil
}

// instantiate builds (and memoizes, per head position) the vertex tree of
// µ(head). Memoizing every head position under the same key makes
// identical instantiations fully shared, including their inner nodes.
func (g *Graph) instantiate(head *pattern.Node, asn pattern.Assignment, key, pos string) (*Vertex, error) {
	posKey := key + "@" + pos
	if v, ok := g.inst[posKey]; ok {
		return v, nil
	}
	var kind tree.Kind
	var name string
	switch head.Kind {
	case pattern.ConstLabel:
		kind, name = tree.Label, head.Name
	case pattern.ConstValue:
		kind, name = tree.Value, head.Name
	case pattern.ConstFunc:
		kind, name = tree.Func, head.Name
	case pattern.VarLabel, pattern.VarValue, pattern.VarFunc:
		b, ok := asn[head.Name]
		if !ok || b.Tree != nil {
			return nil, fmt.Errorf("regular: head variable %s unbound", head.Name)
		}
		switch head.Kind {
		case pattern.VarLabel:
			kind = tree.Label
		case pattern.VarValue:
			kind = tree.Value
		default:
			kind = tree.Func
		}
		name = b.Atom
	default:
		return nil, fmt.Errorf("regular: tree variable in a simple system head")
	}
	v := g.newVertex(kind, name, nil)
	g.inst[posKey] = v
	if pos == "h" {
		g.inst[key] = v
	}
	for i, c := range head.Children {
		cv, err := g.instantiate(c, asn, key, fmt.Sprintf("%s.%d", pos, i))
		if err != nil {
			return nil, err
		}
		v.Children = append(v.Children, cv)
	}
	return v, nil
}

// match computes assignments embedding a (simple) pattern into the graph,
// pattern root at vertex v. Patterns have finite depth, so the recursion
// terminates despite graph cycles.
func (g *Graph) match(p *pattern.Node, v *Vertex, asn pattern.Assignment) []pattern.Assignment {
	next, ok := bindVertex(p, v, asn)
	if !ok {
		return nil
	}
	asns := []pattern.Assignment{next}
	for _, pc := range p.Children {
		var extended []pattern.Assignment
		for _, a := range asns {
			for _, vc := range v.Children {
				extended = append(extended, g.match(pc, vc, a)...)
			}
		}
		if len(extended) == 0 {
			return nil
		}
		asns = dedupAssignments(extended)
	}
	return asns
}

func bindVertex(p *pattern.Node, v *Vertex, asn pattern.Assignment) (pattern.Assignment, bool) {
	switch p.Kind {
	case pattern.ConstLabel:
		return asn, v.Kind == tree.Label && v.Name == p.Name
	case pattern.ConstValue:
		return asn, v.Kind == tree.Value && v.Name == p.Name
	case pattern.ConstFunc:
		return asn, v.Kind == tree.Func && v.Name == p.Name
	case pattern.VarLabel:
		if v.Kind != tree.Label {
			return asn, false
		}
	case pattern.VarValue:
		if v.Kind != tree.Value {
			return asn, false
		}
	case pattern.VarFunc:
		if v.Kind != tree.Func {
			return asn, false
		}
	default:
		// Tree variables are rejected earlier (simple systems only).
		return asn, false
	}
	if prev, ok := asn[p.Name]; ok {
		return asn, prev.Tree == nil && prev.Atom == v.Name
	}
	next := asn.Copy()
	next[p.Name] = pattern.Binding{Atom: v.Name}
	return next, true
}

func dedupAssignments(as []pattern.Assignment) []pattern.Assignment {
	seen := make(map[string]bool, len(as))
	out := as[:0]
	for _, a := range as {
		k := a.Key()
		if !seen[k] {
			seen[k] = true
			out = append(out, a)
		}
	}
	return out
}

func ineqsHold(q *query.Query, asn pattern.Assignment) (bool, error) {
	for _, e := range q.Ineqs {
		l, err := ineqVal(e.Left, asn)
		if err != nil {
			return false, err
		}
		r, err := ineqVal(e.Right, asn)
		if err != nil {
			return false, err
		}
		if l == r {
			return false, nil
		}
	}
	return true, nil
}

func ineqVal(t query.Term, asn pattern.Assignment) (string, error) {
	if t.Var == "" {
		return t.Const, nil
	}
	b, ok := asn[t.Var]
	if !ok || b.Tree != nil {
		return "", fmt.Errorf("regular: inequality variable %s unbound", t.Var)
	}
	return b.Atom, nil
}

// VertexCount returns the number of vertices reachable from the roots.
func (g *Graph) VertexCount() int {
	seen := map[int]bool{}
	var visit func(v *Vertex)
	visit = func(v *Vertex) {
		if seen[v.ID] {
			return
		}
		seen[v.ID] = true
		for _, c := range v.Children {
			visit(c)
		}
	}
	for _, name := range g.DocNames {
		visit(g.Roots[name])
	}
	return len(seen)
}

// HasCycle reports whether a cycle is reachable from any document root.
// By Lemma 3.2 the represented semantics is infinite iff such a cycle
// exists, so a simple positive system terminates iff its graph is acyclic
// (Theorem 3.3).
func (g *Graph) HasCycle() bool {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[int]int{}
	var dfs func(v *Vertex) bool
	dfs = func(v *Vertex) bool {
		color[v.ID] = gray
		for _, c := range v.Children {
			switch color[c.ID] {
			case gray:
				return true
			case white:
				if dfs(c) {
					return true
				}
			}
		}
		color[v.ID] = black
		return false
	}
	for _, name := range g.DocNames {
		if color[g.Roots[name].ID] == white && dfs(g.Roots[name]) {
			return true
		}
	}
	return false
}

// Unfold materializes the tree represented by v up to the given depth
// (number of node levels). Cyclic parts repeat until the depth budget is
// exhausted; the result is reduced.
func (v *Vertex) Unfold(depth int) *tree.Node {
	if v == nil || depth <= 0 {
		return nil
	}
	n := &tree.Node{Kind: v.Kind, Name: v.Name}
	for _, c := range v.Children {
		if cn := c.Unfold(depth - 1); cn != nil {
			n.Children = append(n.Children, cn)
		}
	}
	return subsume.ReduceInPlace(n)
}

// UnfoldFull materializes the exact finite tree represented by v. It
// fails if a cycle is reachable from v (the tree would be infinite).
func (v *Vertex) UnfoldFull() (*tree.Node, error) {
	onPath := map[int]bool{}
	var rec func(v *Vertex) (*tree.Node, error)
	rec = func(v *Vertex) (*tree.Node, error) {
		if onPath[v.ID] {
			return nil, fmt.Errorf("regular: UnfoldFull on a cyclic vertex %d (%s)", v.ID, v.Name)
		}
		onPath[v.ID] = true
		defer delete(onPath, v.ID)
		n := &tree.Node{Kind: v.Kind, Name: v.Name}
		for _, c := range v.Children {
			cn, err := rec(c)
			if err != nil {
				return nil, err
			}
			n.Children = append(n.Children, cn)
		}
		return n, nil
	}
	n, err := rec(v)
	if err != nil {
		return nil, err
	}
	return subsume.ReduceInPlace(n), nil
}

// SnapshotQuery evaluates a simple query against the graph, i.e. against
// the full semantics [I]: the result is q's full result [q](I), which is
// always finite for simple queries (Section 3.3). Tree variables are
// rejected.
func (g *Graph) SnapshotQuery(q *query.Query) (tree.Forest, error) {
	if !q.IsSimple() {
		return nil, fmt.Errorf("regular: SnapshotQuery requires a simple query")
	}
	asns := []pattern.Assignment{{}}
	for _, a := range q.Body {
		root := g.Roots[a.Doc]
		if root == nil {
			return nil, nil
		}
		var next []pattern.Assignment
		for _, asn := range asns {
			next = append(next, g.match(a.Pattern, root, asn)...)
		}
		if len(next) == 0 {
			return nil, nil
		}
		asns = dedupAssignments(next)
	}
	var out tree.Forest
	for _, asn := range asns {
		ok, err := ineqsHold(q, asn)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		t, err := pattern.Instantiate(q.Head, asn)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return subsume.ReduceForest(out), nil
}

// String renders the graph as one line per reachable vertex, stable across
// runs, for debugging and golden tests.
func (g *Graph) String() string {
	var ids []int
	byID := map[int]*Vertex{}
	seen := map[int]bool{}
	var visit func(v *Vertex)
	visit = func(v *Vertex) {
		if seen[v.ID] {
			return
		}
		seen[v.ID] = true
		ids = append(ids, v.ID)
		byID[v.ID] = v
		for _, c := range v.Children {
			visit(c)
		}
	}
	for _, name := range g.DocNames {
		visit(g.Roots[name])
	}
	sort.Ints(ids)
	var b strings.Builder
	for _, name := range g.DocNames {
		fmt.Fprintf(&b, "doc %s -> v%d\n", name, g.Roots[name].ID)
	}
	for _, id := range ids {
		v := byID[id]
		mark := v.Name
		switch v.Kind {
		case tree.Value:
			mark = fmt.Sprintf("%q", v.Name)
		case tree.Func:
			mark = "!" + v.Name
		}
		fmt.Fprintf(&b, "v%d %s ->", id, mark)
		for _, c := range v.Children {
			fmt.Fprintf(&b, " v%d", c.ID)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Terminates decides termination of a simple positive system exactly
// (Theorem 3.3: decidable, exptime; the construction cost is visible in
// the returned graph's counters).
func Terminates(s *core.System, opts BuildOptions) (bool, *Graph, error) {
	g, err := Build(s, opts)
	if err != nil {
		return false, nil, err
	}
	return !g.HasCycle(), g, nil
}
