package regular

import (
	"fmt"
	"sort"
	"strings"

	"axml/internal/core"
	"axml/internal/pattern"
	"axml/internal/query"
	"axml/internal/subsume"
	"axml/internal/tree"
)

// QFinite decides q-finiteness of a simple positive system for an
// arbitrary (possibly non-simple) query q — Proposition 3.2(3). The
// system's semantics may be infinite; the query result [q](I) is finite
// iff no tree variable occurring in the head can bind a subtree of the
// semantics from which a cycle of the graph representation is reachable
// (such a binding is an infinite regular subtree, making the answer
// infinite; all other answers range over the finitely many vertex
// markings and vertex unfoldings).
//
// When the result is finite, Answer holds exactly [q](I): head
// instantiations with bound subtrees fully unfolded.
func QFinite(s *core.System, q *query.Query) (finite bool, answer tree.Forest, err error) {
	if err := q.Validate(); err != nil {
		return false, nil, err
	}
	g, err := Build(s, BuildOptions{})
	if err != nil {
		return false, nil, err
	}
	return g.QFinite(q)
}

// QFinite is the graph-side implementation; see the package-level
// function for semantics.
func (g *Graph) QFinite(q *query.Query) (finite bool, answer tree.Forest, err error) {
	headTreeVars := map[string]bool{}
	collectTreeVars(q.Head, headTreeVars)
	cyclic := g.cycleReaching()

	asns := []gAsn{{}}
	for _, a := range q.Body {
		root := g.Roots[a.Doc]
		if root == nil {
			return true, nil, nil
		}
		var next []gAsn
		for _, asn := range asns {
			next = append(next, g.matchG(a.Pattern, root, asn)...)
		}
		if len(next) == 0 {
			return true, nil, nil
		}
		asns = dedupG(next)
	}
	var out tree.Forest
	for _, asn := range asns {
		ok, err := gIneqsHold(q, asn)
		if err != nil {
			return false, nil, err
		}
		if !ok {
			continue
		}
		// Finiteness: head tree variables must bind acyclic subtrees.
		for v := range headTreeVars {
			b, bound := asn[v]
			if bound && b.vtx != nil && cyclic[b.vtx.ID] {
				return false, nil, nil
			}
		}
		t, err := g.instantiateG(q.Head, asn)
		if err != nil {
			return false, nil, err
		}
		out = append(out, t)
	}
	return true, subsume.ReduceForest(out), nil
}

// gBinding is a graph-matching binding: an atom or a vertex (tree
// variables bind vertices, whose unfoldings are the bound subtrees).
type gBinding struct {
	atom string
	vtx  *Vertex
}

type gAsn map[string]gBinding

func (a gAsn) copyWith(name string, b gBinding) gAsn {
	c := make(gAsn, len(a)+1)
	for k, v := range a {
		c[k] = v
	}
	c[name] = b
	return c
}

func (a gAsn) key() string {
	names := make([]string, 0, len(a))
	for n := range a {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		bd := a[n]
		if bd.vtx != nil {
			fmt.Fprintf(&b, "%s=v%d|", n, bd.vtx.ID)
		} else {
			fmt.Fprintf(&b, "%s=a%s|", n, bd.atom)
		}
	}
	return b.String()
}

func dedupG(as []gAsn) []gAsn {
	seen := make(map[string]bool, len(as))
	out := as[:0]
	for _, a := range as {
		k := a.key()
		if !seen[k] {
			seen[k] = true
			out = append(out, a)
		}
	}
	return out
}

// matchG matches a pattern (tree variables allowed) against the graph.
func (g *Graph) matchG(p *pattern.Node, v *Vertex, asn gAsn) []gAsn {
	if p.Kind == pattern.VarTree {
		if prev, ok := asn[p.Name]; ok {
			if prev.vtx != v {
				// Tree variables occur at most once in a body
				// (Definition 3.1), so this only guards misuse.
				return nil
			}
			return []gAsn{asn}
		}
		return []gAsn{asn.copyWith(p.Name, gBinding{vtx: v})}
	}
	next, ok := bindG(p, v, asn)
	if !ok {
		return nil
	}
	asns := []gAsn{next}
	for _, pc := range p.Children {
		var extended []gAsn
		for _, a := range asns {
			for _, vc := range v.Children {
				extended = append(extended, g.matchG(pc, vc, a)...)
			}
		}
		if len(extended) == 0 {
			return nil
		}
		asns = dedupG(extended)
	}
	return asns
}

func bindG(p *pattern.Node, v *Vertex, asn gAsn) (gAsn, bool) {
	switch p.Kind {
	case pattern.ConstLabel:
		return asn, v.Kind == tree.Label && v.Name == p.Name
	case pattern.ConstValue:
		return asn, v.Kind == tree.Value && v.Name == p.Name
	case pattern.ConstFunc:
		return asn, v.Kind == tree.Func && v.Name == p.Name
	case pattern.VarLabel:
		if v.Kind != tree.Label {
			return asn, false
		}
	case pattern.VarValue:
		if v.Kind != tree.Value {
			return asn, false
		}
	case pattern.VarFunc:
		if v.Kind != tree.Func {
			return asn, false
		}
	default:
		return asn, false
	}
	if prev, ok := asn[p.Name]; ok {
		return asn, prev.vtx == nil && prev.atom == v.Name
	}
	return asn.copyWith(p.Name, gBinding{atom: v.Name}), true
}

func gIneqsHold(q *query.Query, asn gAsn) (bool, error) {
	for _, e := range q.Ineqs {
		l, err := gTermVal(e.Left, asn)
		if err != nil {
			return false, err
		}
		r, err := gTermVal(e.Right, asn)
		if err != nil {
			return false, err
		}
		if l == r {
			return false, nil
		}
	}
	return true, nil
}

func gTermVal(t query.Term, asn gAsn) (string, error) {
	if t.Var == "" {
		return t.Const, nil
	}
	b, ok := asn[t.Var]
	if !ok || b.vtx != nil {
		return "", fmt.Errorf("regular: inequality variable %s unbound or tree-bound", t.Var)
	}
	return b.atom, nil
}

// instantiateG builds µ(head) with vertex bindings fully unfolded.
func (g *Graph) instantiateG(head *pattern.Node, asn gAsn) (*tree.Node, error) {
	if head.Kind == pattern.VarTree {
		b, ok := asn[head.Name]
		if !ok || b.vtx == nil {
			return nil, fmt.Errorf("regular: tree variable #%s unbound in head", head.Name)
		}
		return b.vtx.UnfoldFull()
	}
	var k tree.Kind
	var name string
	switch head.Kind {
	case pattern.ConstLabel:
		k, name = tree.Label, head.Name
	case pattern.ConstValue:
		k, name = tree.Value, head.Name
	case pattern.ConstFunc:
		k, name = tree.Func, head.Name
	case pattern.VarLabel, pattern.VarValue, pattern.VarFunc:
		b, ok := asn[head.Name]
		if !ok || b.vtx != nil {
			return nil, fmt.Errorf("regular: head variable %s unbound", head.Name)
		}
		name = b.atom
		switch head.Kind {
		case pattern.VarLabel:
			k = tree.Label
		case pattern.VarValue:
			k = tree.Value
		default:
			k = tree.Func
		}
	}
	n := &tree.Node{Kind: k, Name: name}
	for _, c := range head.Children {
		cn, err := g.instantiateG(c, asn)
		if err != nil {
			return nil, err
		}
		n.Children = append(n.Children, cn)
	}
	return n, nil
}

// cycleReaching returns the set of vertex IDs from which a cycle is
// reachable (their unfoldings are infinite).
func (g *Graph) cycleReaching() map[int]bool {
	const (
		white = 0
		gray  = 1
		done  = 2
	)
	color := map[int]int{}
	infinite := map[int]bool{}
	var dfs func(v *Vertex) bool
	dfs = func(v *Vertex) bool {
		switch color[v.ID] {
		case gray:
			return true // back edge: cycle
		case done:
			return infinite[v.ID]
		}
		color[v.ID] = gray
		inf := false
		for _, c := range v.Children {
			if dfs(c) {
				inf = true
			}
		}
		color[v.ID] = done
		infinite[v.ID] = inf
		return inf
	}
	for _, name := range g.DocNames {
		dfs(g.Roots[name])
	}
	return infinite
}

func collectTreeVars(p *pattern.Node, dst map[string]bool) {
	if p == nil {
		return
	}
	if p.Kind == pattern.VarTree {
		dst[p.Name] = true
	}
	for _, c := range p.Children {
		collectTreeVars(c, dst)
	}
}
