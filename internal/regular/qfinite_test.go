package regular

import (
	"testing"

	"axml/internal/core"
	"axml/internal/syntax"
)

// Proposition 3.2(3): q-finiteness is decidable for simple positive
// systems, even for non-simple queries.
func TestQFiniteOverInfiniteSystem(t *testing.T) {
	s := core.MustParseSystem(loopSystem) // d grows a{a{a{...}}} forever

	// A non-simple query whose head copies the subtree under the root:
	// the binding reaches the cycle, so [q](I) is infinite.
	infinite := syntax.MustParseQuery(`out{#T} :- d/a{#T}`)
	fin, _, err := QFinite(s, infinite)
	if err != nil {
		t.Fatal(err)
	}
	if fin {
		t.Fatal("query copying the growing subtree reported finite")
	}

	// A simple query over the same infinite system is always finite.
	simple := syntax.MustParseQuery(`hit :- d/a{a{a}}`)
	fin, ans, err := QFinite(s, simple)
	if err != nil {
		t.Fatal(err)
	}
	if !fin || len(ans) != 1 {
		t.Fatalf("simple query: finite=%v ans=%v", fin, ans)
	}

	// A tree variable in the body only (not the head) does not make the
	// result infinite: existence suffices.
	bodyOnly := syntax.MustParseQuery(`hit :- d/a{#T}`)
	fin, ans, err = QFinite(s, bodyOnly)
	if err != nil {
		t.Fatal(err)
	}
	if !fin || len(ans) != 1 {
		t.Fatalf("body-only tree var: finite=%v ans=%v", fin, ans)
	}
}

func TestQFiniteMaterializesNonSimpleAnswers(t *testing.T) {
	// Terminating system; non-simple query copies finite subtrees.
	s := core.MustParseSystem(`
doc store = r{item{name{"a"},tags{t1,t2}},item{name{"b"},tags{t3}},!noop}
func noop = extra{marker} :- store/r{item{name{"a"}}}
`)
	q := syntax.MustParseQuery(`got{$n,#T} :- store/r{item{name{$n},tags{#T}}}`)
	fin, ans, err := QFinite(s, q)
	if err != nil {
		t.Fatal(err)
	}
	if !fin {
		t.Fatal("finite system reported infinite")
	}
	// Cross-check against the engine's full evaluation.
	engine, err := s.EvalQuery(q, core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !engine.Exact {
		t.Fatal("engine did not terminate")
	}
	if ans.CanonicalString() != engine.Answer.CanonicalString() {
		t.Fatalf("graph %s != engine %s", ans.CanonicalString(), engine.Answer.CanonicalString())
	}
}

func TestQFiniteMixedBranches(t *testing.T) {
	// One branch grows forever, the other is static: a head tree var
	// that can only bind in the static branch stays finite.
	s := core.MustParseSystem(`
doc d = root{static{data{"x"}},grow{!f}}
func f = layer{!f} :-
`)
	finiteQ := syntax.MustParseQuery(`out{#T} :- d/root{static{#T}}`)
	fin, ans, err := QFinite(s, finiteQ)
	if err != nil {
		t.Fatal(err)
	}
	if !fin || len(ans) != 1 {
		t.Fatalf("static branch: finite=%v ans=%v", fin, ans)
	}
	infiniteQ := syntax.MustParseQuery(`out{#T} :- d/root{grow{#T}}`)
	fin, _, err = QFinite(s, infiniteQ)
	if err != nil {
		t.Fatal(err)
	}
	// The tree var binds the layer subtree, which reaches the cycle.
	// It can also bind !f itself (a func vertex, acyclic) — but some
	// binding is infinite, making [q](I) infinite.
	if fin {
		t.Fatal("growing branch reported finite")
	}
}

func TestQFiniteIneqAndMissingDoc(t *testing.T) {
	s := core.MustParseSystem(`doc d = r{v{1},v{2}}`)
	q := syntax.MustParseQuery(`p{$x,$y} :- d/r{v{$x},v{$y}}, $x != $y`)
	fin, ans, err := QFinite(s, q)
	if err != nil || !fin {
		t.Fatalf("finite=%v err=%v", fin, err)
	}
	// p{"1","2"} and p{"2","1"} are the same unordered tree: one answer.
	if len(ans) != 1 {
		t.Fatalf("ans = %v", ans)
	}
	qm := syntax.MustParseQuery(`p :- nowhere/r`)
	fin, ans, err = QFinite(s, qm)
	if err != nil || !fin || len(ans) != 0 {
		t.Fatalf("missing doc: finite=%v ans=%v err=%v", fin, ans, err)
	}
}
