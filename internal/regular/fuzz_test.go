package regular

import (
	"math/rand"
	"testing"

	"axml/internal/core"
	"axml/internal/subsume"
	"axml/internal/syntax"
	"axml/internal/workload"
)

// Cross-validation on random simple positive systems: the graph-based
// termination decision must agree with the budgeted engine, and on
// terminating systems the graph's full unfoldings must equal the engine's
// fixpoint documents.
func TestFuzzGraphVsEngine(t *testing.T) {
	const trials = 60
	const engineBudget = 3000
	terminating, looping := 0, 0
	for seed := int64(0); seed < trials; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := workload.RandomSimpleSystem(rng, workload.SystemConfig{})

		verdict, g, err := Terminates(s, BuildOptions{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		engine := s.Copy()
		res := engine.Run(core.RunOptions{MaxSteps: engineBudget})

		if verdict {
			terminating++
			if !res.Terminated {
				t.Fatalf("seed %d: graph says terminating, engine exhausted %d steps", seed, engineBudget)
			}
			for _, name := range s.DocNames() {
				unf, err := g.Roots[name].UnfoldFull()
				if err != nil {
					t.Fatalf("seed %d: unfold %s: %v", seed, name, err)
				}
				if !subsume.Equivalent(unf, engine.Document(name).Root) {
					t.Fatalf("seed %d: doc %s differs:\ngraph  %s\nengine %s",
						seed, name, unf.CanonicalString(),
						engine.Document(name).Root.CanonicalString())
				}
			}
		} else {
			looping++
			if res.Terminated {
				t.Fatalf("seed %d: graph says non-terminating, engine terminated in %d steps", seed, res.Steps)
			}
		}
	}
	if terminating == 0 || looping == 0 {
		t.Fatalf("fuzz workload not diverse: %d terminating, %d looping", terminating, looping)
	}
	t.Logf("fuzz: %d terminating, %d looping systems validated", terminating, looping)
}

// On terminating random systems, queries evaluated over the graph (i.e.
// over [I]) must match the engine's full results.
func TestFuzzGraphQueryVsEngine(t *testing.T) {
	queries := []string{
		`out{$x} :- d0/r{item{$x}}`,
		`got{$x} :- d0/r{item{$x,%l}}`,
		`p{a{$x},b{$y}} :- d0/r{item{$x}}, d1/r{item{$y}}, $x != $y`,
	}
	validated := 0
	for seed := int64(0); seed < 80 && validated < 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := workload.RandomSimpleSystem(rng, workload.SystemConfig{})
		verdict, g, err := Terminates(s, BuildOptions{})
		if err != nil || !verdict {
			continue
		}
		engine := s.Copy()
		if res := engine.Run(core.RunOptions{}); !res.Terminated {
			t.Fatalf("seed %d: engine did not terminate", seed)
		}
		for _, src := range queries {
			q := syntax.MustParseQuery(src)
			graphAns, err := g.SnapshotQuery(q)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			engineAns, err := engine.SnapshotQuery(q)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if graphAns.CanonicalString() != engineAns.CanonicalString() {
				t.Fatalf("seed %d query %q:\ngraph  %s\nengine %s",
					seed, src, graphAns.CanonicalString(), engineAns.CanonicalString())
			}
		}
		validated++
	}
	if validated < 5 {
		t.Fatalf("too few terminating systems validated: %d", validated)
	}
}
