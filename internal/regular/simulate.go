package regular

import "axml/internal/tree"

// Simulates reports whether the (possibly infinite) tree unfolding at a is
// subsumed by the unfolding at b: there is a marking-preserving
// homomorphism from unfold(a) into unfold(b). On cyclic graphs this is the
// greatest simulation relation, computed coinductively: start from all
// marking-compatible pairs and strip pairs whose children cannot be
// matched, until a fixpoint (the standard Henzinger-Henzinger-Kopke
// refinement, referenced by the paper's Proposition 2.1 proof).
func Simulates(a, b *Vertex) bool {
	if a == nil || b == nil {
		return a == nil
	}
	av := collect(a)
	bv := collect(b)
	// rel[pair] == true means "still possibly simulated". Pairs are
	// keyed by pointer so vertices of two independent graphs (whose IDs
	// overlap) stay distinct.
	type pair struct{ x, y *Vertex }
	rel := map[pair]bool{}
	for _, x := range av {
		for _, y := range bv {
			if x.Kind == y.Kind && x.Name == y.Name {
				rel[pair{x, y}] = true
			}
		}
	}
	for {
		changed := false
		for p, ok := range rel {
			if !ok {
				continue
			}
			good := true
			for _, cx := range p.x.Children {
				found := false
				for _, cy := range p.y.Children {
					if rel[pair{cx, cy}] {
						found = true
						break
					}
				}
				if !found {
					good = false
					break
				}
			}
			if !good {
				rel[p] = false
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return rel[pair{a, b}]
}

// GraphEquivalent reports mutual simulation of the two unfoldings (the
// paper's ≡ on possibly-infinite documents).
func GraphEquivalent(a, b *Vertex) bool {
	return Simulates(a, b) && Simulates(b, a)
}

// SimulatesTree reports whether the finite tree t is subsumed by the
// unfolding at v.
func SimulatesTree(t *tree.Node, v *Vertex) bool {
	if t == nil {
		return true
	}
	if v == nil {
		return false
	}
	g := &Graph{}
	tv := g.fromTree(t)
	return Simulates(tv, v)
}

// SimulatedByTree reports whether the (possibly infinite) unfolding at v
// is subsumed by the finite tree t. An infinite unfolding can never be
// subsumed by a finite tree (homomorphisms preserve depth), and the
// simulation fixpoint detects that automatically.
func SimulatedByTree(v *Vertex, t *tree.Node) bool {
	if v == nil {
		return true
	}
	if t == nil {
		return false
	}
	g := &Graph{}
	tv := g.fromTree(t)
	return Simulates(v, tv)
}

// ProjectData returns a fresh graph component mirroring the one reachable
// from v with every function vertex (and its parameter subtree) removed —
// the data content of the represented document, matching the comparison
// of possible answers in Section 4. Cycles are preserved. It returns nil
// when v itself is a function vertex.
func ProjectData(v *Vertex) *Vertex {
	if v == nil || v.Kind == tree.Func {
		return nil
	}
	clones := map[*Vertex]*Vertex{}
	id := 0
	var build func(w *Vertex) *Vertex
	build = func(w *Vertex) *Vertex {
		if c, ok := clones[w]; ok {
			return c
		}
		c := &Vertex{ID: id, Kind: w.Kind, Name: w.Name}
		id++
		clones[w] = c
		for _, ch := range w.Children {
			if ch.Kind == tree.Func {
				continue
			}
			c.Children = append(c.Children, build(ch))
		}
		return c
	}
	return build(v)
}

// collect gathers the vertices reachable from v.
func collect(v *Vertex) []*Vertex {
	var out []*Vertex
	seen := map[*Vertex]bool{}
	var visit func(w *Vertex)
	visit = func(w *Vertex) {
		if seen[w] {
			return
		}
		seen[w] = true
		out = append(out, w)
		for _, c := range w.Children {
			visit(c)
		}
	}
	visit(v)
	return out
}
