package regular

import (
	"fmt"
	"testing"

	"axml/internal/core"
	"axml/internal/syntax"
)

func tcSystemN(n int) *core.System {
	body := ""
	for i := 0; i < n; i++ {
		if i > 0 {
			body += ","
		}
		body += fmt.Sprintf(`t{a{"n%d"},b{"n%d"}}`, i, i+1)
	}
	return core.MustParseSystem(fmt.Sprintf(`
doc  d0 = r{%s}
doc  d1 = r{!g,!f}
func g = t{a{$x},b{$y}} :- d0/r{t{a{$x},b{$y}}}
func f = t{a{$x},b{$y}} :- d1/r{t{a{$x},b{$z}}}, d1/r{t{a{$z},b{$y}}}
`, body))
}

func BenchmarkBuildTCGraph(b *testing.B) {
	s := tcSystemN(8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(s, BuildOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTerminatesDecision(b *testing.B) {
	loop := core.MustParseSystem("doc d = a{!f}\nfunc f = a{!f} :- ")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, _, err := Terminates(loop, BuildOptions{})
		if err != nil || ok {
			b.Fatal("wrong verdict")
		}
	}
}

func BenchmarkGraphQueryOverInfinite(b *testing.B) {
	s := core.MustParseSystem(loopSystem)
	g, err := Build(s, BuildOptions{})
	if err != nil {
		b.Fatal(err)
	}
	q := syntax.MustParseQuery(`hit :- d/a{a{a{a}}}`)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ans, err := g.SnapshotQuery(q)
		if err != nil || len(ans) != 1 {
			b.Fatal("wrong answer")
		}
	}
}

func BenchmarkSimulatesCyclic(b *testing.B) {
	s := core.MustParseSystem(loopSystem)
	g, err := Build(s, BuildOptions{})
	if err != nil {
		b.Fatal(err)
	}
	root := g.Roots["d"]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !Simulates(root, root) {
			b.Fatal("not reflexive")
		}
	}
}
