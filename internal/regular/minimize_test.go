package regular

import (
	"testing"

	"axml/internal/core"
	"axml/internal/syntax"
)

func TestMinimizeLoopSystem(t *testing.T) {
	// Example 2.1's graph has a root a-vertex plus a shared a-vertex with
	// a self-loop; root and shared vertex are bisimilar and collapse.
	s := core.MustParseSystem(loopSystem)
	g, err := Build(s, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	min := g.Minimize()
	if got := min.VertexCount(); got != 2 { // the a-class and the !f-class
		t.Fatalf("minimized vertices = %d, want 2\n%s", got, min)
	}
	if !min.HasCycle() {
		t.Fatal("minimization lost the cycle")
	}
	// Unfoldings agree (up to reduction).
	d1 := g.Roots["d"].Unfold(6)
	d2 := min.Roots["d"].Unfold(6)
	if d1.CanonicalString() != d2.CanonicalString() {
		t.Fatalf("minimized unfolding differs:\n%s\nvs\n%s",
			d1.CanonicalString(), d2.CanonicalString())
	}
	// Simulation equivalence between original and minimized roots.
	if !GraphEquivalent(g.Roots["d"], min.Roots["d"]) {
		t.Fatal("minimized graph not equivalent to the original")
	}
}

func TestMinimizePreservesDistinctions(t *testing.T) {
	s := core.MustParseSystem(`
doc d = r{x{a{"1"}},y{a{"2"}}}
`)
	g, err := Build(s, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	min := g.Minimize()
	// Nothing to merge: all subtrees differ.
	if min.VertexCount() != g.VertexCount() {
		t.Fatalf("minimize merged distinct subtrees: %d -> %d", g.VertexCount(), min.VertexCount())
	}
}

func TestMinimizeMergesIsomorphicSubtrees(t *testing.T) {
	s := core.MustParseSystem(`doc d = r{x{a{"1"}},y{a{"1"}}}`)
	g, err := Build(s, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Original has two copies of a{"1"}: 7 vertices. Minimized shares
	// them: r, x, y, a, "1" = 5.
	min := g.Minimize()
	if min.VertexCount() != 5 {
		t.Fatalf("vertices = %d, want 5\n%s", min.VertexCount(), min)
	}
	// Queries still answer identically.
	q := syntax.MustParseQuery(`out{%l} :- d/r{%l{a{"1"}}}`)
	a1, err := g.SnapshotQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := min.SnapshotQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if a1.CanonicalString() != a2.CanonicalString() {
		t.Fatalf("query answers differ after minimization: %s vs %s",
			a1.CanonicalString(), a2.CanonicalString())
	}
}

func TestMinimizeTerminationVerdictStable(t *testing.T) {
	for _, src := range []string{
		loopSystem,
		tcSystem,
		"doc d = a{!f}\nfunc f = b{c} :- ",
	} {
		s := core.MustParseSystem(src)
		g, err := Build(s, BuildOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if g.HasCycle() != g.Minimize().HasCycle() {
			t.Fatalf("minimization changed the termination verdict for %q", src)
		}
	}
}
