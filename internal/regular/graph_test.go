package regular

import (
	"strings"
	"testing"

	"axml/internal/core"
	"axml/internal/subsume"
	"axml/internal/syntax"
	"axml/internal/tree"
)

const tcSystem = `
doc  d0 = r{t{a{1},b{2}},t{a{2},b{3}},t{a{3},b{4}}}
doc  d1 = r{!g,!f}
func g = t{a{$x},b{$y}} :- d0/r{t{a{$x},b{$y}}}
func f = t{a{$x},b{$y}} :- d1/r{t{a{$x},b{$z}}}, d1/r{t{a{$z},b{$y}}}
`

const loopSystem = "doc d = a{!f}\nfunc f = a{!f} :- "

func TestBuildRejectsNonSimpleAndBlackBox(t *testing.T) {
	nonSimple := core.MustParseSystem("doc d = a{a{b},!g}\nfunc g = a{a{#X}} :- context/a{a{#X}}")
	if _, err := Build(nonSimple, BuildOptions{}); err == nil {
		t.Fatal("non-simple system accepted")
	}
	bb := core.NewSystem()
	if err := bb.AddDocument(tree.NewDocument("d", syntax.MustParseDocument(`a{!f}`))); err != nil {
		t.Fatal(err)
	}
	if err := bb.AddService(core.ConstService("f", nil)); err != nil {
		t.Fatal(err)
	}
	if _, err := Build(bb, BuildOptions{}); err == nil {
		t.Fatal("black-box system accepted")
	}
}

func TestTerminatingSystemAcyclicGraphMatchesEngine(t *testing.T) {
	s := core.MustParseSystem(tcSystem)
	g, err := Build(s, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.HasCycle() {
		t.Fatalf("terminating TC system produced a cyclic graph:\n%s", g)
	}
	// The graph's full unfolding must equal the engine's fixpoint.
	run := s.Copy()
	res := run.Run(core.RunOptions{})
	if !res.Terminated {
		t.Fatal("engine did not terminate")
	}
	for _, name := range []string{"d0", "d1"} {
		unf, err := g.Roots[name].UnfoldFull()
		if err != nil {
			t.Fatal(err)
		}
		want := run.Document(name).Root
		if !subsume.Equivalent(unf, want) {
			t.Fatalf("doc %s: graph unfolding %s != engine %s", name, unf.CanonicalString(), want.CanonicalString())
		}
	}
}

func TestExample21GraphSelfLoop(t *testing.T) {
	s := core.MustParseSystem(loopSystem)
	g, err := Build(s, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasCycle() {
		t.Fatalf("Example 2.1 graph should be cyclic:\n%s", g)
	}
	// Finite representation of an infinite tree: vertex count small.
	if n := g.VertexCount(); n > 6 {
		t.Fatalf("graph too large: %d vertices\n%s", n, g)
	}
	// Bounded unfoldings agree with budget-bounded engine runs.
	run := s.Copy()
	run.Run(core.RunOptions{MaxSteps: 4})
	engineState := run.Document("d").Root
	unf := g.Roots["d"].Unfold(engineState.Depth())
	if !subsume.Subsumed(engineState, unf) {
		t.Fatalf("engine state not subsumed by graph unfolding:\nengine %s\ngraph  %s",
			engineState.CanonicalString(), unf.CanonicalString())
	}
}

func TestTheorem33TerminationDecision(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want bool
	}{
		{"tc", tcSystem, true},
		{"loop", loopSystem, false},
		{"const", "doc d = a{!f}\nfunc f = b{c} :- ", true},
		{"chain", `
doc d = top{!f}
func f = mid{!g} :-
func g = leaf :-
`, true},
		{"mutual", `
doc d = top{!f}
func f = a{!g} :-
func g = b{!f} :-
`, false},
		{"guarded", `
doc d0 = r{v{1}}
doc d = top{!f}
func f = a{$x,!g} :- d0/r{v{$x}}
func g = b{$x} :- d0/r{v{$x}}
`, true},
		{"self-context", `
doc d = a{b,!f}
func f = b :- context/a{b}
`, true},
	}
	for _, c := range cases {
		s := core.MustParseSystem(c.src)
		got, g, err := Terminates(s, BuildOptions{})
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got != c.want {
			t.Errorf("%s: Terminates = %v, want %v\n%s", c.name, got, c.want, g)
		}
		// Cross-check against the budget-bounded engine.
		engine, _ := s.Terminates(400)
		if engine != c.want {
			t.Errorf("%s: engine ground truth %v disagrees with expectation %v", c.name, engine, c.want)
		}
	}
}

func TestSnapshotQueryOverInfiniteSemantics(t *testing.T) {
	// The loop system has infinite semantics but simple queries over it
	// have finite answers computable from the graph (Section 3.3).
	s := core.MustParseSystem(loopSystem)
	g, err := Build(s, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	q := syntax.MustParseQuery(`hit :- d/a{a{a}}`)
	ans, err := g.SnapshotQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 1 {
		t.Fatalf("nested-a query over infinite semantics: %v", ans)
	}
	// A query that can never match stays empty.
	none, err := g.SnapshotQuery(syntax.MustParseQuery(`hit :- d/a{b}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(none) != 0 {
		t.Fatalf("impossible query matched: %v", none)
	}
	// Non-simple queries are rejected.
	if _, err := g.SnapshotQuery(syntax.MustParseQuery(`out{#T} :- d/a{#T}`)); err == nil {
		t.Fatal("non-simple query accepted")
	}
}

func TestSnapshotQueryEqualsEngineOnTerminating(t *testing.T) {
	s := core.MustParseSystem(tcSystem)
	g, err := Build(s, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	q := syntax.MustParseQuery(`pair{$x,$y} :- d1/r{t{a{$x},b{$y}}}`)
	graphAns, err := g.SnapshotQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	engineAns, err := s.EvalQuery(q, core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if graphAns.CanonicalString() != engineAns.Answer.CanonicalString() {
		t.Fatalf("graph %s != engine %s", graphAns.CanonicalString(), engineAns.Answer.CanonicalString())
	}
}

func TestBuildWithExcludedCalls(t *testing.T) {
	s := core.MustParseSystem(tcSystem)
	// Freeze the recursive call f: only base pairs are derived.
	var frozen *tree.Node
	for _, occ := range s.Document("d1").Root.FuncNodes() {
		if occ.Node.Name == "f" {
			frozen = occ.Node
		}
	}
	g, err := Build(s, BuildOptions{Exclude: map[*tree.Node]bool{frozen: true}})
	if err != nil {
		t.Fatal(err)
	}
	q := syntax.MustParseQuery(`pair{$x,$y} :- d1/r{t{a{$x},b{$y}}}`)
	ans, err := g.SnapshotQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 3 {
		t.Fatalf("frozen-f answers = %d, want 3 base pairs:\n%s", len(ans), ans)
	}
}

func TestInstantiationSharing(t *testing.T) {
	// Two calls to the same service with the same derivable assignment
	// share one instantiation vertex.
	s := core.MustParseSystem(`
doc d0 = r{v{1}}
doc d = top{left{!f},right{!f}}
func f = out{$x} :- d0/r{v{$x}}
`)
	g, err := Build(s, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Count vertices named "out": sharing means exactly one.
	count := 0
	for _, v := range collect(g.Roots["d"]) {
		if v.Name == "out" {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("instantiation not shared: %d 'out' vertices\n%s", count, g)
	}
}

func TestUnfoldDepthBudget(t *testing.T) {
	s := core.MustParseSystem(loopSystem)
	g, err := Build(s, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	u2 := g.Roots["d"].Unfold(2)
	if u2.Depth() != 2 {
		t.Fatalf("Unfold(2) depth = %d", u2.Depth())
	}
	u5 := g.Roots["d"].Unfold(5)
	if !subsume.Subsumed(u2, u5) {
		t.Fatal("shallower unfolding not subsumed by deeper one")
	}
	if _, err := g.Roots["d"].UnfoldFull(); err == nil {
		t.Fatal("UnfoldFull on cyclic graph should fail")
	}
	var nilV *Vertex
	if nilV.Unfold(3) != nil {
		t.Fatal("nil unfold")
	}
}

func TestSimulates(t *testing.T) {
	s := core.MustParseSystem(loopSystem)
	g, err := Build(s, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	root := g.Roots["d"]
	if !Simulates(root, root) {
		t.Fatal("reflexivity on cyclic graph")
	}
	if !GraphEquivalent(root, root) {
		t.Fatal("GraphEquivalent reflexivity")
	}
	// Any finite prefix is simulated by the infinite tree.
	finite := syntax.MustParseDocument(`a{a{a{a{!f}},!f}}`)
	if !SimulatesTree(finite, root) {
		t.Fatal("finite prefix not simulated by infinite unfolding")
	}
	// But a tree with a foreign label is not.
	if SimulatesTree(syntax.MustParseDocument(`a{z}`), root) {
		t.Fatal("foreign label simulated")
	}
	if !SimulatesTree(nil, root) {
		t.Fatal("nil tree should be simulated")
	}
}

func TestSimulatesDistinguishesGraphs(t *testing.T) {
	sa := core.MustParseSystem("doc d = a{!f}\nfunc f = a{!f} :- ")
	sb := core.MustParseSystem("doc d = a{b,!f}\nfunc f = a{b,!f} :- ")
	ga, err := Build(sa, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	gb, err := Build(sb, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !Simulates(ga.Roots["d"], gb.Roots["d"]) {
		t.Fatal("poorer infinite tree should be simulated by richer one")
	}
	if Simulates(gb.Roots["d"], ga.Roots["d"]) {
		t.Fatal("richer infinite tree simulated by poorer one")
	}
}

func TestGraphString(t *testing.T) {
	s := core.MustParseSystem(loopSystem)
	g, err := Build(s, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	out := g.String()
	if !strings.Contains(out, "doc d -> v0") || !strings.Contains(out, "!f") {
		t.Fatalf("String output:\n%s", out)
	}
}

func TestMaxInstantiationsBound(t *testing.T) {
	// A system generating many instantiations trips a tiny bound.
	s := core.MustParseSystem(`
doc d0 = r{v{1},v{2},v{3},v{4},v{5},v{6},v{7},v{8}}
doc d = top{!f}
func f = out{$x,$y} :- d0/r{v{$x}}, d0/r{v{$y}}
`)
	if _, err := Build(s, BuildOptions{MaxInstantiations: 5}); err == nil {
		t.Fatal("instantiation bound not enforced")
	}
	if _, err := Build(s, BuildOptions{}); err != nil {
		t.Fatalf("default bound too small: %v", err)
	}
}
