package regular

import (
	"fmt"
	"sort"
	"strings"
)

// Minimize returns a bisimulation-minimal copy of the graph: vertices
// with the same marking and the same set of successor classes are merged,
// by partition refinement to a fixpoint. The minimized graph unfolds to
// the same trees (bisimilar vertices have identical unfoldings), so every
// analysis — termination, queries, simulation — gives the same results on
// it, usually over far fewer vertices; Lemma 3.2's finite representation
// in its most compact form.
func (g *Graph) Minimize() *Graph {
	verts := g.allReachable()
	// Initial partition: by (kind, name).
	class := map[*Vertex]int{}
	next := map[string]int{}
	for _, v := range verts {
		key := fmt.Sprintf("%d|%s", v.Kind, v.Name)
		id, ok := next[key]
		if !ok {
			id = len(next)
			next[key] = id
		}
		class[v] = id
	}
	// Refine: split classes by the set of successor classes.
	for {
		sig := map[*Vertex]string{}
		for _, v := range verts {
			succ := make([]int, 0, len(v.Children))
			for _, c := range v.Children {
				succ = append(succ, class[c])
			}
			sort.Ints(succ)
			succ = dedupInts(succ)
			parts := make([]string, len(succ))
			for i, s := range succ {
				parts[i] = fmt.Sprint(s)
			}
			sig[v] = fmt.Sprintf("%d~%s", class[v], strings.Join(parts, ","))
		}
		reassign := map[string]int{}
		changed := false
		for _, v := range verts {
			id, ok := reassign[sig[v]]
			if !ok {
				id = len(reassign)
				reassign[sig[v]] = id
			}
			if id != class[v] {
				changed = true
			}
			class[v] = id
		}
		if !changed {
			break
		}
	}
	// Build the quotient.
	min := &Graph{
		Roots:    map[string]*Vertex{},
		DocNames: append([]string(nil), g.DocNames...),
		inst:     map[string]*Vertex{},
		attached: map[attachKey]bool{},
	}
	rep := map[int]*Vertex{}
	for _, v := range verts {
		if _, ok := rep[class[v]]; !ok {
			rep[class[v]] = min.newVertex(v.Kind, v.Name, nil)
		}
	}
	done := map[int]bool{}
	for _, v := range verts {
		cid := class[v]
		if done[cid] {
			continue
		}
		done[cid] = true
		seen := map[int]bool{}
		for _, c := range v.Children {
			if !seen[class[c]] {
				seen[class[c]] = true
				rep[cid].Children = append(rep[cid].Children, rep[class[c]])
			}
		}
	}
	for _, name := range g.DocNames {
		min.Roots[name] = rep[class[g.Roots[name]]]
	}
	return min
}

func (g *Graph) allReachable() []*Vertex {
	var out []*Vertex
	seen := map[*Vertex]bool{}
	var visit func(v *Vertex)
	visit = func(v *Vertex) {
		if seen[v] {
			return
		}
		seen[v] = true
		out = append(out, v)
		for _, c := range v.Children {
			visit(c)
		}
	}
	for _, name := range g.DocNames {
		visit(g.Roots[name])
	}
	return out
}

func dedupInts(xs []int) []int {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || xs[i-1] != x {
			out = append(out, x)
		}
	}
	return out
}
