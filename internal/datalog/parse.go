package datalog

import (
	"fmt"
	"strings"
	"unicode"
)

// Parse reads a datalog program in the conventional textual syntax:
// clauses end with '.', '%' starts a line comment, identifiers starting
// with an uppercase letter (or '_') are variables, everything else —
// lowercase identifiers, numbers, or single-quoted strings — is a
// constant. Inequalities are written X != Y.
//
//	edge(a, b). edge(b, c).
//	tc(X, Y) :- edge(X, Y).
//	tc(X, Y) :- tc(X, Z), tc(Z, Y).
//	distinct(X, Y) :- tc(X, Y), X != Y.
func Parse(src string) (*Program, error) {
	p := &dlParser{src: src}
	prog := &Program{}
	for {
		p.skip()
		if p.pos >= len(p.src) {
			break
		}
		if err := p.clause(prog); err != nil {
			return nil, err
		}
	}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	return prog, nil
}

// MustParse is Parse panicking on error.
func MustParse(src string) *Program {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

type dlParser struct {
	src string
	pos int
}

func (p *dlParser) skip() {
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			p.pos++
		case c == '%':
			for p.pos < len(p.src) && p.src[p.pos] != '\n' {
				p.pos++
			}
		default:
			return
		}
	}
}

func (p *dlParser) errf(format string, args ...any) error {
	return fmt.Errorf("datalog: offset %d: %s", p.pos, fmt.Sprintf(format, args...))
}

func (p *dlParser) clause(prog *Program) error {
	head, err := p.atom()
	if err != nil {
		return err
	}
	p.skip()
	switch {
	case strings.HasPrefix(p.src[p.pos:], "."):
		p.pos++
		if !head.Ground() {
			return p.errf("fact %s is not ground", head)
		}
		prog.Facts = append(prog.Facts, head)
		return nil
	case strings.HasPrefix(p.src[p.pos:], ":-"):
		p.pos += 2
		rule := Rule{Head: head}
		for {
			p.skip()
			// Inequality or atom?
			save := p.pos
			t1, err := p.term()
			if err == nil {
				p.skip()
				if strings.HasPrefix(p.src[p.pos:], "!=") {
					p.pos += 2
					p.skip()
					t2, err := p.term()
					if err != nil {
						return err
					}
					rule.Neq = append(rule.Neq, [2]Term{t1, t2})
					goto next
				}
			}
			p.pos = save
			{
				a, err := p.atom()
				if err != nil {
					return err
				}
				rule.Body = append(rule.Body, a)
			}
		next:
			p.skip()
			if strings.HasPrefix(p.src[p.pos:], ",") {
				p.pos++
				continue
			}
			if strings.HasPrefix(p.src[p.pos:], ".") {
				p.pos++
				prog.Rules = append(prog.Rules, rule)
				return nil
			}
			return p.errf("expected ',' or '.' in rule body")
		}
	default:
		return p.errf("expected '.' or ':-' after %s", head)
	}
}

func (p *dlParser) atom() (Atom, error) {
	p.skip()
	name, err := p.ident()
	if err != nil {
		return Atom{}, err
	}
	if unicode.IsUpper(rune(name[0])) {
		return Atom{}, p.errf("predicate %q must not start uppercase", name)
	}
	a := Atom{Pred: name}
	p.skip()
	if !strings.HasPrefix(p.src[p.pos:], "(") {
		return a, nil // propositional atom
	}
	p.pos++
	for {
		t, err := p.term()
		if err != nil {
			return Atom{}, err
		}
		a.Args = append(a.Args, t)
		p.skip()
		if strings.HasPrefix(p.src[p.pos:], ",") {
			p.pos++
			continue
		}
		if strings.HasPrefix(p.src[p.pos:], ")") {
			p.pos++
			return a, nil
		}
		return Atom{}, p.errf("expected ',' or ')' in atom %s", a.Pred)
	}
}

func (p *dlParser) term() (Term, error) {
	p.skip()
	if p.pos < len(p.src) && p.src[p.pos] == '\'' {
		end := strings.IndexByte(p.src[p.pos+1:], '\'')
		if end < 0 {
			return Term{}, p.errf("unterminated quoted constant")
		}
		val := p.src[p.pos+1 : p.pos+1+end]
		p.pos += end + 2
		return C(val), nil
	}
	name, err := p.ident()
	if err != nil {
		return Term{}, err
	}
	r := rune(name[0])
	if unicode.IsUpper(r) || r == '_' {
		return V(name), nil
	}
	return C(name), nil
}

func (p *dlParser) ident() (string, error) {
	p.skip()
	start := p.pos
	for p.pos < len(p.src) {
		r := rune(p.src[p.pos])
		if unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-' {
			p.pos++
			continue
		}
		break
	}
	if p.pos == start {
		return "", p.errf("expected identifier")
	}
	return p.src[start:p.pos], nil
}
