package datalog

import (
	"strings"
	"testing"

	"axml/internal/core"
)

func chain(n int) [][2]string {
	var edges [][2]string
	for i := 0; i < n; i++ {
		edges = append(edges, [2]string{num(i), num(i + 1)})
	}
	return edges
}

func num(i int) string { return string(rune('a' + i)) }

func relString(r *Relation) string {
	var parts []string
	for _, t := range r.Tuples() {
		parts = append(parts, strings.Join(t, "-"))
	}
	return strings.Join(parts, " ")
}

func TestNaiveAndSemiNaiveAgree(t *testing.T) {
	p := TransitiveClosure(chain(5))
	ndb, nst, err := p.Naive()
	if err != nil {
		t.Fatal(err)
	}
	sdb, sst, err := p.SemiNaive()
	if err != nil {
		t.Fatal(err)
	}
	if relString(ndb["tc"]) != relString(sdb["tc"]) {
		t.Fatalf("naive %s != semi-naive %s", relString(ndb["tc"]), relString(sdb["tc"]))
	}
	// Chain of 5 edges: 6 nodes, C(6,2)=15 pairs.
	if ndb["tc"].Len() != 15 {
		t.Fatalf("tc size = %d, want 15", ndb["tc"].Len())
	}
	if nst.Derivations <= sst.Derivations {
		t.Logf("naive %d vs semi-naive %d derivations (expected naive >= semi-naive)", nst.Derivations, sst.Derivations)
	}
}

func TestCyclicGraphTC(t *testing.T) {
	p := TransitiveClosure([][2]string{{"a", "b"}, {"b", "c"}, {"c", "a"}})
	db, _, err := p.SemiNaive()
	if err != nil {
		t.Fatal(err)
	}
	// All 9 ordered pairs derivable on a 3-cycle.
	if db["tc"].Len() != 9 {
		t.Fatalf("cyclic tc = %d, want 9", db["tc"].Len())
	}
}

func TestInequalities(t *testing.T) {
	p := &Program{
		Facts: []Atom{A("n", C("1")), A("n", C("2"))},
		Rules: []Rule{{
			Head: A("pair", V("X"), V("Y")),
			Body: []Atom{A("n", V("X")), A("n", V("Y"))},
			Neq:  [][2]Term{{V("X"), V("Y")}},
		}},
	}
	db, _, err := p.Naive()
	if err != nil {
		t.Fatal(err)
	}
	if db["pair"].Len() != 2 {
		t.Fatalf("pair = %s", relString(db["pair"]))
	}
}

func TestValidateErrors(t *testing.T) {
	bad := []*Program{
		{Facts: []Atom{A("e", V("X"))}},                                                // non-ground fact
		{Rules: []Rule{{Head: A("p", V("X"))}}},                                        // unsafe head
		{Facts: []Atom{A("e", C("1"))}, Rules: []Rule{{Head: A("e", C("1"), C("2"))}}}, // arity clash
		{Rules: []Rule{{Head: A("p", C("1")), Neq: [][2]Term{{V("Z"), C("1")}}}}},      // unbound ineq var
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestQSQMatchesBottomUp(t *testing.T) {
	p := TransitiveClosure(chain(6))
	db, _, err := p.SemiNaive()
	if err != nil {
		t.Fatal(err)
	}
	// Fully bound goal.
	got, _, err := p.QSQ(A("tc", C("a"), C("d")))
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 1 {
		t.Fatalf("bound goal: %s", relString(got))
	}
	// Half-bound goal: everything reachable from a.
	got, _, err = p.QSQ(A("tc", C("a"), V("Y")))
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, tpl := range db["tc"].Tuples() {
		if tpl[0] == "a" {
			want++
		}
	}
	if got.Len() != want {
		t.Fatalf("half-bound: %d, want %d", got.Len(), want)
	}
	// Free goal: full relation.
	got, _, err = p.QSQ(A("tc", V("X"), V("Y")))
	if err != nil {
		t.Fatal(err)
	}
	if relString(got) != relString(db["tc"]) {
		t.Fatalf("free goal differs:\n%s\nvs\n%s", relString(got), relString(db["tc"]))
	}
}

func TestQSQRepeatedGoalVariable(t *testing.T) {
	p := TransitiveClosure([][2]string{{"a", "b"}, {"b", "a"}, {"b", "c"}})
	got, _, err := p.QSQ(A("tc", V("X"), V("X")))
	if err != nil {
		t.Fatal(err)
	}
	// Self-loops through the a<->b cycle: (a,a) and (b,b).
	if got.Len() != 2 {
		t.Fatalf("self pairs: %s", relString(got))
	}
}

func TestToAXMLFixpointMatchesSemiNaive(t *testing.T) {
	p := TransitiveClosure(chain(4))
	s, err := p.ToAXML()
	if err != nil {
		t.Fatal(err)
	}
	if !s.IsSimple() {
		t.Fatal("datalog translation must be simple")
	}
	res := s.Run(core.RunOptions{})
	if !res.Terminated {
		t.Fatalf("AXML run did not terminate: %+v", res)
	}
	rel, err := FromAXMLDoc(s.Document(DocName("tc")).Root)
	if err != nil {
		t.Fatal(err)
	}
	db, _, err := p.SemiNaive()
	if err != nil {
		t.Fatal(err)
	}
	if relString(rel) != relString(db["tc"]) {
		t.Fatalf("AXML %s != datalog %s", relString(rel), relString(db["tc"]))
	}
}

func TestToAXMLWithConstantsAndIneq(t *testing.T) {
	p := &Program{
		Facts: []Atom{A("e", C("1"), C("2")), A("e", C("2"), C("3")), A("e", C("3"), C("3"))},
		Rules: []Rule{{
			Head: A("out", V("X"), V("Y")),
			Body: []Atom{A("e", V("X"), V("Y"))},
			Neq:  [][2]Term{{V("X"), V("Y")}},
		}},
	}
	s, err := p.ToAXML()
	if err != nil {
		t.Fatal(err)
	}
	if res := s.Run(core.RunOptions{}); !res.Terminated {
		t.Fatal("did not terminate")
	}
	rel, err := FromAXMLDoc(s.Document(DocName("out")).Root)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 2 {
		t.Fatalf("out = %s", relString(rel))
	}
}

func TestStringRendering(t *testing.T) {
	r := Rule{
		Head: A("p", V("X")),
		Body: []Atom{A("q", V("X"), C("k"))},
		Neq:  [][2]Term{{V("X"), C("z")}},
	}
	want := `p(X) :- q(X,"k"), X != "z"`
	if r.String() != want {
		t.Fatalf("String = %q, want %q", r.String(), want)
	}
}

func TestRelationBasics(t *testing.T) {
	r := NewRelation()
	if !r.Add(Tuple{"a", "b"}) || r.Add(Tuple{"a", "b"}) {
		t.Fatal("Add dedup broken")
	}
	if !r.Has(Tuple{"a", "b"}) || r.Has(Tuple{"b", "a"}) {
		t.Fatal("Has broken")
	}
	if r.Len() != 1 {
		t.Fatal("Len broken")
	}
}
