package datalog

import (
	"sort"
	"strings"
)

// QSQ answers a single goal atom top-down with tabling, in the spirit of
// the Query-SubQuery approach [Vieille 1986]: subgoals are adorned with
// their bound arguments, each adorned subgoal gets a memo table, and
// tables are filled to fixpoint on demand — only the part of the fixpoint
// relevant to the goal is computed, which is the datalog face of the
// paper's lazy query evaluation (Section 4 and the companion work).
//
// The returned relation holds the goal predicate's matching tuples. Stats
// count the adorned subgoals opened and the derivations performed, to be
// compared against bottom-up evaluation in the benchmarks.
func (p *Program) QSQ(goal Atom) (*Relation, QSQStats, error) {
	if err := p.Validate(); err != nil {
		return nil, QSQStats{}, err
	}
	e := &qsqEngine{
		prog:   p,
		edb:    p.edb(),
		tables: map[string]*Relation{},
		active: map[string]bool{},
	}
	// Iterate the whole demand-driven computation to fixpoint: recursive
	// subgoals may need several passes for their tables to saturate.
	for {
		e.changed = false
		e.answer(goal)
		e.stats.Passes++
		if !e.changed {
			break
		}
	}
	out := NewRelation()
	for _, t := range e.table(goal).Tuples() {
		if matchesGoal(goal, t) {
			out.Add(t)
		}
	}
	return out, e.stats, nil
}

// QSQStats reports the effort of a QSQ evaluation.
type QSQStats struct {
	// Subgoals counts distinct adorned subgoals opened.
	Subgoals int
	// Derivations counts rule firings.
	Derivations int
	// Passes counts outer fixpoint passes.
	Passes int
}

type qsqEngine struct {
	prog    *Program
	edb     DB
	tables  map[string]*Relation // adorned subgoal -> answers
	active  map[string]bool      // cycle guard within one pass
	stats   QSQStats
	changed bool
}

// adornment renders the subgoal key: predicate plus bound constants.
func adornment(goal Atom) string {
	parts := make([]string, 0, len(goal.Args)+1)
	parts = append(parts, goal.Pred)
	for _, a := range goal.Args {
		if a.IsVar() {
			parts = append(parts, "_")
		} else {
			parts = append(parts, "="+a.Const)
		}
	}
	return strings.Join(parts, "|")
}

func (e *qsqEngine) table(goal Atom) *Relation {
	k := adornment(goal)
	t, ok := e.tables[k]
	if !ok {
		t = NewRelation()
		e.tables[k] = t
		e.stats.Subgoals++
	}
	return t
}

// answer fills the table for the goal (and its subgoals, recursively).
func (e *qsqEngine) answer(goal Atom) {
	k := adornment(goal)
	tbl := e.table(goal)
	if e.active[k] {
		return // recursive re-entry: use what the table has so far
	}
	e.active[k] = true
	defer delete(e.active, k)

	// EDB contribution.
	if rel := e.edb[goal.Pred]; rel != nil {
		for _, t := range rel.Tuples() {
			if matchesGoal(goal, t) && tbl.Add(t) {
				e.changed = true
			}
		}
	}
	// IDB rules with this head predicate.
	for _, r := range e.prog.Rules {
		if r.Head.Pred != goal.Pred {
			continue
		}
		e.fireTopDown(r, goal, tbl)
	}
}

// fireTopDown evaluates one rule under the goal's bindings, issuing
// subqueries for body atoms with bindings pushed sideways.
func (e *qsqEngine) fireTopDown(r Rule, goal Atom, tbl *Relation) {
	binding := map[string]string{}
	// Push the goal's constants into the head variables.
	for i, a := range r.Head.Args {
		if i >= len(goal.Args) || goal.Args[i].IsVar() {
			continue
		}
		if a.IsVar() {
			if v, ok := binding[a.Var]; ok && v != goal.Args[i].Const {
				return
			}
			binding[a.Var] = goal.Args[i].Const
		} else if a.Const != goal.Args[i].Const {
			return
		}
	}
	var rec func(i int, binding map[string]string)
	rec = func(i int, binding map[string]string) {
		if i == len(r.Body) {
			for _, eIneq := range r.Neq {
				if resolve(eIneq[0], binding) == resolve(eIneq[1], binding) {
					return
				}
			}
			t := make(Tuple, len(r.Head.Args))
			for j, a := range r.Head.Args {
				t[j] = resolve(a, binding)
			}
			e.stats.Derivations++
			if tbl.Add(t) {
				e.changed = true
			}
			return
		}
		// Build the subgoal with current bindings pushed in.
		sub := Atom{Pred: r.Body[i].Pred, Args: make([]Term, len(r.Body[i].Args))}
		for j, a := range r.Body[i].Args {
			if a.IsVar() {
				if v, ok := binding[a.Var]; ok {
					sub.Args[j] = C(v)
				} else {
					sub.Args[j] = a
				}
			} else {
				sub.Args[j] = a
			}
		}
		e.answer(sub)
		for _, tpl := range e.table(sub).Tuples() {
			if !matchesGoal(sub, tpl) {
				continue
			}
			nb := copyBinding(binding)
			ok := true
			for j, a := range r.Body[i].Args {
				if a.IsVar() {
					if v, bound := nb[a.Var]; bound {
						if v != tpl[j] {
							ok = false
							break
						}
					} else {
						nb[a.Var] = tpl[j]
					}
				}
			}
			if ok {
				rec(i+1, nb)
			}
		}
	}
	rec(0, binding)
}

func matchesGoal(goal Atom, t Tuple) bool {
	if len(goal.Args) != len(t) {
		return false
	}
	seen := map[string]string{}
	for i, a := range goal.Args {
		if a.IsVar() {
			if prev, ok := seen[a.Var]; ok && prev != t[i] {
				return false
			}
			seen[a.Var] = t[i]
			continue
		}
		if a.Const != t[i] {
			return false
		}
	}
	return true
}

// TableSummary lists the adorned tables and their sizes, sorted, for
// inspection in tests and benchmarks.
func (e *qsqEngine) TableSummary() []string {
	var keys []string
	for k := range e.tables {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
