// Package datalog implements a positive datalog engine: naive and
// semi-naive bottom-up evaluation and a tabled top-down evaluator in the
// spirit of Query-SubQuery (QSQ) [Vieille 1986], the optimization the
// paper's companion work lifts to positive AXML.
//
// It also translates datalog programs into simple positive AXML systems,
// generalizing Example 3.2 (the transitive-closure system): the paper
// notes that any datalog program can be simulated by a simple positive
// system, and this package makes the simulation executable and testable in
// both directions (same fixpoint).
package datalog

import (
	"fmt"
	"sort"
	"strings"
)

// Term is a datalog term: a variable (uppercase by convention, but any
// non-empty Var wins) or a constant.
type Term struct {
	Var   string
	Const string
}

// V returns a variable term.
func V(name string) Term { return Term{Var: name} }

// C returns a constant term.
func C(value string) Term { return Term{Const: value} }

// IsVar reports whether the term is a variable.
func (t Term) IsVar() bool { return t.Var != "" }

// String renders the term.
func (t Term) String() string {
	if t.IsVar() {
		return t.Var
	}
	return fmt.Sprintf("%q", t.Const)
}

// Atom is a predicate applied to terms.
type Atom struct {
	Pred string
	Args []Term
}

// A builds an atom.
func A(pred string, args ...Term) Atom { return Atom{Pred: pred, Args: args} }

// String renders the atom.
func (a Atom) String() string {
	parts := make([]string, len(a.Args))
	for i, t := range a.Args {
		parts[i] = t.String()
	}
	return a.Pred + "(" + strings.Join(parts, ",") + ")"
}

// Ground reports whether the atom has no variables.
func (a Atom) Ground() bool {
	for _, t := range a.Args {
		if t.IsVar() {
			return false
		}
	}
	return true
}

// Rule is head :- body with optional inequalities.
type Rule struct {
	Head Atom
	Body []Atom
	Neq  [][2]Term
}

// String renders the rule.
func (r Rule) String() string {
	var parts []string
	for _, a := range r.Body {
		parts = append(parts, a.String())
	}
	for _, e := range r.Neq {
		parts = append(parts, e[0].String()+" != "+e[1].String())
	}
	return r.Head.String() + " :- " + strings.Join(parts, ", ")
}

// Program is a set of rules plus ground EDB facts.
type Program struct {
	Rules []Rule
	Facts []Atom
}

// Validate checks range restriction (head variables bound in the body)
// and fact groundness.
func (p *Program) Validate() error {
	arity := map[string]int{}
	check := func(a Atom) error {
		if prev, ok := arity[a.Pred]; ok && prev != len(a.Args) {
			return fmt.Errorf("datalog: predicate %s used with arities %d and %d", a.Pred, prev, len(a.Args))
		}
		arity[a.Pred] = len(a.Args)
		return nil
	}
	for _, f := range p.Facts {
		if !f.Ground() {
			return fmt.Errorf("datalog: non-ground fact %s", f)
		}
		if err := check(f); err != nil {
			return err
		}
	}
	for _, r := range p.Rules {
		if err := check(r.Head); err != nil {
			return err
		}
		bound := map[string]bool{}
		for _, a := range r.Body {
			if err := check(a); err != nil {
				return err
			}
			for _, t := range a.Args {
				if t.IsVar() {
					bound[t.Var] = true
				}
			}
		}
		for _, t := range r.Head.Args {
			if t.IsVar() && !bound[t.Var] {
				return fmt.Errorf("datalog: rule %s is not range-restricted (%s unbound)", r, t.Var)
			}
		}
		for _, e := range r.Neq {
			for _, t := range e {
				if t.IsVar() && !bound[t.Var] {
					return fmt.Errorf("datalog: inequality variable %s unbound in %s", t.Var, r)
				}
			}
		}
	}
	return nil
}

// Tuple is one derived row.
type Tuple []string

func (t Tuple) key() string { return strings.Join(t, "\x00") }

// Relation is a set of tuples.
type Relation struct {
	tuples map[string]Tuple
}

// NewRelation returns an empty relation.
func NewRelation() *Relation { return &Relation{tuples: map[string]Tuple{}} }

// Add inserts a tuple, reporting whether it was new.
func (r *Relation) Add(t Tuple) bool {
	k := t.key()
	if _, ok := r.tuples[k]; ok {
		return false
	}
	r.tuples[k] = t
	return true
}

// Has tests membership.
func (r *Relation) Has(t Tuple) bool { _, ok := r.tuples[t.key()]; return ok }

// Len returns the tuple count.
func (r *Relation) Len() int { return len(r.tuples) }

// Tuples returns the tuples, sorted for determinism.
func (r *Relation) Tuples() []Tuple {
	keys := make([]string, 0, len(r.tuples))
	for k := range r.tuples {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Tuple, len(keys))
	for i, k := range keys {
		out[i] = r.tuples[k]
	}
	return out
}

// DB maps predicate names to relations.
type DB map[string]*Relation

// rel returns (allocating) the relation for pred.
func (db DB) rel(pred string) *Relation {
	r, ok := db[pred]
	if !ok {
		r = NewRelation()
		db[pred] = r
	}
	return r
}

// Count returns the total number of tuples.
func (db DB) Count() int {
	n := 0
	for _, r := range db {
		n += r.Len()
	}
	return n
}

// edb loads the facts into a fresh database.
func (p *Program) edb() DB {
	db := DB{}
	for _, f := range p.Facts {
		t := make(Tuple, len(f.Args))
		for i, a := range f.Args {
			t[i] = a.Const
		}
		db.rel(f.Pred).Add(t)
	}
	return db
}

// Stats reports evaluation effort.
type Stats struct {
	// Iterations counts fixpoint rounds.
	Iterations int
	// Derivations counts rule firings that produced a (possibly
	// duplicate) head tuple.
	Derivations int
}

// Naive evaluates the program bottom-up, re-deriving everything each
// round until fixpoint.
func (p *Program) Naive() (DB, Stats, error) {
	if err := p.Validate(); err != nil {
		return nil, Stats{}, err
	}
	db := p.edb()
	var st Stats
	for {
		st.Iterations++
		changed := false
		for _, r := range p.Rules {
			for _, tpl := range fireRule(r, db, nil, nil) {
				st.Derivations++
				if db.rel(r.Head.Pred).Add(tpl) {
					changed = true
				}
			}
		}
		if !changed {
			return db, st, nil
		}
	}
}

// SemiNaive evaluates bottom-up with delta relations: each round joins at
// least one delta from the previous round, avoiding re-derivations.
func (p *Program) SemiNaive() (DB, Stats, error) {
	if err := p.Validate(); err != nil {
		return nil, Stats{}, err
	}
	db := p.edb()
	var st Stats
	// Initial deltas: everything known.
	delta := DB{}
	for pred, rel := range db {
		d := NewRelation()
		for _, t := range rel.Tuples() {
			d.Add(t)
		}
		delta[pred] = d
	}
	for {
		st.Iterations++
		next := DB{}
		for _, r := range p.Rules {
			// One pass per body position using the delta there.
			for pos := range r.Body {
				if delta[r.Body[pos].Pred] == nil || delta[r.Body[pos].Pred].Len() == 0 {
					continue
				}
				for _, tpl := range fireRule(r, db, delta, &pos) {
					st.Derivations++
					if !db.rel(r.Head.Pred).Has(tpl) && next.rel(r.Head.Pred).Add(tpl) {
						// collected; merged below
						_ = tpl
					}
				}
			}
		}
		changed := false
		for pred, rel := range next {
			for _, t := range rel.Tuples() {
				if db.rel(pred).Add(t) {
					changed = true
				}
			}
		}
		delta = next
		if !changed {
			return db, st, nil
		}
	}
}

// fireRule enumerates the head tuples derivable by r from db; when
// deltaPos is non-nil, the body atom at that position ranges over delta
// instead of the full database (semi-naive restriction).
func fireRule(r Rule, db DB, delta DB, deltaPos *int) []Tuple {
	var out []Tuple
	var rec func(i int, binding map[string]string)
	rec = func(i int, binding map[string]string) {
		if i == len(r.Body) {
			for _, e := range r.Neq {
				l, r0 := resolve(e[0], binding), resolve(e[1], binding)
				if l == r0 {
					return
				}
			}
			t := make(Tuple, len(r.Head.Args))
			for j, a := range r.Head.Args {
				t[j] = resolve(a, binding)
			}
			out = append(out, t)
			return
		}
		atom := r.Body[i]
		var rel *Relation
		if deltaPos != nil && i == *deltaPos {
			rel = delta[atom.Pred]
		} else {
			rel = db[atom.Pred]
		}
		if rel == nil {
			return
		}
		for _, tpl := range rel.Tuples() {
			if len(tpl) != len(atom.Args) {
				continue
			}
			nb := binding
			copied := false
			ok := true
			for j, a := range atom.Args {
				if a.IsVar() {
					if v, bound := nb[a.Var]; bound {
						if v != tpl[j] {
							ok = false
							break
						}
					} else {
						if !copied {
							nb = copyBinding(nb)
							copied = true
						}
						nb[a.Var] = tpl[j]
					}
				} else if a.Const != tpl[j] {
					ok = false
					break
				}
			}
			if ok {
				rec(i+1, nb)
			}
		}
	}
	rec(0, map[string]string{})
	return out
}

func resolve(t Term, binding map[string]string) string {
	if t.IsVar() {
		return binding[t.Var]
	}
	return t.Const
}

func copyBinding(b map[string]string) map[string]string {
	c := make(map[string]string, len(b)+1)
	for k, v := range b {
		c[k] = v
	}
	return c
}
