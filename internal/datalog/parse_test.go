package datalog

import (
	"math/rand"
	"strings"
	"testing"

	"axml/internal/core"
)

func TestParseProgram(t *testing.T) {
	prog := MustParse(`
% transitive closure
edge(a, b). edge(b, c). edge(c, d).
tc(X, Y) :- edge(X, Y).
tc(X, Y) :- tc(X, Z), tc(Z, Y).
`)
	if len(prog.Facts) != 3 || len(prog.Rules) != 2 {
		t.Fatalf("facts=%d rules=%d", len(prog.Facts), len(prog.Rules))
	}
	db, _, err := prog.SemiNaive()
	if err != nil {
		t.Fatal(err)
	}
	if db["tc"].Len() != 6 {
		t.Fatalf("tc = %d", db["tc"].Len())
	}
}

func TestParseInequalityAndQuoted(t *testing.T) {
	prog := MustParse(`
n('1'). n('2'). n(x3).
pair(X, Y) :- n(X), n(Y), X != Y.
`)
	db, _, err := prog.Naive()
	if err != nil {
		t.Fatal(err)
	}
	if db["pair"].Len() != 6 {
		t.Fatalf("pair = %s", relString(db["pair"]))
	}
	found := false
	for _, tpl := range db["pair"].Tuples() {
		if tpl[0] == "1" && tpl[1] == "x3" {
			found = true
		}
	}
	if !found {
		t.Fatal("quoted and bare constants did not mix")
	}
}

func TestParsePropositionalAtoms(t *testing.T) {
	prog := MustParse(`
raining.
wet :- raining.
`)
	db, _, err := prog.Naive()
	if err != nil {
		t.Fatal(err)
	}
	if db["wet"] == nil || db["wet"].Len() != 1 {
		t.Fatalf("wet not derived: %v", db)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`edge(X, b).`,          // non-ground fact
		`Tc(x, y).`,            // uppercase predicate
		`tc(X) :- edge(X, Y)`,  // missing final dot
		`tc(X) :- .`,           // empty body item
		`edge(a, .`,            // malformed args
		`p('unterminated).`,    // bad quote
		`p(X) :- q(X), X != .`, // bad inequality
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) accepted", src)
		}
	}
}

func TestParseRoundTripThroughString(t *testing.T) {
	prog := MustParse(`
edge(a, b).
tc(X, Y) :- edge(X, Y), X != Y.
`)
	rendered := prog.Rules[0].String()
	if !strings.Contains(rendered, "tc(X,Y)") {
		t.Fatalf("rendered = %q", rendered)
	}
}

// Fuzz: on random graphs, AXML fixpoints equal semi-naive datalog (E4's
// claim beyond chains).
func TestFuzzRandomGraphTC(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		rng := rand.New(rand.NewSource(seed))
		verts := 4 + rng.Intn(5)
		var edges [][2]string
		for k := 0; k < verts+rng.Intn(verts); k++ {
			edges = append(edges, [2]string{
				nodeName(rng.Intn(verts)), nodeName(rng.Intn(verts))})
		}
		prog := TransitiveClosure(edges)
		db, _, err := prog.SemiNaive()
		if err != nil {
			t.Fatal(err)
		}
		sys, err := prog.ToAXML()
		if err != nil {
			t.Fatal(err)
		}
		if res := sys.Run(core.RunOptions{MaxSteps: 100000}); !res.Terminated {
			t.Fatalf("seed %d: AXML TC did not terminate", seed)
		}
		rel, err := FromAXMLDoc(sys.Document(DocName("tc")).Root)
		if err != nil {
			t.Fatal(err)
		}
		if relString(rel) != relString(db["tc"]) {
			t.Fatalf("seed %d: AXML %s != datalog %s", seed, relString(rel), relString(db["tc"]))
		}
	}
}

func nodeName(i int) string { return string(rune('a' + i)) }
