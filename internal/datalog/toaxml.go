package datalog

import (
	"fmt"
	"sort"

	"axml/internal/core"
	"axml/internal/pattern"
	"axml/internal/query"
	"axml/internal/tree"
)

// ToAXML translates the program into a simple positive AXML system,
// generalizing Example 3.2. Each predicate p gets a document named
// "rel-p" whose root is p{...}; a tuple (v1..vk) is the tree
// t{c1{"v1"},...,ck{"vk"}} (positional columns — the paper writes t{x,y},
// but unordered children require named positions). EDB facts are loaded
// directly; each rule becomes a positive service whose call sits in the
// head predicate's document. The resulting system is simple: variables
// range over values only.
//
// Running the system to termination makes each document hold exactly the
// program's fixpoint, which the tests cross-check against SemiNaive.
func (p *Program) ToAXML() (*core.System, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	s := core.NewSystem()
	// Collect predicates and arities.
	arity := map[string]int{}
	note := func(a Atom) { arity[a.Pred] = len(a.Args) }
	for _, f := range p.Facts {
		note(f)
	}
	for _, r := range p.Rules {
		note(r.Head)
		for _, b := range r.Body {
			note(b)
		}
	}
	preds := make([]string, 0, len(arity))
	for pred := range arity {
		preds = append(preds, pred)
	}
	sort.Strings(preds)

	// Rules become services; calls live in their head predicate's doc.
	callsPerPred := map[string][]string{}
	var queries []*query.Query
	for i, r := range p.Rules {
		name := fmt.Sprintf("rule%d", i)
		q, err := ruleQuery(name, r)
		if err != nil {
			return nil, err
		}
		queries = append(queries, q)
		callsPerPred[r.Head.Pred] = append(callsPerPred[r.Head.Pred], name)
	}

	for _, pred := range preds {
		root := tree.NewLabel(pred)
		for _, f := range p.Facts {
			if f.Pred != pred {
				continue
			}
			root.Children = append(root.Children, tupleTree(f))
		}
		for _, call := range callsPerPred[pred] {
			root.Children = append(root.Children, tree.NewFunc(call))
		}
		if err := s.AddDocument(tree.NewDocument(DocName(pred), root)); err != nil {
			return nil, err
		}
	}
	for _, q := range queries {
		if err := s.AddQuery(q); err != nil {
			return nil, err
		}
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// DocName returns the document name encoding predicate pred.
func DocName(pred string) string { return "rel-" + pred }

func colName(i int) string { return fmt.Sprintf("c%d", i+1) }

func tupleTree(f Atom) *tree.Node {
	t := tree.NewLabel("t")
	for i, a := range f.Args {
		t.Children = append(t.Children, tree.NewLabel(colName(i), tree.NewValue(a.Const)))
	}
	return t
}

// ruleQuery builds the positive query for one datalog rule.
func ruleQuery(name string, r Rule) (*query.Query, error) {
	head := pattern.Label("t")
	for i, a := range r.Head.Args {
		head.Children = append(head.Children, pattern.Label(colName(i), termPattern(a)))
	}
	q := &query.Query{Name: name, Head: head}
	for _, b := range r.Body {
		bp := pattern.Label(b.Pred)
		tp := pattern.Label("t")
		for i, a := range b.Args {
			tp.Children = append(tp.Children, pattern.Label(colName(i), termPattern(a)))
		}
		bp.Children = append(bp.Children, tp)
		q.Body = append(q.Body, query.Atom{Doc: DocName(b.Pred), Pattern: bp})
	}
	for _, e := range r.Neq {
		q.Ineqs = append(q.Ineqs, query.Ineq{Left: ineqTerm(e[0]), Right: ineqTerm(e[1])})
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

func termPattern(t Term) *pattern.Node {
	if t.IsVar() {
		return pattern.VVar(t.Var)
	}
	return pattern.Value(t.Const)
}

func ineqTerm(t Term) query.Term {
	if t.IsVar() {
		return query.Variable(t.Var)
	}
	return query.Constant(t.Const)
}

// FromAXMLDoc reads back the relation encoded in an AXML document
// produced by ToAXML (after running the system).
func FromAXMLDoc(root *tree.Node) (*Relation, error) {
	rel := NewRelation()
	for _, c := range root.Children {
		if c.Kind != tree.Label || c.Name != "t" {
			continue
		}
		cols := map[int]string{}
		maxCol := 0
		for _, col := range c.Children {
			var idx int
			if _, err := fmt.Sscanf(col.Name, "c%d", &idx); err != nil {
				return nil, fmt.Errorf("datalog: bad column %q", col.Name)
			}
			if len(col.Children) != 1 {
				return nil, fmt.Errorf("datalog: column %q without value", col.Name)
			}
			cols[idx] = col.Children[0].Name
			if idx > maxCol {
				maxCol = idx
			}
		}
		t := make(Tuple, maxCol)
		for i := 1; i <= maxCol; i++ {
			t[i-1] = cols[i]
		}
		rel.Add(t)
	}
	return rel, nil
}

// TransitiveClosure returns the TC program over edge/2 into tc/2, the
// paper's running datalog example.
func TransitiveClosure(edges [][2]string) *Program {
	p := &Program{
		Rules: []Rule{
			{Head: A("tc", V("X"), V("Y")), Body: []Atom{A("edge", V("X"), V("Y"))}},
			{Head: A("tc", V("X"), V("Y")), Body: []Atom{A("tc", V("X"), V("Z")), A("tc", V("Z"), V("Y"))}},
		},
	}
	for _, e := range edges {
		p.Facts = append(p.Facts, A("edge", C(e[0]), C(e[1])))
	}
	return p
}
