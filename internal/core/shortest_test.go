package core

import (
	"strings"
	"testing"

	"axml/internal/pattern"
	"axml/internal/query"
	"axml/internal/syntax"
)

// hasPair reports whether d1 contains the closure pair (x, y).
func hasPair(s *System, x, y string) bool {
	q := &query.Query{
		Name: "probe",
		Head: pattern.Label("hit"),
		Body: []query.Atom{{Doc: "d1", Pattern: syntax.MustParsePattern(
			`r{t{a{"` + x + `"},b{"` + y + `"}}}`)}},
	}
	ans, err := query.Snapshot(q, s.Docs())
	return err == nil && len(ans) == 1
}

func TestShortestRunFindsMinimalDerivation(t *testing.T) {
	s := MustParseSystem(tcSystem)
	// Deriving the base pairs needs exactly one invocation (g).
	steps, trace, ok, err := s.ShortestRun(func(st *System) bool {
		return hasPair(st, "1", "2")
	}, ShortestOptions{})
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if steps != 1 {
		t.Fatalf("base pair needs %d steps, want 1 (trace %v)", steps, trace)
	}
	if !strings.HasPrefix(trace[0], "g@") {
		t.Fatalf("trace = %v", trace)
	}
	// The full closure pair (1,4) needs g then two compositions: 3 steps.
	steps, trace, ok, err = s.ShortestRun(func(st *System) bool {
		return hasPair(st, "1", "4")
	}, ShortestOptions{})
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if steps != 3 {
		t.Fatalf("(1,4) needs %d steps, want 3 (trace %v)", steps, trace)
	}
	// The receiver must be untouched.
	if hasPair(s, "1", "2") {
		t.Fatal("ShortestRun mutated the receiver")
	}
}

func TestShortestRunAlreadySatisfied(t *testing.T) {
	s := MustParseSystem(tcSystem)
	steps, trace, ok, err := s.ShortestRun(func(*System) bool { return true }, ShortestOptions{})
	if err != nil || !ok || steps != 0 || trace != nil {
		t.Fatalf("steps=%d trace=%v ok=%v err=%v", steps, trace, ok, err)
	}
}

func TestShortestRunUnreachable(t *testing.T) {
	s := MustParseSystem(tcSystem)
	_, _, ok, err := s.ShortestRun(func(st *System) bool {
		return hasPair(st, "4", "1") // never derivable on a chain
	}, ShortestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("underivable pair reported reachable")
	}
}

func TestShortestRunStateBudget(t *testing.T) {
	inf := MustParseSystem("doc d = a{!f}\nfunc f = a{!f} :- ")
	_, _, _, err := inf.ShortestRun(func(*System) bool { return false }, ShortestOptions{MaxStates: 10})
	if err == nil {
		t.Fatal("state budget not enforced on an infinite system")
	}
}
