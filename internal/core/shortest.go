package core

import (
	"context"
	"fmt"
)

// ShortestRun searches for a minimal-length rewriting reaching a state
// that satisfies target, by breadth-first search over the (memoized)
// state space of invocation sequences. Section 4 observes that the
// ordering of calls matters when one wants rewritings of minimal length
// and that the problem is decidable (though very expensive) for simple
// systems; this is that procedure, budget-bounded so it is usable on
// arbitrary monotone systems too.
//
// It returns the minimal number of strictly-growing invocations needed,
// the sequence of call descriptions (service names at their attach
// labels), and ok=false when no satisfying state is reachable within
// MaxStates explored states.
//
// The receiver is not modified.
func (s *System) ShortestRun(target func(*System) bool, opts ShortestOptions) (steps int, trace []string, ok bool, err error) {
	maxStates := opts.MaxStates
	if maxStates == 0 {
		maxStates = DefaultMaxStates
	}
	type state struct {
		sys   *System
		depth int
		trace []string
	}
	start := s.Copy()
	if target(start) {
		return 0, nil, true, nil
	}
	seen := map[string]bool{start.CanonicalString(): true}
	queue := []state{{sys: start}}
	explored := 0
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, c := range cur.sys.Calls() {
			next := cur.sys.Copy()
			// Find the corresponding call in the copy by position.
			nc, found := matchCall(next, cur.sys, c)
			if !found {
				continue
			}
			changed, err := next.Invoke(context.Background(), nc)
			if err != nil {
				return 0, nil, false, err
			}
			if !changed {
				continue
			}
			key := next.CanonicalString()
			if seen[key] {
				continue
			}
			seen[key] = true
			explored++
			if explored > maxStates {
				return 0, nil, false, fmt.Errorf("core: ShortestRun exceeded %d states", maxStates)
			}
			step := fmt.Sprintf("%s@%s", c.Node.Name, c.Parent.Name)
			tr := append(append([]string(nil), cur.trace...), step)
			if target(next) {
				return cur.depth + 1, tr, true, nil
			}
			queue = append(queue, state{sys: next, depth: cur.depth + 1, trace: tr})
		}
	}
	return 0, nil, false, nil
}

// ShortestOptions bounds ShortestRun.
type ShortestOptions struct {
	// MaxStates caps the number of distinct states explored; 0 means
	// DefaultMaxStates.
	MaxStates int
}

// DefaultMaxStates bounds ShortestRun searches by default.
const DefaultMaxStates = 20000

// matchCall finds, in the copied system, the call at the same position as
// c in the original (documents are copied structurally, so positions
// correspond by preorder index).
func matchCall(copySys, origSys *System, c Call) (Call, bool) {
	origCalls := origSys.Calls()
	idx := -1
	for i, oc := range origCalls {
		if oc.Node == c.Node {
			idx = i
			break
		}
	}
	if idx < 0 {
		return Call{}, false
	}
	copyCalls := copySys.Calls()
	if idx >= len(copyCalls) {
		return Call{}, false
	}
	return copyCalls[idx], true
}
