package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"axml/internal/syntax"
	"axml/internal/tree"
)

// engineFixtures are terminating systems with genuinely different shapes:
// transitive closure (joins across sweeps), fan-out (many independent
// calls per sweep), a context-reading nester, and a cross-document
// pipeline. Each is built fresh per use — runs mutate documents.
func engineFixtures() map[string]func() *System {
	return map[string]func() *System{
		"transitive-closure": func() *System { return MustParseSystem(tcSystem) },
		"fanout": func() *System {
			return MustParseSystem(`
doc d = root{x{!f},y{!f},z{!f},w{!g},v{!g}}
doc facts = r{item{"1"},item{"2"},item{"3"}}
func f = got{$x} :- facts/r{item{$x}}
func g = pair{$x,$y} :- facts/r{item{$x}}, facts/r{item{$y}}
`)
		},
		"nesting": func() *System {
			return MustParseSystem(`
doc d = a{src{"p"},src{"q"},!f}
func f = out{#T} :- context/a{src{#T}}
`)
		},
		"pipeline": func() *System {
			return MustParseSystem(`
doc d0 = r{t{a{1},b{2}},t{a{2},b{3}}}
doc d1 = s{!copy}
doc d2 = t{!close}
func copy  = t{a{$x},b{$y}} :- d0/r{t{a{$x},b{$y}}}
func close = pair{$x,$y} :- d1/s{t{a{$x},b{$z}}}, d1/s{t{a{$z},b{$y}}}
`)
		},
	}
}

// Theorem 2.1 in executable form: for every fixture the parallel engine
// must reach exactly the sequential engine's fixpoint — document digests
// equal at every parallelism level — even though step/attempt counters
// may differ.
func TestParallelMatchesSequentialDigests(t *testing.T) {
	for name, mk := range engineFixtures() {
		t.Run(name, func(t *testing.T) {
			seq := mk()
			sres := seq.Run(RunOptions{Parallelism: 1})
			if sres.Err != nil || !sres.Terminated {
				t.Fatalf("sequential run: %+v", sres)
			}
			want := seq.CanonicalString()
			for _, par := range []int{0, 2, 4, 8} {
				s := mk()
				res := s.Run(RunOptions{Parallelism: par})
				if res.Err != nil || !res.Terminated {
					t.Fatalf("parallelism %d: %+v", par, res)
				}
				if got := s.CanonicalString(); got != want {
					t.Fatalf("parallelism %d diverged:\n%s\nwant\n%s", par, got, want)
				}
			}
		})
	}
}

// A slow service must be cancellable: RunContext returns promptly with
// the context error once the caller gives up, at every parallelism.
func TestRunContextCancellation(t *testing.T) {
	for _, par := range []int{1, 4} {
		t.Run(fmt.Sprintf("parallelism-%d", par), func(t *testing.T) {
			s := NewSystem()
			if err := s.AddDocument(tree.NewDocument("d",
				syntax.MustParseDocument(`a{!slow}`))); err != nil {
				t.Fatal(err)
			}
			started := make(chan struct{}, 1)
			if err := s.AddService(&GoService{Name: "slow",
				Fn: func(ctx context.Context, b Binding) (tree.Forest, error) {
					select {
					case started <- struct{}{}:
					default:
					}
					<-ctx.Done()
					return nil, ctx.Err()
				}}); err != nil {
				t.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			go func() {
				<-started
				cancel()
			}()
			done := make(chan RunResult, 1)
			go func() { done <- s.RunContext(ctx, RunOptions{Parallelism: par}) }()
			select {
			case res := <-done:
				if !errors.Is(res.Err, context.Canceled) {
					t.Fatalf("err = %v, want context.Canceled", res.Err)
				}
				if res.Terminated {
					t.Fatal("cancelled run reported terminated")
				}
			case <-time.After(5 * time.Second):
				t.Fatal("RunContext did not return after cancel")
			}
		})
	}
}

// An already-expired context stops the run before any service fires.
func TestRunContextDeadExpiresImmediately(t *testing.T) {
	s := MustParseSystem(tcSystem)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := s.RunContext(ctx, RunOptions{})
	if !errors.Is(res.Err, context.Canceled) {
		t.Fatalf("err = %v", res.Err)
	}
	if res.Attempts != 0 {
		t.Fatalf("attempts = %d on a dead context", res.Attempts)
	}
}

// Parallel firing actually happens: with enough independent slow calls,
// peak in-flight concurrency under Parallelism: 4 must exceed 1.
func TestParallelFiresConcurrently(t *testing.T) {
	s := NewSystem()
	if err := s.AddDocument(tree.NewDocument("d", syntax.MustParseDocument(
		`root{x1{!f},x2{!f},x3{!f},x4{!f},x5{!f},x6{!f},x7{!f},x8{!f}}`))); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	inflight, peak := 0, 0
	if err := s.AddService(&GoService{Name: "f",
		Fn: func(ctx context.Context, b Binding) (tree.Forest, error) {
			mu.Lock()
			inflight++
			if inflight > peak {
				peak = inflight
			}
			mu.Unlock()
			time.Sleep(20 * time.Millisecond)
			mu.Lock()
			inflight--
			mu.Unlock()
			return tree.Forest{tree.NewLabel("done")}, nil
		}}); err != nil {
		t.Fatal(err)
	}
	res := s.Run(RunOptions{Parallelism: 4})
	if res.Err != nil || !res.Terminated {
		t.Fatalf("run: %+v", res)
	}
	if peak < 2 {
		t.Fatalf("peak in-flight = %d; parallel engine never overlapped calls", peak)
	}
	if peak > 4 {
		t.Fatalf("peak in-flight = %d exceeds the worker bound 4", peak)
	}
}

// Two concurrent RunContext calls on one shared System must race safely
// (the version funnel lives on the System) and jointly reach the same
// fixpoint a single run reaches.
func TestConcurrentRunsOnSharedSystem(t *testing.T) {
	want := func() string {
		s := MustParseSystem(tcSystem)
		s.Run(RunOptions{Parallelism: 1})
		return s.CanonicalString()
	}()
	s := MustParseSystem(tcSystem)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(par int) {
			defer wg.Done()
			res := s.Run(RunOptions{Parallelism: par})
			if res.Err != nil {
				t.Errorf("parallelism %d: %v", par, res.Err)
			}
		}(i + 1)
	}
	wg.Wait()
	if got := s.CanonicalString(); got != want {
		t.Fatalf("shared-system fixpoint diverged:\n%s\nwant\n%s", got, want)
	}
}
