// Package core implements monotone Active XML systems (Section 2 of the
// paper) and positive systems (Section 3): documents with embedded service
// calls, black-box and query-defined monotone services, the invocation
// semantics with the reserved input and context documents, fair rewriting
// sequences with pluggable schedulers, termination detection, full query
// results over systems, dependency graphs and acyclic systems, and the
// fire-once alternative semantics.
package core

import (
	"context"
	"fmt"

	"axml/internal/query"
	"axml/internal/subsume"
	"axml/internal/tree"
)

// Binding carries the meaning θ given to document names when a service is
// invoked: the reserved input and context documents plus the system's
// documents (Section 2.2).
type Binding struct {
	// Input is a tree rooted at a node labeled "input" whose children
	// are the call's parameter subtrees.
	Input *tree.Node
	// Context is the subtree rooted at the parent of the call node. For
	// a call appearing directly under the document root, the context is
	// the whole document.
	Context *tree.Node
	// Docs maps system document names to their current trees.
	//
	// All binding trees (Input, Context, Docs) alias the LIVE system
	// trees for performance: services must treat them as read-only and
	// must return freshly allocated result trees. QueryService respects
	// this by construction (matching is read-only, instantiation
	// copies); custom GoServices must copy anything they retain.
	Docs query.Docs
	// Since, when non-nil, asks for a semi-naive (delta) evaluation: it
	// maps each document name the service's query may read — including
	// the reserved "input" and "context" — to the version the call was
	// last evaluated against. Declarative services then return only
	// results with a witness in the delta appended since (per-node
	// version stamps, see tree.Node.Stamp); monotone services already
	// merged everything older. Names missing from the map are treated as
	// all-new. Black boxes are free to ignore Since — returning the full
	// forest is always correct, merging is idempotent. Middleware must
	// pass the binding through unchanged so wrapped declarative services
	// still see their baseline.
	Since map[string]uint64
	// Indexes optionally maps document names (including the reserved
	// "context") to inverted indexes over the live trees (see
	// pattern.Index and query.Indexes). Purely an accelerator: services
	// are free to ignore it, and results must not depend on its presence.
	// QueryService threads it into its snapshot evaluation.
	Indexes query.Indexes
}

// docs returns the full θ binding including the reserved names.
func (b Binding) docs() query.Docs {
	all := make(query.Docs, len(b.Docs)+2)
	for k, v := range b.Docs {
		all[k] = v
	}
	all[tree.Input] = b.Input
	all[tree.Context] = b.Context
	return all
}

// Service is a Web service as seen by the system: a function from a
// binding of document names to a forest of AXML trees. Implementations
// must be monotone: enlarging any input document (w.r.t. subsumption) may
// only enlarge the result forest. The engine relies on monotonicity for
// confluence (Theorem 2.1) but cannot verify it for black boxes.
type Service interface {
	// ServiceName returns the function name f the service is bound to.
	ServiceName() string
	// Invoke evaluates the service on the binding. The context carries
	// the caller's cancellation and deadline: implementations that wait
	// (on the network, on a backoff timer) must return promptly with
	// ctx.Err() once the context is done, and must not retain ctx beyond
	// the call. The returned forest must consist of freshly allocated
	// trees owned by the caller.
	//
	// When the engine runs with RunOptions.Parallelism > 1, distinct
	// invocations of the same Service may be concurrent; implementations
	// must be safe for concurrent use (stateless services are trivially
	// so).
	Invoke(ctx context.Context, b Binding) (tree.Forest, error)
}

// QueryService is a positive service: a service defined by a positive
// query, evaluated under its snapshot semantics at each invocation
// (Section 3.2). Positive services are monotone by Proposition 3.1.
type QueryService struct {
	Query *query.Query
}

// NewQueryService wraps a validated query as a service. The query's Name
// is the function name.
func NewQueryService(q *query.Query) (*QueryService, error) {
	if q == nil {
		return nil, fmt.Errorf("core: nil query")
	}
	if q.Name == "" {
		return nil, fmt.Errorf("core: query service needs a function name")
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return &QueryService{Query: q}, nil
}

// ServiceName implements Service.
func (s *QueryService) ServiceName() string { return s.Query.Name }

// Invoke evaluates the defining query's snapshot semantics on the binding.
// Evaluation is pure and never blocks, so the context is only consulted on
// entry: an already-cancelled invocation is skipped. When the binding
// carries a Since baseline, only the delta results are computed and
// returned (semi-naive evaluation); monotonicity (Proposition 3.1) makes
// the omitted old results redundant — they were merged at the baseline.
func (s *QueryService) Invoke(ctx context.Context, b Binding) (tree.Forest, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return query.SnapshotSinceIndexed(s.Query, b.docs(), b.Since, b.Indexes)
}

// IsSimple reports whether the defining query is simple (no tree
// variables).
func (s *QueryService) IsSimple() bool { return s.Query.IsSimple() }

// GoService is a black-box monotone service implemented by an arbitrary Go
// function, modelling remote Web services whose definitions are unknown
// (the "black-box" view of Section 2.2). The engine treats it as opaque:
// analyses that need declarative definitions (dependency graphs, regular
// representations) reject systems containing GoServices.
type GoService struct {
	// Name is the function name the service answers to.
	Name string
	// Fn computes the result forest. It must be monotone and must return
	// fresh trees; implementations that wait should honor ctx
	// cancellation. Under a parallel run Fn may be called concurrently,
	// so any state it captures must be synchronized.
	Fn func(ctx context.Context, b Binding) (tree.Forest, error)
}

// ServiceName implements Service.
func (s *GoService) ServiceName() string { return s.Name }

// Invoke implements Service.
func (s *GoService) Invoke(ctx context.Context, b Binding) (tree.Forest, error) {
	return s.Fn(ctx, b)
}

// ConstService returns a black-box service that always returns (a copy of)
// the given forest, the simplest monotone service. Useful in tests and as
// the paper's Example 2.1 service.
func ConstService(name string, result tree.Forest) *GoService {
	return &GoService{Name: name, Fn: func(context.Context, Binding) (tree.Forest, error) {
		return result.Copy(), nil
	}}
}

// reduceForestAgainst drops from f every tree already subsumed by an
// existing child of parent, returning the surviving trees.
func reduceForestAgainst(parent *tree.Node, f tree.Forest) tree.Forest {
	var out tree.Forest
	for _, t := range f {
		dominated := false
		for _, c := range parent.Children {
			if subsume.Subsumed(t, c) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, t)
		}
	}
	return out
}
