package core

import (
	"fmt"
	"sort"
	"strings"

	"axml/internal/pattern"
	"axml/internal/query"
	"axml/internal/subsume"
	"axml/internal/syntax"
	"axml/internal/tree"
)

// System is a monotone AXML system (D, F, I) of Definition 2.3: a finite
// set of named documents and a finite set of named services. Documents are
// owned by the system and mutated by invocations; take Copy before running
// if the original state matters.
type System struct {
	docNames  []string
	docs      map[string]*tree.Document
	funcNames []string
	funcs     map[string]Service
	// docVersion counts the strictly-growing invocations applied to each
	// document. Services are deterministic monotone functions of the
	// documents they read, so a call whose relevant versions are
	// unchanged since its last attempt cannot bring anything new — the
	// engine uses this to skip provably-sterile attempts.
	docVersion map[string]uint64
	// onMutate observes every version bump (sweep appends, Touch-reported
	// out-of-band growth, Restore merges). Durability layers register here
	// to learn which documents changed without reaching into the engine.
	onMutate func(docName string)
	// indexes holds one inverted index per document (see pattern.Index),
	// maintained incrementally by merge (documents only grow under the
	// version funnel) and rebuilt wholesale on the out-of-band mutation
	// paths (Touch, Restore). Nil entries and a false indexing flag both
	// degrade every match to the naive walk — SetIndexing(false) is the
	// knob the digest-equivalence tests flip.
	indexes  map[string]*pattern.Index
	indexing bool
	// engineMu is the version funnel: RunContext evaluates services under
	// the read side (any number of invocations in flight) and merges
	// results — the only tree mutations a run performs — under the write
	// side. It lives on the System so concurrent runs over the same
	// system serialize their merges against each other, not just within
	// one run. It is a reader-preference lock, not a sync.RWMutex — a
	// pending merge must not block new evaluations (see rwLock). Non-
	// engine mutators (Touch, Restore, AddDocument) do not take it: they
	// are documented as requiring external synchronization with in-flight
	// runs, and the peer layer provides exactly that with its own lock.
	engineMu rwLock
}

// NewSystem returns an empty system.
func NewSystem() *System {
	return &System{
		docs:       make(map[string]*tree.Document),
		funcs:      make(map[string]Service),
		docVersion: make(map[string]uint64),
		indexes:    make(map[string]*pattern.Index),
		indexing:   true,
	}
}

// AddDocument adds a named document. Reserved names and duplicates are
// rejected; the root must be a data node (Definition 2.1(ii)).
func (s *System) AddDocument(d *tree.Document) error {
	if d == nil || d.Root == nil {
		return fmt.Errorf("core: nil document")
	}
	if d.Name == tree.Input || d.Name == tree.Context {
		return tree.ErrReservedName
	}
	if _, dup := s.docs[d.Name]; dup {
		return fmt.Errorf("core: duplicate document %q", d.Name)
	}
	if err := d.Root.Validate(); err != nil {
		return err
	}
	if d.Root.Kind == tree.Func {
		return fmt.Errorf("core: document %q has a function node as root; roots carry labels or values", d.Name)
	}
	// Documents are identified with their reduced versions (Section 2.1);
	// the engine maintains reduction as an invariant from here on.
	subsume.ReduceInPlace(d.Root)
	s.docNames = append(s.docNames, d.Name)
	s.docs[d.Name] = d
	s.reindex(d.Name)
	return nil
}

// reindex (re)builds the named document's inverted index from scratch.
// Used on document addition and on the out-of-band mutation paths that
// restructure trees wholesale; engine merges maintain the index
// incrementally instead.
func (s *System) reindex(name string) {
	if !s.indexing {
		return
	}
	if doc := s.docs[name]; doc != nil {
		s.indexes[name] = pattern.NewIndex(doc.Root)
	}
}

// SetIndexing enables or disables indexed pattern matching (enabled by
// default). Disabling drops the indexes and every match runs the naive
// walk; re-enabling rebuilds them. The results of every query are
// identical either way — the knob exists so tests and benchmarks can pin
// the indexed engine against the naive one. Must not be flipped while a
// run is in flight.
func (s *System) SetIndexing(on bool) {
	if s.indexing == on {
		return
	}
	s.indexing = on
	if !on {
		s.indexes = make(map[string]*pattern.Index)
		return
	}
	for _, name := range s.docNames {
		s.reindex(name)
	}
}

// Index returns the named document's inverted index, or nil when
// indexing is disabled.
func (s *System) Index(name string) *pattern.Index { return s.indexes[name] }

// IndexStats sums the hit/miss counters across all document indexes:
// matches answered through an index versus matches that fell back to the
// naive walk on a present index.
func (s *System) IndexStats() (hits, misses uint64) {
	for _, ix := range s.indexes {
		h, m := ix.Stats()
		hits += h
		misses += m
	}
	return hits, misses
}

// AddService registers a service under its function name.
func (s *System) AddService(svc Service) error {
	if svc == nil {
		return fmt.Errorf("core: nil service")
	}
	name := svc.ServiceName()
	if name == "" {
		return fmt.Errorf("core: service with empty name")
	}
	if _, dup := s.funcs[name]; dup {
		return fmt.Errorf("core: duplicate service %q", name)
	}
	s.funcNames = append(s.funcNames, name)
	s.funcs[name] = svc
	return nil
}

// AddQuery registers a positive service defined by the query (whose Name
// is the function name).
func (s *System) AddQuery(q *query.Query) error {
	svc, err := NewQueryService(q)
	if err != nil {
		return err
	}
	return s.AddService(svc)
}

// FromSpec builds a system from a parsed system file.
func FromSpec(spec *syntax.SystemSpec) (*System, error) {
	s := NewSystem()
	for _, d := range spec.Docs {
		if err := s.AddDocument(d); err != nil {
			return nil, err
		}
	}
	for _, q := range spec.Funcs {
		if err := s.AddQuery(q); err != nil {
			return nil, err
		}
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// ParseSystem parses a system file and builds the system.
func ParseSystem(src string) (*System, error) {
	spec, err := syntax.ParseSystem(src)
	if err != nil {
		return nil, err
	}
	return FromSpec(spec)
}

// MustParseSystem is ParseSystem panicking on error, for tests.
func MustParseSystem(src string) *System {
	s, err := ParseSystem(src)
	if err != nil {
		panic(err)
	}
	return s
}

// DocNames returns the document names in insertion order.
func (s *System) DocNames() []string { return append([]string(nil), s.docNames...) }

// FuncNames returns the service names in insertion order.
func (s *System) FuncNames() []string { return append([]string(nil), s.funcNames...) }

// Document returns the named document, or nil.
func (s *System) Document(name string) *tree.Document { return s.docs[name] }

// Service returns the named service, or nil.
func (s *System) Service(name string) Service { return s.funcs[name] }

// Docs returns the current document binding (live trees; do not modify).
func (s *System) Docs() query.Docs {
	d := make(query.Docs, len(s.docs))
	for name, doc := range s.docs {
		d[name] = doc.Root
	}
	return d
}

// Touch records an out-of-band mutation of the named document (a replica
// sync, a pushed forest, a by-hand edit), bumping its version so the
// sterile-call gate re-examines services that read it. The whole
// document is restamped at the new version: an out-of-band edit gives no
// delta bookkeeping, so the only sound baseline for later incremental
// evaluations is "everything here is new". Unknown names are ignored.
func (s *System) Touch(name string) {
	doc, ok := s.docs[name]
	if !ok {
		return
	}
	s.bumpVersion(name)
	doc.Root.StampAll(s.docVersion[name])
	// An out-of-band edit may have restructured the tree arbitrarily; the
	// incremental index maintenance only covers engine merges. Rebuild.
	s.reindex(name)
}

// SetMutationHook registers fn to be called with the document name on
// every mutation that bumps a document version. One hook at a time; nil
// unregisters. The hook runs synchronously inside the mutating operation,
// so it must be cheap and must not re-enter the system.
func (s *System) SetMutationHook(fn func(docName string)) { s.onMutate = fn }

// bumpVersion advances a document's version and notifies the mutation
// hook. Every mutating path funnels through here.
func (s *System) bumpVersion(name string) {
	s.docVersion[name]++
	if s.onMutate != nil {
		s.onMutate(name)
	}
}

// Snapshot returns a deep copy of every document in insertion order — the
// state a durability layer persists. Services are not part of a snapshot:
// they are code, reconstructed from the system definition on restart.
func (s *System) Snapshot() []*tree.Document {
	out := make([]*tree.Document, 0, len(s.docNames))
	for _, name := range s.docNames {
		out = append(out, s.docs[name].Copy())
	}
	return out
}

// Restore merges a recovered tree into the named document as the least
// upper bound of the two (Section 2.1), reporting whether the document
// grew. Monotonicity makes this the universally safe recovery primitive:
// replaying a journal record twice, applying records out of order, or
// restoring over a document that already advanced past the record can
// only re-add information, never lose or corrupt it (Theorem 2.1). A
// changed document has its version bumped so the sterile-call gate
// re-examines services that read it.
func (s *System) Restore(name string, root *tree.Node) (changed bool, err error) {
	doc, ok := s.docs[name]
	if !ok {
		return false, fmt.Errorf("core: restore of unknown document %q", name)
	}
	if root == nil {
		return false, fmt.Errorf("core: restore of %q with nil tree", name)
	}
	before := doc.Root.CanonicalHash()
	if doc.Root.Kind != root.Kind || doc.Root.Name != root.Name {
		if doc.Root.Kind != tree.Label || root.Kind != tree.Label ||
			len(doc.Root.Children) != 0 {
			return false, fmt.Errorf("core: restore of %q: incomparable roots %q vs %q",
				name, doc.Root.Name, root.Name)
		}
		// A childless label root is a replica seed created before the
		// remote marking was known (peer.NewReplicaDoc with a guessed
		// label); it carries no information, so adopt the incoming
		// marking instead of refusing the restore.
		doc.Root = tree.NewLabel(root.Name)
	}
	merged := subsume.Union(doc.Root, root)
	if merged == nil {
		return false, fmt.Errorf("core: restore of %q: union failed", name)
	}
	doc.Root.Children = merged.Children
	if doc.Root.CanonicalHash() == before {
		return false, nil
	}
	s.bumpVersion(name)
	// Union can splice surviving old nodes under restructured parents,
	// which would break the stamp ordering delta evaluation relies on;
	// restamp the whole document conservatively (full delta) and rebuild
	// its index (Union rebuilt the tree).
	doc.Root.StampAll(s.docVersion[name])
	s.reindex(name)
	return true, nil
}

// LockContention reports how many version-funnel acquisitions had to
// wait since the system was built: readerWaits counts evaluations that
// found a merge in progress, writerWaits counts merges that queued
// behind evaluations or another merge. Monotone; the engine reports
// per-run deltas in RunResult.Stats.
func (s *System) LockContention() (readerWaits, writerWaits uint64) {
	return s.engineMu.contention()
}

// Size returns the total number of nodes across all documents.
func (s *System) Size() int {
	n := 0
	for _, d := range s.docs {
		n += d.Root.Size()
	}
	return n
}

// CountCalls returns the number of function nodes across all documents.
func (s *System) CountCalls() int {
	n := 0
	for _, d := range s.docs {
		n += d.Root.CountFunc()
	}
	return n
}

// Copy deep-copies the documents; services are shared (they are stateless
// by contract). The mutation hook does not carry over — it observes one
// concrete system, not its forks.
func (s *System) Copy() *System {
	c := NewSystem()
	c.indexing = s.indexing
	for _, name := range s.docNames {
		c.docNames = append(c.docNames, name)
		c.docs[name] = s.docs[name].Copy()
		c.docVersion[name] = s.docVersion[name]
		c.reindex(name) // indexes hold node pointers; never share across copies
	}
	for _, name := range s.funcNames {
		c.funcNames = append(c.funcNames, name)
		c.funcs[name] = s.funcs[name]
	}
	return c
}

// CanonicalString renders every document canonically, sorted by name. Two
// systems over the same names are equivalent (documents pairwise
// equivalent) iff the canonical strings of their reduced forms are equal.
func (s *System) CanonicalString() string {
	names := append([]string(nil), s.docNames...)
	sort.Strings(names)
	var b strings.Builder
	for i, name := range names {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(name)
		b.WriteByte('/')
		b.WriteString(s.docs[name].Root.CanonicalString())
	}
	return b.String()
}

// Validate checks cross-references: every function name used in a document
// or produced/queried by a positive service is defined, and positive
// services only read defined document names (or the reserved ones).
func (s *System) Validate() error {
	for _, name := range s.docNames {
		var err error
		s.docs[name].Root.Walk(func(n, _ *tree.Node) bool {
			if n.Kind == tree.Func {
				if _, ok := s.funcs[n.Name]; !ok {
					err = fmt.Errorf("core: document %q calls undefined service %q", name, n.Name)
					return false
				}
			}
			return true
		})
		if err != nil {
			return err
		}
	}
	for _, fname := range s.funcNames {
		qs, ok := s.funcs[fname].(*QueryService)
		if !ok {
			continue
		}
		for _, docName := range qs.Query.DocNames() {
			if docName == tree.Input || docName == tree.Context {
				continue
			}
			if _, ok := s.docs[docName]; !ok {
				return fmt.Errorf("core: service %q reads undefined document %q", fname, docName)
			}
		}
		for _, used := range queryFuncNames(qs.Query) {
			if _, ok := s.funcs[used]; !ok {
				return fmt.Errorf("core: service %q mentions undefined service %q", fname, used)
			}
		}
	}
	return nil
}

// IsPositive reports whether every service is a QueryService (a positive
// system, Section 3.2).
func (s *System) IsPositive() bool {
	for _, name := range s.funcNames {
		if _, ok := s.funcs[name].(*QueryService); !ok {
			return false
		}
	}
	return true
}

// IsSimple reports whether the system is positive and every service query
// is simple (a simple positive system).
func (s *System) IsSimple() bool {
	for _, name := range s.funcNames {
		qs, ok := s.funcs[name].(*QueryService)
		if !ok || !qs.IsSimple() {
			return false
		}
	}
	return true
}

// queryFuncNames collects constant function names mentioned anywhere in a
// query (head or body patterns), sorted.
func queryFuncNames(q *query.Query) []string {
	names := map[string]bool{}
	collectFuncNames(q.Head, names)
	for _, a := range q.Body {
		collectFuncNames(a.Pattern, names)
	}
	out := make([]string, 0, len(names))
	for n := range names {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func collectFuncNames(p *pattern.Node, dst map[string]bool) {
	if p == nil {
		return
	}
	if p.Kind == pattern.ConstFunc {
		dst[p.Name] = true
	}
	for _, c := range p.Children {
		collectFuncNames(c, dst)
	}
}
