package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"axml/internal/obs"
	"axml/internal/tree"
)

// Fault-tolerance middlewares. The paper's model makes failure handling
// semantically trivial: services are deterministic monotone functions that
// may be invoked any number of times in any fair order, and Theorem 2.1
// guarantees the final state is order-independent — so retrying, delaying
// or re-running a failed invocation can never corrupt the system, only
// postpone information. These wrappers exploit that freedom around any
// Service (local or remote): Retry re-attempts with exponential backoff,
// Timeout bounds a single attempt, and Breaker sheds load from an endpoint
// that keeps failing. They compose: Breaker{Retry{Timeout{svc}}} is the
// conventional stack (a fully-retried failure counts once against the
// breaker; each attempt gets its own deadline).

// Wrapper is implemented by services that decorate another service.
// Unwrap returns the decorated service, letting callers reach through a
// middleware stack (see Innermost).
type Wrapper interface {
	Unwrap() Service
}

// Innermost follows Unwrap links to the base service of a middleware
// stack; a plain service is returned unchanged.
func Innermost(svc Service) Service {
	for {
		w, ok := svc.(Wrapper)
		if !ok {
			return svc
		}
		inner := w.Unwrap()
		if inner == nil {
			return svc
		}
		svc = inner
	}
}

// Defaults for the middlewares' zero-valued knobs.
const (
	DefaultRetryAttempts   = 3
	DefaultRetryBase       = 50 * time.Millisecond
	DefaultRetryMax        = 2 * time.Second
	DefaultRetryJitter     = 0.5
	DefaultTimeout         = 10 * time.Second
	DefaultBreakerOpensAt  = 5
	DefaultBreakerCooldown = 30 * time.Second
)

// Retry re-invokes a failing service with exponential backoff and jitter
// until it succeeds or the attempt budget is spent. Safe because monotone
// deterministic services make repeated invocation idempotent up to
// subsumption. Safe for concurrent use.
type Retry struct {
	// Service is the wrapped service.
	Service Service
	// Attempts is the total attempt budget including the first try;
	// values below 1 mean DefaultRetryAttempts.
	Attempts int
	// BaseDelay is the backoff before the first retry; it doubles per
	// retry. 0 means DefaultRetryBase.
	BaseDelay time.Duration
	// MaxDelay caps the backoff; 0 means DefaultRetryMax.
	MaxDelay time.Duration
	// Jitter randomizes each delay by ±Jitter·delay. 0 means
	// DefaultRetryJitter; negative disables jitter.
	Jitter float64
	// Rng drives the jitter; nil means an unseeded private source. Seed
	// it for reproducible schedules.
	Rng *rand.Rand
	// Sleep replaces time.Sleep, for tests.
	Sleep func(time.Duration)
	// Metrics, when non-nil, mirrors the middleware's activity into
	// per-service counters: mw.retry.attempts.<svc> (every attempt),
	// mw.retry.retries.<svc> (re-attempts beyond the first) and
	// mw.retry.recovered.<svc> (invocations that failed then succeeded
	// within budget).
	Metrics *obs.Registry

	mu        sync.Mutex
	retries   int
	recovered int
}

// ServiceName implements Service.
func (r *Retry) ServiceName() string { return r.Service.ServiceName() }

// Unwrap implements Wrapper.
func (r *Retry) Unwrap() Service { return r.Service }

// Retries returns the number of re-attempts performed so far (beyond each
// invocation's first try).
func (r *Retry) Retries() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.retries
}

// Recovered returns the number of invocations that failed at least once
// but ultimately succeeded within their attempt budget.
func (r *Retry) Recovered() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.recovered
}

// Invoke implements Service with retries. A dead context stops the loop:
// backoff waits abort on cancellation, and no further attempts are made
// once the caller has given up.
func (r *Retry) Invoke(ctx context.Context, b Binding) (tree.Forest, error) {
	attempts := r.Attempts
	if attempts < 1 {
		attempts = DefaultRetryAttempts
	}
	var lastErr error
	made := 0
	for i := 0; i < attempts; i++ {
		if i > 0 {
			if err := r.backoff(ctx, i); err != nil {
				if lastErr == nil {
					lastErr = err
				}
				break
			}
		}
		if err := ctx.Err(); err != nil {
			if lastErr == nil {
				lastErr = err
			}
			break
		}
		if r.Metrics != nil {
			r.Metrics.Counter("mw.retry.attempts." + r.ServiceName()).Inc()
		}
		forest, err := r.Service.Invoke(ctx, b)
		made = i + 1
		if err == nil {
			if i > 0 {
				r.mu.Lock()
				r.recovered++
				r.mu.Unlock()
				if r.Metrics != nil {
					r.Metrics.Counter("mw.retry.recovered." + r.ServiceName()).Inc()
				}
			}
			return forest, nil
		}
		lastErr = err
		if errors.Is(err, ErrBreakerOpen) {
			break // an open breaker downstream will not heal within our budget
		}
		if cause := ctx.Err(); cause != nil && errors.Is(err, cause) {
			break // the failure is our own cancellation; retrying cannot help
		}
	}
	if made == 0 {
		// The context was dead before the service was ever reached.
		return nil, lastErr
	}
	// The service is not named here: the run loop and the transport error
	// both already carry it.
	return nil, fmt.Errorf("core: %d attempt(s) failed: %w", made, lastErr)
}

// backoff waits before the i-th retry (i ≥ 1) and counts it. The wait is
// cut short — and the context error returned — if ctx dies first.
func (r *Retry) backoff(ctx context.Context, i int) error {
	base := r.BaseDelay
	if base == 0 {
		base = DefaultRetryBase
	}
	max := r.MaxDelay
	if max == 0 {
		max = DefaultRetryMax
	}
	d := base << (i - 1)
	if d > max || d <= 0 { // d <= 0 guards shift overflow
		d = max
	}
	jitter := r.Jitter
	if jitter == 0 {
		jitter = DefaultRetryJitter
	}
	if r.Metrics != nil {
		r.Metrics.Counter("mw.retry.retries." + r.Service.ServiceName()).Inc()
	}
	r.mu.Lock()
	r.retries++
	if jitter > 0 {
		if r.Rng == nil {
			r.Rng = rand.New(rand.NewSource(rand.Int63()))
		}
		// Uniform in [1-jitter, 1+jitter] — de-synchronizes retry storms.
		d = time.Duration(float64(d) * (1 + jitter*(2*r.Rng.Float64()-1)))
	}
	sleep := r.Sleep
	r.mu.Unlock()
	if sleep != nil {
		// Test hook: a virtual clock cannot also wait on the context, so
		// honor it verbatim and report the context state afterwards.
		if d > 0 {
			sleep(d)
		}
		return ctx.Err()
	}
	if d <= 0 {
		return ctx.Err()
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// ErrTimeout is wrapped by Timeout when an invocation exceeds its limit.
var ErrTimeout = errors.New("core: service invocation timed out")

// Timeout bounds a single invocation of the wrapped service. On expiry the
// invocation is abandoned: it keeps running in the background and its
// eventual result is discarded. Use it around services whose blocking
// happens after they finish reading their binding (RemoteService marshals
// the envelope first, then waits on the network), so the abandoned
// goroutine never races the engine's subsequent tree mutations. Do not
// place a Timeout between a peer's lock gate and the engine — an abandoned
// gated invocation would re-acquire the gate and never release it;
// peer.AttachGates therefore declines to gate a stack containing a
// Timeout, and gated remote services should bound attempts with their
// HTTP client's Timeout instead.
type Timeout struct {
	// Service is the wrapped service.
	Service Service
	// Limit is the per-invocation deadline; 0 means DefaultTimeout.
	Limit time.Duration
	// Metrics, when non-nil, counts expiries in mw.timeout.hits.<svc>.
	Metrics *obs.Registry
}

// hit counts one expiry against the registry.
func (t *Timeout) hit() {
	if t.Metrics != nil {
		t.Metrics.Counter("mw.timeout.hits." + t.Service.ServiceName()).Inc()
	}
}

// ServiceName implements Service.
func (t *Timeout) ServiceName() string { return t.Service.ServiceName() }

// Unwrap implements Wrapper.
func (t *Timeout) Unwrap() Service { return t.Service }

// Invoke implements Service with a deadline. The wrapped service sees a
// context bounded by both the caller's context and the limit, so
// ctx-aware services (RemoteService, backoff waits) cancel their work the
// moment the deadline passes; a service that ignores its context is
// abandoned as before.
func (t *Timeout) Invoke(ctx context.Context, b Binding) (tree.Forest, error) {
	limit := t.Limit
	if limit == 0 {
		limit = DefaultTimeout
	}
	attemptCtx, cancel := context.WithTimeout(ctx, limit)
	type outcome struct {
		forest tree.Forest
		err    error
	}
	done := make(chan outcome, 1)
	go func() {
		defer cancel()
		forest, err := t.Service.Invoke(attemptCtx, b)
		done <- outcome{forest, err}
	}()
	select {
	case o := <-done:
		if o.err != nil && ctx.Err() == nil && errors.Is(o.err, context.DeadlineExceeded) &&
			attemptCtx.Err() != nil {
			// A ctx-aware wrapped service surfacing our own deadline:
			// normalize to the timeout error callers match on.
			t.hit()
			return nil, fmt.Errorf("core: service %q: %w after %v",
				t.Service.ServiceName(), ErrTimeout, limit)
		}
		return o.forest, o.err
	case <-attemptCtx.Done():
		if err := ctx.Err(); err != nil {
			return nil, err // the caller gave up first; not a timeout
		}
		t.hit()
		return nil, fmt.Errorf("core: service %q: %w after %v",
			t.Service.ServiceName(), ErrTimeout, limit)
	}
}

// ErrBreakerOpen is wrapped by Breaker when it short-circuits a call.
var ErrBreakerOpen = errors.New("core: circuit breaker open")

// Breaker is a circuit breaker: after OpensAt consecutive failures it
// opens and fails calls immediately (sparing a struggling endpoint), then
// after Cooldown it half-opens, letting exactly one probe through — a
// probe success closes the circuit, a probe failure re-opens it for
// another cooldown. Safe for concurrent use.
type Breaker struct {
	// Service is the wrapped service.
	Service Service
	// OpensAt is the consecutive-failure count that opens the circuit;
	// values below 1 mean DefaultBreakerOpensAt.
	OpensAt int
	// Cooldown is how long the circuit stays open before half-opening;
	// 0 means DefaultBreakerCooldown.
	Cooldown time.Duration
	// Now replaces time.Now, for tests.
	Now func() time.Time
	// Metrics, when non-nil, mirrors the breaker into the registry:
	// mw.breaker.state.<svc> is a gauge holding the last transition
	// (0 closed, 1 half-open probing, 2 open), mw.breaker.opens.<svc>
	// and mw.breaker.short_circuits.<svc> count events.
	Metrics *obs.Registry

	mu            sync.Mutex
	open          bool
	probing       bool
	consecutive   int
	openedAt      time.Time
	opens         int
	shortCircuits int
}

// ServiceName implements Service.
func (br *Breaker) ServiceName() string { return br.Service.ServiceName() }

// Unwrap implements Wrapper.
func (br *Breaker) Unwrap() Service { return br.Service }

// State reports "closed", "open" or "half-open".
func (br *Breaker) State() string {
	br.mu.Lock()
	defer br.mu.Unlock()
	switch {
	case !br.open:
		return "closed"
	case br.now().Sub(br.openedAt) >= br.cooldown():
		return "half-open"
	default:
		return "open"
	}
}

// Opens returns how many times the circuit has opened (including re-opens
// after a failed probe).
func (br *Breaker) Opens() int {
	br.mu.Lock()
	defer br.mu.Unlock()
	return br.opens
}

// ShortCircuits returns how many calls were rejected without reaching the
// wrapped service.
func (br *Breaker) ShortCircuits() int {
	br.mu.Lock()
	defer br.mu.Unlock()
	return br.shortCircuits
}

func (br *Breaker) now() time.Time {
	if br.Now != nil {
		return br.Now()
	}
	return time.Now()
}

func (br *Breaker) cooldown() time.Duration {
	if br.Cooldown == 0 {
		return DefaultBreakerCooldown
	}
	return br.Cooldown
}

// Gauge codes for mw.breaker.state.<svc>.
const (
	BreakerClosed   = 0
	BreakerHalfOpen = 1
	BreakerOpen     = 2
)

// setState records the last transition on the state gauge.
func (br *Breaker) setState(code int64) {
	if br.Metrics != nil {
		br.Metrics.Gauge("mw.breaker.state." + br.Service.ServiceName()).Set(code)
	}
}

// Invoke implements Service with circuit breaking.
func (br *Breaker) Invoke(ctx context.Context, b Binding) (tree.Forest, error) {
	br.mu.Lock()
	if br.open {
		if br.probing || br.now().Sub(br.openedAt) < br.cooldown() {
			br.shortCircuits++
			br.mu.Unlock()
			if br.Metrics != nil {
				br.Metrics.Counter("mw.breaker.short_circuits." + br.Service.ServiceName()).Inc()
			}
			return nil, ErrBreakerOpen
		}
		br.probing = true // half-open: admit this call as the single probe
		br.setState(BreakerHalfOpen)
	}
	br.mu.Unlock()

	forest, err := br.Service.Invoke(ctx, b)

	br.mu.Lock()
	defer br.mu.Unlock()
	if err != nil {
		if cause := ctx.Err(); cause != nil && errors.Is(err, cause) {
			// The caller cancelled: that says nothing about endpoint
			// health, so it neither counts toward opening nor resolves a
			// probe (the probe slot reopens for the next call).
			br.probing = false
			return nil, err
		}
		br.consecutive++
		opensAt := br.OpensAt
		if opensAt < 1 {
			opensAt = DefaultBreakerOpensAt
		}
		if br.probing || (!br.open && br.consecutive >= opensAt) {
			br.open = true
			br.probing = false
			br.openedAt = br.now()
			br.opens++
			br.setState(BreakerOpen)
			if br.Metrics != nil {
				br.Metrics.Counter("mw.breaker.opens." + br.Service.ServiceName()).Inc()
			}
		}
		return nil, err
	}
	if br.open || br.consecutive > 0 {
		br.setState(BreakerClosed)
	}
	br.open = false
	br.probing = false
	br.consecutive = 0
	return forest, nil
}

// HardenOptions configures Harden. Zero-valued fields disable the
// corresponding layer (except delays/thresholds inside an enabled layer,
// which fall back to the Default* constants).
type HardenOptions struct {
	// Attempts enables Retry when > 1 (total attempts per invocation).
	Attempts int
	// BaseDelay, MaxDelay and Jitter configure the enabled Retry.
	BaseDelay time.Duration
	MaxDelay  time.Duration
	Jitter    float64
	// Rng seeds the retry jitter (nil means unseeded).
	Rng *rand.Rand
	// Timeout enables a per-attempt deadline when > 0.
	Timeout time.Duration
	// BreakerOpensAt enables a circuit breaker when > 0 (consecutive
	// failures to open).
	BreakerOpensAt int
	// BreakerCooldown is the enabled breaker's open period.
	BreakerCooldown time.Duration
	// Metrics, when non-nil, is threaded to every enabled layer (see the
	// Metrics field on Retry, Timeout and Breaker for the metric names).
	Metrics *obs.Registry
}

// Harden wraps svc in the conventional fault-tolerance stack
// Breaker{Retry{Timeout{svc}}}, including only the layers the options
// enable. With a zero HardenOptions it returns svc unchanged.
func Harden(svc Service, o HardenOptions) Service {
	out := svc
	if o.Timeout > 0 {
		out = &Timeout{Service: out, Limit: o.Timeout, Metrics: o.Metrics}
	}
	if o.Attempts > 1 {
		out = &Retry{
			Service:   out,
			Attempts:  o.Attempts,
			BaseDelay: o.BaseDelay,
			MaxDelay:  o.MaxDelay,
			Jitter:    o.Jitter,
			Rng:       o.Rng,
			Metrics:   o.Metrics,
		}
	}
	if o.BreakerOpensAt > 0 {
		out = &Breaker{Service: out, OpensAt: o.BreakerOpensAt, Cooldown: o.BreakerCooldown,
			Metrics: o.Metrics}
	}
	return out
}
