package core

import (
	"context"
	"errors"
	"sync"
	"time"

	"axml/internal/obs"
	"axml/internal/pattern"
	"axml/internal/tree"
)

// This file implements the event-driven incremental engine
// (RunOptions.Incremental with Parallelism > 1): instead of sweeping
// every call after every change, the engine drains a worklist fed by
// document-version events through a reverse dependency index derived
// from the dependency graph of Definition 3.2. A merge into document d
// wakes exactly
//
//   - the calls discovered inside the appended forest (they never ran);
//   - the calls living in d whose service reads its input or context,
//     when the merge path actually runs through their call or parent
//     node (a merge into a sibling subtree cannot change what they see);
//   - the calls of every service reading d by name, gated by an
//     atom-local relevance check against the merge's delta;
//   - every call of every black-box service (their read sets are
//     unknown, so they conservatively subscribe to everything — the
//     same fallback relevantDocs uses).
//
// Theorem 2.1 (confluence of fair monotone rewriting) licenses the
// scheduling freedom: any order of these firings reaches the same
// fixpoint the sweeping engine reaches. Completeness — no call left
// sleeping while its read set moved — holds because every mutation a
// run performs funnels through merge, and every merge wakes every call
// whose next answer its delta could enlarge. (Out-of-band mutations —
// Touch, Restore — are documented as requiring external synchronization
// with in-flight runs, exactly as for the sweeping engine.)

// qstate tracks a call node's position in the worklist lifecycle.
type qstate uint8

const (
	qIdle    qstate = iota // not queued, not running (default)
	qQueued                // in the FIFO queue
	qRunning               // being processed by a worker
	qDirty                 // being processed AND re-signalled: requeue after
)

// eventState is the engine's worklist and reverse-index bookkeeping,
// guarded by engine.mu.
type eventState struct {
	// Reverse dependency index, fixed at run start (services are
	// immutable during a run).
	namedReaders map[string][]string // doc name -> funcs reading it by name
	readsInput   map[string]bool     // funcs whose query reads "input"
	readsContext map[string]bool     // funcs whose query reads "context"
	blackBox     []string            // funcs with unknown read sets

	// Live-call registry: every currently known call, indexed for event
	// delivery (by function) and for post-merge cleanup (by document).
	calls  map[*tree.Node]Call
	byFunc map[string]map[*tree.Node]bool
	byDoc  map[string]map[*tree.Node]bool

	queue    []*tree.Node // FIFO worklist of call nodes
	state    map[*tree.Node]qstate
	parked   map[*tree.Node]int // consecutive failures per call (Degrade)
	inflight int
	cond     *sync.Cond // on engine.mu; wakes idle workers

	enqueues  int // enqueue requests delivered
	coalesced int // requests absorbed into an already-pending entry
}

func newEventState(s *System) *eventState {
	ev := &eventState{
		namedReaders: map[string][]string{},
		readsInput:   map[string]bool{},
		readsContext: map[string]bool{},
		calls:        map[*tree.Node]Call{},
		byFunc:       map[string]map[*tree.Node]bool{},
		byDoc:        map[string]map[*tree.Node]bool{},
		state:        map[*tree.Node]qstate{},
		parked:       map[*tree.Node]int{},
	}
	for _, f := range s.funcNames {
		qs := s.declarative(f)
		if qs == nil {
			ev.blackBox = append(ev.blackBox, f)
			continue
		}
		for _, d := range qs.Query.DocNames() {
			switch d {
			case tree.Input:
				ev.readsInput[f] = true
			case tree.Context:
				ev.readsContext[f] = true
			default:
				ev.namedReaders[d] = append(ev.namedReaders[d], f)
			}
		}
	}
	return ev
}

// registerLocked adds a call to the live registry (engine.mu held).
func (ev *eventState) registerLocked(c Call) {
	if _, ok := ev.calls[c.Node]; ok {
		return
	}
	ev.calls[c.Node] = c
	if ev.byFunc[c.Node.Name] == nil {
		ev.byFunc[c.Node.Name] = map[*tree.Node]bool{}
	}
	ev.byFunc[c.Node.Name][c.Node] = true
	if ev.byDoc[c.Doc] == nil {
		ev.byDoc[c.Doc] = map[*tree.Node]bool{}
	}
	ev.byDoc[c.Doc][c.Node] = true
}

// unregisterLocked removes a pruned call from the registry (engine.mu
// held). A queued entry stays in the FIFO; the pop skips nodes that are
// no longer registered.
func (ev *eventState) unregisterLocked(n *tree.Node) {
	c, ok := ev.calls[n]
	if !ok {
		return
	}
	delete(ev.calls, n)
	delete(ev.byFunc[c.Node.Name], n)
	delete(ev.byDoc[c.Doc], n)
	delete(ev.parked, n)
}

// enqueueLocked delivers one event to a call node (engine.mu held):
// queue it if idle, mark it dirty if running, absorb the event if
// already pending. Coalescing is what keeps the worklist linear in the
// number of distinct woken calls rather than in the number of events.
func (ev *eventState) enqueueLocked(n *tree.Node) {
	ev.enqueues++
	switch ev.state[n] {
	case qQueued, qDirty:
		ev.coalesced++
	case qRunning:
		ev.state[n] = qDirty
		ev.coalesced++
	default:
		ev.state[n] = qQueued
		ev.queue = append(ev.queue, n)
		ev.cond.Signal()
	}
}

// runEventDriven is the event-driven counterpart of engine.run: seed the
// worklist with every existing call, then let the workers drain it.
// Fixpoint = drained queue with nothing in flight; fairness holds
// because an enqueued call is always eventually popped (FIFO) and a
// sterile pop costs O(1) version-vector comparison.
func (e *engine) runEventDriven(ctx context.Context) RunResult {
	ev := newEventState(e.s)
	ev.cond = sync.NewCond(&e.mu)
	e.ev = ev
	// One drain = the whole run; it plays the sweep's role in the trace
	// tree. Both IDs are fixed before any worker starts, then read-only.
	e.root = e.traceRoot(ctx)
	if e.tracer != nil {
		e.drainSC = e.root.NewChild()
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	e.mu.Lock()
	e.cancelSweep = cancel // stopLocked aborts in-flight evaluations
	e.mu.Unlock()

	e.s.engineMu.RLock()
	initial := e.s.Calls()
	e.s.engineMu.RUnlock()
	// Seed in dependency order (dependencies first) so upstream answers
	// tend to be in place before downstream calls first fire; the
	// configured scheduler breaks the remaining ties.
	e.sched.Order(initial)
	sortCallsBy(initial, e.s.incrementalSeedOrder())
	e.mu.Lock()
	for _, c := range initial {
		ev.registerLocked(c)
		ev.enqueueLocked(c.Node)
	}
	e.mu.Unlock()

	// Wake blocked workers when the caller cancels.
	watchDone := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			e.mu.Lock()
			ev.cond.Broadcast()
			e.mu.Unlock()
		case <-watchDone:
		}
	}()

	drainTS := e.tracer.Now()
	drainStart := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < e.workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e.drainWorklist(runCtx)
		}()
	}
	wg.Wait()
	close(watchDone)

	e.mu.Lock()
	if ctx.Err() != nil && e.res.Err == nil {
		e.res.Err = ctx.Err()
	}
	if !e.stop && ctx.Err() == nil && len(ev.queue) == 0 && len(ev.parked) == 0 {
		// Drained with nothing parked: every call's read set is at its
		// recorded version, so no invocation can change the system — the
		// fixpoint of Definition 2.4.
		e.res.Terminated = true
	}
	if e.tracer != nil {
		e.tracer.Emit(obs.Span{
			Kind:  "drain",
			TSUs:  drainTS,
			DurUs: int64(time.Since(drainStart) / time.Microsecond),
			Attrs: map[string]int64{
				"enqueues":  int64(ev.enqueues),
				"coalesced": int64(ev.coalesced),
				"fired":     int64(e.res.Attempts),
				"steps":     int64(e.res.Steps),
				"sterile":   int64(e.sterile),
				"parked":    int64(len(ev.parked)),
			},
		}.WithContext(e.drainSC, e.root))
	}
	e.mu.Unlock()
	return e.result()
}

// incrementalSeedOrder is fireOnceOrder over the conservative dependency
// graph: a per-function priority with dependencies first, or nil when
// the graph is cyclic (any seeding order is then as good as another).
func (s *System) incrementalSeedOrder() map[string]int {
	topo, err := s.ConservativeDependencyGraph().TopoOrder()
	if err != nil {
		return nil
	}
	order := make(map[string]int, len(topo))
	for i, v := range topo {
		if _, isFunc := s.funcs[v]; isFunc {
			order[v] = i
		}
	}
	return order
}

// drainWorklist is one worker's loop: pop, process, repeat; park on the
// condition variable while the queue is empty but work is in flight
// (the in-flight calls may enqueue more). All workers exit when the
// queue is empty with nothing in flight, on stop, or on cancellation.
func (e *engine) drainWorklist(ctx context.Context) {
	ev := e.ev
	for {
		e.mu.Lock()
		for len(ev.queue) == 0 && ev.inflight > 0 && !e.stop && ctx.Err() == nil {
			ev.cond.Wait()
		}
		if e.stop || ctx.Err() != nil || (len(ev.queue) == 0 && ev.inflight == 0) {
			ev.cond.Broadcast() // propagate the exit condition
			e.mu.Unlock()
			return
		}
		n := ev.queue[0]
		ev.queue = ev.queue[1:]
		c, live := ev.calls[n]
		if !live {
			// Unregistered (pruned) while queued; drop the stale entry.
			delete(ev.state, n)
			e.mu.Unlock()
			continue
		}
		ev.state[n] = qRunning
		ev.inflight++
		e.mu.Unlock()

		e.processEvent(ctx, c)

		e.mu.Lock()
		ev.inflight--
		switch ev.state[n] {
		case qDirty:
			// Events arrived during processing: go around again.
			ev.state[n] = qQueued
			ev.queue = append(ev.queue, n)
			ev.cond.Signal()
		case qRunning:
			delete(ev.state, n)
		}
		if ev.inflight == 0 && len(ev.queue) == 0 {
			ev.cond.Broadcast() // drained: wake everyone to exit
		}
		e.mu.Unlock()
	}
}

// processEvent is the event-driven counterpart of admit+fire for one
// popped call: version-vector gate, semi-naive evaluation under the
// read lock, merge under the write lock, then event fan-out through
// afterMergeLocked. Runs without engine.mu held.
func (e *engine) processEvent(ctx context.Context, c Call) {
	s := e.s
	s.engineMu.RLockFair()
	rv := s.relevantVersionVector(c)
	att := s.attached(c)
	s.engineMu.RUnlock()
	if !att {
		e.mu.Lock()
		e.ev.unregisterLocked(c.Node)
		delete(e.seen, c.Node)
		e.mu.Unlock()
		return
	}
	e.mu.Lock()
	if e.stop {
		e.mu.Unlock()
		return
	}
	prev, evaluated := e.seen[c.Node]
	if evaluated && vectorEqual(prev, rv) {
		e.sterile++
		e.mu.Unlock()
		return
	}
	e.seen[c.Node] = rv
	e.res.Attempts++
	e.mu.Unlock()

	since := s.sinceFor(c, prev)
	if since != nil {
		e.mu.Lock()
		e.deltaEvals++
		e.mu.Unlock()
	}

	var callSC obs.SpanContext
	if e.tracer != nil {
		callSC = e.drainSC.NewChild()
		ctx = obs.ContextWithSpan(ctx, callSC)
	}
	callTS := e.tracer.Now()
	evalStart := time.Now()
	s.engineMu.RLockFair()
	forest, err := s.evaluateSince(ctx, c, since)
	s.engineMu.RUnlock()
	evalDur := time.Since(evalStart)
	e.evalH.Observe(int64(evalDur))
	if e.tracer != nil {
		span := obs.Span{
			Kind:  "call",
			Name:  c.Node.Name,
			TSUs:  callTS,
			DurUs: int64(evalDur / time.Microsecond),
		}.WithContext(callSC, e.drainSC)
		if err != nil {
			span.Err = err.Error()
		}
		e.tracer.Emit(span)
	}
	if err != nil {
		e.recordEventFailure(ctx, c, err)
		return
	}

	mergeTS := e.tracer.Now()
	mergeStart := time.Now()
	s.engineMu.Lock()
	mergeWait := time.Since(mergeStart)
	e.mergeWaitH.Observe(int64(mergeWait))
	defer s.engineMu.Unlock()
	e.mu.Lock()
	if e.stop {
		e.mu.Unlock()
		return
	}
	delete(e.ev.parked, c.Node) // success resets the failure streak
	e.mu.Unlock()
	// A racing merge may have pruned the call node after our evaluation.
	if !s.attached(c) {
		e.mu.Lock()
		e.ev.unregisterLocked(c.Node)
		delete(e.seen, c.Node)
		e.mu.Unlock()
		return
	}
	fresh, path, changed := s.merge(c, forest)
	if !changed {
		return
	}
	e.mu.Lock()
	e.res.Steps++
	step := e.res.Steps
	if step >= e.maxSteps {
		e.stopLocked()
	}
	e.afterMergeLocked(c, fresh, path)
	e.mu.Unlock()
	if e.tracer != nil {
		e.tracer.Emit(obs.Span{
			Kind:  "merge",
			Name:  c.Node.Name,
			TSUs:  mergeTS,
			DurUs: int64(time.Since(mergeStart) / time.Microsecond),
			Attrs: map[string]int64{
				"wait_us": int64(mergeWait / time.Microsecond),
				"step":    int64(step),
			},
		}.WithContext(callSC.NewChild(), callSC))
	}
	if e.opts.MaxNodes > 0 && s.Size() > e.opts.MaxNodes {
		e.mu.Lock()
		e.stopLocked()
		e.mu.Unlock()
	}
	if e.opts.OnStep != nil {
		// Same contract as the sweeping engine: under the write lock, in
		// merge order; the callback must not re-enter the engine.
		e.opts.OnStep(step, c)
	}
}

// afterMergeLocked fans one completed merge out as events (both the
// system write lock and engine.mu held — the index update is atomic
// with the merge, so no event can fall between them). sinceV is the
// pre-merge version: exactly the fresh nodes of this merge are stamped
// above it.
func (e *engine) afterMergeLocked(c Call, fresh tree.Forest, path []*tree.Node) {
	s, ev := e.s, e.ev
	sinceV := s.docVersion[c.Doc] - 1

	// Progress unparks persistent failures: mirroring the sweep engine's
	// fruitless counter, a failing call is worth retrying as long as the
	// rest of the system still advances.
	for n, count := range ev.parked {
		if count >= e.maxErrorSweeps {
			ev.enqueueLocked(n)
		}
	}
	for n := range ev.parked {
		delete(ev.parked, n)
	}

	// Reduction pruning during this merge can only have detached calls
	// of the merged document: drop them from the registry and the gate.
	for n := range ev.byDoc[c.Doc] {
		lc := ev.calls[n]
		if !s.attached(lc) {
			ev.unregisterLocked(n)
			delete(e.seen, n)
		}
	}

	// New calls delivered inside the appended forest. Their ancestor
	// chain extends the merge path, shared structurally like in Calls().
	var attachLink *pathLink
	for _, n := range path {
		attachLink = &pathLink{node: n, up: attachLink}
	}
	var discover func(n, parent *tree.Node, up *pathLink)
	discover = func(n, parent *tree.Node, up *pathLink) {
		if n.Kind == tree.Func {
			nc := Call{Doc: c.Doc, Node: n, Parent: parent, path: up}
			ev.registerLocked(nc)
			ev.enqueueLocked(n)
		}
		link := &pathLink{node: n, up: up}
		for _, ch := range n.Children {
			discover(ch, n, link)
		}
	}
	for _, t := range fresh {
		discover(t, c.Parent, attachLink)
	}

	// Own-document readers, scoped by the merge path: a call reading its
	// context sees this merge only if its parent lies on root..attach
	// (the appended forest is inside its context subtree); one reading
	// its input only if its own node does.
	onPath := make(map[*tree.Node]bool, len(path))
	for _, n := range path {
		onPath[n] = true
	}
	for n := range ev.byDoc[c.Doc] {
		lc := ev.calls[n]
		f := lc.Node.Name
		scoped := (ev.readsContext[f] && onPath[lc.Parent]) ||
			(ev.readsInput[f] && onPath[lc.Node])
		if scoped && s.callLocalAtomsAffected(lc, c.Doc, sinceV) {
			ev.enqueueLocked(n)
		}
	}

	// Named readers of the merged document, gated by the atom-local
	// relevance of the delta (shared across the function's calls: the
	// named atoms match the same document root for all of them).
	for _, f := range ev.namedReaders[c.Doc] {
		if !s.namedAtomsAffected(f, c.Doc, sinceV) {
			continue
		}
		for n := range ev.byFunc[f] {
			ev.enqueueLocked(n)
		}
	}

	// Black boxes subscribe to everything.
	for _, f := range ev.blackBox {
		for n := range ev.byFunc[f] {
			ev.enqueueLocked(n)
		}
	}
}

// namedAtomsAffected reports whether any body atom of function f reading
// document d by name has a match with a witness in the delta above
// sinceV. It is a necessary condition without the cross-atom join: if no
// single atom gained a witnessing embedding, the conjunction cannot have
// gained an assignment that uses the delta, so the function's calls need
// not wake for this merge. (A match completed by a LATER merge is woken
// by that merge: its completing node is fresh then.)
func (s *System) namedAtomsAffected(f, d string, sinceV uint64) bool {
	qs := s.declarative(f)
	if qs == nil {
		return true
	}
	root := s.docs[d].Root
	for _, a := range qs.Query.Body {
		if a.Doc != d {
			continue
		}
		for _, m := range pattern.MatchUnderSince(a.Pattern, root, nil, sinceV) {
			if m.New {
				return true
			}
		}
	}
	return false
}

// callLocalAtomsAffected is namedAtomsAffected for the reserved atoms of
// one concrete call: its input (the call's parameter subtrees) and its
// context (the parent's subtree), both of which live in document d.
func (s *System) callLocalAtomsAffected(lc Call, d string, sinceV uint64) bool {
	qs := s.declarative(lc.Node.Name)
	if qs == nil || lc.Doc != d {
		return true
	}
	for _, a := range qs.Query.Body {
		var target *tree.Node
		switch a.Doc {
		case tree.Input:
			target = &tree.Node{Kind: tree.Label, Name: tree.Input, Children: lc.Node.Children}
		case tree.Context:
			target = lc.Parent
		default:
			continue
		}
		for _, m := range pattern.MatchUnderSince(a.Pattern, target, nil, sinceV) {
			if m.New {
				return true
			}
		}
	}
	return false
}

// recordEventFailure applies the error policy to a failed event-driven
// invocation: FailFast stops the run; Degrade re-enqueues the call for
// a retry, parking it after maxErrorSweeps consecutive failures until
// some other call makes progress.
func (e *engine) recordEventFailure(ctx context.Context, c Call, err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.stop {
		return
	}
	if cause := ctx.Err(); cause != nil && errors.Is(err, cause) {
		return
	}
	e.res.Failures++
	if e.res.Errors == nil {
		e.res.Errors = make(map[string]int)
	}
	e.res.Errors[c.Node.Name]++
	if e.res.Err == nil {
		e.res.Err = err
	}
	if e.opts.ErrorPolicy == FailFast {
		e.stopLocked()
		return
	}
	// Degrade: drop the gate entry so the retry re-evaluates in full —
	// the failure may have struck after a partial read.
	delete(e.seen, c.Node)
	count := e.ev.parked[c.Node] + 1
	e.ev.parked[c.Node] = count
	if count < e.maxErrorSweeps {
		e.ev.enqueueLocked(c.Node)
	}
}
