package core

import (
	"fmt"
	"sort"
)

// DepGraph is the dependency graph of Definition 3.2 for positive systems:
// vertices are document and function names; there is an edge (d, f) when f
// occurs in I(d), and edges (f, d) and (f, g) when d (resp. g) occurs in
// the definition I(f).
type DepGraph struct {
	// Edges maps each vertex to its successors, sorted.
	Edges map[string][]string
	// IsDoc distinguishes document vertices from function vertices.
	IsDoc map[string]bool
}

// DependencyGraph builds the dependency graph. It fails on systems with
// black-box services, whose definitions are unknown; services wrapped in
// middleware (Retry, Timeout, faults.FaultService, ...) are unwrapped to
// their innermost implementation first, so a decorated declarative
// service stays analyzable. Use ConservativeDependencyGraph for mixed
// systems.
func (s *System) DependencyGraph() (*DepGraph, error) {
	return s.dependencyGraph(false)
}

// ConservativeDependencyGraph builds the dependency graph of a system
// that may contain black-box services, over-approximating each black box
// by an edge to every document: an opaque service could read anything,
// so anything it could read must count as a dependency. The graph never
// fails to build; for fully declarative systems it coincides with
// DependencyGraph. The incremental engine uses this over-approximation
// so one opaque service degrades only its own calls to full re-firing,
// not the whole system to full sweeps.
func (s *System) ConservativeDependencyGraph() *DepGraph {
	g, err := s.dependencyGraph(true)
	if err != nil {
		// Unreachable: conservative mode has no failing path. Keep the
		// panic so a future edit cannot silently start returning nil.
		panic(err)
	}
	return g
}

func (s *System) dependencyGraph(conservative bool) (*DepGraph, error) {
	g := &DepGraph{Edges: map[string][]string{}, IsDoc: map[string]bool{}}
	add := func(from, to string) {
		g.Edges[from] = append(g.Edges[from], to)
	}
	for _, name := range s.docNames {
		g.IsDoc[name] = true
		g.Edges[name] = nil
	}
	for _, name := range s.funcNames {
		g.Edges[name] = nil
	}
	for _, name := range s.docNames {
		seen := map[string]bool{}
		for _, occ := range s.docs[name].Root.FuncNodes() {
			if !seen[occ.Node.Name] {
				seen[occ.Node.Name] = true
				add(name, occ.Node.Name)
			}
		}
	}
	for _, fname := range s.funcNames {
		qs, ok := Innermost(s.funcs[fname]).(*QueryService)
		if !ok {
			if !conservative {
				return nil, fmt.Errorf("core: dependency graph needs declarative services; %q is a black box", fname)
			}
			for _, d := range s.docNames {
				add(fname, d)
			}
			continue
		}
		for _, d := range qs.Query.DocNames() {
			if g.IsDoc[d] {
				add(fname, d)
			}
		}
		for _, gname := range queryFuncNames(qs.Query) {
			add(fname, gname)
		}
	}
	for v := range g.Edges {
		sort.Strings(g.Edges[v])
		g.Edges[v] = dedupStrings(g.Edges[v])
	}
	return g, nil
}

func dedupStrings(xs []string) []string {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || xs[i-1] != x {
			out = append(out, x)
		}
	}
	return out
}

// HasCycle reports whether the graph contains a directed cycle, together
// with one witness cycle (vertex sequence) when it does.
func (g *DepGraph) HasCycle() (bool, []string) {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[string]int{}
	var stack []string
	var cycle []string
	var dfs func(v string) bool
	dfs = func(v string) bool {
		color[v] = gray
		stack = append(stack, v)
		for _, w := range g.Edges[v] {
			switch color[w] {
			case gray:
				// Found a cycle: slice the stack from w's position.
				for i, x := range stack {
					if x == w {
						cycle = append(append([]string(nil), stack[i:]...), w)
						return true
					}
				}
			case white:
				if dfs(w) {
					return true
				}
			}
		}
		stack = stack[:len(stack)-1]
		color[v] = black
		return false
	}
	vertices := make([]string, 0, len(g.Edges))
	for v := range g.Edges {
		vertices = append(vertices, v)
	}
	sort.Strings(vertices)
	for _, v := range vertices {
		if color[v] == white && dfs(v) {
			return true, cycle
		}
	}
	return false, nil
}

// TopoOrder returns a topological order of the vertices with
// dependencies FIRST: if the graph has an edge (v, w) — v depends on w —
// then w precedes v in the order. It errors if the graph has a cycle.
// The post-order DFS emits a vertex only after everything it reaches,
// which is what both consumers rely on: fire-once semantics fires the
// calls of already-settled services first (see fireOnceOrder), and the
// incremental scheduler seeds its worklist so upstream answers are in
// place before downstream calls first fire. (The comment here used to
// promise "dependencies last", contradicting the implementation; the
// behavior was always dependencies-first and is now the contract, pinned
// by TestTopoOrderDependenciesFirst.)
func (g *DepGraph) TopoOrder() ([]string, error) {
	if cyc, witness := g.HasCycle(); cyc {
		return nil, fmt.Errorf("core: dependency graph has a cycle: %v", witness)
	}
	visited := map[string]bool{}
	var order []string
	var dfs func(v string)
	dfs = func(v string) {
		if visited[v] {
			return
		}
		visited[v] = true
		for _, w := range g.Edges[v] {
			dfs(w)
		}
		order = append(order, v)
	}
	vertices := make([]string, 0, len(g.Edges))
	for v := range g.Edges {
		vertices = append(vertices, v)
	}
	sort.Strings(vertices)
	for _, v := range vertices {
		dfs(v)
	}
	return order, nil
}

// IsAcyclic reports whether the system's dependency graph is acyclic.
// Acyclic systems always terminate (Section 3.2).
func (s *System) IsAcyclic() (bool, error) {
	g, err := s.DependencyGraph()
	if err != nil {
		return false, err
	}
	cyc, _ := g.HasCycle()
	return !cyc, nil
}
