package core

import (
	"reflect"
	"testing"

	"axml/internal/syntax"
	"axml/internal/tree"
)

// Pins the TopoOrder contract (dependencies FIRST): for every edge
// (v, w) — v depends on w — w precedes v. The doc comment used to claim
// the opposite order while both consumers relied on this one; this test
// keeps comment, code, and consumers from drifting apart again.
func TestTopoOrderDependenciesFirst(t *testing.T) {
	s := MustParseSystem(`
doc base = r{v{"1"},v{"2"}}
doc mid  = m{!copy}
doc top  = t{!wrap}
func copy = x{$v} :- base/r{v{$v}}
func wrap = y{$v} :- mid/m{x{$v}}
`)
	g, err := s.DependencyGraph()
	if err != nil {
		t.Fatal(err)
	}
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, v := range order {
		pos[v] = i
	}
	if len(pos) != len(g.Edges) {
		t.Fatalf("order %v misses vertices of %v", order, g.Edges)
	}
	for v, succs := range g.Edges {
		for _, w := range succs {
			if pos[w] >= pos[v] {
				t.Fatalf("edge (%s, %s) but %s at %d does not precede %s at %d (order %v)",
					v, w, w, pos[w], v, pos[v], order)
			}
		}
	}
}

// A service whose definition mentions its own function name is a
// self-loop f→f; it must surface as a cycle with the minimal witness,
// not be missed or crash the DFS.
func TestDepGraphSelfLoop(t *testing.T) {
	s := MustParseSystem(`
doc d = top{!f}
func f = again{!f} :-
`)
	g, err := s.DependencyGraph()
	if err != nil {
		t.Fatal(err)
	}
	cyc, witness := g.HasCycle()
	if !cyc {
		t.Fatal("self-loop f->f not detected")
	}
	if !reflect.DeepEqual(witness, []string{"f", "f"}) {
		t.Fatalf("witness = %v, want [f f]", witness)
	}
	if _, err := g.TopoOrder(); err == nil {
		t.Fatal("TopoOrder succeeded on a cyclic graph")
	}
	if ok, err := s.IsAcyclic(); err != nil || ok {
		t.Fatalf("IsAcyclic = %v, %v", ok, err)
	}
}

// Cycle witnesses must be deterministic: vertex scan and successor lists
// are sorted, so repeated calls (and fresh graph builds) report the same
// cycle — error messages and tests can rely on the exact witness.
func TestDepGraphCycleWitnessDeterministic(t *testing.T) {
	src := `
doc d1 = top{!close}
doc d2 = other{!close}
func close = e{a{$x},b{$z}} :- d1/top{e{a{$x},b{$y}}}, d2/other{e{a{$y},b{$z}}}
`
	var want []string
	for i := 0; i < 50; i++ {
		g, err := MustParseSystem(src).DependencyGraph()
		if err != nil {
			t.Fatal(err)
		}
		cyc, witness := g.HasCycle()
		if !cyc {
			t.Fatal("cycle not detected")
		}
		if i == 0 {
			want = witness
			continue
		}
		if !reflect.DeepEqual(witness, want) {
			t.Fatalf("witness changed on build %d: %v vs %v", i, witness, want)
		}
	}
}

// ConservativeDependencyGraph over-approximates black boxes with an edge
// to every document, leaves declarative services exact, and coincides
// with DependencyGraph on fully declarative systems (where the latter
// still refuses black boxes outright).
func TestConservativeDependencyGraph(t *testing.T) {
	s := MustParseSystem(`
doc a = r{!copy}
doc b = q{x{"1"}}
func copy = y{$v} :- b/q{x{$v}}
`)
	if err := s.AddService(ConstService("opaque", nil)); err != nil {
		t.Fatal(err)
	}
	if err := s.AddDocument(tree.NewDocument("c",
		syntax.MustParseDocument(`z{!opaque}`))); err != nil {
		t.Fatal(err)
	}

	if _, err := s.DependencyGraph(); err == nil {
		t.Fatal("exact graph built despite black box")
	}
	g := s.ConservativeDependencyGraph()
	if !reflect.DeepEqual(g.Edges["opaque"], []string{"a", "b", "c"}) {
		t.Fatalf("black box edges = %v, want every document", g.Edges["opaque"])
	}
	if !reflect.DeepEqual(g.Edges["copy"], []string{"b"}) {
		t.Fatalf("declarative edges = %v, want exact [b]", g.Edges["copy"])
	}
	if !g.IsDoc["a"] || !g.IsDoc["b"] || !g.IsDoc["c"] || g.IsDoc["copy"] || g.IsDoc["opaque"] {
		t.Fatalf("IsDoc = %v", g.IsDoc)
	}

	decl := MustParseSystem(`
doc a = r{!copy}
doc b = q{x{"1"}}
func copy = y{$v} :- b/q{x{$v}}
`)
	exact, err := decl.DependencyGraph()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(decl.ConservativeDependencyGraph(), exact) {
		t.Fatal("conservative graph diverges from exact graph on a declarative system")
	}
}
