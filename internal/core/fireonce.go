package core

import (
	"context"

	"axml/internal/tree"
)

// FireOnceResult reports a fire-once run (Section 4, "Fire-once
// semantics"): every function node is invoked at most once and receives a
// single answer.
type FireOnceResult struct {
	// Invocations counts the calls actually invoked.
	Invocations int
	// Changed counts the invocations that strictly grew the system.
	Changed int
	// Rounds counts saturation rounds (new calls appearing in results of
	// earlier calls are themselves fired once, in later rounds).
	Rounds int
	// Err is the first service error, if any.
	Err error
}

// RunFireOnce executes the fire-once semantics in place: each function
// node occurrence is invoked exactly once, including occurrences delivered
// by earlier answers, until no un-fired occurrence remains. On acyclic
// systems this coincides with the positive semantics (each call brings its
// complete answer the first time); on recursive systems it derives less —
// Example 3.2's transitive closure stops after one composition round,
// which Experiment E10 demonstrates.
//
// When the system is acyclic and positive, calls are fired in dependency
// order (callees of a document before the calls that later documents
// depend on), so each call sees the most complete state a single firing
// can see. Otherwise document/preorder order is used.
func (s *System) RunFireOnce() FireOnceResult {
	var res FireOnceResult
	order := s.fireOnceOrder()
	fired := make(map[*tree.Node]bool)
	for {
		res.Rounds++
		pending := s.pendingCalls(fired)
		if len(pending) == 0 {
			return res
		}
		sortCallsBy(pending, order)
		progressed := false
		for _, c := range pending {
			// Re-check the node is still present: reduction during this
			// round may have pruned it.
			if fired[c.Node] || !s.attached(c) {
				continue
			}
			fired[c.Node] = true
			res.Invocations++
			progressed = true
			changed, err := s.Invoke(context.Background(), c)
			if err != nil {
				res.Err = err
				return res
			}
			if changed {
				res.Changed++
			}
		}
		if !progressed {
			return res
		}
	}
}

// fireOnceOrder returns a priority index per function name, derived from
// the dependency graph when available and acyclic; otherwise nil.
func (s *System) fireOnceOrder() map[string]int {
	g, err := s.DependencyGraph()
	if err != nil {
		return nil
	}
	topo, err := g.TopoOrder()
	if err != nil {
		return nil
	}
	// TopoOrder emits dependencies first; fire those calls first.
	order := make(map[string]int, len(topo))
	for i, v := range topo {
		if !g.IsDoc[v] {
			order[v] = i
		}
	}
	return order
}

func sortCallsBy(calls []Call, order map[string]int) {
	if order == nil {
		return
	}
	// Stable insertion sort on priority; call lists are short.
	for i := 1; i < len(calls); i++ {
		for j := i; j > 0 && order[calls[j].Node.Name] < order[calls[j-1].Node.Name]; j-- {
			calls[j], calls[j-1] = calls[j-1], calls[j]
		}
	}
}

func (s *System) containsNode(doc string, node *tree.Node) bool {
	d := s.docs[doc]
	if d == nil {
		return false
	}
	found := false
	d.Root.Walk(func(n, _ *tree.Node) bool {
		if n == node {
			found = true
			return false
		}
		return true
	})
	return found
}
