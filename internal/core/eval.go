package core

import (
	"axml/internal/query"
	"axml/internal/subsume"
	"axml/internal/tree"
)

// EvalResult is the outcome of evaluating the full result [q](I) of a
// query over a system (Section 3.1, Theorem 3.1).
type EvalResult struct {
	// Answer is the accumulated query result, reduced.
	Answer tree.Forest
	// Exact is true when the underlying rewriting terminated, so Answer
	// is exactly [q](I); otherwise Answer is the (monotone) approximation
	// after exhausting the budget.
	Exact bool
	// Run reports the underlying rewriting.
	Run RunResult
}

// EvalQuery computes the full result of q over a copy of the system: it
// runs a fair rewriting (bounded by opts) and evaluates the snapshot
// semantics on the final state. Snapshot monotonicity (Proposition 3.1)
// makes the final snapshot equal to the union of all intermediate
// snapshots, so no per-step accumulation is needed. The receiver is not
// modified.
func (s *System) EvalQuery(q *query.Query, opts RunOptions) (EvalResult, error) {
	c := s.Copy()
	run := c.Run(opts)
	if run.Err != nil {
		return EvalResult{Run: run}, run.Err
	}
	ans, err := query.Snapshot(q, c.Docs())
	if err != nil {
		return EvalResult{Run: run}, err
	}
	return EvalResult{Answer: ans, Exact: run.Terminated, Run: run}, nil
}

// SnapshotQuery evaluates q on the current state without any invocation
// (the snapshot result q(I)).
func (s *System) SnapshotQuery(q *query.Query) (tree.Forest, error) {
	return query.Snapshot(q, s.Docs())
}

// QFinite reports whether [q](I) stabilizes within the given step budget:
// it runs a copy and watches the snapshot answer; if the rewriting
// terminates the system is definitely q-finite (and the forest returned is
// [q](I)). If the budget is exhausted it returns ok=false: q-finiteness is
// undecidable in general (Proposition 3.2), and exactly decidable for
// simple positive systems via package regular.
func (s *System) QFinite(q *query.Query, maxSteps int) (ans tree.Forest, ok bool, err error) {
	res, err := s.EvalQuery(q, RunOptions{MaxSteps: maxSteps})
	if err != nil {
		return nil, false, err
	}
	return res.Answer, res.Exact, nil
}

// PossibleAnswer reports whether the document α is a possible answer to q
// over this system within the given budget (Section 4): α is a possible
// answer when [α] ≡ [[q](I)]. Both sides are expanded within the budget;
// exact is false when either side failed to converge, in which case the
// verdict compares the budget-bounded approximations. answerDoc's calls
// are resolved against this system's services.
func (s *System) PossibleAnswer(q *query.Query, alpha tree.Forest, maxSteps int) (verdict, exact bool, err error) {
	want, err := s.EvalQuery(q, RunOptions{MaxSteps: maxSteps})
	if err != nil {
		return false, false, err
	}
	// Expand alpha in a sandbox system sharing this system's documents
	// and services, with each alpha tree wrapped under a fresh root.
	sandbox := s.Copy()
	wrap := tree.NewLabel("possible-answer-root")
	for _, t := range alpha {
		wrap.Children = append(wrap.Children, t.Copy())
	}
	if err := sandbox.AddDocument(tree.NewDocument("possible-answer", wrap)); err != nil {
		return false, false, err
	}
	run := sandbox.Run(RunOptions{MaxSteps: maxSteps})
	if run.Err != nil {
		return false, false, run.Err
	}
	got := tree.Forest{}
	for _, c := range sandbox.Document("possible-answer").Root.Children {
		if c.Kind != tree.Func {
			got = append(got, c)
		}
	}
	got = stripCalls(got)
	wantAns := stripCalls(want.Answer)
	return subsume.ForestEquivalent(got, wantAns), want.Exact && run.Terminated, nil
}

// stripCalls removes residual function nodes from the forest: the
// semantics [α] of a fully-expanded answer is compared on its data
// content, calls that can bring nothing new having been exhausted by the
// rewriting (or charged to the budget).
func stripCalls(f tree.Forest) tree.Forest {
	var out tree.Forest
	for _, t := range f {
		if t.Kind == tree.Func {
			continue
		}
		out = append(out, stripCallsTree(t))
	}
	return subsume.ReduceForest(out)
}

func stripCallsTree(t *tree.Node) *tree.Node {
	n := &tree.Node{Kind: t.Kind, Name: t.Name}
	for _, c := range t.Children {
		if c.Kind == tree.Func {
			continue
		}
		n.Children = append(n.Children, stripCallsTree(c))
	}
	return n
}
