package core

import (
	"context"
	"fmt"
	"testing"

	"axml/internal/syntax"
	"axml/internal/tree"
)

// flakyConst is a ConstService that fails its first failFirst invocations.
func flakyConst(name string, result tree.Forest, failFirst int) *GoService {
	calls := 0
	return &GoService{Name: name, Fn: func(context.Context, Binding) (tree.Forest, error) {
		calls++
		if calls <= failFirst {
			return nil, fmt.Errorf("%s: transient failure %d", name, calls)
		}
		return result.Copy(), nil
	}}
}

func faultySystem(t *testing.T, failFirst int) *System {
	t.Helper()
	s := NewSystem()
	if err := s.AddDocument(tree.NewDocument("d",
		syntax.MustParseDocument(`top{!flaky,!steady}`))); err != nil {
		t.Fatal(err)
	}
	if err := s.AddService(flakyConst("flaky",
		tree.Forest{syntax.MustParseDocument(`result{"x"}`)}, failFirst)); err != nil {
		t.Fatal(err)
	}
	if err := s.AddService(ConstService("steady",
		tree.Forest{syntax.MustParseDocument(`s{"y"}`)})); err != nil {
		t.Fatal(err)
	}
	return s
}

// Confluence under failures (Theorem 2.1): a degraded run that rides
// through transient errors reaches the same fixpoint as a failure-free
// run of the same system.
func TestDegradeReachesCleanFixpoint(t *testing.T) {
	clean := faultySystem(t, 0)
	if res := clean.Run(RunOptions{}); !res.Terminated || res.Err != nil {
		t.Fatalf("clean run: %+v", res)
	}

	faulty := faultySystem(t, 2)
	res := faulty.Run(RunOptions{ErrorPolicy: Degrade})
	if !res.Terminated {
		t.Fatalf("degraded run did not terminate: %+v", res)
	}
	if res.Failures != 2 || res.Errors["flaky"] != 2 {
		t.Fatalf("failures=%d errors=%v", res.Failures, res.Errors)
	}
	if res.Err == nil {
		t.Fatal("first error not recorded")
	}
	if faulty.CanonicalString() != clean.CanonicalString() {
		t.Fatalf("fixpoints differ:\n%s\nvs\n%s",
			faulty.CanonicalString(), clean.CanonicalString())
	}
}

// The zero-valued policy stays fail-fast: the first error aborts the run
// exactly as before.
func TestFailFastRemainsDefault(t *testing.T) {
	s := faultySystem(t, 1)
	res := s.Run(RunOptions{Parallelism: 1}) // "nothing else ran" needs sequential dispatch
	if res.Err == nil || res.Terminated {
		t.Fatalf("fail-fast run: %+v", res)
	}
	if res.Failures != 1 || res.Errors["flaky"] != 1 {
		t.Fatalf("failures=%d errors=%v", res.Failures, res.Errors)
	}
	// The flaky call is first in document order: nothing else ran.
	if res.Attempts != 1 || res.Steps != 0 {
		t.Fatalf("attempts=%d steps=%d", res.Attempts, res.Steps)
	}
}

// A permanently failing service must not spin the degraded loop forever:
// after MaxErrorSweeps consecutive fruitless all-error sweeps the run
// gives up, unterminated, with the error preserved.
func TestDegradeGivesUpOnPermanentFailure(t *testing.T) {
	s := NewSystem()
	if err := s.AddDocument(tree.NewDocument("d",
		syntax.MustParseDocument(`a{!dead}`))); err != nil {
		t.Fatal(err)
	}
	if err := s.AddService(&GoService{Name: "dead", Fn: func(context.Context, Binding) (tree.Forest, error) {
		return nil, fmt.Errorf("dead: permanent failure")
	}}); err != nil {
		t.Fatal(err)
	}
	res := s.Run(RunOptions{ErrorPolicy: Degrade})
	if res.Terminated {
		t.Fatalf("terminated despite permanent failure: %+v", res)
	}
	if res.Sweeps != DefaultMaxErrorSweeps {
		t.Fatalf("sweeps = %d, want %d", res.Sweeps, DefaultMaxErrorSweeps)
	}
	if res.Failures != DefaultMaxErrorSweeps || res.Err == nil {
		t.Fatalf("failures=%d err=%v", res.Failures, res.Err)
	}
}

// The version-gate map must not retain entries for nodes that reduction
// pruned (they can never be invoked again).
func TestPurgeSeenDropsDetachedNodes(t *testing.T) {
	kept := tree.NewFunc("f")
	pruned := tree.NewFunc("g")
	seen := map[*tree.Node][]uint64{kept: {1}, pruned: {2}}
	purgeSeen(seen, []Call{{Node: kept}})
	if len(seen) != 1 {
		t.Fatalf("seen = %d entries", len(seen))
	}
	if _, ok := seen[kept]; !ok {
		t.Fatal("live entry purged")
	}
	if _, ok := seen[pruned]; ok {
		t.Fatal("detached entry retained")
	}
}

// End to end: a call node whose subtree is pruned by a later, subsuming
// answer disappears from the gate map at the next sweep boundary while the
// run still reaches the right fixpoint.
func TestRunSurvivesPrunedCallNodes(t *testing.T) {
	// small's answer box{leaf} is subsumed by big's box{leaf,extra{"z"}}:
	// once big fires, reduction prunes small's whole result subtree —
	// including any call nodes an answer might carry.
	s := MustParseSystem(`
doc d = top{!small,!big}
func small = box{leaf} :-
func big = box{leaf,extra{"z"}} :-
`)
	res := s.Run(RunOptions{})
	if !res.Terminated {
		t.Fatalf("run: %+v", res)
	}
	want := syntax.MustParseDocument(`top{!small,!big,box{leaf,extra{"z"}}}`)
	if !tree.Isomorphic(s.Document("d").Root, want) {
		t.Fatalf("doc = %s", s.Document("d").Root.CanonicalString())
	}
}
