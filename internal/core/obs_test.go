package core

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"axml/internal/obs"
	"axml/internal/syntax"
	"axml/internal/tree"
)

// statsSystem is a small fan-out workload: n independent calls to one
// service, all live in the first sweep.
func statsSystem(t *testing.T, n int, svc Service) *System {
	t.Helper()
	s := NewSystem()
	doc := `top{`
	for i := 0; i < n; i++ {
		if i > 0 {
			doc += ","
		}
		doc += fmt.Sprintf(`slot%d{!answer}`, i)
	}
	doc += `}`
	if err := s.AddDocument(tree.NewDocument("d", syntax.MustParseDocument(doc))); err != nil {
		t.Fatal(err)
	}
	if err := s.AddService(svc); err != nil {
		t.Fatal(err)
	}
	return s
}

func constAnswer(name string) Service {
	return ConstService(name, tree.Forest{syntax.MustParseDocument(`r{"ok"}`)})
}

// Every run must carry its own stats — the engine collects them
// unconditionally, not only when a registry is attached.
func TestRunStatsPopulated(t *testing.T) {
	s := statsSystem(t, 8, constAnswer("answer"))
	res := s.Run(RunOptions{Parallelism: 4})
	if res.Err != nil || !res.Terminated {
		t.Fatalf("run: %+v", res)
	}
	st := res.Stats
	if st.CallsFired != res.Attempts || st.CallsFired == 0 {
		t.Fatalf("CallsFired=%d Attempts=%d", st.CallsFired, res.Attempts)
	}
	if st.Eval.Count != int64(res.Attempts) {
		t.Fatalf("Eval.Count=%d, want %d (one per fired call)", st.Eval.Count, res.Attempts)
	}
	if st.SlotWait.Count != int64(res.Attempts) {
		t.Fatalf("SlotWait.Count=%d, want %d on the parallel path", st.SlotWait.Count, res.Attempts)
	}
	if st.MergeWait.Count < int64(res.Steps) {
		t.Fatalf("MergeWait.Count=%d < steps %d", st.MergeWait.Count, res.Steps)
	}
	if st.Eval.Max < st.Eval.Min || st.Eval.P50 == 0 {
		t.Fatalf("eval histogram malformed: %+v", st.Eval)
	}

	// The sequential path never queues for a pool slot.
	seq := statsSystem(t, 8, constAnswer("answer"))
	sres := seq.Run(RunOptions{Parallelism: 1})
	if sres.Stats.SlotWait.Count != 0 {
		t.Fatalf("sequential SlotWait.Count=%d, want 0", sres.Stats.SlotWait.Count)
	}
	if sres.Stats.CallsSterile != res.Stats.CallsSterile {
		t.Fatalf("sterile drift: %d vs %d", sres.Stats.CallsSterile, res.Stats.CallsSterile)
	}
}

// A shared registry accumulates across runs: counters add, histograms
// merge — the process-wide view next to per-run Stats.
func TestRunMetricsAccumulate(t *testing.T) {
	reg := obs.NewRegistry()
	var attempts int
	for i := 0; i < 3; i++ {
		s := statsSystem(t, 4, constAnswer("answer"))
		res := s.Run(RunOptions{Parallelism: 2, Metrics: reg})
		if res.Err != nil || !res.Terminated {
			t.Fatalf("run %d: %+v", i, res)
		}
		attempts += res.Attempts
	}
	if got := reg.Counter("engine.runs").Value(); got != 3 {
		t.Fatalf("engine.runs=%d, want 3", got)
	}
	if got := reg.Counter("engine.runs.terminated").Value(); got != 3 {
		t.Fatalf("engine.runs.terminated=%d, want 3", got)
	}
	if got := reg.Counter("engine.calls.fired").Value(); got != int64(attempts) {
		t.Fatalf("engine.calls.fired=%d, want %d", got, attempts)
	}
	if got := reg.Histogram("engine.eval_ns").Snapshot().Count; got != int64(attempts) {
		t.Fatalf("engine.eval_ns count=%d, want %d", got, attempts)
	}
	if got := reg.Gauge("engine.parallelism").Value(); got != 2 {
		t.Fatalf("engine.parallelism=%d, want 2", got)
	}
}

// The tracer's span stream must reconstruct the run: one sweep span per
// sweep, one call span per attempt, one merge span per step.
func TestRunTracerSpans(t *testing.T) {
	var buf bytes.Buffer
	tr := obs.NewTracer(&buf)
	s := statsSystem(t, 6, constAnswer("answer"))
	res := s.Run(RunOptions{Parallelism: 3, Tracer: tr})
	if res.Err != nil || !res.Terminated {
		t.Fatalf("run: %+v", res)
	}
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var span obs.Span
		if err := json.Unmarshal(sc.Bytes(), &span); err != nil {
			t.Fatalf("bad span line %q: %v", sc.Text(), err)
		}
		counts[span.Kind]++
		if span.Kind == "call" && span.Name != "answer" {
			t.Fatalf("call span names %q", span.Name)
		}
	}
	if counts["sweep"] != res.Sweeps {
		t.Fatalf("sweep spans=%d, want %d", counts["sweep"], res.Sweeps)
	}
	if counts["call"] != res.Attempts {
		t.Fatalf("call spans=%d, want %d", counts["call"], res.Attempts)
	}
	if counts["merge"] != res.Steps {
		t.Fatalf("merge spans=%d, want %d", counts["merge"], res.Steps)
	}
}

// Satellite regression: a RunResult returned from a Degrade run with
// Parallelism > 1 must be fully detached from engine state — its Errors
// map is a clone, safe to mutate even while late workers from the
// stopped sweep are still draining. Run under -race.
func TestDegradeParallelResultDetached(t *testing.T) {
	for iter := 0; iter < 10; iter++ {
		s := NewSystem()
		doc := `top{`
		for i := 0; i < 12; i++ {
			if i > 0 {
				doc += ","
			}
			doc += fmt.Sprintf(`slot%d{!slow}`, i)
		}
		doc += `,fast{!quick}}`
		if err := s.AddDocument(tree.NewDocument("d", syntax.MustParseDocument(doc))); err != nil {
			t.Fatal(err)
		}
		// slow fails after a delay, so when MaxSteps stops the run early
		// there are still stragglers heading for recordFailure.
		slow := &GoService{Name: "slow", Fn: func(ctx context.Context, _ Binding) (tree.Forest, error) {
			select {
			case <-time.After(time.Millisecond):
			case <-ctx.Done():
			}
			return nil, fmt.Errorf("slow: always fails")
		}}
		if err := s.AddService(slow); err != nil {
			t.Fatal(err)
		}
		if err := s.AddService(constAnswer("quick")); err != nil {
			t.Fatal(err)
		}
		res := s.Run(RunOptions{ErrorPolicy: Degrade, Parallelism: 8, MaxSteps: 1})
		// Mutating the returned map must not race with draining workers.
		if res.Errors == nil {
			res.Errors = map[string]int{}
		}
		res.Errors["mutated-by-caller"] = iter
		res.Failures++
	}
}
