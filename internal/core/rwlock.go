package core

import (
	"sync"
	"sync/atomic"
)

// rwLock is the reader-preference read/write lock behind the version
// funnel. It differs from sync.RWMutex in exactly one way: RLock waits
// only while a writer is ACTIVE, never while writers are merely queued.
//
// Why not sync.RWMutex? Its writer-preference semantics serialize the
// parallel engine. Evaluations hold the read side for a whole service
// invocation (milliseconds of network wait in the paper's setting);
// merges take the write side for microseconds. Under sync.RWMutex a
// queued merge blocks every new RLock, so the steady state degenerates
// to: one evaluation in flight, every other worker parked behind the
// writer queue, one merge plus one admission per service latency — the
// pool runs at parallelism 1 no matter its size. With reader preference
// the evaluations overlap freely and merges drain in bursts between
// them.
//
// Reader preference risks writer starvation in general, but the engine
// bounds it structurally: only engines take the read side, each read
// hold spans a single evaluation, and a sweep admits a finite snapshot
// of calls. A queued merge may wait while the evaluation stream flows
// over it, but the stream ends with the sweep (and every sweep ends:
// its call list is fixed at sweep start), at which point readers drain
// to zero and all queued merges land before the sweep barrier releases.
//
// The event-driven engine has no sweep barrier — its evaluation stream
// is continuous — so its read side must not starve merges: it acquires
// through RLockFair, which also waits out QUEUED writers. The two read
// disciplines share one lock safely; fairness is a property of the
// acquisition, not the lock state.
type rwLock struct {
	mu      sync.Mutex
	cond    *sync.Cond // lazily bound to mu; access only with mu held
	readers int
	writer  bool
	queued  int // writers waiting in Lock; blocks RLockFair only

	// Contention counters: acquisitions that had to wait. Always on —
	// they cost one uncontended atomic add on the slow path only — and
	// read by the engine's RunResult.Stats and the obs registry. rWaits
	// counts RLocks that found a writer active; wWaits counts Locks that
	// found readers or a writer in place. Monotone over the lock's life;
	// consumers take deltas.
	rWaits atomic.Uint64
	wWaits atomic.Uint64
}

// c returns the condition variable, binding it on first use. Callers
// hold l.mu, which makes the lazy initialization race-free and keeps
// the zero rwLock usable (System values are created in several places).
func (l *rwLock) c() *sync.Cond {
	if l.cond == nil {
		l.cond = sync.NewCond(&l.mu)
	}
	return l.cond
}

// RLock acquires the read side: it waits out an active writer, then
// joins the reader population. Queued writers do not block it — that is
// the point (see the type comment).
func (l *rwLock) RLock() {
	l.mu.Lock()
	if l.writer {
		l.rWaits.Add(1)
	}
	for l.writer {
		l.c().Wait()
	}
	l.readers++
	l.mu.Unlock()
}

// RUnlock releases the read side, waking queued writers when the last
// reader leaves.
func (l *rwLock) RUnlock() {
	l.mu.Lock()
	l.readers--
	if l.readers < 0 {
		l.mu.Unlock()
		panic("core: RUnlock of unlocked rwLock")
	}
	if l.readers == 0 {
		l.c().Broadcast()
	}
	l.mu.Unlock()
}

// RLockFair acquires the read side like RLock but also waits out queued
// writers, trading the sweep engine's throughput preference for the
// bounded merge latency the event-driven engine needs: without it, the
// continuous evaluation stream starves every merge until the worklist
// happens to run dry (measured as multi-sweep-length merge waits on
// latency-bound workloads).
func (l *rwLock) RLockFair() {
	l.mu.Lock()
	if l.writer || l.queued > 0 {
		l.rWaits.Add(1)
	}
	for l.writer || l.queued > 0 {
		l.c().Wait()
	}
	l.readers++
	l.mu.Unlock()
}

// Lock acquires the write side: exclusive against readers and writers.
func (l *rwLock) Lock() {
	l.mu.Lock()
	if l.writer || l.readers > 0 {
		l.wWaits.Add(1)
	}
	l.queued++
	for l.writer || l.readers > 0 {
		l.c().Wait()
	}
	l.queued--
	l.writer = true
	l.mu.Unlock()
}

// contention returns the cumulative contended-acquisition counts.
func (l *rwLock) contention() (readerWaits, writerWaits uint64) {
	return l.rWaits.Load(), l.wWaits.Load()
}

// Unlock releases the write side, waking both queued readers and
// queued writers; the for-loops in RLock and Lock arbitrate.
func (l *rwLock) Unlock() {
	l.mu.Lock()
	if !l.writer {
		l.mu.Unlock()
		panic("core: Unlock of unlocked rwLock")
	}
	l.writer = false
	l.c().Broadcast()
	l.mu.Unlock()
}
