package core

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"axml/internal/syntax"
	"axml/internal/tree"
)

// The incremental engine — semi-naive sweeps at parallelism 1, the
// event-driven worklist above — must reach exactly the fixpoint of the
// plain sequential engine on every fixture at every parallelism level
// (Theorem 2.1 plus the delta-completeness of the baselines).
func TestIncrementalMatchesSequentialDigests(t *testing.T) {
	for name, mk := range engineFixtures() {
		t.Run(name, func(t *testing.T) {
			seq := mk()
			sres := seq.Run(RunOptions{Parallelism: 1})
			if sres.Err != nil || !sres.Terminated {
				t.Fatalf("sequential run: %+v", sres)
			}
			want := seq.CanonicalString()
			for _, par := range []int{1, 2, 4, 8} {
				s := mk()
				res := s.Run(RunOptions{Parallelism: par, Incremental: true})
				if res.Err != nil || !res.Terminated {
					t.Fatalf("incremental parallelism %d: %+v", par, res)
				}
				if got := s.CanonicalString(); got != want {
					t.Fatalf("incremental parallelism %d diverged:\n%s\nwant\n%s", par, got, want)
				}
			}
		})
	}
}

// The point of the exercise: on a fan-out workload the event-driven
// engine must fire strictly fewer calls than the sweeping engine (whose
// second sweep re-fires every call just to discover nothing moved), and
// its re-evaluations must run against deltas.
func TestIncrementalFiresFewerCalls(t *testing.T) {
	mk := func() *System {
		src := "doc edges = g{e{a{\"n0\"},b{\"n1\"}},e{a{\"n1\"},b{\"n2\"}},e{a{\"n2\"},b{\"n0\"}}}\ndoc portal = p{"
		for i := 0; i < 8; i++ {
			if i > 0 {
				src += ","
			}
			src += fmt.Sprintf(`node{name{"n%d"},!succ}`, i%3)
		}
		src += "}\nfunc succ = out{$y} :- context/node{name{$x}}, edges/g{e{a{$x},b{$y}}}\n"
		return MustParseSystem(src)
	}
	base := mk()
	bres := base.Run(RunOptions{Parallelism: 4})
	if bres.Err != nil || !bres.Terminated {
		t.Fatalf("sweep run: %+v", bres)
	}
	inc := mk()
	ires := inc.Run(RunOptions{Parallelism: 4, Incremental: true})
	if ires.Err != nil || !ires.Terminated {
		t.Fatalf("incremental run: %+v", ires)
	}
	if got, want := inc.CanonicalString(), base.CanonicalString(); got != want {
		t.Fatalf("fixpoints diverged:\n%s\nwant\n%s", got, want)
	}
	if ires.Attempts >= bres.Attempts {
		t.Fatalf("incremental fired %d calls, sweep fired %d; want strictly fewer",
			ires.Attempts, bres.Attempts)
	}
	if ires.Stats.Enqueues == 0 {
		t.Fatal("event engine reported zero enqueues")
	}
}

// Recursion through a named document (the transitive closure reads and
// writes d1) must keep re-triggering through the reverse index until the
// closure is complete, and the re-evaluations must be delta evaluations.
func TestIncrementalRecursionDeltaEvals(t *testing.T) {
	s := MustParseSystem(tcSystem)
	res := s.Run(RunOptions{Parallelism: 4, Incremental: true})
	if res.Err != nil || !res.Terminated {
		t.Fatalf("run: %+v", res)
	}
	want := MustParseSystem(tcSystem)
	want.Run(RunOptions{Parallelism: 1})
	if got := s.CanonicalString(); got != want.CanonicalString() {
		t.Fatalf("fixpoint diverged:\n%s", got)
	}
	if res.Stats.DeltaEvals == 0 {
		t.Fatal("recursive run performed no delta evaluations")
	}
}

// Semi-naive evaluation at Parallelism 1 keeps the deterministic sweep
// loop: counters are exact and the digest matches the naive engine.
func TestIncrementalSequentialSweepDeterministic(t *testing.T) {
	naive := MustParseSystem(tcSystem)
	nres := naive.Run(RunOptions{Parallelism: 1})
	inc := MustParseSystem(tcSystem)
	ires := inc.Run(RunOptions{Parallelism: 1, Incremental: true})
	if ires.Err != nil || !ires.Terminated {
		t.Fatalf("run: %+v", ires)
	}
	if inc.CanonicalString() != naive.CanonicalString() {
		t.Fatalf("digest diverged")
	}
	if ires.Sweeps != nres.Sweeps || ires.Steps != nres.Steps {
		t.Fatalf("incremental sweeps/steps = %d/%d, naive = %d/%d; the sweep policy must be preserved",
			ires.Sweeps, ires.Steps, nres.Sweeps, nres.Steps)
	}
	if ires.Stats.DeltaEvals == 0 {
		t.Fatal("sequential incremental run performed no delta evaluations")
	}
}

// Black boxes have unknown read sets: the event engine must
// conservatively re-wake them on every merge and still reach the shared
// fixpoint on a mixed declarative/black-box system.
func TestIncrementalBlackBoxConservative(t *testing.T) {
	mk := func() *System {
		s := NewSystem()
		if err := s.AddDocument(tree.NewDocument("d",
			syntax.MustParseDocument(`root{x{!f},y{!copy}}`))); err != nil {
			t.Fatal(err)
		}
		if err := s.AddService(ConstService("f",
			tree.Forest{syntax.MustParseDocument(`item{"1"}`)})); err != nil {
			t.Fatal(err)
		}
		q := syntax.MustParseQuery(`copy{$v} :- d/root{x{item{$v}}}`)
		q.Name = "copy"
		if err := s.AddQuery(q); err != nil {
			t.Fatal(err)
		}
		return s
	}
	seq := mk()
	seq.Run(RunOptions{Parallelism: 1})
	want := seq.CanonicalString()
	s := mk()
	res := s.Run(RunOptions{Parallelism: 4, Incremental: true})
	if res.Err != nil || !res.Terminated {
		t.Fatalf("run: %+v", res)
	}
	if got := s.CanonicalString(); got != want {
		t.Fatalf("mixed-system fixpoint diverged:\n%s\nwant\n%s", got, want)
	}
}

// Cancellation must stop the event-driven engine promptly, with workers
// parked on the worklist woken and the context error reported.
func TestIncrementalCancellation(t *testing.T) {
	s := NewSystem()
	if err := s.AddDocument(tree.NewDocument("d",
		syntax.MustParseDocument(`a{!slow}`))); err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{}, 1)
	if err := s.AddService(&GoService{Name: "slow",
		Fn: func(ctx context.Context, b Binding) (tree.Forest, error) {
			select {
			case started <- struct{}{}:
			default:
			}
			<-ctx.Done()
			return nil, ctx.Err()
		}}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		<-started
		cancel()
	}()
	done := make(chan RunResult, 1)
	go func() { done <- s.RunContext(ctx, RunOptions{Parallelism: 4, Incremental: true}) }()
	select {
	case res := <-done:
		if !errors.Is(res.Err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", res.Err)
		}
		if res.Terminated {
			t.Fatal("cancelled run reported terminated")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("event-driven RunContext did not return after cancel")
	}
}

// Degrade on the event engine: a transiently failing call is retried
// and the run still terminates at the full fixpoint; a permanently
// failing call parks the run into a non-terminated result, like the
// sweeping engine's fruitless-sweep cap.
func TestIncrementalDegrade(t *testing.T) {
	t.Run("transient", func(t *testing.T) {
		var calls atomic.Int64
		s := NewSystem()
		if err := s.AddDocument(tree.NewDocument("d",
			syntax.MustParseDocument(`root{a{!flaky},b{!ok}}`))); err != nil {
			t.Fatal(err)
		}
		if err := s.AddService(&GoService{Name: "flaky",
			Fn: func(ctx context.Context, b Binding) (tree.Forest, error) {
				if calls.Add(1) == 1 {
					return nil, errors.New("transient")
				}
				return tree.Forest{tree.NewLabel("answered")}, nil
			}}); err != nil {
			t.Fatal(err)
		}
		if err := s.AddService(ConstService("ok",
			tree.Forest{tree.NewLabel("fine")})); err != nil {
			t.Fatal(err)
		}
		res := s.Run(RunOptions{Parallelism: 4, Incremental: true, ErrorPolicy: Degrade})
		if !res.Terminated {
			t.Fatalf("transient failure prevented termination: %+v", res)
		}
		if res.Failures != 1 {
			t.Fatalf("failures = %d, want 1", res.Failures)
		}
		want := syntax.MustParseDocument(`root{a{!flaky,answered},b{!ok,fine}}`)
		if !tree.Isomorphic(s.Document("d").Root, want) {
			t.Fatalf("fixpoint = %s", s.Document("d").Root.CanonicalString())
		}
	})
	t.Run("permanent", func(t *testing.T) {
		s := NewSystem()
		if err := s.AddDocument(tree.NewDocument("d",
			syntax.MustParseDocument(`root{a{!broken}}`))); err != nil {
			t.Fatal(err)
		}
		if err := s.AddService(&GoService{Name: "broken",
			Fn: func(ctx context.Context, b Binding) (tree.Forest, error) {
				return nil, errors.New("permanent")
			}}); err != nil {
			t.Fatal(err)
		}
		res := s.Run(RunOptions{Parallelism: 4, Incremental: true, ErrorPolicy: Degrade})
		if res.Terminated {
			t.Fatalf("terminated despite permanent failure: %+v", res)
		}
		if res.Err == nil || res.Failures == 0 {
			t.Fatalf("failures=%d err=%v", res.Failures, res.Err)
		}
	})
}

// Satellite: purgeSeen + attached interplay when a subsuming answer
// prunes a subtree holding a live call mid-run, under parallelism and
// both engines. g's answer a{b{"1"},b{"2"},!h} subsumes the pre-existing
// sibling a{b{"1"},!h}, so reduction detaches that sibling's !h call
// while it may be queued or in flight; the run must stay race-clean and
// reach the sequential fixpoint, and the gate map must not leak the
// detached node.
func TestPrunedCallMidRunUnderParallelism(t *testing.T) {
	const src = `
doc d = root{a{b{"1"},!h},!g}
func g = a{b{"1"},b{"2"},!h} :-
func h = hit{"x"} :-
`
	seq := MustParseSystem(src)
	sres := seq.Run(RunOptions{Parallelism: 1})
	if sres.Err != nil || !sres.Terminated {
		t.Fatalf("sequential: %+v", sres)
	}
	want := seq.CanonicalString()
	for _, incremental := range []bool{false, true} {
		for _, par := range []int{2, 8} {
			name := fmt.Sprintf("incremental=%v/parallelism-%d", incremental, par)
			t.Run(name, func(t *testing.T) {
				// Repeat to give the scheduler chances to interleave the
				// pruning merge with the doomed call's firing.
				for i := 0; i < 25; i++ {
					s := MustParseSystem(src)
					res := s.Run(RunOptions{Parallelism: par, Incremental: incremental})
					if res.Err != nil || !res.Terminated {
						t.Fatalf("run %d: %+v", i, res)
					}
					if got := s.CanonicalString(); got != want {
						t.Fatalf("run %d diverged:\n%s\nwant\n%s", i, got, want)
					}
				}
			})
		}
	}
}
