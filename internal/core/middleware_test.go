package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"axml/internal/tree"
)

// scriptService fails its first failFirst invocations, then answers with a
// constant tree; block delays every answer.
type scriptService struct {
	name      string
	failFirst int
	block     time.Duration

	mu    sync.Mutex
	calls int
}

func (s *scriptService) ServiceName() string { return s.name }

func (s *scriptService) Calls() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls
}

func (s *scriptService) Invoke(context.Context, Binding) (tree.Forest, error) {
	s.mu.Lock()
	s.calls++
	n := s.calls
	s.mu.Unlock()
	if s.block > 0 {
		time.Sleep(s.block)
	}
	if n <= s.failFirst {
		return nil, fmt.Errorf("script: failure %d", n)
	}
	return tree.Forest{tree.NewLabel("ok")}, nil
}

func TestRetryUntilSuccess(t *testing.T) {
	svc := &scriptService{name: "f", failFirst: 2}
	var delays []time.Duration
	r := &Retry{
		Service:   svc,
		Attempts:  5,
		BaseDelay: 10 * time.Millisecond,
		MaxDelay:  80 * time.Millisecond,
		Jitter:    -1, // exact exponential schedule
		Sleep:     func(d time.Duration) { delays = append(delays, d) },
	}
	forest, err := r.Invoke(context.Background(), Binding{})
	if err != nil {
		t.Fatal(err)
	}
	if len(forest) != 1 || forest[0].Name != "ok" {
		t.Fatalf("forest = %v", forest)
	}
	if svc.Calls() != 3 {
		t.Fatalf("calls = %d, want 3", svc.Calls())
	}
	if r.Retries() != 2 || r.Recovered() != 1 {
		t.Fatalf("retries=%d recovered=%d", r.Retries(), r.Recovered())
	}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond}
	if len(delays) != len(want) || delays[0] != want[0] || delays[1] != want[1] {
		t.Fatalf("delays = %v, want %v", delays, want)
	}
}

func TestRetryBackoffCapped(t *testing.T) {
	svc := &scriptService{name: "f", failFirst: 100}
	var delays []time.Duration
	r := &Retry{
		Service:   svc,
		Attempts:  6,
		BaseDelay: 10 * time.Millisecond,
		MaxDelay:  25 * time.Millisecond,
		Jitter:    -1,
		Sleep:     func(d time.Duration) { delays = append(delays, d) },
	}
	_, err := r.Invoke(context.Background(), Binding{})
	if err == nil {
		t.Fatal("exhausted retry succeeded")
	}
	if svc.Calls() != 6 {
		t.Fatalf("calls = %d, want 6", svc.Calls())
	}
	want := []time.Duration{10, 20, 25, 25, 25}
	for i, d := range delays {
		if d != want[i]*time.Millisecond {
			t.Fatalf("delays = %v", delays)
		}
	}
}

func TestRetryJitterDeterministicFromSeed(t *testing.T) {
	schedule := func() []time.Duration {
		svc := &scriptService{name: "f", failFirst: 100}
		var delays []time.Duration
		r := &Retry{
			Service:   svc,
			Attempts:  4,
			BaseDelay: time.Millisecond,
			Rng:       rand.New(rand.NewSource(42)),
			Sleep:     func(d time.Duration) { delays = append(delays, d) },
		}
		r.Invoke(context.Background(), Binding{})
		return delays
	}
	a, b := schedule(), schedule()
	if len(a) != 3 || len(b) != 3 {
		t.Fatalf("schedules %v %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seeded jitter not reproducible: %v vs %v", a, b)
		}
	}
}

func TestTimeoutExpiresAndPasses(t *testing.T) {
	slow := &Timeout{Service: &scriptService{name: "f", block: 200 * time.Millisecond}, Limit: 5 * time.Millisecond}
	if _, err := slow.Invoke(context.Background(), Binding{}); !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	fast := &Timeout{Service: &scriptService{name: "f"}, Limit: time.Second}
	if _, err := fast.Invoke(context.Background(), Binding{}); err != nil {
		t.Fatal(err)
	}
}

func TestBreakerLifecycle(t *testing.T) {
	clock := time.Unix(0, 0)
	svc := &scriptService{name: "f", failFirst: 3}
	br := &Breaker{
		Service:  svc,
		OpensAt:  2,
		Cooldown: time.Minute,
		Now:      func() time.Time { return clock },
	}
	// Two consecutive failures open the circuit.
	if _, err := br.Invoke(context.Background(), Binding{}); err == nil {
		t.Fatal("failure 1 passed")
	}
	if br.State() != "closed" {
		t.Fatalf("state after 1 failure = %s", br.State())
	}
	if _, err := br.Invoke(context.Background(), Binding{}); err == nil {
		t.Fatal("failure 2 passed")
	}
	if br.State() != "open" || br.Opens() != 1 {
		t.Fatalf("state=%s opens=%d", br.State(), br.Opens())
	}
	// While open: short-circuit without touching the service.
	if _, err := br.Invoke(context.Background(), Binding{}); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open breaker err = %v", err)
	}
	if svc.Calls() != 2 || br.ShortCircuits() != 1 {
		t.Fatalf("calls=%d shortCircuits=%d", svc.Calls(), br.ShortCircuits())
	}
	// After the cooldown: half-open admits one probe; it fails (3rd
	// scripted failure) and re-opens the circuit.
	clock = clock.Add(61 * time.Second)
	if br.State() != "half-open" {
		t.Fatalf("state after cooldown = %s", br.State())
	}
	if _, err := br.Invoke(context.Background(), Binding{}); err == nil || errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("probe err = %v", err)
	}
	if br.Opens() != 2 || br.State() != "open" {
		t.Fatalf("after failed probe: opens=%d state=%s", br.Opens(), br.State())
	}
	// Next cooldown: the probe succeeds and closes the circuit.
	clock = clock.Add(61 * time.Second)
	if _, err := br.Invoke(context.Background(), Binding{}); err != nil {
		t.Fatalf("healing probe: %v", err)
	}
	if br.State() != "closed" {
		t.Fatalf("state after healing = %s", br.State())
	}
	if _, err := br.Invoke(context.Background(), Binding{}); err != nil {
		t.Fatalf("closed breaker: %v", err)
	}
}

func TestRetryGivesUpOnOpenBreaker(t *testing.T) {
	svc := &scriptService{name: "f", failFirst: 100}
	br := &Breaker{Service: svc, OpensAt: 1, Cooldown: time.Hour}
	r := &Retry{Service: br, Attempts: 5, Sleep: func(time.Duration) {}}
	_, err := r.Invoke(context.Background(), Binding{})
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("err = %v", err)
	}
	// Attempt 1 opened the breaker; attempt 2 short-circuited; the retry
	// loop then stopped instead of burning the rest of its budget.
	if svc.Calls() != 1 {
		t.Fatalf("calls = %d, want 1", svc.Calls())
	}
}

func TestHardenCompositionAndInnermost(t *testing.T) {
	svc := &scriptService{name: "f"}
	out := Harden(svc, HardenOptions{
		Attempts:       3,
		Timeout:        time.Second,
		BreakerOpensAt: 5,
	})
	br, ok := out.(*Breaker)
	if !ok {
		t.Fatalf("outermost = %T, want *Breaker", out)
	}
	r, ok := br.Unwrap().(*Retry)
	if !ok {
		t.Fatalf("middle = %T, want *Retry", br.Unwrap())
	}
	if _, ok := r.Unwrap().(*Timeout); !ok {
		t.Fatalf("inner = %T, want *Timeout", r.Unwrap())
	}
	if Innermost(out) != Service(svc) {
		t.Fatal("Innermost did not reach the base service")
	}
	if got := Harden(svc, HardenOptions{}); got != Service(svc) {
		t.Fatalf("zero options wrapped: %T", got)
	}
	if out.ServiceName() != "f" {
		t.Fatalf("name = %q", out.ServiceName())
	}
}
