package core

import (
	"context"
	"strings"
	"testing"

	"axml/internal/subsume"
	"axml/internal/syntax"
	"axml/internal/tree"
)

// tcSystem is Example 3.2: a simple positive system whose fair rewritings
// converge to the transitive closure of the relation encoded in d0.
// Tuples are encoded positionally as t{a{x}, b{y}} (the paper writes
// t{x,y}; unordered children force named positions).
const tcSystem = `
doc  d0 = r{t{a{1},b{2}},t{a{2},b{3}},t{a{3},b{4}}}
doc  d1 = r{!g,!f}
func g = t{a{$x},b{$y}} :- d0/r{t{a{$x},b{$y}}}
func f = t{a{$x},b{$y}} :- d1/r{t{a{$x},b{$z}}}, d1/r{t{a{$z},b{$y}}}
`

func wantTCPairs() map[string]bool {
	return map[string]bool{
		"1-2": true, "2-3": true, "3-4": true,
		"1-3": true, "2-4": true, "1-4": true,
	}
}

func extractPairs(t *testing.T, root *tree.Node) map[string]bool {
	t.Helper()
	pairs := map[string]bool{}
	for _, c := range root.Children {
		if c.Kind != tree.Label || c.Name != "t" {
			continue
		}
		var x, y string
		for _, ab := range c.Children {
			if len(ab.Children) != 1 {
				t.Fatalf("malformed tuple %s", c)
			}
			switch ab.Name {
			case "a":
				x = ab.Children[0].Name
			case "b":
				y = ab.Children[0].Name
			}
		}
		pairs[x+"-"+y] = true
	}
	return pairs
}

func TestExample32TransitiveClosure(t *testing.T) {
	s := MustParseSystem(tcSystem)
	res := s.Run(RunOptions{})
	if !res.Terminated {
		t.Fatalf("TC system did not terminate: %+v", res)
	}
	got := extractPairs(t, s.Document("d1").Root)
	want := wantTCPairs()
	for p := range want {
		if !got[p] {
			t.Errorf("missing pair %s", p)
		}
	}
	for p := range got {
		if !want[p] {
			t.Errorf("spurious pair %s", p)
		}
	}
}

// Theorem 2.1 (confluence): every fair rewriting of a terminating system
// ends in the same final system.
func TestTheorem21Confluence(t *testing.T) {
	base := MustParseSystem(tcSystem)
	var canon string
	schedulers := []Scheduler{RoundRobin{}, Reverse{}, NewRandom(1), NewRandom(2), NewRandom(99), NewRandom(12345)}
	for i, sched := range schedulers {
		s := base.Copy()
		res := s.Run(RunOptions{Scheduler: sched})
		if !res.Terminated {
			t.Fatalf("scheduler %d did not terminate", i)
		}
		c := s.CanonicalString()
		if i == 0 {
			canon = c
		} else if c != canon {
			t.Fatalf("scheduler %d produced a different limit:\n%s\nvs\n%s", i, c, canon)
		}
	}
}

// Example 2.1: d/a{!f} with f constantly returning a{!f} never terminates
// and grows by one a{...} layer per productive invocation.
func TestExample21InfiniteSystem(t *testing.T) {
	s := NewSystem()
	if err := s.AddDocument(tree.NewDocument("d", syntax.MustParseDocument(`a{!f}`))); err != nil {
		t.Fatal(err)
	}
	if err := s.AddService(ConstService("f", tree.Forest{syntax.MustParseDocument(`a{!f}`)})); err != nil {
		t.Fatal(err)
	}
	res := s.Run(RunOptions{MaxSteps: 5, Parallelism: 1}) // exact shape after a budget needs a fixed order
	if res.Terminated {
		t.Fatal("infinite system reported terminated")
	}
	if res.Steps != 5 {
		t.Fatalf("steps = %d", res.Steps)
	}
	// After k productive steps the document is a nest of depth k+1:
	// d/a{a{...{a{!f},!f}...},!f}.
	root := s.Document("d").Root
	if root.Depth() != 7 { // a + 5 nested a + innermost !f
		t.Fatalf("depth = %d, want 7\n%s", root.Depth(), root.Indent())
	}
	// Same simple query as the paper: f defined by "a{!f} :- ." behaves
	// identically when expressed as a positive service.
	s2 := MustParseSystem("doc d = a{!f}\nfunc f = a{!f} :- ")
	res2 := s2.Run(RunOptions{MaxSteps: 5, Parallelism: 1})
	if res2.Terminated {
		t.Fatal("positive variant reported terminated")
	}
	if s2.Document("d").Root.CanonicalString() != root.CanonicalString() {
		t.Fatalf("positive variant diverged:\n%s\nvs\n%s",
			s2.Document("d").Root.CanonicalString(), root.CanonicalString())
	}
}

// Example 3.3: d'/a{a{b},!g} with g = a{a{#X}} :- context/a{a{#X}} grows a
// new, deeper subtree per invocation (non-regular infinite semantics).
func TestExample33TreeVariableGrowth(t *testing.T) {
	s := MustParseSystem("doc d = a{a{b},!g}\nfunc g = a{a{#X}} :- context/a{a{#X}}")
	res := s.Run(RunOptions{MaxSteps: 3, Parallelism: 1}) // exact shape after a budget needs a fixed order
	if res.Terminated {
		t.Fatal("Example 3.3 system terminated")
	}
	got := s.Document("d").Root.CanonicalString()
	want := syntax.MustParseDocument(`a{a{b},a{a{b}},a{a{a{b}}},a{a{a{a{b}}}},!g}`).CanonicalString()
	if got != want {
		t.Fatalf("state after 3 steps:\n%s\nwant\n%s", got, want)
	}
}

// Section 5 nesting example: a simple system nests a binary relation on
// its a-column using context.
func TestSection5Nesting(t *testing.T) {
	s := MustParseSystem(`
doc d  = r{t{a{1},b{2}},t{a{1},b{3}},t{a{2},b{2}}}
doc d2 = r{!f}
func f = t{a{$x},!g} :- d/r{t{a{$x}}}
func g = b{$y} :- context/t{a{$x}}, d/r{t{a{$x},b{$y}}}
`)
	res := s.Run(RunOptions{})
	if !res.Terminated {
		t.Fatalf("nesting system did not terminate: %+v", res)
	}
	root := s.Document("d2").Root
	// Expect r{t{a1,!g,b2,b3}, t{a2,!g,b2}} modulo the residual calls.
	var got []string
	for _, c := range root.Children {
		if c.Kind == tree.Func {
			continue
		}
		var a string
		bs := []string{}
		for _, ch := range c.Children {
			switch {
			case ch.Name == "a":
				a = ch.Children[0].Name
			case ch.Name == "b":
				bs = append(bs, ch.Children[0].Name)
			}
		}
		got = append(got, a+":"+strings.Join(bs, "+"))
	}
	joined := strings.Join(got, " ")
	if !strings.Contains(joined, "1:2+3") && !strings.Contains(joined, "1:3+2") {
		t.Errorf("nesting for a=1 wrong: %v\n%s", got, root.Indent())
	}
	if !strings.Contains(joined, "2:2") {
		t.Errorf("nesting for a=2 wrong: %v", got)
	}
}

func TestInvokeInputBinding(t *testing.T) {
	// GetRating receives its parameter via input (jazz example, Sec 2.2).
	s := NewSystem()
	doc := syntax.MustParseDocument(`directory{cd{title{"Body and Soul"},!GetRating{"Body and Soul"}}}`)
	if err := s.AddDocument(tree.NewDocument("d", doc)); err != nil {
		t.Fatal(err)
	}
	ratings := map[string]string{"Body and Soul": "****"}
	svc := &GoService{Name: "GetRating", Fn: func(_ context.Context, b Binding) (tree.Forest, error) {
		if b.Input.Name != tree.Input {
			t.Errorf("input root label = %q", b.Input.Name)
		}
		if b.Context == nil || b.Context.Name != "cd" {
			t.Errorf("context root = %v", b.Context)
		}
		var out tree.Forest
		for _, p := range b.Input.Children {
			if r, ok := ratings[p.Name]; ok {
				out = append(out, tree.NewLabel("rating", tree.NewValue(r)))
			}
		}
		return out, nil
	}}
	if err := s.AddService(svc); err != nil {
		t.Fatal(err)
	}
	res := s.Run(RunOptions{})
	if !res.Terminated {
		t.Fatalf("run: %+v", res)
	}
	want := syntax.MustParseDocument(`directory{cd{title{"Body and Soul"},!GetRating{"Body and Soul"},rating{"****"}}}`)
	if !tree.Isomorphic(s.Document("d").Root, want) {
		t.Fatalf("got %s", s.Document("d").Root.CanonicalString())
	}
}

func TestInvokeNoChangeOnRepeat(t *testing.T) {
	s := MustParseSystem(tcSystem)
	s.Run(RunOptions{})
	// All calls exhausted: another explicit invocation changes nothing.
	for _, c := range s.Calls() {
		changed, err := s.Invoke(context.Background(), c)
		if err != nil {
			t.Fatal(err)
		}
		if changed {
			t.Fatalf("call %s changed a terminated system", c.Node.Name)
		}
	}
}

func TestInvokeErrors(t *testing.T) {
	s := NewSystem()
	if err := s.AddDocument(tree.NewDocument("d", syntax.MustParseDocument(`a{!f}`))); err != nil {
		t.Fatal(err)
	}
	occ := s.Document("d").Root.FuncNodes()[0]
	if _, err := s.Invoke(context.Background(), Call{Doc: "d", Node: occ.Node, Parent: occ.Parent}); err == nil {
		t.Fatal("undefined service accepted")
	}
	if _, err := s.Invoke(context.Background(), Call{Doc: "zzz", Node: occ.Node, Parent: occ.Parent}); err == nil {
		t.Fatal("unknown document accepted")
	}
}

func TestSystemValidation(t *testing.T) {
	s := NewSystem()
	if err := s.AddDocument(tree.NewDocument("input", tree.NewLabel("a"))); err == nil {
		t.Fatal("reserved name accepted")
	}
	if err := s.AddDocument(tree.NewDocument("d", tree.NewFunc("f"))); err == nil {
		t.Fatal("function root accepted")
	}
	if err := s.AddDocument(tree.NewDocument("d", tree.NewLabel("a"))); err != nil {
		t.Fatal(err)
	}
	if err := s.AddDocument(tree.NewDocument("d", tree.NewLabel("b"))); err == nil {
		t.Fatal("duplicate document accepted")
	}
	if err := s.AddService(ConstService("f", nil)); err != nil {
		t.Fatal(err)
	}
	if err := s.AddService(ConstService("f", nil)); err == nil {
		t.Fatal("duplicate service accepted")
	}
	// Undefined service referenced from a document.
	bad := NewSystem()
	if err := bad.AddDocument(tree.NewDocument("d", syntax.MustParseDocument(`a{!nope}`))); err != nil {
		t.Fatal(err)
	}
	if err := bad.Validate(); err == nil {
		t.Fatal("undefined call accepted by Validate")
	}
}

func TestAddDocumentReduces(t *testing.T) {
	s := NewSystem()
	if err := s.AddDocument(tree.NewDocument("d", syntax.MustParseDocument(`a{b{c,c},b{c,d,d}}`))); err != nil {
		t.Fatal(err)
	}
	if !tree.Isomorphic(s.Document("d").Root, syntax.MustParseDocument(`a{b{c,d}}`)) {
		t.Fatalf("document not reduced on add: %s", s.Document("d").Root)
	}
}

func TestCopyIsolation(t *testing.T) {
	s := MustParseSystem(tcSystem)
	c := s.Copy()
	c.Run(RunOptions{})
	if s.Document("d1").Root.Size() != MustParseSystem(tcSystem).Document("d1").Root.Size() {
		t.Fatal("running a copy mutated the original")
	}
	if s.CanonicalString() == c.CanonicalString() {
		t.Fatal("copy did not evolve independently")
	}
}

func TestIsPositiveIsSimple(t *testing.T) {
	s := MustParseSystem(tcSystem)
	if !s.IsPositive() || !s.IsSimple() {
		t.Fatal("TC system is simple positive")
	}
	s2 := MustParseSystem("doc d = a{a{b},!g}\nfunc g = a{a{#X}} :- context/a{a{#X}}")
	if !s2.IsPositive() || s2.IsSimple() {
		t.Fatal("Example 3.3 is positive but not simple")
	}
	s3 := NewSystem()
	if err := s3.AddService(ConstService("f", nil)); err != nil {
		t.Fatal(err)
	}
	if s3.IsPositive() {
		t.Fatal("black-box system reported positive")
	}
}

func TestDependencyGraphAndAcyclicity(t *testing.T) {
	s := MustParseSystem(tcSystem)
	g, err := s.DependencyGraph()
	if err != nil {
		t.Fatal(err)
	}
	// d1 -> f, d1 -> g; f -> d1 (cycle d1 <-> f); g -> d0.
	cyc, witness := g.HasCycle()
	if !cyc {
		t.Fatal("TC system should be cyclic (recursive f)")
	}
	if len(witness) < 2 {
		t.Fatalf("witness = %v", witness)
	}
	ok, err := s.IsAcyclic()
	if err != nil || ok {
		t.Fatalf("IsAcyclic = %v, %v", ok, err)
	}

	acyclic := MustParseSystem(`
doc d0 = r{t{a{1},b{2}}}
doc d1 = r{!g}
func g = t{a{$x},b{$y}} :- d0/r{t{a{$x},b{$y}}}
`)
	ok, err = acyclic.IsAcyclic()
	if err != nil || !ok {
		t.Fatalf("acyclic system: %v, %v", ok, err)
	}
	ga, _ := acyclic.DependencyGraph()
	order, err := ga.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, v := range order {
		pos[v] = i
	}
	// d1 depends on g which depends on d0: dependencies first.
	if !(pos["d0"] < pos["g"] && pos["g"] < pos["d1"]) {
		t.Fatalf("topo order %v", order)
	}

	// Black-box systems have no dependency graph.
	bb := NewSystem()
	if err := bb.AddService(ConstService("f", nil)); err != nil {
		t.Fatal(err)
	}
	if _, err := bb.DependencyGraph(); err == nil {
		t.Fatal("black-box dependency graph built")
	}
}

func TestAcyclicSystemsTerminate(t *testing.T) {
	s := MustParseSystem(`
doc base = r{v{1},v{2}}
doc mid  = m{!copy}
doc top  = t{!wrap}
func copy = x{$v} :- base/r{v{$v}}
func wrap = y{$v} :- mid/m{x{$v}}
`)
	ok, err := s.IsAcyclic()
	if err != nil || !ok {
		t.Fatalf("expected acyclic: %v %v", ok, err)
	}
	res := s.Run(RunOptions{})
	if !res.Terminated {
		t.Fatal("acyclic system did not terminate")
	}
	top := s.Document("top").Root
	want := syntax.MustParseDocument(`t{!wrap,y{"1"},y{"2"}}`)
	if !tree.Isomorphic(top, want) {
		t.Fatalf("top = %s", top.CanonicalString())
	}
}

func TestTerminatesHelper(t *testing.T) {
	s := MustParseSystem(tcSystem)
	ok, steps := s.Terminates(10000)
	if !ok || steps == 0 {
		t.Fatalf("Terminates = %v, %d", ok, steps)
	}
	inf := MustParseSystem("doc d = a{!f}\nfunc f = a{!f} :- ")
	ok, _ = inf.Terminates(20)
	if ok {
		t.Fatal("infinite system reported terminating")
	}
	// The original must be untouched by Terminates.
	if s.Document("d1").Root.Size() != MustParseSystem(tcSystem).Document("d1").Root.Size() {
		t.Fatal("Terminates mutated the receiver")
	}
}

func TestEvalQueryFullResult(t *testing.T) {
	s := MustParseSystem(tcSystem)
	q := syntax.MustParseQuery(`pair{$x,$y} :- d1/r{t{a{$x},b{$y}}}`)
	res, err := s.EvalQuery(q, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact {
		t.Fatal("terminating system should give exact results")
	}
	if len(res.Answer) != 6 {
		t.Fatalf("answer size = %d, want 6 TC pairs:\n%s", len(res.Answer), res.Answer)
	}
	// Snapshot before any call sees nothing.
	snap, err := s.SnapshotQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap) != 0 {
		t.Fatalf("snapshot should be empty, got %v", snap)
	}
}

func TestQFinite(t *testing.T) {
	s := MustParseSystem(tcSystem)
	q := syntax.MustParseQuery(`pair{$x} :- d1/r{t{a{$x}}}`)
	ans, ok, err := s.QFinite(q, 10000)
	if err != nil || !ok {
		t.Fatalf("QFinite: %v %v", ok, err)
	}
	if len(ans) != 3 {
		t.Fatalf("answers = %v", ans)
	}
	inf := MustParseSystem("doc d = a{!f}\nfunc f = a{!f} :- ")
	_, ok, err = inf.QFinite(syntax.MustParseQuery(`out :- d/a{a}`), 20)
	if err != nil || ok {
		t.Fatalf("budget-bounded QFinite on infinite system: ok=%v err=%v", ok, err)
	}
}

// Section 4: both "****" and the residual call are possible answers to the
// rating query.
func TestPossibleAnswer(t *testing.T) {
	s := NewSystem()
	doc := syntax.MustParseDocument(`directory{cd{title{"Body and Soul"},!GetRating{"Body and Soul"}}}`)
	if err := s.AddDocument(tree.NewDocument("d", doc)); err != nil {
		t.Fatal(err)
	}
	if err := s.AddService(ConstService("GetRating", tree.Forest{syntax.MustParseDocument(`rating{"****"}`)})); err != nil {
		t.Fatal(err)
	}
	q := syntax.MustParseQuery(`#R :- d/directory{cd{title{"Body and Soul"},#R}}`)
	// Wait: #R would also capture the call node itself and the title.
	// Use the rating shape directly instead.
	q = syntax.MustParseQuery(`rating{$r} :- d/directory{cd{title{"Body and Soul"},rating{$r}}}`)

	materialized := tree.Forest{syntax.MustParseDocument(`rating{"****"}`)}
	ok, exact, err := s.PossibleAnswer(q, materialized, 1000)
	if err != nil || !ok || !exact {
		t.Fatalf("materialized answer: ok=%v exact=%v err=%v", ok, exact, err)
	}
	intensional := tree.Forest{syntax.MustParseDocument(`!GetRating{"Body and Soul"}`)}
	ok, _, err = s.PossibleAnswer(q, intensional, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("intensional answer rejected")
	}
	wrong := tree.Forest{syntax.MustParseDocument(`rating{"*"}`)}
	ok, _, err = s.PossibleAnswer(q, wrong, 1000)
	if err != nil || ok {
		t.Fatalf("wrong answer accepted: %v %v", ok, err)
	}
}

// Section 4 fire-once: the recursive TC rule is not computed under the
// fire-once semantics, while acyclic systems coincide with the positive
// semantics.
func TestFireOnceSemantics(t *testing.T) {
	s := MustParseSystem(tcSystem)
	res := s.RunFireOnce()
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	pairs := extractPairs(t, s.Document("d1").Root)
	if len(pairs) >= 6 {
		t.Fatalf("fire-once computed the full TC: %v", pairs)
	}
	for _, base := range []string{"1-2", "2-3", "3-4"} {
		if !pairs[base] {
			t.Errorf("fire-once lost base pair %s", base)
		}
	}

	acyclic := MustParseSystem(`
doc d0 = r{t{a{1},b{2}}}
doc d1 = r{!g}
func g = t{a{$x},b{$y}} :- d0/r{t{a{$x},b{$y}}}
`)
	fair := acyclic.Copy()
	fair.Run(RunOptions{})
	once := acyclic.Copy()
	onceRes := once.RunFireOnce()
	if onceRes.Err != nil {
		t.Fatal(onceRes.Err)
	}
	if fair.CanonicalString() != once.CanonicalString() {
		t.Fatalf("fire-once and positive semantics differ on an acyclic system:\n%s\nvs\n%s",
			once.CanonicalString(), fair.CanonicalString())
	}
}

func TestFireOnceFiresNewCalls(t *testing.T) {
	// A call whose answer contains a new call: both fire exactly once.
	s := MustParseSystem(`
doc d0 = r{v{1}}
doc d  = top{!outer}
func outer = got{!inner} :-
func inner = w{$v} :- d0/r{v{$v}}
`)
	res := s.RunFireOnce()
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Invocations != 2 {
		t.Fatalf("invocations = %d, want 2", res.Invocations)
	}
	want := syntax.MustParseDocument(`top{!outer,got{!inner,w{"1"}}}`)
	if !tree.Isomorphic(s.Document("d").Root, want) {
		t.Fatalf("d = %s", s.Document("d").Root.CanonicalString())
	}
}

func TestRunBudgets(t *testing.T) {
	inf := MustParseSystem("doc d = a{!f}\nfunc f = a{!f} :- ")
	res := inf.Run(RunOptions{MaxNodes: 30})
	if res.Terminated {
		t.Fatal("terminated under node budget")
	}
	if inf.Size() <= 30 {
		t.Fatalf("size = %d; budget should stop just after exceeding", inf.Size())
	}
	steps := 0
	inf2 := MustParseSystem("doc d = a{!f}\nfunc f = a{!f} :- ")
	inf2.Run(RunOptions{MaxSteps: 3, OnStep: func(step int, c Call) {
		steps++
		if c.Node.Name != "f" {
			t.Errorf("unexpected call %q", c.Node.Name)
		}
	}})
	if steps != 3 {
		t.Fatalf("OnStep fired %d times", steps)
	}
}

func TestSchedulerFairnessWithinBudget(t *testing.T) {
	// Two independent growing branches: both must make progress under
	// every scheduler (fair sweeps), within a finite budget.
	sys := func() *System {
		return MustParseSystem(`
doc d = root{left{!f},right{!g}}
func f = a{!f} :-
func g = b{!g} :-
`)
	}
	for _, sched := range []Scheduler{RoundRobin{}, Reverse{}, NewRandom(7)} {
		s := sys()
		s.Run(RunOptions{Scheduler: sched, MaxSteps: 20})
		left := s.Document("d").Root.Children[0]
		right := s.Document("d").Root.Children[1]
		if left.Name != "left" {
			left, right = right, left
		}
		if left.Size() < 4 || right.Size() < 4 {
			t.Fatalf("unfair progress: left=%d right=%d", left.Size(), right.Size())
		}
	}
}

func TestReducedInvariantMaintained(t *testing.T) {
	s := MustParseSystem(tcSystem)
	s.Run(RunOptions{})
	for _, name := range s.DocNames() {
		if !subsume.IsReduced(s.Document(name).Root) {
			t.Fatalf("document %q not reduced after run", name)
		}
	}
}

func TestSourceRoundTrip(t *testing.T) {
	s := MustParseSystem(tcSystem)
	src, err := s.Source()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseSystem(src)
	if err != nil {
		t.Fatalf("re-parse of Source output failed: %v\n%s", err, src)
	}
	if back.CanonicalString() != s.CanonicalString() {
		t.Fatalf("round trip changed the system:\n%s\nvs\n%s", back.CanonicalString(), s.CanonicalString())
	}
	// Both evolve to the same fixpoint.
	s.Run(RunOptions{})
	back.Run(RunOptions{})
	if back.CanonicalString() != s.CanonicalString() {
		t.Fatal("round-tripped system diverged")
	}
	// Black-box systems cannot be serialized.
	bb := NewSystem()
	if err := bb.AddService(ConstService("f", nil)); err != nil {
		t.Fatal(err)
	}
	if _, err := bb.Source(); err == nil {
		t.Fatal("black-box system serialized")
	}
}

func TestSourceRoundTripWithIneqs(t *testing.T) {
	s := MustParseSystem(`
doc d = r{v{1},v{2}}
func f = p{$x,$y} :- d/r{v{$x},v{$y}}, $x != $y, $x != "9"
`)
	src, err := s.Source()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseSystem(src); err != nil {
		t.Fatalf("inequality rendering not re-parseable: %v\n%s", err, src)
	}
}

func TestRestoreAdoptsVirginSeedRoot(t *testing.T) {
	s := MustParseSystem(`
doc seed = guess
doc busy = zzz{x{"1"}}
`)
	incoming := tree.NewLabel("db",
		tree.NewLabel("entry", tree.NewValue("a")))
	changed, err := s.Restore("seed", incoming)
	if err != nil || !changed {
		t.Fatalf("restore onto childless seed: changed=%v err=%v", changed, err)
	}
	root := s.Document("seed").Root
	if root.Name != "db" || len(root.Children) != 1 {
		t.Fatalf("seed did not adopt incoming root: %s", root.CanonicalString())
	}
	// Idempotent: restoring the same state again reports no growth.
	if changed, err = s.Restore("seed", incoming); err != nil || changed {
		t.Fatalf("re-restore: changed=%v err=%v", changed, err)
	}
	// A root that already carries information still refuses adoption.
	if _, err = s.Restore("busy", incoming); err == nil {
		t.Fatal("incomparable non-empty roots accepted")
	}
}
