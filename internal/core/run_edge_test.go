package core

import (
	"context"
	"testing"

	"axml/internal/syntax"
	"axml/internal/tree"
)

func TestAncestorsAndAttached(t *testing.T) {
	s := MustParseSystem(`
doc d = a{b{c{!f}}}
func f = hit :-
`)
	calls := s.Calls()
	if len(calls) != 1 {
		t.Fatalf("calls = %d", len(calls))
	}
	anc := calls[0].Ancestors()
	if len(anc) != 3 || anc[0].Name != "a" || anc[2].Name != "c" {
		names := make([]string, len(anc))
		for i, n := range anc {
			names[i] = n.Name
		}
		t.Fatalf("ancestors = %v", names)
	}
	if !s.attached(calls[0]) {
		t.Fatal("fresh call not attached")
	}
	// Detach the subtree holding the call: attached must notice.
	s.Document("d").Root.Children = nil
	if s.attached(calls[0]) {
		t.Fatal("detached call reported attached")
	}
}

func TestAttachedFallbackWithoutPath(t *testing.T) {
	s := MustParseSystem(`
doc d = a{!f}
func f = hit :-
`)
	occ := s.Document("d").Root.FuncNodes()[0]
	hand := Call{Doc: "d", Node: occ.Node, Parent: occ.Parent}
	if hand.Ancestors() != nil {
		t.Fatal("hand-built call has ancestors")
	}
	if !s.attached(hand) {
		t.Fatal("fallback containsNode failed")
	}
	// Invoking a hand-built call works through findPath.
	changed, err := s.Invoke(context.Background(), hand)
	if err != nil || !changed {
		t.Fatalf("invoke: changed=%v err=%v", changed, err)
	}
	if !tree.Isomorphic(s.Document("d").Root, syntax.MustParseDocument(`a{!f,hit}`)) {
		t.Fatalf("doc = %s", s.Document("d").Root)
	}
}

func TestCallsEnumerateParamsOfCalls(t *testing.T) {
	s := MustParseSystem(`
doc d = a{!outer{b{!inner}}}
func outer = o :-
func inner = i :-
`)
	calls := s.Calls()
	if len(calls) != 2 {
		t.Fatalf("calls = %d, want outer and nested inner", len(calls))
	}
	names := map[string]string{}
	for _, c := range calls {
		names[c.Node.Name] = c.Parent.Name
	}
	if names["inner"] != "b" {
		t.Fatalf("inner parent = %q", names["inner"])
	}
}

func TestMaxSweepsOption(t *testing.T) {
	s := MustParseSystem("doc d = a{!f}\nfunc f = a{!f} :- ")
	res := s.Run(RunOptions{MaxSweeps: 3})
	if res.Terminated {
		t.Fatal("terminated")
	}
	if res.Sweeps != 3 {
		t.Fatalf("sweeps = %d", res.Sweeps)
	}
}

// The version gate: re-running a terminated system performs zero attempts
// beyond one empty confirmation sweep, and repeated Run calls stay cheap.
func TestVersionGateSkipsSterileCalls(t *testing.T) {
	s := MustParseSystem(tcSystem)
	first := s.Run(RunOptions{})
	if !first.Terminated {
		t.Fatal("did not terminate")
	}
	second := s.Run(RunOptions{})
	if !second.Terminated || second.Sweeps != 1 {
		t.Fatalf("re-run: %+v", second)
	}
	if second.Steps != 0 {
		t.Fatalf("re-run steps = %d", second.Steps)
	}
}

// Gating must not suppress productive invocations: a service reading a
// document that changes later must fire again.
func TestVersionGateReenablesOnChange(t *testing.T) {
	s := MustParseSystem(`
doc src = r{v{1}}
doc d = top{!copy,!late}
func copy = got{$x} :- src/r{v{$x}}
func late = r2{v{2}} :-
`)
	// First run: copy sees v1 only; then we grow src by hand and re-run.
	s.Run(RunOptions{})
	got := s.Document("d").Root
	if got.CanonicalHash() == (tree.Hash{}) {
		t.Fatal("sanity")
	}
	src := s.Document("src").Root
	src.Children = append(src.Children, syntax.MustParseDocument(`v{3}`))
	s.docVersion["src"]++ // external mutation: bump the version by hand
	res := s.Run(RunOptions{})
	if !res.Terminated {
		t.Fatal("did not terminate")
	}
	want := syntax.MustParseDocument(`top{!copy,!late,got{"1"},got{"3"},r2{v{"2"}}}`)
	if !tree.Isomorphic(s.Document("d").Root, want) {
		t.Fatalf("doc = %s", s.Document("d").Root.CanonicalString())
	}
}

func TestBindingAliasesLiveTrees(t *testing.T) {
	// The binding contract: services see live nodes; QueryService copies
	// on instantiation so results never alias the document.
	s := MustParseSystem(`
doc d = a{src{"x"},!f}
func f = out{#T} :- context/a{src{#T}}
`)
	res := s.Run(RunOptions{MaxSteps: 5})
	_ = res
	root := s.Document("d").Root
	var outNode, srcVal *tree.Node
	root.Walk(func(n, parent *tree.Node) bool {
		switch n.Name {
		case "out":
			outNode = n
		case "src":
			if parent == root {
				srcVal = n.Children[0]
			}
		}
		return true
	})
	if outNode == nil || srcVal == nil {
		t.Fatalf("shape: %s", root.CanonicalString())
	}
	if outNode.Children[0] == srcVal {
		t.Fatal("result aliases the source subtree")
	}
}
