package core

import (
	"context"
	"errors"
	"sync"
	"time"

	"axml/internal/obs"
	"axml/internal/tree"
)

// engine executes one RunContext: the sweep loop, the sterile-call gate
// and the firing of calls — sequentially or through a bounded worker
// pool, depending on RunOptions.Parallelism.
//
// Concurrency model. The paper defines a run as a set of independent
// monotone call firings whose results merge by least upper bound, and
// Theorem 2.1 proves the reachable fixpoint is independent of the firing
// order. That is the entire license the parallel engine needs: firings
// race, merges do not. Concretely:
//
//   - evaluations (read the live trees, call the service, possibly wait
//     on the network) run under the system's read lock, any number at a
//     time;
//   - merges (append the result forest, repair reduction, bump the
//     document version) run under the system's write lock — the version
//     funnel — one at a time;
//   - a result computed against a state that other firings have since
//     enlarged is still a sound result of the smaller state, so merging
//     it is harmless; the version gate re-examines the call on a later
//     sweep if anything it reads moved.
//
// Engine-local bookkeeping (the result counters, the seen map, the stop
// flag) lives under a separate mutex, always acquired after the system
// lock, never held across a service invocation. RunResult is only ever
// copied out through result(), under that mutex, with the Errors map
// cloned — so a caller can hand the returned value to another goroutine
// without aliasing engine state.
//
// Observability: the engine always collects its run-local stats (a few
// atomic adds and clock reads per firing) into RunResult.Stats, emits
// spans to RunOptions.Tracer and folds the run's totals into
// RunOptions.Metrics when either is set. None of it influences
// scheduling; removing the registry and tracer yields the same firing
// sequence.
type engine struct {
	s              *System
	opts           RunOptions
	sched          Scheduler
	workers        int
	maxSteps       int
	maxErrorSweeps int
	tracer         *obs.Tracer

	// root is the run's trace identity: the span context the caller put
	// in the run's context (a peer's server span, a CLI root) or a fresh
	// trace when tracing locally with none inherited. Set once before any
	// worker starts, then read-only — sweep spans are its children, call
	// spans are sweep children, merge spans are call children, and the
	// evaluation context carries the call's span so a remote invocation
	// propagates the chain across the wire.
	root obs.SpanContext
	// drainSC is the event-driven run's single drain span (incremental.go),
	// fixed before the workers start.
	drainSC obs.SpanContext

	// Run-local latency histograms, always collected (RunResult.Stats).
	evalH      *obs.Histogram
	slotWaitH  *obs.Histogram
	mergeWaitH *obs.Histogram
	// Version-funnel contention baseline at run start (delta reporting).
	lockR0, lockW0 uint64
	// Index hit/miss baseline at run start (delta reporting).
	ixHits0, ixMisses0 uint64

	mu              sync.Mutex // guards the fields below
	res             RunResult
	sterile         int // calls skipped by the version gate
	deltaEvals      int // evaluations that ran semi-naively against a delta
	seen            map[*tree.Node][]uint64
	stop            bool // budget exhausted or fail-fast: drain, then return
	cancelSweep     context.CancelFunc
	changedInSweep  bool
	failuresInSweep int
	firedInSweep    int
	sterileInSweep  int
	stepsInSweep    int

	// Event-driven mode (Incremental, Parallelism > 1); see incremental.go.
	ev *eventState
}

// vectorEqual compares two version vectors element-wise.
func vectorEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func newEngine(s *System, opts RunOptions) *engine {
	sched := opts.Scheduler
	if sched == nil {
		sched = RoundRobin{}
	}
	maxSteps := opts.MaxSteps
	if maxSteps == 0 {
		maxSteps = DefaultMaxSteps
	}
	maxErrorSweeps := opts.MaxErrorSweeps
	if maxErrorSweeps == 0 {
		maxErrorSweeps = DefaultMaxErrorSweeps
	}
	workers := opts.Parallelism
	if workers == 0 {
		workers = DefaultParallelism()
	}
	if workers < 1 {
		workers = 1
	}
	rw, ww := s.engineMu.contention()
	ih, im := s.IndexStats()
	return &engine{
		s:              s,
		opts:           opts,
		sched:          sched,
		workers:        workers,
		maxSteps:       maxSteps,
		maxErrorSweeps: maxErrorSweeps,
		tracer:         opts.Tracer,
		evalH:          &obs.Histogram{},
		slotWaitH:      &obs.Histogram{},
		mergeWaitH:     &obs.Histogram{},
		lockR0:         rw,
		lockW0:         ww,
		ixHits0:        ih,
		ixMisses0:      im,
		// seen gates provably-sterile re-attempts: a call attempted when
		// the documents its service reads had versions v̄ returns the
		// same answer as long as those versions stay v̄ (services are
		// deterministic monotone functions of what they read). Skipping
		// it satisfies the fairness condition (ii) of Definition 2.4 —
		// an invocation that would not modify the system. The recorded
		// vector doubles as the baseline for delta evaluations.
		seen: make(map[*tree.Node][]uint64),
	}
}

// traceRoot resolves the run's root span context from ctx: the inherited
// span when the caller is already traced, a fresh trace when this engine
// traces locally, the zero context (IDs suppressed) otherwise.
func (e *engine) traceRoot(ctx context.Context) obs.SpanContext {
	sc := obs.SpanFromContext(ctx)
	if !sc.Valid() && e.tracer.Enabled() {
		sc = obs.NewTrace()
	}
	return sc
}

// run is the sweep loop shared by the sequential and parallel paths.
func (e *engine) run(ctx context.Context) RunResult {
	e.root = e.traceRoot(ctx)
	fruitless := 0 // consecutive no-progress sweeps that saw errors
	for {
		if ctx.Err() != nil {
			e.mu.Lock()
			if e.res.Err == nil {
				e.res.Err = ctx.Err()
			}
			e.mu.Unlock()
			return e.result()
		}
		e.mu.Lock()
		e.res.Sweeps++
		sweepNo := e.res.Sweeps
		e.changedInSweep = false
		e.failuresInSweep = 0
		e.firedInSweep = 0
		e.sterileInSweep = 0
		e.stepsInSweep = 0
		e.mu.Unlock()
		// Snapshot the calls existing at sweep start: calls created by
		// answers during this sweep wait for the next one. This is what
		// makes every execution fair — no branch can starve another by
		// producing fresh calls faster than the sweep drains them.
		e.s.engineMu.RLock()
		pending := e.s.Calls()
		e.s.engineMu.RUnlock()
		purgeSeen(e.seen, pending)
		e.sched.Order(pending)

		sweepTS := e.tracer.Now()
		sweepStart := time.Now()
		var sweepSC obs.SpanContext
		if e.tracer != nil {
			sweepSC = e.root.NewChild()
		}

		// Each sweep gets a cancellable sub-context so a budget stop or a
		// fail-fast error aborts the in-flight evaluations instead of
		// waiting them out.
		sweepCtx, cancel := context.WithCancel(ctx)
		e.mu.Lock()
		e.cancelSweep = cancel
		e.mu.Unlock()
		if e.workers <= 1 {
			for _, c := range pending {
				if e.stopped() || sweepCtx.Err() != nil {
					break
				}
				prev, ok := e.admit(c)
				if !ok {
					continue
				}
				e.fire(sweepCtx, sweepSC, c, prev, nil, 0)
			}
		} else {
			// sem caps concurrent EVALUATIONS, not whole firings: a worker
			// returns its slot the moment its evaluation finishes, before
			// queuing for the merge lock. Holding the slot across the merge
			// wait convoys the pool — merge-waiters exhaust the slots while
			// the one live evaluation blocks them all, and the engine
			// degenerates to one admission per service latency.
			sem := make(chan struct{}, e.workers)
			var wg sync.WaitGroup
			for _, c := range pending {
				if e.stopped() || sweepCtx.Err() != nil {
					break
				}
				prev, ok := e.admit(c)
				if !ok {
					continue
				}
				slotStart := time.Now()
				sem <- struct{}{}
				slotWait := time.Since(slotStart)
				e.slotWaitH.Observe(int64(slotWait))
				wg.Add(1)
				go func(c Call, prev []uint64, slotWait time.Duration) {
					defer wg.Done()
					var once sync.Once
					release := func() { once.Do(func() { <-sem }) }
					defer release()
					e.fire(sweepCtx, sweepSC, c, prev, release, slotWait)
				}(c, prev, slotWait)
			}
			wg.Wait()
		}
		cancel()

		e.mu.Lock()
		changed := e.changedInSweep
		failures := e.failuresInSweep
		stopped := e.stop
		if e.tracer != nil {
			e.tracer.Emit(obs.Span{
				Kind:  "sweep",
				Sweep: sweepNo,
				TSUs:  sweepTS,
				DurUs: int64(time.Since(sweepStart) / time.Microsecond),
				Attrs: map[string]int64{
					"pending":  int64(len(pending)),
					"fired":    int64(e.firedInSweep),
					"sterile":  int64(e.sterileInSweep),
					"steps":    int64(e.stepsInSweep),
					"failures": int64(failures),
				},
			}.WithContext(sweepSC, e.root))
		}
		sweeps := e.res.Sweeps
		e.mu.Unlock()

		if stopped {
			return e.result()
		}
		if ctx.Err() != nil {
			e.mu.Lock()
			if e.res.Err == nil {
				e.res.Err = ctx.Err()
			}
			e.mu.Unlock()
			return e.result()
		}
		if !changed && failures == 0 {
			e.mu.Lock()
			e.res.Terminated = true
			e.mu.Unlock()
			return e.result()
		}
		if !changed {
			// Errors but no progress: retry the quarantined calls on
			// another sweep, but give up after maxErrorSweeps of these —
			// the failures look permanent.
			fruitless++
			if fruitless >= e.maxErrorSweeps {
				return e.result()
			}
		} else {
			fruitless = 0
		}
		if e.opts.MaxSweeps > 0 && sweeps >= e.opts.MaxSweeps {
			return e.result()
		}
	}
}

// result snapshots the run outcome under the engine mutex: the counters
// are copied, the Errors map is cloned (never aliased to engine state)
// and the Stats histograms and funnel-contention deltas are attached.
// Every return path of run funnels through here — the guard that makes
// handing RunResult across goroutines safe even while late workers from
// a stopped sweep are still draining through recordFailure.
func (e *engine) result() RunResult {
	e.mu.Lock()
	defer e.mu.Unlock()
	res := e.res
	if res.Errors != nil {
		errs := make(map[string]int, len(res.Errors))
		for name, n := range res.Errors {
			errs[name] = n
		}
		res.Errors = errs
	}
	rw, ww := e.s.engineMu.contention()
	ih, im := e.s.IndexStats()
	res.Stats = RunStats{
		CallsFired:   res.Attempts,
		CallsSterile: e.sterile,
		DeltaEvals:   e.deltaEvals,
		Eval:         e.evalH.Snapshot(),
		SlotWait:     e.slotWaitH.Snapshot(),
		MergeWait:    e.mergeWaitH.Snapshot(),
		ReaderWaits:  rw - e.lockR0,
		WriterWaits:  ww - e.lockW0,
		IndexHits:    ih - e.ixHits0,
		IndexMisses:  im - e.ixMisses0,
	}
	if e.ev != nil {
		res.Stats.Enqueues = e.ev.enqueues
		res.Stats.EnqueuesCoalesced = e.ev.coalesced
	}
	e.publishLocked(res)
	return res
}

// publishLocked folds the finished run into the optional registry. The
// registry accumulates across runs (and across engines sharing it), so
// counters add deltas and histograms merge the run-local snapshots.
func (e *engine) publishLocked(res RunResult) {
	reg := e.opts.Metrics
	if reg == nil {
		return
	}
	reg.Counter("engine.runs").Inc()
	reg.Counter("engine.sweeps").Add(int64(res.Sweeps))
	reg.Counter("engine.steps").Add(int64(res.Steps))
	reg.Counter("engine.calls.fired").Add(int64(res.Attempts))
	reg.Counter("engine.calls.sterile").Add(int64(res.Stats.CallsSterile))
	reg.Counter("engine.calls.failed").Add(int64(res.Failures))
	reg.Counter("engine.delta_evals").Add(int64(res.Stats.DeltaEvals))
	reg.Counter("engine.enqueues").Add(int64(res.Stats.Enqueues))
	reg.Counter("engine.enqueues.coalesced").Add(int64(res.Stats.EnqueuesCoalesced))
	reg.Counter("engine.lock.reader_waits").Add(int64(res.Stats.ReaderWaits))
	reg.Counter("engine.lock.writer_waits").Add(int64(res.Stats.WriterWaits))
	reg.Counter("engine.index.hits").Add(int64(res.Stats.IndexHits))
	reg.Counter("engine.index.misses").Add(int64(res.Stats.IndexMisses))
	reg.Histogram("engine.eval_ns").Merge(res.Stats.Eval)
	reg.Histogram("engine.slot_wait_ns").Merge(res.Stats.SlotWait)
	reg.Histogram("engine.merge_wait_ns").Merge(res.Stats.MergeWait)
	reg.Gauge("engine.parallelism").Set(int64(e.workers))
	if res.Terminated {
		reg.Counter("engine.runs.terminated").Inc()
	}
}

// admit runs the sterile-call gate for one call and, when the call is
// live, claims it for this sweep, returning the version vector recorded
// at the call's previous admission (nil for a first attempt) — the
// baseline a delta evaluation resumes from. The version read and the
// seen-map update are not atomic with respect to racing merges; the race
// is benign and one-sided — a merge landing in between leaves a stale
// vector in the map, which only makes the next sweep re-attempt a call
// it could have skipped, never skip a call it had to attempt. (And a
// stale baseline is a LOWER one, so the delta it requests is a superset
// of the true delta — over-evaluation, never a missed result.)
func (e *engine) admit(c Call) (prev []uint64, ok bool) {
	// Version gate first (O(docs read)): a sterile call skips even the
	// ancestor-chain validation.
	e.s.engineMu.RLock()
	rv := e.s.relevantVersionVector(c)
	e.s.engineMu.RUnlock()
	e.mu.Lock()
	if e.stop {
		e.mu.Unlock()
		return nil, false
	}
	if last, seen := e.seen[c.Node]; seen && vectorEqual(last, rv) {
		e.sterile++
		e.sterileInSweep++
		e.mu.Unlock()
		return nil, false
	}
	e.mu.Unlock()
	// Reduction during this sweep may have pruned the node.
	e.s.engineMu.RLock()
	att := e.s.attached(c)
	e.s.engineMu.RUnlock()
	if !att {
		return nil, false
	}
	e.mu.Lock()
	prev = e.seen[c.Node]
	e.seen[c.Node] = rv
	e.res.Attempts++
	e.firedInSweep++
	e.mu.Unlock()
	return prev, true
}

// fire evaluates one admitted call and merges its result: evaluation
// under the read lock (concurrent), merge under the write lock (the
// version funnel). prev is the version vector admit returned; under
// Incremental it becomes the delta baseline for a semi-naive
// evaluation. release, when non-nil, is called as soon as the
// evaluation is over — the expensive, capacity-limited phase — so the
// pool can start the next evaluation while this result waits its turn
// at the funnel. slotWait is how long the call queued for its pool slot
// (zero on the sequential path), reported on the call span. parent is
// the enclosing sweep's (or drain's) span context; the call span is its
// child and the evaluation context carries the call span, so a remote
// service invocation continues the trace on the other peer.
func (e *engine) fire(ctx context.Context, parent obs.SpanContext, c Call, prev []uint64, release func(), slotWait time.Duration) {
	s := e.s
	var since map[string]uint64
	if e.opts.Incremental {
		if since = s.sinceFor(c, prev); since != nil {
			e.mu.Lock()
			e.deltaEvals++
			e.mu.Unlock()
		}
	}
	var callSC obs.SpanContext
	if e.tracer != nil {
		callSC = parent.NewChild()
		ctx = obs.ContextWithSpan(ctx, callSC)
	}
	callTS := e.tracer.Now()
	evalStart := time.Now()
	s.engineMu.RLock()
	forest, err := s.evaluateSince(ctx, c, since)
	s.engineMu.RUnlock()
	evalDur := time.Since(evalStart)
	e.evalH.Observe(int64(evalDur))
	if release != nil {
		release()
	}
	if e.tracer != nil {
		span := obs.Span{
			Kind:  "call",
			Name:  c.Node.Name,
			TSUs:  callTS,
			DurUs: int64(evalDur / time.Microsecond),
			Attrs: map[string]int64{"wait_us": int64(slotWait / time.Microsecond)},
		}.WithContext(callSC, parent)
		if err != nil {
			span.Err = err.Error()
		}
		e.tracer.Emit(span)
	}
	if err != nil {
		e.recordFailure(ctx, c, err)
		return
	}
	mergeTS := e.tracer.Now()
	mergeStart := time.Now()
	s.engineMu.Lock()
	mergeWait := time.Since(mergeStart)
	e.mergeWaitH.Observe(int64(mergeWait))
	defer s.engineMu.Unlock()
	e.mu.Lock()
	if e.stop {
		e.mu.Unlock()
		return
	}
	e.mu.Unlock()
	// A racing merge may have pruned the call node after our evaluation;
	// re-validate under the write lock so detached results are dropped.
	if !s.attached(c) {
		return
	}
	if _, _, changed := s.merge(c, forest); !changed {
		return
	}
	e.mu.Lock()
	e.res.Steps++
	e.changedInSweep = true
	e.stepsInSweep++
	step := e.res.Steps
	if step >= e.maxSteps {
		e.stopLocked()
	}
	e.mu.Unlock()
	if e.tracer != nil {
		e.tracer.Emit(obs.Span{
			Kind:  "merge",
			Name:  c.Node.Name,
			TSUs:  mergeTS,
			DurUs: int64(time.Since(mergeStart) / time.Microsecond),
			Attrs: map[string]int64{
				"wait_us": int64(mergeWait / time.Microsecond),
				"step":    int64(step),
			},
		}.WithContext(callSC.NewChild(), callSC))
	}
	if e.opts.MaxNodes > 0 && s.Size() > e.opts.MaxNodes {
		e.mu.Lock()
		e.stopLocked()
		e.mu.Unlock()
	}
	if e.opts.OnStep != nil {
		// Called under the write lock: the system is quiescent for the
		// observer and steps are delivered in merge order. The callback
		// must not re-enter the engine.
		e.opts.OnStep(step, c)
	}
}

// recordFailure applies the error policy to one failed invocation.
func (e *engine) recordFailure(ctx context.Context, c Call, err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.stop {
		// The budget already stopped the run (or fail-fast tripped on an
		// earlier error); late failures from draining workers are not
		// part of the result.
		return
	}
	if cause := ctx.Err(); cause != nil && errors.Is(err, cause) {
		// The sweep was cancelled and the "failure" is our own
		// cancellation surfacing through the service — not an endpoint
		// failure. The run loop reports ctx.Err() itself.
		return
	}
	e.res.Failures++
	if e.res.Errors == nil {
		e.res.Errors = make(map[string]int)
	}
	e.res.Errors[c.Node.Name]++
	if e.res.Err == nil {
		e.res.Err = err
	}
	if e.opts.ErrorPolicy == FailFast {
		e.stopLocked()
		return
	}
	// Degrade: quarantine the call for the rest of this sweep (each call
	// runs at most once per sweep anyway) and make it eligible again
	// next sweep despite unchanged versions — the failure may have been
	// transient.
	delete(e.seen, c.Node)
	e.failuresInSweep++
}

func (e *engine) stopped() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stop
}

// stopLocked (e.mu held) halts dispatch and cancels the sweep's
// in-flight evaluations (the whole run's, in event-driven mode).
func (e *engine) stopLocked() {
	e.stop = true
	if e.cancelSweep != nil {
		e.cancelSweep()
	}
	if e.ev != nil && e.ev.cond != nil {
		// Wake workers parked on the worklist so they observe the stop.
		e.ev.cond.Broadcast()
	}
}
