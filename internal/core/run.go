package core

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"

	"axml/internal/obs"
	"axml/internal/query"
	"axml/internal/subsume"
	"axml/internal/tree"
)

// Call locates one invocable function node: the document it lives in, the
// node itself, its parent (the attachment point for results) and the
// ancestor chain, which the localized reduction in Invoke walks upward.
type Call struct {
	Doc    string
	Node   *tree.Node
	Parent *tree.Node
	// path links Parent back to the document root. Paths of sibling
	// calls share their common prefix, so enumerating all calls costs
	// O(document), not O(document · depth). It may be nil for calls
	// constructed by hand; Invoke then recomputes the chain.
	path *pathLink
}

// pathLink is one step of an immutable, structurally-shared ancestor
// chain: node's parent chain continues in up (nil at the root).
type pathLink struct {
	node *tree.Node
	up   *pathLink
}

// Ancestors materializes the chain root-first (parent of Node last), or
// nil when the call was built by hand.
func (c Call) Ancestors() []*tree.Node {
	var rev []*tree.Node
	for l := c.path; l != nil; l = l.up {
		rev = append(rev, l.node)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// Calls enumerates every function node occurrence across all documents in
// document order, preorder within each document.
func (s *System) Calls() []Call {
	var out []Call
	for _, name := range s.docNames {
		root := s.docs[name].Root
		if root.Kind == tree.Func {
			continue // excluded by AddDocument; defensive
		}
		var rec func(n *tree.Node, up *pathLink)
		rec = func(n *tree.Node, up *pathLink) {
			if n.Kind == tree.Func {
				out = append(out, Call{Doc: name, Node: n, Parent: up.node, path: up})
			}
			// Parameters of calls host calls too: keep walking below.
			link := &pathLink{node: n, up: up}
			for _, c := range n.Children {
				rec(c, link)
			}
		}
		rootLink := &pathLink{node: root}
		for _, c := range root.Children {
			rec(c, rootLink)
		}
	}
	return out
}

// Invoke performs the invocation of Section 2.2 on the given call: it
// builds the input and context documents, evaluates the service under the
// given context, appends the result forest as siblings of the call node
// and reduces the document. It reports whether the system strictly grew
// (I ≢ I', i.e. whether this was a rewriting step in the sense of
// Definition 2.4). Cancellation of ctx aborts the service evaluation (for
// services that honor it) but never leaves the document half-mutated: the
// merge is all-or-nothing after the evaluation returned.
func (s *System) Invoke(ctx context.Context, c Call) (changed bool, err error) {
	forest, err := s.evaluate(ctx, c)
	if err != nil {
		return false, err
	}
	_, _, changed = s.merge(c, forest)
	return changed, nil
}

// evaluate is the full (non-delta) evaluation of a call; see evaluateSince.
func (s *System) evaluate(ctx context.Context, c Call) (tree.Forest, error) {
	return s.evaluateSince(ctx, c, nil)
}

// evaluateSince is the read-only half of Invoke: it validates the call,
// builds the input/context binding over the live trees and evaluates the
// service. The parallel engine runs it under the system's read lock, so
// any number of evaluations proceed concurrently. A non-nil since map
// (per-document baseline versions, keyed by the names the service's
// query uses, including "input"/"context") requests a semi-naive delta
// evaluation: declarative services return only results with a witness in
// the data appended after the baseline.
func (s *System) evaluateSince(ctx context.Context, c Call, since map[string]uint64) (tree.Forest, error) {
	svc := s.funcs[c.Node.Name]
	if svc == nil {
		return nil, fmt.Errorf("core: call to undefined service %q", c.Node.Name)
	}
	if s.docs[c.Doc] == nil {
		return nil, fmt.Errorf("core: call in unknown document %q", c.Doc)
	}
	attach := c.Parent
	if attach == nil {
		// Function roots are excluded by Definition 2.1(ii); documents
		// added through AddDocument never reach this. Guard anyway.
		return nil, fmt.Errorf("core: call %q is a document root", c.Node.Name)
	}
	// Bindings alias the live trees: services read them (pattern
	// matching never mutates, and head instantiation copies every bound
	// subtree), and copying the context here would cost O(document) per
	// invocation — it is the whole document for root-level calls.
	input := &tree.Node{Kind: tree.Label, Name: tree.Input, Children: c.Node.Children}
	b := Binding{
		Input:   input,
		Context: attach,
		Docs:    s.Docs(),
		Since:   since,
		Indexes: s.bindingIndexes(c),
	}
	forest, err := svc.Invoke(ctx, b)
	if err != nil {
		return nil, fmt.Errorf("core: service %q: %w", c.Node.Name, err)
	}
	return forest, nil
}

// bindingIndexes assembles the per-document inverted indexes a call's
// evaluation may use: every system document's index plus "context"
// resolved to the call's own document (the context subtree lives there;
// the index accelerates the match exactly when the context is the whole
// document). The synthetic input root is never an indexed node, so no
// index is offered for it. Returns nil when indexing is disabled.
func (s *System) bindingIndexes(c Call) query.Indexes {
	if !s.indexing {
		return nil
	}
	ixs := make(query.Indexes, len(s.indexes)+1)
	for name, ix := range s.indexes {
		ixs[name] = ix
	}
	ixs[tree.Context] = s.indexes[c.Doc]
	return ixs
}

// merge is the mutating half of Invoke: it appends the result forest as
// siblings of the call node, repairs reduction locally and bumps the
// document version, reporting whether the system strictly grew. The
// parallel engine serializes merges under the system's write lock — the
// "version funnel" through which every result lands. Merging is a least
// upper bound, so the order in which racing results arrive does not
// affect the reachable fixpoint (Theorem 2.1).
//
// On growth it returns the appended trees (stamped with the post-bump
// document version, so later delta evaluations see them as new) and the
// ancestor path root..attach, which the incremental scheduler uses to
// discover new calls and scope its re-enqueues.
func (s *System) merge(c Call, forest tree.Forest) (fresh tree.Forest, path []*tree.Node, changed bool) {
	attach := c.Parent
	doc := s.docs[c.Doc]
	ix := s.indexes[c.Doc] // nil when indexing is disabled; methods no-op
	// Results subsumed by existing siblings cannot change the document.
	fresh = reduceForestAgainst(attach, subsume.ReduceForest(forest))
	if len(fresh) == 0 {
		return nil, nil, false
	}
	// Localized append-and-reduce. Documents are maintained reduced (no
	// subtree subsumed by a sibling, recursively), and under that
	// invariant appending non-redundant data ALWAYS strictly grows the
	// document: a homomorphism from the grown document back into the old
	// one would have to send the attach path onto a diverging sibling
	// path, forcing a sibling subsumption that reducedness forbids. So
	// no whole-document equivalence check is needed, and reduction only
	// has to be repaired locally:
	//   - at the attach node, existing children newly subsumed by a
	//     fresh tree are pruned (fresh trees are already reduced and
	//     mutually irredundant, and none is subsumed by an existing
	//     child);
	//   - on the ancestor path, the grown child may newly subsume its
	//     siblings (it can never become subsumed: it only gained
	//     information). Everything else is untouched by the append.
	kept := attach.Children[:0]
	for _, existing := range attach.Children {
		dominated := false
		for _, f := range fresh {
			if subsume.Subsumed(existing, f) {
				dominated = true
				break
			}
		}
		if !dominated {
			kept = append(kept, existing)
		} else {
			ix.RemoveSubtree(existing)
		}
	}
	attach.Children = append(kept, fresh...)

	path = c.Ancestors()
	if len(path) == 0 || path[len(path)-1] != attach {
		path = s.findPath(doc.Root, attach)
	}
	// The child lists along root..attach changed (or are about to, in the
	// sibling pruning below): their memoized subtree digests are stale.
	tree.InvalidateDigestPath(path)
	for i := len(path) - 2; i >= 0; i-- {
		ancestor, grown := path[i], path[i+1]
		pruned := ancestor.Children[:0]
		for _, sib := range ancestor.Children {
			if sib != grown && subsume.Subsumed(sib, grown) {
				ix.RemoveSubtree(sib)
				continue
			}
			pruned = append(pruned, sib)
		}
		ancestor.Children = pruned
	}
	s.bumpVersion(c.Doc)
	// Stamp the appended trees with the post-bump version: a later delta
	// evaluation with a baseline at or above the pre-bump version sees
	// exactly these nodes as its delta. (StampAll also clears their digest
	// memos; the copies Union made inside ReduceForest carried memos from
	// the service's result trees.)
	v := s.docVersion[c.Doc]
	for _, f := range fresh {
		f.StampAll(v)
		ix.AddSubtree(attach, f)
	}
	ix.Compact()
	return fresh, path, true
}

// declarative resolves the named service to its innermost QueryService,
// unwrapping middleware decorations; it returns nil for black boxes.
func (s *System) declarative(name string) *QueryService {
	qs, _ := Innermost(s.funcs[name]).(*QueryService)
	return qs
}

// relevantDocs returns the names of the documents whose content can
// influence the call's next answer, deduplicated, in a deterministic
// order (query first-occurrence order for positive services, system
// insertion order for black boxes): for positive services, the documents
// their defining query reads (input and context both live inside the
// call's own document); for black boxes, every document.
func (s *System) relevantDocs(c Call) []string {
	if qs := s.declarative(c.Node.Name); qs != nil {
		var out []string
		seenOwn := false
		for _, d := range qs.Query.DocNames() {
			if d == tree.Input || d == tree.Context {
				d = c.Doc
			}
			if d == c.Doc {
				if seenOwn {
					continue
				}
				seenOwn = true
			}
			out = append(out, d)
		}
		return out
	}
	return s.docNames
}

// relevantVersionVector returns the per-document versions of the call's
// relevant documents, aligned with relevantDocs. The engine's sterile-
// call gate compares whole vectors: unlike the version *sum* this
// replaces, distinct states never alias (a sum is blind to one document
// advancing while another is restored from a lower-versioned snapshot,
// and wraps silently), and the vector doubles as the baseline a delta
// evaluation resumes from, which needs to know WHICH document moved.
func (s *System) relevantVersionVector(c Call) []uint64 {
	docs := s.relevantDocs(c)
	vec := make([]uint64, len(docs))
	for i, d := range docs {
		vec[i] = s.docVersion[d]
	}
	return vec
}

// sinceFor converts the version vector recorded at the call's previous
// evaluation into the per-atom-name baseline map a delta evaluation
// needs: every document name the defining query uses (including the
// reserved input/context, which resolve to the call's own document) is
// mapped to its baseline version. It returns nil — full evaluation —
// for black boxes and for vectors that do not match the current
// relevant-document list.
func (s *System) sinceFor(c Call, prev []uint64) map[string]uint64 {
	if prev == nil {
		return nil
	}
	qs := s.declarative(c.Node.Name)
	if qs == nil {
		return nil
	}
	docs := s.relevantDocs(c)
	if len(prev) != len(docs) {
		return nil
	}
	byDoc := make(map[string]uint64, len(docs))
	for i, d := range docs {
		byDoc[d] = prev[i]
	}
	since := make(map[string]uint64, len(qs.Query.DocNames()))
	for _, d := range qs.Query.DocNames() {
		name := d
		if d == tree.Input || d == tree.Context {
			// Input and context are subtrees of the call's own document,
			// so they share its baseline (exactly as in relevantDocs).
			name = c.Doc
		}
		if v, ok := byDoc[name]; ok {
			since[d] = v
		}
	}
	return since
}

// findPath recomputes the ancestor chain root..target for calls built
// without a Path. It returns nil when target is not in the tree.
func (s *System) findPath(root, target *tree.Node) []*tree.Node {
	var path []*tree.Node
	var found []*tree.Node
	var rec func(n *tree.Node) bool
	rec = func(n *tree.Node) bool {
		path = append(path, n)
		if n == target {
			found = append([]*tree.Node(nil), path...)
			return true
		}
		for _, c := range n.Children {
			if rec(c) {
				return true
			}
		}
		path = path[:len(path)-1]
		return false
	}
	rec(root)
	return found
}

// Scheduler chooses the order in which the calls of a sweep are
// attempted. Fairness is enforced by the engine's sweep structure, not by
// the scheduler: every call present at the start of a sweep is attempted
// during that sweep, in the order the scheduler fixed.
type Scheduler interface {
	// Order permutes the sweep's call list in place.
	Order(calls []Call)
}

// RoundRobin attempts calls in document/preorder order.
type RoundRobin struct{}

// Order implements Scheduler (identity).
func (RoundRobin) Order(calls []Call) {}

// Reverse attempts calls in reverse document/preorder order.
type Reverse struct{}

// Order implements Scheduler.
func (Reverse) Order(calls []Call) {
	for i, j := 0, len(calls)-1; i < j; i, j = i+1, j-1 {
		calls[i], calls[j] = calls[j], calls[i]
	}
}

// Random attempts calls in uniformly random order, deterministically from
// the seed. Distinct seeds give distinct fair sequences, which Experiment
// E2 uses to demonstrate confluence (Theorem 2.1).
type Random struct{ Rng *rand.Rand }

// NewRandom returns a Random scheduler seeded with seed.
func NewRandom(seed int64) *Random { return &Random{Rng: rand.New(rand.NewSource(seed))} }

// Order implements Scheduler.
func (r *Random) Order(calls []Call) {
	r.Rng.Shuffle(len(calls), func(i, j int) { calls[i], calls[j] = calls[j], calls[i] })
}

// ErrorPolicy selects how Run reacts to a service invocation error.
type ErrorPolicy int

const (
	// FailFast aborts the run on the first service error (the historical
	// behavior): RunResult.Err carries the error and all other calls of
	// the sweep are abandoned.
	FailFast ErrorPolicy = iota
	// Degrade quarantines a failing call for the remainder of its sweep,
	// keeps sweeping every other call, and retries the failed call on
	// later sweeps. Theorem 2.1 (confluence of fair rewritings of
	// monotone systems) makes this safe: deferring an invocation can
	// only postpone information, never change the final state. The run
	// still terminates normally once a sweep is both change-free and
	// error-free; it gives up (Terminated=false, Err set) after
	// MaxErrorSweeps consecutive sweeps that made no progress and still
	// saw errors.
	Degrade
)

// RunOptions bounds a rewriting run. The zero value means: round-robin
// scheduling, GOMAXPROCS-parallel firing, at most DefaultMaxSteps
// rewriting steps, no node bound and fail-fast error handling.
type RunOptions struct {
	// Scheduler orders call attempts within a sweep; nil means RoundRobin.
	Scheduler Scheduler
	// Parallelism is the number of calls fired concurrently within a
	// sweep: 0 means GOMAXPROCS, 1 forces the deterministic sequential
	// engine (exact step/attempt accounting, strict scheduler order),
	// and n > 1 uses a bounded pool of n workers. Theorem 2.1 (the
	// fixpoint is independent of the firing order) is what licenses
	// parallel firing: results merge by least upper bound, so races
	// between firings are semantically harmless and the final state
	// equals the sequential one. Counters (Steps, Attempts, Sweeps) may
	// differ run to run when Parallelism > 1; use 1 when a test asserts
	// exact counts or needs the scheduler's order to be observed
	// strictly.
	Parallelism int
	// MaxSteps caps the number of strictly-growing invocations; 0 means
	// DefaultMaxSteps. Use a finite budget for possibly-infinite systems.
	MaxSteps int
	// MaxNodes stops the run once the total system size exceeds it;
	// 0 means unbounded.
	MaxNodes int
	// MaxSweeps stops after that many completed sweeps; 0 means
	// unbounded. One sweep attempts every call present at its start. The
	// event-driven engine (Incremental with Parallelism > 1) has no
	// sweeps and ignores it.
	MaxSweeps int
	// Incremental enables dependency-driven semi-naive evaluation:
	// declarative services are re-evaluated only against the data
	// appended since their call's last attempt (per-node version stamps,
	// see tree.Node.Stamp), instead of against whole documents. At
	// Parallelism 1 the deterministic sweep loop is kept as the
	// scheduling policy and only the evaluations become incremental; at
	// Parallelism > 1 the sweeps are replaced by an event-driven
	// scheduler that drains a worklist fed by document-version events
	// through the reverse dependency index (black boxes conservatively
	// subscribe to every document). Theorem 2.1 — the fixpoint is
	// independent of the firing order — licenses both: the reachable
	// state is identical to the sweeping engine's, only the work to get
	// there shrinks to the size of the deltas.
	Incremental bool
	// ErrorPolicy selects fail-fast (zero value) or degraded handling of
	// service errors.
	ErrorPolicy ErrorPolicy
	// MaxErrorSweeps bounds, under Degrade, the consecutive sweeps that
	// make no progress while still seeing errors before the run gives
	// up; 0 means DefaultMaxErrorSweeps.
	MaxErrorSweeps int
	// OnStep, when non-nil, observes every strictly-growing invocation.
	OnStep func(step int, c Call)
	// Metrics, when non-nil, receives the run's counters and latency
	// histograms under the engine.* names (engine.sweeps,
	// engine.calls.fired, engine.eval_ns, engine.merge_wait_ns, ...).
	// The run-local RunResult.Stats snapshot is collected regardless;
	// Metrics additionally accumulates across runs — the process-wide
	// view /debug/vars serves.
	Metrics *obs.Registry
	// Tracer, when non-nil, receives one span per sweep, per fired call
	// and per merge (see obs.Span for the schema); nil disables tracing
	// with no hot-path cost beyond a nil check.
	Tracer *obs.Tracer
}

// DefaultMaxSteps bounds runs whose options leave MaxSteps at zero.
const DefaultMaxSteps = 100000

// DefaultMaxErrorSweeps bounds fruitless all-error sweeps under Degrade.
const DefaultMaxErrorSweeps = 3

// RunResult reports what a rewriting run did.
type RunResult struct {
	// Steps counts strictly-growing invocations (rewriting steps).
	Steps int
	// Attempts counts all invocations, including no-ops.
	Attempts int
	// Sweeps counts completed fair sweeps over all calls.
	Sweeps int
	// Terminated is true when the run reached a fixpoint: a full sweep
	// in which no invocation changed the system (the system "terminates
	// at" its current state, Definition 2.4). Under Degrade a sweep must
	// also be error-free to count as the fixpoint confirmation.
	Terminated bool
	// Failures counts invocations that returned an error. Under FailFast
	// it is at most 1; under Degrade failed calls are quarantined for
	// their sweep and retried later, so a terminated run may still
	// report the transient failures it rode through.
	Failures int
	// Errors counts failures per service name; nil when there were none.
	Errors map[string]int
	// Err is the first service error encountered, if any. A run can
	// terminate at the fixpoint with Err non-nil under Degrade when
	// every failure was transient.
	Err error
	// Stats is the run's measurement snapshot: where the workers spent
	// their time and how the version funnel behaved. Collected on every
	// run (the collection is a handful of atomic adds per firing), so
	// perf regressions are diagnosable from any RunResult without
	// re-running under a profiler.
	Stats RunStats
}

// RunStats is the per-run observability snapshot in RunResult.
type RunStats struct {
	// CallsFired counts evaluations actually dispatched (== Attempts).
	CallsFired int
	// CallsSterile counts calls the version gate skipped: their read set
	// had not moved since their last attempt, so re-firing provably
	// returns nothing new.
	CallsSterile int
	// DeltaEvals counts evaluations that ran semi-naively against the
	// delta since the call's previous baseline instead of against whole
	// documents (only under RunOptions.Incremental, and only from the
	// second evaluation of a call on).
	DeltaEvals int
	// Enqueues and EnqueuesCoalesced count, for the event-driven engine,
	// the worklist enqueues performed and the enqueues absorbed into an
	// already-pending entry; both zero for the sweeping engine.
	Enqueues          int
	EnqueuesCoalesced int
	// IndexHits and IndexMisses count, over this run, pattern matches
	// answered through a document's inverted index (anchored candidate
	// enumeration or an empty-candidate early reject) versus matches that
	// fell back to the naive tree walk despite an index being present
	// (no selective anchor, or a match rooted below the document root).
	// Both zero when indexing is disabled. Concurrent runs on one system
	// share the underlying counters, so the deltas include their traffic.
	IndexHits   uint64
	IndexMisses uint64
	// Eval is the service-evaluation latency histogram (ns).
	Eval obs.HistSnapshot
	// SlotWait is the time each admitted call waited for a worker-pool
	// slot (ns); all zeros when Parallelism <= 1.
	SlotWait obs.HistSnapshot
	// MergeWait is the time each successful evaluation waited at the
	// version funnel before its merge ran (ns).
	MergeWait obs.HistSnapshot
	// ReaderWaits and WriterWaits are the version-funnel contention
	// deltas over the run: evaluations that waited out a merge, and
	// merges that queued behind evaluations (see System.LockContention).
	// Under concurrent runs on one system the deltas include the other
	// runs' traffic — contention is a property of the shared funnel.
	ReaderWaits uint64
	WriterWaits uint64
}

// Run executes a fair rewriting sequence in place until termination or
// budget exhaustion and reports the outcome, with a background context.
// See RunContext.
func (s *System) Run(opts RunOptions) RunResult {
	return s.RunContext(context.Background(), opts)
}

// RunContext executes a fair rewriting sequence in place until
// termination, budget exhaustion or context cancellation, and reports the
// outcome. Fairness: the engine works in sweeps; a sweep attempts every
// function node that exists when its turn comes (including nodes created
// earlier in the same sweep), each at most once per sweep. A system state
// is final iff a whole sweep changes nothing; by Theorem 2.1 the final
// state does not depend on the scheduler — nor on the firing parallelism
// (see RunOptions.Parallelism).
//
// The context is passed to every service invocation; cancelling it stops
// the run at the next call boundary (in-flight calls are cancelled through
// their own ctx) and RunResult.Err reports ctx.Err(). The documents are
// never left half-mutated: a cancelled run stops at a consistent (merely
// earlier) state, from which a later run resumes by monotonicity.
//
// Concurrent RunContext calls on the same System are safe: all engines
// funnel mutations through the system's version-funnel lock. Mutating the
// system through any other path (Touch, Restore, direct tree access)
// while a run is in flight is not synchronized and remains the caller's
// responsibility, exactly as for the sequential engine.
func (s *System) RunContext(ctx context.Context, opts RunOptions) RunResult {
	e := newEngine(s, opts)
	if opts.Incremental && e.workers > 1 {
		return e.runEventDriven(ctx)
	}
	return e.run(ctx)
}

// purgeSeen drops version-gate entries whose nodes are no longer attached
// to any document: reduction prunes subtrees (and the call nodes inside
// them) for good, so without this the gate map grows without bound over a
// long run. Called at sweep boundaries with the fresh call snapshot.
func purgeSeen(seen map[*tree.Node][]uint64, live []Call) {
	if len(seen) == 0 {
		return
	}
	alive := make(map[*tree.Node]struct{}, len(live))
	for _, c := range live {
		alive[c.Node] = struct{}{}
	}
	for n := range seen {
		if _, ok := alive[n]; !ok {
			delete(seen, n)
		}
	}
}

// pendingCalls lists current calls not in the fired set. Nodes removed by
// reduction disappear from the enumeration automatically.
func (s *System) pendingCalls(fired map[*tree.Node]bool) []Call {
	all := s.Calls()
	pending := all[:0]
	for _, c := range all {
		if !fired[c.Node] {
			pending = append(pending, c)
		}
	}
	return pending
}

// attached reports whether the call's node is still part of its document,
// by re-validating the recorded ancestor chain (pruning only ever detaches
// whole subtrees, so intact links mean the node is present). Calls without
// a recorded path fall back to a full-document search.
func (s *System) attached(c Call) bool {
	d := s.docs[c.Doc]
	if d == nil {
		return false
	}
	if c.path == nil {
		return s.containsNode(c.Doc, c.Node)
	}
	child := c.Node
	link := c.path
	for link != nil {
		found := false
		for _, ch := range link.node.Children {
			if ch == child {
				found = true
				break
			}
		}
		if !found {
			return false
		}
		child = link.node
		link = link.up
	}
	return child == d.Root
}

// Terminates runs a copy of the system within the given budget and
// reports (terminated, steps). For simple positive systems prefer the
// exact decision procedure in package regular (Theorem 3.3); this is the
// semi-decision procedure available for arbitrary monotone systems (the
// problem is undecidable in general, Corollary 3.1).
func (s *System) Terminates(maxSteps int) (bool, int) {
	c := s.Copy()
	res := c.Run(RunOptions{MaxSteps: maxSteps})
	return res.Terminated, res.Steps
}

// DefaultParallelism is the worker count used when RunOptions.Parallelism
// is zero: one worker per schedulable CPU.
func DefaultParallelism() int { return runtime.GOMAXPROCS(0) }
