package core

import (
	"fmt"
	"strings"
)

// Source renders the system back into the system-file syntax accepted by
// ParseSystem, enabling save/load round trips. It fails on systems with
// black-box services, which have no declarative form.
func (s *System) Source() (string, error) {
	var b strings.Builder
	for _, name := range s.funcNames {
		qs, ok := s.funcs[name].(*QueryService)
		if !ok {
			return "", fmt.Errorf("core: service %q is a black box and cannot be serialized", name)
		}
		fmt.Fprintf(&b, "func %s = %s\n", name, qs.Query)
	}
	for _, name := range s.docNames {
		fmt.Fprintf(&b, "doc %s = %s\n", name, s.docs[name].Root)
	}
	return b.String(), nil
}
