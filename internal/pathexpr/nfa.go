package pathexpr

import (
	"fmt"
	"sort"
	"strings"
)

// NFA is an ε-free nondeterministic finite automaton over labels, with an
// optional wildcard transition per state pair. It is the operational form
// of a Regex: CompileRegex builds a Thompson ε-NFA and eliminates the ε
// moves.
type NFA struct {
	// Start is the initial state.
	Start int
	// NumStates is the number of states, numbered 0..NumStates-1.
	NumStates int
	// Finals marks accepting states.
	Finals map[int]bool
	// Label transitions: Trans[q][label] = successor states.
	Trans []map[string][]int
	// Wild transitions: Wild[q] = successors reachable by reading any
	// label (from the '_' wildcard).
	Wild [][]int
}

// AcceptsEmpty reports whether the empty word is in the language.
func (n *NFA) AcceptsEmpty() bool { return n.Finals[n.Start] }

// Step returns the successor set of state q on the given label.
func (n *NFA) Step(q int, label string) []int {
	out := append([]int(nil), n.Trans[q][label]...)
	out = append(out, n.Wild[q]...)
	return out
}

// StepSet advances a state set on a label.
func (n *NFA) StepSet(states map[int]bool, label string) map[int]bool {
	next := map[int]bool{}
	for q := range states {
		for _, p := range n.Step(q, label) {
			next[p] = true
		}
	}
	return next
}

// AnyFinal reports whether the state set contains an accepting state.
func (n *NFA) AnyFinal(states map[int]bool) bool {
	for q := range states {
		if n.Finals[q] {
			return true
		}
	}
	return false
}

// Transitions enumerates all label transitions (q, label, p) plus wildcard
// transitions reported with label "" — the form the ψ translation
// consumes.
type Transition struct {
	From  int
	Label string // "" means wildcard (any label)
	To    int
}

// AllTransitions lists every transition, deterministically ordered.
func (n *NFA) AllTransitions() []Transition {
	var out []Transition
	for q := 0; q < n.NumStates; q++ {
		labels := make([]string, 0, len(n.Trans[q]))
		for l := range n.Trans[q] {
			labels = append(labels, l)
		}
		sort.Strings(labels)
		for _, l := range labels {
			for _, p := range n.Trans[q][l] {
				out = append(out, Transition{From: q, Label: l, To: p})
			}
		}
		for _, p := range n.Wild[q] {
			out = append(out, Transition{From: q, Label: "", To: p})
		}
	}
	return out
}

// String renders the automaton for debugging.
func (n *NFA) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "start=%d finals=", n.Start)
	var fs []int
	for f := range n.Finals {
		fs = append(fs, f)
	}
	sort.Ints(fs)
	fmt.Fprintf(&b, "%v\n", fs)
	for _, t := range n.AllTransitions() {
		l := t.Label
		if l == "" {
			l = "_"
		}
		fmt.Fprintf(&b, "%d -%s-> %d\n", t.From, l, t.To)
	}
	return b.String()
}

// epsNFA is the intermediate Thompson automaton.
type epsNFA struct {
	n     int
	label []map[string][]int
	wild  [][]int
	eps   [][]int
}

func (e *epsNFA) newState() int {
	e.n++
	e.label = append(e.label, map[string][]int{})
	e.wild = append(e.wild, nil)
	e.eps = append(e.eps, nil)
	return e.n - 1
}

// build returns (start, end) fragment states for r; end is a fresh state
// with no outgoing edges inside the fragment.
func (e *epsNFA) build(r Regex) (int, int) {
	switch r := r.(type) {
	case Atom:
		s, t := e.newState(), e.newState()
		e.label[s][r.Label] = append(e.label[s][r.Label], t)
		return s, t
	case Any:
		s, t := e.newState(), e.newState()
		e.wild[s] = append(e.wild[s], t)
		return s, t
	case Concat:
		s, t := e.build(r.Parts[0])
		for _, part := range r.Parts[1:] {
			ps, pt := e.build(part)
			e.eps[t] = append(e.eps[t], ps)
			t = pt
		}
		return s, t
	case AltExpr:
		s, t := e.newState(), e.newState()
		for _, br := range r.Branches {
			bs, bt := e.build(br)
			e.eps[s] = append(e.eps[s], bs)
			e.eps[bt] = append(e.eps[bt], t)
		}
		return s, t
	case Star:
		s, t := e.newState(), e.newState()
		is, it := e.build(r.Inner)
		e.eps[s] = append(e.eps[s], is, t)
		e.eps[it] = append(e.eps[it], is, t)
		return s, t
	case PlusExpr:
		is, it := e.build(r.Inner)
		e.eps[it] = append(e.eps[it], is)
		return is, it
	case Opt:
		s, t := e.newState(), e.newState()
		is, it := e.build(r.Inner)
		e.eps[s] = append(e.eps[s], is, t)
		e.eps[it] = append(e.eps[it], t)
		return s, t
	default:
		panic(fmt.Sprintf("pathexpr: unknown regex node %T", r))
	}
}

func (e *epsNFA) closure(q int) []int {
	seen := map[int]bool{q: true}
	stack := []int{q}
	var out []int
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out = append(out, x)
		for _, y := range e.eps[x] {
			if !seen[y] {
				seen[y] = true
				stack = append(stack, y)
			}
		}
	}
	sort.Ints(out)
	return out
}

// CompileRegex compiles a regex into an ε-free NFA.
func CompileRegex(r Regex) *NFA {
	e := &epsNFA{}
	start, end := e.build(r)
	n := &NFA{
		Start:     start,
		NumStates: e.n,
		Finals:    map[int]bool{},
		Trans:     make([]map[string][]int, e.n),
		Wild:      make([][]int, e.n),
	}
	for q := 0; q < e.n; q++ {
		n.Trans[q] = map[string][]int{}
		cl := e.closure(q)
		for _, x := range cl {
			if x == end {
				n.Finals[q] = true
			}
			for label, tos := range e.label[x] {
				n.Trans[q][label] = appendUnique(n.Trans[q][label], tos...)
			}
			n.Wild[q] = appendUnique(n.Wild[q], e.wild[x]...)
		}
	}
	return n
}

func appendUnique(dst []int, xs ...int) []int {
	for _, x := range xs {
		dup := false
		for _, y := range dst {
			if x == y {
				dup = true
				break
			}
		}
		if !dup {
			dst = append(dst, x)
		}
	}
	sort.Ints(dst)
	return dst
}
