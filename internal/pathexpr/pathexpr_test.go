package pathexpr

import (
	"testing"

	"axml/internal/core"
	"axml/internal/query"
	"axml/internal/subsume"
	"axml/internal/syntax"
	"axml/internal/tree"
)

func TestParseRegexRoundTrip(t *testing.T) {
	cases := []string{
		`a`,
		`a.b.c`,
		`a|b`,
		`(a|b)*.c`,
		`a+.b?`,
		`_`,
		`(a.b)|(c.d)`,
		`((a|b).c)*`,
	}
	for _, src := range cases {
		r, err := ParseRegex(src)
		if err != nil {
			t.Fatalf("ParseRegex(%q): %v", src, err)
		}
		back, err := ParseRegex(r.String())
		if err != nil {
			t.Fatalf("round trip of %q -> %q: %v", src, r.String(), err)
		}
		if back.String() != r.String() {
			t.Fatalf("unstable round trip: %q -> %q -> %q", src, r.String(), back.String())
		}
	}
}

func TestParseRegexErrors(t *testing.T) {
	for _, src := range []string{``, `(a`, `a||b`, `*`, `a..b`, `a)`, `|a`} {
		if _, err := ParseRegex(src); err == nil {
			t.Errorf("ParseRegex(%q) accepted", src)
		}
	}
}

// accepts runs the NFA over a word.
func accepts(n *NFA, word ...string) bool {
	states := map[int]bool{n.Start: true}
	for _, w := range word {
		states = n.StepSet(states, w)
	}
	return n.AnyFinal(states)
}

func TestNFASemantics(t *testing.T) {
	cases := []struct {
		re  string
		yes [][]string
		no  [][]string
	}{
		{`a`, [][]string{{"a"}}, [][]string{{}, {"b"}, {"a", "a"}}},
		{`a.b`, [][]string{{"a", "b"}}, [][]string{{"a"}, {"b", "a"}}},
		{`a|b`, [][]string{{"a"}, {"b"}}, [][]string{{}, {"c"}}},
		{`a*`, [][]string{{}, {"a"}, {"a", "a", "a"}}, [][]string{{"b"}, {"a", "b"}}},
		{`a+`, [][]string{{"a"}, {"a", "a"}}, [][]string{{}}},
		{`a?`, [][]string{{}, {"a"}}, [][]string{{"a", "a"}}},
		{`(a|b)*.c`, [][]string{{"c"}, {"a", "b", "c"}}, [][]string{{}, {"a"}, {"c", "c"}}},
		{`_.a`, [][]string{{"z", "a"}, {"a", "a"}}, [][]string{{"a"}, {"a", "z"}}},
	}
	for _, c := range cases {
		n := CompileRegex(MustParseRegex(c.re))
		for _, w := range c.yes {
			if !accepts(n, w...) {
				t.Errorf("%s should accept %v\n%s", c.re, w, n)
			}
		}
		for _, w := range c.no {
			if accepts(n, w...) {
				t.Errorf("%s should reject %v", c.re, w)
			}
		}
	}
}

func docsOf(t *testing.T, pairs ...string) query.Docs {
	t.Helper()
	d := query.Docs{}
	for i := 0; i < len(pairs); i += 2 {
		d[pairs[i]] = syntax.MustParseDocument(pairs[i+1])
	}
	return d
}

func TestSnapshotDirectPathMatching(t *testing.T) {
	docs := docsOf(t, "d", `lib{section{title{"top"},sub{section{title{"deep"},cd{title{"x"}}}}},cd{title{"y"}}}`)
	// Titles reachable through any nesting of section/sub.
	q := MustParseRQuery(`out{$t} :- d/lib{<(section|sub)*.title>{$t}}`)
	got, err := Snapshot(q, docs)
	if err != nil {
		t.Fatal(err)
	}
	want := subsume.ReduceForest(tree.Forest{
		syntax.MustParseDocument(`out{"top"}`),
		syntax.MustParseDocument(`out{"deep"}`),
	})
	if got.CanonicalString() != want.CanonicalString() {
		t.Fatalf("got %s want %s", got.CanonicalString(), want.CanonicalString())
	}
	// cd titles at any depth, including under sections.
	q2 := MustParseRQuery(`out{$t} :- d/lib{<_*.cd.title>{$t}}`)
	got2, err := Snapshot(q2, docs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got2) != 2 {
		t.Fatalf("wildcard query: %s", got2.CanonicalString())
	}
}

func TestSnapshotEmptyWordAnchorsAtParent(t *testing.T) {
	docs := docsOf(t, "d", `a{title{"here"},b{title{"below"}}}`)
	q := MustParseRQuery(`out{$t} :- d/a{<b?.title>{$t}}`)
	got, err := Snapshot(q, docs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("optional path: %s", got.CanonicalString())
	}
}

func TestSnapshotPathIgnoresValueAndFuncEdges(t *testing.T) {
	docs := docsOf(t, "d", `a{!svc{b{title{"inparam"}}},b{title{"data"}}}`)
	q := MustParseRQuery(`out{$t} :- d/a{<b.title>{$t}}`)
	got, err := Snapshot(q, docs)
	if err != nil {
		t.Fatal(err)
	}
	// Paths descend through the param subtree? No: the function node is
	// not a label edge, so only the data branch matches.
	if len(got) != 1 || got[0].Children[0].Name != "data" {
		t.Fatalf("got %s", got.CanonicalString())
	}
}

func TestRQueryValidate(t *testing.T) {
	if _, err := ParseRQuery(`out{$x} :- `); err == nil {
		t.Error("unsafe head accepted")
	}
	if _, err := ParseRQuery(`out :- d/a{<b*>{#T}}, #T != #T`); err == nil {
		t.Error("tree inequality accepted")
	}
	if _, err := ParseRQuery(`out{<a>} :- d/a`); err == nil {
		t.Error("path node in head accepted")
	}
}

func TestRQueryServiceInSystem(t *testing.T) {
	// A positive+reg system: the service finds titles at any depth.
	s := core.NewSystem()
	if err := s.AddDocument(tree.NewDocument("lib", syntax.MustParseDocument(
		`lib{section{sub{cd{title{"x"}}},cd{title{"y"}}}}`))); err != nil {
		t.Fatal(err)
	}
	if err := s.AddDocument(tree.NewDocument("out", syntax.MustParseDocument(`res{!collect}`))); err != nil {
		t.Fatal(err)
	}
	rq := MustParseRQuery(`title{$t} :- lib/lib{<_*.title>{$t}}`)
	rq.Name = "collect"
	svc, err := NewRQueryService(rq)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddService(svc); err != nil {
		t.Fatal(err)
	}
	res := s.Run(core.RunOptions{})
	if !res.Terminated {
		t.Fatalf("run: %+v", res)
	}
	want := syntax.MustParseDocument(`res{!collect,title{"x"},title{"y"}}`)
	if !tree.Isomorphic(s.Document("out").Root, want) {
		t.Fatalf("out = %s", s.Document("out").Root.CanonicalString())
	}
}

// buildLibSystem builds a plain positive system where a service feeds data
// that the positive+reg query then traverses.
func buildLibSystem(t *testing.T) *core.System {
	t.Helper()
	return core.MustParseSystem(`
doc src = store{item{name{"alpha"}},item{name{"beta"}}}
doc lib = lib{section{sub},!fill}
func fill = section{cd{title{$n}}} :- src/store{item{name{$n}}}
`)
}

func TestProposition51TranslationEqualsDirect(t *testing.T) {
	rq := MustParseRQuery(`out{$t} :- lib/lib{<(section|sub)*.cd.title>{$t}}`)

	// Direct: run the original system, evaluate directly.
	direct, directExact, err := EvalFull(buildLibSystem(t), rq, core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !directExact {
		t.Fatal("original system did not terminate")
	}

	// Translated: plain system + plain query.
	trans, err := Translate(buildLibSystem(t), rq)
	if err != nil {
		t.Fatal(err)
	}
	if len(trans.TokenServices) == 0 {
		t.Fatal("no token services generated")
	}
	// Prop 5.1(2): simplicity preserved.
	if !trans.System.IsSimple() {
		t.Fatal("translated system not simple")
	}
	if !trans.Query.IsSimple() {
		t.Fatal("translated query not simple")
	}
	res, err := trans.System.EvalQuery(trans.Query, core.RunOptions{MaxSteps: 200000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact {
		t.Fatalf("translated system did not terminate: %+v", res.Run)
	}
	if direct.CanonicalString() != res.Answer.CanonicalString() {
		t.Fatalf("Prop 5.1(3) violated:\ndirect    %s\ntranslated %s",
			direct.CanonicalString(), res.Answer.CanonicalString())
	}
	want := subsume.ReduceForest(tree.Forest{
		syntax.MustParseDocument(`out{"alpha"}`),
		syntax.MustParseDocument(`out{"beta"}`),
	})
	if direct.CanonicalString() != want.CanonicalString() {
		t.Fatalf("direct answer wrong: %s", direct.CanonicalString())
	}
}

func TestTranslateEmptyWordAndAlternation(t *testing.T) {
	s := core.MustParseSystem(`doc d = a{title{"h"},b{title{"l"}}}`)
	rq := MustParseRQuery(`out{$t} :- d/a{<b?.title>{$t}}`)
	direct, _, err := EvalFull(s, rq, core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	trans, err := Translate(s, rq)
	if err != nil {
		t.Fatal(err)
	}
	res, err := trans.System.EvalQuery(trans.Query, core.RunOptions{MaxSteps: 200000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact {
		t.Fatal("translated system did not terminate")
	}
	if direct.CanonicalString() != res.Answer.CanonicalString() {
		t.Fatalf("empty-word case: direct %s vs translated %s",
			direct.CanonicalString(), res.Answer.CanonicalString())
	}
	if len(direct) != 2 {
		t.Fatalf("direct = %s", direct.CanonicalString())
	}
}

func TestTranslateWildcard(t *testing.T) {
	s := core.MustParseSystem(`doc d = r{x{y{leaf{"1"}}},z{leaf{"2"}}}`)
	rq := MustParseRQuery(`out{$v} :- d/r{<_*.leaf>{$v}}`)
	direct, _, err := EvalFull(s, rq, core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	trans, err := Translate(s, rq)
	if err != nil {
		t.Fatal(err)
	}
	res, err := trans.System.EvalQuery(trans.Query, core.RunOptions{MaxSteps: 500000})
	if err != nil {
		t.Fatal(err)
	}
	if direct.CanonicalString() != res.Answer.CanonicalString() {
		t.Fatalf("wildcard: direct %s vs translated %s", direct.CanonicalString(), res.Answer.CanonicalString())
	}
	if len(direct) != 2 {
		t.Fatalf("direct = %s", direct.CanonicalString())
	}
}

func TestTranslateRejections(t *testing.T) {
	s := core.MustParseSystem(`doc d = a{b}`)
	if _, err := Translate(s, MustParseRQuery(`out{#T} :- d/a{<b*>{#T}}`)); err == nil {
		t.Error("tree var under path accepted by translation")
	}
	bb := core.NewSystem()
	if err := bb.AddDocument(tree.NewDocument("d", syntax.MustParseDocument(`a{!f}`))); err != nil {
		t.Fatal(err)
	}
	if err := bb.AddService(core.ConstService("f", nil)); err != nil {
		t.Fatal(err)
	}
	if _, err := Translate(bb, MustParseRQuery(`out :- d/a{<b>}`)); err == nil {
		t.Error("black-box system accepted")
	}
}

func TestRNodeHelpers(t *testing.T) {
	n := MustParseRPattern(`a{<b*.c>{$x},d}`)
	if !n.HasPath() {
		t.Fatal("HasPath false")
	}
	if !n.IsSimple() {
		t.Fatal("IsSimple false")
	}
	round := MustParseRPattern(n.String())
	if round.String() != n.String() {
		t.Fatalf("round trip %q -> %q", n.String(), round.String())
	}
	if _, err := n.ToPattern(); err == nil {
		t.Fatal("ToPattern should fail with path nodes")
	}
	plain := MustParseRPattern(`a{b{$x}}`)
	p, err := plain.ToPattern()
	if err != nil || p.String() != "a{b{$x}}" {
		t.Fatalf("ToPattern: %v %v", p, err)
	}
	fp := FromPattern(p)
	if fp.String() != "a{b{$x}}" {
		t.Fatalf("FromPattern: %s", fp)
	}
}
