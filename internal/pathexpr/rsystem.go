package pathexpr

import (
	"fmt"
	"sort"

	"axml/internal/core"
	"axml/internal/pattern"
	"axml/internal/query"
	"axml/internal/tree"
)

// RSystem is a positive+reg system in declarative form: documents plus
// services defined by positive+reg queries (Section 5). Build gives it
// operational form through RQueryService (direct NFA evaluation);
// TranslateSystem compiles it — services included — into a plain positive
// system per Proposition 5.1.
type RSystem struct {
	Docs     []*tree.Document
	Services []*RQuery // Name is the function name
}

// Build assembles an executable system with direct path evaluation.
func (rs *RSystem) Build() (*core.System, error) {
	s := core.NewSystem()
	for _, d := range rs.Docs {
		if err := s.AddDocument(d.Copy()); err != nil {
			return nil, err
		}
	}
	for _, rq := range rs.Services {
		svc, err := NewRQueryService(rq)
		if err != nil {
			return nil, err
		}
		if err := s.AddService(svc); err != nil {
			return nil, err
		}
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// TranslateSystem implements the full ψ of Proposition 5.1: both the
// query and the system's positive+reg services become plain positive.
// Each service body's path nodes get token machines exactly like the
// query's; annotation calls are injected into every document and every
// translated service head, so data produced at runtime is annotated too.
// The same exactness caveats as Translate apply.
func TranslateSystem(rs *RSystem, rq *RQuery) (*Translation, error) {
	if err := rq.Validate(); err != nil {
		return nil, err
	}
	for _, svc := range rs.Services {
		if err := svc.Validate(); err != nil {
			return nil, err
		}
		if svc.Name == "" {
			return nil, fmt.Errorf("pathexpr: unnamed service query")
		}
	}
	tr := &Translation{System: core.NewSystem()}
	alphabet := rsystemAlphabet(rs, rq)
	tr.Alphabet = alphabet

	var machines []*tokenMachine
	translateQuery := func(in *RQuery) (*query.Query, error) {
		out := &query.Query{Name: in.Name, Head: in.Head.Copy(), Ineqs: append([]query.Ineq(nil), in.Ineqs...)}
		for _, a := range in.Body {
			p, err := translateRNode(a.Pattern, &machines)
			if err != nil {
				return nil, err
			}
			out.Body = append(out.Body, query.Atom{Doc: a.Doc, Pattern: p})
		}
		return out, nil
	}

	q, err := translateQuery(rq)
	if err != nil {
		return nil, err
	}
	tr.Query = q
	var services []*query.Query
	for _, svc := range rs.Services {
		sq, err := translateQuery(svc)
		if err != nil {
			return nil, err
		}
		services = append(services, sq)
	}

	var tokenQueries []*query.Query
	for _, m := range machines {
		qs, err := m.services(alphabet)
		if err != nil {
			return nil, err
		}
		tokenQueries = append(tokenQueries, qs...)
	}
	var callNames []string
	for _, tq := range tokenQueries {
		callNames = append(callNames, tq.Name)
		tr.TokenServices = append(tr.TokenServices, tq.Name)
	}

	for _, d := range rs.Docs {
		root := d.Root.Copy()
		injectCallsTree(root, callNames)
		if err := tr.System.AddDocument(tree.NewDocument(d.Name, root)); err != nil {
			return nil, err
		}
	}
	for _, sq := range services {
		injectCallsPattern(sq.Head, callNames)
		if err := tr.System.AddQuery(sq); err != nil {
			return nil, err
		}
	}
	for _, tq := range tokenQueries {
		if err := tr.System.AddQuery(tq); err != nil {
			return nil, err
		}
	}
	if err := tr.System.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}

// EvalRSystemFull computes [q](I) of a positive+reg query over a
// positive+reg system by direct evaluation: run the Build()-form to a
// fixpoint (bounded) and Snapshot directly.
func EvalRSystemFull(rs *RSystem, rq *RQuery, opts core.RunOptions) (tree.Forest, bool, error) {
	s, err := rs.Build()
	if err != nil {
		return nil, false, err
	}
	run := s.Run(opts)
	if run.Err != nil {
		return nil, false, run.Err
	}
	docs := query.Docs{}
	for _, name := range s.DocNames() {
		docs[name] = s.Document(name).Root
	}
	ans, err := Snapshot(rq, docs)
	if err != nil {
		return nil, false, err
	}
	return ans, run.Terminated, nil
}

// rsystemAlphabet collects labels from documents, service queries and the
// top query.
func rsystemAlphabet(rs *RSystem, rq *RQuery) []string {
	set := map[string]bool{}
	for _, d := range rs.Docs {
		d.Root.Walk(func(n, _ *tree.Node) bool {
			if n.Kind == tree.Label {
				set[n.Name] = true
			}
			return true
		})
	}
	var walkP func(p *pattern.Node)
	walkP = func(p *pattern.Node) {
		if p == nil {
			return
		}
		if p.Kind == pattern.ConstLabel {
			set[p.Name] = true
		}
		for _, c := range p.Children {
			walkP(c)
		}
	}
	var walkR func(n *RNode)
	walkR = func(n *RNode) {
		if n == nil {
			return
		}
		if !n.IsPath && n.Kind == pattern.ConstLabel {
			set[n.Name] = true
		}
		if n.IsPath {
			collectRegexLabels(n.Expr, set)
		}
		for _, c := range n.Children {
			walkR(c)
		}
	}
	for _, q := range append(append([]*RQuery(nil), rs.Services...), rq) {
		walkP(q.Head)
		for _, a := range q.Body {
			walkR(a.Pattern)
		}
	}
	out := make([]string, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}
