package pathexpr

import (
	"fmt"
	"sort"

	"axml/internal/core"
	"axml/internal/pattern"
	"axml/internal/query"
	"axml/internal/tree"
)

// Translation is the output of the ψ translation of Proposition 5.1: a
// plain positive system and query computing the same result as the
// positive+reg input.
type Translation struct {
	// System is the translated system I′: the original documents with
	// annotation calls injected at every label node, the original
	// services with the same injection applied to their heads, plus the
	// token seed/step services.
	System *core.System
	// Query is the translated plain positive query q′.
	Query *query.Query
	// TokenServices lists the names of the added services (for stats).
	TokenServices []string
	// Alphabet is the active label alphabet used to expand wildcards.
	Alphabet []string
}

// Translate implements ψ for a positive+reg query over a plain positive
// system. For each path node with automaton N and (already translated)
// subpattern C, it adds:
//
//   - token seed services, one per final state qf of N: at any node u
//     where C matches, emit tok_i{st{"qf"}, b_v{...}} carrying C's
//     variable bindings — "the final state is stored in all nodes";
//   - token step services, one per transition (q, a, p): a node u whose
//     child labeled a carries a token in state p gets the token in state
//     q — the automaton transitions computed backwards, states
//     propagating upward (the paper's construction);
//
// and replaces the path node by the plain child pattern
// tok_i{st{"q0"}, b_v{...}}. Calls to the seed/step services are injected
// at every label node of every document and of every original service
// head, so new data is annotated too. The translation is polynomial and
// preserves simplicity (Prop 5.1(2)).
//
// Exactness caveats (documented deviations from the idealized claim):
// wildcard transitions are expanded over the active label alphabet, and
// the original services must not capture annotation labels via label or
// function variables matching arbitrary children of annotated nodes;
// subpatterns under path nodes must not bind function variables (token
// payloads would otherwise embed live calls).
func Translate(s *core.System, rq *RQuery) (*Translation, error) {
	if !s.IsPositive() {
		return nil, fmt.Errorf("pathexpr: Translate requires a positive system")
	}
	if err := rq.Validate(); err != nil {
		return nil, err
	}
	tr := &Translation{System: core.NewSystem()}
	alphabet := activeAlphabet(s, rq)
	tr.Alphabet = alphabet

	// Translate the query body, collecting one machine per path node.
	var machines []*tokenMachine
	q := &query.Query{Name: rq.Name, Head: rq.Head.Copy(), Ineqs: append([]query.Ineq(nil), rq.Ineqs...)}
	for _, a := range rq.Body {
		p, err := translateRNode(a.Pattern, &machines)
		if err != nil {
			return nil, err
		}
		q.Body = append(q.Body, query.Atom{Doc: a.Doc, Pattern: p})
	}
	tr.Query = q

	// Build seed/step service definitions.
	var svcQueries []*query.Query
	for _, m := range machines {
		qs, err := m.services(alphabet)
		if err != nil {
			return nil, err
		}
		svcQueries = append(svcQueries, qs...)
	}
	var callNames []string
	for _, sq := range svcQueries {
		callNames = append(callNames, sq.Name)
		tr.TokenServices = append(tr.TokenServices, sq.Name)
	}

	// Documents: copy with calls injected at every label node.
	for _, name := range s.DocNames() {
		root := s.Document(name).Root.Copy()
		injectCallsTree(root, callNames)
		if err := tr.System.AddDocument(tree.NewDocument(name, root)); err != nil {
			return nil, err
		}
	}
	// Original services: heads injected so produced data is annotated.
	for _, fname := range s.FuncNames() {
		qs := s.Service(fname).(*core.QueryService)
		orig := qs.Query
		inj := &query.Query{
			Name:  orig.Name,
			Head:  orig.Head.Copy(),
			Ineqs: append([]query.Ineq(nil), orig.Ineqs...),
		}
		for _, a := range orig.Body {
			inj.Body = append(inj.Body, query.Atom{Doc: a.Doc, Pattern: a.Pattern.Copy()})
		}
		injectCallsPattern(inj.Head, callNames)
		if err := tr.System.AddQuery(inj); err != nil {
			return nil, err
		}
	}
	// Token services last (they do not need injection: token trees carry
	// no further path annotations).
	for _, sq := range svcQueries {
		if err := tr.System.AddQuery(sq); err != nil {
			return nil, err
		}
	}
	if err := tr.System.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}

// tokenMachine is the translation state for one path node occurrence.
type tokenMachine struct {
	id   int
	nfa  *NFA
	sub  []*pattern.Node // translated subpattern (plain)
	vars []varSpec       // payload variables, ordered
}

type varSpec struct {
	name string
	kind pattern.Kind
}

func (m *tokenMachine) tokLabel() string { return fmt.Sprintf("ptok%d", m.id) }

// tokenPattern builds tok_i{st{"q"}, b_v{var}...} as a pattern.
func (m *tokenMachine) tokenPattern(state int) *pattern.Node {
	n := pattern.Label(m.tokLabel(), pattern.Label("st", pattern.Value(fmt.Sprintf("%d", state))))
	for _, v := range m.vars {
		n.Children = append(n.Children, pattern.Label("b-"+v.name, &pattern.Node{Kind: v.kind, Name: v.name}))
	}
	return n
}

// services builds the seed and step service queries.
func (m *tokenMachine) services(alphabet []string) ([]*query.Query, error) {
	var out []*query.Query
	// Seeds: one per final state.
	var finals []int
	for f := range m.nfa.Finals {
		finals = append(finals, f)
	}
	sort.Ints(finals)
	for _, qf := range finals {
		body := pattern.LVar(fmt.Sprintf("ctx%d", m.id))
		for _, c := range m.sub {
			body.Children = append(body.Children, c.Copy())
		}
		out = append(out, &query.Query{
			Name: fmt.Sprintf("pseed%d-%d", m.id, qf),
			Head: m.tokenPattern(qf),
			Body: []query.Atom{{Doc: tree.Context, Pattern: body}},
		})
	}
	// Steps: one per transition; wildcards expanded over the alphabet.
	for ti, t := range m.nfa.AllTransitions() {
		labels := []string{t.Label}
		if t.Label == "" {
			labels = alphabet
		}
		for li, label := range labels {
			inner := pattern.Label(label, m.tokenPattern(t.To))
			body := pattern.LVar(fmt.Sprintf("ctx%d", m.id), inner)
			out = append(out, &query.Query{
				Name: fmt.Sprintf("pstep%d-%d-%d", m.id, ti, li),
				Head: m.tokenPattern(t.From),
				Body: []query.Atom{{Doc: tree.Context, Pattern: body}},
			})
		}
	}
	return out, nil
}

// translateRNode rewrites path nodes bottom-up into token child patterns,
// appending a machine per path node.
func translateRNode(n *RNode, machines *[]*tokenMachine) (*pattern.Node, error) {
	if n.IsPath {
		// Children first (inner path nodes become token patterns that
		// the outer machine's seed matches on).
		var sub []*pattern.Node
		for _, c := range n.Children {
			cp, err := translateRNode(c, machines)
			if err != nil {
				return nil, err
			}
			sub = append(sub, cp)
		}
		m := &tokenMachine{id: len(*machines), nfa: n.NFA, sub: sub}
		vars := map[string]pattern.Kind{}
		for _, c := range sub {
			if err := c.Vars(vars); err != nil {
				return nil, err
			}
		}
		var names []string
		for v := range vars {
			names = append(names, v)
		}
		sort.Strings(names)
		for _, v := range names {
			k := vars[v]
			if k == pattern.VarFunc {
				return nil, fmt.Errorf("pathexpr: function variable ^%s under a path node cannot be carried in token payloads", v)
			}
			if k == pattern.VarTree {
				return nil, fmt.Errorf("pathexpr: tree variable #%s under a path node would make the translation non-simple; use the direct evaluator", v)
			}
			m.vars = append(m.vars, varSpec{name: v, kind: k})
		}
		*machines = append(*machines, m)
		return m.tokenPattern(m.nfa.Start), nil
	}
	p := &pattern.Node{Kind: n.Kind, Name: n.Name}
	for _, c := range n.Children {
		cp, err := translateRNode(c, machines)
		if err != nil {
			return nil, err
		}
		p.Children = append(p.Children, cp)
	}
	return p, nil
}

// injectCallsTree adds one call per service name at every label node.
func injectCallsTree(n *tree.Node, names []string) {
	if n.Kind == tree.Label {
		for _, name := range names {
			n.Children = append(n.Children, tree.NewFunc(name))
		}
	}
	for _, c := range n.Children {
		if c.Kind == tree.Func {
			continue // params keep their shape; calls are injected where data lives
		}
		injectCallsTree(c, names)
	}
}

// injectCallsPattern adds calls at every label-producing head node
// (constant labels and label variables).
func injectCallsPattern(p *pattern.Node, names []string) {
	if p.Kind == pattern.ConstLabel || p.Kind == pattern.VarLabel {
		for _, name := range names {
			p.Children = append(p.Children, pattern.Func(name))
		}
	}
	for _, c := range p.Children {
		if c.Kind == pattern.ConstFunc {
			continue
		}
		injectCallsPattern(c, names)
	}
}

// activeAlphabet collects the labels that can ever appear in the system or
// be tested by the query: labels in documents, labels in service heads and
// bodies, and labels in the query. Annotation labels are excluded by
// construction (they do not exist yet).
func activeAlphabet(s *core.System, rq *RQuery) []string {
	set := map[string]bool{}
	for _, name := range s.DocNames() {
		s.Document(name).Root.Walk(func(n, _ *tree.Node) bool {
			if n.Kind == tree.Label {
				set[n.Name] = true
			}
			return true
		})
	}
	var walkP func(p *pattern.Node)
	walkP = func(p *pattern.Node) {
		if p == nil {
			return
		}
		if p.Kind == pattern.ConstLabel {
			set[p.Name] = true
		}
		for _, c := range p.Children {
			walkP(c)
		}
	}
	for _, fname := range s.FuncNames() {
		if qs, ok := s.Service(fname).(*core.QueryService); ok {
			walkP(qs.Query.Head)
			for _, a := range qs.Query.Body {
				walkP(a.Pattern)
			}
		}
	}
	var walkR func(n *RNode)
	walkR = func(n *RNode) {
		if n == nil {
			return
		}
		if !n.IsPath && n.Kind == pattern.ConstLabel {
			set[n.Name] = true
		}
		if n.IsPath {
			collectRegexLabels(n.Expr, set)
		}
		for _, c := range n.Children {
			walkR(c)
		}
	}
	walkP(rq.Head)
	for _, a := range rq.Body {
		walkR(a.Pattern)
	}
	out := make([]string, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

func collectRegexLabels(r Regex, set map[string]bool) {
	switch r := r.(type) {
	case Atom:
		set[r.Label] = true
	case Concat:
		for _, p := range r.Parts {
			collectRegexLabels(p, set)
		}
	case AltExpr:
		for _, p := range r.Branches {
			collectRegexLabels(p, set)
		}
	case Star:
		collectRegexLabels(r.Inner, set)
	case PlusExpr:
		collectRegexLabels(r.Inner, set)
	case Opt:
		collectRegexLabels(r.Inner, set)
	}
}
