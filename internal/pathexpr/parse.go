package pathexpr

import (
	"fmt"
	"strings"
	"unicode"

	"axml/internal/pattern"
	"axml/internal/query"
)

// ParseRPattern parses a positive+reg pattern. The syntax extends the
// plain pattern syntax with path nodes written <regex>:
//
//	portal{<(section|sub)*.cd>{title{$t}}}
func ParseRPattern(src string) (*RNode, error) {
	p := &rqParser{src: src}
	n, err := p.pattern()
	if err != nil {
		return nil, err
	}
	p.skip()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("pathexpr: trailing input at %d in %q", p.pos, src)
	}
	return n, nil
}

// MustParseRPattern is ParseRPattern panicking on error.
func MustParseRPattern(src string) *RNode {
	n, err := ParseRPattern(src)
	if err != nil {
		panic(err)
	}
	return n
}

// ParseRQuery parses a positive+reg query "head :- body" where the head is
// a plain pattern and body atoms may use path nodes.
func ParseRQuery(src string) (*RQuery, error) {
	p := &rqParser{src: src}
	headNode, err := p.pattern()
	if err != nil {
		return nil, err
	}
	head, err := headNode.ToPattern()
	if err != nil {
		return nil, fmt.Errorf("pathexpr: path nodes are not allowed in query heads: %w", err)
	}
	p.skip()
	if !strings.HasPrefix(p.src[p.pos:], ":-") {
		return nil, fmt.Errorf("pathexpr: expected ':-' at %d in %q", p.pos, src)
	}
	p.pos += 2
	q := &RQuery{Head: head}
	p.skip()
	for p.pos < len(p.src) {
		if err := p.bodyItem(q); err != nil {
			return nil, err
		}
		p.skip()
		if p.pos < len(p.src) && p.src[p.pos] == ',' {
			p.pos++
			p.skip()
			continue
		}
		break
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

// MustParseRQuery is ParseRQuery panicking on error.
func MustParseRQuery(src string) *RQuery {
	q, err := ParseRQuery(src)
	if err != nil {
		panic(err)
	}
	return q
}

type rqParser struct {
	src string
	pos int
}

func (p *rqParser) skip() {
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			p.pos++
			continue
		}
		return
	}
}

func (p *rqParser) peek() byte {
	p.skip()
	if p.pos >= len(p.src) {
		return 0
	}
	return p.src[p.pos]
}

func (p *rqParser) ident() (string, error) {
	p.skip()
	start := p.pos
	for p.pos < len(p.src) {
		r := rune(p.src[p.pos])
		if !(unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-' || r == '.') {
			break
		}
		p.pos++
	}
	if p.pos == start {
		return "", fmt.Errorf("pathexpr: expected identifier at %d in %q", p.pos, p.src)
	}
	return p.src[start:p.pos], nil
}

func (p *rqParser) quoted() (string, error) {
	p.pos++ // opening quote
	var b strings.Builder
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		switch c {
		case '"':
			p.pos++
			return b.String(), nil
		case '\\':
			if p.pos+1 >= len(p.src) {
				return "", fmt.Errorf("pathexpr: unterminated escape")
			}
			b.WriteByte(p.src[p.pos+1])
			p.pos += 2
		default:
			b.WriteByte(c)
			p.pos++
		}
	}
	return "", fmt.Errorf("pathexpr: unterminated string")
}

func (p *rqParser) pattern() (*RNode, error) {
	var n *RNode
	switch c := p.peek(); {
	case c == '<':
		p.pos++
		end := strings.IndexByte(p.src[p.pos:], '>')
		if end < 0 {
			return nil, fmt.Errorf("pathexpr: missing '>' for path node at %d", p.pos)
		}
		expr, err := ParseRegex(p.src[p.pos : p.pos+end])
		if err != nil {
			return nil, err
		}
		p.pos += end + 1
		n = PathNode(expr)
	case c == '"':
		s, err := p.quoted()
		if err != nil {
			return nil, err
		}
		return &RNode{Kind: pattern.ConstValue, Name: s}, nil
	case c == '!':
		p.pos++
		id, err := p.ident()
		if err != nil {
			return nil, err
		}
		n = &RNode{Kind: pattern.ConstFunc, Name: id}
	case c == '%' || c == '$' || c == '^' || c == '#':
		p.pos++
		id, err := p.ident()
		if err != nil {
			return nil, err
		}
		var k pattern.Kind
		switch c {
		case '%':
			k = pattern.VarLabel
		case '$':
			k = pattern.VarValue
		case '^':
			k = pattern.VarFunc
		default:
			k = pattern.VarTree
		}
		n = &RNode{Kind: k, Name: id}
	case c >= '0' && c <= '9' || c == '-':
		start := p.pos
		if c == '-' {
			p.pos++
		}
		for p.pos < len(p.src) && (p.src[p.pos] >= '0' && p.src[p.pos] <= '9' || p.src[p.pos] == '.') {
			p.pos++
		}
		return &RNode{Kind: pattern.ConstValue, Name: p.src[start:p.pos]}, nil
	default:
		id, err := p.ident()
		if err != nil {
			return nil, err
		}
		n = &RNode{Kind: pattern.ConstLabel, Name: id}
	}
	if p.peek() == '{' {
		p.pos++
		for {
			c, err := p.pattern()
			if err != nil {
				return nil, err
			}
			n.Children = append(n.Children, c)
			if p.peek() == ',' {
				p.pos++
				continue
			}
			break
		}
		if p.peek() != '}' {
			return nil, fmt.Errorf("pathexpr: missing '}' at %d in %q", p.pos, p.src)
		}
		p.pos++
	}
	return n, nil
}

// bodyItem parses an atom doc/rpattern or an inequality.
func (p *rqParser) bodyItem(q *RQuery) error {
	c := p.peek()
	if c == '%' || c == '$' || c == '^' || c == '"' {
		left, err := p.ineqTerm()
		if err != nil {
			return err
		}
		p.skip()
		if !strings.HasPrefix(p.src[p.pos:], "!=") {
			return fmt.Errorf("pathexpr: expected '!=' at %d", p.pos)
		}
		p.pos += 2
		right, err := p.ineqTerm()
		if err != nil {
			return err
		}
		q.Ineqs = append(q.Ineqs, query.Ineq{Left: left, Right: right})
		return nil
	}
	doc, err := p.ident()
	if err != nil {
		return err
	}
	if p.peek() != '/' {
		return fmt.Errorf("pathexpr: expected '/' after document name %q at %d", doc, p.pos)
	}
	p.pos++
	pat, err := p.pattern()
	if err != nil {
		return err
	}
	q.Body = append(q.Body, RAtom{Doc: doc, Pattern: pat})
	return nil
}

func (p *rqParser) ineqTerm() (query.Term, error) {
	switch c := p.peek(); c {
	case '"':
		s, err := p.quoted()
		if err != nil {
			return query.Term{}, err
		}
		return query.Constant(s), nil
	case '%', '$', '^':
		p.pos++
		id, err := p.ident()
		if err != nil {
			return query.Term{}, err
		}
		return query.Variable(id), nil
	default:
		return query.Term{}, fmt.Errorf("pathexpr: bad inequality term at %d", p.pos)
	}
}
