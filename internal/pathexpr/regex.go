// Package pathexpr implements the regular-path-expression extension of
// Section 5: positive+reg tree patterns, where a pattern edge may carry a
// regular expression over labels instead of a single label; direct
// evaluation by NFA product with the document tree; and the ψ translation
// of Proposition 5.1, which compiles a positive+reg query over a positive
// system into a plain positive query over a plain positive system — in
// polynomial time, preserving simplicity, query results and stability.
package pathexpr

import (
	"fmt"
	"strings"
	"unicode"
)

// Regex is the AST of a regular expression over labels.
//
// Concrete syntax: labels are identifiers, '_' matches any label, '.' is
// concatenation, '|' alternation, '*' '+' '?' the usual postfix
// quantifiers, parentheses group:
//
//	section.(sub|_)*.title
type Regex interface {
	String() string
	regexNode()
}

// Atom matches exactly one edge whose target is a data node labeled Label.
type Atom struct{ Label string }

// Any matches one edge to a data node with any label.
type Any struct{}

// Concat matches the concatenation of its parts.
type Concat struct{ Parts []Regex }

// AltExpr matches any one of its branches.
type AltExpr struct{ Branches []Regex }

// Star matches zero or more repetitions.
type Star struct{ Inner Regex }

// PlusExpr matches one or more repetitions.
type PlusExpr struct{ Inner Regex }

// Opt matches zero or one occurrence.
type Opt struct{ Inner Regex }

func (Atom) regexNode()     {}
func (Any) regexNode()      {}
func (Concat) regexNode()   {}
func (AltExpr) regexNode()  {}
func (Star) regexNode()     {}
func (PlusExpr) regexNode() {}
func (Opt) regexNode()      {}

// String renders the atom.
func (a Atom) String() string { return a.Label }

// String renders the wildcard.
func (Any) String() string { return "_" }

// String renders the concatenation.
func (c Concat) String() string {
	parts := make([]string, len(c.Parts))
	for i, p := range c.Parts {
		parts[i] = maybeParen(p, precConcat)
	}
	return strings.Join(parts, ".")
}

// String renders the alternation.
func (a AltExpr) String() string {
	parts := make([]string, len(a.Branches))
	for i, p := range a.Branches {
		parts[i] = maybeParen(p, precAlt)
	}
	return strings.Join(parts, "|")
}

// String renders the starred expression.
func (s Star) String() string { return maybeParen(s.Inner, precPostfix) + "*" }

// String renders the plus expression.
func (p PlusExpr) String() string { return maybeParen(p.Inner, precPostfix) + "+" }

// String renders the optional expression.
func (o Opt) String() string { return maybeParen(o.Inner, precPostfix) + "?" }

const (
	precAlt = iota
	precConcat
	precPostfix
)

func prec(r Regex) int {
	switch r.(type) {
	case AltExpr:
		return precAlt
	case Concat:
		return precConcat
	default:
		return precPostfix
	}
}

func maybeParen(r Regex, min int) string {
	if prec(r) < min {
		return "(" + r.String() + ")"
	}
	return r.String()
}

// ParseRegex parses the concrete regex syntax.
func ParseRegex(src string) (Regex, error) {
	p := &reParser{src: src}
	r, err := p.alt()
	if err != nil {
		return nil, err
	}
	p.skip()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("pathexpr: trailing input at %d in %q", p.pos, src)
	}
	return r, nil
}

// MustParseRegex is ParseRegex panicking on error.
func MustParseRegex(src string) Regex {
	r, err := ParseRegex(src)
	if err != nil {
		panic(err)
	}
	return r
}

type reParser struct {
	src string
	pos int
}

func (p *reParser) skip() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
	}
}

func (p *reParser) peek() byte {
	p.skip()
	if p.pos >= len(p.src) {
		return 0
	}
	return p.src[p.pos]
}

func (p *reParser) alt() (Regex, error) {
	first, err := p.concat()
	if err != nil {
		return nil, err
	}
	branches := []Regex{first}
	for p.peek() == '|' {
		p.pos++
		next, err := p.concat()
		if err != nil {
			return nil, err
		}
		branches = append(branches, next)
	}
	if len(branches) == 1 {
		return first, nil
	}
	return AltExpr{Branches: branches}, nil
}

func (p *reParser) concat() (Regex, error) {
	first, err := p.postfix()
	if err != nil {
		return nil, err
	}
	parts := []Regex{first}
	for p.peek() == '.' {
		p.pos++
		next, err := p.postfix()
		if err != nil {
			return nil, err
		}
		parts = append(parts, next)
	}
	if len(parts) == 1 {
		return first, nil
	}
	return Concat{Parts: parts}, nil
}

func (p *reParser) postfix() (Regex, error) {
	r, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		switch p.peek() {
		case '*':
			p.pos++
			r = Star{Inner: r}
		case '+':
			p.pos++
			r = PlusExpr{Inner: r}
		case '?':
			p.pos++
			r = Opt{Inner: r}
		default:
			return r, nil
		}
	}
}

func (p *reParser) primary() (Regex, error) {
	switch c := p.peek(); {
	case c == '(':
		p.pos++
		r, err := p.alt()
		if err != nil {
			return nil, err
		}
		if p.peek() != ')' {
			return nil, fmt.Errorf("pathexpr: missing ')' at %d in %q", p.pos, p.src)
		}
		p.pos++
		return r, nil
	case c == '_':
		p.pos++
		return Any{}, nil
	case c == '_' || unicode.IsLetter(rune(c)):
		start := p.pos
		for p.pos < len(p.src) {
			r := rune(p.src[p.pos])
			if !(unicode.IsLetter(r) || unicode.IsDigit(r) || r == '-' || r == '_') {
				break
			}
			p.pos++
		}
		return Atom{Label: p.src[start:p.pos]}, nil
	default:
		return nil, fmt.Errorf("pathexpr: unexpected %q at %d in %q", c, p.pos, p.src)
	}
}
