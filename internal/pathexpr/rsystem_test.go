package pathexpr

import (
	"testing"

	"axml/internal/core"
	"axml/internal/syntax"
	"axml/internal/tree"
)

// Proposition 5.1 for full positive+reg systems: services themselves use
// path expressions; the translated plain system computes the same query
// result.
func TestTranslateSystemWithPathServices(t *testing.T) {
	// The collect service gathers deeply nested titles into an index
	// document; the query then reads the index through another path.
	rs := &RSystem{
		Docs: []*tree.Document{
			tree.NewDocument("lib", syntax.MustParseDocument(
				`lib{section{sub{cd{title{"x"}}},cd{title{"y"}}}}`)),
			tree.NewDocument("index", syntax.MustParseDocument(`idx{box,!collect}`)),
		},
		Services: []*RQuery{
			named(MustParseRQuery(`found{title{$t}} :- lib/lib{<(section|sub)*.cd.title>{$t}}`), "collect"),
		},
	}
	rq := MustParseRQuery(`out{$t} :- index/idx{<found.title>{$t}}`)

	direct, exact, err := EvalRSystemFull(rs, rq, core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !exact {
		t.Fatal("direct evaluation did not terminate")
	}
	if len(direct) != 2 {
		t.Fatalf("direct = %s", direct.CanonicalString())
	}

	trans, err := TranslateSystem(rs, rq)
	if err != nil {
		t.Fatal(err)
	}
	if !trans.System.IsSimple() || !trans.Query.IsSimple() {
		t.Fatal("translation lost simplicity")
	}
	res, err := trans.System.EvalQuery(trans.Query, core.RunOptions{MaxSteps: 2_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact {
		t.Fatalf("translated system did not terminate: %+v", res.Run)
	}
	if direct.CanonicalString() != res.Answer.CanonicalString() {
		t.Fatalf("full-system ψ broke results:\ndirect     %s\ntranslated %s",
			direct.CanonicalString(), res.Answer.CanonicalString())
	}
}

func TestRSystemBuildValidation(t *testing.T) {
	bad := &RSystem{Services: []*RQuery{{Head: nil}}}
	if _, err := bad.Build(); err == nil {
		t.Fatal("nil-head service accepted")
	}
	unnamed := &RSystem{
		Docs:     []*tree.Document{tree.NewDocument("d", syntax.MustParseDocument(`a`))},
		Services: []*RQuery{MustParseRQuery(`out :- d/a`)},
	}
	if _, err := unnamed.Build(); err == nil {
		t.Fatal("unnamed service accepted")
	}
	if _, err := TranslateSystem(unnamed, MustParseRQuery(`out :- d/a`)); err == nil {
		t.Fatal("TranslateSystem accepted unnamed service")
	}
}

func TestRSystemBuildDoesNotAliasDocs(t *testing.T) {
	doc := tree.NewDocument("d", syntax.MustParseDocument(`a{b}`))
	rs := &RSystem{Docs: []*tree.Document{doc}}
	s, err := rs.Build()
	if err != nil {
		t.Fatal(err)
	}
	s.Document("d").Root.Name = "mutated"
	if doc.Root.Name == "mutated" {
		t.Fatal("Build aliased the input document")
	}
}

func named(q *RQuery, name string) *RQuery {
	q.Name = name
	return q
}
