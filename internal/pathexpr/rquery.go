package pathexpr

import (
	"context"
	"fmt"
	"strings"

	"axml/internal/core"
	"axml/internal/pattern"
	"axml/internal/query"
	"axml/internal/subsume"
	"axml/internal/tree"
)

// RNode is a positive+reg tree pattern node: either an ordinary pattern
// node (constant or variable, as in package pattern) or a path node
// carrying a regular expression. A path node placed under a parent matches
// when some downward path from the parent's match, whose label word
// belongs to the regex language, ends at a node where the path node's
// children match. A path accepting the empty word may end at the parent
// itself.
type RNode struct {
	// IsPath distinguishes path nodes.
	IsPath bool
	// Expr and NFA are set for path nodes.
	Expr Regex
	NFA  *NFA
	// Kind and Name are set for ordinary nodes.
	Kind pattern.Kind
	Name string
	// Children continue below the node (for path nodes: below the path's
	// end node).
	Children []*RNode
}

// PathNode returns a path node over the given regex.
func PathNode(r Regex, children ...*RNode) *RNode {
	return &RNode{IsPath: true, Expr: r, NFA: CompileRegex(r), Children: children}
}

// FromPattern converts a plain pattern into an RNode tree.
func FromPattern(p *pattern.Node) *RNode {
	if p == nil {
		return nil
	}
	n := &RNode{Kind: p.Kind, Name: p.Name}
	for _, c := range p.Children {
		n.Children = append(n.Children, FromPattern(c))
	}
	return n
}

// ToPattern converts back to a plain pattern; it fails if any path node
// remains.
func (n *RNode) ToPattern() (*pattern.Node, error) {
	if n == nil {
		return nil, nil
	}
	if n.IsPath {
		return nil, fmt.Errorf("pathexpr: pattern still contains path node <%s>", n.Expr)
	}
	p := &pattern.Node{Kind: n.Kind, Name: n.Name}
	for _, c := range n.Children {
		cp, err := c.ToPattern()
		if err != nil {
			return nil, err
		}
		p.Children = append(p.Children, cp)
	}
	return p, nil
}

// HasPath reports whether any path node occurs in the pattern.
func (n *RNode) HasPath() bool {
	if n == nil {
		return false
	}
	if n.IsPath {
		return true
	}
	for _, c := range n.Children {
		if c.HasPath() {
			return true
		}
	}
	return false
}

// IsSimple reports whether the pattern uses no tree variables.
func (n *RNode) IsSimple() bool {
	if n == nil {
		return true
	}
	if !n.IsPath && n.Kind == pattern.VarTree {
		return false
	}
	for _, c := range n.Children {
		if !c.IsSimple() {
			return false
		}
	}
	return true
}

// Vars collects variable kinds, like pattern.Node.Vars.
func (n *RNode) Vars(dst map[string]pattern.Kind) error {
	if n == nil {
		return nil
	}
	if !n.IsPath && n.Kind.IsVar() {
		if prev, ok := dst[n.Name]; ok && prev != n.Kind {
			return fmt.Errorf("pathexpr: variable %q used both as %s and %s", n.Name, prev, n.Kind)
		}
		dst[n.Name] = n.Kind
	}
	for _, c := range n.Children {
		if err := c.Vars(dst); err != nil {
			return err
		}
	}
	return nil
}

// String renders the pattern, path nodes as <regex>.
func (n *RNode) String() string {
	var b strings.Builder
	n.write(&b)
	return b.String()
}

func (n *RNode) write(b *strings.Builder) {
	if n.IsPath {
		b.WriteByte('<')
		b.WriteString(n.Expr.String())
		b.WriteByte('>')
	} else {
		switch n.Kind {
		case pattern.ConstValue:
			fmt.Fprintf(b, "%q", n.Name)
		case pattern.ConstFunc:
			b.WriteByte('!')
			b.WriteString(n.Name)
		case pattern.ConstLabel:
			b.WriteString(n.Name)
		default:
			b.WriteByte(n.Kind.Sigil())
			b.WriteString(n.Name)
		}
	}
	if len(n.Children) == 0 {
		return
	}
	b.WriteByte('{')
	for i, c := range n.Children {
		if i > 0 {
			b.WriteByte(',')
		}
		c.write(b)
	}
	b.WriteByte('}')
}

// RAtom is one positive+reg body conjunct.
type RAtom struct {
	Doc     string
	Pattern *RNode
}

// RQuery is a positive+reg query: a plain head over a body whose patterns
// may use path nodes.
type RQuery struct {
	Name  string
	Head  *pattern.Node
	Body  []RAtom
	Ineqs []query.Ineq
}

// IsSimple reports whether head and body use no tree variables.
func (q *RQuery) IsSimple() bool {
	if !q.Head.IsSimple() {
		return false
	}
	for _, a := range q.Body {
		if !a.Pattern.IsSimple() {
			return false
		}
	}
	return true
}

// HasPath reports whether any body pattern uses a path node.
func (q *RQuery) HasPath() bool {
	for _, a := range q.Body {
		if a.Pattern.HasPath() {
			return true
		}
	}
	return false
}

// Validate checks safety, mirroring query.Validate.
func (q *RQuery) Validate() error {
	if q.Head == nil {
		return fmt.Errorf("pathexpr: query %s: nil head", q.Name)
	}
	bodyVars := map[string]pattern.Kind{}
	for _, a := range q.Body {
		if a.Pattern == nil {
			return fmt.Errorf("pathexpr: query %s: nil pattern for %q", q.Name, a.Doc)
		}
		if err := a.Pattern.Vars(bodyVars); err != nil {
			return err
		}
	}
	headVars := map[string]pattern.Kind{}
	if err := q.Head.Vars(headVars); err != nil {
		return err
	}
	for v, k := range headVars {
		bk, ok := bodyVars[v]
		if !ok {
			return fmt.Errorf("pathexpr: query %s: head variable %c%s not bound in body", q.Name, k.Sigil(), v)
		}
		if bk != k {
			return fmt.Errorf("pathexpr: query %s: variable %s kind mismatch", q.Name, v)
		}
	}
	for _, e := range q.Ineqs {
		for _, t := range []query.Term{e.Left, e.Right} {
			if t.Var == "" {
				continue
			}
			if k, ok := bodyVars[t.Var]; !ok || k == pattern.VarTree {
				return fmt.Errorf("pathexpr: query %s: bad inequality variable %s", q.Name, t.Var)
			}
		}
	}
	return nil
}

// String renders the query in the concrete syntax ParseRQuery accepts
// (inequality variables carry the sigil of their kind, resolved from the
// body).
func (q *RQuery) String() string {
	kinds := map[string]pattern.Kind{}
	for _, a := range q.Body {
		_ = a.Pattern.Vars(kinds) // best effort; String never fails
	}
	renderTerm := func(t query.Term) string {
		if t.Var == "" {
			return fmt.Sprintf("%q", t.Const)
		}
		if k, ok := kinds[t.Var]; ok && k.Sigil() != 0 {
			return string(k.Sigil()) + t.Var
		}
		return "$" + t.Var
	}
	var parts []string
	for _, a := range q.Body {
		parts = append(parts, a.Doc+"/"+a.Pattern.String())
	}
	for _, e := range q.Ineqs {
		parts = append(parts, renderTerm(e.Left)+" != "+renderTerm(e.Right))
	}
	return q.Head.String() + " :- " + strings.Join(parts, ", ")
}

// Snapshot evaluates the positive+reg query directly on the document
// binding (no call invocation), by walking the NFA of each path node down
// the trees.
func Snapshot(q *RQuery, docs query.Docs) (tree.Forest, error) {
	asns := []pattern.Assignment{{}}
	for _, a := range q.Body {
		doc := docs[a.Doc]
		if doc == nil {
			return nil, nil
		}
		var next []pattern.Assignment
		for _, asn := range asns {
			next = append(next, matchR(a.Pattern, doc, asn)...)
		}
		if len(next) == 0 {
			return nil, nil
		}
		asns = dedup(next)
	}
	var out tree.Forest
	for _, asn := range asns {
		if ok := ineqsSatisfied(q.Ineqs, asn); !ok {
			continue
		}
		t, err := pattern.Instantiate(q.Head, asn)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return subsume.ReduceForest(out), nil
}

func ineqsSatisfied(ineqs []query.Ineq, asn pattern.Assignment) bool {
	val := func(t query.Term) (string, bool) {
		if t.Var == "" {
			return t.Const, true
		}
		b, ok := asn[t.Var]
		if !ok || b.Tree != nil {
			return "", false
		}
		return b.Atom, true
	}
	for _, e := range ineqs {
		l, ok1 := val(e.Left)
		r, ok2 := val(e.Right)
		if !ok1 || !ok2 || l == r {
			return false
		}
	}
	return true
}

// matchR matches an RNode at a document node.
func matchR(p *RNode, d *tree.Node, asn pattern.Assignment) []pattern.Assignment {
	if p.IsPath {
		// A path node at the root of a pattern anchors at the document
		// root itself.
		return matchPathFrom(p, d, asn)
	}
	next, ok := bindRMarking(p, d, asn)
	if !ok {
		return nil
	}
	if p.Kind == pattern.VarTree {
		return []pattern.Assignment{next}
	}
	return matchRChildren(p.Children, d, []pattern.Assignment{next})
}

// matchRChildren places each pattern child: ordinary children map into
// some child of d; path children anchor at d itself.
func matchRChildren(pcs []*RNode, d *tree.Node, asns []pattern.Assignment) []pattern.Assignment {
	for _, pc := range pcs {
		var extended []pattern.Assignment
		for _, asn := range asns {
			if pc.IsPath {
				extended = append(extended, matchPathFrom(pc, d, asn)...)
			} else {
				for _, dc := range d.Children {
					extended = append(extended, matchR(pc, dc, asn)...)
				}
			}
		}
		if len(extended) == 0 {
			return nil
		}
		asns = dedup(extended)
	}
	return asns
}

// matchPathFrom finds all end nodes of paths from anchor whose label word
// is accepted, then matches the path node's children under each end node.
func matchPathFrom(p *RNode, anchor *tree.Node, asn pattern.Assignment) []pattern.Assignment {
	var out []pattern.Assignment
	ends := map[*tree.Node]bool{}
	var explore func(node *tree.Node, states map[int]bool)
	explore = func(node *tree.Node, states map[int]bool) {
		if len(states) == 0 {
			return
		}
		if p.NFA.AnyFinal(states) && !ends[node] {
			ends[node] = true
			out = append(out, matchRChildren(p.Children, node, []pattern.Assignment{asn})...)
		}
		for _, c := range node.Children {
			if c.Kind != tree.Label {
				continue
			}
			explore(c, p.NFA.StepSet(states, c.Name))
		}
	}
	explore(anchor, map[int]bool{p.NFA.Start: true})
	return dedup(out)
}

func bindRMarking(p *RNode, d *tree.Node, asn pattern.Assignment) (pattern.Assignment, bool) {
	pp := &pattern.Node{Kind: p.Kind, Name: p.Name}
	// Reuse the plain pattern binding logic through a single-node match.
	res := pattern.MatchUnder(pp, d, asn)
	if len(res) == 0 {
		return nil, false
	}
	return res[0], true
}

func dedup(as []pattern.Assignment) []pattern.Assignment {
	seen := make(map[string]bool, len(as))
	out := as[:0]
	for _, a := range as {
		k := a.Key()
		if !seen[k] {
			seen[k] = true
			out = append(out, a)
		}
	}
	return out
}

// RQueryService exposes a positive+reg query as a monotone service: a
// positive+reg system is a system whose services are RQueryServices.
// Monotonicity holds for the same reason as Proposition 3.1 — path
// matching is existential, hence monotone.
type RQueryService struct {
	Query *RQuery
}

// NewRQueryService validates and wraps the query.
func NewRQueryService(q *RQuery) (*RQueryService, error) {
	if q == nil || q.Name == "" {
		return nil, fmt.Errorf("pathexpr: RQueryService needs a named query")
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return &RQueryService{Query: q}, nil
}

// ServiceName implements core.Service.
func (s *RQueryService) ServiceName() string { return s.Query.Name }

// Invoke implements core.Service by direct snapshot evaluation.
// Evaluation is pure and never blocks, so the context is only consulted
// on entry.
func (s *RQueryService) Invoke(ctx context.Context, b core.Binding) (tree.Forest, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	docs := query.Docs{}
	for k, v := range b.Docs {
		docs[k] = v
	}
	docs[tree.Input] = b.Input
	docs[tree.Context] = b.Context
	return Snapshot(s.Query, docs)
}

// EvalFull computes the full result [q](I) of a positive+reg query over a
// system by running a fair rewriting on a copy (bounded by opts) and
// taking the direct snapshot of the final state.
func EvalFull(s *core.System, q *RQuery, opts core.RunOptions) (tree.Forest, bool, error) {
	c := s.Copy()
	run := c.Run(opts)
	if run.Err != nil {
		return nil, false, run.Err
	}
	docs := query.Docs{}
	for _, name := range c.DocNames() {
		docs[name] = c.Document(name).Root
	}
	ans, err := Snapshot(q, docs)
	if err != nil {
		return nil, false, err
	}
	return ans, run.Terminated, nil
}
