package pathexpr

import (
	"strings"
	"testing"

	"axml/internal/core"
	"axml/internal/pattern"
	"axml/internal/query"
	"axml/internal/syntax"
)

func TestRPatternParseErrors(t *testing.T) {
	bad := []string{
		``, `a{`, `a{b`, `<`, `<a`, `<a|>{x}`, `a{$}`, `"unterminated`,
		`a{b,}`,
	}
	for _, src := range bad {
		if _, err := ParseRPattern(src); err == nil {
			t.Errorf("ParseRPattern(%q) accepted", src)
		}
	}
}

func TestRQueryParseErrors(t *testing.T) {
	bad := []string{
		``, `out`, `out :- d`, `out :- /a`, `out :- d/a{`,
		`out :- $x !=`, `out :- d/a, $x != #T`,
	}
	for _, src := range bad {
		if _, err := ParseRQuery(src); err == nil {
			t.Errorf("ParseRQuery(%q) accepted", src)
		}
	}
}

func TestRQueryStringRendering(t *testing.T) {
	q := MustParseRQuery(`out{$t} :- d/a{<(b|c)*.d>{$t}}, $t != "x"`)
	s := q.String()
	if !strings.Contains(s, "<(b|c)*.d>") {
		t.Fatalf("String = %q", s)
	}
	back, err := ParseRQuery(s)
	if err != nil {
		t.Fatalf("String output not re-parseable: %v (%q)", err, s)
	}
	if back.String() != s {
		t.Fatalf("unstable: %q vs %q", back.String(), s)
	}
}

func TestNFAStringAndTransitions(t *testing.T) {
	n := CompileRegex(MustParseRegex(`a._`))
	out := n.String()
	if !strings.Contains(out, "start=") || !strings.Contains(out, "-a->") || !strings.Contains(out, "-_->") {
		t.Fatalf("NFA.String = %q", out)
	}
	wild := 0
	for _, tr := range n.AllTransitions() {
		if tr.Label == "" {
			wild++
		}
	}
	if wild == 0 {
		t.Fatal("wildcard transition missing")
	}
	if n.AcceptsEmpty() {
		t.Fatal("a._ should not accept the empty word")
	}
	if !CompileRegex(MustParseRegex(`a*`)).AcceptsEmpty() {
		t.Fatal("a* should accept the empty word")
	}
}

func TestRNodeVarsConflict(t *testing.T) {
	n := MustParseRPattern(`a{$x,%x}`)
	if err := n.Vars(map[string]pattern.Kind{}); err == nil {
		t.Fatal("kind conflict not detected")
	}
}

func TestSnapshotMissingDocAndIneq(t *testing.T) {
	q := MustParseRQuery(`out{$t} :- nowhere/a{<b>{$t}}`)
	got, err := Snapshot(q, query.Docs{})
	if err != nil || len(got) != 0 {
		t.Fatalf("missing doc: %v %v", got, err)
	}
	q2 := MustParseRQuery(`out{$t} :- d/a{<b>{$t}}, $t != "1"`)
	docs := query.Docs{"d": syntax.MustParseDocument(`a{b{"1"},b{"2"}}`)}
	got, err = Snapshot(q2, docs)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Children[0].Name != "2" {
		t.Fatalf("ineq filtering: %s", got.CanonicalString())
	}
}

func TestEvalFullBudgeted(t *testing.T) {
	s := core.MustParseSystem("doc d = a{!f}\nfunc f = b{!f} :- ")
	rq := MustParseRQuery(`out :- d/a{<b.b.b>}`)
	ans, exact, err := EvalFull(s, rq, core.RunOptions{MaxSteps: 4})
	if err != nil {
		t.Fatal(err)
	}
	if exact {
		t.Fatal("infinite system reported exact")
	}
	if len(ans) != 1 {
		t.Fatalf("budgeted answer: %s", ans.CanonicalString())
	}
}
