package cli

import (
	"bytes"
	"fmt"
	"slices"
	"strings"
	"testing"
)

const tcFile = `
doc  d0 = r{t{a{1},b{2}},t{a{2},b{3}}}
doc  d1 = r{!g,!f}
func g = t{a{$x},b{$y}} :- d0/r{t{a{$x},b{$y}}}
func f = t{a{$x},b{$y}} :- d1/r{t{a{$x},b{$z}}}, d1/r{t{a{$z},b{$y}}}
`

func memFS(files map[string]string) func(string) ([]byte, error) {
	return func(name string) ([]byte, error) {
		if s, ok := files[name]; ok {
			return []byte(s), nil
		}
		return nil, fmt.Errorf("no such file %q", name)
	}
}

func run(t *testing.T, files map[string]string, cmd string, args ...string) string {
	t.Helper()
	var buf bytes.Buffer
	if err := Run(&buf, Options{ReadFile: memFS(files)}, cmd, args...); err != nil {
		t.Fatalf("%s %v: %v", cmd, args, err)
	}
	return buf.String()
}

func TestParseReduceSubsume(t *testing.T) {
	out := run(t, nil, "parse", `a{b{"1"},!f}`)
	if !strings.Contains(out, "!f") || !strings.Contains(out, `"1"`) {
		t.Fatalf("parse output: %q", out)
	}
	out = run(t, nil, "reduce", `a{b{c,c},b{c,d,d}}`)
	if strings.TrimSpace(out) != "a{b{c,d}}" {
		t.Fatalf("reduce output: %q", out)
	}
	if strings.TrimSpace(run(t, nil, "subsume", "a{b}", "a{b,c}")) != "true" {
		t.Fatal("subsume true case")
	}
	if strings.TrimSpace(run(t, nil, "subsume", "a{z}", "a{b,c}")) != "false" {
		t.Fatal("subsume false case")
	}
}

func TestRunQuerySnapshotLazy(t *testing.T) {
	files := map[string]string{"tc.axml": tcFile}
	out := run(t, files, "run", "tc.axml")
	if !strings.Contains(out, "terminated=true") {
		t.Fatalf("run output: %q", out)
	}
	if !strings.Contains(out, `t{a{"1"},b{"3"}}`) {
		t.Fatalf("run output missing closure pair: %q", out)
	}
	out = run(t, files, "query", "tc.axml", `pair{$x,$y} :- d1/r{t{a{$x},b{$y}}}`)
	if !strings.Contains(out, "exact=true") || !strings.Contains(out, `pair{"1","3"}`) {
		t.Fatalf("query output: %q", out)
	}
	out = run(t, files, "snapshot", "tc.axml", `pair{$x} :- d1/r{t{a{$x}}}`)
	if strings.TrimSpace(out) != "" {
		t.Fatalf("snapshot before any call should be empty: %q", out)
	}
	out = run(t, files, "lazy", "tc.axml", `pair{$x,$y} :- d1/r{t{a{$x},b{$y}}}`)
	if !strings.Contains(out, "stable=true") {
		t.Fatalf("lazy output: %q", out)
	}
}

// An incremental run must reach the same fixpoint as a plain run and
// report its delta evaluations through -stats.
func TestRunIncremental(t *testing.T) {
	files := map[string]string{"tc.axml": tcFile}
	plain := run(t, files, "run", "tc.axml")
	var buf bytes.Buffer
	opts := Options{ReadFile: memFS(files), Incremental: true, Stats: true, Parallelism: 4}
	if err := Run(&buf, opts, "run", "tc.axml"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "terminated=true") {
		t.Fatalf("incremental run output: %q", out)
	}
	if !strings.Contains(out, `t{a{"1"},b{"3"}}`) {
		t.Fatalf("incremental run missing closure pair: %q", out)
	}
	// Same documents as the plain run (drop the differing # comments).
	docLines := func(s string) []string {
		var ds []string
		for _, l := range strings.Split(s, "\n") {
			if l != "" && !strings.HasPrefix(l, "#") {
				ds = append(ds, l)
			}
		}
		return ds
	}
	if got, want := docLines(out), docLines(plain); !slices.Equal(got, want) {
		t.Fatalf("incremental documents %v, plain %v", got, want)
	}
	if !strings.Contains(out, "delta_evals=") || strings.Contains(out, "delta_evals=0 ") {
		t.Fatalf("stats missing delta evaluations: %q", out)
	}
}

func TestTerminatesAndSource(t *testing.T) {
	files := map[string]string{
		"tc.axml":   tcFile,
		"loop.axml": "doc d = a{!f}\nfunc f = a{!f} :- ",
	}
	if !strings.Contains(run(t, files, "terminates", "tc.axml"), "terminates=true") {
		t.Fatal("tc should terminate")
	}
	if !strings.Contains(run(t, files, "terminates", "loop.axml"), "terminates=false") {
		t.Fatal("loop should not terminate")
	}
	src := run(t, files, "source", "tc.axml")
	if !strings.Contains(src, "func g =") || !strings.Contains(src, "doc d0 =") {
		t.Fatalf("source output: %q", src)
	}
}

func TestErrors(t *testing.T) {
	var buf bytes.Buffer
	cases := [][]string{
		{"unknown"},
		{"parse"},
		{"parse", "a{"},
		{"reduce"},
		{"subsume", "a"},
		{"run", "missing.axml"},
		{"query", "missing.axml"},
		{"query", "missing.axml", "a :- ", "extra"},
		{"terminates"},
	}
	for _, c := range cases {
		if err := Run(&buf, Options{ReadFile: memFS(nil)}, c[0], c[1:]...); err == nil {
			t.Errorf("command %v accepted", c)
		}
	}
}

func TestXMLCommands(t *testing.T) {
	xml := strings.TrimSpace(run(t, nil, "toxml", `a{b{"1"},!f{c}}`))
	if !strings.Contains(xml, "<ax:call service=\"f\">") || !strings.Contains(xml, "<ax:value>1</ax:value>") {
		t.Fatalf("toxml output: %q", xml)
	}
	back := strings.TrimSpace(run(t, nil, "fromxml", xml))
	if back != `a{b{"1"},!f{c}}` {
		t.Fatalf("fromxml round trip: %q", back)
	}
	var buf bytes.Buffer
	if err := Run(&buf, Options{}, "fromxml", "<junk"); err == nil {
		t.Fatal("bad XML accepted")
	}
}

func TestDatalogCommand(t *testing.T) {
	files := map[string]string{"tc.dl": `
edge(a, b). edge(b, c).
tc(X, Y) :- edge(X, Y).
tc(X, Y) :- tc(X, Z), tc(Z, Y).
`}
	out := run(t, files, "datalog", "tc.dl")
	if !strings.Contains(out, "tc(a,c)") || !strings.Contains(out, "semi-naive") {
		t.Fatalf("datalog output: %q", out)
	}
	out = run(t, files, "datalog", "tc.dl", "tc(a,Y)")
	if !strings.Contains(out, "tc(a,b)") || !strings.Contains(out, "tc(a,c)") {
		t.Fatalf("qsq output: %q", out)
	}
	if strings.Contains(out, "tc(b,c)") {
		t.Fatalf("goal restriction leaked: %q", out)
	}
	var buf bytes.Buffer
	if err := Run(&buf, Options{ReadFile: memFS(files)}, "datalog", "tc.dl", "junk goal ("); err == nil {
		t.Fatal("bad goal accepted")
	}
}
