// Package cli implements the axml command's subcommands, kept separate
// from package main so they are unit-testable. Run dispatches one
// subcommand, writing human-readable output to out.
package cli

import (
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"axml/internal/core"
	"axml/internal/datalog"
	"axml/internal/lazy"
	"axml/internal/obs"
	"axml/internal/peer"
	"axml/internal/regular"
	"axml/internal/subsume"
	"axml/internal/syntax"
)

// Options configures a CLI run.
type Options struct {
	// MaxSteps bounds rewriting runs (default core.DefaultMaxSteps).
	MaxSteps int
	// Parallelism is the run's worker count (0 = GOMAXPROCS, 1 =
	// deterministic sequential order).
	Parallelism int
	// Incremental enables incremental evaluation for run: semi-naive
	// delta matching for declarative services, and (above one worker)
	// the event-driven scheduler instead of repeated sweeps.
	Incremental bool
	// Trace, when non-nil, receives the run's JSON trace spans, one per
	// line (the -trace-out flag; summarize with
	// scripts/trace-summarize.sh).
	Trace io.Writer
	// Stats prints the run's RunResult.Stats (call counts, latency
	// quantiles, lock waits) as # comment lines after a run.
	Stats bool
	// ReadFile loads system files; nil means os.ReadFile. Tests inject
	// an in-memory loader.
	ReadFile func(string) ([]byte, error)
}

// Run executes one subcommand with its arguments.
func Run(out io.Writer, opts Options, cmd string, args ...string) error {
	if opts.ReadFile == nil {
		opts.ReadFile = os.ReadFile
	}
	switch cmd {
	case "parse":
		if len(args) != 1 {
			return fmt.Errorf("parse needs one document")
		}
		n, err := syntax.ParseDocument(args[0])
		if err != nil {
			return err
		}
		fmt.Fprint(out, n.Indent())
		return nil
	case "reduce":
		if len(args) != 1 {
			return fmt.Errorf("reduce needs one document")
		}
		n, err := syntax.ParseDocument(args[0])
		if err != nil {
			return err
		}
		fmt.Fprintln(out, subsume.Reduce(n))
		return nil
	case "subsume":
		if len(args) != 2 {
			return fmt.Errorf("subsume needs two documents")
		}
		a, err := syntax.ParseDocument(args[0])
		if err != nil {
			return err
		}
		b, err := syntax.ParseDocument(args[1])
		if err != nil {
			return err
		}
		fmt.Fprintln(out, subsume.Subsumed(a, b))
		return nil
	case "run":
		s, err := loadSystem(opts, args)
		if err != nil {
			return err
		}
		var tracer *obs.Tracer
		if opts.Trace != nil {
			tracer = obs.NewTracer(opts.Trace)
		}
		res := s.Run(core.RunOptions{
			MaxSteps: opts.MaxSteps, Parallelism: opts.Parallelism,
			Incremental: opts.Incremental, Tracer: tracer,
		})
		if res.Err != nil {
			return res.Err
		}
		fmt.Fprintf(out, "# steps=%d attempts=%d sweeps=%d terminated=%v\n",
			res.Steps, res.Attempts, res.Sweeps, res.Terminated)
		if opts.Stats {
			printStats(out, res.Stats)
		}
		for _, name := range s.DocNames() {
			fmt.Fprintf(out, "%s/%s\n", name, s.Document(name).Root)
		}
		if tracer != nil {
			if err := tracer.Err(); err != nil {
				return fmt.Errorf("trace: %w", err)
			}
		}
		return nil
	case "snapshot", "query", "lazy":
		if len(args) != 2 {
			return fmt.Errorf("%s needs a system file and a rule", cmd)
		}
		s, err := loadSystem(opts, args[:1])
		if err != nil {
			return err
		}
		q, err := syntax.ParseQuery(args[1])
		if err != nil {
			return err
		}
		switch cmd {
		case "snapshot":
			ans, err := s.SnapshotQuery(q)
			if err != nil {
				return err
			}
			fmt.Fprintln(out, ans.String())
		case "query":
			res, err := s.EvalQuery(q, core.RunOptions{MaxSteps: opts.MaxSteps})
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "# exact=%v steps=%d\n", res.Exact, res.Run.Steps)
			fmt.Fprintln(out, res.Answer.String())
		case "lazy":
			res, err := lazy.Eval(s, q, lazy.Options{MaxSteps: opts.MaxSteps})
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "# stable=%v invocations=%d rounds=%d\n",
				res.Stable, res.Invocations, res.Rounds)
			fmt.Fprintln(out, res.Answer.String())
		}
		return nil
	case "terminates":
		s, err := loadSystem(opts, args)
		if err != nil {
			return err
		}
		verdict, g, err := regular.Terminates(s, regular.BuildOptions{})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "terminates=%v vertices=%d invocations=%d\n",
			verdict, g.VertexCount(), g.Invocations)
		return nil
	case "source":
		s, err := loadSystem(opts, args)
		if err != nil {
			return err
		}
		src, err := s.Source()
		if err != nil {
			return err
		}
		fmt.Fprint(out, src)
		return nil
	case "toxml":
		if len(args) != 1 {
			return fmt.Errorf("toxml needs one document")
		}
		n, err := syntax.ParseDocument(args[0])
		if err != nil {
			return err
		}
		data, err := peer.MarshalTree(n)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, string(data))
		return nil
	case "fromxml":
		if len(args) != 1 {
			return fmt.Errorf("fromxml needs one XML document string")
		}
		n, err := peer.UnmarshalTree([]byte(args[0]))
		if err != nil {
			return err
		}
		fmt.Fprintln(out, n)
		return nil
	case "datalog":
		// datalog <program-file> [goal]: bottom-up fixpoint, optionally
		// restricted to a QSQ goal like tc(a,Y).
		if len(args) < 1 || len(args) > 2 {
			return fmt.Errorf("datalog needs a program file and an optional goal")
		}
		data, err := opts.ReadFile(args[0])
		if err != nil {
			return err
		}
		prog, err := datalog.Parse(string(data))
		if err != nil {
			return err
		}
		if len(args) == 2 {
			goal, err := parseGoal(args[1])
			if err != nil {
				return err
			}
			rel, st, err := prog.QSQ(goal)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "# qsq subgoals=%d derivations=%d\n", st.Subgoals, st.Derivations)
			for _, tpl := range rel.Tuples() {
				fmt.Fprintf(out, "%s(%s)\n", goal.Pred, strings.Join(tpl, ","))
			}
			return nil
		}
		db, st, err := prog.SemiNaive()
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "# semi-naive iterations=%d derivations=%d\n", st.Iterations, st.Derivations)
		preds := make([]string, 0, len(db))
		for p := range db {
			preds = append(preds, p)
		}
		sort.Strings(preds)
		for _, p := range preds {
			for _, tpl := range db[p].Tuples() {
				fmt.Fprintf(out, "%s(%s)\n", p, strings.Join(tpl, ","))
			}
		}
		return nil
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// printStats renders a run's RunStats as # comment lines, matching the
// run subcommand's existing header style so pipelines that skip comments
// skip these too.
func printStats(out io.Writer, st core.RunStats) {
	fmt.Fprintf(out, "# stats fired=%d sterile=%d delta_evals=%d enqueues=%d coalesced=%d reader_waits=%d writer_waits=%d\n",
		st.CallsFired, st.CallsSterile, st.DeltaEvals, st.Enqueues,
		st.EnqueuesCoalesced, st.ReaderWaits, st.WriterWaits)
	printHist(out, "eval_ns", st.Eval)
	printHist(out, "slot_wait_ns", st.SlotWait)
	printHist(out, "merge_wait_ns", st.MergeWait)
}

func printHist(out io.Writer, name string, h obs.HistSnapshot) {
	if h.Count == 0 {
		return
	}
	fmt.Fprintf(out, "# %s count=%d mean=%d p50=%d p90=%d p99=%d max=%d\n",
		name, h.Count, h.Sum/h.Count, h.P50, h.P90, h.P99, h.Max)
}

// parseGoal reads a goal atom like tc(a,Y) — uppercase arguments are
// variables, the rest constants.
func parseGoal(src string) (datalog.Atom, error) {
	prog, err := datalog.Parse("goalwrap :- " + src + ".")
	if err != nil {
		return datalog.Atom{}, fmt.Errorf("bad goal %q: %w", src, err)
	}
	if len(prog.Rules) != 1 || len(prog.Rules[0].Body) != 1 {
		return datalog.Atom{}, fmt.Errorf("bad goal %q", src)
	}
	return prog.Rules[0].Body[0], nil
}

func loadSystem(opts Options, args []string) (*core.System, error) {
	if len(args) != 1 {
		return nil, fmt.Errorf("need a system file")
	}
	data, err := opts.ReadFile(args[0])
	if err != nil {
		return nil, err
	}
	return core.ParseSystem(string(data))
}
