package syntax

import (
	"fmt"
	"strings"

	"axml/internal/pattern"
	"axml/internal/query"
	"axml/internal/tree"
)

type parser struct {
	toks []token
	i    int
}

func newParser(src string) (*parser, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	return &parser{toks: toks}, nil
}

func (p *parser) peek() token         { return p.toks[p.i] }
func (p *parser) next() token         { t := p.toks[p.i]; p.i++; return t }
func (p *parser) at(k tokenKind) bool { return p.toks[p.i].kind == k }

func (p *parser) expect(k tokenKind) (token, error) {
	t := p.peek()
	if t.kind != k {
		return t, errf(t.pos, "expected %s, found %s %q", k, t.kind, t.text)
	}
	p.i++
	return t, nil
}

func (p *parser) expectEOF() error {
	if !p.at(tokEOF) {
		t := p.peek()
		return errf(t.pos, "unexpected trailing %s %q", t.kind, t.text)
	}
	return nil
}

// ParseDocument parses a tree in the compact syntax.
func ParseDocument(src string) (*tree.Node, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	n, err := p.parseTree()
	if err != nil {
		return nil, err
	}
	if err := p.expectEOF(); err != nil {
		return nil, err
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return n, nil
}

// MustParseDocument is ParseDocument panicking on error; intended for
// tests and package-level literals.
func MustParseDocument(src string) *tree.Node {
	n, err := ParseDocument(src)
	if err != nil {
		panic(err)
	}
	return n
}

// ParseForest parses a ";"-free comma-separated list? No: forests are
// written as trees separated by ';' would complicate the lexer, so a
// forest is written as one tree per call. ParseForest therefore accepts a
// comma-separated list of trees and returns them in order.
func ParseForest(src string) (tree.Forest, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	var out tree.Forest
	for {
		n, err := p.parseTree()
		if err != nil {
			return nil, err
		}
		if err := n.Validate(); err != nil {
			return nil, err
		}
		out = append(out, n)
		if p.at(tokComma) {
			p.next()
			continue
		}
		break
	}
	if err := p.expectEOF(); err != nil {
		return nil, err
	}
	return out, nil
}

func (p *parser) parseTree() (*tree.Node, error) {
	t := p.next()
	var n *tree.Node
	switch t.kind {
	case tokString, tokNumber:
		return tree.NewValue(t.text), nil
	case tokBang:
		id, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		n = tree.NewFunc(id.text)
	case tokIdent:
		n = tree.NewLabel(t.text)
	default:
		return nil, errf(t.pos, "expected a tree node, found %s %q", t.kind, t.text)
	}
	if p.at(tokLBrace) {
		children, err := p.parseTreeChildren()
		if err != nil {
			return nil, err
		}
		n.Children = children
	}
	return n, nil
}

func (p *parser) parseTreeChildren() ([]*tree.Node, error) {
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	var out []*tree.Node
	for {
		c, err := p.parseTree()
		if err != nil {
			return nil, err
		}
		out = append(out, c)
		if p.at(tokComma) {
			p.next()
			continue
		}
		break
	}
	if _, err := p.expect(tokRBrace); err != nil {
		return nil, err
	}
	return out, nil
}

// ParsePattern parses a tree pattern, which may use the variable sigils.
func ParsePattern(src string) (*pattern.Node, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	n, err := p.parsePattern()
	if err != nil {
		return nil, err
	}
	if err := p.expectEOF(); err != nil {
		return nil, err
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return n, nil
}

// MustParsePattern is ParsePattern panicking on error.
func MustParsePattern(src string) *pattern.Node {
	n, err := ParsePattern(src)
	if err != nil {
		panic(err)
	}
	return n
}

func (p *parser) parsePattern() (*pattern.Node, error) {
	t := p.next()
	var n *pattern.Node
	switch t.kind {
	case tokString, tokNumber:
		return pattern.Value(t.text), nil
	case tokBang:
		id, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		n = pattern.Func(id.text)
	case tokIdent:
		n = pattern.Label(t.text)
	case tokPercent, tokDollar, tokCaret, tokHash:
		id, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		switch t.kind {
		case tokPercent:
			n = pattern.LVar(id.text)
		case tokDollar:
			n = pattern.VVar(id.text)
		case tokCaret:
			n = pattern.FVar(id.text)
		default:
			n = pattern.TVar(id.text)
		}
	default:
		return nil, errf(t.pos, "expected a pattern node, found %s %q", t.kind, t.text)
	}
	if p.at(tokLBrace) {
		p.next()
		for {
			c, err := p.parsePattern()
			if err != nil {
				return nil, err
			}
			n.Children = append(n.Children, c)
			if p.at(tokComma) {
				p.next()
				continue
			}
			break
		}
		if _, err := p.expect(tokRBrace); err != nil {
			return nil, err
		}
	}
	return n, nil
}

// ParseQuery parses a positive query rule "head :- body" and validates it.
func ParseQuery(src string) (*query.Query, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if err := p.expectEOF(); err != nil {
		return nil, err
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

// MustParseQuery is ParseQuery panicking on error.
func MustParseQuery(src string) *query.Query {
	q, err := ParseQuery(src)
	if err != nil {
		panic(err)
	}
	return q
}

func (p *parser) parseQuery() (*query.Query, error) {
	head, err := p.parsePattern()
	if err != nil {
		return nil, err
	}
	q := &query.Query{Head: head}
	if _, err := p.expect(tokTurnstile); err != nil {
		return nil, err
	}
	if p.at(tokEOF) {
		return q, nil
	}
	for {
		atom, ineq, err := p.parseBodyItem()
		if err != nil {
			return nil, err
		}
		if ineq != nil {
			q.Ineqs = append(q.Ineqs, *ineq)
		} else {
			q.Body = append(q.Body, *atom)
		}
		if p.at(tokComma) {
			p.next()
			continue
		}
		break
	}
	return q, nil
}

// parseBodyItem parses either an atom "doc/pattern" or an inequality
// "term != term".
func (p *parser) parseBodyItem() (*query.Atom, *query.Ineq, error) {
	t := p.peek()
	switch t.kind {
	case tokIdent:
		// Could be an atom (ident '/') or a constant inequality is not
		// possible (constants are quoted); identifiers start atoms.
		name := p.next().text
		if _, err := p.expect(tokSlash); err != nil {
			return nil, nil, err
		}
		pat, err := p.parsePattern()
		if err != nil {
			return nil, nil, err
		}
		return &query.Atom{Doc: name, Pattern: pat}, nil, nil
	case tokPercent, tokDollar, tokCaret, tokString, tokNumber:
		left, err := p.parseIneqTerm()
		if err != nil {
			return nil, nil, err
		}
		if _, err := p.expect(tokNeq); err != nil {
			return nil, nil, err
		}
		right, err := p.parseIneqTerm()
		if err != nil {
			return nil, nil, err
		}
		return nil, &query.Ineq{Left: left, Right: right}, nil
	default:
		return nil, nil, errf(t.pos, "expected an atom or inequality, found %s %q", t.kind, t.text)
	}
}

func (p *parser) parseIneqTerm() (query.Term, error) {
	t := p.next()
	switch t.kind {
	case tokString, tokNumber:
		return query.Constant(t.text), nil
	case tokPercent, tokDollar, tokCaret:
		id, err := p.expect(tokIdent)
		if err != nil {
			return query.Term{}, err
		}
		return query.Variable(id.text), nil
	case tokHash:
		return query.Term{}, errf(t.pos, "tree variables may not appear in inequalities")
	default:
		return query.Term{}, errf(t.pos, "expected an inequality term, found %s %q", t.kind, t.text)
	}
}

// SystemSpec is the parsed form of a system file: named documents and
// named positive service definitions, in file order.
type SystemSpec struct {
	Docs  []*tree.Document
	Funcs []*query.Query // Name is the function name
}

// ParseSystem parses a line-oriented system file. Lines are either blank,
// comments starting with '#', "doc NAME = TREE" or "func NAME = QUERY".
// A definition may span several physical lines: lines are joined while
// curly braces (outside quoted strings) remain unbalanced. Doc and func
// names must be unique; reserved document names are rejected.
func ParseSystem(src string) (*SystemSpec, error) {
	spec := &SystemSpec{}
	seenDocs := map[string]bool{}
	seenFuncs := map[string]bool{}
	lineStart := 0
	lineNo := 0
	pendingLine := 0
	var pending strings.Builder
	depth := 0
	for lineStart <= len(src) {
		lineEnd := lineStart
		for lineEnd < len(src) && src[lineEnd] != '\n' {
			lineEnd++
		}
		line := src[lineStart:lineEnd]
		lineNo++
		lineStart = lineEnd + 1
		trimmed := trimSpace(line)
		if pending.Len() == 0 {
			if trimmed == "" || trimmed[0] == '#' {
				continue
			}
			pendingLine = lineNo
		}
		pending.WriteString(line)
		pending.WriteByte(' ')
		depth += braceBalance(line)
		if depth > 0 {
			continue
		}
		logical := pending.String()
		pending.Reset()
		depth = 0
		if err := parseSystemLine(logical, pendingLine, spec, seenDocs, seenFuncs); err != nil {
			return nil, err
		}
	}
	if pending.Len() > 0 {
		return nil, fmt.Errorf("syntax: line %d: unbalanced braces at end of input", pendingLine)
	}
	return spec, nil
}

// braceBalance counts '{' minus '}' outside double-quoted strings.
func braceBalance(line string) int {
	depth := 0
	inString := false
	for i := 0; i < len(line); i++ {
		c := line[i]
		switch {
		case inString:
			if c == '\\' {
				i++
			} else if c == '"' {
				inString = false
			}
		case c == '"':
			inString = true
		case c == '{':
			depth++
		case c == '}':
			depth--
		}
	}
	return depth
}

func parseSystemLine(line string, lineNo int, spec *SystemSpec, seenDocs, seenFuncs map[string]bool) error {
	trimmed := trimSpace(line)
	if trimmed == "" || trimmed[0] == '#' {
		return nil
	}
	kw, rest := splitWord(trimmed)
	switch kw {
	case "doc":
		name, body, err := splitDef(rest, lineNo)
		if err != nil {
			return err
		}
		if name == tree.Input || name == tree.Context {
			return fmt.Errorf("syntax: line %d: %w", lineNo, tree.ErrReservedName)
		}
		if seenDocs[name] {
			return fmt.Errorf("syntax: line %d: duplicate document %q", lineNo, name)
		}
		seenDocs[name] = true
		root, err := ParseDocument(body)
		if err != nil {
			return fmt.Errorf("syntax: line %d: %w", lineNo, err)
		}
		spec.Docs = append(spec.Docs, tree.NewDocument(name, root))
		return nil
	case "func":
		name, body, err := splitDef(rest, lineNo)
		if err != nil {
			return err
		}
		if seenFuncs[name] {
			return fmt.Errorf("syntax: line %d: duplicate function %q", lineNo, name)
		}
		seenFuncs[name] = true
		q, err := ParseQuery(body)
		if err != nil {
			return fmt.Errorf("syntax: line %d: %w", lineNo, err)
		}
		q.Name = name
		spec.Funcs = append(spec.Funcs, q)
		return nil
	default:
		return fmt.Errorf("syntax: line %d: expected 'doc' or 'func', found %q", lineNo, kw)
	}
}

func trimSpace(s string) string {
	i, j := 0, len(s)
	for i < j && (s[i] == ' ' || s[i] == '\t' || s[i] == '\r') {
		i++
	}
	for j > i && (s[j-1] == ' ' || s[j-1] == '\t' || s[j-1] == '\r') {
		j--
	}
	return s[i:j]
}

func splitWord(s string) (word, rest string) {
	i := 0
	for i < len(s) && s[i] != ' ' && s[i] != '\t' {
		i++
	}
	return s[:i], trimSpace(s[i:])
}

func splitDef(rest string, lineNo int) (name, body string, err error) {
	name, after := splitWord(rest)
	if name == "" {
		return "", "", fmt.Errorf("syntax: line %d: missing name", lineNo)
	}
	if len(after) == 0 || after[0] != '=' {
		return "", "", fmt.Errorf("syntax: line %d: expected '=' after name %q", lineNo, name)
	}
	return name, trimSpace(after[1:]), nil
}
