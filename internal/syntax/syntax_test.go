package syntax

import (
	"strings"
	"testing"

	"axml/internal/pattern"
	"axml/internal/tree"
)

func TestParseDocumentRoundTrip(t *testing.T) {
	cases := []string{
		`a`,
		`"v"`,
		`!f`,
		`a{b,c}`,
		`a{b{"1"},!f{"x",t{y}}}`,
		`directory{cd{title{"L'amour"},singer{"Carla Bruni"},rating{"***"}},!FreeMusicDB{type{"Jazz"}}}`,
	}
	for _, src := range cases {
		n, err := ParseDocument(src)
		if err != nil {
			t.Fatalf("ParseDocument(%q): %v", src, err)
		}
		back, err := ParseDocument(n.String())
		if err != nil {
			t.Fatalf("round-trip parse of %q: %v", n.String(), err)
		}
		if !tree.Isomorphic(n, back) {
			t.Fatalf("round trip changed %q into %q", src, back.String())
		}
	}
}

func TestParseDocumentNumbersAreValues(t *testing.T) {
	n := MustParseDocument(`r{t{1,2},t{-3,4.5}}`)
	var vals []string
	n.Walk(func(nd, _ *tree.Node) bool {
		if nd.Kind == tree.Value {
			vals = append(vals, nd.Name)
		}
		return true
	})
	if len(vals) != 4 {
		t.Fatalf("values = %v", vals)
	}
}

func TestParseDocumentWhitespaceAndEscapes(t *testing.T) {
	n := MustParseDocument(" a {\n\tb , \"x\\\"y\\n\" }\n")
	if n.Name != "a" || len(n.Children) != 2 {
		t.Fatalf("parsed %s", n)
	}
	if n.Children[1].Name != "x\"y\n" {
		t.Fatalf("escape handling: %q", n.Children[1].Name)
	}
}

func TestParseDocumentErrors(t *testing.T) {
	bad := []string{
		``, `a{`, `a{b`, `a}}`, `a{b,}`, `{a}`, `!`, `a b`, `"unterminated`,
		`"bad\q"`, `a{"v"{b}}`, `:`, `a$`, `&x`,
	}
	for _, src := range bad {
		if _, err := ParseDocument(src); err == nil {
			t.Errorf("ParseDocument(%q) accepted", src)
		}
	}
}

func TestParsePatternVariables(t *testing.T) {
	p := MustParsePattern(`songs{$x,%l{#T},^f}`)
	if p.Kind != pattern.ConstLabel {
		t.Fatalf("root kind %v", p.Kind)
	}
	kinds := map[string]pattern.Kind{}
	if err := p.Vars(kinds); err != nil {
		t.Fatal(err)
	}
	want := map[string]pattern.Kind{
		"x": pattern.VarValue,
		"l": pattern.VarLabel,
		"T": pattern.VarTree,
		"f": pattern.VarFunc,
	}
	for v, k := range want {
		if kinds[v] != k {
			t.Errorf("var %s kind = %v, want %v", v, kinds[v], k)
		}
	}
	// Round trip.
	back := MustParsePattern(p.String())
	if back.String() != p.String() {
		t.Fatalf("round trip %q -> %q", p.String(), back.String())
	}
}

func TestParsePatternRejectsNonLeafValueVars(t *testing.T) {
	if _, err := ParsePattern(`a{$x{b}}`); err == nil {
		t.Error("value variable with children accepted")
	}
	if _, err := ParsePattern(`a{#T{b}}`); err == nil {
		t.Error("tree variable with children accepted")
	}
}

func TestParseQueryPaperExample(t *testing.T) {
	q := MustParseQuery(`songs{$x} :- doc1/directory{cd{title{$x},singer{"Carla Bruni"},rating{"***"}}}`)
	if len(q.Body) != 1 || q.Body[0].Doc != "doc1" {
		t.Fatalf("body = %v", q.Body)
	}
	if !q.IsSimple() {
		t.Fatal("paper's query is simple")
	}
	if got := q.DocNames(); len(got) != 1 || got[0] != "doc1" {
		t.Fatalf("DocNames = %v", got)
	}
}

func TestParseQueryInequalitiesAndEmptyBody(t *testing.T) {
	q := MustParseQuery(`z{$x,$y} :- d/r{a{$x},b{$y}}, $x != $y, $x != "5"`)
	if len(q.Ineqs) != 2 {
		t.Fatalf("ineqs = %v", q.Ineqs)
	}
	empty := MustParseQuery(`a{!f} :- `)
	if len(empty.Body) != 0 {
		t.Fatal("empty body parsed wrong")
	}
	if s := empty.String(); !strings.HasPrefix(s, "a{!f} :- ") {
		t.Fatalf("String = %q", s)
	}
}

func TestParseQueryValidationErrors(t *testing.T) {
	bad := []string{
		`a{$x} :- `,              // unsafe head variable
		`a :- d/r{#T,x{#T}}`,     // tree variable twice in body
		`a :- d/r{$x}, #T != $x`, // tree variable in inequality
		`a{$x} :- d/r{%x}`,       // kind conflict head/body
		`a :- d/r{$x{y}}`,        // value var with children
		`a :- d/r, $z != "1"`,    // inequality var unbound
	}
	for _, src := range bad {
		if _, err := ParseQuery(src); err == nil {
			t.Errorf("ParseQuery(%q) accepted", src)
		}
	}
}

func TestParseQueryTreeVarTwiceAcrossAtoms(t *testing.T) {
	if _, err := ParseQuery(`a{#T} :- d/r{#T}, e/s{#T}`); err == nil {
		t.Error("tree variable occurring in two atoms accepted")
	}
}

func TestParseSystem(t *testing.T) {
	src := `
# Example 3.2: transitive closure
doc  d0 = r{t{a{1},b{2}},t{a{2},b{3}}}
doc  d1 = r{!g,!f}

func g = t{a{$x},b{$y}} :- d0/r{t{a{$x},b{$y}}}
func f = t{a{$x},b{$y}} :- d1/r{t{a{$x},b{$z}}}, d1/r{t{a{$z},b{$y}}}
`
	spec, err := ParseSystem(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Docs) != 2 || len(spec.Funcs) != 2 {
		t.Fatalf("spec = %d docs, %d funcs", len(spec.Docs), len(spec.Funcs))
	}
	if spec.Funcs[0].Name != "g" || spec.Funcs[1].Name != "f" {
		t.Fatalf("func names: %q %q", spec.Funcs[0].Name, spec.Funcs[1].Name)
	}
}

func TestParseSystemErrors(t *testing.T) {
	bad := []string{
		`doc input = a`,
		`doc context = a`,
		"doc d = a\ndoc d = b",
		"func f = a :- \nfunc f = a :- ",
		`doc d`,
		`doc = a`,
		`banana d = a`,
		`doc d = a{`,
		`func f = a{$x} :- `,
	}
	for _, src := range bad {
		if _, err := ParseSystem(src); err == nil {
			t.Errorf("ParseSystem(%q) accepted", src)
		}
	}
}

func TestParseForest(t *testing.T) {
	f, err := ParseForest(`a{b}, c, "v"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(f) != 3 {
		t.Fatalf("forest size %d", len(f))
	}
	if _, err := ParseForest(`a{b},`); err == nil {
		t.Error("trailing comma accepted")
	}
}

func TestMustHelpersPanic(t *testing.T) {
	for name, fn := range map[string]func(){
		"doc":     func() { MustParseDocument(`a{`) },
		"pattern": func() { MustParsePattern(`{`) },
		"query":   func() { MustParseQuery(`a{$x} :- `) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Must %s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestErrorType(t *testing.T) {
	_, err := ParseDocument(`a{&}`)
	if err == nil {
		t.Fatal("expected error")
	}
	if se, ok := err.(*Error); !ok || se.Pos == 0 && se.Msg == "" {
		t.Fatalf("error type %T: %v", err, err)
	}
	if !strings.Contains(err.Error(), "offset") {
		t.Fatalf("error message %q lacks offset", err)
	}
}
