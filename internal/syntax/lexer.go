// Package syntax parses the paper's compact term syntax for AXML
// documents, tree patterns, positive queries and whole systems.
//
// Documents:
//
//	directory{cd{title{"Body and Soul"}, !GetRating{"Body and Soul"}}}
//
// Labels are bare identifiers, atomic values are double-quoted strings (or
// bare numbers), and function nodes — bold in the paper — are written with
// a leading '!'. Children are brace-enclosed and comma-separated; order is
// irrelevant.
//
// Patterns extend documents with variables: %x (label), $x (value),
// ^f (function), #X (tree).
//
// Queries are rules "head :- body" where the body is a comma-separated
// list of atoms doc/pattern and inequalities term != term:
//
//	songs{$x} :- doc1/directory{cd{title{$x}, rating{"***"}}}, $x != "Naima"
//
// System files are line-oriented:
//
//	# transitive closure (Example 3.2)
//	doc  d0 = r{t{a{1}, b{2}}}
//	doc  d1 = r{!g, !f}
//	func g  = t{$x,$y} :- d0/r{t{$x,$y}}
//	func f  = t{$x,$y} :- d1/r{t{$x,$z}}, d1/r{t{$z,$y}}
package syntax

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokString // quoted string, value stored unquoted
	tokNumber // bare number, treated as an atomic value
	tokLBrace
	tokRBrace
	tokComma
	tokSlash
	tokBang      // '!'
	tokNeq       // '!='
	tokTurnstile // ':-'
	tokEquals    // '='
	tokPercent   // '%'
	tokDollar    // '$'
	tokCaret     // '^'
	tokHash      // '#'
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokString:
		return "string"
	case tokNumber:
		return "number"
	case tokLBrace:
		return "'{'"
	case tokRBrace:
		return "'}'"
	case tokComma:
		return "','"
	case tokSlash:
		return "'/'"
	case tokBang:
		return "'!'"
	case tokNeq:
		return "'!='"
	case tokTurnstile:
		return "':-'"
	case tokEquals:
		return "'='"
	case tokPercent:
		return "'%'"
	case tokDollar:
		return "'$'"
	case tokCaret:
		return "'^'"
	case tokHash:
		return "'#'"
	default:
		return fmt.Sprintf("token(%d)", uint8(k))
	}
}

type token struct {
	kind tokenKind
	text string
	pos  int
}

// Error is a parse error carrying the byte offset in the input.
type Error struct {
	Pos int
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("syntax: offset %d: %s", e.Pos, e.Msg) }

func errf(pos int, format string, args ...any) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.emit(tokEOF, "", l.pos)
			return l.toks, nil
		}
		start := l.pos
		c := l.src[l.pos]
		switch {
		case c == '{':
			l.pos++
			l.emit(tokLBrace, "{", start)
		case c == '}':
			l.pos++
			l.emit(tokRBrace, "}", start)
		case c == ',':
			l.pos++
			l.emit(tokComma, ",", start)
		case c == '/':
			l.pos++
			l.emit(tokSlash, "/", start)
		case c == '=':
			l.pos++
			l.emit(tokEquals, "=", start)
		case c == '!':
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
				l.pos += 2
				l.emit(tokNeq, "!=", start)
			} else {
				l.pos++
				l.emit(tokBang, "!", start)
			}
		case c == ':':
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '-' {
				l.pos += 2
				l.emit(tokTurnstile, ":-", start)
			} else {
				return nil, errf(start, "unexpected ':'")
			}
		case c == '%':
			l.pos++
			l.emit(tokPercent, "%", start)
		case c == '$':
			l.pos++
			l.emit(tokDollar, "$", start)
		case c == '^':
			l.pos++
			l.emit(tokCaret, "^", start)
		case c == '#':
			l.pos++
			l.emit(tokHash, "#", start)
		case c == '"':
			s, err := l.lexString()
			if err != nil {
				return nil, err
			}
			l.emit(tokString, s, start)
		case isDigit(rune(c)) || (c == '-' && l.pos+1 < len(l.src) && isDigit(rune(l.src[l.pos+1]))):
			l.emit(tokNumber, l.lexNumber(), start)
		case isIdentStart(rune(c)):
			l.emit(tokIdent, l.lexIdent(), start)
		default:
			return nil, errf(start, "unexpected character %q", c)
		}
	}
}

func (l *lexer) emit(k tokenKind, text string, pos int) {
	l.toks = append(l.toks, token{kind: k, text: text, pos: pos})
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		return
	}
}

func (l *lexer) lexString() (string, error) {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch c {
		case '"':
			l.pos++
			return b.String(), nil
		case '\\':
			if l.pos+1 >= len(l.src) {
				return "", errf(start, "unterminated escape in string")
			}
			next := l.src[l.pos+1]
			switch next {
			case '"', '\\':
				b.WriteByte(next)
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			default:
				return "", errf(l.pos, "unknown escape \\%c", next)
			}
			l.pos += 2
		default:
			b.WriteByte(c)
			l.pos++
		}
	}
	return "", errf(start, "unterminated string")
}

func (l *lexer) lexNumber() string {
	start := l.pos
	if l.src[l.pos] == '-' {
		l.pos++
	}
	for l.pos < len(l.src) && (isDigit(rune(l.src[l.pos])) || l.src[l.pos] == '.') {
		l.pos++
	}
	return l.src[start:l.pos]
}

func (l *lexer) lexIdent() string {
	start := l.pos
	for l.pos < len(l.src) {
		r := rune(l.src[l.pos])
		if !isIdentPart(r) {
			break
		}
		l.pos++
	}
	return l.src[start:l.pos]
}

func isDigit(r rune) bool { return r >= '0' && r <= '9' }

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || r == '-' || r == '.' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
