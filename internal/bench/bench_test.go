package bench

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// Each experiment must succeed with reduced parameters and print a table
// header; the root-level benchmarks exercise the full parameters.
func TestExperimentsSmall(t *testing.T) {
	cases := []struct {
		name   string
		header string
		fn     func(w io.Writer) error
	}{
		{"E1", "E1", func(w io.Writer) error { return E1Reduce(w, []int{50, 100}) }},
		{"E2", "E2", func(w io.Writer) error { return E2Confluence(w, 2) }},
		{"E3", "E3", func(w io.Writer) error { return E3Snapshot(w, []int{4, 8}) }},
		{"E4", "E4", func(w io.Writer) error { return E4TransitiveClosure(w, []int{5}) }},
		{"E5", "E5", func(w io.Writer) error { return E5InfiniteGrowth(w, []int{3}) }},
		{"E6", "E6", E6Termination},
		{"E7", "E7", func(w io.Writer) error { return E7Lazy(w, []int{4}) }},
		{"E8", "E8", E8PathTranslation},
		{"E9", "E9", func(w io.Writer) error { return E9Turing(w, []int{1}) }},
		{"E10", "E10", E10FireOnce},
		{"E11", "E11", func(w io.Writer) error { return E11Peers(w, []int{2}) }},
		{"AblationReduce", "Ablation", AblationReduceEvery},
		{"AblationSched", "Ablation", AblationSchedulers},
		{"AblationMinimize", "Ablation", AblationMinimize},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := c.fn(&buf); err != nil {
				t.Fatalf("%s failed: %v\n%s", c.name, err, buf.String())
			}
			if !strings.HasPrefix(buf.String(), c.header) {
				t.Fatalf("%s output missing header:\n%s", c.name, buf.String())
			}
		})
	}
}

func TestTCSystemHelper(t *testing.T) {
	s := tcSystem([][2]string{{"a", "b"}, {"b", "c"}})
	if !s.IsSimple() {
		t.Fatal("tcSystem must be simple")
	}
	rel, err := relationFromTC(s)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 0 {
		t.Fatalf("pairs before running: %d", rel.Len())
	}
}
