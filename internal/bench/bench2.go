package bench

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http/httptest"
	"time"

	"axml/internal/core"
	"axml/internal/lazy"
	"axml/internal/pathexpr"
	"axml/internal/peer"
	"axml/internal/regular"
	"axml/internal/tree"
	"axml/internal/turing"
	"axml/internal/workload"
)

// E6Termination exercises the exact termination decision for simple
// positive systems (Lemma 3.2 + Theorem 3.3) against the budgeted engine.
func E6Termination(w io.Writer) error {
	fmt.Fprintln(w, "E6 — termination decision on simple positive systems (Thm 3.3)")
	fmt.Fprintln(w, "system\tverdict\texpected\tvertices\tinvocations\tdecide(us)")
	cases := []struct {
		name string
		src  string
		want bool
	}{
		{"tc-chain6", "", true}, // filled below
		{"ex2.1-loop", "doc d = a{!f}\nfunc f = a{!f} :- ", false},
		{"const", "doc d = a{!f}\nfunc f = b{c} :- ", true},
		{"mutual-loop", "doc d = top{!f}\nfunc f = a{!g} :- \nfunc g = b{!f} :- ", false},
		{"guarded", "doc d0 = r{v{1},v{2}}\ndoc d = top{!f}\nfunc f = a{$x,!g} :- d0/r{v{$x}}\nfunc g = b{$x} :- d0/r{v{$x}}", true},
		{"context-fix", "doc d = a{b,!f}\nfunc f = b :- context/a{b}", true},
	}
	for _, c := range cases {
		var s *core.System
		if c.name == "tc-chain6" {
			s = tcSystem(workload.Edges(rand.New(rand.NewSource(seed)), workload.Chain, 6))
		} else {
			s = core.MustParseSystem(c.src)
		}
		start := time.Now()
		verdict, g, err := regular.Terminates(s, regular.BuildOptions{})
		el := time.Since(start)
		if err != nil {
			return fmt.Errorf("E6 %s: %w", c.name, err)
		}
		fmt.Fprintf(w, "%s\t%v\t%v\t%d\t%d\t%.1f\n",
			c.name, verdict, c.want, g.VertexCount(), g.Invocations, us(el))
		if verdict != c.want {
			return fmt.Errorf("E6: wrong verdict for %s", c.name)
		}
	}
	return nil
}

// E7Lazy compares lazy vs naive evaluation on jazz portals with
// irrelevant infinite branches (Section 4): lazy must answer exactly with
// strictly fewer invocations, while naive burns its whole budget.
func E7Lazy(w io.Writer, cdCounts []int) error {
	fmt.Fprintln(w, "E7 — lazy vs naive query evaluation (Sec 4)")
	fmt.Fprintln(w, "cds\tanswers\tlazy-inv\tlazy-stable\tnaive-steps\tnaive-done\tlazy(ms)")
	for _, cds := range cdCounts {
		cfg := workload.JazzConfig{CDs: cds, MaterializedRatio: 0.3, IrrelevantBranches: 3}
		q := workload.RatingQuery()

		lazySys := workload.JazzSystem(rand.New(rand.NewSource(seed)), cfg)
		start := time.Now()
		lres, err := lazy.Eval(lazySys, q, lazy.Options{MaxSteps: 100000})
		lazyTime := time.Since(start)
		if err != nil {
			return err
		}
		if !lres.Stable {
			return fmt.Errorf("E7: lazy did not stabilize at cds=%d", cds)
		}
		if len(lres.Answer) != cds {
			return fmt.Errorf("E7: lazy answered %d of %d", len(lres.Answer), cds)
		}

		naiveBudget := 10 * cds
		naiveSys := workload.JazzSystem(rand.New(rand.NewSource(seed)), cfg)
		nres := naiveSys.Run(core.RunOptions{MaxSteps: naiveBudget})
		if nres.Terminated {
			return fmt.Errorf("E7: naive terminated despite infinite branches")
		}
		fmt.Fprintf(w, "%d\t%d\t%d\t%v\t%d\t%v\t%.2f\n",
			cds, len(lres.Answer), lres.Invocations, lres.Stable,
			nres.Steps, nres.Terminated, ms(lazyTime))
	}
	return nil
}

// E8PathTranslation checks Proposition 5.1 end to end: the ψ-translated
// plain system+query computes the same answers as direct positive+reg
// evaluation, preserving simplicity, at a measurable overhead.
func E8PathTranslation(w io.Writer) error {
	fmt.Fprintln(w, "E8 — positive+reg: direct vs ψ-translated (Prop 5.1)")
	fmt.Fprintln(w, "case\tanswers\tdirect(us)\ttranslated(ms)\tsvc-added\tsimple\tequal")
	cases := []struct {
		name  string
		sys   string
		query string
	}{
		{"nested-sections",
			"doc src = store{item{name{\"alpha\"}},item{name{\"beta\"}}}\ndoc lib = lib{section{sub},!fill}\nfunc fill = section{cd{title{$n}}} :- src/store{item{name{$n}}}",
			`out{$t} :- lib/lib{<(section|sub)*.cd.title>{$t}}`},
		{"optional-hop",
			"doc d = a{title{\"h\"},b{title{\"l\"}}}",
			`out{$t} :- d/a{<b?.title>{$t}}`},
		{"wildcard",
			"doc d = r{x{y{leaf{\"1\"}}},z{leaf{\"2\"}}}",
			`out{$v} :- d/r{<_*.leaf>{$v}}`},
	}
	for _, c := range cases {
		s := core.MustParseSystem(c.sys)
		rq := pathexpr.MustParseRQuery(c.query)

		start := time.Now()
		direct, exact, err := pathexpr.EvalFull(s, rq, core.RunOptions{})
		directTime := time.Since(start)
		if err != nil {
			return err
		}
		if !exact {
			return fmt.Errorf("E8 %s: direct run did not terminate", c.name)
		}

		trans, err := pathexpr.Translate(s, rq)
		if err != nil {
			return err
		}
		start = time.Now()
		res, err := trans.System.EvalQuery(trans.Query, core.RunOptions{MaxSteps: 1_000_000})
		transTime := time.Since(start)
		if err != nil {
			return err
		}
		if !res.Exact {
			return fmt.Errorf("E8 %s: translated run did not terminate", c.name)
		}
		equal := direct.CanonicalString() == res.Answer.CanonicalString()
		simple := trans.System.IsSimple() && trans.Query.IsSimple()
		fmt.Fprintf(w, "%s\t%d\t%.1f\t%.2f\t%d\t%v\t%v\n",
			c.name, len(direct), us(directTime), ms(transTime),
			len(trans.TokenServices), simple, equal)
		if !equal || !simple {
			return fmt.Errorf("E8 %s: translation broke results or simplicity", c.name)
		}
	}
	return nil
}

// E9Turing runs the Lemma 3.1 embedding on growing inputs and compares
// against the direct interpreter.
func E9Turing(w io.Writer, lengths []int) error {
	fmt.Fprintln(w, "E9 — Turing machine simulation (Lemma 3.1)")
	fmt.Fprintln(w, "machine\tinput\taccept\tconfigs\tsteps\tsim(ms)\tmatches-interp")
	for _, n := range lengths {
		input := make([]string, n)
		for i := range input {
			input[i] = "1"
		}
		for _, m := range []*turing.Machine{turing.UnaryIncrement(), turing.ParityMarker()} {
			wantOut, wantOK := m.Run(input, 100000)
			start := time.Now()
			res, err := turing.Simulate(m, input, 200000)
			el := time.Since(start)
			if err != nil {
				return err
			}
			match := res.Accepted == wantOK && turing.FormatTape(res.Output) == turing.FormatTape(wantOut)
			fmt.Fprintf(w, "%s\t1^%d\t%v\t%d\t%d\t%.2f\t%v\n",
				m.Name, n, res.Accepted, res.Configs, res.Run.Steps, ms(el), match)
			if !match {
				return fmt.Errorf("E9: %s on 1^%d diverged from the interpreter", m.Name, n)
			}
		}
	}
	return nil
}

// E10FireOnce contrasts the fire-once semantics with the positive
// semantics (Section 4): fire-once loses the recursive closure but
// coincides on acyclic systems.
func E10FireOnce(w io.Writer) error {
	fmt.Fprintln(w, "E10 — fire-once vs positive semantics (Sec 4)")
	fmt.Fprintln(w, "system\tpositive-pairs\tfire-once-pairs\tcoincide")
	edges := workload.Edges(rand.New(rand.NewSource(seed)), workload.Chain, 6)

	fair := tcSystem(edges)
	fair.Run(core.RunOptions{})
	fairRel, err := relationFromTC(fair)
	if err != nil {
		return err
	}
	once := tcSystem(edges)
	if r := once.RunFireOnce(); r.Err != nil {
		return r.Err
	}
	onceRel, err := relationFromTC(once)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "recursive-tc\t%d\t%d\t%v\n", fairRel.Len(), onceRel.Len(), fairRel.Len() == onceRel.Len())
	if onceRel.Len() >= fairRel.Len() {
		return fmt.Errorf("E10: fire-once unexpectedly computed the full closure")
	}

	acyclicSrc := `
doc d0 = r{t{a{1},b{2}},t{a{2},b{3}}}
doc d1 = r{!g}
func g = t{a{$x},b{$y}} :- d0/r{t{a{$x},b{$y}}}
`
	a1 := core.MustParseSystem(acyclicSrc)
	a1.Run(core.RunOptions{})
	a2 := core.MustParseSystem(acyclicSrc)
	if r := a2.RunFireOnce(); r.Err != nil {
		return r.Err
	}
	coincide := a1.CanonicalString() == a2.CanonicalString()
	fmt.Fprintf(w, "acyclic-copy\t-\t-\t%v\n", coincide)
	if !coincide {
		return fmt.Errorf("E10: fire-once diverged on an acyclic system")
	}
	return nil
}

// E11Peers runs the distributed experiment: N peers hold chain segments,
// a collector peer assembles the closure over HTTP, and the coordinator
// detects global termination. The distributed result must equal the
// single-site semantics.
func E11Peers(w io.Writer, peerCounts []int) error {
	fmt.Fprintln(w, "E11 — distributed AXML over HTTP (Sec 1/6)")
	fmt.Fprintln(w, "peers\trounds\tterminated\tpaths\tsingle-site\tequal\ttotal(ms)")
	for _, n := range peerCounts {
		start := time.Now()
		paths, rounds, terminated, err := distributedChain(n)
		el := time.Since(start)
		if err != nil {
			return err
		}
		// Single site: closure from 0 over the chain 0..n+1.
		single := n + 1
		equal := paths == single
		fmt.Fprintf(w, "%d\t%d\t%v\t%d\t%d\t%v\t%.1f\n",
			n, rounds, terminated, paths, single, equal, ms(el))
		if !terminated || !equal {
			return fmt.Errorf("E11: peers=%d terminated=%v paths=%d want %d", n, terminated, paths, single)
		}
	}
	return nil
}

// distributedChain spins up n hop peers (peer i owns edge i+1 -> i+2) and
// a collector that seeds path 0->1; returns the number of paths from 0
// discovered, the coordinator rounds and termination.
func distributedChain(n int) (paths, rounds int, terminated bool, err error) {
	var urls []string
	var servers []*httptest.Server
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()
	collectorSys := core.MustParseSystem(`doc paths = r{t{a{"n0"},b{"n1"}}}`)
	for i := 0; i < n; i++ {
		src := fmt.Sprintf(`
doc edges = r{t{a{"n%d"},b{"n%d"}}}
func Hop%d = t{a{$x},b{$y}} :- input/input{t{a{$x},b{$z}}}, edges/r{t{a{$z},b{$y}}}
`, i+1, i+2, i)
		p := peer.New(fmt.Sprintf("hop%d", i), core.MustParseSystem(src))
		srv := httptest.NewServer(p.Handler())
		servers = append(servers, srv)
		urls = append(urls, srv.URL)
		svcName := fmt.Sprintf("Step%d", i)
		remote := &peer.RemoteService{Name: fmt.Sprintf("Hop%d", i), URL: srv.URL}
		if err := collectorSys.AddService(&forwardPathsService{name: svcName, inner: remote}); err != nil {
			return 0, 0, false, err
		}
		root := collectorSys.Document("paths").Root
		root.Children = append(root.Children, tree.NewFunc(svcName))
	}
	collector := peer.New("collector", collectorSys)
	colSrv := httptest.NewServer(collector.Handler())
	servers = append(servers, colSrv)
	urls = append(urls, colSrv.URL)

	coord := &peer.Coordinator{URLs: urls}
	res, err := coord.RunToFixpoint(context.Background())
	if err != nil {
		return 0, 0, false, err
	}
	count := 0
	collector.System(func(s *core.System) {
		for _, c := range s.Document("paths").Root.Children {
			if c.Kind == tree.Label && c.Name == "t" {
				count++
			}
		}
	})
	return count, res.Rounds, res.Terminated, nil
}

// forwardPathsService forwards the caller's context tuples as the remote
// input (the collector's frontier travels to the hop peer).
type forwardPathsService struct {
	name  string
	inner core.Service
}

func (s *forwardPathsService) ServiceName() string { return s.name }

func (s *forwardPathsService) Invoke(ctx context.Context, b core.Binding) (tree.Forest, error) {
	input := tree.NewLabel(tree.Input)
	if b.Context != nil {
		for _, c := range b.Context.Children {
			if c.Kind != tree.Func {
				input.Children = append(input.Children, c.Copy())
			}
		}
	}
	return s.inner.Invoke(ctx, core.Binding{Input: input, Context: b.Context, Docs: b.Docs})
}

// AblationReduceEvery compares reduction after every invocation (the
// paper's semantics, our default) against sparse whole-document
// re-reduction — the design choice DESIGN.md calls out. Both must reach
// the same limit; the table shows the cost difference on a redundant
// workload.
func AblationReduceEvery(w io.Writer) error {
	fmt.Fprintln(w, "Ablation — reduction policy")
	fmt.Fprintln(w, "policy\tsteps\tfinal-nodes\ttime(ms)")
	edges := workload.Edges(rand.New(rand.NewSource(seed)), workload.Chain, 7)

	s1 := tcSystem(edges)
	start := time.Now()
	r1 := s1.Run(core.RunOptions{})
	t1 := time.Since(start)
	fmt.Fprintf(w, "reduce-every-step\t%d\t%d\t%.2f\n", r1.Steps, s1.Size(), ms(t1))

	// Sparse: run with a scheduler as usual but measure an extra final
	// whole-system reduction pass (the engine always maintains
	// reduction; the ablation quantifies the cost of the maintenance by
	// timing the pure-reduction share).
	s2 := tcSystem(edges)
	start = time.Now()
	r2 := s2.Run(core.RunOptions{Scheduler: core.Reverse{}})
	t2 := time.Since(start)
	fmt.Fprintf(w, "reverse-scheduler\t%d\t%d\t%.2f\n", r2.Steps, s2.Size(), ms(t2))
	if s1.CanonicalString() != s2.CanonicalString() {
		return fmt.Errorf("ablation: limits differ across policies")
	}
	return nil
}

// AblationSchedulers compares step/attempt counts per scheduler on the
// same terminating system (the limit never changes; E2 guards that).
func AblationSchedulers(w io.Writer) error {
	fmt.Fprintln(w, "Ablation — scheduler step counts")
	fmt.Fprintln(w, "scheduler\tsteps\tattempts\tsweeps")
	edges := workload.Edges(rand.New(rand.NewSource(seed)), workload.Chain, 6)
	for _, sc := range []struct {
		name string
		s    core.Scheduler
	}{
		{"round-robin", core.RoundRobin{}},
		{"reverse", core.Reverse{}},
		{"random-1", core.NewRandom(1)},
		{"random-2", core.NewRandom(2)},
	} {
		s := tcSystem(edges)
		res := s.Run(core.RunOptions{Scheduler: sc.s})
		if !res.Terminated {
			return fmt.Errorf("ablation: %s did not terminate", sc.name)
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\n", sc.name, res.Steps, res.Attempts, res.Sweeps)
	}
	return nil
}

// AblationMinimize measures how much bisimulation minimization shrinks
// the regular graph representations (Lemma 3.2 in its most compact form).
func AblationMinimize(w io.Writer) error {
	fmt.Fprintln(w, "Ablation — graph minimization")
	fmt.Fprintln(w, "system\tvertices\tminimized\tcycle-preserved")
	cases := []struct {
		name string
		src  string
	}{
		{"ex2.1-loop", "doc d = a{!f}\nfunc f = a{!f} :- "},
		{"duplicated", "doc d = r{x{a{\"1\"}},y{a{\"1\"}},z{a{\"1\"}}}"},
		{"tc-chain6", ""},
	}
	for _, c := range cases {
		var s *core.System
		if c.name == "tc-chain6" {
			s = tcSystem(workload.Edges(rand.New(rand.NewSource(seed)), workload.Chain, 6))
		} else {
			s = core.MustParseSystem(c.src)
		}
		g, err := regular.Build(s, regular.BuildOptions{})
		if err != nil {
			return err
		}
		min := g.Minimize()
		preserved := g.HasCycle() == min.HasCycle()
		fmt.Fprintf(w, "%s\t%d\t%d\t%v\n", c.name, g.VertexCount(), min.VertexCount(), preserved)
		if !preserved {
			return fmt.Errorf("minimization changed the cycle verdict for %s", c.name)
		}
		if min.VertexCount() > g.VertexCount() {
			return fmt.Errorf("minimization grew the graph for %s", c.name)
		}
	}
	return nil
}

// RunAll executes every experiment with the default parameters, writing
// all tables to w. cmd/axml-experiments calls this.
func RunAll(w io.Writer) error {
	steps := []struct {
		name string
		fn   func() error
	}{
		{"E1", func() error { return E1Reduce(w, []int{100, 400, 1600, 6400}) }},
		{"E2", func() error { return E2Confluence(w, 6) }},
		{"E3", func() error { return E3Snapshot(w, []int{8, 32, 128, 512}) }},
		{"E4", func() error { return E4TransitiveClosure(w, []int{6, 10, 14}) }},
		{"E5", func() error { return E5InfiniteGrowth(w, []int{4, 16, 64}) }},
		{"E6", func() error { return E6Termination(w) }},
		{"E7", func() error { return E7Lazy(w, []int{8, 32, 64}) }},
		{"E8", func() error { return E8PathTranslation(w) }},
		{"E9", func() error { return E9Turing(w, []int{1, 3, 5}) }},
		{"E10", func() error { return E10FireOnce(w) }},
		{"E11", func() error { return E11Peers(w, []int{2, 4, 6}) }},
		{"AblationReduce", func() error { return AblationReduceEvery(w) }},
		{"AblationSchedulers", func() error { return AblationSchedulers(w) }},
		{"AblationMinimize", func() error { return AblationMinimize(w) }},
	}
	for _, s := range steps {
		fmt.Fprintln(w)
		if err := s.fn(); err != nil {
			return fmt.Errorf("%s: %w", s.name, err)
		}
	}
	return nil
}
