// Package bench is the experiment harness behind bench_test.go and
// cmd/axml-experiments. The paper is a theory paper: its "evaluation" is
// a set of theorems, worked examples and complexity claims, so every
// experiment here reproduces one formal claim as a measurement (the
// per-experiment index lives in DESIGN.md; the recorded outcomes in
// EXPERIMENTS.md). Each function prints one table and returns an error if
// the claim's qualitative shape fails to hold — benches double as
// end-to-end checks.
package bench

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"axml/internal/core"
	"axml/internal/datalog"
	"axml/internal/query"
	"axml/internal/regular"
	"axml/internal/subsume"
	"axml/internal/syntax"
	"axml/internal/tree"
	"axml/internal/workload"
)

const seed = 20040614 // PODS 2004, June 14

// E1Reduce measures subsumption and reduction scaling (Proposition 2.1:
// PTIME; unique reduced version regardless of sibling order).
func E1Reduce(w io.Writer, sizes []int) error {
	fmt.Fprintln(w, "E1 — reduction & subsumption (Prop 2.1)")
	fmt.Fprintln(w, "nodes\treduced\tsubsume(us)\treduce(us)\tunique")
	var prev float64
	for _, n := range sizes {
		rng := rand.New(rand.NewSource(seed))
		cfg := workload.TreeConfig{Nodes: n, Redundancy: 0.5}
		t1 := workload.RandomTree(rng, cfg)
		t2 := t1.Copy()

		start := time.Now()
		subsume.Subsumed(t1, t2)
		subTime := time.Since(start)

		start = time.Now()
		r1 := subsume.Reduce(t1)
		redTime := time.Since(start)

		// Uniqueness: shuffle siblings, reduce, compare canonically.
		shuffled := shuffle(rand.New(rand.NewSource(seed+1)), t1)
		r2 := subsume.Reduce(shuffled)
		unique := r1.CanonicalString() == r2.CanonicalString()
		fmt.Fprintf(w, "%d\t%d\t%.1f\t%.1f\t%v\n",
			t1.Size(), r1.Size(), us(subTime), us(redTime), unique)
		if !unique {
			return fmt.Errorf("E1: reduced version not unique at n=%d", n)
		}
		if r1.Size() > t1.Size() {
			return fmt.Errorf("E1: reduction grew the tree at n=%d", n)
		}
		prev = us(redTime)
		_ = prev
	}
	return nil
}

func shuffle(rng *rand.Rand, n *tree.Node) *tree.Node {
	c := &tree.Node{Kind: n.Kind, Name: n.Name}
	for _, i := range rng.Perm(len(n.Children)) {
		c.Children = append(c.Children, shuffle(rng, n.Children[i]))
	}
	return c
}

func us(d time.Duration) float64 { return float64(d.Microseconds()) }

const tcSystemSrc = `
doc  d0 = r{%s}
doc  d1 = r{!g,!f}
func g = t{a{$x},b{$y}} :- d0/r{t{a{$x},b{$y}}}
func f = t{a{$x},b{$y}} :- d1/r{t{a{$x},b{$z}}}, d1/r{t{a{$z},b{$y}}}
`

func tcSystem(edges [][2]string) *core.System {
	body := ""
	for i, e := range edges {
		if i > 0 {
			body += ","
		}
		body += fmt.Sprintf(`t{a{"%s"},b{"%s"}}`, e[0], e[1])
	}
	return core.MustParseSystem(fmt.Sprintf(tcSystemSrc, body))
}

// E2Confluence checks Theorem 2.1: all fair schedules of a terminating
// system converge to the same limit.
func E2Confluence(w io.Writer, schedules int) error {
	fmt.Fprintln(w, "E2 — confluence of fair rewritings (Thm 2.1)")
	fmt.Fprintln(w, "scheduler\tsteps\tattempts\tsweeps\tsame-limit")
	edges := workload.Edges(rand.New(rand.NewSource(seed)), workload.Chain, 6)
	var canon string
	scheds := []struct {
		name string
		s    core.Scheduler
	}{
		{"round-robin", core.RoundRobin{}},
		{"reverse", core.Reverse{}},
	}
	for i := 0; i < schedules; i++ {
		scheds = append(scheds, struct {
			name string
			s    core.Scheduler
		}{fmt.Sprintf("random-%d", i), core.NewRandom(int64(i))})
	}
	for i, sc := range scheds {
		s := tcSystem(edges)
		res := s.Run(core.RunOptions{Scheduler: sc.s})
		if !res.Terminated {
			return fmt.Errorf("E2: scheduler %s did not terminate", sc.name)
		}
		c := s.CanonicalString()
		same := i == 0 || c == canon
		if i == 0 {
			canon = c
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%v\n", sc.name, res.Steps, res.Attempts, res.Sweeps, same)
		if !same {
			return fmt.Errorf("E2: scheduler %s reached a different limit", sc.name)
		}
	}
	return nil
}

// E3Snapshot measures snapshot query evaluation scaling (Proposition 3.1:
// PTIME data complexity, monotone).
func E3Snapshot(w io.Writer, sizes []int) error {
	fmt.Fprintln(w, "E3 — snapshot evaluation scaling (Prop 3.1)")
	fmt.Fprintln(w, "tuples\tanswers\teval(us)\tmonotone")
	q := syntax.MustParseQuery(`pair{$x,$y} :- d/r{t{a{$x},b{$z}}}, d/r{t{a{$z},b{$y}}}`)
	var prevAnswers int
	for _, n := range sizes {
		edges := workload.Edges(rand.New(rand.NewSource(seed)), workload.Chain, n)
		root := tree.NewLabel("r")
		for _, e := range edges {
			root.Children = append(root.Children, tree.NewLabel("t",
				tree.NewLabel("a", tree.NewValue(e[0])),
				tree.NewLabel("b", tree.NewValue(e[1]))))
		}
		docs := query.Docs{"d": root}
		start := time.Now()
		ans, err := query.Snapshot(q, docs)
		if err != nil {
			return err
		}
		el := time.Since(start)
		monotone := len(ans) >= prevAnswers
		fmt.Fprintf(w, "%d\t%d\t%.1f\t%v\n", len(edges), len(ans), us(el), monotone)
		if !monotone {
			return fmt.Errorf("E3: answers shrank when the document grew")
		}
		prevAnswers = len(ans)
	}
	return nil
}

// E4TransitiveClosure compares the simple positive system of Example 3.2
// against native datalog (naive and semi-naive) on the same graphs.
func E4TransitiveClosure(w io.Writer, sizes []int) error {
	fmt.Fprintln(w, "E4 — transitive closure: AXML vs datalog (Ex 3.2)")
	fmt.Fprintln(w, "nodes\tpairs\taxml(ms)\tsemi-naive(ms)\tnaive(ms)\tequal")
	for _, n := range sizes {
		edges := workload.Edges(rand.New(rand.NewSource(seed)), workload.Chain, n)
		prog := datalog.TransitiveClosure(edges)

		start := time.Now()
		s := tcSystem(edges)
		res := s.Run(core.RunOptions{MaxSteps: 10_000_000})
		axmlTime := time.Since(start)
		if !res.Terminated {
			return fmt.Errorf("E4: AXML TC did not terminate at n=%d", n)
		}
		axmlRel, err := relationFromTC(s)
		if err != nil {
			return err
		}

		start = time.Now()
		sdb, _, err := prog.SemiNaive()
		if err != nil {
			return err
		}
		semiTime := time.Since(start)

		start = time.Now()
		ndb, _, err := prog.Naive()
		if err != nil {
			return err
		}
		naiveTime := time.Since(start)

		equal := axmlRel.Len() == sdb["tc"].Len() && sdb["tc"].Len() == ndb["tc"].Len()
		fmt.Fprintf(w, "%d\t%d\t%.2f\t%.2f\t%.2f\t%v\n",
			n, sdb["tc"].Len(), ms(axmlTime), ms(semiTime), ms(naiveTime), equal)
		if !equal {
			return fmt.Errorf("E4: fixpoints differ at n=%d (axml=%d, semi=%d, naive=%d)",
				n, axmlRel.Len(), sdb["tc"].Len(), ndb["tc"].Len())
		}
	}
	return nil
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

// relationFromTC reads the pairs out of document d1 of a tcSystem.
func relationFromTC(s *core.System) (*datalog.Relation, error) {
	rel := datalog.NewRelation()
	root := s.Document("d1").Root
	for _, c := range root.Children {
		if c.Kind != tree.Label || c.Name != "t" {
			continue
		}
		var x, y string
		for _, ab := range c.Children {
			if len(ab.Children) != 1 {
				continue
			}
			switch ab.Name {
			case "a":
				x = ab.Children[0].Name
			case "b":
				y = ab.Children[0].Name
			}
		}
		rel.Add(datalog.Tuple{x, y})
	}
	return rel, nil
}

// E5InfiniteGrowth contrasts the paper's two infinite systems: the simple
// one (Example 2.1, regular semantics — finite graph) and the tree-
// variable one (Example 3.3, non-regular).
func E5InfiniteGrowth(w io.Writer, budgets []int) error {
	fmt.Fprintln(w, "E5 — infinite systems (Ex 2.1 vs Ex 3.3)")
	fmt.Fprintln(w, "steps\tex21-nodes\tex21-depth\tex33-nodes\tex33-depth")
	for _, b := range budgets {
		e21 := core.MustParseSystem("doc d = a{!f}\nfunc f = a{!f} :- ")
		r1 := e21.Run(core.RunOptions{MaxSteps: b})
		if r1.Terminated {
			return fmt.Errorf("E5: Example 2.1 terminated")
		}
		e33 := core.MustParseSystem("doc d = a{a{b},!g}\nfunc g = a{a{#X}} :- context/a{a{#X}}")
		r2 := e33.Run(core.RunOptions{MaxSteps: b})
		if r2.Terminated {
			return fmt.Errorf("E5: Example 3.3 terminated")
		}
		d1 := e21.Document("d").Root
		d2 := e33.Document("d").Root
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%d\n", b, d1.Size(), d1.Depth(), d2.Size(), d2.Depth())
	}
	// The simple one has a finite graph representation; Ex 3.3 does not
	// (Build rejects it).
	g, err := regular.Build(core.MustParseSystem("doc d = a{!f}\nfunc f = a{!f} :- "), regular.BuildOptions{})
	if err != nil {
		return fmt.Errorf("E5: graph for Example 2.1: %w", err)
	}
	fmt.Fprintf(w, "Ex 2.1 regular graph: %d vertices, cyclic=%v\n", g.VertexCount(), g.HasCycle())
	if !g.HasCycle() || g.VertexCount() > 6 {
		return fmt.Errorf("E5: unexpected graph shape")
	}
	if _, err := regular.Build(core.MustParseSystem(
		"doc d = a{a{b},!g}\nfunc g = a{a{#X}} :- context/a{a{#X}}"), regular.BuildOptions{}); err == nil {
		return fmt.Errorf("E5: non-simple system accepted by Build")
	}
	fmt.Fprintln(w, "Ex 3.3: rejected by the regular-graph construction (non-simple), as required")
	return nil
}
