package workload

import (
	"math/rand"
	"testing"

	"axml/internal/core"
	"axml/internal/lazy"
	"axml/internal/subsume"
	"axml/internal/tree"
)

func TestRandomTreeReproducibleAndSized(t *testing.T) {
	cfg := TreeConfig{Nodes: 200, Redundancy: 0.3, Funcs: []string{"f"}, FuncDensity: 0.1}
	a := RandomTree(rand.New(rand.NewSource(42)), cfg)
	b := RandomTree(rand.New(rand.NewSource(42)), cfg)
	if a.CanonicalString() != b.CanonicalString() {
		t.Fatal("same seed produced different trees")
	}
	c := RandomTree(rand.New(rand.NewSource(43)), cfg)
	if a.CanonicalString() == c.CanonicalString() {
		t.Fatal("different seeds produced identical trees")
	}
	if a.Size() < 100 {
		t.Fatalf("tree too small: %d", a.Size())
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRandomTreeRedundancyIsReducible(t *testing.T) {
	cfg := TreeConfig{Nodes: 300, Redundancy: 0.8}
	n := RandomTree(rand.New(rand.NewSource(7)), cfg)
	reduced := subsume.Reduce(n)
	if reduced.Size() >= n.Size() {
		t.Fatalf("high-redundancy tree did not shrink: %d -> %d", n.Size(), reduced.Size())
	}
}

func TestJazzSystemRunsAndAnswers(t *testing.T) {
	s := JazzSystem(rand.New(rand.NewSource(1)), JazzConfig{CDs: 10, MaterializedRatio: 0.5, IrrelevantBranches: 2})
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := lazy.Eval(s, RatingQuery(), lazy.Options{MaxSteps: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stable {
		t.Fatalf("jazz lazy eval did not stabilize: %+v", res)
	}
	if len(res.Answer) != 10 {
		t.Fatalf("ratings answered: %d, want 10", len(res.Answer))
	}
}

func TestJazzSystemNaiveDiverges(t *testing.T) {
	s := JazzSystem(rand.New(rand.NewSource(1)), JazzConfig{CDs: 3, IrrelevantBranches: 1})
	res := s.Run(core.RunOptions{MaxSteps: 50})
	if res.Terminated {
		t.Fatal("system with video feeds should not terminate")
	}
}

func TestEdgesShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	if got := len(Edges(rng, Chain, 10)); got != 9 {
		t.Fatalf("chain edges = %d", got)
	}
	if got := len(Edges(rng, Cycle, 10)); got != 10 {
		t.Fatalf("cycle edges = %d", got)
	}
	if got := len(Edges(rng, BinaryTree, 15)); got != 14 {
		t.Fatalf("tree edges = %d", got)
	}
	if got := len(Edges(rng, RandomGraph, 10)); got != 20 {
		t.Fatalf("random edges = %d", got)
	}
}

func TestTCProgramFixpoint(t *testing.T) {
	p := TCProgram(Edges(nil, Chain, 5))
	db, _, err := p.SemiNaive()
	if err != nil {
		t.Fatal(err)
	}
	if db["tc"].Len() != 10 { // C(5,2)
		t.Fatalf("tc = %d", db["tc"].Len())
	}
}

func TestRandomTreeFuncDensity(t *testing.T) {
	cfg := TreeConfig{Nodes: 400, Funcs: []string{"f", "g"}, FuncDensity: 0.5}
	n := RandomTree(rand.New(rand.NewSource(9)), cfg)
	if n.CountFunc() == 0 {
		t.Fatal("no function nodes generated")
	}
	var foreign int
	n.Walk(func(nd, _ *tree.Node) bool {
		if nd.Kind == tree.Func && nd.Name != "f" && nd.Name != "g" {
			foreign++
		}
		return true
	})
	if foreign != 0 {
		t.Fatalf("foreign function names: %d", foreign)
	}
}

func TestRandomSimpleSystemShapes(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		s := RandomSimpleSystem(rand.New(rand.NewSource(seed)), SystemConfig{})
		if !s.IsSimple() || !s.IsPositive() {
			t.Fatalf("seed %d: not simple positive", seed)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(s.DocNames()) == 0 || len(s.FuncNames()) == 0 {
			t.Fatalf("seed %d: empty system", seed)
		}
		if s.CountCalls() == 0 {
			t.Fatalf("seed %d: no calls", seed)
		}
	}
}

func TestRandomSimpleSystemCustomConfig(t *testing.T) {
	cfg := SystemConfig{Docs: 4, Funcs: 6, Items: 2, Values: 3, RecursionProb: 0.9, CallsPerDoc: 3}
	s := RandomSimpleSystem(rand.New(rand.NewSource(3)), cfg)
	if len(s.DocNames()) != 4 || len(s.FuncNames()) != 6 {
		t.Fatalf("docs=%d funcs=%d", len(s.DocNames()), len(s.FuncNames()))
	}
	// Duplicate calls within a document collapse when the document is
	// reduced on add, so the count is bounded, not exact.
	if got := s.CountCalls(); got < 4 || got > 12 {
		t.Fatalf("calls = %d, want 4..12", got)
	}
}

func TestJazzSystemAllMaterialized(t *testing.T) {
	s := JazzSystem(rand.New(rand.NewSource(2)), JazzConfig{CDs: 5, MaterializedRatio: 1.0})
	// No GetRating calls remain; the query is answerable immediately.
	if got := s.CountCalls(); got != 0 {
		t.Fatalf("calls = %d", got)
	}
	ans, err := s.SnapshotQuery(RatingQuery())
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 5 {
		t.Fatalf("answers = %d", len(ans))
	}
}

func TestTreeConfigDefaults(t *testing.T) {
	n := RandomTree(rand.New(rand.NewSource(1)), TreeConfig{})
	if n.Size() < 2 {
		t.Fatalf("default tree too small: %d", n.Size())
	}
}
