// Package workload provides seeded, reproducible generators for the
// experiment suite: random AXML trees with controllable redundancy,
// jazz-portal documents and systems in the style of the paper's running
// example, and graph workloads for the datalog/transitive-closure
// experiments.
package workload

import (
	"fmt"
	"math/rand"

	"axml/internal/core"
	"axml/internal/datalog"
	"axml/internal/query"
	"axml/internal/syntax"
	"axml/internal/tree"
)

// TreeConfig controls RandomTree.
type TreeConfig struct {
	// Nodes is the target node count (approximate, always >= 1).
	Nodes int
	// MaxBranch bounds the children per node (default 4).
	MaxBranch int
	// Labels is the label alphabet size (default 6).
	Labels int
	// Values is the value domain size (default 8).
	Values int
	// FuncDensity in [0,1] is the fraction of leaves that become calls
	// to the function names in Funcs (ignored when Funcs is empty).
	FuncDensity float64
	// Funcs are the function names to sprinkle.
	Funcs []string
	// Redundancy in [0,1]: fraction of subtrees that are duplicated
	// under their parent (possibly with a subsumed variant), to exercise
	// reduction.
	Redundancy float64
}

func (c *TreeConfig) defaults() {
	if c.Nodes <= 0 {
		c.Nodes = 64
	}
	if c.MaxBranch <= 0 {
		c.MaxBranch = 4
	}
	if c.Labels <= 0 {
		c.Labels = 6
	}
	if c.Values <= 0 {
		c.Values = 8
	}
}

// RandomTree builds a random AXML document tree.
func RandomTree(rng *rand.Rand, cfg TreeConfig) *tree.Node {
	cfg.defaults()
	budget := cfg.Nodes
	root := tree.NewLabel("root")
	budget--
	var grow func(n *tree.Node, depth int)
	grow = func(n *tree.Node, depth int) {
		if budget <= 0 {
			return
		}
		kids := 1 + rng.Intn(cfg.MaxBranch)
		for i := 0; i < kids && budget > 0; i++ {
			budget--
			switch {
			case len(cfg.Funcs) > 0 && rng.Float64() < cfg.FuncDensity:
				n.Children = append(n.Children, tree.NewFunc(cfg.Funcs[rng.Intn(len(cfg.Funcs))]))
			case depth > 2 && rng.Float64() < 0.4:
				n.Children = append(n.Children, tree.NewValue(fmt.Sprintf("v%d", rng.Intn(cfg.Values))))
			default:
				c := tree.NewLabel(fmt.Sprintf("l%d", rng.Intn(cfg.Labels)))
				n.Children = append(n.Children, c)
				grow(c, depth+1)
			}
		}
		// Redundancy: duplicate one child (and sometimes a pruned copy).
		// The duplicate is charged against the node budget so redundancy
		// cannot compound exponentially up the tree.
		if cfg.Redundancy > 0 && len(n.Children) > 0 && budget > 0 && rng.Float64() < cfg.Redundancy {
			orig := n.Children[rng.Intn(len(n.Children))]
			dup := orig.Copy()
			if len(dup.Children) > 0 && rng.Float64() < 0.5 {
				dup.Children = dup.Children[:len(dup.Children)-1]
			}
			budget -= dup.Size()
			n.Children = append(n.Children, dup)
		}
	}
	grow(root, 0)
	return root
}

// JazzConfig controls the jazz-portal generator.
type JazzConfig struct {
	// CDs is the number of cd entries in the portal.
	CDs int
	// MaterializedRatio in [0,1] is the fraction of cds whose rating is
	// extensional; the rest carry a GetRating call.
	MaterializedRatio float64
	// IrrelevantBranches adds that many side branches with recursive
	// feed calls the rating queries never need (the lazy-evaluation
	// experiment's fuel).
	IrrelevantBranches int
}

// JazzSystem builds a self-contained portal system: a ratings database
// document, a portal document with cd entries (some intensional), a
// GetRating service answering from the database via context, and
// optional never-needed recursive VideoFeed branches.
func JazzSystem(rng *rand.Rand, cfg JazzConfig) *core.System {
	s := core.NewSystem()
	ratings := tree.NewLabel("db")
	portal := tree.NewLabel("directory")
	for i := 0; i < cfg.CDs; i++ {
		title := fmt.Sprintf("song-%03d", i)
		stars := fmt.Sprintf("%d", 1+rng.Intn(5))
		ratings.Children = append(ratings.Children, tree.NewLabel("entry",
			tree.NewLabel("title", tree.NewValue(title)),
			tree.NewLabel("stars", tree.NewValue(stars)),
		))
		cd := tree.NewLabel("cd", tree.NewLabel("title", tree.NewValue(title)))
		if rng.Float64() < cfg.MaterializedRatio {
			cd.Children = append(cd.Children, tree.NewLabel("rating", tree.NewValue(stars)))
		} else {
			cd.Children = append(cd.Children, tree.NewFunc("GetRating"))
		}
		portal.Children = append(portal.Children, cd)
	}
	for i := 0; i < cfg.IrrelevantBranches; i++ {
		portal.Children = append(portal.Children,
			tree.NewLabel("videos", tree.NewFunc("VideoFeed")))
	}
	mustAdd(s.AddDocument(tree.NewDocument("ratings", ratings)))
	mustAdd(s.AddDocument(tree.NewDocument("portal", portal)))
	mustAdd(s.AddQuery(named(syntax.MustParseQuery(
		`rating{$s} :- context/cd{title{$t}}, ratings/db{entry{title{$t},stars{$s}}}`), "GetRating")))
	mustAdd(s.AddQuery(named(syntax.MustParseQuery(`clip{!VideoFeed} :- `), "VideoFeed")))
	return s
}

func named(q *query.Query, name string) *query.Query {
	q.Name = name
	return q
}

// RatingQuery returns the query the lazy experiment answers over a
// JazzSystem.
func RatingQuery() *query.Query {
	return syntax.MustParseQuery(`out{$t,$s} :- portal/directory{cd{title{$t},rating{$s}}}`)
}

func mustAdd(err error) {
	if err != nil {
		panic(err)
	}
}

// GraphKind selects a datalog graph shape.
type GraphKind int

// Graph shapes.
const (
	Chain GraphKind = iota
	Cycle
	BinaryTree
	RandomGraph
)

// Edges generates a graph with n vertices of the given shape; RandomGraph
// uses roughly 2n edges.
func Edges(rng *rand.Rand, kind GraphKind, n int) [][2]string {
	name := func(i int) string { return fmt.Sprintf("n%d", i) }
	var out [][2]string
	switch kind {
	case Chain:
		for i := 0; i+1 < n; i++ {
			out = append(out, [2]string{name(i), name(i + 1)})
		}
	case Cycle:
		for i := 0; i < n; i++ {
			out = append(out, [2]string{name(i), name((i + 1) % n)})
		}
	case BinaryTree:
		for i := 1; i < n; i++ {
			out = append(out, [2]string{name((i - 1) / 2), name(i)})
		}
	case RandomGraph:
		for k := 0; k < 2*n; k++ {
			out = append(out, [2]string{name(rng.Intn(n)), name(rng.Intn(n))})
		}
	}
	return out
}

// TCProgram builds the transitive-closure datalog program for a graph.
func TCProgram(edges [][2]string) *datalog.Program {
	return datalog.TransitiveClosure(edges)
}
