package workload

import (
	"fmt"
	"math/rand"

	"axml/internal/core"
	"axml/internal/pattern"
	"axml/internal/query"
	"axml/internal/tree"
)

// SystemConfig controls RandomSimpleSystem.
type SystemConfig struct {
	// Docs is the number of documents (default 2).
	Docs int
	// Funcs is the number of services (default 3).
	Funcs int
	// Items is the number of item tuples per document (default 4).
	Items int
	// Values is the value domain size (default 5).
	Values int
	// RecursionProb is the probability that a service head emits a call
	// (default 0.4) — the source of potential non-termination.
	RecursionProb float64
	// CallsPerDoc is the number of calls sprinkled in each document
	// (default 2).
	CallsPerDoc int
}

func (c *SystemConfig) defaults() {
	if c.Docs <= 0 {
		c.Docs = 2
	}
	if c.Funcs <= 0 {
		c.Funcs = 3
	}
	if c.Items <= 0 {
		c.Items = 4
	}
	if c.Values <= 0 {
		c.Values = 5
	}
	if c.RecursionProb == 0 {
		c.RecursionProb = 0.4
	}
	if c.CallsPerDoc <= 0 {
		c.CallsPerDoc = 2
	}
}

// RandomSimpleSystem generates a random *simple positive* system: every
// service is a conjunctive query without tree variables. The generator is
// shaped so both terminating and non-terminating systems appear, which
// the cross-validation tests exploit (graph decision vs budgeted engine).
func RandomSimpleSystem(rng *rand.Rand, cfg SystemConfig) *core.System {
	cfg.defaults()
	s := core.NewSystem()
	docName := func(i int) string { return fmt.Sprintf("d%d", i) }
	funcName := func(i int) string { return fmt.Sprintf("f%d", i) }

	// Services first (documents reference them).
	for i := 0; i < cfg.Funcs; i++ {
		q := randomServiceQuery(rng, cfg, funcName(i), docName)
		mustAdd(s.AddQuery(q))
	}
	for i := 0; i < cfg.Docs; i++ {
		root := tree.NewLabel("r")
		for j := 0; j < cfg.Items; j++ {
			root.Children = append(root.Children, tree.NewLabel("item",
				tree.NewValue(fmt.Sprintf("v%d", rng.Intn(cfg.Values)))))
		}
		for j := 0; j < cfg.CallsPerDoc; j++ {
			root.Children = append(root.Children, tree.NewFunc(funcName(rng.Intn(cfg.Funcs))))
		}
		mustAdd(s.AddDocument(tree.NewDocument(docName(i), root)))
	}
	if err := s.Validate(); err != nil {
		panic(err)
	}
	return s
}

// randomServiceQuery builds a random simple query. Shapes:
//   - copy:    item{$x}            :- dj/r{item{$x}}
//   - tag:     out{$x,"c"}         :- dj/r{item{$x}}
//   - wrapcall item{$x,!fk}        :- dj/r{item{$x}}   (possible recursion)
//   - join:    pair{$x,$y}         :- dj/r{item{$x}}, dk/r{item{$y}}, $x != $y
//   - const:   extra{"c"[,!fk]}    :-                  (empty body)
func randomServiceQuery(rng *rand.Rand, cfg SystemConfig, name string, docName func(int) string) *query.Query {
	xVar := pattern.VVar("x")
	atom := func(v string) query.Atom {
		return query.Atom{
			Doc:     docName(rng.Intn(cfg.Docs)),
			Pattern: pattern.Label("r", pattern.Label("item", pattern.VVar(v))),
		}
	}
	callee := func() *pattern.Node {
		return pattern.Func(fmt.Sprintf("f%d", rng.Intn(cfg.Funcs)))
	}
	q := &query.Query{Name: name}
	switch rng.Intn(5) {
	case 0:
		q.Head = pattern.Label("item", xVar)
		q.Body = []query.Atom{atom("x")}
	case 1:
		q.Head = pattern.Label("out", xVar, pattern.Value(fmt.Sprintf("c%d", rng.Intn(3))))
		q.Body = []query.Atom{atom("x")}
	case 2:
		head := pattern.Label("item", xVar)
		if rng.Float64() < cfg.RecursionProb {
			head.Children = append(head.Children, callee())
		}
		q.Head = head
		q.Body = []query.Atom{atom("x")}
	case 3:
		q.Head = pattern.Label("pair", pattern.Label("a", pattern.VVar("x")), pattern.Label("b", pattern.VVar("y")))
		q.Body = []query.Atom{atom("x"), atom("y")}
		q.Ineqs = []query.Ineq{{Left: query.Variable("x"), Right: query.Variable("y")}}
	default:
		head := pattern.Label("extra", pattern.Value(fmt.Sprintf("k%d", rng.Intn(3))))
		if rng.Float64() < cfg.RecursionProb {
			head.Children = append(head.Children, callee())
		}
		q.Head = head
	}
	if err := q.Validate(); err != nil {
		panic(err)
	}
	return q
}
