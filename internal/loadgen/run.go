package loadgen

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"axml/internal/obs"
	"axml/internal/peer"
	"axml/internal/tree"
)

// Runner executes a scenario against a fleet. Zero-value fields get
// sensible defaults; only Scenario is required.
type Runner struct {
	// Scenario is the workload to drive.
	Scenario Scenario
	// HTTP is the transport used for the per-target peer.Clients and
	// the /debug/vars scrapes; nil means NewHTTPClient(10s, 256).
	HTTP *http.Client
	// Clients overrides the clients built from Scenario.Targets
	// (index-aligned) — tests inject instrumented ones here.
	Clients []*peer.Client
	// Registries are in-process registries to correlate server-side:
	// each is snapshotted before and after the run and diffed into
	// Result.Server under a "peer<i>." prefix.
	Registries []*obs.Registry
	// VarsURLs are /debug/vars endpoints to scrape before and after;
	// diffs land in Result.Server under a "vars<i>." prefix. Scrape
	// failures are reported in Result.ServerErrs, never fail the run.
	VarsURLs []string
}

// NewHTTPClient builds a transport sized for load generation: the
// default http.Transport keeps only 2 idle connections per host, which
// at hundreds of concurrent requests against 3 peers means constant
// re-dialing — the harness would measure its own TCP handshakes.
func NewHTTPClient(timeout time.Duration, maxIdlePerHost int) *http.Client {
	tr := http.DefaultTransport.(*http.Transport).Clone()
	if maxIdlePerHost > 0 {
		tr.MaxIdleConnsPerHost = maxIdlePerHost
		if tr.MaxIdleConns < maxIdlePerHost*4 {
			tr.MaxIdleConns = maxIdlePerHost * 4
		}
	}
	return &http.Client{Timeout: timeout, Transport: tr}
}

// OpStats summarizes one op kind's latency and outcome over a run.
// Quantiles are upper bounds of power-of-two histogram buckets (within
// 2x); Mean is exact.
type OpStats struct {
	Sent   int64         `json:"sent"`
	Errors int64         `json:"errors"`
	Mean   time.Duration `json:"mean_ns"`
	P50    time.Duration `json:"p50_ns"`
	P99    time.Duration `json:"p99_ns"`
	P999   time.Duration `json:"p999_ns"`
	Max    time.Duration `json:"max_ns"`
}

// Result reports one run.
type Result struct {
	// Scenario and Mode echo the workload.
	Scenario string `json:"scenario"`
	Mode     string `json:"mode"`
	// TargetRate is the configured open-loop rate (0 for closed).
	TargetRate float64 `json:"target_rate,omitempty"`
	// Sent and Errors count requests over the whole run.
	Sent   int64 `json:"sent"`
	Errors int64 `json:"errors"`
	// Stalled counts open-loop arrivals that had to wait for the
	// in-flight cap — nonzero means the configured rate outran the
	// fleet and latencies under-report the backlog.
	Stalled int64 `json:"stalled,omitempty"`
	// Elapsed is the wall clock of the request phase.
	Elapsed time.Duration `json:"elapsed_ns"`
	// AchievedRPS is Sent/Elapsed.
	AchievedRPS float64 `json:"achieved_rps"`
	// Overall aggregates every request; PerOp splits by op kind.
	Overall OpStats            `json:"overall"`
	PerOp   map[string]OpStats `json:"per_op"`
	// FirstErrors samples up to one error message per op kind.
	FirstErrors map[string]string `json:"first_errors,omitempty"`
	// SLOViolations lists every objective the run missed (empty =
	// SLO pass).
	SLOViolations []string `json:"slo_violations,omitempty"`
	// Server carries the diffed server-side metrics (peer<i>. from
	// Registries, vars<i>. from VarsURLs).
	Server map[string]float64 `json:"server,omitempty"`
	// ServerErrs reports scrape failures (the run itself is unaffected).
	ServerErrs []string `json:"server_errs,omitempty"`
}

// SLOPass reports whether every configured objective held.
func (r Result) SLOPass() bool { return len(r.SLOViolations) == 0 }

// recorder accumulates per-op latency and errors; obs.Histogram is
// lock-free, so concurrent request goroutines never serialize on it.
type recorder struct {
	reg    *obs.Registry
	errs   *obs.Registry
	mu     sync.Mutex
	firsts map[string]string
}

func newRecorder() *recorder {
	return &recorder{reg: obs.NewRegistry(), errs: obs.NewRegistry(), firsts: map[string]string{}}
}

func (rec *recorder) record(kind string, d time.Duration, err error) {
	rec.reg.Histogram("lat." + kind).Observe(int64(d))
	rec.reg.Histogram("lat.all").Observe(int64(d))
	if err != nil {
		rec.errs.Counter("err." + kind).Inc()
		rec.errs.Counter("err.all").Inc()
		rec.mu.Lock()
		if _, ok := rec.firsts[kind]; !ok {
			rec.firsts[kind] = err.Error()
		}
		rec.mu.Unlock()
	}
}

func (rec *recorder) stats(kind string) OpStats {
	s := rec.reg.Histogram("lat." + kind).Snapshot()
	return OpStats{
		Sent:   s.Count,
		Errors: rec.errs.Counter("err." + kind).Value(),
		Mean:   time.Duration(s.Mean()),
		P50:    time.Duration(s.P50),
		P99:    time.Duration(s.P99),
		P999:   time.Duration(s.Quantile(0.999)),
		Max:    time.Duration(s.Max),
	}
}

// anchorTable remembers the last delta digest acknowledged per
// (target, doc), so OpDelta traffic looks like real pollers: first
// request full, steady state mostly "same"/patch answers.
type anchorTable struct {
	mu sync.Mutex
	m  map[string]string
}

func newAnchorTable() *anchorTable { return &anchorTable{m: map[string]string{}} }

func (a *anchorTable) get(target int, doc string) string {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.m[fmt.Sprintf("%d/%s", target, doc)]
}

func (a *anchorTable) put(target int, doc, digest string) {
	a.mu.Lock()
	a.m[fmt.Sprintf("%d/%s", target, doc)] = digest
	a.mu.Unlock()
}

// Run drives the scenario to completion (or ctx cancellation — the
// partial result is still summarized) and reports latencies, errors,
// SLO verdicts and server-side metric deltas.
func (r *Runner) Run(ctx context.Context) (Result, error) {
	s := r.Scenario.withDefaults()
	if err := s.Validate(); err != nil {
		return Result{}, err
	}
	httpc := r.HTTP
	if httpc == nil {
		httpc = NewHTTPClient(10*time.Second, 256)
	}
	clients := r.Clients
	if clients == nil {
		clients = make([]*peer.Client, len(s.Targets))
		for i, u := range s.Targets {
			clients[i] = peer.NewClient(u, httpc)
		}
	}
	if len(clients) != len(s.Targets) {
		return Result{}, fmt.Errorf("loadgen: %d clients for %d targets", len(clients), len(s.Targets))
	}

	res := Result{Scenario: s.Name, Mode: s.Mode}
	before, scrapeErrs := r.scrape(ctx, httpc)
	res.ServerErrs = scrapeErrs

	rec := newRecorder()
	anchors := newAnchorTable()
	var stalled int64
	start := time.Now()
	var err error
	switch s.Mode {
	case "open":
		res.TargetRate = s.Rate
		err = r.runOpen(ctx, s, clients, rec, anchors, &stalled)
	case "closed":
		err = r.runClosed(ctx, s, clients, rec, anchors)
	}
	res.Elapsed = time.Since(start)
	res.Stalled = stalled

	res.Overall = rec.stats("all")
	res.Sent = res.Overall.Sent
	res.Errors = res.Overall.Errors
	if res.Elapsed > 0 {
		res.AchievedRPS = float64(res.Sent) / res.Elapsed.Seconds()
	}
	res.PerOp = map[string]OpStats{}
	for _, op := range s.Ops {
		if _, ok := res.PerOp[op.Kind]; !ok {
			res.PerOp[op.Kind] = rec.stats(op.Kind)
		}
	}
	rec.mu.Lock()
	if len(rec.firsts) > 0 {
		res.FirstErrors = make(map[string]string, len(rec.firsts))
		for k, v := range rec.firsts {
			res.FirstErrors[k] = v
		}
	}
	rec.mu.Unlock()
	res.SLOViolations = s.SLO.check(res.Overall)

	after, errs2 := r.scrape(ctx, httpc)
	res.ServerErrs = append(res.ServerErrs, errs2...)
	if len(after) > 0 {
		res.Server = obs.DiffVars(before, after)
	}
	return res, err
}

// check compares one run's overall stats against the objective.
func (o SLO) check(s OpStats) []string {
	var v []string
	lim := func(name string, got time.Duration, want Duration) {
		if want > 0 && got > want.D() {
			v = append(v, fmt.Sprintf("%s %v > SLO %v", name, got, want.D()))
		}
	}
	lim("p50", s.P50, o.P50)
	lim("p99", s.P99, o.P99)
	lim("p999", s.P999, o.P999)
	return v
}

// runOpen replays the seeded Poisson schedule: each arrival fires at
// its offset regardless of how earlier requests are doing (bounded by
// MaxInFlight), which is what makes tail latency honest under load.
func (r *Runner) runOpen(ctx context.Context, s Scenario, clients []*peer.Client,
	rec *recorder, anchors *anchorTable, stalled *int64) error {
	sched := PoissonSchedule(s.Seed, s.Rate, s.Duration.D())
	reqs := newPlanner(&s, s.Seed+1).plan(len(sched))
	sem := make(chan struct{}, s.MaxInFlight)
	var wg sync.WaitGroup
	start := time.Now()
	timer := time.NewTimer(0)
	defer timer.Stop()
	<-timer.C
	for i, at := range sched {
		if wait := time.Until(start.Add(at)); wait > 0 {
			timer.Reset(wait)
			select {
			case <-timer.C:
			case <-ctx.Done():
				wg.Wait()
				return ctx.Err()
			}
		}
		select {
		case sem <- struct{}{}:
		default:
			// The fleet is slower than the schedule: block (and say so).
			atomic.AddInt64(stalled, 1)
			select {
			case sem <- struct{}{}:
			case <-ctx.Done():
				wg.Wait()
				return ctx.Err()
			}
		}
		wg.Add(1)
		go func(req request) {
			defer wg.Done()
			defer func() { <-sem }()
			t0 := time.Now()
			err := execute(ctx, clients[req.target], req, anchors)
			rec.record(req.op.Kind, time.Since(t0), err)
		}(reqs[i])
	}
	wg.Wait()
	return ctx.Err()
}

// runClosed runs Workers synchronous callers with think time — the
// classic benchmark loop, useful for saturating a fleet without
// modeling arrivals.
func (r *Runner) runClosed(ctx context.Context, s Scenario, clients []*peer.Client,
	rec *recorder, anchors *anchorTable) error {
	deadline := time.Now().Add(s.Duration.D())
	var wg sync.WaitGroup
	for w := 0; w < s.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Distinct per-worker streams; 7919 keeps seeds apart without
			// correlating low bits across workers.
			pl := newPlanner(&s, s.Seed+int64(w)*7919+2)
			think := s.Think.D()
			jitter := rand.New(rand.NewSource(s.Seed + int64(w)))
			for time.Now().Before(deadline) && ctx.Err() == nil {
				req := pl.next()
				t0 := time.Now()
				err := execute(ctx, clients[req.target], req, anchors)
				rec.record(req.op.Kind, time.Since(t0), err)
				if think > 0 {
					// ±25% jitter de-synchronizes the worker herd.
					d := think + time.Duration((jitter.Float64()-0.5)*0.5*float64(think))
					select {
					case <-time.After(d):
					case <-ctx.Done():
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	return ctx.Err()
}

// execute performs one planned request through the typed client. Every
// request starts a fresh trace root, so server-side spans (http, sweep,
// call, push, sync) stitch into per-request exemplar traces even though
// the harness itself never emits spans.
func execute(ctx context.Context, cl *peer.Client, req request, anchors *anchorTable) error {
	ctx = obs.ContextWithSpan(ctx, obs.NewTrace())
	switch req.op.Kind {
	case OpDoc:
		_, err := cl.Doc(ctx, req.doc)
		return err
	case OpDelta:
		d, err := cl.Delta(ctx, req.doc, anchors.get(req.target, req.doc))
		if err == nil {
			anchors.put(req.target, req.doc, d.To)
		}
		return err
	case OpInvoke:
		_, err := cl.Invoke(ctx, peer.Envelope{Service: req.op.Service})
		return err
	case OpHashes:
		_, err := cl.Hashes(ctx)
		return err
	case OpPush:
		// A tiny forest keyed by the sampled doc name: repeats reduce
		// away on the subscriber, so sustained push load grows the
		// target document by the hot-set size, not the request count.
		f := tree.Forest{tree.NewLabel("load").Add(tree.NewValue(req.doc))}
		return cl.Push(ctx, req.op.PushID, f)
	default:
		return fmt.Errorf("loadgen: unknown op kind %q", req.op.Kind)
	}
}

// scrape flattens every configured server-side metric source.
func (r *Runner) scrape(ctx context.Context, httpc *http.Client) (map[string]float64, []string) {
	out := map[string]float64{}
	var errs []string
	for i, reg := range r.Registries {
		for k, v := range obs.FlattenSnapshot(reg) {
			out[fmt.Sprintf("peer%d.%s", i, k)] = v
		}
	}
	for i, u := range r.VarsURLs {
		vars, err := ScrapeVars(ctx, httpc, u)
		if err != nil {
			errs = append(errs, fmt.Sprintf("vars%d (%s): %v", i, u, err))
			continue
		}
		for k, v := range vars {
			out[fmt.Sprintf("vars%d.%s", i, k)] = v
		}
	}
	return out, errs
}

// ScrapeVars fetches and flattens one /debug/vars endpoint.
func ScrapeVars(ctx context.Context, httpc *http.Client, url string) (map[string]float64, error) {
	if httpc == nil {
		httpc = http.DefaultClient
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := httpc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("loadgen: scrape %s: %s", url, resp.Status)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return nil, err
	}
	return obs.ParseVars(body)
}

// ServerKeys returns the sorted keys of a server diff matching a
// substring — report helpers use it to pull the interesting counters
// (peer.http.requests, engine.calls) out of the full diff.
func ServerKeys(server map[string]float64, contains string) []string {
	var keys []string
	for k := range server {
		if contains == "" || strings.Contains(k, contains) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}
