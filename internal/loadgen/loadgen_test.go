package loadgen

import (
	"context"
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"
)

func validScenarioJSON() string {
	return `{
		"name": "read-heavy",
		"targets": ["http://127.0.0.1:1", "http://127.0.0.1:2"],
		"ops": [
			{"kind": "doc", "weight": 4},
			{"kind": "delta", "weight": 2},
			{"kind": "invoke", "service": "Lookup"},
			{"kind": "hashes"},
			{"kind": "push", "push_id": "ingest"}
		],
		"docs": ["d00", "d01", "d02"],
		"mode": "open",
		"rate": 100,
		"duration": "250ms",
		"slo": {"p99": "50ms", "p999": 100000000}
	}`
}

func TestParseScenario(t *testing.T) {
	s, err := ParseScenario([]byte(validScenarioJSON()))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "read-heavy" || len(s.Targets) != 2 || len(s.Ops) != 5 {
		t.Fatalf("parsed shape wrong: %+v", s)
	}
	if s.Duration.D() != 250*time.Millisecond {
		t.Errorf("duration = %v, want 250ms", s.Duration.D())
	}
	if s.SLO.P99.D() != 50*time.Millisecond {
		t.Errorf("slo p99 = %v, want 50ms", s.SLO.P99.D())
	}
	if s.SLO.P999.D() != 100*time.Millisecond {
		t.Errorf("numeric-ns slo p999 = %v, want 100ms", s.SLO.P999.D())
	}
	// Defaults applied by parsing.
	if s.Mode != "open" || s.Workers != 8 || s.MaxInFlight != 1024 || s.Seed != 1 {
		t.Errorf("defaults not applied: %+v", s)
	}
	if s.ZipfS != 1.2 || s.ZipfV != 1 {
		t.Errorf("zipf defaults not applied: s=%v v=%v", s.ZipfS, s.ZipfV)
	}
	if s.Ops[2].Weight != 1 {
		t.Errorf("default op weight = %v, want 1", s.Ops[2].Weight)
	}
}

func TestParseScenarioRejects(t *testing.T) {
	cases := map[string]string{
		"unknown field":    `{"targets":["u"],"ops":[{"kind":"hashes"}],"rate":1,"duration":"1s","typo_knob":3}`,
		"no targets":       `{"targets":[],"ops":[{"kind":"hashes"}],"rate":1,"duration":"1s"}`,
		"no ops":           `{"targets":["u"],"ops":[],"rate":1,"duration":"1s"}`,
		"unknown kind":     `{"targets":["u"],"ops":[{"kind":"mystery"}],"rate":1,"duration":"1s"}`,
		"open needs rate":  `{"targets":["u"],"ops":[{"kind":"hashes"}],"duration":"1s"}`,
		"unknown mode":     `{"targets":["u"],"ops":[{"kind":"hashes"}],"mode":"ajar","rate":1,"duration":"1s"}`,
		"no duration":      `{"targets":["u"],"ops":[{"kind":"hashes"}],"rate":1}`,
		"doc needs docs":   `{"targets":["u"],"ops":[{"kind":"doc"}],"rate":1,"duration":"1s"}`,
		"invoke needs svc": `{"targets":["u"],"ops":[{"kind":"invoke"}],"rate":1,"duration":"1s"}`,
		"push needs id":    `{"targets":["u"],"ops":[{"kind":"push"}],"rate":1,"duration":"1s"}`,
		"bad duration":     `{"targets":["u"],"ops":[{"kind":"hashes"}],"rate":1,"duration":"sideways"}`,
	}
	for name, src := range cases {
		if _, err := ParseScenario([]byte(src)); err == nil {
			t.Errorf("%s: parse accepted %s", name, src)
		}
	}
	// A pinned doc lifts the docs-universe requirement.
	ok := `{"targets":["u"],"ops":[{"kind":"doc","doc":"d0"}],"rate":1,"duration":"1s"}`
	if _, err := ParseScenario([]byte(ok)); err != nil {
		t.Errorf("pinned doc rejected: %v", err)
	}
}

// The open-loop arrival schedule is a pure function of (seed, rate,
// horizon): replaying a run must replay its arrivals exactly.
func TestPoissonScheduleDeterministic(t *testing.T) {
	a := PoissonSchedule(42, 500, 2*time.Second)
	b := PoissonSchedule(42, 500, 2*time.Second)
	if len(a) != len(b) {
		t.Fatalf("same seed, different lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	c := PoissonSchedule(43, 500, 2*time.Second)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}

	// Count concentrates around rate*horizon (sigma = sqrt(1000) ~ 32);
	// 5 sigma keeps this deterministic-in-practice without being tight.
	want := 1000.0
	if got := float64(len(a)); math.Abs(got-want) > 5*math.Sqrt(want) {
		t.Errorf("arrival count %v too far from %v", got, want)
	}
	// Offsets are sorted and inside the horizon.
	for i := 1; i < len(a); i++ {
		if a[i] < a[i-1] {
			t.Fatalf("arrivals not monotone at %d", i)
		}
	}
	if a[len(a)-1] >= 2*time.Second {
		t.Errorf("arrival beyond horizon: %v", a[len(a)-1])
	}
}

// Zipf popularity must actually skew: the hottest document draws an
// outsized share, and rank order follows index order.
func TestPopularitySkew(t *testing.T) {
	const n, draws = 20, 20000
	pop := NewPopularity(rand.New(rand.NewSource(7)), 1.2, 1, n)
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[pop.Pick()]++
	}
	if frac := float64(counts[0]) / draws; frac < 0.25 {
		t.Errorf("hottest doc drew %.2f of traffic, want >= 0.25 at s=1.2", frac)
	}
	if counts[0] <= counts[n-1]*2 {
		t.Errorf("head (%d) not clearly hotter than tail (%d)", counts[0], counts[n-1])
	}
}

// The planner's request stream is deterministic for a seed and respects
// op weights roughly.
func TestPlannerDeterministicAndWeighted(t *testing.T) {
	s, err := ParseScenario([]byte(validScenarioJSON()))
	if err != nil {
		t.Fatal(err)
	}
	a := newPlanner(&s, 9).plan(5000)
	b := newPlanner(&s, 9).plan(5000)
	counts := map[string]int{}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d differs across same-seed planners", i)
		}
		counts[a[i].op.Kind]++
		if a[i].target < 0 || a[i].target >= len(s.Targets) {
			t.Fatalf("request %d target out of range: %d", i, a[i].target)
		}
		switch a[i].op.Kind {
		case OpDoc, OpDelta:
			if a[i].doc == "" {
				t.Fatalf("request %d (%s) has no doc", i, a[i].op.Kind)
			}
		}
	}
	// Weights 4:2:1:1:1 over 5000 requests — doc should dominate delta,
	// delta should dominate the weight-1 ops, with generous slack.
	if counts[OpDoc] <= counts[OpDelta] || counts[OpDelta] <= counts[OpInvoke] {
		t.Errorf("weighted mix out of order: %v", counts)
	}
}

// The smoke test: a 3-peer in-process fleet must sustain a modest
// open-loop mixed workload with zero errors, and the server-side
// correlation must see the requests land. This is the `make verify`
// guard that the whole loadgen path — scenario, schedule, typed client,
// fleet, metrics scrape — works end to end.
func TestFleetSmoke(t *testing.T) {
	fleet, err := StartFleet(FleetConfig{Peers: 3, Docs: 6, Entries: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()

	sc := fleet.MixScenario(6, 150, 1200*time.Millisecond)
	sc.SLO = SLO{P999: Duration(5 * time.Second)} // sanity ceiling, not a perf claim
	r := &Runner{Scenario: sc, Registries: fleet.Registries}
	res, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("smoke run had %d errors (of %d): %v", res.Errors, res.Sent, res.FirstErrors)
	}
	if res.Sent < 100 {
		t.Fatalf("smoke run sent only %d requests", res.Sent)
	}
	if !res.SLOPass() {
		t.Errorf("smoke run violated sanity SLO: %v", res.SLOViolations)
	}
	if res.AchievedRPS < 0.8*150 {
		t.Errorf("achieved %.0f rps, want >= 80%% of 150", res.AchievedRPS)
	}
	// Per-op stats exist for every mixed kind.
	for _, kind := range []string{OpDoc, OpDelta, OpInvoke, OpHashes, OpPush} {
		st, ok := res.PerOp[kind]
		if !ok || st.Sent == 0 {
			t.Errorf("op %s missing from per-op stats: %+v", kind, st)
		}
	}
	// Server-side correlation: the fleet's request counters must account
	// for (at least) what we sent — every request hit some peer.
	var served float64
	for k, v := range res.Server {
		if strings.Contains(k, "peer.http.requests.") {
			served += v
		}
	}
	if served < float64(res.Sent) {
		t.Errorf("server counters saw %.0f requests, client sent %d", served, res.Sent)
	}
}

// Closed-loop mode drives with a worker pool and still records cleanly.
func TestFleetClosedLoop(t *testing.T) {
	fleet, err := StartFleet(FleetConfig{Peers: 2, Docs: 4, Entries: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()

	sc := fleet.MixScenario(4, 0, 400*time.Millisecond)
	sc.Mode = "closed"
	sc.Workers = 4
	sc.Think = Duration(2 * time.Millisecond)
	r := &Runner{Scenario: sc, Registries: fleet.Registries}
	res, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("closed-loop run had %d errors: %v", res.Errors, res.FirstErrors)
	}
	if res.Sent == 0 {
		t.Fatal("closed-loop run sent nothing")
	}
}

// The capacity search finds a sustained rate on a tiny fleet quickly.
func TestSearchFindsCapacity(t *testing.T) {
	if testing.Short() {
		t.Skip("capacity search is seconds-long")
	}
	fleet, err := StartFleet(FleetConfig{Peers: 2, Docs: 4, Entries: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()

	r := &Runner{Scenario: fleet.MixScenario(4, 0, 0)}
	capr, err := r.Search(context.Background(),
		SearchConfig{Start: 20, Factor: 4, Max: 80, Trial: 300 * time.Millisecond, Refine: 1},
		t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if capr.MaxRPS < 20 {
		t.Fatalf("capacity %.0f rps below the starting rate", capr.MaxRPS)
	}
	if len(capr.Trials) == 0 {
		t.Fatal("no trials recorded")
	}
	if capr.Best.Sent == 0 {
		t.Fatal("best trial result empty")
	}
}
