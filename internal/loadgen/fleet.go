package loadgen

import (
	"fmt"
	"net"
	"net/http"
	"strings"
	"time"

	"axml/internal/core"
	"axml/internal/obs"
	"axml/internal/peer"
	"axml/internal/tree"
)

// FleetConfig sizes an in-process benchmark fleet.
type FleetConfig struct {
	// Peers is the fleet size (default 3).
	Peers int
	// Docs is the document universe per peer (default 8).
	Docs int
	// Entries is each document's initial size in store items (default 32).
	Entries int
}

func (c FleetConfig) withDefaults() FleetConfig {
	if c.Peers <= 0 {
		c.Peers = 3
	}
	if c.Docs <= 0 {
		c.Docs = 8
	}
	if c.Entries <= 0 {
		c.Entries = 32
	}
	return c
}

// Fleet is a set of in-process peers listening on loopback — the
// self-contained target `axml-loadgen -fleet N` and the smoke test
// hammer, so capacity numbers never depend on an external deployment.
// Every peer serves the same generated system: documents d00..dNN of
// store items, a Lookup service matching over d00, and an "ingest"
// push subscription attached to an inbox document.
type Fleet struct {
	// URLs are the peers' base URLs, index-aligned with Peers.
	URLs []string
	// Peers are the live peers (for direct inspection in tests).
	Peers []*peer.Peer
	// Registries are the peers' metric registries, index-aligned; hand
	// them to Runner.Registries for server-side correlation.
	Registries []*obs.Registry

	servers []*http.Server
}

// DocNames returns the fleet's document universe, hottest first.
func (f *Fleet) DocNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("d%02d", i)
	}
	return out
}

// fleetSystemSource generates the shared system: Docs store documents of
// Entries items each, an inbox for push ingest, and a Lookup service.
func fleetSystemSource(docs, entries int) string {
	var b strings.Builder
	for d := 0; d < docs; d++ {
		fmt.Fprintf(&b, "doc d%02d = store{", d)
		for e := 0; e < entries; e++ {
			if e > 0 {
				b.WriteString(",")
			}
			fmt.Fprintf(&b, `item{id{"k%02d-%04d"},val{"v%04d"}}`, d, e, e)
		}
		b.WriteString("}\n")
	}
	b.WriteString("doc inbox = inbox\n")
	b.WriteString(`func Lookup = hit{id{$k},val{$v}} :- d00/store{item{id{$k},val{$v}}}` + "\n")
	return b.String()
}

// StartFleet boots cfg.Peers loopback peers, each with its own system,
// registry, push subscriber and /debug/vars endpoint. Close the fleet
// when done.
func StartFleet(cfg FleetConfig) (*Fleet, error) {
	cfg = cfg.withDefaults()
	src := fleetSystemSource(cfg.Docs, cfg.Entries)
	f := &Fleet{}
	for i := 0; i < cfg.Peers; i++ {
		sys, err := core.ParseSystem(src)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("loadgen: fleet system: %w", err)
		}
		reg := obs.NewRegistry()
		p, _, err := peer.Open(fmt.Sprintf("fleet%d", i), sys, peer.WithObservability(reg))
		if err != nil {
			f.Close()
			return nil, err
		}
		sub := peer.NewSubscriber(p)
		var inboxRoot *tree.Node
		p.System(func(s *core.System) { inboxRoot = s.Document("inbox").Root })
		sub.Register("ingest", "inbox", inboxRoot)

		mux := http.NewServeMux()
		mux.Handle(peer.PathPush, sub.Handler())
		dbg := obs.DebugMux(reg, p.ReadyChecks()...)
		mux.Handle("/debug/", dbg)
		mux.Handle("/healthz", dbg)
		mux.Handle("/readyz", dbg)
		mux.Handle("/", p.Handler())

		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			f.Close()
			return nil, err
		}
		srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
		go srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close

		f.URLs = append(f.URLs, "http://"+ln.Addr().String())
		f.Peers = append(f.Peers, p)
		f.Registries = append(f.Registries, reg)
		f.servers = append(f.servers, srv)
	}
	return f, nil
}

// Close shuts every peer's HTTP server down.
func (f *Fleet) Close() {
	for _, s := range f.servers {
		s.Close()
	}
}

// MixScenario builds the canonical mixed workload against the fleet:
// read-heavy doc and delta traffic over a zipf-hot document universe,
// with invoke, hash-probe and push-ingest minorities — the
// production-shaped default recorded in BENCH_load.json.
func (f *Fleet) MixScenario(docs int, rate float64, dur time.Duration) Scenario {
	return Scenario{
		Name:    "mix",
		Targets: f.URLs,
		Ops: []Op{
			{Kind: OpDoc, Weight: 4},
			{Kind: OpDelta, Weight: 3},
			{Kind: OpInvoke, Weight: 1, Service: "Lookup"},
			{Kind: OpHashes, Weight: 1},
			{Kind: OpPush, Weight: 1, PushID: "ingest"},
		},
		Docs:     f.DocNames(docs),
		Mode:     "open",
		Rate:     rate,
		Duration: Duration(dur),
		Seed:     1,
	}
}
