package loadgen

import (
	"math/rand"
	"time"
)

// PoissonSchedule returns the open-loop arrival offsets of a seeded
// Poisson process: exponential interarrival gaps at the given
// requests/second rate, accumulated until the horizon. The same seed,
// rate and horizon always produce the same schedule — open-loop runs
// are replayable, so two builds measured against the same schedule
// differ only in how they served it, not in what they were asked.
func PoissonSchedule(seed int64, rate float64, horizon time.Duration) []time.Duration {
	if rate <= 0 || horizon <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	limit := horizon.Seconds()
	// Pre-size to the expected count; the Poisson tail rarely overshoots
	// by more than a few sigma.
	out := make([]time.Duration, 0, int(rate*limit)+1)
	for t := 0.0; ; {
		t += rng.ExpFloat64() / rate
		if t >= limit {
			return out
		}
		out = append(out, time.Duration(t*float64(time.Second)))
	}
}

// Popularity samples document indexes with zipf-distributed popularity:
// index 0 is the hottest, and the skew exponent s (> 1) controls how
// hard the head dominates — the shape real content stores serve, and
// what makes delta-anchor caches and any future hot-set caching earn
// (or fail to earn) their keep under load.
type Popularity struct {
	z *rand.Zipf
}

// NewPopularity builds a sampler over n documents (n >= 1) drawing from
// rng. s <= 1 or v < 1 fall back to the scenario defaults (1.2, 1).
func NewPopularity(rng *rand.Rand, s, v float64, n int) *Popularity {
	if s <= 1 {
		s = 1.2
	}
	if v < 1 {
		v = 1
	}
	if n < 1 {
		n = 1
	}
	return &Popularity{z: rand.NewZipf(rng, s, v, uint64(n-1))}
}

// Pick samples one document index in [0, n).
func (p *Popularity) Pick() int { return int(p.z.Uint64()) }

// request is one planned operation: what to do, against which document,
// on which target.
type request struct {
	op     Op
	doc    string
	target int
}

// planner deterministically expands a scenario into a request stream:
// weighted op choice, zipf doc choice, uniform target choice, all from
// one seeded rng. The open loop drains a single planner (the whole run
// is a function of the scenario seed); each closed-loop worker owns a
// planner seeded with its index.
type planner struct {
	rng     *rand.Rand
	pop     *Popularity
	ops     []Op
	cum     []float64
	total   float64
	docs    []string
	targets int
}

func newPlanner(s *Scenario, seed int64) *planner {
	p := &planner{
		rng:     rand.New(rand.NewSource(seed)),
		ops:     s.Ops,
		docs:    s.Docs,
		targets: len(s.Targets),
	}
	if len(s.Docs) > 0 {
		p.pop = NewPopularity(p.rng, s.ZipfS, s.ZipfV, len(s.Docs))
	}
	p.cum = make([]float64, len(s.Ops))
	for i, op := range s.Ops {
		w := op.Weight
		if w <= 0 {
			w = 1
		}
		p.total += w
		p.cum[i] = p.total
	}
	return p
}

func (p *planner) next() request {
	x := p.rng.Float64() * p.total
	oi := 0
	for oi < len(p.cum)-1 && x >= p.cum[oi] {
		oi++
	}
	req := request{op: p.ops[oi], target: p.rng.Intn(p.targets)}
	req.doc = req.op.Doc
	if req.doc == "" && p.pop != nil {
		req.doc = p.docs[p.pop.Pick()]
	}
	return req
}

// plan expands the first n requests — the deterministic open-loop
// pairing with PoissonSchedule's n arrivals.
func (p *planner) plan(n int) []request {
	out := make([]request, n)
	for i := range out {
		out[i] = p.next()
	}
	return out
}
