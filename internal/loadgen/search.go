package loadgen

import (
	"context"
	"fmt"
	"time"
)

// Step-rate capacity search: run the scenario's mix open-loop at an
// increasing rate until the fleet stops keeping up, then bisect between
// the last sustained and first failed rate. "Sustained" means the trial
// kept its error budget, actually achieved (nearly) the configured rate
// without stalling on the in-flight cap, and met the scenario's SLO if
// one is set. The result is the capacity yardstick — max sustainable
// RPS for this fleet on this machine — that lands in BENCH_load.json.

// SearchConfig tunes the capacity search; zero fields get defaults.
type SearchConfig struct {
	// Start is the first trial rate in RPS (default 50).
	Start float64
	// Factor multiplies the rate between steps (default 2).
	Factor float64
	// Max caps the search (default 100000 RPS).
	Max float64
	// Trial bounds each trial run (default 2s).
	Trial time.Duration
	// Refine is the number of bisection steps after the first failure
	// (default 3 — capacity resolved to ~12% of the failing step).
	Refine int
	// MaxErrorRate is the tolerated fraction of failed requests
	// (default 0 — capacity means zero errors).
	MaxErrorRate float64
	// MinAchieved is the fraction of the configured rate a trial must
	// actually reach to count as sustained (default 0.9).
	MinAchieved float64
}

func (c SearchConfig) withDefaults() SearchConfig {
	if c.Start <= 0 {
		c.Start = 50
	}
	if c.Factor <= 1 {
		c.Factor = 2
	}
	if c.Max <= 0 {
		c.Max = 100000
	}
	if c.Trial <= 0 {
		c.Trial = 2 * time.Second
	}
	if c.Refine <= 0 {
		c.Refine = 3
	}
	if c.MinAchieved <= 0 || c.MinAchieved > 1 {
		c.MinAchieved = 0.9
	}
	return c
}

// Trial summarizes one capacity-search run.
type Trial struct {
	Rate      float64 `json:"rate"`
	Sustained bool    `json:"sustained"`
	Reason    string  `json:"reason,omitempty"`
	Result    Result  `json:"result"`
}

// Capacity is the search outcome.
type Capacity struct {
	// MaxRPS is the highest sustained configured rate.
	MaxRPS float64 `json:"max_rps"`
	// AchievedRPS is what that best trial actually delivered.
	AchievedRPS float64 `json:"achieved_rps"`
	// Best is the best sustained trial's full result.
	Best Result `json:"best"`
	// Trials records every step and bisection probe, in run order.
	Trials []Trial `json:"trials"`
}

// sustained judges one trial against the search's budgets.
func (c SearchConfig) sustained(rate float64, r Result) (bool, string) {
	if r.Sent == 0 {
		return false, "no requests sent"
	}
	if errRate := float64(r.Errors) / float64(r.Sent); errRate > c.MaxErrorRate {
		return false, fmt.Sprintf("error rate %.3f > %.3f", errRate, c.MaxErrorRate)
	}
	if r.AchievedRPS < c.MinAchieved*rate {
		return false, fmt.Sprintf("achieved %.0f rps < %.0f%% of %.0f",
			r.AchievedRPS, c.MinAchieved*100, rate)
	}
	if !r.SLOPass() {
		return false, fmt.Sprintf("SLO: %v", r.SLOViolations)
	}
	return true, ""
}

// Search runs the step-rate capacity search using r's scenario as the
// traffic mix (its Mode, Rate and Duration are overridden per trial;
// its seed is offset per trial so consecutive probes do not replay the
// same arrival schedule). Log, if non-nil, receives one line per trial.
func (r *Runner) Search(ctx context.Context, cfg SearchConfig, logf func(format string, args ...any)) (Capacity, error) {
	cfg = cfg.withDefaults()
	if logf == nil {
		logf = func(string, ...any) {}
	}
	out := Capacity{}
	trial := 0
	runAt := func(rate float64) (Trial, error) {
		trial++
		tr := *r
		tr.Scenario = r.Scenario.withDefaults()
		tr.Scenario.Mode = "open"
		tr.Scenario.Rate = rate
		tr.Scenario.Duration = Duration(cfg.Trial)
		tr.Scenario.Seed += int64(trial) * 1000003
		res, err := tr.Run(ctx)
		if err != nil {
			return Trial{Rate: rate, Result: res, Reason: err.Error()}, err
		}
		ok, why := cfg.sustained(rate, res)
		logf("capacity trial %d: %.0f rps -> sustained=%v achieved=%.0f errors=%d %s",
			trial, rate, ok, res.AchievedRPS, res.Errors, why)
		return Trial{Rate: rate, Sustained: ok, Reason: why, Result: res}, nil
	}

	// Step phase: multiply until the fleet gives, or Max sustains.
	var lastGood, firstBad float64
	for rate := cfg.Start; rate <= cfg.Max; rate *= cfg.Factor {
		t, err := runAt(rate)
		out.Trials = append(out.Trials, t)
		if err != nil {
			return out, err
		}
		if !t.Sustained {
			firstBad = rate
			break
		}
		lastGood = rate
		out.MaxRPS = rate
		out.AchievedRPS = t.Result.AchievedRPS
		out.Best = t.Result
	}
	if lastGood == 0 {
		return out, fmt.Errorf("loadgen: fleet cannot sustain the starting rate %.0f rps", cfg.Start)
	}
	if firstBad == 0 {
		// Never failed below Max: capacity is at least Max.
		return out, nil
	}

	// Refine phase: bisect the (lastGood, firstBad) bracket.
	lo, hi := lastGood, firstBad
	for i := 0; i < cfg.Refine; i++ {
		mid := (lo + hi) / 2
		t, err := runAt(mid)
		out.Trials = append(out.Trials, t)
		if err != nil {
			return out, err
		}
		if t.Sustained {
			lo = mid
			out.MaxRPS = mid
			out.AchievedRPS = t.Result.AchievedRPS
			out.Best = t.Result
		} else {
			hi = mid
		}
	}
	return out, nil
}
