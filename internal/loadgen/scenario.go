// Package loadgen is the production-shaped traffic harness for peer
// fleets: it drives mixed doc-fetch / delta-fetch / invoke /
// push-ingest workloads over HTTP through the typed peer.Client, in
// open-loop mode (seeded Poisson arrivals at a configured rate — the
// arrival schedule is deterministic across runs, so latency
// distributions are comparable between builds) or closed-loop mode (N
// workers with think time). Document popularity is zipf-distributed,
// the skew real request logs show. Per-request latency lands in
// obs.Histograms, results are checked against SLOs, and a step-rate
// search finds the maximum sustainable RPS per fleet — the capacity
// yardstick recorded in BENCH_load.json.
package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// Op kinds: which peer endpoint a scenario operation exercises.
const (
	// OpDoc fetches a whole document (GET /axml/doc/<name>).
	OpDoc = "doc"
	// OpDelta fetches a document's growth since the last digest this
	// worker acknowledged (GET /axml/delta/<name>?from=) — the polling
	// replica shape. The first request per (target, doc) is anchorless.
	OpDelta = "delta"
	// OpInvoke invokes a service (POST /axml/invoke) — the intensional
	// read, evaluated against the peer's documents.
	OpInvoke = "invoke"
	// OpHashes probes the per-document digest summary (GET /axml/hash) —
	// the anti-entropy control-plane shape.
	OpHashes = "hashes"
	// OpPush delivers a small forest to a subscriber callback
	// (POST /axml/push/<id>) — write-side ingest. The payload is drawn
	// from the sampled document name, so reduction bounds replica
	// growth across repeats.
	OpPush = "push"
)

// Duration is a time.Duration that unmarshals from JSON as either a Go
// duration string ("250ms", "2s") or a number of nanoseconds, so
// scenario files stay human-readable.
type Duration time.Duration

// UnmarshalJSON implements json.Unmarshaler.
func (d *Duration) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err == nil {
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("loadgen: bad duration %q: %w", s, err)
		}
		*d = Duration(v)
		return nil
	}
	var n int64
	if err := json.Unmarshal(data, &n); err != nil {
		return fmt.Errorf("loadgen: duration must be a string or nanoseconds: %s", data)
	}
	*d = Duration(n)
	return nil
}

// MarshalJSON renders the duration as its string form.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// D is the time.Duration view.
func (d Duration) D() time.Duration { return time.Duration(d) }

// Op is one weighted operation in a scenario's traffic mix.
type Op struct {
	// Kind is one of OpDoc, OpDelta, OpInvoke, OpHashes, OpPush.
	Kind string `json:"kind"`
	// Weight is the op's relative share of the mix; 0 means 1.
	Weight float64 `json:"weight,omitempty"`
	// Service names the service OpInvoke calls.
	Service string `json:"service,omitempty"`
	// Doc pins the operation to one document; empty means a
	// zipf-sampled pick from Scenario.Docs per request.
	Doc string `json:"doc,omitempty"`
	// PushID is the subscription id OpPush delivers to.
	PushID string `json:"push_id,omitempty"`
}

// SLO is the latency objective a run is judged against; zero fields are
// not checked. Violations land in Result.SLOViolations.
type SLO struct {
	P50  Duration `json:"p50,omitempty"`
	P99  Duration `json:"p99,omitempty"`
	P999 Duration `json:"p999,omitempty"`
}

// Scenario describes one workload: the fleet, the traffic mix, the
// arrival process and the objective. Scenarios are file-driven
// (ParseScenario / LoadScenario on JSON) or built programmatically.
type Scenario struct {
	// Name labels the scenario in reports ("mix", "read-heavy", ...).
	Name string `json:"name"`
	// Targets are the peers' base URLs; requests spread uniformly.
	Targets []string `json:"targets"`
	// Ops is the weighted traffic mix.
	Ops []Op `json:"ops"`
	// Docs is the document universe zipf-sampled by ops without a
	// pinned Doc. Index 0 is the most popular.
	Docs []string `json:"docs,omitempty"`
	// ZipfS is the zipf skew exponent (> 1; default 1.2 — a hot-set
	// where the top document draws an outsized share).
	ZipfS float64 `json:"zipf_s,omitempty"`
	// ZipfV is the zipf value offset (>= 1; default 1).
	ZipfV float64 `json:"zipf_v,omitempty"`
	// Mode is "open" (default; Poisson arrivals at Rate, latency under
	// load the server does not control) or "closed" (Workers callers
	// with Think time — throughput under a concurrency budget).
	Mode string `json:"mode,omitempty"`
	// Rate is the open-loop arrival rate in requests/second.
	Rate float64 `json:"rate,omitempty"`
	// Duration bounds the run.
	Duration Duration `json:"duration"`
	// Workers is the closed-loop concurrency (default 8).
	Workers int `json:"workers,omitempty"`
	// Think is the closed-loop pause between a worker's requests.
	Think Duration `json:"think,omitempty"`
	// MaxInFlight caps concurrent open-loop requests (default 1024);
	// arrivals beyond the cap wait and are counted as stalls — visible
	// coordinated omission instead of silent memory blow-up.
	MaxInFlight int `json:"max_in_flight,omitempty"`
	// Seed makes the run reproducible: the arrival schedule and the
	// per-request op/doc/target choices derive from it (default 1).
	Seed int64 `json:"seed,omitempty"`
	// SLO is the latency objective; zero fields are unchecked.
	SLO SLO `json:"slo,omitempty"`
}

// withDefaults returns a copy with the documented defaults filled in.
func (s Scenario) withDefaults() Scenario {
	if s.Name == "" {
		s.Name = "scenario"
	}
	if s.Mode == "" {
		s.Mode = "open"
	}
	if s.ZipfS <= 1 {
		s.ZipfS = 1.2
	}
	if s.ZipfV < 1 {
		s.ZipfV = 1
	}
	if s.Workers <= 0 {
		s.Workers = 8
	}
	if s.MaxInFlight <= 0 {
		s.MaxInFlight = 1024
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	for i := range s.Ops {
		if s.Ops[i].Weight <= 0 {
			s.Ops[i].Weight = 1
		}
	}
	return s
}

// Validate reports the first structural problem. Runner validates
// automatically; scenario-file tooling calls it directly for early
// errors.
func (s Scenario) Validate() error {
	if len(s.Targets) == 0 {
		return fmt.Errorf("loadgen: scenario %q: no targets", s.Name)
	}
	if len(s.Ops) == 0 {
		return fmt.Errorf("loadgen: scenario %q: no ops", s.Name)
	}
	switch s.Mode {
	case "", "open":
		if s.Rate <= 0 {
			return fmt.Errorf("loadgen: scenario %q: open-loop mode needs rate > 0", s.Name)
		}
	case "closed":
	default:
		return fmt.Errorf("loadgen: scenario %q: unknown mode %q (want open or closed)", s.Name, s.Mode)
	}
	if s.Duration <= 0 {
		return fmt.Errorf("loadgen: scenario %q: duration must be positive", s.Name)
	}
	for i, op := range s.Ops {
		switch op.Kind {
		case OpDoc, OpDelta:
			if op.Doc == "" && len(s.Docs) == 0 {
				return fmt.Errorf("loadgen: scenario %q: op %d (%s) needs a doc or a docs universe", s.Name, i, op.Kind)
			}
		case OpInvoke:
			if op.Service == "" {
				return fmt.Errorf("loadgen: scenario %q: op %d: invoke needs a service", s.Name, i)
			}
		case OpHashes:
		case OpPush:
			if op.PushID == "" {
				return fmt.Errorf("loadgen: scenario %q: op %d: push needs a push_id", s.Name, i)
			}
		default:
			return fmt.Errorf("loadgen: scenario %q: op %d: unknown kind %q", s.Name, i, op.Kind)
		}
		if op.Weight < 0 {
			return fmt.Errorf("loadgen: scenario %q: op %d: negative weight", s.Name, i)
		}
	}
	return nil
}

// ParseScenario decodes a JSON scenario and validates it. Unknown
// fields are rejected — a typoed knob must not silently load-test the
// wrong shape.
func ParseScenario(data []byte) (Scenario, error) {
	var s Scenario
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Scenario{}, fmt.Errorf("loadgen: parse scenario: %w", err)
	}
	s = s.withDefaults()
	if err := s.Validate(); err != nil {
		return Scenario{}, err
	}
	return s, nil
}

// LoadScenario reads and parses a scenario file.
func LoadScenario(path string) (Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Scenario{}, err
	}
	s, err := ParseScenario(data)
	if err != nil {
		return Scenario{}, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}
