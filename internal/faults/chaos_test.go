package faults

import (
	"testing"
	"time"

	"axml/internal/core"
	"axml/internal/obs"
	"axml/internal/syntax"
	"axml/internal/tree"
)

// chaosSystem builds a fan-out doc calling svc n times.
func chaosSystem(t *testing.T, n int, svc core.Service) *core.System {
	t.Helper()
	s := core.NewSystem()
	doc := `top{`
	for i := 0; i < n; i++ {
		if i > 0 {
			doc += ","
		}
		doc += `slot{!svc}`
	}
	doc += `}`
	if err := s.AddDocument(tree.NewDocument("d", syntax.MustParseDocument(doc))); err != nil {
		t.Fatal(err)
	}
	if err := s.AddService(svc); err != nil {
		t.Fatal(err)
	}
	return s
}

// Chaos round-trip: injected faults, retry recovery and the engine all
// report into one registry, and the degraded run still reaches the same
// fixpoint as a clean one (Theorem 2.1: replay is idempotent).
func TestChaosMetricsAndFixpoint(t *testing.T) {
	inner := core.ConstService("svc", tree.Forest{syntax.MustParseDocument(`r{"ok"}`)})

	clean := chaosSystem(t, 6, inner)
	cres := clean.Run(core.RunOptions{})
	if !cres.Terminated {
		t.Fatalf("clean run: %+v", cres)
	}

	reg := obs.NewRegistry()
	flaky := &FaultService{Service: inner, ErrorEvery: 2, Metrics: reg}
	retried := &core.Retry{Service: flaky, Attempts: 4,
		Sleep: func(time.Duration) {}, Metrics: reg}
	chaos := chaosSystem(t, 6, retried)
	res := chaos.Run(core.RunOptions{ErrorPolicy: core.Degrade, Parallelism: 4, Metrics: reg})
	if !res.Terminated {
		t.Fatalf("chaos run: %+v", res)
	}

	if got := reg.Counter("faults.injected.svc").Value(); got == 0 {
		t.Fatal("no faults injected — ErrorEvery not biting")
	}
	calls := reg.Counter("faults.calls.svc").Value()
	if calls <= reg.Counter("faults.injected.svc").Value() {
		t.Fatalf("calls=%d not above injected=%d", calls,
			reg.Counter("faults.injected.svc").Value())
	}
	if got := reg.Counter("mw.retry.retries.svc").Value(); got == 0 {
		t.Fatal("retry middleware never retried")
	}
	if got := reg.Counter("mw.retry.recovered.svc").Value(); got == 0 {
		t.Fatal("retry middleware never recovered an invocation")
	}
	if got := reg.Counter("engine.runs").Value(); got != 1 {
		t.Fatalf("engine.runs = %d, want 1", got)
	}

	want := clean.Document("d").Root
	got := chaos.Document("d").Root
	if !tree.Isomorphic(got, want) {
		t.Fatalf("chaos fixpoint diverged:\n%s\nwant\n%s",
			got.CanonicalString(), want.CanonicalString())
	}
}
