// Package faults injects deterministic, seedable failures and latency into
// services and HTTP handlers, so the engine's retry, circuit-breaker and
// degraded-run paths are testable without real network flakiness. The
// injection plans are counter-based (error-every-k, fail-first-n, latency
// spikes) or seeded-probabilistic, so a test or experiment replays the
// exact same failure schedule every run.
package faults

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"axml/internal/core"
	"axml/internal/obs"
	"axml/internal/tree"
)

// ErrInjected is wrapped by every failure a FaultService injects.
var ErrInjected = errors.New("faults: injected failure")

// FaultService wraps a core.Service and injects failures and latency
// according to its plan. Invocations are counted from 1; a given counter
// value fails if it is within the FailFirst prefix, lands on an ErrorEvery
// multiple, or is drawn by the seeded Rate coin. Failures are injected
// before the wrapped service runs (the invocation never happens — like a
// request that died on the wire). Safe for concurrent use.
type FaultService struct {
	// Service is the wrapped service.
	Service core.Service
	// FailFirst makes invocations 1..n fail (a cold endpoint that needs
	// warming up).
	FailFirst int
	// ErrorEvery makes every k-th invocation fail (k ≥ 1; 0 disables) —
	// the classic transient-error pattern.
	ErrorEvery int
	// Rate, in (0,1], makes each invocation fail with that probability,
	// drawn from a source seeded with Seed (deterministic replay).
	Rate float64
	// Seed seeds the Rate coin.
	Seed int64
	// Latency delays every invocation (success or failure).
	Latency time.Duration
	// SpikeEvery adds Spike extra latency to every k-th invocation
	// (0 disables) — a tail-latency simulator for Timeout testing.
	SpikeEvery int
	// Spike is the extra delay of a spiked invocation.
	Spike time.Duration
	// Sleep replaces time.Sleep, for tests.
	Sleep func(time.Duration)
	// Metrics, when set, counts every invocation under
	// faults.calls.<service> and every injected failure under
	// faults.injected.<service> — so chaos experiments read injection
	// pressure from the same registry as the engine's recovery metrics
	// (engine.calls.failed, mw.retry.*).
	Metrics *obs.Registry

	mu       sync.Mutex
	rng      *rand.Rand
	calls    int
	injected int
}

// ServiceName implements core.Service.
func (f *FaultService) ServiceName() string { return f.Service.ServiceName() }

// Unwrap implements core.Wrapper.
func (f *FaultService) Unwrap() core.Service { return f.Service }

// Calls returns the number of invocations seen so far.
func (f *FaultService) Calls() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls
}

// Injected returns the number of failures injected so far.
func (f *FaultService) Injected() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

// Invoke implements core.Service with fault injection. Injected latency
// is context-aware: a cancelled caller gets ctx.Err() instead of waiting
// out the simulated delay (mirroring a real connection teardown).
func (f *FaultService) Invoke(ctx context.Context, b core.Binding) (tree.Forest, error) {
	f.mu.Lock()
	f.calls++
	n := f.calls
	fail := n <= f.FailFirst
	if !fail && f.ErrorEvery > 0 && n%f.ErrorEvery == 0 {
		fail = true
	}
	if !fail && f.Rate > 0 {
		if f.rng == nil {
			f.rng = rand.New(rand.NewSource(f.Seed))
		}
		fail = f.rng.Float64() < f.Rate
	}
	if fail {
		f.injected++
	}
	delay := f.Latency
	if f.SpikeEvery > 0 && n%f.SpikeEvery == 0 {
		delay += f.Spike
	}
	sleep := f.Sleep
	f.mu.Unlock()
	if m := f.Metrics; m != nil {
		m.Counter("faults.calls." + f.Service.ServiceName()).Inc()
		if fail {
			m.Counter("faults.injected." + f.Service.ServiceName()).Inc()
		}
	}
	if delay > 0 {
		if sleep != nil {
			sleep(delay)
		} else {
			timer := time.NewTimer(delay)
			select {
			case <-timer.C:
			case <-ctx.Done():
				timer.Stop()
				return nil, ctx.Err()
			}
		}
	}
	if fail {
		return nil, fmt.Errorf("faults: service %q invocation %d: %w",
			f.Service.ServiceName(), n, ErrInjected)
	}
	return f.Service.Invoke(ctx, b)
}

// ErrCrash is returned by a CrashWriter for its crash write and every
// write after it — the moment the simulated process died.
var ErrCrash = errors.New("faults: injected crash")

// CrashWriter simulates a process killed mid-write: writes 1..CrashAt-1
// pass through untouched; write number CrashAt delivers only Partial of
// its bytes to the underlying writer and fails with ErrCrash; every later
// write fails without touching the writer at all. Wrapped around a
// journal's log file (journal.Options.WrapWriter) — where each record is
// one Write — it crashes the journal at exactly record CrashAt, leaving a
// torn frame on disk for recovery to truncate. Safe for concurrent use.
type CrashWriter struct {
	// W is the underlying writer (the real log file).
	W io.Writer
	// CrashAt is the 1-based write count at which to crash (0 never
	// crashes).
	CrashAt int
	// Partial is how many bytes of the fatal write still reach W — the
	// torn prefix a real kill leaves behind.
	Partial int

	mu      sync.Mutex
	writes  int
	crashed bool
}

// Write implements io.Writer with the crash schedule.
func (c *CrashWriter) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.crashed {
		return 0, ErrCrash
	}
	c.writes++
	if c.CrashAt <= 0 || c.writes < c.CrashAt {
		return c.W.Write(p)
	}
	c.crashed = true
	cut := c.Partial
	if cut > len(p) {
		cut = len(p)
	}
	if cut > 0 {
		c.W.Write(p[:cut])
	}
	return cut, fmt.Errorf("faults: write %d torn after %d bytes: %w", c.writes, cut, ErrCrash)
}

// Crashed reports whether the crash point has been reached.
func (c *CrashWriter) Crashed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.crashed
}

// Writes returns the number of Write calls observed (including the fatal
// one).
func (c *CrashWriter) Writes() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.writes
}

// FlakyHandler wraps an HTTP handler so that every k-th request fails with
// 502 Bad Gateway before reaching the handler (k ≥ 1; k ≤ 0 passes
// everything through) — server-side transient faults for peer fleets.
func FlakyHandler(h http.Handler, every int) http.Handler {
	var mu sync.Mutex
	n := 0
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		n++
		k := n
		mu.Unlock()
		if every > 0 && k%every == 0 {
			http.Error(w, fmt.Sprintf("faults: injected 502 on request %d", k),
				http.StatusBadGateway)
			return
		}
		h.ServeHTTP(w, r)
	})
}
