package faults

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"axml/internal/core"
	"axml/internal/tree"
)

func okService() core.Service {
	return core.ConstService("svc", tree.Forest{tree.NewLabel("ok")})
}

func TestErrorEveryK(t *testing.T) {
	f := &FaultService{Service: okService(), ErrorEvery: 3}
	var failed []int
	for i := 1; i <= 9; i++ {
		_, err := f.Invoke(context.Background(), core.Binding{})
		if err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("call %d: %v", i, err)
			}
			failed = append(failed, i)
		}
	}
	if len(failed) != 3 || failed[0] != 3 || failed[1] != 6 || failed[2] != 9 {
		t.Fatalf("failed calls = %v, want [3 6 9]", failed)
	}
	if f.Calls() != 9 || f.Injected() != 3 {
		t.Fatalf("calls=%d injected=%d", f.Calls(), f.Injected())
	}
}

func TestFailFirstN(t *testing.T) {
	f := &FaultService{Service: okService(), FailFirst: 2}
	for i := 1; i <= 4; i++ {
		_, err := f.Invoke(context.Background(), core.Binding{})
		if (i <= 2) != (err != nil) {
			t.Fatalf("call %d: err = %v", i, err)
		}
	}
	if f.Injected() != 2 {
		t.Fatalf("injected = %d", f.Injected())
	}
}

func TestSeededRateIsReproducible(t *testing.T) {
	pattern := func() []bool {
		f := &FaultService{Service: okService(), Rate: 0.5, Seed: 7}
		var out []bool
		for i := 0; i < 32; i++ {
			_, err := f.Invoke(context.Background(), core.Binding{})
			out = append(out, err != nil)
		}
		return out
	}
	a, b := pattern(), pattern()
	some := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seeded schedules diverge at %d: %v vs %v", i, a, b)
		}
		some = some || a[i]
	}
	if !some {
		t.Fatal("rate 0.5 over 32 calls injected nothing")
	}
}

func TestLatencyAndSpikes(t *testing.T) {
	var slept []time.Duration
	f := &FaultService{
		Service:    okService(),
		Latency:    time.Millisecond,
		SpikeEvery: 2,
		Spike:      5 * time.Millisecond,
		Sleep:      func(d time.Duration) { slept = append(slept, d) },
	}
	for i := 0; i < 4; i++ {
		if _, err := f.Invoke(context.Background(), core.Binding{}); err != nil {
			t.Fatal(err)
		}
	}
	want := []time.Duration{1, 6, 1, 6}
	for i, d := range slept {
		if d != want[i]*time.Millisecond {
			t.Fatalf("slept = %v", slept)
		}
	}
}

func TestFaultServiceDelegatesWhenHealthy(t *testing.T) {
	f := &FaultService{Service: okService()}
	forest, err := f.Invoke(context.Background(), core.Binding{})
	if err != nil || len(forest) != 1 || forest[0].Name != "ok" {
		t.Fatalf("forest=%v err=%v", forest, err)
	}
	if core.Innermost(f).ServiceName() != "svc" {
		t.Fatal("Unwrap broken")
	}
}

func TestFlakyHandler(t *testing.T) {
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	})
	srv := httptest.NewServer(FlakyHandler(h, 2))
	defer srv.Close()
	want := []int{http.StatusOK, http.StatusBadGateway, http.StatusOK, http.StatusBadGateway}
	for i, status := range want {
		resp, err := http.Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != status {
			t.Fatalf("request %d: status %d, want %d", i+1, resp.StatusCode, status)
		}
	}
}

func TestCrashWriterTearsExactWrite(t *testing.T) {
	var sink bytes.Buffer
	c := &CrashWriter{W: &sink, CrashAt: 3, Partial: 2}
	for i := 0; i < 2; i++ {
		n, err := c.Write([]byte("abcd"))
		if n != 4 || err != nil {
			t.Fatalf("write %d: n=%d err=%v", i+1, n, err)
		}
	}
	if c.Crashed() {
		t.Fatal("crashed early")
	}
	n, err := c.Write([]byte("abcd"))
	if n != 2 || !errors.Is(err, ErrCrash) {
		t.Fatalf("crash write: n=%d err=%v", n, err)
	}
	if !c.Crashed() {
		t.Fatal("crash not recorded")
	}
	// Dead processes do not write: later writes fail without output.
	if n, err := c.Write([]byte("zz")); n != 0 || !errors.Is(err, ErrCrash) {
		t.Fatalf("post-crash write: n=%d err=%v", n, err)
	}
	if got := sink.String(); got != "abcdabcdab" {
		t.Fatalf("bytes on disk: %q", got)
	}
	// Post-crash attempts are not counted: the process was already dead.
	if c.Writes() != 3 {
		t.Fatalf("writes counted: %d", c.Writes())
	}
}

func TestCrashWriterPartialClampedToWriteSize(t *testing.T) {
	var sink bytes.Buffer
	c := &CrashWriter{W: &sink, CrashAt: 1, Partial: 99}
	n, err := c.Write([]byte("ab"))
	if n != 2 || !errors.Is(err, ErrCrash) {
		t.Fatalf("n=%d err=%v", n, err)
	}
	if sink.String() != "ab" {
		t.Fatalf("bytes: %q", sink.String())
	}
}

func TestCrashWriterZeroNeverCrashes(t *testing.T) {
	var sink bytes.Buffer
	c := &CrashWriter{W: &sink}
	for i := 0; i < 10; i++ {
		if _, err := c.Write([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if c.Crashed() {
		t.Fatal("crashed with CrashAt=0")
	}
}
