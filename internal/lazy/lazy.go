// Package lazy implements lazy query evaluation over AXML systems
// (Section 4 of the paper). Answering a query does not require fully
// expanding the documents: only calls that may contribute to the answer
// need to be invoked.
//
// Exact relevance (q-unneeded calls, q-stability) is undecidable in
// general and expensive even for simple systems (Theorem 4.1), so this
// package provides both:
//
//   - the weak (PTIME) properties: a black-box analysis that marks a
//     superset of the relevant calls from pattern reachability, plus a
//     dependency closure for positive services (whose answers depend on
//     the documents their defining queries read);
//   - the exact checks for simple positive systems, via the finite graph
//     representation of package regular.
//
// The lazy evaluator drives a fair rewriting restricted to the weakly
// relevant calls; when no weakly relevant call can change the system, the
// system is weakly q-stable, which implies q-stability, and the snapshot
// answer is the full answer [q](I).
package lazy

import (
	"context"
	"fmt"

	"axml/internal/core"
	"axml/internal/pattern"
	"axml/internal/query"
	"axml/internal/regular"
	"axml/internal/subsume"
	"axml/internal/tree"
)

// Analysis is the result of the weak relevance analysis for one query
// against one system state.
type Analysis struct {
	// NeededDocs are the documents the answer may depend on: those the
	// query reads, closed under "read by a positive service that is
	// itself relevant".
	NeededDocs map[string]bool
	// Relevant lists the weakly q-relevant calls in the current state.
	Relevant []core.Call
	// relevantSet indexes Relevant by node for membership tests.
	relevantSet map[*tree.Node]bool
}

// IsRelevant reports whether the given call node was marked relevant.
func (a *Analysis) IsRelevant(n *tree.Node) bool { return a.relevantSet[n] }

// WeaklyStable reports whether the analysis found no relevant call: the
// system is weakly q-stable, hence q-stable (Section 4, weak properties).
func (a *Analysis) WeaklyStable() bool { return len(a.Relevant) == 0 }

// Analyze computes the weak relevance analysis of q over the system's
// current state in polynomial time.
//
// A call v in document d is weakly relevant when some pattern node p with
// children can be placed at v's parent by a prefix embedding (ancestors of
// p placed consistently along the path from the pattern root at d's root).
// Anything a future answer of v adds lives below v's parent, and every
// match touching that region must pass through such a p — so the analysis
// is sound: no call outside the relevant set can ever affect the matches
// in d.
//
// For positive services the black-box view is refined: a relevant call to
// a query-defined service makes the documents read by its defining query
// needed too (transitively), and the patterns of that query contribute
// reachability within those documents. Call parameters and context are
// handled conservatively: a relevant call to a service whose query reads
// input (resp. context) makes every call in its parameter subtrees (resp.
// under its parent) relevant.
func Analyze(s *core.System, q *query.Query) (*Analysis, error) {
	a := &Analysis{
		NeededDocs:  map[string]bool{},
		relevantSet: map[*tree.Node]bool{},
	}
	// patterns to consider per document name.
	patsPerDoc := map[string][]*pattern.Node{}
	addAtoms := func(qq *query.Query) {
		for _, atom := range qq.Body {
			if atom.Doc == tree.Input || atom.Doc == tree.Context {
				continue
			}
			patsPerDoc[atom.Doc] = append(patsPerDoc[atom.Doc], atom.Pattern)
			a.NeededDocs[atom.Doc] = true
		}
	}
	addAtoms(q)

	// Fixpoint: relevance of calls pulls in service queries, which pull
	// in documents and patterns, which may mark more calls relevant.
	processedSvc := map[string]bool{}
	for {
		changedDocs := false
		newRelevant := a.markPositionRelevant(s, patsPerDoc)
		progressed := false
		for _, c := range newRelevant {
			if a.relevantSet[c.Node] {
				continue
			}
			a.relevantSet[c.Node] = true
			a.Relevant = append(a.Relevant, c)
			progressed = true
			svc := s.Service(c.Node.Name)
			qs, ok := svc.(*core.QueryService)
			if !ok {
				// Black box: its answer is treated as independent of the
				// rest of the system, per the paper's weak notions.
				continue
			}
			if !processedSvc[c.Node.Name] {
				processedSvc[c.Node.Name] = true
				before := len(patsPerDoc)
				addAtoms(qs.Query)
				if len(patsPerDoc) != before {
					changedDocs = true
				}
			}
			// input/context conservatism.
			if qs.Query.UsesInput() {
				for _, occ := range c.Node.FuncNodes() {
					if occ.Node != c.Node && !a.relevantSet[occ.Node] {
						a.relevantSet[occ.Node] = true
						a.Relevant = append(a.Relevant, core.Call{Doc: c.Doc, Node: occ.Node, Parent: occ.Parent})
					}
				}
			}
			if qs.Query.UsesContext() && c.Parent != nil {
				for _, occ := range c.Parent.FuncNodes() {
					if occ.Node != c.Node && !a.relevantSet[occ.Node] {
						par := occ.Parent
						if par == nil {
							par = c.Parent
						}
						a.relevantSet[occ.Node] = true
						a.Relevant = append(a.Relevant, core.Call{Doc: c.Doc, Node: occ.Node, Parent: par})
					}
				}
			}
		}
		if !changedDocs && !progressed {
			return a, nil
		}
	}
}

// markPositionRelevant computes position relevance: for every needed
// document, the prefix-embedding product of its patterns, and from it the
// calls whose parent can host new matches.
func (a *Analysis) markPositionRelevant(s *core.System, patsPerDoc map[string][]*pattern.Node) []core.Call {
	var out []core.Call
	for docName, pats := range patsPerDoc {
		doc := s.Document(docName)
		if doc == nil {
			continue
		}
		// hosts collects document nodes at which some pattern node with
		// children can be placed.
		hosts := map[*tree.Node]bool{}
		for _, p := range pats {
			reachPrefix(p, doc.Root, hosts)
		}
		doc.Root.Walk(func(n, parent *tree.Node) bool {
			if n.Kind == tree.Func && parent != nil && hosts[parent] {
				out = append(out, core.Call{Doc: docName, Node: n, Parent: parent})
			}
			return true
		})
	}
	return out
}

// reachPrefix walks pattern and document together: pat placed at node if
// markings are compatible; descendants recurse pairwise. Nodes hosting a
// pattern node that still has children are recorded in hosts.
func reachPrefix(pat *pattern.Node, node *tree.Node, hosts map[*tree.Node]bool) {
	if !compatible(pat, node) {
		return
	}
	if len(pat.Children) > 0 {
		hosts[node] = true
	}
	for _, pc := range pat.Children {
		for _, nc := range node.Children {
			reachPrefix(pc, nc, hosts)
		}
	}
}

// compatible reports whether the pattern node could be placed on the
// document node, ignoring variable binding consistency (sound
// over-approximation).
func compatible(p *pattern.Node, n *tree.Node) bool {
	switch p.Kind {
	case pattern.ConstLabel:
		return n.Kind == tree.Label && n.Name == p.Name
	case pattern.ConstValue:
		return n.Kind == tree.Value && n.Name == p.Name
	case pattern.ConstFunc:
		return n.Kind == tree.Func && n.Name == p.Name
	case pattern.VarLabel:
		return n.Kind == tree.Label
	case pattern.VarValue:
		return n.Kind == tree.Value
	case pattern.VarFunc:
		return n.Kind == tree.Func
	case pattern.VarTree:
		return true
	default:
		return false
	}
}

// WeakUnneeded reports whether the call set N is weakly q-unneeded: no
// call of N is weakly relevant, so skipping all of them can never change
// the query's answer. Weak unneededness implies q-unneededness (the weak
// properties of Section 4 are sufficient conditions, checkable in PTIME),
// but not conversely: a needed-looking call may be exactly unneeded
// because other calls supply the same data — only the exact check
// (QUnneededExact) sees that.
func WeakUnneeded(s *core.System, q *query.Query, n map[*tree.Node]bool) (bool, error) {
	an, err := Analyze(s, q)
	if err != nil {
		return false, err
	}
	for node := range n {
		if an.IsRelevant(node) {
			return false, nil
		}
	}
	return true, nil
}

// Result reports a lazy evaluation.
type Result struct {
	// Answer is the snapshot answer at the end of the lazy run; it
	// equals the full result [q](I) when Stable is true.
	Answer tree.Forest
	// Stable is true when the run ended weakly q-stable (no relevant
	// call can change anything), which implies the answer is complete.
	Stable bool
	// Invocations counts service invocations performed lazily.
	Invocations int
	// Steps counts the strictly-growing invocations.
	Steps int
	// Rounds counts analyze-and-sweep rounds.
	Rounds int
}

// Options bounds a lazy evaluation.
type Options struct {
	// MaxSteps caps strictly-growing invocations; 0 means
	// core.DefaultMaxSteps.
	MaxSteps int
}

// Eval evaluates [q](I) lazily, in place: it repeatedly re-analyzes weak
// relevance and invokes only relevant calls, until weak stability or
// budget exhaustion. The invariant driving correctness: calls outside the
// relevant set cannot affect q's matches now or after any future
// invocation, so skipping them never changes the answer.
func Eval(s *core.System, q *query.Query, opts Options) (Result, error) {
	maxSteps := opts.MaxSteps
	if maxSteps == 0 {
		maxSteps = core.DefaultMaxSteps
	}
	var res Result
	for {
		res.Rounds++
		an, err := Analyze(s, q)
		if err != nil {
			return res, err
		}
		if an.WeaklyStable() {
			res.Stable = true
			break
		}
		changedInRound := false
		for _, c := range an.Relevant {
			if !containsCall(s, c) {
				continue
			}
			res.Invocations++
			changed, err := s.Invoke(context.Background(), c)
			if err != nil {
				return res, err
			}
			if changed {
				changedInRound = true
				res.Steps++
				if res.Steps >= maxSteps {
					ans, err := s.SnapshotQuery(q)
					if err != nil {
						return res, err
					}
					res.Answer = ans
					return res, nil
				}
			}
		}
		if !changedInRound {
			// All relevant calls are exhausted: the system is q-stable
			// even though calls remain syntactically relevant.
			res.Stable = true
			break
		}
	}
	ans, err := s.SnapshotQuery(q)
	if err != nil {
		return res, err
	}
	res.Answer = ans
	return res, nil
}

func containsCall(s *core.System, c core.Call) bool {
	d := s.Document(c.Doc)
	if d == nil {
		return false
	}
	found := false
	d.Root.Walk(func(n, _ *tree.Node) bool {
		if n == c.Node {
			found = true
			return false
		}
		return true
	})
	return found
}

// QUnneededExact decides, for a simple positive system and a simple query
// with a call-free head, whether the set N of function nodes is
// q-unneeded (Definition 4.1): [q](I↓N) ≡ [q](I). This is the decidable
// branch of Theorem 4.1, computed on the finite graph representations.
func QUnneededExact(s *core.System, q *query.Query, n map[*tree.Node]bool) (bool, error) {
	if err := exactPreconditions(s, q); err != nil {
		return false, err
	}
	full, err := regular.Build(s, regular.BuildOptions{})
	if err != nil {
		return false, err
	}
	frozen, err := regular.Build(s, regular.BuildOptions{Exclude: n})
	if err != nil {
		return false, err
	}
	fullAns, err := full.SnapshotQuery(q)
	if err != nil {
		return false, err
	}
	frozenAns, err := frozen.SnapshotQuery(q)
	if err != nil {
		return false, err
	}
	return subsume.ForestEquivalent(fullAns, frozenAns), nil
}

// QStableExact decides whether the system is q-stable: invoking nothing
// at all already yields a possible answer, i.e. the snapshot result
// equals the full result.
func QStableExact(s *core.System, q *query.Query) (bool, error) {
	if err := exactPreconditions(s, q); err != nil {
		return false, err
	}
	all := map[*tree.Node]bool{}
	for _, c := range s.Calls() {
		all[c.Node] = true
	}
	return QUnneededExact(s, q, all)
}

func exactPreconditions(s *core.System, q *query.Query) error {
	if !s.IsSimple() {
		return fmt.Errorf("lazy: exact checks require a simple positive system (Theorem 4.1: undecidable otherwise)")
	}
	if !q.IsSimple() {
		return fmt.Errorf("lazy: exact checks are implemented for simple queries")
	}
	callFree := true
	var walk func(p *pattern.Node)
	walk = func(p *pattern.Node) {
		if p.Kind == pattern.ConstFunc {
			callFree = false
		}
		for _, c := range p.Children {
			walk(c)
		}
	}
	walk(q.Head)
	if !callFree {
		return fmt.Errorf("lazy: exact checks require a call-free query head (answers are compared as data)")
	}
	return nil
}
