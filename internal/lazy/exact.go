package lazy

import (
	"fmt"

	"axml/internal/core"
	"axml/internal/query"
	"axml/internal/regular"
	"axml/internal/tree"
)

// PossibleAnswerExact decides, for a simple positive system and a simple
// query with a call-free head, whether the forest alpha is a possible
// answer to q (Definition in Section 4: [alpha] ≡ [[q](I)]) — the
// decidable branch of Theorem 4.1(i). Alpha's trees may contain calls to
// the system's services (intensional answers); both sides are compared on
// their data content, the information calls eventually materialize.
//
// The decision builds the finite graph representation of the system
// extended with alpha, projects call nodes away, and compares by
// simulation in both directions, so it is exact even when alpha's
// expansion is infinite.
func PossibleAnswerExact(s *core.System, q *query.Query, alpha tree.Forest) (bool, error) {
	if err := exactPreconditions(s, q); err != nil {
		return false, err
	}
	// [q](I) — finite, call-free data trees by precondition.
	full, err := regular.Build(s, regular.BuildOptions{})
	if err != nil {
		return false, err
	}
	want, err := full.SnapshotQuery(q)
	if err != nil {
		return false, err
	}

	// [alpha]: extend the system with alpha under a fresh wrapper
	// document and rebuild the graph.
	ext := s.Copy()
	wrap := tree.NewLabel("possible-answer-root")
	for _, t := range alpha {
		wrap.Children = append(wrap.Children, t.Copy())
	}
	const wrapDoc = "possible-answer"
	if err := ext.AddDocument(tree.NewDocument(wrapDoc, wrap)); err != nil {
		return false, err
	}
	extGraph, err := regular.Build(ext, regular.BuildOptions{})
	if err != nil {
		return false, err
	}
	alphaChildren := regular.ProjectData(extGraph.Roots[wrapDoc]).Children

	// Forest equivalence by simulation, both directions.
	for _, t := range want {
		found := false
		for _, c := range alphaChildren {
			if regular.SimulatesTree(t, c) {
				found = true
				break
			}
		}
		if !found {
			return false, nil
		}
	}
	for _, c := range alphaChildren {
		found := false
		for _, t := range want {
			if regular.SimulatedByTree(c, t) {
				found = true
				break
			}
		}
		if !found {
			return false, nil
		}
	}
	return true, nil
}

// QFiniteExact decides q-finiteness over a simple positive system for an
// arbitrary query (Proposition 3.2(3)); see regular.QFinite.
func QFiniteExact(s *core.System, q *query.Query) (bool, tree.Forest, error) {
	if !s.IsSimple() {
		return false, nil, fmt.Errorf("lazy: q-finiteness is undecidable for non-simple systems (Prop 3.2(1)); use core.System.QFinite for the budgeted semi-decision")
	}
	return regular.QFinite(s, q)
}
