package lazy

import (
	"testing"

	"axml/internal/core"
	"axml/internal/syntax"
	"axml/internal/tree"
)

// Theorem 4.1(2): possible answers are decidable for simple systems. The
// jazz scenario of Section 4: both the materialized rating and the
// intensional call are possible answers.
func TestPossibleAnswerExactJazz(t *testing.T) {
	s := core.MustParseSystem(`
doc ratings = db{entry{title{"Body and Soul"},stars{"4"}}}
doc portal = directory{cd{title{"Body and Soul"},!GetRating}}
func GetRating = rating{$s} :- context/cd{title{$t}}, ratings/db{entry{title{$t},stars{$s}}}
`)
	q := syntax.MustParseQuery(
		`rating{$s} :- portal/directory{cd{title{"Body and Soul"},rating{$s}}}`)

	materialized := tree.Forest{syntax.MustParseDocument(`rating{"4"}`)}
	ok, err := PossibleAnswerExact(s, q, materialized)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("materialized rating rejected")
	}

	// The intensional answer delegates the call. Wrapped in a cd with
	// the right title so GetRating's context query finds its join key.
	intensional := tree.Forest{syntax.MustParseDocument(`rating{"4",!GetRating}`)}
	ok, err = PossibleAnswerExact(s, q, intensional)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("intensional-but-equivalent answer rejected")
	}

	wrong := tree.Forest{syntax.MustParseDocument(`rating{"5"}`)}
	ok, err = PossibleAnswerExact(s, q, wrong)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("wrong rating accepted")
	}

	tooMuch := tree.Forest{
		syntax.MustParseDocument(`rating{"4"}`),
		syntax.MustParseDocument(`rating{"9"}`),
	}
	ok, err = PossibleAnswerExact(s, q, tooMuch)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("answer with extra information accepted")
	}
}

// An intensional answer whose expansion brings exactly the needed data is
// accepted even though it looks nothing like the materialized form.
func TestPossibleAnswerExactIntensionalExpansion(t *testing.T) {
	s := core.MustParseSystem(`
doc src = r{v{"1"},v{"2"}}
doc d = top{!fill}
func fill = out{$x} :- src/r{v{$x}}
`)
	q := syntax.MustParseQuery(`out{$x} :- d/top{out{$x}}`)
	// The call !fill reads src directly (not context), so placed
	// anywhere it expands to out{1}, out{2}.
	intensional := tree.Forest{syntax.MustParseDocument(`holder{!fill}`)}
	// [q](I) = {out{1}, out{2}} but alpha's data content is
	// holder{out{1},out{2}} — a different shape: NOT a possible answer.
	ok, err := PossibleAnswerExact(s, q, intensional)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("wrapped answer accepted despite different shape")
	}
	// The forest {out{1}, out{2}} is.
	direct := tree.Forest{
		syntax.MustParseDocument(`out{"1"}`),
		syntax.MustParseDocument(`out{"2"}`),
	}
	ok, err = PossibleAnswerExact(s, q, direct)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("exact forest rejected")
	}
}

// An answer with an infinite expansion cannot equal a finite result.
func TestPossibleAnswerExactInfiniteAlpha(t *testing.T) {
	s := core.MustParseSystem(`
doc d = top{data{"x"},!noise}
func noise = data{"x"} :- context/top
`)
	q := syntax.MustParseQuery(`out{$v} :- d/top{data{$v}}`)
	// alpha embeds an ever-growing call: out{x, grow{grow{...}}}.
	grow := core.MustParseSystem(`
doc d = top{data{"x"},!noise}
func noise = data{"x"} :- context/top
`)
	_ = grow
	sGrow := core.MustParseSystem(`
doc d = top{data{"x"}}
func Grow = g{!Grow} :-
`)
	alpha := tree.Forest{syntax.MustParseDocument(`out{"x",!Grow}`)}
	ok, err := PossibleAnswerExact(sGrow, syntax.MustParseQuery(`out{$v} :- d/top{data{$v}}`), alpha)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("infinitely expanding answer accepted against a finite result")
	}
	_ = s
	_ = q
}

func TestQFiniteExactFacade(t *testing.T) {
	s := core.MustParseSystem("doc d = a{!f}\nfunc f = a{!f} :- ")
	fin, _, err := QFiniteExact(s, syntax.MustParseQuery(`out{#T} :- d/a{#T}`))
	if err != nil {
		t.Fatal(err)
	}
	if fin {
		t.Fatal("infinite copy query reported finite")
	}
	nonSimple := core.MustParseSystem("doc d = a{a{b},!g}\nfunc g = a{a{#X}} :- context/a{a{#X}}")
	if _, _, err := QFiniteExact(nonSimple, syntax.MustParseQuery(`out :- d/a`)); err == nil {
		t.Fatal("non-simple system accepted")
	}
}
