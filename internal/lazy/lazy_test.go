package lazy

import (
	"testing"

	"axml/internal/core"
	"axml/internal/subsume"
	"axml/internal/syntax"
	"axml/internal/tree"
)

// portalSystem models the jazz portal: ratings obtainable by calls, one
// irrelevant branch (videos) whose calls a rating query never needs, and a
// recursive feed that would not terminate if expanded naively.
const portalSystem = `
doc ratings = db{entry{title{"Body and Soul"},stars{"4"}},entry{title{"Naima"},stars{"5"}}}
doc portal = directory{
  cd{title{"Body and Soul"},!GetRating{x}},
  cd{title{"Naima"},!GetRating{x}},
  videos{!VideoFeed}}
func GetRating = rating{$s} :- context/cd{title{$t}}, ratings/db{entry{title{$t},stars{$s}}}
func VideoFeed = clip{!VideoFeed} :-
`

func ratingQuery() string {
	return `out{$t,$s} :- portal/directory{cd{title{$t},rating{$s}}}`
}

func TestAnalyzeMarksOnlyNeededCalls(t *testing.T) {
	s := core.MustParseSystem(portalSystem)
	q := syntax.MustParseQuery(ratingQuery())
	an, err := Analyze(s, q)
	if err != nil {
		t.Fatal(err)
	}
	if an.WeaklyStable() {
		t.Fatal("pending rating calls but weakly stable")
	}
	names := map[string]int{}
	for _, c := range an.Relevant {
		names[c.Node.Name]++
	}
	if names["GetRating"] != 2 {
		t.Errorf("GetRating relevance = %d, want 2", names["GetRating"])
	}
	if names["VideoFeed"] != 0 {
		t.Errorf("VideoFeed marked relevant: %v", names)
	}
	if !an.NeededDocs["portal"] || !an.NeededDocs["ratings"] {
		t.Errorf("needed docs: %v", an.NeededDocs)
	}
}

func TestEvalLazySkipsInfiniteIrrelevantBranch(t *testing.T) {
	s := core.MustParseSystem(portalSystem)
	q := syntax.MustParseQuery(ratingQuery())
	res, err := Eval(s, q, Options{MaxSteps: 100})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stable {
		t.Fatalf("lazy evaluation did not stabilize: %+v", res)
	}
	if len(res.Answer) != 2 {
		t.Fatalf("answers = %s", res.Answer.CanonicalString())
	}
	want := subsume.ReduceForest(tree.Forest{
		syntax.MustParseDocument(`out{"Body and Soul","4"}`),
		syntax.MustParseDocument(`out{"Naima","5"}`),
	})
	if res.Answer.CanonicalString() != want.CanonicalString() {
		t.Fatalf("answer = %s, want %s", res.Answer.CanonicalString(), want.CanonicalString())
	}
	// The infinite video feed must not have been touched.
	videos := s.Document("portal").Root
	feedCalls := 0
	videos.Walk(func(n, _ *tree.Node) bool {
		if n.Kind == tree.Func && n.Name == "VideoFeed" {
			feedCalls++
		}
		return true
	})
	if feedCalls != 1 {
		t.Fatalf("VideoFeed expanded %d times", feedCalls)
	}
	// Naive evaluation within the same budget does NOT stabilize.
	naive := core.MustParseSystem(portalSystem)
	nres := naive.Run(core.RunOptions{MaxSteps: 100})
	if nres.Terminated {
		t.Fatal("naive run unexpectedly terminated")
	}
}

func TestEvalMatchesNaiveOnTerminatingSystem(t *testing.T) {
	const tc = `
doc  d0 = r{t{a{1},b{2}},t{a{2},b{3}},t{a{3},b{4}}}
doc  d1 = r{!g,!f}
func g = t{a{$x},b{$y}} :- d0/r{t{a{$x},b{$y}}}
func f = t{a{$x},b{$y}} :- d1/r{t{a{$x},b{$z}}}, d1/r{t{a{$z},b{$y}}}
`
	q := syntax.MustParseQuery(`pair{$x,$y} :- d1/r{t{a{$x},b{$y}}}`)
	lazySys := core.MustParseSystem(tc)
	lres, err := Eval(lazySys, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	naive := core.MustParseSystem(tc)
	nres, err := naive.EvalQuery(q, core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !lres.Stable || !nres.Exact {
		t.Fatalf("stability: lazy=%v naive=%v", lres.Stable, nres.Exact)
	}
	if lres.Answer.CanonicalString() != nres.Answer.CanonicalString() {
		t.Fatalf("lazy %s != naive %s", lres.Answer.CanonicalString(), nres.Answer.CanonicalString())
	}
}

func TestWeaklyStableImmediately(t *testing.T) {
	// Query over a document without calls: stable with zero invocations.
	s := core.MustParseSystem(portalSystem)
	q := syntax.MustParseQuery(`out{$s} :- ratings/db{entry{stars{$s}}}`)
	res, err := Eval(s, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stable || res.Invocations != 0 {
		t.Fatalf("expected immediate stability: %+v", res)
	}
	if len(res.Answer) != 2 {
		t.Fatalf("answers = %v", res.Answer)
	}
}

func TestAnalyzeBlackBoxIsRelevantAtReachablePositions(t *testing.T) {
	s := core.NewSystem()
	if err := s.AddDocument(tree.NewDocument("d", syntax.MustParseDocument(`a{b{!f},c{!f}}`))); err != nil {
		t.Fatal(err)
	}
	if err := s.AddService(core.ConstService("f", tree.Forest{syntax.MustParseDocument(`hit`)})); err != nil {
		t.Fatal(err)
	}
	q := syntax.MustParseQuery(`out :- d/a{b{hit}}`)
	an, err := Analyze(s, q)
	if err != nil {
		t.Fatal(err)
	}
	// Only the call under b is relevant: the pattern never reaches c.
	if len(an.Relevant) != 1 || an.Relevant[0].Parent.Name != "b" {
		t.Fatalf("relevant = %+v", an.Relevant)
	}
}

func TestAnalyzeContextConservatism(t *testing.T) {
	// A relevant context-using service drags sibling calls in.
	s := core.MustParseSystem(`
doc aux = k{v{"1"}}
doc d = a{b{!f,!h}}
func f = out{$x} :- context/b{got{$x}}
func h = got{$x} :- aux/k{v{$x}}
`)
	q := syntax.MustParseQuery(`res{$x} :- d/a{b{out{$x}}}`)
	an, err := Analyze(s, q)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, c := range an.Relevant {
		names[c.Node.Name] = true
	}
	if !names["f"] || !names["h"] {
		t.Fatalf("context conservatism missed a sibling: %v", names)
	}
	res, err := Eval(s, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stable || len(res.Answer) != 1 {
		t.Fatalf("eval: %+v %s", res, res.Answer.CanonicalString())
	}
}

func TestQStableExact(t *testing.T) {
	const sys = `
doc d0 = r{v{1}}
doc d = top{!f}
func f = out{$x} :- d0/r{v{$x}}
`
	s := core.MustParseSystem(sys)
	// Query whose answer needs f's output: not yet stable.
	needy := syntax.MustParseQuery(`res{$x} :- d/top{out{$x}}`)
	stable, err := QStableExact(s, needy)
	if err != nil {
		t.Fatal(err)
	}
	if stable {
		t.Fatal("system reported stable before invoking f")
	}
	// After running to fixpoint, it is stable.
	s.Run(core.RunOptions{})
	stable, err = QStableExact(s, needy)
	if err != nil {
		t.Fatal(err)
	}
	if !stable {
		t.Fatal("terminated system not stable")
	}
	// A query not touched by any call is stable from the start.
	fresh := core.MustParseSystem(sys)
	indep := syntax.MustParseQuery(`res{$x} :- d0/r{v{$x}}`)
	stable, err = QStableExact(fresh, indep)
	if err != nil {
		t.Fatal(err)
	}
	if !stable {
		t.Fatal("independent query not stable")
	}
}

func TestQUnneededExact(t *testing.T) {
	// Two calls providing overlapping data: freezing one is unneeded
	// when the other provides the same information.
	const sys = `
doc d0 = r{v{1}}
doc d = top{!f,!g}
func f = out{$x} :- d0/r{v{$x}}
func g = out{$x} :- d0/r{v{$x}}
`
	s := core.MustParseSystem(sys)
	q := syntax.MustParseQuery(`res{$x} :- d/top{out{$x}}`)
	var fNode, gNode *tree.Node
	for _, c := range s.Calls() {
		switch c.Node.Name {
		case "f":
			fNode = c.Node
		case "g":
			gNode = c.Node
		}
	}
	un, err := QUnneededExact(s, q, map[*tree.Node]bool{fNode: true})
	if err != nil {
		t.Fatal(err)
	}
	if !un {
		t.Fatal("freezing f should be unneeded (g provides the data)")
	}
	un, err = QUnneededExact(s, q, map[*tree.Node]bool{fNode: true, gNode: true})
	if err != nil {
		t.Fatal(err)
	}
	if un {
		t.Fatal("freezing both calls must be needed — not closed under union, Section 4")
	}
}

func TestExactPreconditions(t *testing.T) {
	nonSimple := core.MustParseSystem("doc d = a{a{b},!g}\nfunc g = a{a{#X}} :- context/a{a{#X}}")
	q := syntax.MustParseQuery(`out :- d/a{b}`)
	if _, err := QStableExact(nonSimple, q); err == nil {
		t.Fatal("non-simple system accepted")
	}
	simple := core.MustParseSystem("doc d = a{!f}\nfunc f = b :- ")
	if _, err := QStableExact(simple, syntax.MustParseQuery(`out{#T} :- d/a{#T}`)); err == nil {
		t.Fatal("non-simple query accepted")
	}
	if _, err := QStableExact(simple, syntax.MustParseQuery(`out{!f} :- d/a{b}`)); err == nil {
		t.Fatal("call-bearing head accepted")
	}
}

func TestEvalBudget(t *testing.T) {
	// Relevant recursive growth hits the budget and reports non-stable.
	s := core.MustParseSystem(`
doc d = a{!f}
func f = b{!f} :-
`)
	q := syntax.MustParseQuery(`out :- d/a{b{b{b{b{b{b{b{b{c}}}}}}}}}`)
	res, err := Eval(s, q, Options{MaxSteps: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stable {
		t.Fatalf("budgeted run reported stable: %+v", res)
	}
	if res.Steps != 3 {
		t.Fatalf("steps = %d", res.Steps)
	}
}

func TestWeakUnneeded(t *testing.T) {
	s := core.MustParseSystem(portalSystem)
	q := syntax.MustParseQuery(ratingQuery())
	feeds := map[*tree.Node]bool{}
	ratingsCalls := map[*tree.Node]bool{}
	for _, c := range s.Calls() {
		switch c.Node.Name {
		case "VideoFeed":
			feeds[c.Node] = true
		case "GetRating":
			ratingsCalls[c.Node] = true
		}
	}
	un, err := WeakUnneeded(s, q, feeds)
	if err != nil {
		t.Fatal(err)
	}
	if !un {
		t.Fatal("video feeds should be weakly unneeded for the rating query")
	}
	un, err = WeakUnneeded(s, q, ratingsCalls)
	if err != nil {
		t.Fatal(err)
	}
	if un {
		t.Fatal("rating calls reported weakly unneeded")
	}
}
