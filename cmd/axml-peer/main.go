// Command axml-peer serves a system file as an AXML peer over HTTP: its
// services become Web services other peers can call, its documents are
// fetchable, and a coordinator can drive it toward a distributed fixpoint
// (endpoints under /axml/, see internal/peer).
//
// Remote services used by the local documents are declared with -remote:
//
//	axml-peer -listen :8080 -system portal.axml \
//	    -remote GetRating=http://ratings.example:8081
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"

	"axml/internal/core"
	"axml/internal/peer"
	"axml/internal/syntax"
)

func main() {
	listen := flag.String("listen", ":8080", "listen address")
	systemFile := flag.String("system", "", "system file to serve")
	name := flag.String("name", "peer", "peer name for logs")
	var remotes remoteFlags
	flag.Var(&remotes, "remote", "remote service binding NAME=URL (repeatable)")
	flag.Parse()

	if *systemFile == "" {
		fmt.Fprintln(os.Stderr, "axml-peer: -system is required")
		os.Exit(2)
	}
	data, err := os.ReadFile(*systemFile)
	if err != nil {
		log.Fatal(err)
	}
	// Build without the final validation: remote bindings complete the
	// service set first.
	parsed, err := syntax.ParseSystem(string(data))
	if err != nil {
		log.Fatal(err)
	}
	sys := core.NewSystem()
	for _, r := range remotes {
		if err := sys.AddService(&peer.RemoteService{Name: r.name, URL: r.url}); err != nil {
			log.Fatal(err)
		}
	}
	for _, q := range parsed.Funcs {
		if err := sys.AddQuery(q); err != nil {
			log.Fatal(err)
		}
	}
	for _, d := range parsed.Docs {
		if err := sys.AddDocument(d); err != nil {
			log.Fatal(err)
		}
	}
	if err := sys.Validate(); err != nil {
		log.Fatal(err)
	}
	p := peer.New(*name, sys)
	log.Printf("axml-peer %s serving %s on %s (docs: %v, services: %v)",
		*name, *systemFile, *listen, sys.DocNames(), sys.FuncNames())
	log.Fatal(http.ListenAndServe(*listen, p.Handler()))
}

type remoteBinding struct{ name, url string }

type remoteFlags []remoteBinding

func (r *remoteFlags) String() string { return fmt.Sprintf("%v", []remoteBinding(*r)) }

func (r *remoteFlags) Set(v string) error {
	name, url, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want NAME=URL, got %q", v)
	}
	*r = append(*r, remoteBinding{name: name, url: url})
	return nil
}
